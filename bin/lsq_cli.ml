(* Command line driver: run any of the paper's experiments from the shell.

     lsq_cli devices
     lsq_cli qr      --device v100 --prec 4d --dim 1024 --tile 128
     lsq_cli backsub --device p100 --prec 4d --dim 17920 --tile 224
     lsq_cli solve   --device v100 --prec 8d --dim 1024 --tile 128
     lsq_cli qr --complex --execute --dim 64 --tile 16
     lsq_cli qr --dim 1024 --tile 128 --trace trace.json --metrics m.json
     lsq_cli roofline qr --prec 2d --dim 1024 --tile 128
     lsq_cli batch --jobs jobs.json --parallel 4 --out outcomes.jsonl
     lsq_cli batch --sweep table4

   Without [--execute] only the cost model runs (instantaneous, any
   dimension); with it the kernels execute numerically on the simulator
   and the residuals are reported. *)

open Cmdliner
module P = Multidouble.Precision
module R = Harness.Runners

let pf = Printf.printf

(* ---- common options ---- *)

let device_arg =
  let parse s =
    try Ok (Gpusim.Device.by_name s) with Invalid_argument m -> Error (`Msg m)
  in
  let print fmt d = Format.fprintf fmt "%s" d.Gpusim.Device.name in
  Arg.conv (parse, print)

let device =
  Arg.(
    value
    & opt device_arg Gpusim.Device.v100
    & info [ "d"; "device" ] ~docv:"GPU"
        ~doc:"Simulated device: c2050, k20c, p100, v100 or rtx2080.")

let prec_arg =
  let parse s =
    try Ok (P.of_label (String.lowercase_ascii s))
    with Invalid_argument m -> Error (`Msg m)
  in
  let print fmt p = Format.fprintf fmt "%s" (P.label p) in
  Arg.conv (parse, print)

let prec =
  Arg.(
    value
    & opt prec_arg P.QD
    & info [ "p"; "prec" ] ~docv:"PREC"
        ~doc:"Precision: 1d, 2d, 4d or 8d (double .. octo double).")

let dim =
  Arg.(
    value & opt int 1024
    & info [ "n"; "dim" ] ~docv:"N" ~doc:"Problem dimension.")

let rows =
  Arg.(
    value & opt (some int) None
    & info [ "rows" ] ~docv:"M"
        ~doc:"Number of rows (qr and solve; default: square).")

let solver_name =
  Arg.(
    value & opt string "qr"
    & info [ "solver" ] ~docv:"ENGINE"
        ~doc:
          "Solve engine: qr (direct blocked QR + back substitution, the \
           default), cg (conjugate gradient on the normal equations) or \
           lsqr — the iterative engines run a D -> DD -> QD -> OD \
           refinement ladder of staged matrix-vector kernels.")

(* Bad engine names exit with a usage error before anything runs, like
   the fault flags. *)
let solver_of name =
  try Lsq_core.Solver.method_of_string name
  with Invalid_argument m ->
    Printf.eprintf "error: %s\n" m;
    exit 2

let tile =
  Arg.(
    value & opt int 128
    & info [ "t"; "tile" ] ~docv:"TILE" ~doc:"Tile size (threads per block).")

let complex =
  Arg.(value & flag & info [ "complex" ] ~doc:"Use complex data.")

let execute =
  Arg.(
    value & flag
    & info [ "x"; "execute" ]
        ~doc:
          "Execute the kernels numerically (keep the dimension moderate) \
           and report residuals; default is cost accounting only.")

let fault_rate =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Per-launch fault probability of the simulator's fault plane, in \
           [0, 1].  0 (the default) leaves the plane disarmed.")

let fault_seed =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Campaign seed of the fault plane; the same seed replays the \
           same faults bit-identically.")

let fault_kinds =
  Arg.(
    value & opt string "all"
    & info [ "fault-kinds" ] ~docv:"KINDS"
        ~doc:
          "Comma-separated fault kinds to arm: bitflip, launch, transfer, \
           or all.")

(* The three flags fold into one optional [Fault.Plan.config]; bad rates
   or kind names exit with a usage error before anything runs. *)
let fault_config_of ~rate ~seed ~kinds =
  if rate = 0.0 then None
  else
    try
      let kinds =
        if String.lowercase_ascii (String.trim kinds) = "all" then
          Fault.Plan.all_kinds
        else
          String.split_on_char ',' kinds
          |> List.filter_map (fun s ->
                 let s = String.trim s in
                 if s = "" then None else Some (Fault.Plan.kind_of_string s))
      in
      Some (Fault.Plan.config ~kinds ~seed ~rate ())
    with Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      exit 2

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv); open it \
           in Perfetto (ui.perfetto.dev) or chrome://tracing.")

let metrics_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a JSON snapshot of the metrics registry to $(docv).")

(* ---- shared argument-spec builders ----

   One term per flag family: every subcommand assembles the same specs
   ([$ fault_flags $ obs_flags $ ...]) instead of repeating the five
   individual flags — a new subcommand (serve) gets the whole family
   for free. *)

let obs_flags =
  Term.(const (fun trace metrics -> (trace, metrics)) $ trace_file $ metrics_file)

let fault_flags =
  Term.(
    const (fun rate seed kinds -> (rate, seed, kinds))
    $ fault_rate $ fault_seed $ fault_kinds)

let parallel_arg =
  Arg.(
    value & opt int 4
    & info [ "parallel" ] ~docv:"N"
        ~doc:"Number of concurrent job workers (batch mode).")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Write the JSON-lines outcomes here instead of standard output \
           (the human summary then goes to standard output).")

(* Runs [f] with the tracer and the default metrics registry armed, and
   writes the requested artifacts however [f] exits.  Status lines go to
   stderr so stdout stays parseable (the batch and serve subcommands
   emit JSON lines there). *)
let with_observability (trace, metrics) f =
  if trace = None && metrics = None then f ()
  else begin
    Obs.Metrics.reset (Obs.Metrics.default ());
    if trace <> None then Obs.Tracer.start ();
    Fun.protect
      ~finally:(fun () ->
        Obs.Tracer.stop ();
        (match trace with
        | Some path ->
          Obs.Tracer.export_file path;
          Printf.eprintf "trace written to %s (%d events)\n" path
            (Obs.Tracer.event_count ())
        | None -> ());
        match metrics with
        | Some path ->
          let snap = Obs.Metrics.snapshot (Obs.Metrics.default ()) in
          let oc = open_out path in
          output_string oc
            (Harness.Json.to_string (Harness.Obs_io.json_of_metrics snap));
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "metrics written to %s (%d metrics)\n" path
            (List.length snap)
        | None -> ())
      f
  end

(* ---- output ---- *)

let print_run what device p ~complex (r : Harness.Report.t) =
  pf "%s in %s%s precision on the simulated %s\n" what (P.name p)
    (if complex then " complex" else "")
    device.Gpusim.Device.name;
  List.iter
    (fun (row : Harness.Report.Row.t) ->
      pf "  %-24s %12.3f ms  %6d launch%s\n" row.Harness.Report.Row.stage
        row.Harness.Report.Row.ms row.Harness.Report.Row.launches
        (if row.Harness.Report.Row.launches = 1 then "" else "es"))
    r.Harness.Report.stages;
  pf "  %-24s %12.3f ms\n" "all kernels" r.Harness.Report.kernel_ms;
  pf "  %-24s %12.3f ms\n" "wall clock" r.Harness.Report.wall_ms;
  pf "  %-24s %12.1f gigaflops\n" "kernel flops" r.Harness.Report.kernel_gflops;
  pf "  %-24s %12.1f gigaflops\n" "wall flops" r.Harness.Report.wall_gflops;
  pf "  %-24s %12d\n" "kernel launches" r.Harness.Report.launches

let print_residual what (v : Harness.Report.residual) =
  pf "  %s: %.1f eps (%s)\n" what v.Harness.Report.residual
    (if v.Harness.Report.ok then "ok" else "FAILED")

let print_faults (r : Harness.Report.t) =
  match r.Harness.Report.faults with
  | None -> ()
  | Some f ->
    pf "  %-24s %12d (%d bitflip, %d launch, %d transfer)\n" "faults injected"
      (Harness.Report.faults_injected f)
      f.Harness.Report.bitflips f.Harness.Report.launch_fails
      f.Harness.Report.transfer_faults;
    pf "  %-24s %12d detected, %d relaunches, %d retransfers, %d replays%s\n"
      "fault handling" f.Harness.Report.detected f.Harness.Report.relaunches
      f.Harness.Report.retransfers f.Harness.Report.replays
      (if f.Harness.Report.refined then ", refined" else "");
    if f.Harness.Report.escalations > 0 then
      pf "  %-24s %12d\n" "fault escalations" f.Harness.Report.escalations

let check_tile ~dim ~tile =
  if tile <= 0 || dim mod tile <> 0 then begin
    Printf.eprintf "error: the tile size (%d) must divide the dimension (%d)\n"
      tile dim;
    exit 2
  end

(* ---- subcommands ---- *)

let qr_cmd =
  let run device p dim rows tile complex execute (rate, seed, kinds) obs =
    check_tile ~dim ~tile;
    let fault = fault_config_of ~rate ~seed ~kinds in
    with_observability obs (fun () ->
        let r = R.qr ~complex ?rows ?fault p device ~n:dim ~tile in
        print_run
          (Printf.sprintf "blocked Householder QR of a %dx%d matrix"
             (Option.value rows ~default:dim)
             dim)
          device p ~complex r;
        print_faults r;
        if execute then
          print_residual "executed residual"
            (R.verify_qr ~complex ?fault p device ~n:(min dim 96)
               ~tile:(min tile 16)))
  in
  Cmd.v
    (Cmd.info "qr" ~doc:"Blocked Householder QR (Algorithm 2).")
    Term.(
      const run $ device $ prec $ dim $ rows $ tile $ complex $ execute
      $ fault_flags $ obs_flags)

let backsub_cmd =
  let run device p dim tile complex execute (rate, seed, kinds) obs =
    check_tile ~dim ~tile;
    let fault = fault_config_of ~rate ~seed ~kinds in
    with_observability obs (fun () ->
        let r = R.bs ~complex ?fault p device ~dim ~tile in
        print_run
          (Printf.sprintf "tiled back substitution of dimension %d (%d tiles)"
             dim (dim / tile))
          device p ~complex r;
        print_faults r;
        if execute then
          print_residual "executed residual"
            (R.verify_bs ~complex ?fault p device ~dim:(min dim 96)
               ~tile:(min tile 16)))
  in
  Cmd.v
    (Cmd.info "backsub" ~doc:"Tiled accelerated back substitution (Algorithm 1).")
    Term.(
      const run $ device $ prec $ dim $ tile $ complex $ execute
      $ fault_flags $ obs_flags)

let solve_cmd =
  let run device p dim rows tile complex solver execute (rate, seed, kinds) obs
      =
    check_tile ~dim ~tile;
    let method_ = solver_of solver in
    let m = Option.value rows ~default:dim in
    if m < dim then begin
      Printf.eprintf "error: --rows (%d) must be at least the dimension (%d)\n"
        m dim;
      exit 2
    end;
    let fault = fault_config_of ~rate ~seed ~kinds in
    with_observability obs (fun () ->
        let r = R.solve ~complex ?fault ~method_ ?rows p device ~n:dim ~tile in
        pf "least squares solve of a %dx%d system in %s%s on the simulated %s\n"
          m dim (P.name p)
          (if complex then " complex" else "")
          device.Gpusim.Device.name;
        (match r.Harness.Report.solver with
        | None ->
          let qr = Harness.Report.part r R.qr_part in
          let bs = Harness.Report.part r R.bs_part in
          pf "  %-24s %12.3f ms\n" "QR kernel time"
            qr.Harness.Report.Part.kernel_ms;
          pf "  %-24s %12.3f ms\n" "QR wall time"
            qr.Harness.Report.Part.wall_ms;
          pf "  %-24s %12.3f ms\n" "BS kernel time"
            bs.Harness.Report.Part.kernel_ms;
          pf "  %-24s %12.3f ms\n" "BS wall time"
            bs.Harness.Report.Part.wall_ms
        | Some s ->
          pf "  %-24s %12s\n" "engine"
            (Lsq_core.Solver.method_name s.Harness.Report.method_);
          List.iter
            (fun (part : Harness.Report.Part.t) ->
              pf "  %-24s %12.3f ms kernel, %.3f ms wall\n"
                (part.Harness.Report.Part.name ^ " time")
                part.Harness.Report.Part.kernel_ms
                part.Harness.Report.Part.wall_ms)
            r.Harness.Report.parts;
          pf "  %-24s %12d\n" "modeled inner iterations"
            s.Harness.Report.iterations;
          pf "  %-24s %12s\n" "refinement ladder"
            (String.concat " -> "
               (List.map
                  (fun (t, i) -> Printf.sprintf "%s:%d" (P.label t) i)
                  s.Harness.Report.ladder)));
        pf "  %-24s %12.1f gigaflops\n" "total kernel flops"
          r.Harness.Report.kernel_gflops;
        pf "  %-24s %12.1f gigaflops\n" "total wall flops"
          r.Harness.Report.wall_gflops;
        print_faults r;
        if execute then begin
          let n' = min dim 64 in
          let rows' = Option.map (fun m -> max n' (min m (8 * n'))) rows in
          print_residual "executed forward error"
            (R.verify_solve ~complex ?fault ~method_ ?rows:rows' p device
               ~n:n' ~tile:(min tile 16))
        end)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Least squares solver: direct QR + back substitution, or an \
          iterative engine via $(b,--solver).")
    Term.(
      const run $ device $ prec $ dim $ rows $ tile $ complex $ solver_name
      $ execute $ fault_flags $ obs_flags)

let faults_cmd =
  let dim_arg =
    Arg.(
      value & opt int 32
      & info [ "n"; "dim" ] ~docv:"N"
          ~doc:
            "Problem dimension.  Every run executes numerically, so keep \
             it moderate.")
  in
  let tile_arg =
    Arg.(
      value & opt int 8
      & info [ "t"; "tile" ] ~docv:"TILE" ~doc:"Tile size.")
  in
  let runs_arg =
    Arg.(
      value & opt int 8
      & info [ "runs" ] ~docv:"N"
          ~doc:"Number of seeded fault-tolerant solves in the campaign.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.01
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Per-launch fault probability, in [0, 1].")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the campaign summary and reports as JSON on stdout.")
  in
  let run device p dim tile complex runs rate seed kinds json obs =
    check_tile ~dim ~tile;
    if runs < 1 then begin
      Printf.eprintf "error: --runs must be at least 1\n";
      exit 2
    end;
    with_observability obs (fun () ->
        let reports =
          List.init runs (fun i ->
              let fault = fault_config_of ~rate ~seed:(seed + i) ~kinds in
              R.solve_ft ~complex ?fault p device ~n:dim ~tile)
        in
        let ok (r : Harness.Report.t) =
          match r.Harness.Report.residual with
          | Some v -> v.Harness.Report.ok
          | None -> false
        in
        let tally f (r : Harness.Report.t) =
          match r.Harness.Report.faults with Some x -> f x | None -> 0
        in
        let sum f = List.fold_left (fun acc r -> acc + tally f r) 0 reports in
        let injected = sum Harness.Report.faults_injected in
        let detected = sum (fun f -> f.Harness.Report.detected) in
        let replays =
          sum (fun f ->
              f.Harness.Report.relaunches + f.Harness.Report.retransfers
              + f.Harness.Report.replays)
        in
        let escalations = sum (fun f -> f.Harness.Report.escalations) in
        let refined_runs =
          List.length
            (List.filter
               (fun (r : Harness.Report.t) ->
                 match r.Harness.Report.faults with
                 | Some f -> f.Harness.Report.refined
                 | None -> false)
               reports)
        in
        let recovered_runs = List.length (List.filter ok reports) in
        let rate_pct =
          100.0 *. float_of_int recovered_runs /. float_of_int runs
        in
        if json then
          print_endline
            (Harness.Json.to_string
               (Harness.Json.Obj
                  [
                    ( "campaign",
                      Harness.Json.Obj
                        [
                          ("device", Harness.Json.Str device.Gpusim.Device.name);
                          ("prec", Harness.Json.Str (P.label p));
                          ("complex", Harness.Json.Bool complex);
                          ("dim", Harness.Json.Int dim);
                          ("tile", Harness.Json.Int tile);
                          ("runs", Harness.Json.Int runs);
                          ("fault_rate", Harness.Json.Float rate);
                          ("fault_seed", Harness.Json.Int seed);
                        ] );
                    ("injected", Harness.Json.Int injected);
                    ("detected", Harness.Json.Int detected);
                    ("replays", Harness.Json.Int replays);
                    ("escalations", Harness.Json.Int escalations);
                    ("refined_runs", Harness.Json.Int refined_runs);
                    ("recovered_runs", Harness.Json.Int recovered_runs);
                    ( "recovery_rate",
                      Harness.Json.Float
                        (float_of_int recovered_runs /. float_of_int runs) );
                    ( "reports",
                      Harness.Json.Arr
                        (List.map Harness.Report.to_json reports) );
                  ]))
        else begin
          pf
            "fault campaign: %d fault-tolerant solve%s of %dx%d tile=%d in \
             %s%s on the simulated %s\n"
            runs
            (if runs = 1 then "" else "s")
            dim dim tile (P.name p)
            (if complex then " complex" else "")
            device.Gpusim.Device.name;
          pf "rate %g per launch, seeds %d..%d\n" rate seed (seed + runs - 1);
          List.iteri
            (fun i (r : Harness.Report.t) ->
              let inj = tally Harness.Report.faults_injected r in
              let refined =
                match r.Harness.Report.faults with
                | Some f -> f.Harness.Report.refined
                | None -> false
              in
              pf "  run %2d (seed %d): %3d injected, %s%s\n" i (seed + i) inj
                (if ok r then "recovered" else "NOT RECOVERED")
                (if refined then " (refined)" else ""))
            reports;
          pf "  %-24s %12d\n" "faults injected" injected;
          pf "  %-24s %12d\n" "faults detected" detected;
          pf "  %-24s %12d\n" "relaunches+replays" replays;
          pf "  %-24s %12d\n" "escalations" escalations;
          pf "  %-24s %12d\n" "refined runs" refined_runs;
          pf "  %-24s %9d/%-2d (%.1f%%)\n" "recovery rate" recovered_runs runs
            rate_pct
        end)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Seeded fault-injection campaign: repeated executed fault-tolerant \
          solves under the simulator's fault plane, reporting the \
          detection-and-recovery rate.  The same seed replays the campaign \
          bit-identically.")
    Term.(
      const run $ device $ prec $ dim_arg $ tile_arg $ complex $ runs_arg
      $ rate_arg $ fault_seed $ fault_kinds $ json_flag $ obs_flags)

let roofline_cmd =
  let kind =
    Arg.(
      value
      & pos 0
          (enum [ ("qr", `Qr); ("backsub", `Backsub); ("solve", `Solve) ])
          `Qr
      & info [] ~docv:"KIND" ~doc:"Experiment: qr, backsub or solve.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the table as JSON (see Harness.Obs_io) on stdout.")
  in
  let run device p kind dim rows tile complex solver json =
    check_tile ~dim ~tile;
    let method_ = solver_of solver in
    let kind_name =
      match kind with `Qr -> "qr" | `Backsub -> "backsub" | `Solve -> "solve"
    in
    let stages =
      match kind with
      | `Qr -> R.qr_roofline ~complex ?rows p device ~n:dim ~tile
      | `Backsub -> R.bs_roofline ~complex p device ~dim ~tile
      | `Solve -> R.solve_roofline ~complex ~method_ ?rows p device ~n:dim ~tile
    in
    let rows_all = stages @ [ Obs.Roofline.total stages ] in
    let ridge =
      Obs.Roofline.ridge ~peak_gflops:device.Gpusim.Device.dp_peak_gflops
        ~dram_gb_s:device.Gpusim.Device.dram_gb_s
    in
    let label =
      Printf.sprintf "%s %s%s n=%d tile=%d" kind_name (P.label p)
        (if complex then " complex" else "")
        dim tile
    in
    if json then
      print_endline
        (Harness.Json.to_string
           (Harness.Obs_io.json_of_roofline ~label
              ~device:device.Gpusim.Device.name ~ridge rows_all))
    else begin
      pf "roofline of %s in %s%s on the simulated %s\n" kind_name (P.name p)
        (if complex then " complex" else "")
        device.Gpusim.Device.name;
      pf "DP peak %.0f gigaflops, DRAM %.0f GB/s, ridge %.2f flops/byte\n"
        device.Gpusim.Device.dp_peak_gflops device.Gpusim.Device.dram_gb_s
        ridge;
      pf "%-24s %12s %9s %9s %11s %7s  %s\n" "stage" "ms" "launches"
        "gflops" "flops/byte" "%peak" "bound";
      List.iter
        (fun (s : Obs.Roofline.stage) ->
          pf "%-24s %12.3f %9d %9.1f %11.2f %7.2f  %s\n" s.Obs.Roofline.stage
            s.Obs.Roofline.ms s.Obs.Roofline.launches s.Obs.Roofline.gflops
            s.Obs.Roofline.intensity s.Obs.Roofline.pct_peak
            (Obs.Roofline.bound_name s.Obs.Roofline.bound))
        rows_all
    end
  in
  Cmd.v
    (Cmd.info "roofline"
       ~doc:
         "Per-stage roofline diagnostics: arithmetic intensity, achieved \
          flops and compute- vs memory-bound classification (the paper's \
          CGMA analysis).")
    Term.(
      const run $ device $ prec $ kind $ dim $ rows $ tile $ complex
      $ solver_name $ json_flag)

let refine_cmd =
  let lo_prec =
    Arg.(
      value & opt prec_arg P.DD
      & info [ "lo" ] ~docv:"PREC" ~doc:"Working (factorization) precision.")
  in
  let hi_prec =
    Arg.(
      value & opt prec_arg P.QD
      & info [ "hi" ] ~docv:"PREC" ~doc:"Target (residual) precision.")
  in
  let run device lo hi dim tile =
    check_tile ~dim ~tile;
    if P.limbs lo >= P.limbs hi then begin
      Printf.eprintf "error: --lo must be a lower precision than --hi\n";
      exit 2
    end;
    let (module L) = Multidouble.Registry.module_of_tag lo in
    let (module H) = Multidouble.Registry.module_of_tag hi in
    let module Rf = Lsq_core.Refine.Make (L) (H) in
    let module Rand = Mdlinalg.Randmat.Make (Rf.KH) in
    let rng = Dompool.Prng.create 99 in
    let a = Rand.matrix rng dim dim in
    let a =
      Rf.MH.init dim dim (fun i j ->
          if i = j then H.add (Rf.MH.get a i j) (H.of_int 8)
          else Rf.MH.get a i j)
    in
    let x_true = Rand.vector rng dim in
    let b = Rf.MH.matvec a x_true in
    let res = Rf.solve ~device ~a ~b ~tile () in
    let err =
      H.to_float (Rf.VH.norm (Rf.VH.sub res.Rf.x x_true))
      /. H.to_float (Rf.VH.norm x_true)
    in
    pf "iterative refinement: %s factorization, %s residuals, n = %d\n"
      (P.name lo) (P.name hi) dim;
    pf "  refinement sweeps      : %d\n" res.Rf.iterations;
    pf "  forward error          : %.2e (target eps %.2e)\n" err H.eps;
    pf "  QR kernel time (%s)    : %.3f ms on the %s\n" (P.label lo)
      res.Rf.qr_kernel_ms device.Gpusim.Device.name;
    pf "  residual history       : %s\n"
      (String.concat " "
         (List.map (Printf.sprintf "%.1e") res.Rf.residual_history))
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Mixed-precision iterative refinement: factor low, refine high.")
    Term.(
      const run $ device $ lo_prec $ hi_prec
      $ Arg.(value & opt int 64 & info [ "n"; "dim" ] ~docv:"N" ~doc:"Dimension.")
      $ Arg.(value & opt int 16 & info [ "t"; "tile" ] ~docv:"TILE" ~doc:"Tile."))

let toeplitz_cmd =
  let blockdim =
    Arg.(
      value & opt int 4
      & info [ "block" ] ~docv:"N" ~doc:"Dimension of each block.")
  in
  let degree_arg =
    Arg.(
      value & opt int 8
      & info [ "degree" ] ~docv:"D" ~doc:"Truncation degree of the series.")
  in
  let run device p blockdim degree complex =
    let (module K) = Harness.Runners.scalar_of ~complex p in
    let module BT = Mdseries.Block_toeplitz.Make (K) in
    let module Qrm = Lsq_core.Blocked_qr.Make (K) in
    let module Bsm = Lsq_core.Tiled_back_sub.Make (K) in
    let module M = Mdlinalg.Mat.Make (K) in
    let module V = Mdlinalg.Vec.Make (K) in
    let rng = Dompool.Prng.create 7 in
    let j =
      Array.init (degree + 1) (fun k ->
          let m = M.random rng blockdim blockdim in
          if k = 0 then
            M.init blockdim blockdim (fun i j' ->
                if i = j' then K.add (M.get m i j') (K.of_float 6.0)
                else M.get m i j')
          else m)
    in
    let x_true = Array.init (degree + 1) (fun _ -> V.random rng blockdim) in
    let b = BT.apply j x_true in
    let x, qr, bs = BT.solve_device ~device ~tile:blockdim j b in
    let err = ref K.R.zero in
    Array.iteri
      (fun k p' ->
        let e = V.norm (V.sub p' x_true.(k)) in
        if K.R.compare e !err > 0 then err := e)
      x;
    pf "block Toeplitz series solve: %d blocks of %dx%d, %s%s, %s\n"
      (degree + 1) blockdim blockdim (P.name p)
      (if complex then " complex" else "")
      device.Gpusim.Device.name;
    pf "  max order error        : %s\n" (K.R.to_string ~digits:3 !err);
    pf "  QR of J0, kernels      : %.4f ms\n" qr.Qrm.kernel_ms;
    pf "  Algorithm 1, kernels   : %.4f ms (%d launches)\n" bs.Bsm.kernel_ms
      bs.Bsm.launches
  in
  Cmd.v
    (Cmd.info "toeplitz"
       ~doc:
         "Power series block Toeplitz solve (the paper's path tracker \
          component).")
    Term.(const run $ device $ prec $ blockdim $ degree_arg $ complex)

let psolve_cmd =
  let system_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SYSTEM"
          ~doc:
            "The polynomial system, semicolon-separated, e.g. \
             \"x^2 + y^2 - 4; x*y - 1\".")
  in
  let run device p system_text =
    let (module R) = Multidouble.Registry.module_of_tag p in
    let module S = Mdseries.Solve.Make (R) in
    let module Pp = Mdseries.Poly_parser.Make (S.K) in
    let sys, vars =
      try Pp.parse_system ~iunit:(S.K.of_floats 0.0 1.0) system_text
      with Mdseries.Poly_parser.Parse_error m ->
        Printf.eprintf "parse error: %s\n" m;
        exit 2
    in
    if Array.length sys <> List.length vars then begin
      Printf.eprintf
        "error: %d equations in %d variables (need a square system)\n"
        (Array.length sys) (List.length vars);
      exit 2
    end;
    pf "solving %d equations in (%s), total degree %d, %s, on the %s\n"
      (Array.length sys)
      (String.concat ", " vars)
      (S.P.total_degree sys) (P.name p) device.Gpusim.Device.name;
    let r = S.solve ~device sys in
    pf "%d paths: %d converged, %d diverged, %d stuck\n" r.S.paths
      (List.length r.S.solutions)
      r.S.diverged r.S.stuck;
    let sols = S.distinct r.S.solutions in
    pf "%d distinct solutions:\n" (List.length sols);
    List.iteri
      (fun i s ->
        pf "  %2d:" (i + 1);
        List.iteri
          (fun j v ->
            let z = s.S.point.(j) in
            pf "  %s = %+.12g %+.12gi" v
              (R.to_float (S.K.re z))
              (R.to_float (S.K.im z)))
          vars;
        pf "   |f| = %.1e\n" s.S.residual)
      sols
  in
  Cmd.v
    (Cmd.info "psolve"
       ~doc:
         "Solve a polynomial system by total-degree homotopy continuation \
          (all Newton corrections on the accelerated solver).")
    Term.(const run $ device $ prec $ system_arg)

let cond_cmd =
  let family =
    Arg.(
      value
      & opt (enum [ ("hilbert", `Hilbert); ("vandermonde", `Vandermonde);
                    ("random", `Random) ]) `Hilbert
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:"Matrix family: hilbert, vandermonde or random.")
  in
  let wanted =
    Arg.(
      value & opt int 12
      & info [ "digits" ] ~docv:"D" ~doc:"Trusted digits wanted.")
  in
  let run p dim family wanted =
    let (module R) = Multidouble.Registry.module_of_tag p in
    let module K = Mdlinalg.Scalar.Real (R) in
    let module M = Mdlinalg.Mat.Make (K) in
    let module C = Mdlinalg.Cond.Make (K) in
    let module Svd = Mdlinalg.Jacobi_svd.Make (K) in
    let a =
      match family with
      | `Hilbert ->
        M.init dim dim (fun i j -> R.div R.one (R.of_int (i + j + 1)))
      | `Vandermonde ->
        M.init dim dim (fun i k ->
            let x = R.div (R.of_int (i + 1)) (R.of_int dim) in
            let rec pow acc e =
              if e = 0 then acc else pow (R.mul acc x) (e - 1)
            in
            pow R.one k)
      | `Random ->
        let rng = Dompool.Prng.create 4 in
        M.random rng dim dim
    in
    (try
       let c1 = C.cond1 a in
       pf "kappa_1  = %s\n" (R.to_string ~digits:4 c1)
     with _ -> pf "kappa_1  = (singular to working precision)\n");
    let c2 = Svd.cond2 a in
    pf "kappa_2  = %s\n" (R.to_string ~digits:4 c2);
    let risk = Float.log10 (Float.max 1.0 (R.to_float c2)) in
    pf "digits at risk ~ %.1f\n" risk;
    let safe =
      List.find_opt
        (fun q ->
          (float_of_int (P.limbs q) *. 16.0) -. risk >= float_of_int wanted)
        P.all
    in
    pf "cheapest precision leaving %d trusted digits: %s\n" wanted
      (match safe with
      | Some q -> Printf.sprintf "%s (%s)" (P.name q) (P.label q)
      | None -> "beyond octo double")
  in
  Cmd.v
    (Cmd.info "cond"
       ~doc:"Condition numbers and the digits-at-risk precision guide.")
    Term.(
      const run $ prec
      $ Arg.(value & opt int 10 & info [ "n"; "dim" ] ~docv:"N" ~doc:"Dimension.")
      $ family $ wanted)

let batch_cmd =
  let jobs_file =
    Arg.(
      value & opt (some file) None
      & info [ "j"; "jobs" ] ~docv:"FILE"
          ~doc:
            "Jobs file: a JSON array of job objects, or one job object per \
             line (JSON lines).")
  in
  let sweep_name =
    Arg.(
      value & opt (some string) None
      & info [ "sweep" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Generate the batch of a whole paper table instead of reading \
                a jobs file.  One of: %s."
               (String.concat ", " Sched.Sweep.names)))
  in
  let run jobs_file sweep_name parallel solver out_file obs =
    let default_solver = solver_of solver in
    let jobs =
      match (jobs_file, sweep_name) with
      | Some _, Some _ ->
        Printf.eprintf "error: --jobs and --sweep are mutually exclusive\n";
        exit 2
      | Some file, None -> (
        try Sched.Job.load_file file
        with Harness.Json.Error m | Sys_error m ->
          Printf.eprintf "error: cannot load jobs from %s: %s\n" file m;
          exit 2)
      | None, Some name -> (
        try Sched.Sweep.jobs name
        with Invalid_argument m ->
          Printf.eprintf "error: %s\n" m;
          exit 2)
      | None, None ->
        Printf.eprintf "error: one of --jobs FILE or --sweep NAME is required\n";
        exit 2
    in
    if parallel < 1 then begin
      Printf.eprintf "error: --parallel must be at least 1\n";
      exit 2
    end;
    (* Like serve's --fault-* flags, --solver is a default: it rewires
       solve jobs that did not pick an engine themselves. *)
    let jobs =
      if default_solver = Lsq_core.Solver.Qr_direct then jobs
      else
        List.map
          (fun (job : Sched.Job.t) ->
            if
              job.Sched.Job.kind = Sched.Job.Solve
              && job.Sched.Job.solver = Lsq_core.Solver.Qr_direct
            then { job with Sched.Job.solver = default_solver }
            else job)
          jobs
    in
    let outcomes =
      with_observability obs (fun () ->
          Sched.Scheduler.run
            (Sched.Scheduler.Config.batch ~parallel ()) jobs)
    in
    let summary_oc =
      match out_file with
      | Some file ->
        let oc = open_out file in
        Sched.Scheduler.write_jsonl oc outcomes;
        close_out oc;
        stdout
      | None ->
        Sched.Scheduler.write_jsonl stdout outcomes;
        flush stdout;
        stderr
    in
    let completed, failed =
      List.partition
        (fun o ->
          match o.Sched.Scheduler.status with
          | Sched.Scheduler.Completed _ -> true
          | Sched.Scheduler.Failed _ -> false)
        outcomes
    in
    Printf.fprintf summary_oc
      "batch: %d job%s, %d completed, %d failed (parallel=%d)\n"
      (List.length outcomes)
      (if List.length outcomes = 1 then "" else "s")
      (List.length completed) (List.length failed) parallel;
    List.iter
      (fun o ->
        match o.Sched.Scheduler.status with
        | Sched.Scheduler.Failed f ->
          Printf.fprintf summary_oc "  failed %-24s attempts=%d%s (%s): %s\n"
            o.Sched.Scheduler.job.Sched.Job.id o.Sched.Scheduler.attempts
            (if f.Sched.Scheduler.timed_out then " (timed out)" else "")
            (if f.Sched.Scheduler.retryable then "transient" else "permanent")
            f.Sched.Scheduler.message
        | Sched.Scheduler.Completed _ -> ())
      failed;
    (match out_file with
    | Some file ->
      Printf.fprintf summary_oc "outcomes written to %s (JSON lines, schema %d)\n"
        file Sched.Scheduler.schema_version
    | None -> ());
    flush summary_oc
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a batch of jobs over a fresh fleet of generic workers and \
          emit one JSON outcome per line.")
    Term.(
      const run $ jobs_file $ sweep_name $ parallel_arg $ solver_name
      $ out_arg $ obs_flags)

(* Raised from the SIGTERM handler to interrupt serve's blocking stdin
   read: admissions stop, admitted jobs drain. *)
exception Drain_signal

let serve_cmd =
  let pool_spec =
    Arg.(
      value
      & opt string "c2050=2,p100=2,v100=2,rtx2080=2"
      & info [ "pool" ] ~docv:"SPEC"
          ~doc:
            "Device pool of the fleet: comma-separated \
             $(i,device)=$(i,count) entries, e.g. v100=2,rtx2080=1.")
  in
  let depth =
    Arg.(
      value & opt int 64
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Admission bound per device queue; a submission finding every \
             candidate queue this deep is rejected (backpressure).  0 means \
             unbounded; negative values are rejected.")
  in
  let no_steal =
    Arg.(
      value & flag
      & info [ "no-steal" ]
          ~doc:"Disable work stealing between device queues.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead outcome journal: record an intent line as each job \
             is admitted and a commit line (carrying the outcome verbatim) \
             before it is emitted, so a crashed service can be rerun with \
             $(b,--resume) without losing or duplicating outcomes.  Job ids \
             must be unique across the journal's lifetime.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the $(b,--journal) file before reading standard input: \
             committed outcome lines are re-emitted byte-identically \
             (exactly once per job) and unsettled intents are resubmitted.")
  in
  let chaos_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-rate" ] ~docv:"P"
          ~doc:
            "Arm a seeded device-chaos campaign: each fleet instance is \
             dealt a crash, hang or brownout with this probability (0 \
             disables chaos).")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed of the chaos campaign (deterministic per seed).")
  in
  let hedge_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:
            "Enable hedged execution: a job in flight longer than \
             max($(docv), 3x its class p95) gets a duplicate on another \
             instance and the first result wins.")
  in
  let breakers_arg =
    Arg.(
      value & flag
      & info [ "breakers" ]
          ~doc:
            "Enable per-instance circuit breakers driven by health windows \
             (open on consecutive failures or p95 excursions, half-open \
             probe after a cool-off).")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Stream continuous telemetry (periodic registry snapshots with \
             health/SLO status and buffered log records, as JSON lines) to \
             $(docv) while serving; read it live with $(b,lsq_cli monitor).")
  in
  let telemetry_prom_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-prom" ] ~docv:"FILE"
          ~doc:
            "Also maintain a Prometheus text-exposition file at $(docv), \
             rewritten on every telemetry tick (requires $(b,--telemetry)).")
  in
  let telemetry_interval_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "telemetry-interval-ms" ] ~docv:"MS"
          ~doc:"Telemetry snapshot period in milliseconds.")
  in
  let log_level_arg =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold: debug, info, warn or error.  Without \
             $(b,--telemetry) the log streams to standard error as JSON \
             lines; $(b,warn) also silences the end-of-run summary.")
  in
  let run pool_spec depth no_steal (rate, seed, kinds) solver out_file obs
      telemetry telemetry_prom telemetry_interval_ms log_level journal_file
      resume chaos_rate chaos_seed hedge_ms breakers =
    let default_solver = solver_of solver in
    let usage_error fmt =
      Printf.ksprintf
        (fun m ->
          Printf.eprintf "error: %s\n" m;
          exit 2)
        fmt
    in
    let pool =
      try Sched.Fleet.Config.pool_of_string pool_spec
      with Invalid_argument m -> usage_error "%s" m
    in
    (match Obs.Log.level_of_string log_level with
    | l -> Obs.Log.set_level l
    | exception Invalid_argument m -> usage_error "%s" m);
    if telemetry = None && telemetry_prom <> None then
      usage_error "--telemetry-prom requires --telemetry";
    if Float.is_nan telemetry_interval_ms || telemetry_interval_ms <= 0.0 then
      usage_error "--telemetry-interval-ms %g must be positive"
        telemetry_interval_ms;
    if depth < 0 then
      usage_error "--depth %d must be non-negative (0 means unbounded)" depth;
    if resume && journal_file = None then
      usage_error "--resume requires --journal";
    let chaos =
      if chaos_rate = 0.0 then None
      else
        match
          Fault.Chaos.config ~seed:chaos_seed ~rate:chaos_rate ()
        with
        | cfg -> Some cfg
        | exception Invalid_argument m -> usage_error "%s" m
    in
    (* With a telemetry stream the log records ride inside it; without
       one they go to stderr as JSON lines, keeping stdout pure outcome
       lines either way. *)
    Obs.Log.set_sink
      (match telemetry with
      | Some _ -> Obs.Log.Buffered
      | None -> Obs.Log.Channel stderr);
    let config =
      {
        Sched.Fleet.Config.pool;
        max_queue_depth =
          (if depth = 0 then Sched.Fleet.Config.unbounded else depth);
        backoff_ms = 1.0;
        steal = not no_steal;
        (* A service must not grow with its uptime: outcomes stream out
           through [on_outcome] and are not retained. *)
        retain_outcomes = false;
        chaos;
        max_migrations = Sched.Fleet.Config.default.max_migrations;
        hedge_ms;
        breakers;
      }
    in
    (match Sched.Fleet.Config.validate config with
    | Ok () -> ()
    | Error m -> usage_error "%s" m);
    let oc = match out_file with Some f -> open_out f | None -> stdout in
    (* Outcome lines arrive from the worker domains; one lock keeps the
       stream line-atomic. *)
    let out_lock = Mutex.create () in
    let emit_line line =
      Mutex.lock out_lock;
      output_string oc line;
      output_char oc '\n';
      flush oc;
      Mutex.unlock out_lock
    in
    let emit json = emit_line (Harness.Json.to_string json) in
    (* Replay happens before the journal reopens for appending, so the
       reader never sees this process's own writes. *)
    let replayed =
      if resume then Sched.Journal.replay (Option.get journal_file)
      else { Sched.Journal.committed = []; pending = []; malformed = 0 }
    in
    let journal = Option.map Sched.Journal.create journal_file in
    (* Exactly-once emission across a crash: the outcome line is durable
       in the journal before it reaches the client. *)
    let emit_outcome (o : Sched.Scheduler.outcome) =
      let line = Harness.Json.to_string (Sched.Scheduler.outcome_to_json o) in
      (match journal with
      | Some j ->
        Sched.Journal.commit j ~job_id:o.Sched.Scheduler.job.Sched.Job.id ~line
      | None -> ());
      emit_line line
    in
    (* The --fault-* flags are defaults: they arm jobs that do not carry
       their own fault plan. *)
    let with_default_faults (job : Sched.Job.t) =
      if rate > 0.0 && job.Sched.Job.fault_rate = 0.0 then
        match fault_config_of ~rate ~seed ~kinds with
        | Some _ ->
          {
            job with
            Sched.Job.fault_rate = rate;
            fault_seed = seed;
            fault_kinds =
              (if String.lowercase_ascii (String.trim kinds) = "all" then
                 Fault.Plan.all_kinds
               else
                 String.split_on_char ',' kinds
                 |> List.filter_map (fun s ->
                        let s = String.trim s in
                        if s = "" then None
                        else Some (Fault.Plan.kind_of_string s)));
          }
        | None -> job
      else job
    in
    (* --solver is a default too: it rewires solve jobs that did not pick
       an engine themselves (the JSON default is the direct QR engine). *)
    let with_default_solver (job : Sched.Job.t) =
      if
        default_solver <> Lsq_core.Solver.Qr_direct
        && job.Sched.Job.kind = Sched.Job.Solve
        && job.Sched.Job.solver = Lsq_core.Solver.Qr_direct
      then { job with Sched.Job.solver = default_solver }
      else job
    in
    with_observability obs (fun () ->
        let exporter =
          Option.map
            (fun path ->
              Obs.Telemetry.start ~interval_ms:telemetry_interval_ms
                ?prom:
                  (Option.map (fun p -> Obs.Telemetry.File p) telemetry_prom)
                (Obs.Telemetry.File path))
            telemetry
        in
        let fleet = Sched.Fleet.create ~on_outcome:emit_outcome config in
        let submitted = ref 0 and rejected = ref 0 and skipped = ref 0 in
        (* Resume: committed lines first, byte-identical and in their
           original commit order, then the jobs the crashed process
           admitted but never settled. *)
        List.iter (fun (_, line) -> emit_line line) replayed.Sched.Journal.committed;
        if replayed.Sched.Journal.malformed > 0 then
          Obs.Log.warn "serve.journal_malformed"
            ~fields:[ ("lines", Obs.Log.Int replayed.Sched.Journal.malformed) ];
        List.iter
          (fun job ->
            (* The intent is already journaled; blocking submission so a
               resumed backlog larger than the queues still runs. *)
            ignore (Sched.Fleet.submit_blocking fleet job);
            incr submitted)
          replayed.Sched.Journal.pending;
        (* SIGTERM means drain, not die: the handler interrupts the
           blocking read, admissions stop, and every admitted job still
           settles (and journals) before exit. *)
        let drain_now = ref false in
        let previous_sigterm =
          match
            Sys.signal Sys.sigterm
              (Sys.Signal_handle (fun _ -> raise Drain_signal))
          with
          | h -> Some h
          | exception (Invalid_argument _ | Sys_error _) -> None
        in
        (try
           while true do
             let line = input_line stdin in
             if String.trim line <> "" then
               match Sched.Job.of_json (Harness.Json.of_string line) with
               | job -> (
                 let job = with_default_solver (with_default_faults job) in
                 (match journal with
                 | Some j -> Sched.Journal.intent j job
                 | None -> ());
                 match Sched.Fleet.submit fleet job with
                 | Ok _ -> incr submitted
                 | Error r ->
                   incr rejected;
                   (match journal with
                   | Some j ->
                     Sched.Journal.reject j ~job_id:job.Sched.Job.id
                   | None -> ());
                   emit (Sched.Fleet.reject_to_json job r))
               | exception Harness.Json.Error m ->
                 incr skipped;
                 Printf.eprintf "serve: skipping bad job line: %s\n%!" m
           done
         with
        | End_of_file -> ()
        | Drain_signal ->
          drain_now := true;
          Obs.Log.warn "serve.sigterm_drain");
        (match previous_sigterm with
        | Some h -> ( try Sys.set_signal Sys.sigterm h with _ -> ())
        | None -> ());
        Sched.Fleet.quiesce fleet;
        Sched.Fleet.shutdown fleet;
        Option.iter Sched.Journal.close journal;
        Option.iter Obs.Telemetry.stop exporter;
        (* The human summary is observability, not output: it obeys the
           log threshold (--log-level warn runs silent). *)
        if Obs.Log.enabled Obs.Log.Info then begin
          Printf.eprintf
            "serve: %d submitted, %d rejected, %d skipped, %d stolen%s%s\n"
            !submitted !rejected !skipped
            (Sched.Fleet.steals fleet)
            (match replayed.Sched.Journal.committed with
            | [] -> ""
            | c -> Printf.sprintf ", %d replayed" (List.length c))
            (if !drain_now then " (drained on SIGTERM)" else "");
          List.iter
            (fun (s : Sched.Fleet.stats) ->
              Printf.eprintf
                "  %-12s %4d executed (%d stolen)  utilization %5.1f%%%s%s\n"
                s.Sched.Fleet.id s.Sched.Fleet.executed s.Sched.Fleet.stolen
                (100.0 *. s.Sched.Fleet.utilization)
                (if s.Sched.Fleet.state = "ok" then ""
                 else "  " ^ s.Sched.Fleet.state)
                (if s.Sched.Fleet.breaker = "closed" then ""
                 else "  breaker " ^ s.Sched.Fleet.breaker))
            (Sched.Fleet.stats fleet)
        end);
    if out_file <> None then close_out oc
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fleet service: read JSON job objects from standard input \
          (one per line), place them across a pool of simulated devices \
          with roofline-aware placement, work stealing and bounded-queue \
          admission control, and emit one JSON outcome line per job as it \
          finishes.  Jobs with device \"auto\" (or no device) are routed by \
          the placement policy; rejected submissions answer with a \
          {\"status\":\"rejected\"} line.  With $(b,--journal) the service \
          is crash-safe: rerunning with $(b,--resume) yields exactly one \
          outcome line per job across the crash; SIGTERM drains gracefully.")
    Term.(
      const run $ pool_spec $ depth $ no_steal $ fault_flags $ solver_name
      $ out_arg $ obs_flags $ telemetry_arg $ telemetry_prom_arg
      $ telemetry_interval_arg $ log_level_arg $ journal_arg $ resume_arg
      $ chaos_rate_arg $ chaos_seed_arg $ hedge_arg $ breakers_arg)

let monitor_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Telemetry JSON-lines file written by serve --telemetry.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "f"; "follow" ]
          ~doc:
            "Keep tailing the file, re-rendering on every new snapshot and \
             echoing warn/error log records, until interrupted.")
  in
  let poll_arg =
    Arg.(
      value & opt float 500.0
      & info [ "poll-ms" ] ~docv:"MS"
          ~doc:"Poll period while following, in milliseconds.")
  in
  (* Whole-file read, trimmed to the last complete line: the serve
     process appends whole lines, but a poll can land mid-write. *)
  let read_complete_lines path =
    match open_in_bin path with
    | exception Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
    | ic ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      close_in ic;
      (match String.rindex_opt buf '\n' with
      | None -> []
      | Some i -> String.split_on_char '\n' (String.sub buf 0 i))
  in
  let bar width frac =
    let n = max 0 (min width (int_of_float (frac *. float_of_int width))) in
    String.make n '#' ^ String.make (width - n) '.'
  in
  let render (s : Harness.Obs_io.telemetry_snapshot) =
    let counter name =
      match List.assoc_opt name s.Harness.Obs_io.metrics with
      | Some (Obs.Metrics.Counter c) -> c
      | _ -> 0
    in
    let gauges prefix =
      List.filter_map
        (fun (name, v) ->
          match v with
          | Obs.Metrics.Gauge g when String.starts_with ~prefix name ->
            Some
              ( String.sub name (String.length prefix)
                  (String.length name - String.length prefix),
                g )
          | _ -> None)
        s.Harness.Obs_io.metrics
    in
    pf "snapshot #%d\n" s.Harness.Obs_io.seq;
    pf "  fleet: %d submitted, %d completed, %d failed, %d rejected, %d steals\n"
      (counter "fleet.submitted") (counter "fleet.completed")
      (counter "fleet.failed") (counter "fleet.rejected")
      (counter "fleet.steals");
    let utils = gauges "fleet.util." in
    let depths = gauges "fleet.queue_depth." in
    let inflight = gauges "fleet.inflight." in
    List.iter
      (fun (id, util) ->
        let depth =
          match List.assoc_opt id depths with Some d -> d | None -> 0.0
        in
        let busy =
          match List.assoc_opt id inflight with Some f -> f > 0.0 | None -> false
        in
        pf "  %-12s [%s] %5.1f%%  queue %2.0f  %s\n" id (bar 20 util)
          (100.0 *. util) depth
          (if busy then "busy" else "idle"))
      utils;
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Histogram { count; p50; p95; p99; _ }
          when String.starts_with ~prefix:"fleet.latency_ms." name && count > 0
          ->
          pf "  latency %-12s p50 %8.1f ms  p95 %8.1f ms  p99 %8.1f ms  (%d)\n"
            (String.sub name 17 (String.length name - 17))
            p50 p95 p99 count
        | _ -> ())
      s.Harness.Obs_io.metrics;
    List.iter
      (fun (h : Obs.Health.class_status) ->
        pf "  slo %-12s p95 %s%s  %s | budget %d/%d failed%s  %s\n"
          h.Obs.Health.cls
          (match h.Obs.Health.p95_ms with
          | Some p -> Printf.sprintf "%8.1f ms" p
          | None -> "       - ms")
          (match h.Obs.Health.slo_ms with
          | Some t -> Printf.sprintf " (target %.1f ms)" t
          | None -> "")
          (if h.Obs.Health.slo_ok then "ok" else "BREACH")
          h.Obs.Health.failures h.Obs.Health.total
          (match h.Obs.Health.budget with
          | Some b -> Printf.sprintf " (%.0f%% of budget %.2f)"
                        (100.0 *. h.Obs.Health.budget_used) b
          | None -> "")
          (if h.Obs.Health.budget_ok then "ok" else "EXHAUSTED"))
      s.Harness.Obs_io.health;
    (match List.filter (fun (d : Obs.Health.stage_drift) -> d.Obs.Health.drifted)
             s.Harness.Obs_io.drift
     with
    | [] ->
      if s.Harness.Obs_io.drift <> [] then pf "  cost model: no drift\n"
    | drifted ->
      List.iter
        (fun (d : Obs.Health.stage_drift) ->
          pf "  cost model DRIFT %-20s measured/predicted %.2fx over %d samples\n"
            d.Obs.Health.stage d.Obs.Health.ratio d.Obs.Health.samples)
        drifted);
    flush stdout
  in
  let run file follow poll_ms =
    let seen = ref 0 in
    let last = ref None in
    let parse_errors = ref 0 in
    (* Torn tail-follow reads are expected, not fatal: count them here
       and in the metrics registry instead of crashing the monitor. *)
    let parse_errors_counter =
      Obs.Metrics.counter (Obs.Metrics.default ()) "monitor.parse_errors"
    in
    let consume ~echo_logs =
      let lines = read_complete_lines file in
      let fresh = List.filteri (fun i _ -> i >= !seen) lines in
      seen := List.length lines;
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Harness.Obs_io.telemetry_line_of_string line with
            | Harness.Obs_io.Snapshot s -> last := Some s
            | Harness.Obs_io.Log_line r ->
              if
                echo_logs
                && match r.Obs.Log.level with
                   | Obs.Log.Warn | Obs.Log.Error -> true
                   | Obs.Log.Debug | Obs.Log.Info -> false
              then pf "%s\n" (Obs.Log.to_json_line r)
            | exception Harness.Json.Error _ ->
              incr parse_errors;
              Obs.Metrics.Counter.incr parse_errors_counter)
        fresh
    in
    if follow then begin
      let rec loop () =
        let before = !last in
        consume ~echo_logs:true;
        (match !last with
        | Some s when before <> Some s -> render s
        | _ -> ());
        Unix.sleepf (Float.max 0.01 (poll_ms /. 1000.0));
        loop ()
      in
      loop ()
    end
    else begin
      consume ~echo_logs:false;
      match !last with
      | Some s ->
        render s;
        if !parse_errors > 0 then
          Printf.eprintf "monitor: %d malformed line%s skipped\n" !parse_errors
            (if !parse_errors = 1 then "" else "s")
      | None ->
        Printf.eprintf "monitor: no snapshot lines in %s\n" file;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Render a live fleet summary from a telemetry file written by \
          $(b,lsq_cli serve --telemetry): per-instance utilization and queue \
          depths, latency quantiles, SLO/error-budget status and cost-model \
          drift.  One-shot by default; --follow tails the file.")
    Term.(const run $ file_arg $ follow_arg $ poll_arg)

let devices_cmd =
  let run () =
    pf "%-12s %5s %5s %10s %7s %6s %10s %9s\n" "device" "CUDA" "#MP"
      "#cores/MP" "#cores" "GHz" "DP peak" "DRAM GB/s";
    List.iter
      (fun d ->
        pf "%-12s %5.1f %5d %10d %7d %6.2f %7.0f GF %9.0f\n"
          d.Gpusim.Device.name d.Gpusim.Device.cuda d.Gpusim.Device.sm_count
          d.Gpusim.Device.cores_per_sm (Gpusim.Device.cores d)
          d.Gpusim.Device.ghz d.Gpusim.Device.dp_peak_gflops
          d.Gpusim.Device.dram_gb_s)
      Gpusim.Device.catalog
  in
  Cmd.v
    (Cmd.info "devices" ~doc:"List the simulated GPUs (Table 2).")
    Term.(const run $ const ())

let precisions_cmd =
  let run () =
    pf "%-6s %-14s %7s %9s %9s %9s %10s\n" "label" "name" "limbs" "add"
      "mul" "div" "avg ovh";
    List.iter
      (fun p ->
        pf "%-6s %-14s %7d %9d %9d %9d %10.1f\n" (P.label p) (P.name p)
          (P.limbs p) (P.add_flops p) (P.mul_flops p) (P.div_flops p)
          (P.average_flops p))
      P.all
  in
  Cmd.v
    (Cmd.info "precisions" ~doc:"List the precisions and Table 1 op counts.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "lsq_cli" ~version:"1.0"
      ~doc:
        "Least squares on simulated GPUs in multiple double precision \
         (reproduction of Verschelde, IPDPSW 2022)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ qr_cmd; backsub_cmd; solve_cmd; faults_cmd; roofline_cmd; batch_cmd; serve_cmd; monitor_cmd; refine_cmd; toeplitz_cmd; psolve_cmd; cond_cmd; devices_cmd; precisions_cmd ]))
