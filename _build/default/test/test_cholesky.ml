(* Tests for Cholesky and the normal-equations baseline, including the
   accuracy comparison against Householder QR on ill-conditioned data —
   the quantitative version of the paper's stability argument. *)

open Mdlinalg

let check = Alcotest.(check bool)

module T (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Ch = Cholesky.Make (K)
  module Qr = Host_qr.Make (K)
  module Rand = Randmat.Make (K)

  let small r = K.R.compare r (K.R.of_float (1e6 *. K.R.eps)) <= 0

  (* A random Hermitian positive definite matrix: G^H G + n I. *)
  let spd rng n =
    let g = Rand.matrix rng n n in
    let gg = M.matmul (M.adjoint g) g in
    M.init n n (fun i j ->
        if i = j then K.add (M.get gg i j) (K.of_float (float_of_int n))
        else M.get gg i j)

  let test_factor () =
    let rng = Dompool.Prng.create 601 in
    List.iter
      (fun n ->
        let a = spd rng n in
        let l = Ch.factor a in
        check "L L^H = A" true
          (small (M.rel_distance a (M.matmul l (M.adjoint l))));
        (* lower triangular with positive real diagonal *)
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if not (K.is_zero (M.get l i j)) then ok := false
          done;
          if K.R.sign (K.re (M.get l i i)) <= 0 then ok := false
        done;
        check "triangular, positive diagonal" true !ok)
      [ 1; 4; 9 ]

  let test_solve () =
    let rng = Dompool.Prng.create 602 in
    let n = 8 in
    let a = spd rng n in
    let x_true = Rand.vector rng n in
    let b = M.matvec a x_true in
    let x = Ch.solve a b in
    check "solve" true
      (K.R.compare
         (V.norm (V.sub x x_true))
         (K.R.mul_float (V.norm x_true) (1e8 *. K.R.eps))
      <= 0)

  let test_rejects_indefinite () =
    let a = M.identity 3 in
    M.set a 2 2 (K.of_float (-1.0));
    try
      ignore (Ch.factor a);
      Alcotest.fail "indefinite accepted"
    with Ch.Not_positive_definite 2 -> ()

  let test_normal_equations_match_qr_when_easy () =
    (* On well-conditioned data both solvers agree. *)
    let rng = Dompool.Prng.create 603 in
    let a = Rand.matrix rng 12 6 in
    let b = Rand.vector rng 12 in
    let x_qr = Qr.least_squares a b in
    let x_ne = Ch.least_squares a b in
    check "agree when easy" true
      (K.R.compare
         (V.norm (V.sub x_qr x_ne))
         (K.R.mul_float (K.R.add_float (V.norm x_qr) 1.0) (1e10 *. K.R.eps))
      <= 0)

  (* The stability gap: on a Vandermonde-like matrix with kappa ~ 1e8,
     the normal equations square it to ~1e16 and lose roughly twice the
     digits QR loses. *)
  let test_stability_gap () =
    if (not K.is_complex) && K.prec = Multidouble.Precision.DD then begin
      let n = 12 and m = 20 in
      let point i =
        K.of_float (float_of_int (i + 1) /. float_of_int m)
      in
      let a =
        M.init m n (fun i k ->
            let rec pow acc e =
              if e = 0 then acc else pow (K.mul acc (point i)) (e - 1)
            in
            pow K.one k)
      in
      let x_true = V.init n (fun i -> K.of_float (float_of_int (i + 1))) in
      let b = M.matvec a x_true in
      let err x =
        K.R.to_float (V.norm (V.sub x x_true))
        /. K.R.to_float (V.norm x_true)
      in
      let e_qr = err (Qr.least_squares a b) in
      let e_ne = err (Ch.least_squares a b) in
      (* QR keeps far more digits than the squared-condition route. *)
      check "QR beats normal equations" true (e_ne > 100.0 *. e_qr);
      check "QR still accurate" true (e_qr < 1e-15)
    end

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "factorization" test_factor;
        t "solve" test_solve;
        t "rejects indefinite" test_rejects_indefinite;
        t "normal equations vs qr (easy)" test_normal_equations_match_qr_when_easy;
        t "stability gap (the paper's argument)" test_stability_gap;
      ] )
end

module Tdd = T (Scalar.Dd)
module Tqd = T (Scalar.Qd)
module Tzdd = T (Scalar.Zdd)

let () =
  Alcotest.run "cholesky"
    [
      Tdd.suite "double double";
      Tqd.suite "quad double";
      Tzdd.suite "complex double double";
    ]
