(* Tests for the accelerated algorithms: the tiled back substitution
   (Algorithm 1) and the blocked Householder QR (Algorithm 2) are checked
   against the host baselines at several precisions, real and complex;
   the analytic per-kernel operation tallies are checked against a
   dynamically instrumented run; the launch count of Algorithm 1 matches
   the paper's 1 + N(N+1)/2. *)

open Mdlinalg
open Lsq_core

let check = Alcotest.(check bool)
let device = Gpusim.Device.v100

module Generic (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Tri = Host_tri.Make (K)
  module Hqr = Host_qr.Make (K)
  module Rand = Randmat.Make (K)
  module Bs = Tiled_back_sub.Make (K)
  module Nbs = Naive_back_sub.Make (K)
  module Qr = Blocked_qr.Make (K)
  module Ls = Least_squares.Make (K)

  let tol factor = K.R.of_float (factor *. K.R.eps)

  let below msg x bound =
    if K.R.compare x bound > 0 then
      Alcotest.failf "%s: %s > %s" msg (K.R.to_string x) (K.R.to_string bound)

  let test_back_sub_matches_host () =
    let rng = Dompool.Prng.create 100 in
    List.iter
      (fun (dim, tile) ->
        let u = Rand.upper rng dim in
        let b, x_true = Rand.rhs_for rng u in
        let res = Bs.run ~device ~u ~b ~tile () in
        let x_host = Tri.back_substitute u b in
        below
          (Printf.sprintf "accelerated vs host (%d/%d)" dim tile)
          (V.norm (V.sub res.Bs.x x_host))
          (K.R.mul (V.norm x_host) (tol 1e8));
        below "residual" (Tri.residual u res.Bs.x b) (tol 1e6);
        below "vs known solution"
          (V.norm (V.sub res.Bs.x x_true))
          (K.R.mul (V.norm x_true) (tol 1e10)))
      [ (8, 4); (16, 4); (12, 3); (24, 8); (32, 8) ]

  let test_back_sub_launches () =
    let rng = Dompool.Prng.create 101 in
    List.iter
      (fun (dim, tile) ->
        let nt = dim / tile in
        let u = Rand.upper rng dim in
        let b = Rand.vector rng dim in
        let res = Bs.run ~device ~u ~b ~tile () in
        (* Algorithm 1 executes 1 + N(N+1)/2 kernel launches. *)
        Alcotest.(check int)
          (Printf.sprintf "launches at N=%d" nt)
          (1 + (nt * (nt + 1) / 2))
          res.Bs.launches)
      [ (8, 4); (24, 4); (40, 8) ]

  let test_back_sub_single_tile () =
    let rng = Dompool.Prng.create 102 in
    let u = Rand.upper rng 6 in
    let b, _ = Rand.rhs_for rng u in
    let res = Bs.run ~device ~u ~b ~tile:6 () in
    below "single tile" (Tri.residual u res.Bs.x b) (tol 1e6)

  let test_naive_back_sub () =
    let rng = Dompool.Prng.create 110 in
    let dim = 24 in
    let u = Rand.upper rng dim in
    let b, _ = Rand.rhs_for rng u in
    let naive = Nbs.run ~device ~u ~b () in
    let tiled = Bs.run ~device ~u ~b ~tile:8 () in
    below "naive matches tiled"
      (V.norm (V.sub naive.Nbs.x tiled.Bs.x))
      (K.R.mul (V.norm tiled.Bs.x) (tol 1e8));
    below "naive residual" (Tri.residual u naive.Nbs.x b) (tol 1e6);
    (* the classic algorithm needs ~2 dim launches *)
    Alcotest.(check int) "naive launches" ((2 * dim) - 1)
      naive.Nbs.launches;
    (* and at a realistic dimension the simulated device charges the
       classic algorithm more time (at dim 24 everything is overhead) *)
    let tiled_big = Bs.run_plan ~device ~dim:2560 ~tile:32 () in
    let naive_big = Nbs.run_plan ~device ~dim:2560 () in
    check "tiled is cheaper" true
      (tiled_big.Bs.kernel_ms < naive_big.Nbs.kernel_ms)

  let test_back_sub_bad_args () =
    let rng = Dompool.Prng.create 103 in
    let u = Rand.upper rng 8 in
    let b = Rand.vector rng 8 in
    (try
       ignore (Bs.run ~device ~u ~b ~tile:3 ());
       Alcotest.fail "tile must divide dimension"
     with Invalid_argument _ -> ())

  let qr_properties name a tile =
    let res = Qr.run ~device ~a ~tile () in
    let q = res.Qr.q and r = res.Qr.r in
    below (name ^ ": orthogonality") (Hqr.orthogonality_defect q) (tol 1e6);
    below (name ^ ": A = QR") (Hqr.factorization_residual a q r) (tol 1e6);
    let ok = ref true in
    for j = 0 to M.cols r - 1 do
      for i = j + 1 to M.rows r - 1 do
        if not (K.is_zero (M.get r i j)) then ok := false
      done
    done;
    check (name ^ ": R upper") true !ok

  let test_qr_square () =
    let rng = Dompool.Prng.create 104 in
    List.iter
      (fun (n, tile) ->
        let a = Rand.matrix rng n n in
        qr_properties (Printf.sprintf "square %d/%d" n tile) a tile)
      [ (8, 4); (16, 4); (16, 8); (24, 8); (32, 16) ]

  let test_qr_rectangular () =
    let rng = Dompool.Prng.create 105 in
    List.iter
      (fun (m, n, tile) ->
        let a = Rand.matrix rng m n in
        qr_properties (Printf.sprintf "rect %dx%d/%d" m n tile) a tile)
      [ (24, 16, 8); (40, 16, 8); (20, 8, 4) ]

  let test_qr_single_panel () =
    let rng = Dompool.Prng.create 106 in
    let a = Rand.matrix rng 12 4 in
    qr_properties "single panel" a 4

  let test_qr_matches_host_r () =
    (* R is unique up to the unit phases of its rows; compare the moduli. *)
    let rng = Dompool.Prng.create 107 in
    let n = 16 in
    let a = Rand.matrix rng n n in
    let res = Qr.run ~device ~a ~tile:4 () in
    let _, r_host = Hqr.factor a in
    let d = ref K.R.zero in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let e =
          K.R.abs
            (K.R.sub (K.abs (M.get res.Qr.r i j)) (K.abs (M.get r_host i j)))
        in
        if K.R.compare e !d > 0 then d := e
      done
    done;
    below "|R| matches host" !d (K.R.mul (M.max_abs a) (tol 1e8))

  let test_least_squares () =
    let rng = Dompool.Prng.create 108 in
    (* Square system with known solution. *)
    let n = 16 in
    let a = Rand.matrix rng n n in
    let b, x_true = Rand.rhs_for rng a in
    let res = Ls.solve ~device ~a ~b ~tile:4 () in
    below "square solve"
      (V.norm (V.sub res.Ls.x x_true))
      (K.R.mul (V.norm x_true) (tol 1e10));
    (* Overdetermined inconsistent system: normal equations hold. *)
    let m = 24 and n = 8 in
    let a = Rand.matrix rng m n in
    let b = Rand.vector rng m in
    let res = Ls.solve ~device ~a ~b ~tile:4 () in
    let g = M.matvec (M.adjoint a) (V.sub b (M.matvec a res.Ls.x)) in
    below "normal equations" (V.norm g) (K.R.mul (V.norm b) (tol 1e10));
    (* And it agrees with the host least squares. *)
    let x_host = Hqr.least_squares a b in
    below "matches host LS"
      (V.norm (V.sub res.Ls.x x_host))
      (K.R.mul (V.norm x_host) (tol 1e10))

  let test_thin_solver () =
    let rng = Dompool.Prng.create 112 in
    (* Square and overdetermined systems: the economy path must agree
       with the full-Q solver to working precision. *)
    List.iter
      (fun (m, n) ->
        let a = Rand.matrix rng m n in
        let b = Rand.vector rng m in
        let full = Ls.solve ~device ~a ~b ~tile:4 () in
        let thin = Ls.solve_thin ~device ~a ~b ~tile:4 () in
        below
          (Printf.sprintf "thin matches full (%dx%d)" m n)
          (V.norm (V.sub thin.Ls.x full.Ls.x))
          (K.R.mul (K.R.add_float (V.norm full.Ls.x) 1.0) (tol 1e10)))
      [ (16, 16); (24, 12) ];
    (* and it saves the dominant Q update: strictly cheaper kernels *)
    let full = Ls.plan ~device ~rows:1024 ~cols:1024 ~tile:128 () in
    let thin = Ls.plan_thin ~device ~rows:1024 ~cols:1024 ~tile:128 () in
    check "thin is cheaper" true
      (thin.Ls.qr_kernel_ms < 0.8 *. full.Ls.qr_kernel_ms)

  let test_bitwise_determinism () =
    (* The simulated kernels parallelize over blocks writing disjoint
       outputs, so the numerical results must be bit-identical no matter
       how many domains execute them. *)
    let rng = Dompool.Prng.create 111 in
    let a = Rand.matrix rng 24 16 in
    let u = Rand.upper rng 24 in
    let b = Rand.vector rng 24 in
    let with_pool workers f =
      let pool = Dompool.Domain_pool.create workers in
      let sim =
        Gpusim.Sim.create ~pool ~device ~prec:K.prec ()
      in
      let r = f sim in
      Dompool.Domain_pool.shutdown pool;
      r
    in
    let q1, r1 = with_pool 1 (fun sim -> Qr.factor sim a ~tile:8) in
    let q4, r4 = with_pool 4 (fun sim -> Qr.factor sim a ~tile:8) in
    check "Q bitwise equal" true (M.equal q1 q4);
    check "R bitwise equal" true (M.equal r1 r4);
    let x1 = with_pool 1 (fun sim -> Bs.solve sim u b ~tile:8) in
    let x4 = with_pool 4 (fun sim -> Bs.solve sim u b ~tile:8) in
    check "x bitwise equal" true (V.equal x1 x4)

  let test_timing_independent_of_execution () =
    (* Costed time must be identical with and without numeric execution:
       that is what lets the benches time dimensions too big to execute. *)
    let rng = Dompool.Prng.create 109 in
    let a = Rand.matrix rng 16 16 in
    let on = Qr.run ~execute:true ~device ~a ~tile:4 () in
    let off = Qr.run ~execute:false ~device ~a ~tile:4 () in
    Alcotest.(check (float 1e-9)) "kernel ms" on.Qr.kernel_ms off.Qr.kernel_ms;
    Alcotest.(check (float 1e-9)) "wall ms" on.Qr.wall_ms off.Qr.wall_ms;
    Alcotest.(check int) "launches" on.Qr.launches off.Qr.launches;
    let u = Rand.upper rng 16 in
    let b = Rand.vector rng 16 in
    let on = Bs.run ~execute:true ~device ~u ~b ~tile:4 () in
    let off = Bs.run ~execute:false ~device ~u ~b ~tile:4 () in
    Alcotest.(check (float 1e-9)) "bs kernel ms" on.Bs.kernel_ms
      off.Bs.kernel_ms

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "back substitution matches host" test_back_sub_matches_host;
        t "back substitution launch count" test_back_sub_launches;
        t "back substitution single tile" test_back_sub_single_tile;
        t "naive back substitution baseline" test_naive_back_sub;
        t "back substitution bad args" test_back_sub_bad_args;
        t "qr square" test_qr_square;
        t "qr rectangular" test_qr_rectangular;
        t "qr single panel" test_qr_single_panel;
        t "qr matches host R" test_qr_matches_host_r;
        t "least squares" test_least_squares;
        t "thin (economy) solver" test_thin_solver;
        t "bitwise determinism across pools" test_bitwise_determinism;
        t "timing independent of execution" test_timing_independent_of_execution;
      ] )
end

module Td = Generic (Scalar.D)
module Tdd = Generic (Scalar.Dd)
module Tqd = Generic (Scalar.Qd)
module Tod = Generic (Scalar.Od)
module Tzdd = Generic (Scalar.Zdd)
module Tzqd = Generic (Scalar.Zqd)

(* ------------------------------------------------------------------ *)
(* Analytic flop descriptors vs dynamically counted operations         *)
(* ------------------------------------------------------------------ *)

module Counted_qd = Multidouble.Counted.Make (Multidouble.Quad_double)
module Kc = Scalar.Real (Counted_qd)
module Bsc = Tiled_back_sub.Make (Kc)
module Qrc = Blocked_qr.Make (Kc)
module Randc = Randmat.Make (Kc)
module Mc = Mat.Make (Kc)

let count_with f =
  (* Single-worker pool so the shared counters see every operation. *)
  let pool = Dompool.Domain_pool.create 1 in
  let sim =
    Gpusim.Sim.create ~pool ~device ~prec:Multidouble.Precision.QD ()
  in
  Counted_qd.reset ();
  f sim;
  let dyn = Counted_qd.snapshot () in
  let analytic = Gpusim.Profile.total_ops sim.Gpusim.Sim.profile in
  Dompool.Domain_pool.shutdown pool;
  (Gpusim.Counter.of_tally dyn, analytic)

let ops_close msg (dyn : Gpusim.Counter.ops) (ana : Gpusim.Counter.ops) =
  let close a b =
    Float.abs (a -. b) <= 1e-9 +. (0.001 *. Float.max a b)
  in
  if
    not
      (close dyn.Gpusim.Counter.adds ana.Gpusim.Counter.adds
      && close dyn.Gpusim.Counter.muls ana.Gpusim.Counter.muls
      && close dyn.Gpusim.Counter.divs ana.Gpusim.Counter.divs
      && close dyn.Gpusim.Counter.sqrts ana.Gpusim.Counter.sqrts)
  then
    Alcotest.failf "%s: dynamic %a vs analytic %a" msg Gpusim.Counter.pp dyn
      Gpusim.Counter.pp ana

let test_back_sub_flops () =
  let rng = Dompool.Prng.create 200 in
  let dim = 24 and tile = 4 in
  let u = Randc.upper rng dim in
  let b = Randc.vector rng dim in
  Counted_qd.reset ();
  let dyn, ana = count_with (fun sim -> ignore (Bsc.solve sim u b ~tile)) in
  ops_close "back substitution" dyn ana

let test_qr_flops () =
  let rng = Dompool.Prng.create 201 in
  let a = Randc.matrix rng 16 12 in
  let dyn, ana = count_with (fun sim -> ignore (Qrc.factor sim a ~tile:4)) in
  ops_close "blocked qr" dyn ana

let () =
  Alcotest.run "lsq_core"
    [
      Td.suite "double";
      Tdd.suite "double double";
      Tqd.suite "quad double";
      Tod.suite "octo double";
      Tzdd.suite "complex double double";
      Tzqd.suite "complex quad double";
      ( "flop accounting",
        [
          Alcotest.test_case "back substitution" `Quick test_back_sub_flops;
          Alcotest.test_case "blocked qr" `Quick test_qr_flops;
        ] );
    ]
