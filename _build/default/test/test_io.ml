(* Tests for the full-precision matrix persistence. *)

open Mdlinalg

let check = Alcotest.(check bool)

let with_temp f =
  let path = Filename.temp_file "mdls" ".mat" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

module T (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Io = Mat_io.Make (K)
  module Rand = Randmat.Make (K)

  let test_roundtrip () =
    let rng = Dompool.Prng.create 701 in
    let m = Rand.matrix rng 7 5 in
    with_temp (fun path ->
        Io.save_mat path m;
        let m' = Io.load_mat path in
        check "bit-exact matrix roundtrip" true (M.equal m m'));
    let v = Rand.vector rng 9 in
    with_temp (fun path ->
        Io.save_vec path v;
        let v' = Io.load_vec path in
        check "bit-exact vector roundtrip" true (V.equal v v'))

  let test_full_limbs () =
    (* values with information in every limb survive *)
    let rng = Dompool.Prng.create 702 in
    let full () =
      K.of_planes
        (Array.init K.width (fun i ->
             Dompool.Prng.sym_float rng *. (2.0 ** (-50.0 *. float_of_int i))))
    in
    let m = M.init 3 3 (fun _ _ -> full ()) in
    with_temp (fun path ->
        Io.save_mat path m;
        check "deep limbs" true (M.equal m (Io.load_mat path)))

  let test_rejects_garbage () =
    with_temp (fun path ->
        let oc = open_out path in
        output_string oc "not a matrix\n";
        close_out oc;
        try
          ignore (Io.load_mat path);
          Alcotest.fail "garbage accepted"
        with Failure _ -> ())
end

module Tdd = T (Scalar.Dd)
module Tqd = T (Scalar.Qd)
module Tzdd = T (Scalar.Zdd)

(* cross-precision and real-to-complex reads *)
let test_cross_precision () =
  let module Io2 = Mat_io.Make (Scalar.Dd) in
  let module Io4 = Mat_io.Make (Scalar.Qd) in
  let module M2 = Mat.Make (Scalar.Dd) in
  let module M4 = Mat.Make (Scalar.Qd) in
  let module R2 = Randmat.Make (Scalar.Dd) in
  let rng = Dompool.Prng.create 703 in
  let m2 = R2.matrix rng 4 4 in
  with_temp (fun path ->
      Io2.save_mat path m2;
      (* dd file read as qd: exact zero-padded promotion *)
      let m4 = Io4.load_mat path in
      let ok = ref true in
      for i = 0 to 3 do
        for j = 0 to 3 do
          let promoted =
            Multidouble.Quad_double.of_limbs
              (Multidouble.Double_double.to_limbs (M2.get m2 i j))
          in
          if not (Multidouble.Quad_double.equal promoted (M4.get m4 i j))
          then ok := false
        done
      done;
      check "dd -> qd promotion" true !ok)

let test_real_into_complex () =
  let module IoR = Mat_io.Make (Scalar.Dd) in
  let module IoC = Mat_io.Make (Scalar.Zdd) in
  let module MR = Mat.Make (Scalar.Dd) in
  let module MC = Mat.Make (Scalar.Zdd) in
  let m = MR.init 2 2 (fun i j -> Multidouble.Double_double.of_int ((3 * i) + j)) in
  with_temp (fun path ->
      IoR.save_mat path m;
      let mc = IoC.load_mat path in
      check "re carries the value" true
        (Multidouble.Double_double.equal
           (Scalar.Zdd.re (MC.get mc 1 1))
           (Multidouble.Double_double.of_int 4));
      check "im is zero" true
        (Multidouble.Double_double.is_zero (Scalar.Zdd.im (MC.get mc 1 1))));
  (* the reverse must be refused *)
  let mc = MC.init 1 1 (fun _ _ -> Scalar.Zdd.of_floats 1.0 2.0) in
  with_temp (fun path ->
      IoC.save_mat path mc;
      try
        ignore (IoR.load_mat path);
        Alcotest.fail "complex into real accepted"
      with Failure _ -> ())

let test_pipeline () =
  (* End-to-end: a dd system written to disk, reloaded as qd, solved
     with refinement at qd accuracy — the mixed-precision workflow the
     persistence exists for. *)
  let module IoDD = Mat_io.Make (Scalar.Dd) in
  let module IoQD = Mat_io.Make (Scalar.Qd) in
  let module R = Lsq_core.Refine.Make (Multidouble.Double_double) (Multidouble.Quad_double) in
  let module M2 = Mat.Make (Scalar.Dd) in
  let module Rand2 = Randmat.Make (Scalar.Dd) in
  let rng = Dompool.Prng.create 704 in
  let n = 12 in
  let a2 = Rand2.matrix rng n n in
  let a2 =
    M2.init n n (fun i j ->
        if i = j then
          Multidouble.Double_double.add (M2.get a2 i j)
            (Multidouble.Double_double.of_int 6)
        else M2.get a2 i j)
  in
  let module MQ = Mat.Make (Scalar.Qd) in
  let module VQ = Vec.Make (Scalar.Qd) in
  with_temp (fun path ->
      IoDD.save_mat path a2;
      (* reload as quad double (exact promotion) and move into the
         refine module's matrix type element by element *)
      let a4raw = IoQD.load_mat path in
      let a4 = R.MH.init n n (fun i j -> MQ.get a4raw i j) in
      let x_true =
        R.VH.init n (fun i -> Multidouble.Quad_double.of_int (i + 1))
      in
      let b = R.MH.matvec a4 x_true in
      let res = R.solve ~a:a4 ~b ~tile:4 () in
      let err =
        Multidouble.Quad_double.to_float
          (R.VH.norm (R.VH.sub res.R.x x_true))
        /. Multidouble.Quad_double.to_float (R.VH.norm x_true)
      in
      ignore (VQ.create 0);
      check "refined to qd accuracy from a dd file" true (err < 1e-55))

let () =
  Alcotest.run "mat io"
    [
      ( "roundtrips",
        [
          Alcotest.test_case "dd" `Quick Tdd.test_roundtrip;
          Alcotest.test_case "qd" `Quick Tqd.test_roundtrip;
          Alcotest.test_case "complex dd" `Quick Tzdd.test_roundtrip;
          Alcotest.test_case "full limbs dd" `Quick Tdd.test_full_limbs;
          Alcotest.test_case "full limbs qd" `Quick Tqd.test_full_limbs;
        ] );
      ( "conversions",
        [
          Alcotest.test_case "cross precision" `Quick test_cross_precision;
          Alcotest.test_case "real into complex" `Quick test_real_into_complex;
          Alcotest.test_case "rejects garbage" `Quick Tdd.test_rejects_garbage;
          Alcotest.test_case "save / reload / refine pipeline" `Quick
            test_pipeline;
        ] );
    ]
