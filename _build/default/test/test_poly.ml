(* Tests for the multivariate polynomial layer and the total-degree
   homotopy solver built on the accelerated least squares solver. *)

open Mdlinalg
open Mdseries

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- polynomial arithmetic over real quad doubles ---- *)

module Pq = Poly.Make (Scalar.Qd)
module Q = Multidouble.Quad_double

let x_ = Pq.variable ~nvars:2 0
let y_ = Pq.variable ~nvars:2 1

let test_poly_ring () =
  (* (x + y)^2 = x^2 + 2xy + y^2 *)
  let s = Pq.add x_ y_ in
  let lhs = Pq.mul s s in
  let rhs =
    Pq.of_terms ~nvars:2
      [
        (Q.one, [| 2; 0 |]);
        (Q.of_int 2, [| 1; 1 |]);
        (Q.one, [| 0; 2 |]);
      ]
  in
  checki "binomial terms" 0 (List.length (Pq.sub lhs rhs).Pq.terms);
  checki "degree" 2 (Pq.degree lhs);
  (* cancellation collapses terms *)
  let z = Pq.sub lhs lhs in
  checki "zero poly" 0 (List.length z.Pq.terms);
  checki "degree of zero" 0 (Pq.degree z);
  (* mul degree adds *)
  checki "deg(p*q)" 4 (Pq.degree (Pq.mul lhs rhs))

let test_poly_eval_diff () =
  (* p = 3 x^2 y - y + 5 *)
  let p =
    Pq.of_terms ~nvars:2
      [
        (Q.of_int 3, [| 2; 1 |]);
        (Q.of_int (-1), [| 0; 1 |]);
        (Q.of_int 5, [| 0; 0 |]);
      ]
  in
  let at vx vy = Pq.eval p [| Q.of_int vx; Q.of_int vy |] in
  check "eval" true (Q.equal (at 2 3) (Q.of_int ((3 * 4 * 3) - 3 + 5)));
  check "eval 0" true (Q.equal (at 0 0) (Q.of_int 5));
  (* dp/dx = 6 x y; dp/dy = 3 x^2 - 1 *)
  let px = Pq.diff p 0 and py = Pq.diff p 1 in
  check "d/dx" true
    (Q.equal (Pq.eval px [| Q.of_int 2; Q.of_int 3 |]) (Q.of_int 36));
  check "d/dy" true
    (Q.equal (Pq.eval py [| Q.of_int 2; Q.of_int 3 |]) (Q.of_int 11));
  (* second derivatives commute *)
  let pxy = Pq.diff px 1 and pyx = Pq.diff py 0 in
  checki "schwarz" 0 (List.length (Pq.sub pxy pyx).Pq.terms);
  (* jacobian of a simple square system *)
  let sys = [| p; Pq.mul x_ y_ |] in
  let j = Pq.jacobian sys [| Q.of_int 2; Q.of_int 3 |] in
  let module M = Mat.Make (Scalar.Qd) in
  check "j01" true (Q.equal (M.get j 0 1) (Q.of_int 11));
  check "j10" true (Q.equal (M.get j 1 0) (Q.of_int 3));
  check "j11" true (Q.equal (M.get j 1 1) (Q.of_int 2));
  (* p has total degree 3 (the 3 x^2 y term), x y has degree 2 *)
  checki "bezout" 6 (Pq.total_degree sys)

let test_poly_errors () =
  (try
     ignore (Pq.of_terms ~nvars:2 [ (Q.one, [| 1 |]) ]);
     Alcotest.fail "bad arity accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Pq.of_terms ~nvars:2 [ (Q.one, [| -1; 0 |]) ]);
     Alcotest.fail "negative power accepted"
   with Invalid_argument _ -> ())

(* ---- the solver, over complex double doubles ---- *)

module S = Solve.Make (Multidouble.Double_double)
module Pc = S.P
module Kc = S.K

let conics : Pc.system =
  (* x^2 + y^2 - 4 = 0, x y - 1 = 0: four regular solutions *)
  [|
    Pc.of_terms ~nvars:2
      [
        (Kc.one, [| 2; 0 |]);
        (Kc.one, [| 0; 2 |]);
        (Kc.of_float (-4.0), [| 0; 0 |]);
      ];
    Pc.of_terms ~nvars:2
      [ (Kc.one, [| 1; 1 |]); (Kc.of_float (-1.0), [| 0; 0 |]) ];
  |]

let test_solve_conics () =
  let r = S.solve conics in
  checki "paths = bezout" 4 r.S.paths;
  checki "all converge" 4 (List.length r.S.solutions);
  checki "distinct" 4 (List.length (S.distinct r.S.solutions));
  List.iter
    (fun s ->
      check "residual small" true (s.S.residual < 1e-25);
      (* both coordinates are real for this system *)
      let x = s.S.point.(0) and y = s.S.point.(1) in
      check "real solutions" true
        (Multidouble.Double_double.to_float
           (Multidouble.Double_double.abs (Kc.im x))
        < 1e-20
        && Multidouble.Double_double.to_float
             (Multidouble.Double_double.abs (Kc.im y))
          < 1e-20))
    r.S.solutions

let test_solve_univariate () =
  (* x^3 - 2 = 0: the three cube roots of two *)
  let f : Pc.system =
    [|
      Pc.of_terms ~nvars:1
        [ (Kc.one, [| 3 |]); (Kc.of_float (-2.0), [| 0 |]) ];
    |]
  in
  let r = S.solve f in
  checki "three paths" 3 r.S.paths;
  checki "three roots" 3 (List.length (S.distinct r.S.solutions));
  let module Cf = Multidouble.Md_complex_funcs.Make (Multidouble.Double_double) in
  let expected = Cf.nroots (Kc.of_float 2.0) 3 in
  List.iter
    (fun s ->
      let root = s.S.point.(0) in
      let matches =
        Array.exists
          (fun e ->
            Multidouble.Double_double.to_float (Kc.abs (Kc.sub root e))
            < 1e-20)
          expected
      in
      check "is a cube root of 2" true matches)
    r.S.solutions

let test_solve_deficient () =
  (* x y - 1 = 0, x - 1 = 0: Bezout bound 2, but only (1, 1) is finite;
     the second path diverges and must be reported, not invented. *)
  let f : Pc.system =
    [|
      Pc.of_terms ~nvars:2
        [ (Kc.one, [| 1; 1 |]); (Kc.of_float (-1.0), [| 0; 0 |]) ];
      Pc.of_terms ~nvars:2
        [ (Kc.one, [| 1; 0 |]); (Kc.of_float (-1.0), [| 0; 0 |]) ];
    |]
  in
  let r = S.solve f in
  checki "two paths" 2 r.S.paths;
  let good = S.distinct r.S.solutions in
  checki "one finite solution" 1 (List.length good);
  (* the excess path either diverges/sticks or clusters onto the same
     finite point; both are honest outcomes, inventing a second distinct
     root is not *)
  checki "all paths accounted" 2
    (List.length r.S.solutions + r.S.diverged + r.S.stuck);
  let s = List.hd good in
  check "solution is (1,1)" true
    (Multidouble.Double_double.to_float
       (Kc.abs (Kc.sub s.S.point.(0) Kc.one))
    < 1e-20
    && Multidouble.Double_double.to_float
         (Kc.abs (Kc.sub s.S.point.(1) Kc.one))
      < 1e-20)

let test_parallel_matches_serial () =
  (* Independent paths tracked in parallel must give bit-identical
     endpoints to the serial run. *)
  let rp = S.solve ~parallel:true conics in
  let rs = S.solve ~parallel:false conics in
  checki "same count" (List.length rs.S.solutions)
    (List.length rp.S.solutions);
  List.iter2
    (fun a b ->
      checki "same start" a.S.start_index b.S.start_index;
      check "identical endpoint" true
        (Array.for_all2 Kc.equal a.S.point b.S.point))
    rs.S.solutions rp.S.solutions

let test_distinct_dedupe () =
  let mk v = { S.point = [| Kc.of_float v |]; residual = 0.0; start_index = 0 } in
  let sols = [ mk 1.0; mk 1.0; mk 2.0; mk (1.0 +. 1e-12) ] in
  checki "dedupe" 2 (List.length (S.distinct sols))

let () =
  Alcotest.run "polynomials"
    [
      ( "polynomial ring",
        [
          Alcotest.test_case "ring identities" `Quick test_poly_ring;
          Alcotest.test_case "eval and diff" `Quick test_poly_eval_diff;
          Alcotest.test_case "input validation" `Quick test_poly_errors;
        ] );
      ( "total-degree solver",
        [
          Alcotest.test_case "conics (4 regular roots)" `Quick
            test_solve_conics;
          Alcotest.test_case "cube roots of two" `Quick test_solve_univariate;
          Alcotest.test_case "deficient system" `Quick test_solve_deficient;
          Alcotest.test_case "parallel tracking matches serial" `Quick
            test_parallel_matches_serial;
          Alcotest.test_case "distinct dedupe" `Quick test_distinct_dedupe;
        ] );
    ]
