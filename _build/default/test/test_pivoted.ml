(* Tests for the column-pivoted (rank revealing) QR. *)

open Mdlinalg

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

module T (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module P = Pivoted_qr.Make (K)
  module Svd = Jacobi_svd.Make (K)
  module H = Host_qr.Make (K)
  module Rand = Randmat.Make (K)

  let small r = K.R.compare r (K.R.of_float (1e6 *. K.R.eps)) <= 0

  let permuted a perm =
    M.init (M.rows a) (M.cols a) (fun i j -> M.get a i perm.(j))

  let test_factorization () =
    let rng = Dompool.Prng.create 501 in
    List.iter
      (fun (m, n) ->
        let a = Rand.matrix rng m n in
        let q, r, perm = P.factor a in
        check "AP = QR" true
          (small (M.rel_distance (permuted a perm) (M.matmul q r)));
        check "Q unitary" true (small (H.orthogonality_defect q));
        (* pivoted diagonal decreases in modulus *)
        let ok = ref true in
        for k = 1 to min m n - 1 do
          if
            K.R.compare
              (K.abs (M.get r k k))
              (K.R.mul_float (K.abs (M.get r (k - 1) (k - 1))) 1.0000001)
            > 0
          then ok := false
        done;
        check "diagonal decreasing" true !ok;
        (* perm is a permutation *)
        let seen = Array.make n false in
        Array.iter (fun j -> seen.(j) <- true) perm;
        check "permutation" true (Array.for_all (fun b -> b) seen))
      [ (6, 6); (9, 5); (7, 7) ]

  let test_rank_detection () =
    let rng = Dompool.Prng.create 502 in
    (* Build a 7x5 matrix of rank 3. *)
    let base = Rand.matrix rng 7 3 in
    let mix = Rand.matrix rng 3 5 in
    let a = M.matmul base mix in
    let _, r, _ = P.factor a in
    checki "pivoted rank" 3 (P.rank_of_r r);
    checki "svd agrees" 3 (Svd.rank a);
    (* full-rank case *)
    let b = Rand.matrix rng 6 4 in
    let _, rb, _ = P.factor b in
    checki "full rank" 4 (P.rank_of_r rb)

  let test_rank_deficient_least_squares () =
    let rng = Dompool.Prng.create 503 in
    (* rank-2 system: the basic solution must still minimize the
       residual (gradient orthogonal to the range). *)
    let base = Rand.matrix rng 8 2 in
    let mix = Rand.matrix rng 2 5 in
    let a = M.matmul base mix in
    let b = Rand.vector rng 8 in
    let x, rk = P.least_squares a b in
    checki "detected rank" 2 rk;
    let resid = V.sub b (M.matvec a x) in
    let g = M.matvec (M.adjoint a) resid in
    check "normal equations" true
      (K.R.compare (V.norm g)
         (K.R.mul_float (V.norm b) (1e8 *. K.R.eps))
      <= 0);
    (* basic solution: at most rank nonzero entries *)
    let nonzeros =
      Array.fold_left
        (fun acc v -> if K.is_zero v then acc else acc + 1)
        0 x
    in
    check "basic solution sparsity" true (nonzeros <= 2);
    (* and on a full-rank system it matches the plain solver *)
    let a2 = Rand.matrix rng 8 4 in
    let x_true = Rand.vector rng 4 in
    let b2 = M.matvec a2 x_true in
    let x2, rk2 = P.least_squares a2 b2 in
    checki "full rank path" 4 rk2;
    check "recovers solution" true
      (K.R.compare
         (V.norm (V.sub x2 x_true))
         (K.R.mul_float (V.norm x_true) (1e8 *. K.R.eps))
      <= 0)

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "factorization" test_factorization;
        t "rank detection" test_rank_detection;
        t "rank-deficient least squares" test_rank_deficient_least_squares;
      ] )
end

module Tdd = T (Scalar.Dd)
module Tqd = T (Scalar.Qd)
module Tzdd = T (Scalar.Zdd)

let () =
  Alcotest.run "pivoted qr"
    [
      Tdd.suite "double double";
      Tqd.suite "quad double";
      Tzdd.suite "complex double double";
    ]
