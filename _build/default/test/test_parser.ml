(* Tests for the polynomial system parser. *)

open Mdlinalg
open Mdseries

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Pp = Poly_parser.Make (Scalar.Dd)
module P = Pp.P
module D = Multidouble.Double_double

let eval_at poly xs = P.eval poly (Array.map D.of_float xs)
let feq a b = Float.abs (D.to_float a -. b) < 1e-12

let test_basic () =
  let sys, vars = Pp.parse_system "x^2 + y^2 - 4; x*y - 1" in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] vars;
  checki "two polys" 2 (Array.length sys);
  checki "deg f1" 2 (P.degree sys.(0));
  check "f1(2,0)" true (feq (eval_at sys.(0) [| 2.0; 0.0 |]) 0.0);
  check "f2(2,0.5)" true (feq (eval_at sys.(1) [| 2.0; 0.5 |]) 0.0);
  check "f1(1,1)" true (feq (eval_at sys.(0) [| 1.0; 1.0 |]) (-2.0))

let test_juxtaposition_and_parens () =
  let sys, vars = Pp.parse_system "3x y + 2(x - 1)(y + 2)" in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] vars;
  (* at (2, 3): 3*2*3 + 2*(1)*(5) = 28 *)
  check "value" true (feq (eval_at sys.(0) [| 2.0; 3.0 |]) 28.0);
  (* expanded degree *)
  checki "degree" 2 (P.degree sys.(0))

let test_numbers () =
  let sys, _ = Pp.parse_system "2.5e1*x - 0.5 - 24.5x" in
  (* 25 x - 0.5 - 24.5 x = 0.5 x - 0.5 *)
  check "at 3" true (feq (eval_at sys.(0) [| 3.0 |]) 1.0);
  let sys, _ = Pp.parse_system "1e-3 x" in
  check "exponent" true (feq (eval_at sys.(0) [| 2.0 |]) 2e-3)

let test_unary_minus_and_powers () =
  let sys, _ = Pp.parse_system "-x^3 + -2x + x^0" in
  (* -8 - 4 + 1 at x = 2 *)
  check "value" true (feq (eval_at sys.(0) [| 2.0 |]) (-11.0));
  let sys, _ = Pp.parse_system "(x - 1)^4" in
  checki "degree" 4 (P.degree sys.(0));
  check "at 3" true (feq (eval_at sys.(0) [| 3.0 |]) 16.0)

let test_variable_order () =
  let _, vars = Pp.parse_system "b + a; a*c" in
  Alcotest.(check (list string)) "first appearance order" [ "b"; "a"; "c" ]
    vars

let test_complex_unit () =
  let module Ppc = Poly_parser.Make (Scalar.Zdd) in
  let module K = Scalar.Zdd in
  let sys, vars =
    Ppc.parse_system ~iunit:(K.of_floats 0.0 1.0) "x^2 + i; i i x"
  in
  Alcotest.(check (list string)) "i is not a variable" [ "x" ] vars;
  (* f1(1) = 1 + i *)
  let v = Ppc.P.eval sys.(0) [| K.of_float 1.0 |] in
  check "re" true (Float.abs (D.to_float (K.re v) -. 1.0) < 1e-12);
  check "im" true (Float.abs (D.to_float (K.im v) -. 1.0) < 1e-12);
  (* i*i*x = -x *)
  let w = Ppc.P.eval sys.(1) [| K.of_float 3.0 |] in
  check "i^2 = -1" true (Float.abs (D.to_float (K.re w) +. 3.0) < 1e-12)

let test_errors () =
  let rejects s =
    try
      ignore (Pp.parse_system s);
      Alcotest.failf "accepted %S" s
    with Poly_parser.Parse_error _ -> ()
  in
  rejects "x +";
  rejects "x ^ y";
  rejects "x ^ -2";
  rejects "(x";
  rejects "x $ y";
  rejects "x) + 1";
  rejects "4 - 2";
  (* imaginary unit without a complex scalar *)
  rejects "i*x"

let test_printer_roundtrip_fuzz () =
  (* The pretty-printer's output is valid input: random polynomials must
     survive a print/parse round trip up to the printed precision. *)
  let rng = Dompool.Prng.create 808 in
  for _ = 1 to 100 do
    let nterms = 1 + Dompool.Prng.int rng 5 in
    let p =
      P.of_terms ~nvars:2
        (List.init nterms (fun _ ->
             ( D.of_float (Dompool.Prng.sym_float rng *. 10.0),
               [| Dompool.Prng.int rng 4; Dompool.Prng.int rng 4 |] )))
    in
    (* constant polynomials print without variables, which a *system*
       parser rightly rejects; fuzz only genuine polynomials *)
    if p.P.terms <> [] && P.degree p > 0 then begin
      let printed = Format.asprintf "%a" P.pp p in
      (* the printer uses x0/x1 for the variables *)
      let reparsed, vars = Pp.parse_system printed in
      (* map variable order back to indices *)
      let pos name = int_of_string (String.sub name 1 (String.length name - 1)) in
      for _ = 1 to 10 do
        let x = Dompool.Prng.sym_float rng and y = Dompool.Prng.sym_float rng in
        let args_reparsed =
          Array.of_list
            (List.map (fun v -> D.of_float (if pos v = 0 then x else y)) vars)
        in
        let a = D.to_float (P.eval p [| D.of_float x; D.of_float y |]) in
        let b = D.to_float (P.eval reparsed.(0) args_reparsed) in
        check "round trip value" true
          (Float.abs (a -. b) <= 1e-4 *. (1.0 +. Float.abs a))
      done
    end
  done

let test_solver_integration () =
  (* Parse then solve: the conics again, through text. *)
  let module S = Solve.Make (Multidouble.Double_double) in
  let module Ppc = Poly_parser.Make (S.K) in
  let sys, vars =
    Ppc.parse_system ~iunit:(S.K.of_floats 0.0 1.0) "x^2 + y^2 - 4; x y - 1"
  in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] vars;
  let r = S.solve sys in
  checki "four solutions" 4 (List.length (S.distinct r.S.solutions))

let () =
  Alcotest.run "poly parser"
    [
      ( "parsing",
        [
          Alcotest.test_case "basic system" `Quick test_basic;
          Alcotest.test_case "juxtaposition and parens" `Quick
            test_juxtaposition_and_parens;
          Alcotest.test_case "number formats" `Quick test_numbers;
          Alcotest.test_case "unary minus and powers" `Quick
            test_unary_minus_and_powers;
          Alcotest.test_case "variable order" `Quick test_variable_order;
          Alcotest.test_case "complex unit" `Quick test_complex_unit;
          Alcotest.test_case "rejects malformed input" `Quick test_errors;
          Alcotest.test_case "printer round trip (fuzz)" `Quick
            test_printer_roundtrip_fuzz;
          Alcotest.test_case "parse then solve" `Quick
            test_solver_integration;
        ] );
    ]
