(* Tests for mixed-precision iterative refinement: a double double
   factorization refined with quad / octo double residuals must reach the
   high precision's accuracy; the residual history must contract at the
   working precision's rate. *)

open Lsq_core
open Mdlinalg

let check = Alcotest.(check bool)

module R_dd_qd = Refine.Make (Multidouble.Double_double) (Multidouble.Quad_double)
module R_dd_od = Refine.Make (Multidouble.Double_double) (Multidouble.Octo_double)
module R_d_dd = Refine.Make (Multidouble.Float_double) (Multidouble.Double_double)

module Check (Lo : Multidouble.Md_sig.S) (Hi : Multidouble.Md_sig.S) = struct
  module R = Refine.Make (Lo) (Hi)
  module MH = R.MH
  module VH = R.VH
  module RandH = Randmat.Make (R.KH)

  let run () =
    let rng = Dompool.Prng.create 404 in
    let n = 24 in
    let a = RandH.matrix rng n n in
    (* Make it comfortably nonsingular. *)
    let a =
      MH.init n n (fun i j ->
          if i = j then Hi.add (MH.get a i j) (Hi.of_int 8)
          else MH.get a i j)
    in
    let x_true = RandH.vector rng n in
    let b = MH.matvec a x_true in
    let res = R.solve ~a ~b ~tile:8 () in
    let err =
      Hi.to_float (VH.norm (VH.sub res.R.x x_true))
      /. Hi.to_float (VH.norm x_true)
    in
    check "reaches high precision" true (err < 1e6 *. Hi.eps);
    check "took a few iterations" true
      (res.R.iterations >= 2 && res.R.iterations <= 20);
    (* Every refinement sweep contracts the residual by roughly the
       working precision until the high-precision floor. *)
    (match res.R.residual_history with
     | r0 :: r1 :: _ ->
       check "first sweep contracts" true (r1 < r0 *. 1e-10 || r0 = 0.0)
     | _ -> Alcotest.fail "no history");
    check "history is recorded" true
      (List.length res.R.residual_history >= res.R.iterations)
end

module C1 = Check (Multidouble.Double_double) (Multidouble.Quad_double)
module C2 = Check (Multidouble.Double_double) (Multidouble.Octo_double)
module C3 = Check (Multidouble.Float_double) (Multidouble.Double_double)
module C4 = Check (Multidouble.Quad_double) (Multidouble.Octo_double)

let test_promote_demote () =
  let module R = Refine.Make (Multidouble.Double_double) (Multidouble.Quad_double) in
  let rng = Dompool.Prng.create 405 in
  for _ = 1 to 200 do
    let l =
      Array.init 2 (fun i ->
          Dompool.Prng.sym_float rng *. (2.0 ** (-53.0 *. float_of_int i)))
    in
    let x = Multidouble.Double_double.of_limbs l in
    (* promotion is exact *)
    check "roundtrip" true
      (Multidouble.Double_double.equal x (R.demote (R.promote x)));
    (* demotion of a promoted value plus tiny high-order noise rounds
       back to the same low value *)
    let noisy =
      Multidouble.Quad_double.add_float (R.promote x) 1e-40
    in
    let back = R.demote noisy in
    let d =
      Multidouble.Double_double.abs (Multidouble.Double_double.sub back x)
    in
    check "demote rounds" true
      (Multidouble.Double_double.to_float d < 1e-30)
  done

let test_complex_refinement () =
  let module R = Refine.Make_scalar (Scalar.Zdd) (Scalar.Zqd) in
  let module KH = Scalar.Zqd in
  let rng = Dompool.Prng.create 406 in
  let n = 16 in
  let a = R.MH.random rng n n in
  let a =
    R.MH.init n n (fun i j ->
        if i = j then KH.add (R.MH.get a i j) (KH.of_float 8.0)
        else R.MH.get a i j)
  in
  let x_true = R.VH.random rng n in
  let b = R.MH.matvec a x_true in
  let res = R.solve ~a ~b ~tile:8 () in
  let err =
    Multidouble.Quad_double.to_float (R.VH.norm (R.VH.sub res.R.x x_true))
    /. Multidouble.Quad_double.to_float (R.VH.norm x_true)
  in
  check "complex refinement reaches qd" true (err < 1e-55);
  check "a few sweeps" true (res.R.iterations >= 2 && res.R.iterations <= 20)

let test_mixed_realness_rejected () =
  try
    let module _ = Refine.Make_scalar (Scalar.Dd) (Scalar.Zqd) in
    Alcotest.fail "mixed realness accepted"
  with Invalid_argument _ -> ()

let test_singular_rejected () =
  let module R = R_dd_qd in
  let module MH = R.MH in
  let a = MH.create 4 5 in
  let b = Array.make 4 Multidouble.Quad_double.zero in
  try
    ignore (R.solve ~a ~b ~tile:1 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "refine"
    [
      ( "iterative refinement",
        [
          Alcotest.test_case "dd -> qd" `Quick C1.run;
          Alcotest.test_case "dd -> od" `Quick C2.run;
          Alcotest.test_case "d -> dd" `Quick C3.run;
          Alcotest.test_case "qd -> od" `Quick C4.run;
          Alcotest.test_case "complex dd -> qd" `Quick
            test_complex_refinement;
          Alcotest.test_case "rejects mixed realness" `Quick
            test_mixed_realness_rejected;
          Alcotest.test_case "promote/demote" `Quick test_promote_demote;
          Alcotest.test_case "rejects non-square" `Quick
            test_singular_rejected;
        ] );
    ]
