(* Tests for the multiple double arithmetic library: error-free
   transformations, per-precision algebraic checks, cross-checks of the
   specialized implementations against the generic expansion arithmetic,
   decimal conversion, and classic constants computed by series. *)

open Multidouble

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 0.0))

(* ------------------------------------------------------------------ *)
(* Error-free transformations                                          *)
(* ------------------------------------------------------------------ *)

let test_two_sum_exact () =
  let rng = Dompool.Prng.create 42 in
  for _ = 1 to 1000 do
    let a = Float.of_int (Dompool.Prng.int rng 1000000) in
    let b = Float.of_int (Dompool.Prng.int rng 1000000) in
    let s, e = Eft.two_sum a b in
    checkf "sum" (a +. b) s;
    checkf "no error on small ints" 0.0 e
  done

let test_two_sum_error_term () =
  let s, e = Eft.two_sum 1e30 1.0 in
  checkf "big" 1e30 s;
  checkf "error carries the small term" 1.0 e;
  let s, e = Eft.two_sum 1.0 (2.0 ** -60.0) in
  checkf "s" 1.0 s;
  checkf "e" (2.0 ** -60.0) e

let test_quick_two_sum () =
  let rng = Dompool.Prng.create 7 in
  for _ = 1 to 1000 do
    let a = Dompool.Prng.sym_float rng in
    let b = Dompool.Prng.sym_float rng *. 1e-20 in
    let s, e = Eft.two_sum a b in
    let s', e' = Eft.quick_two_sum a b in
    checkf "s agrees" s s';
    checkf "e agrees" e e'
  done

let test_two_prod_vs_dekker () =
  let rng = Dompool.Prng.create 99 in
  for _ = 1 to 1000 do
    let a = Dompool.Prng.sym_float rng *. 1e8 in
    let b = Dompool.Prng.sym_float rng *. 1e-3 in
    let p, e = Eft.two_prod a b in
    let p', e' = Eft.two_prod_dekker a b in
    checkf "p" p p';
    checkf "e" e e'
  done

let test_two_diff () =
  let d, e = Eft.two_diff 1.0 (2.0 ** -60.0) in
  checkf "d" 1.0 d;
  checkf "e" (-.(2.0 ** -60.0)) e

let test_three_sum_exact () =
  let rng = Dompool.Prng.create 5 in
  for _ = 1 to 200 do
    let a = Dompool.Prng.sym_float rng in
    let b = Dompool.Prng.sym_float rng *. 1e-17 in
    let c = Dompool.Prng.sym_float rng *. 1e-34 in
    let s0, s1, s2 = Eft.three_sum a b c in
    (* The three-term expansion must reproduce the inputs when summed in
       octo double precision. *)
    let od x = Octo_double.of_float x in
    let lhs =
      Octo_double.add (od s0) (Octo_double.add (od s1) (od s2))
    in
    let rhs = Octo_double.add (od a) (Octo_double.add (od b) (od c)) in
    check "exact" true (Octo_double.equal lhs rhs)
  done

(* ------------------------------------------------------------------ *)
(* Per-precision algebraic checks                                      *)
(* ------------------------------------------------------------------ *)

module Generic (S : Md_sig.S) = struct
  open S

  (* A value exercising all limbs: random leading double plus random
     lower-order noise at each limb scale. *)
  let random rng =
    let l =
      Array.init limbs (fun i ->
          Dompool.Prng.sym_float rng *. (2.0 ** (-53.0 *. float_of_int i)))
    in
    let x = of_limbs l in
    let scale = 2.0 ** float_of_int (Dompool.Prng.int rng 41 - 20) in
    mul_pwr2 x scale

  let nonzero rng =
    let rec go () =
      let x = random rng in
      if is_zero x || Float.abs (to_float x) < 1e-12 then go () else x
    in
    go ()

  let approx ?(tol = 16.0) msg a b =
    let d = abs (sub a b) in
    let m = max (abs a) (abs b) in
    let bound = mul_float m (tol *. eps) in
    if S.compare d bound > 0 then
      Alcotest.failf "%s: %s vs %s (diff %s)" msg (to_string a) (to_string b)
        (to_string d)

  let test_constants () =
    check "1+1=2" true (equal (add one one) two);
    check "2*5=10" true (equal (mul two (of_int 5)) ten);
    check "10/2=5" true (equal (div ten two) (of_int 5));
    check "sqrt 4 = 2" true (equal (sqrt (of_int 4)) two);
    check "sqrt 0 = 0" true (is_zero (sqrt zero));
    check "neg neg" true (equal (neg (neg ten)) ten);
    check "abs" true (equal (abs (neg ten)) ten);
    check "0 is zero" true (is_zero zero);
    check "1 not zero" false (is_zero one)

  let test_add_sub_roundtrip () =
    let rng = Dompool.Prng.create 11 in
    for _ = 1 to 500 do
      let a = random rng and b = random rng in
      (* The truncation error of a+b is relative to max(|a|,|b|). *)
      let d = abs (sub (sub (add a b) b) a) in
      let bound = mul_float (max (abs a) (abs b)) (16.0 *. eps) in
      if S.compare d bound > 0 then
        Alcotest.failf "a+b-b=a: residue %s" (to_string d);
      approx "commutative" (add a b) (add b a);
      check "a-a=0 small" true
        (S.compare (abs (sub a a)) (mul_float (abs a) (4.0 *. eps)) <= 0)
    done

  let test_mul_div_roundtrip () =
    let rng = Dompool.Prng.create 13 in
    for _ = 1 to 500 do
      let a = random rng and b = nonzero rng in
      approx ~tol:64.0 "a*b/b=a" (div (mul a b) b) a;
      approx "commutative" (mul a b) (mul b a)
    done

  let test_distributive () =
    let rng = Dompool.Prng.create 17 in
    for _ = 1 to 300 do
      let a = random rng and b = random rng and c = random rng in
      approx ~tol:64.0 "a(b+c) = ab+ac"
        (mul a (add b c))
        (add (mul a b) (mul a c))
    done

  let test_sqrt () =
    let rng = Dompool.Prng.create 19 in
    for _ = 1 to 200 do
      let a = abs (nonzero rng) in
      let r = sqrt a in
      approx ~tol:64.0 "sqrt^2" (mul r r) a
    done;
    approx "sqrt 2" (mul (sqrt two) (sqrt two)) two

  let test_mixed_ops () =
    let rng = Dompool.Prng.create 23 in
    for _ = 1 to 300 do
      let a = random rng in
      let f = Dompool.Prng.sym_float rng in
      approx "add_float" (add_float a f) (add a (of_float f));
      approx ~tol:64.0 "mul_float" (mul_float a f) (mul a (of_float f));
      check "mul_pwr2 exact" true
        (equal (mul_pwr2 a 8.0) (mul a (of_int 8)))
    done

  let test_compare () =
    let rng = Dompool.Prng.create 29 in
    for _ = 1 to 300 do
      let a = random rng and b = random rng in
      let c = S.compare a b in
      let df = to_float (sub a b) in
      if df > 0.0 then check "cmp pos" true (c > 0)
      else if df < 0.0 then check "cmp neg" true (c < 0);
      check "cmp self" true (S.compare a a = 0);
      check "min/max" true (S.compare (min a b) (max a b) <= 0)
    done;
    (* Ordering decided by a lower limb only. *)
    let x = of_limbs (Array.init limbs (fun i -> if i = 0 then 1.0 else 0.0)) in
    let tiny = 2.0 ** (-52.0 *. float_of_int limbs) in
    let y = add_float x tiny in
    if limbs > 1 then check "lower limb decides" true (S.compare y x > 0)

  let test_floor () =
    check "floor 2.5" true (equal (floor (of_string "2.5")) two);
    check "floor -2.5" true (equal (floor (of_string "-2.5")) (of_int (-3)));
    check "floor 7" true (equal (floor (of_int 7)) (of_int 7));
    if limbs > 1 then begin
      (* 5 + eps floors to 5; 5 - eps floors to 4. *)
      let tiny = 2.0 ** (-52.0 *. float_of_int (limbs - 1)) in
      let a = add_float (of_int 5) tiny in
      check "floor 5+tiny" true (equal (floor a) (of_int 5));
      let b = add_float (of_int 5) (-.tiny) in
      check "floor 5-tiny" true (equal (floor b) (of_int 4))
    end

  let test_rounding () =
    check "ceil 2.5" true (equal (ceil (of_string "2.5")) (of_int 3));
    check "ceil -2.5" true (equal (ceil (of_string "-2.5")) (of_int (-2)));
    check "ceil 7" true (equal (ceil (of_int 7)) (of_int 7));
    check "trunc 2.7" true (equal (trunc (of_string "2.7")) two);
    check "trunc -2.7" true (equal (trunc (of_string "-2.7")) (neg two));
    check "round 2.5" true (equal (round (of_string "2.5")) (of_int 3));
    check "round -2.5" true (equal (round (of_string "-2.5")) (of_int (-3)));
    check "round 2.4" true (equal (round (of_string "2.4")) two);
    check "round -2.4" true (equal (round (of_string "-2.4")) (neg two));
    let rng = Dompool.Prng.create 37 in
    for _ = 1 to 200 do
      let x = random rng in
      (* floor <= trunc-ish bracket and idempotence *)
      check "floor <= x" true (S.compare (floor x) x <= 0);
      check "x <= ceil" true (S.compare x (ceil x) <= 0);
      check "|trunc| <= |x|" true (S.compare (abs (trunc x)) (abs x) <= 0);
      check "floor idempotent" true (equal (floor (floor x)) (floor x));
      check "ceil = -floor(-x)" true (equal (ceil x) (neg (floor (neg x))))
    done

  let test_ldexp_fmod () =
    let x = of_string "1.375" in
    check "ldexp 4" true (equal (ldexp x 4) (of_int 22));
    check "ldexp -2" true
      (equal (ldexp (of_int 22) (-2)) (of_string "5.5"));
    check "ldexp 0" true (equal (ldexp x 0) x);
    (* big shifts round-trip exactly (start tiny so intermediates stay
       inside the double exponent range) *)
    let tiny = ldexp x (-800) in
    check "ldexp big" true (equal (ldexp (ldexp tiny 1500) (-700)) x);
    let a = of_string "7.5" and b = of_string "2.25" in
    (* 7.5 = 3*2.25 + 0.75 *)
    approx "fmod" (fmod a b) (of_string "0.75");
    approx "fmod negative" (fmod (neg a) b) (of_string "-0.75");
    let rng = Dompool.Prng.create 38 in
    for _ = 1 to 100 do
      let a = random rng and b = nonzero rng in
      let r = fmod a b in
      (* |r| < |b| (up to roundoff) and a - r is a multiple of b *)
      check "fmod bounded" true
        (S.compare (abs r) (mul_float (abs b) (1.0 +. 1e-10)) <= 0);
      let q = div (sub a r) b in
      approx ~tol:1e6 "quotient integral" q (round q)
    done

  let test_strings () =
    check "to_string 1" true
      (String.length (to_string one) > 0);
    let cases = [ "1.5"; "-3.25"; "0.125"; "1e10"; "-2.5e-3"; "123456.789" ] in
    List.iter
      (fun s ->
        let x = of_string s in
        let y = of_string (to_string x) in
        approx ("roundtrip " ^ s) x y)
      cases;
    let rng = Dompool.Prng.create 31 in
    for _ = 1 to 100 do
      let x = random rng in
      let y = of_string (to_string x) in
      approx ~tol:64.0 "random roundtrip" x y
    done;
    check "of_string 10 = ten" true (equal (of_string "10") ten);
    check "of_string 1_000" true (equal (of_string "1_000") (of_int 1000));
    check "of_string .5 + .5" true
      (equal (add (of_string "0.5") (of_string "0.5")) one);
    (try
       ignore (of_string "abc");
       Alcotest.fail "of_string should reject garbage"
     with Invalid_argument _ -> ())

  let test_of_int () =
    check "of_int 0" true (is_zero (of_int 0));
    check "of_int -1" true (equal (of_int (-1)) (neg one));
    let big = 1 lsl 60 in
    let x = of_int big in
    (* 2^60 is a power of two: exact in one limb. *)
    checkf "big int" (Float.of_int big) (to_float x);
    (* 2^60 + 3 needs 61 significant bits: exact from two limbs on. *)
    if limbs > 1 then
      check "big odd int" true
        (equal (sub (of_int (big + 3)) (of_int big)) (of_int 3))

  let test_pow10 () =
    check "pow10 0" true (equal (pow10 0) one);
    check "pow10 3" true (equal (pow10 3) (of_int 1000));
    approx "pow10 -2" (pow10 (-2)) (div one (of_int 100));
    approx "pow10 anti" (mul (pow10 9) (pow10 (-9))) one

  let test_special_values () =
    let inf = of_float Float.infinity in
    check "inf not finite" false (is_finite inf);
    check "one finite" true (is_finite one);
    let n = div one zero in
    check "1/0 not finite" false (is_finite n);
    (* infinities propagate through arithmetic *)
    check "inf + 1" false (is_finite (add_float inf 1.0));
    check "inf * 2" false (is_finite (mul inf two));
    (* nan is contagious and not finite *)
    let nan_ = of_float Float.nan in
    check "nan" false (is_finite nan_);
    check "nan + 1" false (is_finite (add nan_ one))

  let test_extreme_magnitudes () =
    (* near the top of the double exponent range *)
    let big = of_string "1e300" in
    check "big finite" true (is_finite big);
    approx ~tol:64.0 "big roundtrip" (div (mul big two) two) big;
    check "overflow" false (is_finite (mul big big));
    (* tiny values stay exact while every limb remains a normal double
       (limbs span 53*limbs bits below the leading one, so the safe
       window shrinks with the limb count) *)
    let tiny_e = if limbs <= 8 then -180 else -40 in
    let tiny = of_string (Printf.sprintf "1e%d" tiny_e) in
    check "tiny finite" true (is_finite tiny);
    approx ~tol:64.0 "tiny product"
      (mul (of_string (Printf.sprintf "1e%d" (20 - tiny_e))) tiny)
      (of_string "1e20");
    (* the §1.2 limitation: the exponent of every limb is a double
       exponent, so accuracy degrades near the bottom of the range long
       before the leading limb underflows *)
    if limbs >= 4 then begin
      let deep = of_string "1e-290" in
      let err =
        abs (sub (mul deep (of_string "1e290")) one)
      in
      check "deep values lose digits" true
        (S.compare err (of_float eps) > 0);
      check "but stay finite" true (is_finite deep)
    end;
    (* mixed magnitudes: far-apart operands absorb — when the format has
       no spare limbs (10^300 fits 13 limbs exactly, so formats beyond
       octo double legitimately keep the tiny term) *)
    if limbs <= 8 then begin
      let s = add big tiny in
      check "absorbed" true (equal s big)
    end

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "constants" test_constants;
        t "add/sub roundtrip" test_add_sub_roundtrip;
        t "mul/div roundtrip" test_mul_div_roundtrip;
        t "distributivity" test_distributive;
        t "sqrt" test_sqrt;
        t "mixed float ops" test_mixed_ops;
        t "compare/min/max" test_compare;
        t "floor" test_floor;
        t "rounding" test_rounding;
        t "ldexp/fmod" test_ldexp_fmod;
        t "strings" test_strings;
        t "of_int" test_of_int;
        t "pow10" test_pow10;
        t "special values" test_special_values;
        t "extreme magnitudes" test_extreme_magnitudes;
      ] )
end

module G1 = Generic (Float_double)
module G2 = Generic (Double_double)
module G3 = Generic (Triple_double)
module G4 = Generic (Quad_double)
module G8 = Generic (Octo_double)
module G16 = Generic (Hexa_double)

(* ------------------------------------------------------------------ *)
(* Cross-checks: specialized vs generic expansion arithmetic           *)
(* ------------------------------------------------------------------ *)

module Dd_generic = Expansion.Make (struct
  let limbs = 2
  let name = "double double (generic)"
end)

module Qd_generic = Expansion.Make (struct
  let limbs = 4
  let name = "quad double (generic)"
end)

module Cross (A : Md_sig.S) (B : Md_sig.S) = struct
  (* Compare results through the octo double lens: both versions must
     agree to a few ulps of the last limb. *)
  let to_od limbs_of x =
    Array.fold_left
      (fun acc l -> Octo_double.add acc (Octo_double.of_float l))
      Octo_double.zero (limbs_of x)

  let agree msg a b =
    let oa = to_od A.to_limbs a and ob = to_od B.to_limbs b in
    let d = Octo_double.abs (Octo_double.sub oa ob) in
    let m = Octo_double.abs oa in
    let bound = Octo_double.mul_float m (64.0 *. A.eps) in
    let bound =
      Octo_double.add bound (Octo_double.of_float (64.0 *. Float.min_float))
    in
    if Octo_double.compare d bound > 0 then
      Alcotest.failf "%s: %s vs %s" msg (A.to_string a) (B.to_string b)

  let random_pair rng =
    let l =
      Array.init A.limbs (fun i ->
          Dompool.Prng.sym_float rng *. (2.0 ** (-53.0 *. float_of_int i)))
    in
    (A.of_limbs l, B.of_limbs l)

  let run () =
    let rng = Dompool.Prng.create 1234 in
    for _ = 1 to 500 do
      let xa, xb = random_pair rng in
      let ya, yb = random_pair rng in
      agree "add" (A.add xa ya) (B.add xb yb);
      agree "sub" (A.sub xa ya) (B.sub xb yb);
      agree "mul" (A.mul xa ya) (B.mul xb yb);
      if not (B.is_zero yb) then agree "div" (A.div xa ya) (B.div xb yb);
      agree "sqrt" (A.sqrt (A.abs xa)) (B.sqrt (B.abs xb));
      let f = Dompool.Prng.sym_float rng in
      agree "add_float" (A.add_float xa f) (B.add_float xb f);
      agree "mul_float" (A.mul_float xa f) (B.mul_float xb f)
    done
end

module Cross_dd = Cross (Double_double) (Dd_generic)
module Cross_qd = Cross (Quad_double) (Qd_generic)

(* ------------------------------------------------------------------ *)
(* Constants by series                                                 *)
(* ------------------------------------------------------------------ *)

module Constants (S : Md_sig.S) = struct
  open S

  (* arctan(1/k) by the Taylor series, summed until terms vanish. *)
  let arctan_inv k =
    let k2 = of_int (k * k) in
    let term = ref (div one (of_int k)) in
    let sum = ref !term in
    let n = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      term := div !term k2;
      let t = div !term (of_int ((2 * !n) + 1)) in
      let t = if !n land 1 = 1 then neg t else t in
      let sum' = add !sum t in
      if equal sum' !sum then continue_ := false else sum := sum';
      incr n;
      if !n > 500 then continue_ := false
    done;
    !sum

  let pi_machin () =
    (* pi/4 = 4 arctan(1/5) - arctan(1/239) *)
    mul_pwr2 (sub (mul_pwr2 (arctan_inv 5) 4.0) (arctan_inv 239)) 4.0

  let pi_euler () =
    (* pi/4 = arctan(1/2) + arctan(1/3) *)
    mul_pwr2 (add (arctan_inv 2) (arctan_inv 3)) 4.0

  let e_series () =
    let term = ref one in
    let sum = ref one in
    let n = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      term := div !term (of_int !n);
      let sum' = add !sum !term in
      if equal sum' !sum then continue_ := false else sum := sum';
      incr n
    done;
    !sum

  let pi_literal =
    of_string "3.14159265358979323846264338327950288419716939937510"

  let e_literal =
    of_string "2.71828182845904523536028747135266249775724709369995"

  let close msg a b tol =
    let d = abs (sub a b) in
    if S.compare d (of_string tol) > 0 then
      Alcotest.failf "%s: %s vs %s" msg (to_string a) (to_string b)

  let run () =
    let pi1 = pi_machin () and pi2 = pi_euler () in
    (* Two independent formulas agree to working precision. *)
    let d = abs (sub pi1 pi2) in
    check "machin vs euler" true
      (S.compare d (mul_float pi1 (32.0 *. eps)) <= 0);
    let tol =
      if limbs >= 4 then "1e-48" else if limbs = 2 then "1e-29" else "1e-14"
    in
    close "pi vs literal" pi1 pi_literal tol;
    close "e vs literal" (e_series ()) e_literal tol
end

module C2 = Constants (Double_double)
module C4 = Constants (Quad_double)
module C8 = Constants (Octo_double)

(* ------------------------------------------------------------------ *)
(* Complex arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

module Complex_tests (S : Md_sig.S) = struct
  module C = Md_complex.Make (S)

  let random rng =
    C.make
      (S.of_float (Dompool.Prng.sym_float rng))
      (S.of_float (Dompool.Prng.sym_float rng))

  let approx msg a b =
    let d = C.norm2 (C.sub a b) in
    let m = S.add (C.norm2 a) (C.norm2 b) in
    let bound = S.mul_float (S.add m S.one) (256.0 *. S.eps *. S.eps) in
    if S.compare d bound > 0 then
      Alcotest.failf "%s: %s vs %s" msg (C.to_string a) (C.to_string b)

  let run () =
    let rng = Dompool.Prng.create 77 in
    check "i*i = -1" true (C.equal (C.mul C.i C.i) (C.neg C.one));
    for _ = 1 to 300 do
      let a = random rng and b = random rng in
      approx "conj(ab) = conj a conj b"
        (C.conj (C.mul a b))
        (C.mul (C.conj a) (C.conj b));
      if not (S.is_zero (C.norm2 b)) then
        approx "a*b/b" (C.div (C.mul a b) b) a;
      approx "sqrt^2" (C.mul (C.sqrt a) (C.sqrt a)) a;
      (* |ab| = |a||b| *)
      let lhs = C.abs (C.mul a b) in
      let rhs = S.mul (C.abs a) (C.abs b) in
      let d = S.abs (S.sub lhs rhs) in
      check "modulus multiplicative" true
        (S.compare d (S.mul_float (S.add_float rhs 1.0) (64.0 *. S.eps)) <= 0)
    done
end

module Cx2 = Complex_tests (Double_double)
module Cx4 = Complex_tests (Quad_double)
module Cx8 = Complex_tests (Octo_double)

(* ------------------------------------------------------------------ *)
(* Counted wrapper and precision table                                 *)
(* ------------------------------------------------------------------ *)

let test_counted () =
  let module C = Counted.Make (Quad_double) in
  C.reset ();
  let a = C.of_int 3 and b = C.of_int 4 in
  let _ = C.add a b in
  let _ = C.mul a b in
  let _ = C.mul a b in
  let _ = C.div a b in
  let _ = C.sqrt a in
  let t = C.snapshot () in
  Alcotest.(check int) "adds" 1 t.Counted.adds;
  Alcotest.(check int) "muls" 2 t.Counted.muls;
  Alcotest.(check int) "divs" 1 t.Counted.divs;
  Alcotest.(check int) "sqrts" 1 t.Counted.sqrts;
  let f = Counted.flops Precision.QD t in
  Alcotest.(check bool) "flops counted" true
    (f = 89 + (2 * 336) + 893 + Precision.sqrt_flops Precision.QD)

let test_precision_table () =
  Alcotest.(check int) "dd add" 20 (Precision.add_flops Precision.DD);
  Alcotest.(check int) "dd mul" 23 (Precision.mul_flops Precision.DD);
  Alcotest.(check int) "dd div" 70 (Precision.div_flops Precision.DD);
  Alcotest.(check int) "qd add" 89 (Precision.add_flops Precision.QD);
  Alcotest.(check int) "qd mul" 336 (Precision.mul_flops Precision.QD);
  Alcotest.(check int) "qd div" 893 (Precision.div_flops Precision.QD);
  Alcotest.(check int) "od add" 269 (Precision.add_flops Precision.OD);
  Alcotest.(check int) "od mul" 1742 (Precision.mul_flops Precision.OD);
  Alcotest.(check int) "od div" 5126 (Precision.div_flops Precision.OD);
  (* The paper's averages: 37.7, 439.3, 2379.0. *)
  let close a b = Float.abs (a -. b) < 0.05 in
  check "dd avg" true (close (Precision.average_flops Precision.DD) 37.7);
  check "qd avg" true (close (Precision.average_flops Precision.QD) 439.3);
  check "od avg" true (close (Precision.average_flops Precision.OD) 2379.0);
  (* Predicted overhead factors quoted in §4.4: 11.7 and 5.4. *)
  check "dd->qd predicted" true
    (Float.abs
       (Precision.predicted_overhead ~lo:Precision.DD ~hi:Precision.QD -. 11.7)
    < 0.05);
  check "qd->od predicted" true
    (Float.abs
       (Precision.predicted_overhead ~lo:Precision.QD ~hi:Precision.OD -. 5.4)
    < 0.05)

let test_registry () =
  List.iter
    (fun tag ->
      let (module S) = Registry.module_of_tag tag in
      Alcotest.(check int) "limbs" (Precision.limbs tag) S.limbs;
      check "one+one=two" true (S.equal (S.add S.one S.one) S.two))
    Precision.all

let test_renorm_idempotent () =
  let rng = Dompool.Prng.create 3 in
  for _ = 1 to 200 do
    let src =
      Array.init 8 (fun i ->
          Dompool.Prng.sym_float rng *. (2.0 ** (-50.0 *. float_of_int i)))
    in
    let r1 = Renorm.renormalize ~m:4 src in
    let r2 = Renorm.renormalize ~m:4 r1 in
    Alcotest.(check (array (float 0.0))) "idempotent" r1 r2
  done

let test_grow () =
  let e = [| 1.0; 2.0 ** -60.0 |] in
  let c = Renorm.grow e (2.0 ** -120.0) in
  checkf "carry" (2.0 ** -120.0) c;
  checkf "unchanged hi" 1.0 e.(0);
  (* adding a representable amount leaves no carry *)
  let e2 = [| 1.0; 0.0 |] in
  let c2 = Renorm.grow e2 (2.0 ** -40.0) in
  checkf "no carry" 0.0 c2;
  checkf "absorbed" (2.0 ** -40.0) e2.(1)

let test_merge_by_magnitude () =
  let rng = Dompool.Prng.create 9 in
  for _ = 1 to 200 do
    let mk n =
      let a = Array.init n (fun _ -> Dompool.Prng.sym_float rng) in
      Renorm.sort_by_magnitude a;
      a
    in
    let a = mk (1 + Dompool.Prng.int rng 8) in
    let b = mk (1 + Dompool.Prng.int rng 8) in
    let m = Renorm.merge_by_magnitude a b in
    (* result is decreasing in magnitude and a permutation of inputs *)
    let ok = ref true in
    for i = 1 to Array.length m - 1 do
      if Float.abs m.(i) > Float.abs m.(i - 1) then ok := false
    done;
    check "sorted" true !ok;
    let all = Array.append a b in
    Renorm.sort_by_magnitude all;
    let m' = Array.copy m in
    Renorm.sort_by_magnitude m';
    Alcotest.(check (array (float 0.0))) "permutation" all m'
  done;
  (* degenerate shapes *)
  Alcotest.(check (array (float 0.0)))
    "empty left" [| 2.0; 1.0 |]
    (Renorm.merge_by_magnitude [||] [| 2.0; 1.0 |]);
  Alcotest.(check (array (float 0.0)))
    "empty right" [| 2.0; 1.0 |]
    (Renorm.merge_by_magnitude [| 2.0; 1.0 |] [||])

let test_renormalize_into () =
  let dst = Array.make 8 9.9 in
  Renorm.renormalize_into ~m:4 [| 1.0; 2.0 ** -60.0 |] dst 2;
  checkf "offset 2" 1.0 dst.(2);
  checkf "offset 3" (2.0 ** -60.0) dst.(3);
  checkf "untouched" 9.9 dst.(0);
  checkf "untouched tail" 9.9 dst.(6)

let test_renormalize_zeros () =
  let r = Renorm.renormalize ~m:4 [| 0.0; 0.0; 0.0 |] in
  Alcotest.(check (array (float 0.0))) "all zero" [| 0.0; 0.0; 0.0; 0.0 |] r;
  let r = Renorm.renormalize ~m:3 [||] in
  Alcotest.(check (array (float 0.0))) "empty" [| 0.0; 0.0; 0.0 |] r;
  (* overlapping inputs compress *)
  let r = Renorm.renormalize ~m:2 [| 1.0; 1.0; 1.0; 1.0 |] in
  checkf "compressed" 4.0 r.(0);
  checkf "no residue" 0.0 r.(1)

let () =
  Alcotest.run "multidouble"
    [
      ( "eft",
        [
          Alcotest.test_case "two_sum exact" `Quick test_two_sum_exact;
          Alcotest.test_case "two_sum error" `Quick test_two_sum_error_term;
          Alcotest.test_case "quick_two_sum" `Quick test_quick_two_sum;
          Alcotest.test_case "two_prod vs dekker" `Quick test_two_prod_vs_dekker;
          Alcotest.test_case "two_diff" `Quick test_two_diff;
          Alcotest.test_case "three_sum exact" `Quick test_three_sum_exact;
        ] );
      G1.suite "double";
      G2.suite "double double";
      G3.suite "triple double";
      G4.suite "quad double";
      G8.suite "octo double";
      G16.suite "hexa double";
      ( "cross-check",
        [
          Alcotest.test_case "dd vs generic" `Quick Cross_dd.run;
          Alcotest.test_case "qd vs generic" `Quick Cross_qd.run;
        ] );
      ( "constants",
        [
          Alcotest.test_case "dd pi/e" `Quick C2.run;
          Alcotest.test_case "qd pi/e" `Quick C4.run;
          Alcotest.test_case "od pi/e" `Slow C8.run;
        ] );
      ( "complex",
        [
          Alcotest.test_case "dd complex" `Quick Cx2.run;
          Alcotest.test_case "qd complex" `Quick Cx4.run;
          Alcotest.test_case "od complex" `Slow Cx8.run;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "counted wrapper" `Quick test_counted;
          Alcotest.test_case "precision table" `Quick test_precision_table;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "renorm idempotent" `Quick test_renorm_idempotent;
          Alcotest.test_case "grow" `Quick test_grow;
          Alcotest.test_case "merge by magnitude" `Quick
            test_merge_by_magnitude;
          Alcotest.test_case "renormalize into" `Quick test_renormalize_into;
          Alcotest.test_case "renormalize degenerate" `Quick
            test_renormalize_zeros;
        ] );
    ]
