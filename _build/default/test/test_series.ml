(* Tests for the power series substrate and the block Toeplitz solvers —
   the path tracker core the paper's least squares solver was built for. *)

open Mdlinalg
open Mdseries

let check = Alcotest.(check bool)

module T (K : Scalar.S) = struct
  module S = Series.Make (K)
  module BT = Block_toeplitz.Make (K)
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  let d = 8

  let small r = K.R.compare r (K.R.of_float (1e6 *. K.R.eps)) <= 0

  let approx msg a b =
    if not (small (S.distance a b)) then
      Alcotest.failf "%s: distance %s" msg
        (K.R.to_string (S.distance a b))

  let rand_series rng ~degree : S.t =
    Array.init (degree + 1) (fun _ -> K.random rng)

  let rand_unit_series rng ~degree : S.t =
    let s = rand_series rng ~degree in
    s.(0) <- K.add s.(0) (K.of_float 4.0);
    (* keep the constant term well away from zero *)
    s

  let test_ring_ops () =
    let rng = Dompool.Prng.create 61 in
    for _ = 1 to 50 do
      let a = rand_series rng ~degree:d in
      let b = rand_series rng ~degree:d in
      let c = rand_series rng ~degree:d in
      approx "add commutes" (S.add a b) (S.add b a);
      approx "mul commutes" (S.mul a b) (S.mul b a);
      approx "distributes" (S.mul a (S.add b c))
        (S.add (S.mul a b) (S.mul a c));
      approx "sub inverse" (S.sub (S.add a b) b) a;
      approx "one neutral" (S.mul a (S.one ~degree:d)) a
    done

  let test_div_inverse () =
    let rng = Dompool.Prng.create 62 in
    for _ = 1 to 50 do
      let a = rand_series rng ~degree:d in
      let b = rand_unit_series rng ~degree:d in
      approx "div inverts" (S.mul (S.div a b) b) a;
      approx "inverse" (S.mul (S.inverse b) b) (S.one ~degree:d)
    done;
    (* 1 / (1 - t) = 1 + t + t^2 + ... *)
    let omt = S.one ~degree:d in
    omt.(1) <- K.neg K.one;
    let g = S.inverse omt in
    check "geometric" true
      (Array.for_all (fun c -> K.equal c K.one) g)

  let test_calculus () =
    let rng = Dompool.Prng.create 63 in
    for _ = 1 to 30 do
      let a = rand_series rng ~degree:d in
      (* integrate then derive: identity except the top coefficient *)
      let b = S.deriv (S.integrate a) in
      let a' = Array.copy a in
      a'.(d) <- K.zero;
      let b' = Array.copy b in
      b'.(d) <- K.zero;
      approx "deriv of integral" a' b';
      (* product rule: (ab)' = a'b + ab' *)
      let ab = S.mul a (rand_series rng ~degree:d) in
      ignore ab;
      let b2 = rand_series rng ~degree:d in
      let lhs = S.deriv (S.mul a b2) in
      let rhs = S.add (S.mul (S.deriv a) b2) (S.mul a (S.deriv b2)) in
      let lhs' = Array.copy lhs and rhs' = Array.copy rhs in
      lhs'.(d) <- K.zero;
      rhs'.(d) <- K.zero;
      approx "product rule" lhs' rhs'
    done

  let test_exp_sqrt () =
    (* exp0 t has coefficients 1/k!. *)
    let t = S.variable ~degree:d in
    let e = S.exp0 t in
    let fact = ref 1.0 in
    for k = 1 to d do
      fact := !fact *. float_of_int k;
      let expect = K.of_real (K.R.div K.R.one (K.R.of_int (int_of_float !fact))) in
      let diff = K.abs (K.sub e.(k) expect) in
      check "exp coefficient" true (small diff)
    done;
    (* exp0 a * exp0 (-a) = 1 *)
    let rng = Dompool.Prng.create 64 in
    for _ = 1 to 20 do
      let a = rand_series rng ~degree:d in
      a.(0) <- K.zero;
      approx "exp inverse" (S.mul (S.exp0 a) (S.exp0 (S.neg a)))
        (S.one ~degree:d);
      (* sqrt^2 = b *)
      let b = rand_unit_series rng ~degree:d in
      let r = S.sqrt b in
      approx "sqrt squares" (S.mul r r) b
    done

  let test_log_trig () =
    let rng = Dompool.Prng.create 70 in
    for _ = 1 to 20 do
      (* log1 inverts exp0 *)
      let a = rand_series rng ~degree:d in
      a.(0) <- K.zero;
      approx "log1 (exp0 a) = a" (S.log1 (S.exp0 a)) a;
      let b = rand_series rng ~degree:d in
      b.(0) <- K.one;
      approx "exp0 (log1 b) = b" (S.exp0 (S.log1 b)) b;
      (* the Pythagorean identity in the series ring *)
      let v = rand_series rng ~degree:d in
      v.(0) <- K.zero;
      let s, c = S.sin_cos0 v in
      approx "sin^2 + cos^2 = 1" (S.add (S.mul s s) (S.mul c c))
        (S.one ~degree:d);
      (* derivative identity: (sin v)' = v' cos v, up to the top term *)
      let lhs = S.deriv s in
      let rhs = S.mul (S.deriv v) c in
      let lhs = Array.copy lhs and rhs = Array.copy rhs in
      lhs.(d) <- K.zero;
      rhs.(d) <- K.zero;
      approx "chain rule" lhs rhs
    done;
    (* sin_cos0 of t matches the Taylor coefficients *)
    let t = S.variable ~degree:d in
    let s, c = S.sin_cos0 t in
    let fact = ref 1.0 in
    for k = 1 to d do
      fact := !fact *. float_of_int k;
      let expect =
        if k land 1 = 1 then
          (* sin coefficient: (-1)^((k-1)/2) / k! *)
          let v = K.R.div K.R.one (K.R.of_int (int_of_float !fact)) in
          if (k - 1) / 2 land 1 = 1 then K.R.neg v else v
        else K.R.zero
      in
      check "sin taylor" true
        (small (K.abs (K.sub s.(k) (K.of_real expect))));
      let expectc =
        if k land 1 = 0 then
          let v = K.R.div K.R.one (K.R.of_int (int_of_float !fact)) in
          if k / 2 land 1 = 1 then K.R.neg v else v
        else K.R.zero
      in
      check "cos taylor" true
        (small (K.abs (K.sub c.(k) (K.of_real expectc))))
    done;
    (* domain checks *)
    (try
       ignore (S.log1 (S.variable ~degree:d));
       Alcotest.fail "log1 should reject"
     with Invalid_argument _ -> ());
    (try
       ignore (S.sin_cos0 (S.one ~degree:d));
       Alcotest.fail "sin_cos0 should reject"
     with Invalid_argument _ -> ())

  let test_compose_eval () =
    let rng = Dompool.Prng.create 65 in
    for _ = 1 to 20 do
      let a = rand_series rng ~degree:d in
      (* compose with the identity is the identity *)
      approx "compose id" (S.compose a (S.variable ~degree:d)) a;
      (* eval at 0 is the constant term *)
      check "eval 0" true
        (K.equal (S.eval a K.zero) (S.constant a));
      (* eval is a ring morphism at a point *)
      let b = rand_series rng ~degree:d in
      let x = K.of_float 0.25 in
      let lhs = S.eval (S.add a b) x in
      let rhs = K.add (S.eval a x) (S.eval b x) in
      check "eval additive" true (small (K.abs (K.sub lhs rhs)))
    done

  (* ---- block Toeplitz ---- *)

  let rand_mat_series rng ~n ~degree : BT.mat_series =
    Array.init (degree + 1) (fun k ->
        let m = M.random rng n n in
        if k = 0 then
          (* diagonally dominant J_0: safely invertible *)
          M.init n n (fun i j ->
              if i = j then K.add (M.get m i j) (K.of_float 6.0)
              else M.get m i j)
        else m)

  let test_toeplitz_recursive () =
    let rng = Dompool.Prng.create 66 in
    let n = 5 and dg = 6 in
    let j = rand_mat_series rng ~n ~degree:dg in
    let x_true = Array.init (dg + 1) (fun _ -> V.random rng n) in
    let b = BT.apply j x_true in
    let x = BT.solve_recursive j b in
    for k = 0 to dg do
      check
        (Printf.sprintf "order %d" k)
        true
        (small
           (K.R.div
              (V.norm (V.sub x.(k) x_true.(k)))
              (K.R.add_float (V.norm x_true.(k)) 1.0)))
    done

  let test_toeplitz_flat_matches () =
    let rng = Dompool.Prng.create 67 in
    let n = 4 and dg = 5 in
    let j = rand_mat_series rng ~n ~degree:dg in
    (* make J_0 upper triangular so the flat path applies directly *)
    j.(0) <-
      M.init n n (fun r c ->
          if r > c then K.zero
          else if r = c then K.of_float 3.0
          else M.get j.(0) r c);
    let b = Array.init (dg + 1) (fun _ -> V.random rng n) in
    let xr = BT.solve_recursive j b in
    let xf, res = BT.solve_flat ~tile:n j b in
    check "launches" true (res.BT.Bs.launches > 0);
    for k = 0 to dg do
      check
        (Printf.sprintf "flat matches recursive at order %d" k)
        true
        (small
           (K.R.div
              (V.norm (V.sub xf.(k) xr.(k)))
              (K.R.add_float (V.norm xr.(k)) 1.0)))
    done

  let test_toeplitz_flat_rejects () =
    let rng = Dompool.Prng.create 68 in
    let j = rand_mat_series rng ~n:3 ~degree:2 in
    let b = Array.init 3 (fun _ -> V.random rng 3) in
    (* J_0 dense: the flat path must refuse *)
    try
      ignore (BT.solve_flat j b);
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()

  let test_toeplitz_device () =
    let rng = Dompool.Prng.create 69 in
    let n = 4 and dg = 5 in
    let j = rand_mat_series rng ~n ~degree:dg in
    let x_true = Array.init (dg + 1) (fun _ -> V.random rng n) in
    let b = BT.apply j x_true in
    let x, _, _ = BT.solve_device ~tile:n j b in
    for k = 0 to dg do
      check
        (Printf.sprintf "device solve order %d" k)
        true
        (small
           (K.R.div
              (V.norm (V.sub x.(k) x_true.(k)))
              (K.R.add_float (V.norm x_true.(k)) 1.0)))
    done

  let test_newton_sqrt_series () =
    (* Solve x(t)^2 = 1 + t starting from x_0 = 1: the binomial series
       of sqrt(1+t). *)
    let dg = 7 in
    let residual (x : BT.vec_series) : BT.vec_series =
      let xs : S.t = Array.map (fun v -> v.(0)) x in
      let x2 = S.mul xs xs in
      Array.init (dg + 1) (fun k ->
          let rhs =
            if k = 0 then K.one else if k = 1 then K.one else K.zero
          in
          [| K.sub (S.coeff x2 k) rhs |])
    in
    let jacobian (x : BT.vec_series) : BT.mat_series =
      Array.init (dg + 1) (fun k ->
          let m = M.create 1 1 in
          M.set m 0 0 (K.mul_float x.(k).(0) 2.0);
          m)
    in
    let x =
      BT.newton ~degree:dg ~residual ~jacobian ~x0:[| K.one |] ~iterations:5
    in
    (* Compare against the series square root. *)
    let one_plus_t = S.one ~degree:dg in
    one_plus_t.(1) <- K.one;
    let expect = S.sqrt one_plus_t in
    for k = 0 to dg do
      check
        (Printf.sprintf "binomial coefficient %d" k)
        true
        (small (K.abs (K.sub x.(k).(0) (S.coeff expect k))))
    done

  module Ps = Poly_series.Make (K)

  let test_poly_at_series () =
    (* p = x^2 + y at (t, 1 + t): t^2 + t + 1 *)
    let p =
      Ps.P.of_terms ~nvars:2 [ (K.one, [| 2; 0 |]); (K.one, [| 0; 1 |]) ]
    in
    let t = S.variable ~degree:d in
    let one_plus_t = S.one ~degree:d in
    one_plus_t.(1) <- K.one;
    let r = Ps.eval p [| t; one_plus_t |] in
    check "c0" true (K.equal (S.coeff r 0) K.one);
    check "c1" true (K.equal (S.coeff r 1) K.one);
    check "c2" true (K.equal (S.coeff r 2) K.one);
    check "c3" true (K.is_zero (S.coeff r 3));
    (* evaluating at constant series matches scalar evaluation *)
    let rng = Dompool.Prng.create 71 in
    for _ = 1 to 20 do
      let x = K.random rng and y = K.random rng in
      let sx = S.make ~degree:d x and sy = S.make ~degree:d y in
      let via_series = S.constant (Ps.eval p [| sx; sy |]) in
      let direct = Ps.P.eval p [| x; y |] in
      check "constant agreement" true
        (small (K.abs (K.sub via_series direct)))
    done

  let test_newton_from_polys () =
    (* x^2 - 1 - t = 0, x(0) = 1: the binomial series of sqrt(1 + t),
       straight from the polynomial, no hand-written closures. *)
    let f =
      [|
        Ps.P.of_terms ~nvars:2
          [
            (K.one, [| 2; 0 |]);
            (K.neg K.one, [| 0; 0 |]);
            (K.neg K.one, [| 0; 1 |]);
          ];
      |]
    in
    let dg = 7 in
    let x = Ps.newton_from_polys ~degree:dg ~iterations:5 f [| K.one |] in
    let one_plus_t = S.one ~degree:dg in
    one_plus_t.(1) <- K.one;
    let expect = S.sqrt one_plus_t in
    for k = 0 to dg do
      check
        (Printf.sprintf "coefficient %d" k)
        true
        (small (K.abs (K.sub x.(k).(0) (S.coeff expect k))))
    done;
    (* arity validation *)
    (try
       ignore (Ps.newton_from_polys ~degree:2 ~iterations:1 f [| K.one; K.one |] |> ignore;
               Ps.newton_from_polys ~degree:2 ~iterations:1
                 [| Ps.P.variable ~nvars:1 0 |] [| K.one |]);
       Alcotest.fail "arity accepted"
     with Invalid_argument _ -> ())

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "polynomials at series" test_poly_at_series;
        t "newton from polynomials" test_newton_from_polys;
        t "ring operations" test_ring_ops;
        t "division and inverse" test_div_inverse;
        t "calculus" test_calculus;
        t "exp and sqrt" test_exp_sqrt;
        t "log and trigonometric" test_log_trig;
        t "compose and eval" test_compose_eval;
        t "toeplitz recursive" test_toeplitz_recursive;
        t "toeplitz flat matches recursive" test_toeplitz_flat_matches;
        t "toeplitz flat rejects dense J0" test_toeplitz_flat_rejects;
        t "toeplitz device pipeline" test_toeplitz_device;
        t "newton series (sqrt(1+t))" test_newton_sqrt_series;
      ] )
end

module Tdd = T (Scalar.Dd)
module Tqd = T (Scalar.Qd)
module Tzdd = T (Scalar.Zdd)

let () =
  Alcotest.run "power series"
    [
      Tdd.suite "double double";
      Tqd.suite "quad double";
      Tzdd.suite "complex double double";
    ]
