(* Tests for the elementary functions (Md_funcs) at every precision:
   constants against 50-digit literals, functional equations, inverse
   pairs, and special values. *)

open Multidouble

let check = Alcotest.(check bool)

module F (S : Md_sig.S) = struct
  module Fn = Md_funcs.Make (S)

  (* Tolerance: a couple of digits above the unit roundoff, capped so the
     double precision instance is still meaningfully tested. *)
  let tol = Float.min 1e-13 (1e4 *. S.eps)

  let approx ?(scale = 1.0) msg a b =
    let d = S.abs (S.sub a b) in
    let m =
      S.add (S.max (S.abs a) (S.abs b)) S.one
    in
    let bound = S.mul_float m (tol *. scale) in
    if S.compare d bound > 0 then
      Alcotest.failf "%s: %s vs %s" msg (S.to_string a) (S.to_string b)

  let lit = S.of_string

  (* The reference literals carry 50 digits, so beyond quad double they —
     not the computed constants — limit the comparison. *)
  let approx_lit msg a b =
    let d = S.abs (S.sub a b) in
    let bound = S.of_float (Float.max tol 1e-48) in
    if S.compare d bound > 0 then
      Alcotest.failf "%s: %s vs %s" msg (S.to_string a) (S.to_string b)

  let test_constants () =
    approx_lit "pi" Fn.pi
      (lit "3.14159265358979323846264338327950288419716939937510");
    approx_lit "e" Fn.e
      (lit "2.71828182845904523536028747135266249775724709369995");
    approx_lit "ln2" Fn.ln2
      (lit "0.69314718055994530941723212145817656807550013436026");
    approx_lit "ln10" Fn.ln10
      (lit "2.30258509299404568401799145468436420760110148862877");
    approx "two_pi" Fn.two_pi (S.mul_pwr2 Fn.pi 2.0);
    approx "half_pi" Fn.half_pi (S.mul_pwr2 Fn.pi 0.5);
    approx "quarter_pi" Fn.quarter_pi (S.mul_pwr2 Fn.pi 0.25)

  let test_exp () =
    approx "exp 0" (Fn.exp S.zero) S.one;
    approx "exp 1" (Fn.exp S.one) Fn.e;
    approx "exp ln2" (Fn.exp Fn.ln2) S.two;
    approx "exp -1 " (S.mul (Fn.exp S.one) (Fn.exp (S.neg S.one))) S.one;
    let rng = Dompool.Prng.create 21 in
    for _ = 1 to 50 do
      let x = S.of_float (Dompool.Prng.sym_float rng *. 5.0) in
      let y = S.of_float (Dompool.Prng.sym_float rng *. 5.0) in
      approx ~scale:100.0 "exp (x+y)"
        (Fn.exp (S.add x y))
        (S.mul (Fn.exp x) (Fn.exp y))
    done;
    check "exp big" false (S.is_finite (Fn.exp (S.of_float 1e4)));
    check "exp -big" true (S.is_zero (Fn.exp (S.of_float (-1e4))))

  let test_log () =
    approx "log 1" (Fn.log S.one) S.zero;
    approx "log e" (Fn.log Fn.e) S.one;
    approx "log10 1000" (Fn.log10 (S.of_int 1000)) (S.of_int 3);
    approx "log2 32" (Fn.log2 (S.of_int 32)) (S.of_int 5);
    let rng = Dompool.Prng.create 22 in
    for _ = 1 to 50 do
      let x = S.of_float (Dompool.Prng.sym_float rng *. 8.0) in
      approx ~scale:100.0 "log (exp x)" (Fn.log (Fn.exp x)) x
    done;
    check "log 0" false (S.is_finite (Fn.log S.zero));
    check "log -1 nan" true
      (Float.is_nan (S.to_float (Fn.log (S.neg S.one))))

  let test_trig () =
    approx "sin 0" (Fn.sin S.zero) S.zero;
    approx "cos 0" (Fn.cos S.zero) S.one;
    approx "sin pi/6"
      (Fn.sin (S.div Fn.pi (S.of_int 6)))
      (S.of_float 0.5);
    approx "cos pi/3"
      (Fn.cos (S.div Fn.pi (S.of_int 3)))
      (S.of_float 0.5);
    approx "sin pi/2" (Fn.sin Fn.half_pi) S.one;
    approx "cos pi" (Fn.cos Fn.pi) (S.neg S.one);
    approx "tan pi/4" (Fn.tan Fn.quarter_pi) S.one;
    (* sin pi = 0 to working precision of the pi constant *)
    let spi = S.abs (Fn.sin Fn.pi) in
    check "sin pi tiny" true
      (S.compare spi (S.of_float (100.0 *. S.eps)) <= 0);
    let rng = Dompool.Prng.create 23 in
    for _ = 1 to 60 do
      let x = S.of_float (Dompool.Prng.sym_float rng *. 10.0) in
      let s, c = Fn.sin_cos x in
      approx ~scale:100.0 "sin^2+cos^2" (S.add (S.mul s s) (S.mul c c)) S.one;
      approx ~scale:100.0 "sin odd" (Fn.sin (S.neg x)) (S.neg s);
      approx ~scale:100.0 "cos even" (Fn.cos (S.neg x)) c;
      approx ~scale:1000.0 "periodicity" (Fn.sin (S.add x Fn.two_pi)) s;
      (* angle addition with a fixed shift *)
      let s2, c2 = Fn.sin_cos (S.add x S.one) in
      let s1, c1 = Fn.sin_cos S.one in
      approx ~scale:1000.0 "sin (x+1)" s2
        (S.add (S.mul s c1) (S.mul c s1));
      approx ~scale:1000.0 "cos (x+1)" c2
        (S.sub (S.mul c c1) (S.mul s s1))
    done

  let test_inverse_trig () =
    approx "atan 1" (Fn.atan S.one) Fn.quarter_pi;
    approx "atan 0" (Fn.atan S.zero) S.zero;
    approx "asin 1" (Fn.asin S.one) Fn.half_pi;
    approx "acos -1" (Fn.acos (S.neg S.one)) Fn.pi;
    approx "acos 0" (Fn.acos S.zero) Fn.half_pi;
    let rng = Dompool.Prng.create 24 in
    for _ = 1 to 50 do
      let x = S.of_float (Dompool.Prng.sym_float rng *. 1.4) in
      approx ~scale:100.0 "atan(tan x)" (Fn.atan (Fn.tan x)) x;
      let y = S.of_float (Dompool.Prng.sym_float rng *. 0.99) in
      approx ~scale:100.0 "sin(asin y)" (Fn.sin (Fn.asin y)) y;
      approx ~scale:100.0 "cos(acos y)" (Fn.cos (Fn.acos y)) y
    done;
    (* atan2 quadrants *)
    approx "atan2 NE" (Fn.atan2 S.one S.one) Fn.quarter_pi;
    approx "atan2 NW"
      (Fn.atan2 S.one (S.neg S.one))
      (S.mul_float Fn.quarter_pi 3.0);
    approx "atan2 SW"
      (Fn.atan2 (S.neg S.one) (S.neg S.one))
      (S.mul_float Fn.quarter_pi (-3.0));
    approx "atan2 SE" (Fn.atan2 (S.neg S.one) S.one) (S.neg Fn.quarter_pi);
    approx "atan2 +y" (Fn.atan2 S.one S.zero) Fn.half_pi;
    approx "atan2 -x" (Fn.atan2 S.zero (S.neg S.one)) Fn.pi

  let test_hyperbolic () =
    approx "sinh 0" (Fn.sinh S.zero) S.zero;
    approx "cosh 0" (Fn.cosh S.zero) S.one;
    approx "tanh 0" (Fn.tanh S.zero) S.zero;
    let rng = Dompool.Prng.create 25 in
    for _ = 1 to 50 do
      let x = S.of_float (Dompool.Prng.sym_float rng *. 4.0) in
      let sh = Fn.sinh x and ch = Fn.cosh x in
      approx ~scale:100.0 "cosh^2 - sinh^2"
        (S.sub (S.mul ch ch) (S.mul sh sh))
        S.one;
      approx ~scale:100.0 "tanh" (Fn.tanh x) (S.div sh ch);
      approx ~scale:100.0 "asinh(sinh x)" (Fn.asinh sh) x;
      approx ~scale:1000.0 "atanh(tanh x)" (Fn.atanh (Fn.tanh x)) x;
      let y = S.abs x in
      approx ~scale:1000.0 "acosh(cosh |x|)" (Fn.acosh (Fn.cosh y)) y
    done;
    (* small-argument sinh uses the series *)
    let tiny = S.of_float 1e-3 in
    approx ~scale:10.0 "sinh small"
      (Fn.sinh tiny)
      (S.mul_pwr2 (S.sub (Fn.exp tiny) (Fn.exp (S.neg tiny))) 0.5)

  let test_powers () =
    let x = S.of_string "1.7" in
    approx "npow 0" (Fn.npow x 0) S.one;
    approx "npow 1" (Fn.npow x 1) x;
    approx "npow 10"
      (Fn.npow x 10)
      (List.fold_left (fun acc _ -> S.mul acc x)
         S.one
         [ (); (); (); (); (); (); (); (); (); () ]);
    approx ~scale:10.0 "npow -3"
      (S.mul (Fn.npow x (-3)) (Fn.npow x 3))
      S.one;
    approx ~scale:100.0 "nroot 5" (Fn.nroot (Fn.npow x 5) 5) x;
    approx "nroot 2 = sqrt" (Fn.nroot (S.of_int 2) 2) (S.sqrt (S.of_int 2));
    approx ~scale:100.0 "nroot 3 of -8"
      (Fn.nroot (S.of_int (-8)) 3)
      (S.of_int (-2));
    approx ~scale:100.0 "pow integer" (Fn.pow x (S.of_int 4)) (Fn.npow x 4);
    (* pow(x, 2.5)^2 = x^5 *)
    let p = Fn.pow x (S.of_string "2.5") in
    approx ~scale:1000.0 "pow fractional" (S.mul p p) (Fn.npow x 5);
    check "nroot rejects 0" true
      (try
         ignore (Fn.nroot x 0);
         false
       with Invalid_argument _ -> true)

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "constants" test_constants;
        t "exp" test_exp;
        t "log" test_log;
        t "trigonometric" test_trig;
        t "inverse trigonometric" test_inverse_trig;
        t "hyperbolic" test_hyperbolic;
        t "powers and roots" test_powers;
      ] )
end

module Fd = F (Float_double)
module Fdd = F (Double_double)
module Fqd = F (Quad_double)
module Fod = F (Octo_double)

(* ------------------------------------------------------------------ *)
(* Complex elementary functions                                        *)
(* ------------------------------------------------------------------ *)

module Fc (S : Md_sig.S) = struct
  module C = Md_complex.Make (S)
  module Cf = Md_complex_funcs.Make (S)

  let tol = Float.min 1e-12 (1e5 *. S.eps)

  let approx ?(scale = 1.0) msg a b =
    let d = S.to_float (C.abs (C.sub a b)) in
    let m = 1.0 +. S.to_float (C.abs a) +. S.to_float (C.abs b) in
    if d > tol *. scale *. m then
      Alcotest.failf "%s: %s vs %s" msg (C.to_string a) (C.to_string b)

  let random rng =
    C.make
      (S.of_float (Dompool.Prng.sym_float rng *. 2.0))
      (S.of_float (Dompool.Prng.sym_float rng *. 2.0))

  let test_exp_log () =
    approx "exp 0" (Cf.exp C.zero) C.one;
    approx "log 1" (Cf.log C.one) C.zero;
    (* Euler: exp(i pi) = -1 *)
    let module F = Md_funcs.Make (S) in
    approx "euler" (Cf.exp (C.make S.zero F.pi)) (C.neg C.one);
    let rng = Dompool.Prng.create 31 in
    for _ = 1 to 40 do
      let z = random rng and w = random rng in
      approx ~scale:100.0 "exp additive" (Cf.exp (C.add z w))
        (C.mul (Cf.exp z) (Cf.exp w));
      approx ~scale:100.0 "exp (log z)" (Cf.exp (Cf.log z)) z;
      (* principal branch: |im (log z)| <= pi *)
      let l = Cf.log z in
      Alcotest.(check bool)
        "principal" true
        (S.compare (S.abs (C.im l)) (S.add_float F.pi 1e-10) <= 0)
    done

  let test_trig () =
    let rng = Dompool.Prng.create 32 in
    for _ = 1 to 40 do
      let z = random rng in
      let s = Cf.sin z and c = Cf.cos z in
      approx ~scale:100.0 "sin^2 + cos^2"
        (C.add (C.mul s s) (C.mul c c))
        C.one;
      (* sin(iz) = i sinh z *)
      approx ~scale:100.0 "sin(iz)" (Cf.sin (Cf.i_times z))
        (Cf.i_times (Cf.sinh z));
      (* cosh^2 - sinh^2 = 1 *)
      let sh = Cf.sinh z and ch = Cf.cosh z in
      approx ~scale:100.0 "cosh^2-sinh^2"
        (C.sub (C.mul ch ch) (C.mul sh sh))
        C.one;
      approx ~scale:100.0 "tan" (Cf.tan z) (C.div s c)
    done

  let test_powers () =
    let rng = Dompool.Prng.create 33 in
    for _ = 1 to 30 do
      let z = random rng in
      approx ~scale:100.0 "npow 5"
        (Cf.npow z 5)
        (C.mul z (C.mul z (C.mul z (C.mul z z))));
      if S.to_float (C.abs z) > 0.1 then
        approx ~scale:1000.0 "pow vs npow" (Cf.pow z (C.of_float 3.0))
          (Cf.npow z 3)
    done

  let test_roots () =
    List.iter
      (fun n ->
        let roots = Cf.roots_of_unity n in
        Alcotest.(check int) "count" n (Array.length roots);
        (* each is an n-th root of one *)
        Array.iter
          (fun r -> approx ~scale:10.0 "r^n = 1" (Cf.npow r n) C.one)
          roots;
        (* they sum to zero for n > 1 *)
        if n > 1 then begin
          let s = Array.fold_left C.add C.zero roots in
          approx ~scale:(float_of_int n *. 10.0) "sum zero" s C.zero
        end)
      [ 1; 2; 3; 5; 8 ];
    let rng = Dompool.Prng.create 34 in
    for _ = 1 to 10 do
      let z = random rng in
      Array.iter
        (fun r -> approx ~scale:1000.0 "nroot^n" (Cf.npow r 4) z)
        (Cf.nroots z 4)
    done

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name ^ " complex",
      [
        t "exp/log" test_exp_log;
        t "trigonometric/hyperbolic" test_trig;
        t "powers" test_powers;
        t "roots of unity" test_roots;
      ] )
end

module Fcdd = Fc (Double_double)
module Fcqd = Fc (Quad_double)

let () =
  Alcotest.run "md_funcs"
    [
      Fd.suite "double";
      Fdd.suite "double double";
      Fqd.suite "quad double";
      Fod.suite "octo double";
      Fcdd.suite "double double";
      Fcqd.suite "quad double";
    ]
