(* Tests for the one-sided Jacobi SVD at several precisions, real and
   complex. *)

open Mdlinalg

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

module T (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Svd = Jacobi_svd.Make (K)
  module Qr = Host_qr.Make (K)
  module Rand = Randmat.Make (K)
  module C = Cond.Make (K)

  let small r = K.R.compare r (K.R.of_float (1e6 *. K.R.eps)) <= 0

  let reconstruct u (s : K.R.t array) v =
    (* u diag(s) v^H *)
    let n = Array.length s in
    let us =
      M.init (M.rows u) n (fun i j -> K.scale (M.get u i j) s.(j))
    in
    M.matmul us (M.adjoint v)

  let orthonormal_columns m =
    let g = M.matmul (M.adjoint m) m in
    M.rel_distance (M.identity (M.cols m)) g

  let test_reconstruction () =
    let rng = Dompool.Prng.create 303 in
    List.iter
      (fun (m, n) ->
        let a = Rand.matrix rng m n in
        let u, s, v = Svd.svd a in
        check
          (Printf.sprintf "A = U S V^H (%dx%d)" m n)
          true
          (small (M.rel_distance a (reconstruct u s v)));
        check "U orthonormal" true (small (orthonormal_columns u));
        check "V unitary" true (small (orthonormal_columns v));
        (* descending and nonnegative *)
        let ok = ref true in
        Array.iteri
          (fun i x ->
            if K.R.sign x < 0 then ok := false;
            if i > 0 && K.R.compare s.(i - 1) x < 0 then ok := false)
          s;
        check "sigma sorted" true !ok)
      [ (6, 6); (10, 7); (9, 1) ]

  let test_known_values () =
    (* A diagonal matrix's singular values are the |entries|. *)
    let d = M.create 4 4 in
    List.iteri
      (fun i x -> M.set d i i (K.of_float x))
      [ -3.0; 1.0; 4.0; 2.0 ];
    let s = Svd.singular_values d in
    let expect = [ 4.0; 3.0; 2.0; 1.0 ] in
    List.iteri
      (fun i e ->
        check "diag sigma" true
          (small (K.R.abs (K.R.add_float s.(i) (-.e)))))
      expect;
    (* orthogonal matrices have all singular values one *)
    let rng = Dompool.Prng.create 304 in
    let q, _ = Qr.factor (Rand.matrix rng 6 6) in
    let s = Svd.singular_values q in
    Array.iter
      (fun x -> check "unitary sigma" true
          (small (K.R.abs (K.R.add_float x (-1.0)))))
      s;
    check "cond2 of unitary" true
      (small (K.R.abs (K.R.add_float (Svd.cond2 q) (-1.0))))

  let test_rank () =
    let rng = Dompool.Prng.create 305 in
    (* outer product: rank one *)
    let x = Rand.vector rng 8 and y = Rand.vector rng 5 in
    let a = M.init 8 5 (fun i j -> K.mul x.(i) (K.conj y.(j))) in
    checki "rank one" 1 (Svd.rank a);
    (* sum of two outer products: rank two (almost surely) *)
    let x2 = Rand.vector rng 8 and y2 = Rand.vector rng 5 in
    let b =
      M.init 8 5 (fun i j ->
          K.add (M.get a i j) (K.mul x2.(i) (K.conj y2.(j))))
    in
    checki "rank two" 2 (Svd.rank b);
    (* random square: full rank *)
    let c = Rand.matrix rng 6 6 in
    checki "full rank" 6 (Svd.rank c);
    checki "zero rank" 0 (Svd.rank (M.create 4 3))

  let test_cond_agreement () =
    (* kappa_2 <= kappa_1 <= n^2 kappa_2 roughly; check the two trackers
       agree within a generous factor. *)
    let rng = Dompool.Prng.create 306 in
    let a = Rand.matrix rng 6 6 in
    try
      let c1 = K.R.to_float (C.cond1 a) in
      let c2 = K.R.to_float (Svd.cond2 a) in
      check "norm equivalence" true (c1 /. c2 < 40.0 && c2 /. c1 < 40.0)
    with C.Lu.Singular _ -> ()

  let test_scaling () =
    let rng = Dompool.Prng.create 307 in
    let a = Rand.matrix rng 5 5 in
    let s = Svd.singular_values a in
    let s3 = Svd.singular_values (M.scale a (K.R.of_float 3.0)) in
    Array.iteri
      (fun i x ->
        let d = K.R.abs (K.R.sub s3.(i) (K.R.mul_float x 3.0)) in
        check "3x scaling" true
          (K.R.compare d (K.R.mul_float s3.(0) (1e3 *. K.R.eps)) <= 0))
      s

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "reconstruction" test_reconstruction;
        t "known values" test_known_values;
        t "rank" test_rank;
        t "cond1 vs cond2" test_cond_agreement;
        t "scaling" test_scaling;
      ] )
end

module Td = T (Scalar.D)
module Tdd = T (Scalar.Dd)
module Tqd = T (Scalar.Qd)
module Tzdd = T (Scalar.Zdd)

let () =
  Alcotest.run "jacobi svd"
    [
      Td.suite "double";
      Tdd.suite "double double";
      Tqd.suite "quad double";
      Tzdd.suite "complex double double";
    ]
