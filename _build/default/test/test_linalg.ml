(* Tests for the host-side linear algebra substrate: vectors, matrices,
   triangular solvers, LU, Householder QR and the staggered device
   representation — at several precisions, real and complex. *)

open Mdlinalg

let check = Alcotest.(check bool)

module Generic (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Tri = Host_tri.Make (K)
  module Qr = Host_qr.Make (K)
  module Lu = Lu.Make (K)
  module Rand = Randmat.Make (K)
  module Stag = Staggered.Make (K)

  let tol factor = K.R.of_float (factor *. K.R.eps)

  let below msg x bound =
    if K.R.compare x bound > 0 then
      Alcotest.failf "%s: %s > %s" msg (K.R.to_string x) (K.R.to_string bound)

  let test_vec_ops () =
    let rng = Dompool.Prng.create 1 in
    let n = 37 in
    let a = Rand.vector rng n and b = Rand.vector rng n in
    (* (a+b) - b = a exactly here? No: use residual bound. *)
    let d = V.sub (V.add a b) b in
    below "vec add/sub" (V.norm (V.sub d a)) (tol 1e3);
    (* Cauchy-Schwarz: |<a,b>| <= ||a|| ||b|| (1 + eps) *)
    let lhs = K.abs (V.dot a b) in
    let rhs =
      K.R.mul (K.R.mul (V.norm a) (V.norm b)) (K.R.of_float (1.0 +. 1e-10))
    in
    check "cauchy-schwarz" true (K.R.compare lhs rhs <= 0);
    (* axpy consistency *)
    let y = V.copy b in
    let alpha = K.random rng in
    V.axpy ~a:alpha a y;
    let y' = V.add b (V.map (fun x -> K.mul alpha x) a) in
    below "axpy" (V.norm (V.sub y y')) (tol 1e3)

  let test_mat_ops () =
    let rng = Dompool.Prng.create 2 in
    let a = Rand.matrix rng 13 7 and b = Rand.matrix rng 7 11 in
    let c = M.matmul a b in
    Alcotest.(check int) "rows" 13 (M.rows c);
    Alcotest.(check int) "cols" 11 (M.cols c);
    (* (AB)^H = B^H A^H *)
    let lhs = M.adjoint c in
    let rhs = M.matmul (M.adjoint b) (M.adjoint a) in
    below "adjoint product" (M.rel_distance lhs rhs) (tol 1e3);
    (* identity *)
    let i7 = M.identity 7 in
    below "A I = A" (M.rel_distance a (M.matmul a i7)) (tol 10.0);
    (* matvec against matmul with a 1-column matrix *)
    let v = Rand.vector rng 7 in
    let mv = M.matvec a v in
    let vm = M.matmul a (M.init 7 1 (fun i _ -> v.(i))) in
    let mv' = Array.init 13 (fun i -> M.get vm i 0) in
    below "matvec" (V.norm (V.sub mv mv')) (tol 1e3)

  let test_back_substitution () =
    let rng = Dompool.Prng.create 3 in
    for n = 1 to 12 do
      let u = Rand.upper rng n in
      let b, x_true = Rand.rhs_for rng u in
      let x = Tri.back_substitute u b in
      below "backsub residual" (Tri.residual u x b) (tol 1e4);
      below "backsub vs known" (V.norm (V.sub x x_true))
        (K.R.mul (V.norm x_true) (tol 1e6))
    done

  let test_forward_substitution () =
    let rng = Dompool.Prng.create 4 in
    let n = 9 in
    let a = Rand.matrix rng n n in
    let lu, _ = Lu.factor a in
    let l = Lu.lower_of lu in
    let x_true = Rand.vector rng n in
    let b = M.matvec l x_true in
    let x = Tri.forward_substitute l b in
    below "forward" (V.norm (V.sub x x_true))
      (K.R.mul (V.norm x_true) (tol 1e6))

  let test_upper_inverse () =
    let rng = Dompool.Prng.create 5 in
    let n = 10 in
    let u = Rand.upper rng n in
    let inv = Tri.upper_inverse u in
    (* inverse of upper triangular is upper triangular *)
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        if not (K.is_zero (M.get inv i j)) then ok := false
      done
    done;
    check "inverse is upper" true !ok;
    below "U U^-1 = I"
      (M.rel_distance (M.identity n) (M.matmul u inv))
      (tol 1e6)

  let test_lu () =
    let rng = Dompool.Prng.create 6 in
    let n = 11 in
    let a = Rand.matrix rng n n in
    let lu, perm = Lu.factor a in
    let pa = M.init n n (fun i j -> M.get a perm.(i) j) in
    below "PA = LU"
      (M.rel_distance pa (M.matmul (Lu.lower_of lu) (Lu.upper_of lu)))
      (tol 1e5);
    let b, x_true = Rand.rhs_for rng a in
    let x = Lu.solve a b in
    below "LU solve" (V.norm (V.sub x x_true))
      (K.R.mul (V.norm x_true) (tol 1e8))

  let test_lu_singular () =
    let a = M.create 3 3 in
    (* Zero matrix is singular. *)
    (try
       ignore (Lu.factor a);
       Alcotest.fail "expected Singular"
     with Lu.Singular _ -> ())

  let test_qr_square () =
    let rng = Dompool.Prng.create 7 in
    List.iter
      (fun n ->
        let a = Rand.matrix rng n n in
        let q, r = Qr.factor a in
        below "orthogonality" (Qr.orthogonality_defect q) (tol 1e5);
        below "A = QR" (Qr.factorization_residual a q r) (tol 1e5);
        (* R upper triangular *)
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to i - 1 do
            if not (K.is_zero (M.get r i j)) then ok := false
          done
        done;
        check "R upper" true !ok)
      [ 1; 2; 5; 16 ]

  let test_qr_rectangular () =
    let rng = Dompool.Prng.create 8 in
    let m = 20 and n = 8 in
    let a = Rand.matrix rng m n in
    let q, r = Qr.factor a in
    below "orthogonality" (Qr.orthogonality_defect q) (tol 1e5);
    below "A = QR" (Qr.factorization_residual a q r) (tol 1e5)

  let test_least_squares_exact () =
    (* A square nonsingular system: least squares = exact solve. *)
    let rng = Dompool.Prng.create 9 in
    let n = 10 in
    let a = Rand.matrix rng n n in
    let b, x_true = Rand.rhs_for rng a in
    let x = Qr.least_squares a b in
    below "exact system" (V.norm (V.sub x x_true))
      (K.R.mul (V.norm x_true) (tol 1e8))

  let test_least_squares_overdetermined () =
    (* Consistent overdetermined system: residual must vanish. *)
    let rng = Dompool.Prng.create 10 in
    let m = 25 and n = 7 in
    let a = Rand.matrix rng m n in
    let x_true = Rand.vector rng n in
    let b = M.matvec a x_true in
    let x = Qr.least_squares a b in
    below "consistent LS" (V.norm (V.sub x x_true))
      (K.R.mul (V.norm x_true) (tol 1e8));
    (* Inconsistent system: A^H (b - A x) = 0 (normal equations). *)
    let b2 = V.add b (V.init m (fun i -> if i = 0 then K.one else K.zero)) in
    let x2 = Qr.least_squares a b2 in
    let res = V.sub b2 (M.matvec a x2) in
    let g = M.matvec (M.adjoint a) res in
    below "normal equations" (V.norm g) (K.R.mul (V.norm b2) (tol 1e8))

  let test_staggered_roundtrip () =
    let rng = Dompool.Prng.create 11 in
    let v = Rand.vector rng 17 in
    let v' = Stag.to_vec (Stag.of_vec v) in
    check "vec roundtrip" true (V.equal v v');
    let m = Rand.matrix rng 6 9 in
    let m' = Stag.to_mat (Stag.of_mat m) in
    check "mat roundtrip" true (M.equal m m');
    Alcotest.(check int)
      "vec bytes" (17 * 8 * K.width)
      (Stag.vec_bytes (Stag.of_vec v));
    Alcotest.(check int)
      "mat bytes" (54 * 8 * K.width)
      (Stag.mat_bytes (Stag.of_mat m))

  let test_cond () =
    let module C = Cond.Make (K) in
    (* identity has condition one *)
    let id = M.identity 8 in
    check "cond(I) = 1" true
      (K.R.to_float (C.cond1 id) = 1.0 && K.R.to_float (C.cond_inf id) = 1.0);
    (* a diagonal matrix's condition is the ratio of extremes *)
    let d = M.create 4 4 in
    List.iteri
      (fun i v -> M.set d i i (K.of_float v))
      [ 1.0; 2.0; 4.0; 1000.0 ];
    check "diag cond" true
      (Float.abs (K.R.to_float (C.cond1 d) -. 1000.0) < 1e-6);
    (* scaling invariance *)
    let rng = Dompool.Prng.create 55 in
    let a = Rand.matrix rng 7 7 in
    (try
       let c1 = K.R.to_float (C.cond1 a) in
       let c2 = K.R.to_float (C.cond1 (M.scale a (K.R.of_float 3.0))) in
       check "scale invariant" true (Float.abs (c1 -. c2) /. c1 < 1e-8);
       (* inverse really inverts *)
       below "A A^-1 = I"
         (M.rel_distance (M.identity 7) (M.matmul a (C.inverse a)))
         (tol 1e6);
       check "digits at risk sane" true
         (C.digits_at_risk a >= 0.0 && C.digits_at_risk a < 30.0)
     with Lu.Singular _ -> ());
    (* the raw random triangular matrix is far worse conditioned than the
       LU-generated one: the quantitative version of §4.1's choice *)
    if K.prec = Multidouble.Precision.QD && not K.is_complex then begin
      let bad = Rand.raw_upper rng 40 in
      let good = Rand.upper rng 40 in
      try
        let cb = C.digits_at_risk bad and cg = C.digits_at_risk good in
        check "triangular conditioning gap" true (cb > cg +. 2.0)
      with Lu.Singular _ -> ()
    end

  let test_conditioning () =
    (* Directly random triangular matrices are badly conditioned compared
       to LU-produced ones (the reason for §4.1's generation choice):
       solve with a known solution and compare forward errors. *)
    if K.prec = Multidouble.Precision.D && not K.is_complex then begin
      let rng = Dompool.Prng.create 12 in
      let n = 60 in
      let bad = Rand.raw_upper rng n in
      let good = Rand.upper rng n in
      let err u =
        let b, x_true = Rand.rhs_for rng u in
        let x = Tri.back_substitute u b in
        K.R.to_float (V.norm (V.sub x x_true))
        /. K.R.to_float (V.norm x_true)
      in
      (* The raw triangular error is typically many orders larger. *)
      check "conditioning gap" true (err bad > 10.0 *. err good || err good < 1e-10)
    end

  let suite name =
    let t n f = Alcotest.test_case n `Quick f in
    ( name,
      [
        t "vector ops" test_vec_ops;
        t "matrix ops" test_mat_ops;
        t "back substitution" test_back_substitution;
        t "forward substitution" test_forward_substitution;
        t "upper inverse" test_upper_inverse;
        t "lu" test_lu;
        t "lu singular" test_lu_singular;
        t "qr square" test_qr_square;
        t "qr rectangular" test_qr_rectangular;
        t "least squares exact" test_least_squares_exact;
        t "least squares overdetermined" test_least_squares_overdetermined;
        t "staggered roundtrip" test_staggered_roundtrip;
        t "condition numbers" test_cond;
        t "conditioning" test_conditioning;
      ] )
end

module Td = Generic (Scalar.D)
module Tdd = Generic (Scalar.Dd)
module Tqd = Generic (Scalar.Qd)
module Tod = Generic (Scalar.Od)
module Tzdd = Generic (Scalar.Zdd)
module Tzqd = Generic (Scalar.Zqd)

let () =
  Alcotest.run "mdlinalg"
    [
      Td.suite "double";
      Tdd.suite "double double";
      Tqd.suite "quad double";
      Tod.suite "octo double";
      Tzdd.suite "complex double double";
      Tzqd.suite "complex quad double";
    ]
