(* Tests for the predictor-corrector path tracker built on the
   accelerated least squares solver. *)

open Mdlinalg
open Mdseries

let check = Alcotest.(check bool)

module T (R : Multidouble.Md_sig.S) = struct
  module K = Scalar.Complex (R)
  module H = Homotopy.Make (K)
  module M = H.M
  module V = H.V

  let two = K.of_float 2.0
  let four = K.of_float 4.0
  let gamma = K.of_floats 0.83907152907 0.54402111088 (* exp(0.575 i) *)

  (* The example homotopy: start (x^2-1, y^2-1), target (x^2+y^2-4, xy-1). *)
  let sys : H.system =
    let f (x, y) =
      ( K.sub (K.add (K.mul x x) (K.mul y y)) four,
        K.sub (K.mul x y) K.one )
    in
    {
      H.dim = 2;
      h =
        (fun t v ->
          let x = v.(0) and y = v.(1) in
          let c = K.mul gamma (K.sub K.one t) in
          let g1 = K.sub (K.mul x x) K.one in
          let g2 = K.sub (K.mul y y) K.one in
          let f1, f2 = f (x, y) in
          [| K.add (K.mul c g1) (K.mul t f1); K.add (K.mul c g2) (K.mul t f2) |]);
      jac =
        (fun t v ->
          let x = v.(0) and y = v.(1) in
          let c = K.mul gamma (K.sub K.one t) in
          let m = M.create 2 2 in
          M.set m 0 0 (K.mul (K.add c t) (K.mul two x));
          M.set m 0 1 (K.mul t (K.mul two y));
          M.set m 1 0 (K.mul t y);
          M.set m 1 1 (K.add (K.mul c (K.mul two y)) (K.mul t x));
          m);
      ht =
        Some
          (fun _ v ->
            let x = v.(0) and y = v.(1) in
            let g1 = K.sub (K.mul x x) K.one in
            let g2 = K.sub (K.mul y y) K.one in
            let f1, f2 =
              ( K.sub (K.add (K.mul x x) (K.mul y y)) four,
                K.sub (K.mul x y) K.one )
            in
            [|
              K.sub f1 (K.mul gamma g1);
              K.sub f2 (K.mul gamma g2);
            |]);
    }

  let target_residual v =
    let x = v.(0) and y = v.(1) in
    let f1 = K.sub (K.add (K.mul x x) (K.mul y y)) four in
    let f2 = K.sub (K.mul x y) K.one in
    Float.max
      (R.to_float (K.abs f1))
      (R.to_float (K.abs f2))

  let tol = Float.max 1e-24 (1e6 *. R.eps)

  let options =
    { H.default_options with H.tolerance = Float.max (100.0 *. R.eps) 1e-26 }

  let test_tracks_all_paths () =
    List.iter
      (fun (sx, sy) ->
        match
          H.track ~options sys ~start:[| K.of_float sx; K.of_float sy |]
        with
        | H.Tracked (endpoint, stats) ->
          check "end point solves the target" true
            (target_residual endpoint < tol);
          check "finite work" true (stats.H.steps < 500)
        | H.Stuck { at_t; _ } ->
          Alcotest.failf "stuck at t = %f from (%f, %f)" at_t sx sy)
      [ (1.0, 1.0); (-1.0, -1.0); (1.0, -1.0); (-1.0, 1.0) ]

  let test_adaptive_recovers () =
    (* A deliberately oversized first step forces rejections, yet the
       halving recovers the path. *)
    (* three Newton iterations cannot absorb a 0.9 predictor step *)
    let opts =
      { options with H.start_step = 0.9; max_step = 0.9;
        newton_iterations = 3 }
    in
    match H.track ~options:opts sys ~start:[| K.one; K.one |] with
    | H.Tracked (endpoint, stats) ->
      check "still reaches the end" true (target_residual endpoint < tol);
      check "rejections happened" true (stats.H.rejections > 0)
    | H.Stuck _ -> Alcotest.fail "should recover by halving"

  let test_euler_predictor_helps () =
    let without = { sys with H.ht = None } in
    match
      ( H.track ~options sys ~start:[| K.one; K.one |],
        H.track ~options without ~start:[| K.one; K.one |] )
    with
    | H.Tracked (_, with_stats), H.Tracked (_, without_stats) ->
      (* The tangent predictor should not need more correction work
         overall (allow a margin: solves include the predictor's). *)
      check "predictor not pathological" true
        (with_stats.H.newton_solves
        <= (2 * without_stats.H.newton_solves) + 20)
    | _ -> Alcotest.fail "both should track"

  let suite name =
    [
      Alcotest.test_case (name ^ ": tracks all four paths") `Quick
        test_tracks_all_paths;
      Alcotest.test_case (name ^ ": adaptive step recovery") `Quick
        test_adaptive_recovers;
      Alcotest.test_case (name ^ ": euler predictor") `Quick
        test_euler_predictor_helps;
    ]
end

module Tdd = T (Multidouble.Double_double)
module Tqd = T (Multidouble.Quad_double)

(* A real path that runs into a complex target: the tracker must report
   Stuck rather than loop or lie. *)
let test_stuck_on_singular () =
  let module K = Scalar.Dd in
  let module H = Homotopy.Make (K) in
  let module M = H.M in
  let sys =
    {
      H.dim = 1;
      h =
        (fun t v ->
          let x = v.(0) in
          (* (1-t)(x - 1) + t (x^2 + 1): no real solution at t = 1. *)
          [|
            K.add
              (K.mul (K.sub K.one t) (K.sub x K.one))
              (K.mul t (K.add (K.mul x x) K.one));
          |]);
      jac =
        (fun t v ->
          let x = v.(0) in
          let m = M.create 1 1 in
          M.set m 0 0
            (K.add (K.sub K.one t) (K.mul t (K.mul_float x 2.0)));
          m);
      ht = None;
    }
  in
  match H.track sys ~start:[| K.one |] with
  | H.Stuck { at_t; _ } ->
    check "made progress before sticking" true (at_t > 0.1 && at_t < 1.0)
  | H.Tracked (endpoint, _) ->
    Alcotest.failf "tracked impossible path to %s"
      (K.to_string ~digits:5 endpoint.(0))

let () =
  Alcotest.run "homotopy"
    [
      ("double double", Tdd.suite "dd");
      ("quad double", Tqd.suite "qd");
      ( "failure handling",
        [ Alcotest.test_case "stuck on singular path" `Quick
            test_stuck_on_singular ] );
    ]
