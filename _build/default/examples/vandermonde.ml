(* Why multiple double precision: polynomial regression on a Vandermonde
   matrix, whose condition number grows exponentially with the degree.

   We fit the coefficients of a known degree-23 polynomial from 48
   samples by least squares.  In double precision the recovered
   coefficients are garbage beyond a handful of digits; each doubling of
   the precision buys the expected extra ~16 digits back (cf. [6] and the
   error analysis the paper cites as motivation).

     dune exec examples/vandermonde.exe *)

open Mdlinalg
open Lsq_core

module Fit (R : Multidouble.Md_sig.S) = struct
  module K = Scalar.Real (R)
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Solver = Least_squares.Make (K)

  let degree = 23
  let samples = 48

  (* True coefficients: c_k = (-1)^k / (k + 1). *)
  let coeffs =
    Array.init (degree + 1) (fun k ->
        let c = R.div R.one (R.of_int (k + 1)) in
        if k land 1 = 1 then R.neg c else c)

  (* Sample points on [0, 1]; the Vandermonde matrix of their powers. *)
  let build () =
    let point i =
      R.div (R.of_int (i + 1)) (R.of_int samples)
    in
    let a =
      M.init samples (degree + 1) (fun i k ->
          let rec pow acc n = if n = 0 then acc else pow (R.mul acc (point i)) (n - 1) in
          pow R.one k)
    in
    let b = M.matvec a coeffs in
    (a, b)

  let run device =
    let a, b = build () in
    let res = Solver.solve ~device ~a ~b ~tile:8 () in
    (* Worst relative coefficient error. *)
    let worst = ref R.zero in
    Array.iteri
      (fun k c ->
        let e = R.abs (R.div (R.sub res.Solver.x.(k) c) c) in
        if R.compare e !worst > 0 then worst := e)
      coeffs;
    let digits =
      let w = R.to_float !worst in
      if w <= 0.0 then float_of_int (R.limbs * 16)
      else Float.max 0.0 (-.Float.log10 w)
    in
    Printf.printf "%-16s worst coefficient error %-12s (~%.0f correct digits)\n"
      R.name
      (R.to_string ~digits:3 !worst)
      digits
end

let () =
  let device = Gpusim.Device.v100 in
  Printf.printf
    "fitting a degree-%d polynomial from %d samples (condition ~1e19)\n" 23 48;
  let module F1 = Fit (Multidouble.Float_double) in
  F1.run device;
  let module F2 = Fit (Multidouble.Double_double) in
  F2.run device;
  let module F4 = Fit (Multidouble.Quad_double) in
  F4.run device;
  let module F8 = Fit (Multidouble.Octo_double) in
  F8.run device
