examples/device_sweep.ml: Gpusim Least_squares List Lsq_core Mdlinalg Multidouble Printf
