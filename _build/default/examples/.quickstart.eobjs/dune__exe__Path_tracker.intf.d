examples/path_tracker.mli:
