examples/choose_precision.mli:
