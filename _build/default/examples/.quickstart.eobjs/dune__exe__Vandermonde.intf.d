examples/vandermonde.mli:
