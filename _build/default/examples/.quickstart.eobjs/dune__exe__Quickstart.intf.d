examples/quickstart.mli:
