examples/choose_precision.ml: Cond Gpusim List Lsq_core Mat Mdlinalg Multidouble Printf Scalar Vec
