examples/vandermonde.ml: Array Float Gpusim Least_squares Lsq_core Mat Mdlinalg Multidouble Printf Scalar Vec
