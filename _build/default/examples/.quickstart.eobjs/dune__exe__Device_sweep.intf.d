examples/device_sweep.mli:
