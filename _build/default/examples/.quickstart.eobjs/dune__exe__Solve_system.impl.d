examples/solve_system.ml: Array Float List Mdseries Multidouble Printf
