examples/path_tracker.ml: Array Float Homotopy List Mdlinalg Mdseries Multidouble Printf Scalar
