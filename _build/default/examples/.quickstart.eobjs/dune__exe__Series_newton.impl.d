examples/series_newton.ml: Array Block_toeplitz Lsq_core Mat Mdlinalg Mdseries Printf Scalar Series Vec
