examples/series_newton.mli:
