examples/quickstart.ml: Dompool Gpusim Least_squares Lsq_core Mat Mdlinalg Printf Randmat Scalar Vec
