examples/solve_system.mli:
