(* Solve a polynomial system end to end: total-degree start system,
   gamma-trick homotopy, adaptive tracking, Newton corrections on the
   accelerated least squares solver — the full pipeline the paper's
   kernels were written for, in one command.

   The system is the intersection of a circle with a cubic curve:

     f1 = x^2 + y^2 - 5
     f2 = x^3 - y - 3

   with Bezout bound 2 * 3 = 6 paths.

     dune exec examples/solve_system.exe *)

module R = Multidouble.Quad_double
module S = Mdseries.Solve.Make (R)
module P = S.P
module K = S.K

let f : P.system =
  [|
    P.of_terms ~nvars:2
      [
        (K.one, [| 2; 0 |]);
        (K.one, [| 0; 2 |]);
        (K.of_float (-5.0), [| 0; 0 |]);
      ];
    P.of_terms ~nvars:2
      [
        (K.one, [| 3; 0 |]);
        (K.of_float (-1.0), [| 0; 1 |]);
        (K.of_float (-3.0), [| 0; 0 |]);
      ];
  |]

let () =
  Printf.printf
    "solving  x^2 + y^2 = 5,  x^3 - y = 3   (Bezout bound %d) in %s\n\n"
    (P.total_degree f) R.name;
  let r = S.solve f in
  Printf.printf "%d paths: %d converged, %d diverged, %d stuck\n\n" r.S.paths
    (List.length r.S.solutions)
    r.S.diverged r.S.stuck;
  let sols = S.distinct r.S.solutions in
  Printf.printf "%d distinct solutions:\n" (List.length sols);
  List.iteri
    (fun i s ->
      let x = s.S.point.(0) and y = s.S.point.(1) in
      Printf.printf "  %d: x = %+.15f %+.15f i   y = %+.15f %+.15f i   \
                     |f| = %.1e\n"
        (i + 1)
        (R.to_float (K.re x))
        (R.to_float (K.im x))
        (R.to_float (K.re y))
        (R.to_float (K.im y))
        s.S.residual)
    sols;
  (* Verify each solution to full precision. *)
  let worst =
    List.fold_left (fun acc s -> Float.max acc s.S.residual) 0.0 sols
  in
  Printf.printf "\nworst residual: %.2e (unit roundoff %.2e)\n" worst R.eps
