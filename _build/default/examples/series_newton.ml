(* Power series solutions of a polynomial homotopy — the computation the
   paper's solver was built to serve ([3]; §1.1: "the solution of a lower
   triangular block Toeplitz system, where the diagonal matrix is the
   evaluated Jacobian").

   We expand the solution (x(t), y(t)) of

     f(x, y, t) = (x^2 + y^2/4 - 5/4 - t,  x y - 1)  =  0,  x(0) = y(0) = 1

   as power series in t by series Newton iteration.  Every iteration
   solves one block Toeplitz system; we show both the host reference and
   the device pipeline (blocked QR of the Jacobian block followed by the
   tiled accelerated back substitution on the flattened system).

     dune exec examples/series_newton.exe *)

open Mdlinalg
open Mdseries

module K = Scalar.Qd
module S = Series.Make (K)
module BT = Block_toeplitz.Make (K)
module M = Mat.Make (K)
module V = Vec.Make (K)
module Qr = Lsq_core.Blocked_qr.Make (K)

let degree = 10

(* Residual of f at a vector series (x, y). *)
let residual (v : BT.vec_series) : BT.vec_series =
  let xs : S.t = Array.map (fun p -> p.(0)) v in
  let ys : S.t = Array.map (fun p -> p.(1)) v in
  let y2 = S.mul ys ys in
  let x2y2 = S.add (S.mul xs xs) (Array.map (fun c -> K.mul_float c 0.25) y2) in
  let xy = S.mul xs ys in
  Array.init (degree + 1) (fun k ->
      let c1 =
        (* x^2 + y^2/4 - 5/4 - t *)
        let base = S.coeff x2y2 k in
        let base = if k = 0 then K.sub base (K.of_float 1.25) else base in
        if k = 1 then K.sub base K.one else base
      in
      let c2 =
        let base = S.coeff xy k in
        if k = 0 then K.sub base K.one else base
      in
      [| c1; c2 |])

(* Jacobian series: [ 2x  y/2 ; y  x ]. *)
let jacobian (v : BT.vec_series) : BT.mat_series =
  Array.init (degree + 1) (fun k ->
      let x = v.(k).(0) and y = v.(k).(1) in
      let m = M.create 2 2 in
      M.set m 0 0 (K.mul_float x 2.0);
      M.set m 0 1 (K.mul_float y 0.5);
      M.set m 1 0 y;
      M.set m 1 1 x;
      m)

let () =
  Printf.printf
    "series Newton for f = (x^2 + y^2/4 - 5/4 - t, xy - 1), start (1, 1), \
     degree %d, %s\n\n"
    degree K.R.name;
  let x =
    BT.newton ~degree ~residual ~jacobian ~x0:[| K.one; K.one |]
      ~iterations:6
  in
  Printf.printf "x(t) coefficients:\n";
  Array.iteri
    (fun k p ->
      Printf.printf "  t^%-2d  x: %s   y: %s\n" k
        (K.to_string ~digits:20 p.(0))
        (K.to_string ~digits:20 p.(1)))
    x;
  (* Residual of the found series. *)
  let r = residual x in
  let worst = ref K.R.zero in
  Array.iter
    (fun p ->
      let e = K.R.max (K.abs p.(0)) (K.abs p.(1)) in
      if K.R.compare e !worst > 0 then worst := e)
    r;
  Printf.printf "\nmax |f| coefficient over all orders: %s\n"
    (K.R.to_string ~digits:3 !worst);
  (* One more Toeplitz solve, through the device pipeline, to show the
     accelerated path the paper motivates. *)
  let j = jacobian x in
  let b = BT.apply j x in
  let sol, qr, bs = BT.solve_device ~tile:2 j b in
  let err = ref K.R.zero in
  Array.iteri
    (fun k p ->
      let e = V.norm (V.sub p x.(k)) in
      if K.R.compare e !err > 0 then err := e)
    sol;
  Printf.printf
    "\ndevice pipeline check (QR of J0 + Algorithm 1 on the flattened \
     system):\n";
  Printf.printf "  reconstruction error   : %s\n"
    (K.R.to_string ~digits:3 !err);
  Printf.printf "  QR kernel time         : %.4f ms\n" qr.Qr.kernel_ms;
  ignore bs;
  (* Sanity: the series evaluated inside its convergence disk solves f. *)
  let t = K.of_float 0.05 in
  let xv = S.eval (Array.map (fun p -> p.(0)) x) t in
  let yv = S.eval (Array.map (fun p -> p.(1)) x) t in
  let f1 =
    K.sub
      (K.add (K.mul xv xv) (K.mul_float (K.mul yv yv) 0.25))
      (K.add (K.of_float 1.25) t)
  in
  let f2 = K.sub (K.mul xv yv) K.one in
  Printf.printf "  |f(x(0.05), y(0.05))|  : %s (series truncation error)\n"
    (K.R.to_string ~digits:3 (K.R.max (K.abs f1) (K.abs f2)))
