(* The paper's motivating application (§1.1): a polynomial homotopy path
   tracker whose corrector solves linear systems in the least squares
   sense, in multiple double precision — on complex data, as homotopy
   continuation demands.

   We track the four solution paths of the homotopy

     h(x, y, t) = (1 - t) * gamma * g(x, y) + t * f(x, y) = 0

   from the start system g = (x^2 - 1, y^2 - 1) (solutions (+-1, +-1)) to
   the target system f = (x^2 + y^2 - 4, x*y - 1); gamma is a random
   complex constant (the gamma trick keeping the paths regular).  The
   adaptive predictor-corrector of [Mdseries.Homotopy] does the walking;
   every Newton correction is one accelerated least squares solve.

   The error analysis of [22] motivates multiple double arithmetic: we
   run the same track in complex double, double double and quad double
   precision and print how far f(end point) is from zero in each.

     dune exec examples/path_tracker.exe *)

open Mdlinalg
open Mdseries

module Track (R : Multidouble.Md_sig.S) = struct
  module K = Scalar.Complex (R)
  module H = Homotopy.Make (K)
  module M = H.M

  let two = K.of_float 2.0
  let four = K.of_float 4.0

  (* gamma = exp(0.6 i), away from the positive real axis. *)
  let gamma = K.of_floats (Float.cos 0.6) (Float.sin 0.6)

  let f (x, y) =
    ( K.sub (K.add (K.mul x x) (K.mul y y)) four,
      K.sub (K.mul x y) K.one )

  let g (x, y) =
    (K.sub (K.mul x x) K.one, K.sub (K.mul y y) K.one)

  let sys : H.system =
    {
      H.dim = 2;
      h =
        (fun t v ->
          let c = K.mul gamma (K.sub K.one t) in
          let g1, g2 = g (v.(0), v.(1)) in
          let f1, f2 = f (v.(0), v.(1)) in
          [| K.add (K.mul c g1) (K.mul t f1);
             K.add (K.mul c g2) (K.mul t f2) |]);
      jac =
        (fun t v ->
          let x = v.(0) and y = v.(1) in
          let c = K.mul gamma (K.sub K.one t) in
          let m = M.create 2 2 in
          M.set m 0 0 (K.mul (K.add c t) (K.mul two x));
          M.set m 0 1 (K.mul t (K.mul two y));
          M.set m 1 0 (K.mul t y);
          M.set m 1 1 (K.add (K.mul c (K.mul two y)) (K.mul t x));
          m);
      ht =
        Some
          (fun _ v ->
            let g1, g2 = g (v.(0), v.(1)) in
            let f1, f2 = f (v.(0), v.(1)) in
            [| K.sub f1 (K.mul gamma g1); K.sub f2 (K.mul gamma g2) |]);
    }

  let target_residual (x, y) =
    let f1, f2 = f (x, y) in
    R.sqrt (R.add (K.norm2 f1) (K.norm2 f2))

  let run () =
    let options =
      { H.default_options with
        H.tolerance = Float.max (256.0 *. R.eps) 1e-300 }
    in
    List.iter
      (fun (sx, sy) ->
        let start = [| K.of_float sx; K.of_float sy |] in
        match H.track ~options sys ~start with
        | H.Tracked (p, stats) ->
          let x = p.(0) and y = p.(1) in
          Printf.printf
            "%-18s (%+.0f,%+.0f) -> (%+.3f%+.3fi, %+.3f%+.3fi)  |f| = %s  \
             (%d steps, %d rejected, %d solves)\n"
            R.name sx sy
            (R.to_float (K.re x)) (R.to_float (K.im x))
            (R.to_float (K.re y)) (R.to_float (K.im y))
            (R.to_string ~digits:3 (target_residual (x, y)))
            stats.H.steps stats.H.rejections stats.H.newton_solves
        | H.Stuck { at_t; _ } ->
          Printf.printf "%-18s (%+.0f,%+.0f) stuck at t = %.3f\n" R.name sx
            sy at_t)
      [ (1.0, 1.0); (-1.0, -1.0); (1.0, -1.0); (-1.0, 1.0) ]
end

let () =
  print_endline
    "tracking the 4 paths of h = (1-t) gamma (x^2-1, y^2-1) + t \
     (x^2+y^2-4, xy-1)";
  let module T1 = Track (Multidouble.Float_double) in
  T1.run ();
  let module T2 = Track (Multidouble.Double_double) in
  T2.run ();
  let module T4 = Track (Multidouble.Quad_double) in
  T4.run ();
  print_endline
    "(each doubling of the precision should roughly square the attainable \
     residual)"
