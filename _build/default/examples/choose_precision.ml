(* How many limbs does your problem need?

   The workflow the paper's motivation (§1.1, [22]) implies: estimate the
   conditioning of the system, read off the digits at risk, pick the
   cheapest precision that still leaves the accuracy you want, and solve
   — optionally refining with a higher precision's residuals instead of
   paying the full factorization overhead.

     dune exec examples/choose_precision.exe *)

open Mdlinalg
module P = Multidouble.Precision

(* A graded family: Hilbert-like matrices of growing condition number. *)
module Build (R : Multidouble.Md_sig.S) = struct
  module K = Scalar.Real (R)
  module M = Mat.Make (K)
  module C = Cond.Make (K)

  let hilbert n =
    M.init n n (fun i j -> R.div R.one (R.of_int (i + j + 1)))

  let digits_at_risk n = C.digits_at_risk (hilbert n)
end

let () =
  let module B = Build (Multidouble.Quad_double) in
  print_endline "digits at risk when solving the n x n Hilbert system:";
  Printf.printf "%6s %16s %28s\n" "n" "log10 cond" "cheapest safe precision";
  let wanted_digits = 12.0 in
  List.iter
    (fun n ->
      let risk = B.digits_at_risk n in
      let safe =
        List.find_opt
          (fun p -> (float_of_int (P.limbs p) *. 16.0) -. risk >= wanted_digits)
          P.all
      in
      Printf.printf "%6d %16.1f %28s\n" n risk
        (match safe with
        | Some p -> Printf.sprintf "%s (%s)" (P.name p) (P.label p)
        | None -> "more than octo double"))
    [ 4; 8; 12; 16; 24; 32 ];
  Printf.printf "\n(for ~%.0f trusted digits)\n" wanted_digits;

  (* Demonstrate: solve the 12x12 Hilbert system at the recommended
     precision and at one precision lower, and compare forward errors. *)
  let n = 12 in
  print_endline "\nsolving the 12x12 Hilbert system with a known solution:";
  let solve (type a) (module R : Multidouble.Md_sig.S with type t = a) =
    let module K = Scalar.Real (R) in
    let module M = Mat.Make (K) in
    let module V = Vec.Make (K) in
    let module S = Lsq_core.Least_squares.Make (K) in
    let h = M.init n n (fun i j -> R.div R.one (R.of_int (i + j + 1))) in
    let x_true = V.init n (fun i -> R.of_int (i + 1)) in
    let b = M.matvec h x_true in
    let res = S.solve ~device:Gpusim.Device.v100 ~a:h ~b ~tile:4 () in
    let err =
      R.to_float (V.norm (V.sub res.S.x x_true)) /. R.to_float (V.norm x_true)
    in
    Printf.printf "  %-14s forward error %.2e (eps %.2e)\n" R.name err R.eps
  in
  solve (module Multidouble.Float_double);
  solve (module Multidouble.Double_double);
  solve (module Multidouble.Quad_double)
