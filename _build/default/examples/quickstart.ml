(* Quickstart: solve a linear system in the least squares sense in quad
   double precision on a simulated V100.

     dune exec examples/quickstart.exe

   The API in three steps: pick a scalar field (precision, real or
   complex), build the problem with the linear algebra substrate, call the
   accelerated solver. *)

open Mdlinalg
open Lsq_core

(* 1. Pick the scalar field: real quad double (~64 decimal digits). *)
module K = Scalar.Qd
module M = Mat.Make (K)
module V = Vec.Make (K)
module Solver = Least_squares.Make (K)
module Rand = Randmat.Make (K)

let () =
  (* 2. Build an overdetermined random system with a known solution. *)
  let rng = Dompool.Prng.create 7 in
  let rows = 96 and cols = 64 in
  let a = Rand.matrix rng rows cols in
  let x_true = Rand.vector rng cols in
  let b = M.matvec a x_true in

  (* 3. Solve on the simulated device (blocked Householder QR of
     Algorithm 2 followed by the tiled back substitution of Algorithm 1,
     with tiles of 16 columns). *)
  let device = Gpusim.Device.v100 in
  let res = Solver.solve ~device ~a ~b ~tile:16 () in

  let err =
    K.R.div (V.norm (V.sub res.Solver.x x_true)) (V.norm x_true)
  in
  Printf.printf "least squares on a %dx%d system in %s precision\n" rows cols
    K.R.name;
  Printf.printf "  relative forward error : %s\n" (K.R.to_string ~digits:3 err);
  Printf.printf "  unit roundoff          : %.3e\n" K.R.eps;
  Printf.printf "  simulated device       : %s\n" device.Gpusim.Device.name;
  Printf.printf "  QR kernel time         : %8.3f ms (%.1f gigaflops)\n"
    res.Solver.qr_kernel_ms res.Solver.qr_kernel_gflops;
  Printf.printf "  back subst. kernel time: %8.3f ms\n" res.Solver.bs_kernel_ms;
  Printf.printf "  wall clock             : %8.3f ms\n"
    (res.Solver.qr_wall_ms +. res.Solver.bs_wall_ms);
  if K.R.compare err (K.R.of_float (1e10 *. K.R.eps)) > 0 then begin
    print_endline "unexpectedly large error";
    exit 1
  end;
  print_endline "ok"
