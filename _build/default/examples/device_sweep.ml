(* Personal supercomputing: how the quad double least squares solver
   scales across the paper's five GPUs and across problem dimensions,
   using the cost model only (no numeric execution), so the sweep covers
   dimensions up to 4096 in a second.

     dune exec examples/device_sweep.exe *)

open Lsq_core
module P = Multidouble.Precision
module K = Mdlinalg.Scalar.Qd
module Solver = Least_squares.Make (K)

let () =
  let dims = [ 256; 512; 1024; 2048; 4096 ] in
  Printf.printf
    "least squares in quad double precision: kernel gigaflops by device\n";
  Printf.printf "%-12s" "device";
  List.iter (fun n -> Printf.printf " %9d" n) dims;
  print_newline ();
  List.iter
    (fun d ->
      Printf.printf "%-12s" d.Gpusim.Device.name;
      List.iter
        (fun n ->
          let r = Solver.plan ~device:d ~rows:n ~cols:n ~tile:128 () in
          Printf.printf " %9.1f" r.Solver.total_kernel_gflops)
        dims;
      print_newline ())
    Gpusim.Device.catalog;
  Printf.printf
    "\nsmallest dimension with at least one teraflops (kernel flops):\n";
  List.iter
    (fun d ->
      let found =
        List.find_opt
          (fun n ->
            let r = Solver.plan ~device:d ~rows:n ~cols:n ~tile:128 () in
            r.Solver.total_kernel_gflops >= 1000.0)
          dims
      in
      Printf.printf "  %-12s %s\n" d.Gpusim.Device.name
        (match found with
        | Some n -> string_of_int n
        | None -> "not reached (low double precision peak)"))
    Gpusim.Device.catalog
