(* Bechamel micro-benchmarks.

   Two groups:

   - "host arithmetic": measured nanoseconds per multiple double operation
     on the host CPU.  The ratios across precisions are this machine's
     empirical counterpart of the paper's Table 1 cost-overhead
     predictions (37.7x / 439.3x / 2379x relative to double).

   - "tables": one [Test.make] per paper table, each staging the cost-model
     computation that regenerates it (the printers in [Tables] reuse the
     same runners); this times the harness itself. *)

open Bechamel
open Toolkit
open Multidouble
module P = Precision

let ols =
  Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

let run_tests ~quota tests =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  Analyze.all ols Instance.monotonic_clock raw

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some r -> (
    match Analyze.OLS.estimates r with
    | Some (e :: _) -> e
    | _ -> nan)

(* Keep results alive so the optimizer cannot elide the arithmetic. *)
let sink = ref 0.0

let arith_tests () =
  let rng = Dompool.Prng.create 5150 in
  let mk (type a) (module S : Md_sig.S with type t = a) label =
    let x =
      S.of_limbs
        (Array.init S.limbs (fun i ->
             Dompool.Prng.sym_float rng *. (2.0 ** (-53.0 *. float_of_int i))))
    in
    let y = S.add_float (S.mul_float x 0.7310586) 0.25 in
    [
      Test.make ~name:(label ^ " add")
        (Staged.stage (fun () -> sink := S.to_float (S.add x y)));
      Test.make ~name:(label ^ " mul")
        (Staged.stage (fun () -> sink := S.to_float (S.mul x y)));
      Test.make ~name:(label ^ " div")
        (Staged.stage (fun () -> sink := S.to_float (S.div x y)));
    ]
  in
  mk (module Float_double) "1d"
  @ mk (module Double_double) "2d"
  @ mk (module Quad_double) "4d"
  @ mk (module Octo_double) "8d"

let host_arithmetic () =
  Printf.printf
    "\n%s\nHost arithmetic (bechamel): measured ns/op and overhead vs 1d\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let tests =
    Test.make_grouped ~name:"arith" ~fmt:"%s %s" (arith_tests ())
  in
  let results = run_tests ~quota:0.2 tests in
  let labels = [ "1d"; "2d"; "4d"; "8d" ] in
  let ops = [ "add"; "mul"; "div" ] in
  let ns l o = estimate results (Printf.sprintf "arith %s %s" l o) in
  Printf.printf "%-6s %10s %10s %10s %12s %14s\n" "prec" "add ns" "mul ns"
    "div ns" "avg overhead" "Table-1 predicts";
  let base =
    List.fold_left (fun acc o -> acc +. ns "1d" o) 0.0 ops /. 3.0
  in
  List.iter
    (fun l ->
      let a = ns l "add" and m = ns l "mul" and d = ns l "div" in
      let avg = (a +. m +. d) /. 3.0 in
      let predicted =
        match l with
        | "1d" -> 1.0
        | "2d" -> P.average_flops P.DD
        | "4d" -> P.average_flops P.QD
        | _ -> P.average_flops P.OD
      in
      Printf.printf "%-6s %10.1f %10.1f %10.1f %12.1f %14.1f\n" l a m d
        (avg /. base) predicted)
    labels;
  Printf.printf
    "(an OCaml host is not CUDA: expect the measured ratios to sit below \
     the operation-count predictions, as the paper also observes on the \
     GPU)\n"

let table_regeneration () =
  Printf.printf
    "\n%s\nHarness self-timing (bechamel): one Test.make per table\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let d = Gpusim.Device.v100 in
  let t name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"tables" ~fmt:"%s %s"
      [
        t "table3" (fun () ->
            ignore (Harness.Runners.qr P.DD Gpusim.Device.p100 ~n:1024 ~tile:128));
        t "table4" (fun () -> ignore (Harness.Runners.qr P.QD d ~n:1024 ~tile:128));
        t "table5" (fun () ->
            ignore (Harness.Runners.qr ~complex:true P.DD d ~n:512 ~tile:64));
        t "table6" (fun () -> ignore (Harness.Runners.qr P.OD d ~n:2048 ~tile:128));
        t "table7" (fun () -> ignore (Harness.Runners.bs P.OD d ~dim:10240 ~tile:128));
        t "table8" (fun () -> ignore (Harness.Runners.bs P.QD d ~dim:17920 ~tile:224));
        t "table9" (fun () -> ignore (Harness.Runners.bs P.QD d ~dim:20480 ~tile:64));
        t "table10" (fun () -> ignore (Harness.Runners.solve P.QD d ~n:1024 ~tile:128));
      ]
  in
  let results = run_tests ~quota:0.1 tests in
  List.iter
    (fun name ->
      Printf.printf "  %-10s %12.1f us per regeneration\n" name
        (estimate results (Printf.sprintf "tables %s" name) /. 1e3))
    [
      "table3"; "table4"; "table5"; "table6"; "table7"; "table8"; "table9";
      "table10";
    ]

let multicore_scaling () =
  Printf.printf
    "\n%s\nMulticore host scaling (bechamel): dd matmul 96x96\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let module K = Mdlinalg.Scalar.Dd in
  let module M = Mdlinalg.Mat.Make (K) in
  let module B = Mdlinalg.Par_blas.Make (K) in
  let rng = Dompool.Prng.create 11 in
  let a = M.random rng 96 96 and b = M.random rng 96 96 in
  let tests =
    Test.make_grouped ~name:"mm" ~fmt:"%s %s"
      [
        Test.make ~name:"serial"
          (Staged.stage (fun () -> ignore (M.matmul a b)));
        Test.make ~name:"pooled"
          (Staged.stage (fun () -> ignore (B.matmul a b)));
      ]
  in
  let results = run_tests ~quota:0.3 tests in
  let serial = estimate results "mm serial" /. 1e6 in
  let pooled = estimate results "mm pooled" /. 1e6 in
  Printf.printf
    "  serial %.2f ms   pooled %.2f ms   speedup %.2fx on %d domains\n"
    serial pooled (serial /. pooled)
    (Dompool.Domain_pool.size (Dompool.Domain_pool.get_default ()));
  Printf.printf
    "  (the attainable speedup tracks the cores this machine exposes)\n"

let run () =
  host_arithmetic ();
  multicore_scaling ();
  table_regeneration ()
