bench/tables.ml: Cost Counter Device Dompool Filename Float Gpusim Harness List Lsq_core Mdlinalg Mdseries Multidouble Printf String Sys Unix
