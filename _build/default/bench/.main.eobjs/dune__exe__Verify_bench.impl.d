bench/verify_bench.ml: Gpusim Harness List Multidouble Printf String
