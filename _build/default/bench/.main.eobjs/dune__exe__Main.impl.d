bench/main.ml: Array Host_bench List Printf String Sys Tables Verify_bench
