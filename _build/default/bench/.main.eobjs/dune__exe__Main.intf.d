bench/main.mli:
