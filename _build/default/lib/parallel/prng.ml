(* Deterministic, splittable pseudo-random numbers (splitmix64).

   Every experiment in the repository seeds its own generator, so runs are
   reproducible and generators can be handed to worker domains without
   sharing state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* [split t] forks an independent generator; the parent advances. *)
let split t = { state = next_int64 t }

(* Uniform in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

(* Uniform in [-1, 1). *)
let sym_float t = (2.0 *. float t) -. 1.0

(* Uniform integer in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  x mod n

let bool t = Int64.logand (next_int64 t) 1L = 1L
