(* A fixed pool of worker domains with a blocking task queue.

   The GPU simulator maps thread blocks onto these workers; the pool is
   created once and reused across kernel launches, since spawning domains
   is far more expensive than a kernel launch. *)

type task = unit -> unit

(* Set while a domain is executing a pool task: a nested [run] from
   inside a task executes inline instead of re-entering the queue (which
   would deadlock waiting for its own ancestors to finish). *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let run_task task =
  let prev = Domain.DLS.get inside_task in
  Domain.DLS.set inside_task true;
  (try task () with _ -> ());
  Domain.DLS.set inside_task prev

type t = {
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable pending : int;
  done_ : Condition.t;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  size : int;
}

let worker_loop pool =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.nonempty pool.lock
    done;
    if pool.stop && Queue.is_empty pool.queue then begin
      Mutex.unlock pool.lock;
      continue_ := false
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      run_task task;
      Mutex.lock pool.lock;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.done_;
      Mutex.unlock pool.lock
    end
  done

let create n =
  let n = max 1 n in
  let pool =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      pending = 0;
      done_ = Condition.create ();
      stop = false;
      domains = [||];
      size = n;
    }
  in
  pool.domains <-
    Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

(* [run pool tasks] executes the closures on the pool (the calling domain
   participates) and returns when all have completed. *)
let run pool tasks =
  match tasks with
  | [] -> ()
  | [ t ] -> t ()
  | tasks when Domain.DLS.get inside_task ->
    (* Nested parallelism: execute inline on this domain. *)
    List.iter (fun t -> try t () with _ -> ()) tasks
  | tasks ->
    Mutex.lock pool.lock;
    List.iter (fun t -> Queue.push t pool.queue) tasks;
    pool.pending <- pool.pending + List.length tasks;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    (* The caller drains the queue too, then waits for stragglers. *)
    let rec drain () =
      Mutex.lock pool.lock;
      if not (Queue.is_empty pool.queue) then begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.lock;
        run_task task;
        Mutex.lock pool.lock;
        pool.pending <- pool.pending - 1;
        if pool.pending = 0 then Condition.broadcast pool.done_;
        Mutex.unlock pool.lock;
        drain ()
      end
      else begin
        while pool.pending > 0 do
          Condition.wait pool.done_ pool.lock
        done;
        Mutex.unlock pool.lock
      end
    in
    drain ()

(* [parallel_for pool ~chunk lo hi f] applies [f i] for lo <= i < hi,
   splitting the range into chunks executed across the pool. *)
let parallel_for ?chunk pool lo hi f =
  if hi > lo then begin
    let n = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * pool.size))
    in
    if n <= chunk || pool.size = 1 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let tasks = ref [] in
      let i = ref lo in
      while !i < hi do
        let a = !i and b = min hi (!i + chunk) in
        tasks :=
          (fun () ->
            for j = a to b - 1 do
              f j
            done)
          :: !tasks;
        i := b
      done;
      run pool !tasks
    end
  end

(* A lazily created default pool sized to the machine. *)
let default = lazy (create (max 2 (Domain.recommended_domain_count ())))
let get_default () = Lazy.force default
