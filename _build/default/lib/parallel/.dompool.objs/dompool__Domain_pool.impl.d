lib/parallel/domain_pool.ml: Array Condition Domain Lazy List Mutex Queue
