lib/parallel/prng.ml: Int64
