lib/parallel/prng.mli:
