(** Deterministic, splittable pseudo-random numbers (splitmix64).

    Every experiment seeds its own generator, so runs are reproducible
    and generators can be handed to worker domains without sharing. *)

type t

val create : int -> t
(** A generator from a seed. *)

val copy : t -> t

val split : t -> t
(** Forks an independent generator; the parent advances. *)

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val sym_float : t -> float
(** Uniform in [-1, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n); raises [Invalid_argument] if
    [n <= 0]. *)

val bool : t -> bool
