(** Truncated power series over a real or complex multiple double scalar
    — the arithmetic beneath the paper's motivating path tracker.  A
    series is its coefficient array c.(0) .. c.(d) for a fixed truncation
    degree d; binary operations truncate to the shorter operand. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type t = K.t array

  val degree : t -> int
  val make : degree:int -> K.t -> t
  (** Constant series. *)

  val zero : degree:int -> t
  val one : degree:int -> t
  val of_coeffs : K.t array -> t
  val coeff : t -> int -> K.t
  (** Zero beyond the truncation degree. *)

  val constant : t -> K.t
  val variable : degree:int -> t
  (** The series t. *)

  val truncate : t -> degree:int -> t
  val map2 : (K.t -> K.t -> K.t) -> t -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : t -> K.t -> t
  val mul : t -> t -> t
  (** Truncated Cauchy product. *)

  val div : t -> t -> t
  (** Long division; requires an invertible constant term
      ([Invalid_argument] otherwise). *)

  val inverse : t -> t
  val deriv : t -> t
  (** Formal derivative (top coefficient becomes zero). *)

  val integrate : t -> t
  (** Antiderivative with zero constant term. *)

  val sqrt : t -> t
  (** Newton square root; needs a positive real constant term. *)

  val exp0 : t -> t
  (** Exponential of a series with zero constant term. *)

  val log1 : t -> t
  (** Logarithm of a series with constant term one. *)

  val sin_cos0 : t -> t * t
  (** Sine and cosine of a series with zero constant term. *)

  val eval : t -> K.t -> K.t
  (** Horner evaluation at a scalar point. *)

  val compose : t -> t -> t
  (** [compose a b] is a(b(t)); the inner constant term must be zero. *)

  val equal : t -> t -> bool
  val distance : t -> t -> K.R.t
  (** Largest coefficient modulus of the difference. *)

  val pp : Format.formatter -> t -> unit
end
