(* Truncated power series over a real or complex multiple double scalar.

   The paper's motivation (§1.1) is a polynomial homotopy path tracker
   whose core operation solves a lower triangular block Toeplitz system
   where the blocks are coefficient matrices of power series [3]; this
   module supplies the series arithmetic those computations run on.

   A series is represented by its coefficients c.(0) .. c.(d) for a fixed
   truncation degree d (all operations truncate to the shorter input). *)

open Mdlinalg

module Make (K : Scalar.S) = struct
  type t = K.t array

  let degree (s : t) = Array.length s - 1
  let make ~degree x : t = Array.init (degree + 1) (fun i -> if i = 0 then x else K.zero)
  let zero ~degree : t = Array.make (degree + 1) K.zero
  let one ~degree : t = make ~degree K.one
  let of_coeffs (c : K.t array) : t = Array.copy c
  let coeff (s : t) k = if k <= degree s then s.(k) else K.zero
  let constant (s : t) = s.(0)

  (* The identity series t (the variable itself). *)
  let variable ~degree : t =
    Array.init (degree + 1) (fun i -> if i = 1 then K.one else K.zero)

  let truncate (s : t) ~degree : t =
    Array.init (degree + 1) (fun i -> coeff s i)

  let map2 f (a : t) (b : t) : t =
    let d = min (degree a) (degree b) in
    Array.init (d + 1) (fun i -> f a.(i) b.(i))

  let add = map2 K.add
  let sub = map2 K.sub
  let neg (a : t) : t = Array.map K.neg a
  let scale (a : t) x : t = Array.map (fun c -> K.mul x c) a

  (* Truncated Cauchy product. *)
  let mul (a : t) (b : t) : t =
    let d = min (degree a) (degree b) in
    Array.init (d + 1) (fun k ->
        let s = ref K.zero in
        for i = 0 to k do
          s := K.add !s (K.mul a.(i) b.(k - i))
        done;
        !s)

  (* Division when b has an invertible constant term: long division
     q_k = (a_k - sum_{i<k} q_i b_{k-i}) / b_0. *)
  let div (a : t) (b : t) : t =
    if K.is_zero (constant b) then
      invalid_arg "Series.div: zero constant term";
    let d = min (degree a) (degree b) in
    let q = Array.make (d + 1) K.zero in
    for k = 0 to d do
      let s = ref (coeff a k) in
      for i = 0 to k - 1 do
        s := K.sub !s (K.mul q.(i) b.(k - i))
      done;
      q.(k) <- K.div !s b.(0)
    done;
    q

  let inverse (b : t) : t = div (one ~degree:(degree b)) b

  (* Formal derivative, same truncation degree (top coefficient zero). *)
  let deriv (a : t) : t =
    let d = degree a in
    Array.init (d + 1) (fun k ->
        if k < d then K.mul_float a.(k + 1) (float_of_int (k + 1))
        else K.zero)

  (* Formal antiderivative with zero constant term. *)
  let integrate (a : t) : t =
    let d = degree a in
    Array.init (d + 1) (fun k ->
        if k = 0 then K.zero
        else K.scale a.(k - 1) (K.R.div K.R.one (K.R.of_int k)))

  (* Square root of a series with b_0 = 1-ish positive constant term,
     by Newton: y <- (y + b/y)/2 in series arithmetic. *)
  let sqrt (b : t) : t =
    let d = degree b in
    let y0 = K.of_real (K.R.sqrt (K.re (constant b))) in
    let y = ref (make ~degree:d y0) in
    let rounds =
      let rec go k n = if n >= d + 1 then k else go (k + 1) (n * 2) in
      go 1 1
    in
    for _ = 1 to rounds + 1 do
      let q = div b !y in
      y := Array.map (fun c -> K.mul_float c 0.5) (add !y q)
    done;
    !y

  (* Exponential of a series with zero constant term, by the ODE
     y' = a' y: y_k follows from the convolution recursion. *)
  let exp0 (a : t) : t =
    if not (K.is_zero (constant a)) then
      invalid_arg "Series.exp0: constant term must be zero";
    let d = degree a in
    let y = Array.make (d + 1) K.zero in
    y.(0) <- K.one;
    for k = 1 to d do
      (* y_k = (1/k) sum_{j=1..k} j a_j y_{k-j} *)
      let s = ref K.zero in
      for j = 1 to k do
        s := K.add !s (K.mul_float (K.mul a.(j) y.(k - j)) (float_of_int j))
      done;
      y.(k) <- K.scale !s (K.R.div K.R.one (K.R.of_int k))
    done;
    y

  (* Logarithm of a series with constant term 1:
     log s = integrate (s' / s), entirely in series arithmetic. *)
  let log1 (b : t) : t =
    if not (K.equal (constant b) K.one) then
      invalid_arg "Series.log1: constant term must be one";
    integrate (div (deriv b) b)

  (* Sine and cosine of a series with zero constant term, by the coupled
     ODE recursion s' = v' c, c' = -v' s. *)
  let sin_cos0 (v : t) : t * t =
    if not (K.is_zero (constant v)) then
      invalid_arg "Series.sin_cos0: constant term must be zero";
    let d = degree v in
    let s = Array.make (d + 1) K.zero in
    let c = Array.make (d + 1) K.zero in
    c.(0) <- K.one;
    for k = 1 to d do
      let sa = ref K.zero and ca = ref K.zero in
      for j = 1 to k do
        let jv = K.mul_float v.(j) (float_of_int j) in
        sa := K.add !sa (K.mul jv c.(k - j));
        ca := K.add !ca (K.mul jv s.(k - j))
      done;
      let inv_k = K.R.div K.R.one (K.R.of_int k) in
      s.(k) <- K.scale !sa inv_k;
      c.(k) <- K.neg (K.scale !ca inv_k)
    done;
    (s, c)

  (* Evaluation at a scalar point by Horner's rule. *)
  let eval (a : t) x =
    let r = ref a.(degree a) in
    for k = degree a - 1 downto 0 do
      r := K.add (K.mul !r x) a.(k)
    done;
    !r

  (* Composition a(b(t)) for b with zero constant term (Horner on
     series). *)
  let compose (a : t) (b : t) : t =
    if not (K.is_zero (constant b)) then
      invalid_arg "Series.compose: inner constant term must be zero";
    let d = min (degree a) (degree b) in
    let a = truncate a ~degree:d and b = truncate b ~degree:d in
    let r = ref (make ~degree:d a.(d)) in
    for k = d - 1 downto 0 do
      let m = mul !r b in
      m.(0) <- K.add m.(0) a.(k);
      r := m
    done;
    !r

  let equal (a : t) (b : t) =
    degree a = degree b && Array.for_all2 K.equal a b

  (* Largest coefficient modulus of the difference, as a real. *)
  let distance (a : t) (b : t) =
    let d = min (degree a) (degree b) in
    let m = ref K.R.zero in
    for k = 0 to d do
      let e = K.abs (K.sub (coeff a k) (coeff b k)) in
      if K.R.compare e !m > 0 then m := e
    done;
    !m

  let pp fmt (a : t) =
    Format.fprintf fmt "@[";
    Array.iteri
      (fun k c ->
        if k > 0 then Format.fprintf fmt "@ + ";
        Format.fprintf fmt "(%s) t^%d" (K.to_string ~digits:6 c) k)
      a;
    Format.fprintf fmt "@]"
end
