(* A small parser for polynomial systems in the usual textual form, e.g.

     "x^2 + y^2 - 4; x*y - 1"
     "3.5*x0^2*x1 - 2e-3; (x0 - 1)*(x1 + 2)"
     "x^2 + i*y - 1"                         (complex coefficients)

   Grammar (recursive descent):

     system  ::= poly (';' poly)*
     poly    ::= term (('+' | '-') term)*
     term    ::= factor ('*'? factor)*       juxtaposition multiplies
     factor  ::= atom ('^' integer)?
     atom    ::= number | ident | '(' poly ')' | '-' factor

   Variables are collected in order of first appearance; the identifier
   given as [imaginary] (typically "i") denotes the imaginary unit. *)

open Mdlinalg

exception Parse_error of string

module Make (K : Scalar.S) = struct
  module P = Poly.Make (K)

  type token =
    | Num of string
    | Ident of string
    | Plus
    | Minus
    | Star
    | Caret
    | Lparen
    | Rparen
    | Semi

  let tokenize (s : string) : token list =
    let n = String.length s in
    let out = ref [] in
    let i = ref 0 in
    let is_digit c = c >= '0' && c <= '9' in
    let is_alpha c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    in
    while !i < n do
      let c = s.[!i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
      else if is_digit c || c = '.' then begin
        let start = !i in
        while
          !i < n
          && (is_digit s.[!i] || s.[!i] = '.'
             || s.[!i] = 'e' || s.[!i] = 'E'
             || ((s.[!i] = '+' || s.[!i] = '-')
                && !i > start
                && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
        do
          incr i
        done;
        out := Num (String.sub s start (!i - start)) :: !out
      end
      else if is_alpha c then begin
        let start = !i in
        while !i < n && (is_alpha s.[!i] || is_digit s.[!i]) do
          incr i
        done;
        out := Ident (String.sub s start (!i - start)) :: !out
      end
      else begin
        let t =
          match c with
          | '+' -> Plus
          | '-' -> Minus
          | '*' -> Star
          | '^' -> Caret
          | '(' -> Lparen
          | ')' -> Rparen
          | ';' -> Semi
          | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
        in
        incr i;
        out := t :: !out
      end
    done;
    List.rev !out

  (* Expression AST, independent of the variable count. *)
  type ast =
    | A_num of K.t
    | A_var of string
    | A_add of ast * ast
    | A_sub of ast * ast
    | A_mul of ast * ast
    | A_pow of ast * int
    | A_neg of ast

  let parse_ast (tokens : token list) : ast list =
    let toks = ref tokens in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let advance () =
      match !toks with [] -> raise (Parse_error "unexpected end") | _ :: r -> toks := r
    in
    let expect t msg =
      match peek () with
      | Some t' when t' = t -> advance ()
      | _ -> raise (Parse_error msg)
    in
    let rec poly () =
      let left = ref (term ()) in
      let continue_ = ref true in
      while !continue_ do
        match peek () with
        | Some Plus ->
          advance ();
          left := A_add (!left, term ())
        | Some Minus ->
          advance ();
          left := A_sub (!left, term ())
        | _ -> continue_ := false
      done;
      !left
    and term () =
      let left = ref (factor ()) in
      let continue_ = ref true in
      while !continue_ do
        match peek () with
        | Some Star ->
          advance ();
          left := A_mul (!left, factor ())
        | Some (Num _ | Ident _ | Lparen) ->
          (* juxtaposition: 3x, 2(x+1), x y *)
          left := A_mul (!left, factor ())
        | _ -> continue_ := false
      done;
      !left
    and factor () =
      let base = atom () in
      match peek () with
      | Some Caret -> (
        advance ();
        match peek () with
        | Some (Num d) -> (
          advance ();
          match int_of_string_opt d with
          | Some e when e >= 0 -> A_pow (base, e)
          | _ -> raise (Parse_error ("bad exponent " ^ d)))
        | _ -> raise (Parse_error "expected integer exponent after ^"))
      | _ -> base
    and atom () =
      match peek () with
      | Some (Num d) ->
        advance ();
        A_num (K.of_real (K.R.of_string d))
      | Some (Ident v) ->
        advance ();
        A_var v
      | Some Lparen ->
        advance ();
        let inner = poly () in
        expect Rparen "expected )";
        inner
      | Some Minus ->
        advance ();
        A_neg (factor ())
      | Some Plus ->
        advance ();
        atom ()
      | _ -> raise (Parse_error "expected a number, variable or (")
    in
    let polys = ref [ poly () ] in
    while peek () = Some Semi do
      advance ();
      polys := poly () :: !polys
    done;
    if !toks <> [] then raise (Parse_error "trailing input");
    List.rev !polys

  let rec collect_vars ~imaginary acc = function
    | A_num _ -> acc
    | A_var v ->
      if Some v = imaginary || List.mem v acc then acc else acc @ [ v ]
    | A_add (a, b) | A_sub (a, b) | A_mul (a, b) ->
      collect_vars ~imaginary (collect_vars ~imaginary acc a) b
    | A_pow (a, _) | A_neg a -> collect_vars ~imaginary acc a

  let rec to_poly ~nvars ~vars ~imaginary ~iunit = function
    | A_num c -> P.constant ~nvars c
    | A_var v ->
      if Some v = imaginary then
        P.constant ~nvars
          (match iunit with
          | Some u -> u
          | None ->
            raise (Parse_error "imaginary unit not available for this scalar"))
      else begin
        match List.find_index (String.equal v) vars with
        | Some i -> P.variable ~nvars i
        | None -> raise (Parse_error ("unknown variable " ^ v))
      end
    | A_add (a, b) ->
      P.add
        (to_poly ~nvars ~vars ~imaginary ~iunit a)
        (to_poly ~nvars ~vars ~imaginary ~iunit b)
    | A_sub (a, b) ->
      P.sub
        (to_poly ~nvars ~vars ~imaginary ~iunit a)
        (to_poly ~nvars ~vars ~imaginary ~iunit b)
    | A_mul (a, b) ->
      P.mul
        (to_poly ~nvars ~vars ~imaginary ~iunit a)
        (to_poly ~nvars ~vars ~imaginary ~iunit b)
    | A_neg a -> P.neg (to_poly ~nvars ~vars ~imaginary ~iunit a)
    | A_pow (a, e) ->
      let base = to_poly ~nvars ~vars ~imaginary ~iunit a in
      let r = ref (P.constant ~nvars K.one) in
      for _ = 1 to e do
        r := P.mul !r base
      done;
      !r

  (* [parse_system ?imaginary ?iunit s] parses "p1; p2; ..." and returns
     the system together with the variable names in column order.
     [imaginary] names the identifier treated as the imaginary unit
     (default "i"); [iunit] supplies its value for complex scalars. *)
  let parse_system ?(imaginary = Some "i") ?iunit (s : string) :
      P.system * string list =
    let asts = parse_ast (tokenize s) in
    let vars =
      List.fold_left (collect_vars ~imaginary) [] asts
    in
    let nvars = List.length vars in
    if nvars = 0 then raise (Parse_error "no variables in the system");
    let system =
      Array.of_list
        (List.map (to_poly ~nvars ~vars ~imaginary ~iunit) asts)
    in
    (system, vars)
end
