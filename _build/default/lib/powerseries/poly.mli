(** Multivariate polynomials over a real or complex multiple double
    scalar: the systems the paper's host package (PHCpack) solves. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type monomial = { coeff : K.t; powers : int array }

  type t = { nvars : int; terms : monomial list }
  (** Terms are kept normalized: distinct exponent vectors, no zero
      coefficients, deterministic order. *)

  val zero : nvars:int -> t

  val of_terms : nvars:int -> (K.t * int array) list -> t
  (** Raises [Invalid_argument] on arity mismatch or negative powers. *)

  val constant : nvars:int -> K.t -> t
  val variable : nvars:int -> int -> t
  val degree : t -> int
  (** Total degree (0 for the zero polynomial). *)

  val add : t -> t -> t
  val scale : t -> K.t -> t
  val neg : t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val eval : t -> K.t array -> K.t
  val diff : t -> int -> t
  (** Partial derivative with respect to one variable. *)

  val pp : Format.formatter -> t -> unit

  type system = t array

  val system_nvars : system -> int
  val eval_system : system -> K.t array -> Mdlinalg.Vec.Make(K).t

  val jacobian : system -> K.t array -> Mdlinalg.Mat.Make(K).t
  (** Square systems only. *)

  val total_degree : system -> int
  (** The Bezout bound: the product of the total degrees. *)
end
