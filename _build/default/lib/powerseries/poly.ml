(* Multivariate polynomials over a real or complex multiple double
   scalar: the systems the paper's host package (PHCpack) solves.

   A polynomial is a sum of monomials, each a coefficient and an exponent
   vector; evaluation, partial differentiation and arithmetic are what
   the homotopy solver needs. *)

open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  type monomial = { coeff : K.t; powers : int array }

  type t = { nvars : int; terms : monomial list }

  let zero ~nvars = { nvars; terms = [] }

  let check_powers nvars powers =
    if Array.length powers <> nvars then
      invalid_arg "Poly: exponent vector length mismatch";
    Array.iter (fun p -> if p < 0 then invalid_arg "Poly: negative power") powers

  (* Collect equal exponent vectors and drop zero coefficients. *)
  let normalize { nvars; terms } =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun m ->
        let key = Array.to_list m.powers in
        let prev =
          match Hashtbl.find_opt tbl key with
          | Some c -> c
          | None -> K.zero
        in
        Hashtbl.replace tbl key (K.add prev m.coeff))
      terms;
    let terms =
      Hashtbl.fold
        (fun key c acc ->
          if K.is_zero c then acc
          else { coeff = c; powers = Array.of_list key } :: acc)
        tbl []
    in
    (* Deterministic order: by exponent vector. *)
    let terms =
      List.sort (fun a b -> compare b.powers a.powers) terms
    in
    { nvars; terms }

  let of_terms ~nvars l =
    List.iter (fun (_, p) -> check_powers nvars p) l;
    normalize
      { nvars; terms = List.map (fun (c, powers) -> { coeff = c; powers }) l }

  let constant ~nvars c = of_terms ~nvars [ (c, Array.make nvars 0) ]

  (* The monomial x_i. *)
  let variable ~nvars i =
    let p = Array.make nvars 0 in
    p.(i) <- 1;
    of_terms ~nvars [ (K.one, p) ]

  let degree { terms; _ } =
    List.fold_left
      (fun acc m -> max acc (Array.fold_left ( + ) 0 m.powers))
      0 terms

  let add a b =
    if a.nvars <> b.nvars then invalid_arg "Poly.add";
    normalize { nvars = a.nvars; terms = a.terms @ b.terms }

  let scale a c =
    normalize
      {
        a with
        terms = List.map (fun m -> { m with coeff = K.mul c m.coeff }) a.terms;
      }

  let neg a = scale a (K.neg K.one)
  let sub a b = add a (neg b)

  let mul a b =
    if a.nvars <> b.nvars then invalid_arg "Poly.mul";
    let terms =
      List.concat_map
        (fun ma ->
          List.map
            (fun mb ->
              {
                coeff = K.mul ma.coeff mb.coeff;
                powers = Array.map2 ( + ) ma.powers mb.powers;
              })
            b.terms)
        a.terms
    in
    normalize { nvars = a.nvars; terms }

  (* Integer power of a monomial base value, by binary exponentiation. *)
  let kpow x n =
    let r = ref K.one and b = ref x and k = ref n in
    while !k > 0 do
      if !k land 1 = 1 then r := K.mul !r !b;
      k := !k asr 1;
      if !k > 0 then b := K.mul !b !b
    done;
    !r

  let eval { terms; nvars } (x : K.t array) =
    if Array.length x <> nvars then invalid_arg "Poly.eval";
    List.fold_left
      (fun acc m ->
        let v = ref m.coeff in
        Array.iteri
          (fun i p -> if p > 0 then v := K.mul !v (kpow x.(i) p))
          m.powers;
        K.add acc !v)
      K.zero terms

  (* Partial derivative with respect to variable [i]. *)
  let diff { nvars; terms } i =
    let terms =
      List.filter_map
        (fun m ->
          if m.powers.(i) = 0 then None
          else begin
            let powers = Array.copy m.powers in
            powers.(i) <- powers.(i) - 1;
            Some
              { coeff = K.mul_float m.coeff (float_of_int m.powers.(i)); powers }
          end)
        terms
    in
    normalize { nvars; terms }

  let pp fmt { terms; _ } =
    if terms = [] then Format.fprintf fmt "0"
    else
      List.iteri
        (fun k m ->
          if k > 0 then Format.fprintf fmt " + ";
          Format.fprintf fmt "(%s)" (K.to_string ~digits:6 m.coeff);
          Array.iteri
            (fun i p ->
              if p = 1 then Format.fprintf fmt " x%d" i
              else if p > 1 then Format.fprintf fmt " x%d^%d" i p)
            m.powers)
        terms

  (* ---- square systems ---- *)

  type system = t array

  let system_nvars (s : system) =
    if Array.length s = 0 then invalid_arg "Poly: empty system";
    s.(0).nvars

  let eval_system (s : system) (x : K.t array) : V.t =
    Array.map (fun p -> eval p x) s

  (* The Jacobian matrix at a point. *)
  let jacobian (s : system) (x : K.t array) : M.t =
    let n = Array.length s in
    let nv = system_nvars s in
    if n <> nv then invalid_arg "Poly.jacobian: square system required";
    M.init n n (fun i j -> eval (diff s.(i) j) x)

  (* Bezout bound: the product of the total degrees. *)
  let total_degree (s : system) =
    Array.fold_left (fun acc p -> acc * max 1 (degree p)) 1 s
end
