(** Predictor-corrector path tracking for polynomial homotopies — the
    application the paper's least squares solver serves.  Newton's
    corrector solves one system per iteration on the simulated
    accelerator; the step size adapts (rejected steps halve, quick
    convergence lets it grow). *)

module Make (K : Mdlinalg.Scalar.S) : sig
  module M : module type of Mdlinalg.Mat.Make (K)
  module V : module type of Mdlinalg.Vec.Make (K)

  type system = {
    dim : int;
    h : K.t -> V.t -> V.t;  (** residual at (t, x) *)
    jac : K.t -> V.t -> M.t;  (** Jacobian with respect to x *)
    ht : (K.t -> V.t -> V.t) option;
        (** dh/dt; enables the Euler predictor when given *)
  }

  type options = {
    start_step : float;
    min_step : float;
    max_step : float;
    newton_iterations : int;
    tolerance : float;  (** corrector success: |h|_inf below this *)
    max_steps : int;
  }

  val default_options : options

  type stats = {
    steps : int;
    rejections : int;
    newton_solves : int;
    device_kernel_ms : float;
        (** accumulated simulated kernel time of the solves *)
  }

  type outcome =
    | Tracked of V.t * stats
    | Stuck of { at_t : float; stats : stats }

  val residual_inf : system -> K.t -> V.t -> float

  val correct :
    ?device:Gpusim.Device.t ->
    system ->
    options ->
    K.t ->
    V.t ->
    int ref ->
    float ref ->
    V.t * bool
  (** Newton corrector at fixed t; accumulates solve counts and device
      milliseconds into the two refs. *)

  val track :
    ?device:Gpusim.Device.t ->
    ?options:options ->
    system ->
    start:V.t ->
    outcome
  (** Follow the path from (start, t = 0) to t = 1. *)
end
