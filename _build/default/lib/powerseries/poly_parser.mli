(** A parser for polynomial systems in the usual textual form,
    e.g. ["x^2 + y^2 - 4; x*y - 1"] or ["3x y + 2(x - 1)(y + 2)"]:
    sums, differences, products (also by juxtaposition), nonnegative
    integer powers, parentheses, decimal coefficients with exponents,
    and an identifier for the imaginary unit on complex scalars. *)

exception Parse_error of string

module Make (K : Mdlinalg.Scalar.S) : sig
  module P : module type of Poly.Make (K)

  val parse_system :
    ?imaginary:string option ->
    ?iunit:K.t ->
    string ->
    P.system * string list
  (** [parse_system s] parses the semicolon-separated polynomials of [s]
      and returns them with the variable names in order of first
      appearance.  [imaginary] names the identifier treated as the
      imaginary unit (default ["i"]); [iunit] supplies its value for
      complex scalars — without it that identifier is rejected.
      Raises {!Parse_error} on malformed input. *)
end
