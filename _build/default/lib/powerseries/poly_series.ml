(* Polynomial evaluation and differentiation at power series — the
   computation of the author's companion paper ([27], "Accelerated
   polynomial evaluation and differentiation at power series in multiple
   double precision") that feeds the block Toeplitz solver: substituting
   truncated series for the variables of a polynomial system yields the
   residual series and the matrix series of the Jacobian. *)

module Make (K : Mdlinalg.Scalar.S) = struct
  module P = Poly.Make (K)
  module Ser = Series.Make (K)
  module BT = Block_toeplitz.Make (K)

  (* Series power by binary exponentiation. *)
  let spow (x : Ser.t) n =
    let d = Ser.degree x in
    let r = ref (Ser.one ~degree:d) and b = ref x and k = ref n in
    while !k > 0 do
      if !k land 1 = 1 then r := Ser.mul !r !b;
      k := !k asr 1;
      if !k > 0 then b := Ser.mul !b !b
    done;
    !r

  (* [eval p xs] substitutes the series [xs] for the variables of [p]. *)
  let eval (p : P.t) (xs : Ser.t array) : Ser.t =
    if Array.length xs <> p.P.nvars then invalid_arg "Poly_series.eval";
    let degree =
      Array.fold_left (fun acc s -> min acc (Ser.degree s)) max_int xs
    in
    let degree = if degree = max_int then 0 else degree in
    List.fold_left
      (fun acc (m : P.monomial) ->
        let term = ref (Ser.make ~degree m.P.coeff) in
        Array.iteri
          (fun i e -> if e > 0 then term := Ser.mul !term (spow xs.(i) e))
          m.P.powers;
        Ser.add acc !term)
      (Ser.zero ~degree) p.P.terms

  (* Residual series of a square system at a vector series. *)
  let eval_system (f : P.system) (xs : Ser.t array) : BT.vec_series =
    let values = Array.map (fun p -> eval p xs) f in
    let degree = Ser.degree values.(0) in
    Array.init (degree + 1) (fun k ->
        Array.map (fun s -> Ser.coeff s k) values)

  (* Jacobian matrix series at a vector series. *)
  let jacobian (f : P.system) (xs : Ser.t array) : BT.mat_series =
    let n = Array.length f in
    let derivs =
      Array.init n (fun i -> Array.init n (fun j -> eval (P.diff f.(i) j) xs))
    in
    let degree = Ser.degree derivs.(0).(0) in
    Array.init (degree + 1) (fun k ->
        BT.M.init n n (fun i j -> Ser.coeff derivs.(i).(j) k))

  (* Series Newton directly from polynomial input: expand the solution
     x(t) of f(x, t) = 0 around a regular root [x0] of f(., t0 = 0),
     where the last variable of [f] is the series parameter t.

     Concretely: [f] has n equations in n + 1 variables; variable index
     [n] is t.  Returns the vector series x(t) to [degree]. *)
  let newton_from_polys ~degree ~iterations (f : P.system)
      (x0 : K.t array) : BT.vec_series =
    let n = Array.length f in
    if P.system_nvars f <> n + 1 then
      invalid_arg
        "Poly_series.newton_from_polys: need n equations in n+1 variables \
         (the last one is the series parameter)";
    let t_series = Ser.variable ~degree in
    (* Close over the parameter: residual/jacobian in the n unknowns. *)
    let with_t (xs : BT.vec_series) : Ser.t array =
      Array.init (n + 1) (fun j ->
          if j = n then t_series
          else Array.map (fun order -> order.(j)) xs)
    in
    let residual xs = eval_system f (with_t xs) in
    let jac xs =
      let full = with_t xs in
      let derivs =
        Array.init n (fun i ->
            Array.init n (fun j -> eval (P.diff f.(i) j) full))
      in
      Array.init (degree + 1) (fun k ->
          BT.M.init n n (fun i j -> Ser.coeff derivs.(i).(j) k))
    in
    BT.newton ~degree ~residual ~jacobian:jac ~x0 ~iterations
end
