(* A total-degree polynomial system solver: the end-to-end pipeline the
   paper's solver exists for, in miniature.

   For a square system f = 0 of total degrees (d_1, ..., d_n), every
   solution is the endpoint of a path of the homotopy

     h(x, t) = gamma (1 - t) g(x) + t f(x),
     g_i(x)  = x_i^{d_i} - 1,

   starting at one of the prod d_i combinations of roots of unity (the
   gamma trick makes the paths regular with probability one).  Each path
   is tracked with the adaptive predictor-corrector, whose Newton steps
   run on the accelerated least squares solver. *)

open Mdlinalg

module Make (R : Multidouble.Md_sig.S) = struct
  module K = Scalar.Complex (R)
  module P = Poly.Make (K)
  module H = Homotopy.Make (K)
  module Cf = Multidouble.Md_complex_funcs.Make (R)
  module V = H.V
  module M = H.M

  type solution = {
    point : V.t;
    residual : float; (* |f| at the endpoint *)
    start_index : int;
  }

  type result = {
    solutions : solution list;
    diverged : int; (* paths that left every bounded region *)
    stuck : int; (* paths the tracker abandoned *)
    paths : int;
  }

  let default_gamma = (0.8319374651354528, 0.5548523010355094)
  (* exp(0.5878 i) *)

  let residual_inf (f : P.system) x =
    R.to_float (V.inf_norm (P.eval_system f x))

  (* All combinations of the d_i-th roots of unity. *)
  let start_points (degrees : int array) =
    let n = Array.length degrees in
    let roots = Array.map Cf.roots_of_unity degrees in
    let total = Array.fold_left (fun a d -> a * d) 1 degrees in
    List.init total (fun idx ->
        let p = Array.make n K.zero in
        let rest = ref idx in
        for i = 0 to n - 1 do
          p.(i) <- roots.(i).(!rest mod degrees.(i));
          rest := !rest / degrees.(i)
        done;
        p)

  (* [parallel] tracks the paths concurrently on the domain pool (they
     are independent; nested device parallelism runs inline), preserving
     bit-identical results path by path. *)
  let solve ?(device = Gpusim.Device.v100) ?(parallel = true) ?options
      ?gamma (f : P.system) : result =
    let n = Array.length f in
    if n <> P.system_nvars f then
      invalid_arg "Solve: square system required";
    let gamma =
      match gamma with
      | Some g -> g
      | None ->
        let re, im = default_gamma in
        K.of_floats re im
    in
    let degrees = Array.map (fun p -> max 1 (P.degree p)) f in
    (* Start system and both Jacobians, differentiated once. *)
    let g : P.system =
      Array.init n (fun i ->
          let pw = Array.make n 0 in
          pw.(i) <- degrees.(i);
          P.of_terms ~nvars:n [ (K.one, pw); (K.neg K.one, Array.make n 0) ])
    in
    let jf = Array.init n (fun i -> Array.init n (fun j -> P.diff f.(i) j)) in
    let jg = Array.init n (fun i -> Array.init n (fun j -> P.diff g.(i) j)) in
    let options =
      match options with
      | Some o -> o
      | None ->
        { H.default_options with
          H.tolerance = Float.max (256.0 *. R.eps) 1e-300 }
    in
    let sys : H.system =
      {
        H.dim = n;
        h =
          (fun t x ->
            let c = K.mul gamma (K.sub K.one t) in
            let fv = P.eval_system f x and gv = P.eval_system g x in
            Array.init n (fun i ->
                K.add (K.mul c gv.(i)) (K.mul t fv.(i))));
        jac =
          (fun t x ->
            let c = K.mul gamma (K.sub K.one t) in
            M.init n n (fun i j ->
                K.add
                  (K.mul c (P.eval jg.(i).(j) x))
                  (K.mul t (P.eval jf.(i).(j) x))));
        ht =
          Some
            (fun _ x ->
              let fv = P.eval_system f x and gv = P.eval_system g x in
              Array.init n (fun i -> K.sub fv.(i) (K.mul gamma gv.(i))));
      }
    in
    let tol = Float.max (1e8 *. R.eps) 1e-200 in
    let paths = Array.of_list (start_points degrees) in
    let outcomes = Array.map (fun _ -> None) paths in
    let track idx =
      outcomes.(idx) <- Some (H.track ~device ~options sys ~start:paths.(idx))
    in
    if parallel && Array.length paths > 1 then
      Dompool.Domain_pool.parallel_for ~chunk:1
        (Dompool.Domain_pool.get_default ())
        0 (Array.length paths) track
    else Array.iteri (fun i _ -> track i) paths;
    let solutions = ref [] and diverged = ref 0 and stuck = ref 0 in
    Array.iteri
      (fun idx outcome ->
        match outcome with
        | Some (H.Tracked (endpoint, _)) ->
          let norm = R.to_float (V.inf_norm endpoint) in
          let res = residual_inf f endpoint in
          if res < tol *. Float.max 1.0 norm then
            solutions :=
              { point = endpoint; residual = res; start_index = idx }
              :: !solutions
          else if norm > 1e8 then incr diverged
          else incr stuck
        | Some (H.Stuck _) | None -> incr stuck)
      outcomes;
    {
      solutions = List.rev !solutions;
      diverged = !diverged;
      stuck = !stuck;
      paths = Array.length paths;
    }

  (* Distinct solutions up to a tolerance, for counting. *)
  let distinct ?(tol = 1e-8) (sols : solution list) =
    let keep = ref [] in
    List.iter
      (fun s ->
        let dup =
          List.exists
            (fun k ->
              R.to_float (V.inf_norm (V.sub s.point k.point)) < tol)
            !keep
        in
        if not dup then keep := s :: !keep)
      sols;
    List.rev !keep
end
