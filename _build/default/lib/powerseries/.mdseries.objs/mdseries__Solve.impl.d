lib/powerseries/solve.ml: Array Dompool Float Gpusim Homotopy List Mdlinalg Multidouble Poly Scalar
