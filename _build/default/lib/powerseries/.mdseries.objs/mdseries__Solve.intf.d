lib/powerseries/solve.mli: Gpusim Homotopy Mdlinalg Multidouble Poly
