lib/powerseries/poly_series.ml: Array Block_toeplitz List Mdlinalg Poly Series
