lib/powerseries/poly_parser.mli: Mdlinalg Poly
