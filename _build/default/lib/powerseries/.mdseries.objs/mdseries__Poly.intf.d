lib/powerseries/poly.mli: Format Mdlinalg
