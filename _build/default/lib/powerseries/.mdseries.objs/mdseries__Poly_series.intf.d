lib/powerseries/poly_series.mli: Block_toeplitz Mdlinalg Poly Series
