lib/powerseries/homotopy.mli: Gpusim Mdlinalg
