lib/powerseries/poly_parser.ml: Array List Mdlinalg Poly Printf Scalar String
