lib/powerseries/series.ml: Array Format Mdlinalg Scalar
