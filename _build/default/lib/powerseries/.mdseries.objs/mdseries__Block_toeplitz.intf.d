lib/powerseries/block_toeplitz.mli: Gpusim Lsq_core Mdlinalg
