lib/powerseries/homotopy.ml: Float Gpusim Lsq_core Mat Mdlinalg Option Scalar Vec
