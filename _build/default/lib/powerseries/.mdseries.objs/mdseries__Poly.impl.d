lib/powerseries/poly.ml: Array Format Hashtbl List Mat Mdlinalg Scalar Vec
