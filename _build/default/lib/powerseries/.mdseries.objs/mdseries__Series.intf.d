lib/powerseries/series.mli: Format Mdlinalg
