lib/powerseries/block_toeplitz.ml: Array Gpusim Host_tri Lsq_core Lu Mat Mdlinalg Scalar Series Vec
