(* Lower triangular block Toeplitz systems — the linear algebra core of
   the power series path tracker ([3], cited by the paper as the place
   where its least squares solver is consumed).

   A matrix power series J(t) = J_0 + J_1 t + ... + J_d t^d applied to a
   vector series x(t) gives the block lower triangular Toeplitz system

       [ J_0                 ] [x_0]   [b_0]
       [ J_1  J_0            ] [x_1] = [b_1]
       [ ...       ...       ] [...]   [...]
       [ J_d  ...  J_1  J_0  ] [x_d]   [b_d]

   Two solvers are provided:

   - [solve_recursive]: order by order against an LU factorization of
     J_0 on the host (the reference);
   - [solve_flat]: assemble the full (d+1)n system, reverse row and
     column order — which turns block *lower* Toeplitz into block
     *upper* triangular — and run the paper's tiled accelerated back
     substitution (Algorithm 1) on the simulated device.  This is
     exactly the consumer the paper built its solver for. *)

open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Ser = Series.Make (K)
  module Lu = Lu.Make (K)
  module Tri = Host_tri.Make (K)
  module Bs = Lsq_core.Tiled_back_sub.Make (K)

  (* A matrix series (the blocks) and a vector series (stacked rhs). *)
  type mat_series = M.t array
  type vec_series = V.t array

  let block_dim (j : mat_series) = M.rows j.(0)

  (* Apply the matrix series to a vector series (truncated product);
     useful to verify solutions. *)
  let apply (j : mat_series) (x : vec_series) : vec_series =
    let d = min (Array.length j) (Array.length x) - 1 in
    Array.init (d + 1) (fun k ->
        let acc = ref (V.create (block_dim j)) in
        for i = 0 to k do
          let t = M.matvec j.(i) x.(k - i) in
          acc := V.add !acc t
        done;
        !acc)

  (* Order-by-order solve with one LU factorization of the diagonal
     block: J_0 x_k = b_k - sum_{i=1..k} J_i x_{k-i}. *)
  let solve_recursive (j : mat_series) (b : vec_series) : vec_series =
    let d = Array.length b - 1 in
    let n = block_dim j in
    let lu, perm = Lu.factor j.(0) in
    let lower = Lu.lower_of lu and upper = Lu.upper_of lu in
    let solve0 rhs =
      let pb = V.init n (fun i -> rhs.(perm.(i))) in
      Tri.back_substitute upper (Tri.forward_substitute lower pb)
    in
    let x = Array.make (d + 1) (V.create 0) in
    for k = 0 to d do
      let rhs = ref (V.copy b.(k)) in
      for i = 1 to min k (Array.length j - 1) do
        rhs := V.sub !rhs (M.matvec j.(i) x.(k - i))
      done;
      x.(k) <- solve0 !rhs
    done;
    x

  (* Assemble the flat (d+1)n x (d+1)n block lower Toeplitz matrix. *)
  let flatten (j : mat_series) ~degree : M.t =
    let n = block_dim j in
    let dim = (degree + 1) * n in
    M.init dim dim (fun r c ->
        let br = r / n and bc = c / n in
        if br < bc then K.zero
        else begin
          let k = br - bc in
          if k >= Array.length j then K.zero
          else M.get j.(k) (r mod n) (c mod n)
        end)

  (* Reversing the *block* order (keeping the layout inside each block)
     turns block lower Toeplitz into block upper Toeplitz with the same
     diagonal blocks: U_{bi,bj} = J_{bj-bi}. *)
  let block_reversed ~n (m : M.t) : M.t =
    let dim = M.rows m in
    let nb = dim / n in
    let flip r = (((nb - 1 - (r / n)) * n) + (r mod n)) in
    M.init dim dim (fun r c -> M.get m (flip r) (flip c))

  (* Solve the flat reversed system with Algorithm 1 on the simulated
     device.  Reversal only yields a genuinely (not just block) upper
     triangular matrix when the diagonal blocks J_0 are themselves
     upper triangular — e.g. after the QR preprocessing of
     [solve_device] — so that is the precondition here.  The tile size
     must divide (d+1)n; the block dimension n is the natural choice. *)
  let solve_flat ?(device = Gpusim.Device.v100) ?tile (j : mat_series)
      (b : vec_series) : vec_series * Bs.result =
    let d = Array.length b - 1 in
    let n = block_dim j in
    (let j0 = j.(0) in
     for r = 1 to n - 1 do
       for c = 0 to r - 1 do
         if not (K.is_zero (M.get j0 r c)) then
           invalid_arg "Block_toeplitz.solve_flat: J_0 must be upper triangular"
       done
     done);
    let dim = (d + 1) * n in
    let tile = match tile with Some t -> t | None -> n in
    let l = flatten j ~degree:d in
    let u = block_reversed ~n l in
    let rhs = Array.init dim (fun i -> b.(d - (i / n)).(i mod n)) in
    let res = Bs.run ~device ~u ~b:rhs ~tile () in
    let x =
      Array.init (d + 1) (fun k ->
          Array.init n (fun i -> res.Bs.x.(((d - k) * n) + i)))
    in
    (x, res)

  (* The paper's pipeline for a general (nonsingular) diagonal block:
     factor J_0 = Q R once with the blocked accelerated Householder QR
     (Algorithm 2), then every series order becomes one upper triangular
     system solved with the flat Algorithm-1 path above:

       J(t) x(t) = b(t)   <=>   (Q^H J(t)) x(t) = Q^H b(t),

     whose diagonal blocks Q^H J_0 = R are upper triangular. *)
  let solve_device ?(device = Gpusim.Device.v100) ?tile (j : mat_series)
      (b : vec_series) : vec_series * Lsq_core.Blocked_qr.Make(K).result * Bs.result =
    let module Qr = Lsq_core.Blocked_qr.Make (K) in
    let n = block_dim j in
    let tile_qr = match tile with Some t -> t | None -> n in
    let qr = Qr.run ~device ~a:j.(0) ~tile:tile_qr () in
    let qh = M.adjoint qr.Qr.q in
    let j' =
      Array.mapi (fun k jk -> if k = 0 then qr.Qr.r else M.matmul qh jk) j
    in
    let b' = Array.map (fun bk -> M.matvec qh bk) b in
    let x, bs = solve_flat ~device ?tile j' b' in
    (x, qr, bs)

  (* Newton's method for vector power series: given the residual and the
     Jacobian of a square polynomial system as series functions, double
     the number of correct orders per iteration ([3], Gauss-Newton with a
     square Jacobian).  [x0] must solve the order-zero system. *)
  let newton ~degree ~(residual : vec_series -> vec_series)
      ~(jacobian : vec_series -> mat_series) ~(x0 : V.t) ~iterations :
      vec_series =
    let n = Array.length x0 in
    let x =
      ref
        (Array.init (degree + 1) (fun k ->
             if k = 0 then V.copy x0 else V.create n))
    in
    for _ = 1 to iterations do
      let r = residual !x in
      let j = jacobian !x in
      let dx = solve_recursive j (Array.map V.neg r) in
      x := Array.mapi (fun k xk -> V.add xk dx.(k)) !x
    done;
    !x
end
