(* Predictor-corrector path tracking for polynomial homotopies — the
   application the paper's least squares solver serves ([21], [22]).

   Given h(x, t) with a known solution of h(., 0), the tracker walks t
   from 0 to 1: an (optional Euler) predictor extrapolates the point, and
   Newton's corrector pulls it back onto the path, solving one linear
   system in the least squares sense per iteration with the accelerated
   solver.  The step size adapts: steps whose corrector fails to converge
   are rejected and halved, and quickly converging steps let the step
   grow back — the robustness recipe of [21] in miniature. *)

open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Solver = Lsq_core.Least_squares.Make (K)

  type system = {
    dim : int;
    h : K.t -> V.t -> V.t; (* residual at (t, x) *)
    jac : K.t -> V.t -> M.t; (* Jacobian wrt x *)
    ht : (K.t -> V.t -> V.t) option; (* dh/dt, enables the Euler predictor *)
  }

  type options = {
    start_step : float;
    min_step : float;
    max_step : float;
    newton_iterations : int;
    tolerance : float; (* corrector success: |h|_inf below this *)
    max_steps : int;
  }

  let default_options =
    {
      start_step = 1.0 /. 32.0;
      min_step = 1e-8;
      max_step = 0.125;
      newton_iterations = 6;
      tolerance = 1e-8;
      max_steps = 10_000;
    }

  type stats = {
    steps : int;
    rejections : int;
    newton_solves : int;
    device_kernel_ms : float;
        (* accumulated simulated kernel time of all the least squares
           solves along the path *)
  }

  type outcome = Tracked of V.t * stats | Stuck of { at_t : float; stats : stats }

  let residual_inf sys t x =
    let r = sys.h t x in
    K.R.to_float (V.inf_norm r)

  (* Newton corrector at fixed t; returns the corrected point and whether
     the tolerance was met. *)
  let correct ?(device = Gpusim.Device.v100) sys opts t x solves device_ms =
    let p = ref (V.copy x) in
    let converged = ref false in
    (try
       for _ = 1 to opts.newton_iterations do
         let r = sys.h t !p in
         if K.R.to_float (V.inf_norm r) < opts.tolerance then begin
           converged := true;
           raise Exit
         end;
         let j = sys.jac t !p in
         incr solves;
         let res = Solver.solve ~device ~a:j ~b:(V.neg r) ~tile:sys.dim () in
         device_ms :=
           !device_ms +. res.Solver.qr_kernel_ms +. res.Solver.bs_kernel_ms;
         p := V.add !p res.Solver.x
       done;
       if residual_inf sys t !p < opts.tolerance then converged := true
     with Exit -> ());
    (!p, !converged)

  (* [track sys ~start] follows the path from (start, t=0) to t = 1. *)
  let track ?(device = Gpusim.Device.v100) ?(options = default_options) sys
      ~(start : V.t) =
    let opts = options in
    let x = ref (V.copy start) in
    let t = ref 0.0 in
    let dt = ref opts.start_step in
    let steps = ref 0 and rejections = ref 0 and solves = ref 0 in
    let device_ms = ref 0.0 in
    let stats () =
      { steps = !steps; rejections = !rejections; newton_solves = !solves;
        device_kernel_ms = !device_ms }
    in
    let result = ref None in
    while !result = None do
      if !t >= 1.0 then result := Some (Tracked (V.copy !x, stats ()))
      else if !steps >= opts.max_steps || !dt < opts.min_step then
        result := Some (Stuck { at_t = !t; stats = stats () })
      else begin
        incr steps;
        let t' = Float.min 1.0 (!t +. !dt) in
        let tt' = K.of_float t' in
        (* Predictor: Euler along the path tangent when dh/dt is given,
           otherwise the previous point. *)
        let guess =
          match sys.ht with
          | None -> V.copy !x
          | Some ht ->
            let j = sys.jac (K.of_float !t) !x in
            let rhs = V.neg (ht (K.of_float !t) !x) in
            incr solves;
            let res = Solver.solve ~device ~a:j ~b:rhs ~tile:sys.dim () in
            device_ms :=
              !device_ms +. res.Solver.qr_kernel_ms
              +. res.Solver.bs_kernel_ms;
            V.add !x (V.scale res.Solver.x (K.R.of_float (t' -. !t)))
        in
        let corrected, ok =
          correct ~device sys opts tt' guess solves device_ms
        in
        if ok then begin
          x := corrected;
          t := t';
          dt := Float.min opts.max_step (!dt *. 1.5)
        end
        else begin
          incr rejections;
          dt := !dt /. 2.0
        end
      end
    done;
    Option.get !result
end
