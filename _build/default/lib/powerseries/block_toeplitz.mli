(** Lower triangular block Toeplitz systems — the linear algebra core of
    the power series path tracker, the place the paper's least squares
    solver is consumed ([3] in its bibliography). *)

module Make (K : Mdlinalg.Scalar.S) : sig
  module M : module type of Mdlinalg.Mat.Make (K)
  module V : module type of Mdlinalg.Vec.Make (K)
  module Bs : module type of Lsq_core.Tiled_back_sub.Make (K)

  type mat_series = M.t array
  (** The blocks J_0, J_1, ..., J_d of a matrix power series. *)

  type vec_series = V.t array
  (** Stacked right-hand sides, one block per series order. *)

  val block_dim : mat_series -> int

  val apply : mat_series -> vec_series -> vec_series
  (** Truncated product J(t) x(t), for verifying solutions. *)

  val solve_recursive : mat_series -> vec_series -> vec_series
  (** Order-by-order host solve against one LU factorization of J_0 —
      the reference. *)

  val flatten : mat_series -> degree:int -> M.t
  (** The (d+1)n-square block lower Toeplitz matrix. *)

  val block_reversed : n:int -> M.t -> M.t
  (** Reversing the block order (layout inside blocks kept) turns block
      lower Toeplitz into block upper Toeplitz with the same diagonal
      blocks. *)

  val solve_flat :
    ?device:Gpusim.Device.t ->
    ?tile:int ->
    mat_series ->
    vec_series ->
    vec_series * Bs.result
  (** Solve the flat reversed system with Algorithm 1 on the simulated
      device; requires upper triangular J_0 ([Invalid_argument]
      otherwise) — e.g. after {!solve_device}'s QR preprocessing. *)

  val solve_device :
    ?device:Gpusim.Device.t ->
    ?tile:int ->
    mat_series ->
    vec_series ->
    vec_series * Lsq_core.Blocked_qr.Make(K).result * Bs.result
  (** The paper's pipeline for a general diagonal block: factor
      J_0 = Q R once with Algorithm 2, premultiply the system by Q^H,
      then run the flat Algorithm-1 path. *)

  val newton :
    degree:int ->
    residual:(vec_series -> vec_series) ->
    jacobian:(vec_series -> mat_series) ->
    x0:V.t ->
    iterations:int ->
    vec_series
  (** Series Newton: doubles the correct orders per iteration starting
      from a regular order-zero solution [x0]. *)
end
