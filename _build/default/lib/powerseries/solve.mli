(** A total-degree polynomial system solver: roots-of-unity start
    systems, the gamma trick, adaptive tracking of every path (in
    parallel across the domain pool), and honest classification of the
    endpoints — the end-to-end pipeline the paper's kernels exist for,
    in miniature. *)

module Make (R : Multidouble.Md_sig.S) : sig
  module K : module type of Mdlinalg.Scalar.Complex (R)
  module P : module type of Poly.Make (K)
  module H : module type of Homotopy.Make (K)
  module V : module type of H.V
  module M : module type of H.M

  type solution = {
    point : V.t;
    residual : float;  (** |f| at the endpoint *)
    start_index : int;
  }

  type result = {
    solutions : solution list;
    diverged : int;  (** paths that left every bounded region *)
    stuck : int;  (** paths the tracker abandoned *)
    paths : int;
  }

  val start_points : int array -> K.t array list
  (** All combinations of the d_i-th roots of unity. *)

  val solve :
    ?device:Gpusim.Device.t ->
    ?parallel:bool ->
    ?options:H.options ->
    ?gamma:K.t ->
    P.system ->
    result
  (** Track all Bezout-many paths of the total-degree homotopy; requires
      a square system.  [parallel] (default true) tracks paths
      concurrently with bit-identical results. *)

  val distinct : ?tol:float -> solution list -> solution list
  (** Representatives of the endpoint clusters, for counting. *)
end
