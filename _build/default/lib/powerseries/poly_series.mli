(** Polynomial evaluation and differentiation at power series — the
    computation of the author's companion paper ("Accelerated polynomial
    evaluation and differentiation at power series in multiple double
    precision") that feeds the block Toeplitz solver. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  module P : module type of Poly.Make (K)
  module Ser : module type of Series.Make (K)
  module BT : module type of Block_toeplitz.Make (K)

  val spow : Ser.t -> int -> Ser.t
  (** Series power by binary exponentiation. *)

  val eval : P.t -> Ser.t array -> Ser.t
  (** Substitute series for the variables of a polynomial. *)

  val eval_system : P.system -> Ser.t array -> BT.vec_series
  (** Residual series of a square system at a vector series. *)

  val jacobian : P.system -> Ser.t array -> BT.mat_series
  (** Jacobian matrix series at a vector series. *)

  val newton_from_polys :
    degree:int ->
    iterations:int ->
    P.system ->
    K.t array ->
    BT.vec_series
  (** Expand the solution x(t) of f(x, t) = 0 around a regular root of
      f(., 0): [f] has n equations in n+1 variables, the last variable
      being the series parameter t ([Invalid_argument] otherwise). *)
end
