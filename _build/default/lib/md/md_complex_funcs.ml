(* Elementary functions on complex multiple double numbers, built from the
   real functions of [Md_funcs] through the usual identities.  Homotopy
   continuation (the paper's motivating application) lives on complex
   data, so the path-tracking substrate needs these. *)

module Make (R : Md_sig.S) = struct
  module C = Md_complex.Make (R)
  module F = Md_funcs.Make (R)

  let i_times z = C.make (R.neg (C.im z)) (C.re z)

  (* exp(x + iy) = e^x (cos y + i sin y) *)
  let exp z =
    let ex = F.exp (C.re z) in
    let s, c = F.sin_cos (C.im z) in
    C.make (R.mul ex c) (R.mul ex s)

  (* Principal branch: log z = log |z| + i atan2(im, re). *)
  let log z =
    C.make (F.log (C.abs z)) (F.atan2 (C.im z) (C.re z))

  let arg z = F.atan2 (C.im z) (C.re z)

  (* Principal power. *)
  let pow z w =
    if C.equal z C.zero then C.zero else exp (C.mul w (log z))

  (* Integer power by binary exponentiation (exact structure). *)
  let npow z n =
    if n = 0 then C.one
    else begin
      let r = ref C.one and b = ref z and k = ref (abs n) in
      while !k > 0 do
        if !k land 1 = 1 then r := C.mul !r !b;
        k := !k asr 1;
        if !k > 0 then b := C.mul !b !b
      done;
      if n < 0 then C.div C.one !r else !r
    end

  (* sin(x+iy) = sin x cosh y + i cos x sinh y *)
  let sin z =
    let s, c = F.sin_cos (C.re z) in
    let y = C.im z in
    C.make (R.mul s (F.cosh y)) (R.mul c (F.sinh y))

  (* cos(x+iy) = cos x cosh y - i sin x sinh y *)
  let cos z =
    let s, c = F.sin_cos (C.re z) in
    let y = C.im z in
    C.make (R.mul c (F.cosh y)) (R.neg (R.mul s (F.sinh y)))

  let tan z = C.div (sin z) (cos z)

  (* sinh z = -i sin(iz), cosh z = cos(iz) *)
  let sinh z =
    let s = sin (i_times z) in
    C.make (C.im s) (R.neg (C.re s))

  let cosh z = cos (i_times z)
  let tanh z = C.div (sinh z) (cosh z)

  (* All the unit roots at once: exp(2 pi i k / n), k = 0..n-1; handy for
     generating start systems of polynomial homotopies. *)
  let roots_of_unity n =
    if n <= 0 then invalid_arg "Md_complex_funcs.roots_of_unity";
    Array.init n (fun k ->
        let theta =
          R.div
            (R.mul_float F.two_pi (float_of_int k))
            (R.of_int n)
        in
        let s, c = F.sin_cos theta in
        C.make c s)

  (* The n-th roots of an arbitrary complex number. *)
  let nroots z n =
    let r = F.nroot (C.abs z) n in
    let theta = R.div (arg z) (R.of_int n) in
    Array.init n (fun k ->
        let phi =
          R.add theta
            (R.div (R.mul_float F.two_pi (float_of_int k)) (R.of_int n))
        in
        let s, c = F.sin_cos phi in
        C.make (R.mul r c) (R.mul r s))
end
