(* First-class access to the precision implementations by tag, so drivers
   (CLI, benchmarks) can select the precision at run time. *)

let module_of_tag : Precision.tag -> (module Md_sig.S) = function
  | Precision.D -> (module Float_double)
  | Precision.DD -> (module Double_double)
  | Precision.QD -> (module Quad_double)
  | Precision.OD -> (module Octo_double)
