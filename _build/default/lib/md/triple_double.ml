(* Triple double arithmetic (~48 decimal digits): the generic expansion
   functor at m = 3.  The paper's related work ([16]) evaluates triple
   precision BLAS on GPUs; CAMPARY generates code for any limb count, and
   so does the [Expansion] functor. *)

include Expansion.Make (struct
  let limbs = 3
  let name = "triple double"
end)
