(* Octo double arithmetic: an unevaluated sum of eight doubles giving
   roughly 128 decimal digits, instantiating the generic CAMPARY-style
   expansion arithmetic at m = 8 (the paper extends QDlib's definitions to
   octo doubles in the same customized way, §4.1). *)

include Expansion.Make (struct
  let limbs = 8
  let name = "octo double"
end)
