(** Elementary functions for multiple double numbers: the QDlib function
    surface the paper extends to octo double (§4.1), available at every
    precision.  Constants are computed by series once per instantiation;
    functions use argument reduction, short Taylor series and Newton
    inversion, accurate to a few ulps of the format. *)

module Make (S : Md_sig.S) : sig
  (** {1 Constants} *)

  val pi : S.t
  val two_pi : S.t
  val half_pi : S.t
  val quarter_pi : S.t
  val e : S.t
  val ln2 : S.t
  val ln10 : S.t

  val arctan_inv : int -> S.t
  (** [arctan_inv k] is arctan(1/k) by Taylor series (k >= 2). *)

  (** {1 Exponential and logarithms} *)

  val exp : S.t -> S.t
  val log : S.t -> S.t
  (** Natural logarithm; nan for negative input, -inf at zero. *)

  val log10 : S.t -> S.t
  val log2 : S.t -> S.t

  (** {1 Powers and roots} *)

  val npow : S.t -> int -> S.t
  (** Integer power by binary exponentiation; [n] may be negative. *)

  val nroot : S.t -> int -> S.t
  (** n-th root by Newton; odd roots accept negative input, [n] must be
      positive ([Invalid_argument] otherwise). *)

  val pow : S.t -> S.t -> S.t
  (** [pow x y] through exp/log for non-integer [y] (positive [x]); the
      exact integer path when [y] is a small integer. *)

  (** {1 Trigonometric functions} *)

  val sin_cos : S.t -> S.t * S.t
  (** Both at once (they share the reduction and the kernel). *)

  val sin : S.t -> S.t
  val cos : S.t -> S.t
  val tan : S.t -> S.t
  val atan : S.t -> S.t
  val atan2 : S.t -> S.t -> S.t
  (** [atan2 y x], with the usual quadrant conventions. *)

  val asin : S.t -> S.t
  val acos : S.t -> S.t

  (** {1 Hyperbolic functions} *)

  val sinh : S.t -> S.t
  (** Series near zero, exponentials elsewhere (no cancellation). *)

  val cosh : S.t -> S.t
  val tanh : S.t -> S.t
  val asinh : S.t -> S.t
  val acosh : S.t -> S.t
  val atanh : S.t -> S.t
end
