(** First-class access to the precision implementations by tag, so
    drivers (CLI, benchmarks) can select the precision at run time. *)

val module_of_tag : Precision.tag -> (module Md_sig.S)
