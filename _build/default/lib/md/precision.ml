(* Precision descriptors and the operation-count table.

   Table 1 of the paper tallies how many double precision operations one
   multiple double operation costs; those multipliers convert operation
   counts into double precision flops everywhere in the benchmarks. *)

type tag = D | DD | QD | OD

let all = [ D; DD; QD; OD ]
let limbs = function D -> 1 | DD -> 2 | QD -> 4 | OD -> 8
let name = function
  | D -> "double"
  | DD -> "double double"
  | QD -> "quad double"
  | OD -> "octo double"

(* Short labels used in the paper's table headers: 1d, 2d, 4d, 8d. *)
let label = function D -> "1d" | DD -> "2d" | QD -> "4d" | OD -> "8d"

let of_limbs = function
  | 1 -> D
  | 2 -> DD
  | 4 -> QD
  | 8 -> OD
  | n -> invalid_arg (Printf.sprintf "Precision.of_limbs: %d" n)

let of_label = function
  | "1d" | "d" -> D
  | "2d" | "dd" -> DD
  | "4d" | "qd" -> QD
  | "8d" | "od" -> OD
  | s -> invalid_arg ("Precision.of_label: " ^ s)

(* Double precision operations needed by one multiple double operation,
   split by the kind of double operation performed. *)
type op_cost = { adds : int; subs : int; muls : int; divs : int }

let cost_total { adds; subs; muls; divs } = adds + subs + muls + divs

type cost_table = { add : op_cost; mul : op_cost; div : op_cost }

(* Table 1 of the paper. *)
let costs = function
  | D ->
    {
      add = { adds = 1; subs = 0; muls = 0; divs = 0 };
      mul = { adds = 0; subs = 0; muls = 1; divs = 0 };
      div = { adds = 0; subs = 0; muls = 0; divs = 1 };
    }
  | DD ->
    {
      add = { adds = 8; subs = 12; muls = 0; divs = 0 };
      mul = { adds = 5; subs = 9; muls = 9; divs = 0 };
      div = { adds = 33; subs = 18; muls = 16; divs = 3 };
    }
  | QD ->
    {
      add = { adds = 35; subs = 54; muls = 0; divs = 0 };
      mul = { adds = 99; subs = 164; muls = 73; divs = 0 };
      div = { adds = 266; subs = 510; muls = 112; divs = 5 };
    }
  | OD ->
    {
      add = { adds = 95; subs = 174; muls = 0; divs = 0 };
      mul = { adds = 529; subs = 954; muls = 259; divs = 0 };
      div = { adds = 1599; subs = 3070; muls = 448; divs = 9 };
    }

let add_flops p = cost_total (costs p).add
let mul_flops p = cost_total (costs p).mul
let div_flops p = cost_total (costs p).div

(* Square roots are not tallied in Table 1; the Newton iteration of
   [Md_build.sqrt] costs a few full multiplications and additions. *)
let sqrt_flops p =
  let steps =
    let rec bits k n = if n >= limbs p then k else bits (k + 1) (n * 2) in
    bits 1 1
  in
  ((steps * 4) + 3) * mul_flops p
  + (((steps * 2) + 2) * add_flops p)

(* Average double precision operations per multiple double operation:
   37.7 for double double, 439.3 for quad double, 2379.0 for octo double.
   The paper uses these averages to predict cost overhead factors. *)
let average_flops p =
  float_of_int (add_flops p + mul_flops p + div_flops p) /. 3.0

(* Predicted cost overhead factor when doubling precision [lo] -> [hi],
   e.g. 439.3 / 37.7 ~ 11.7 from double double to quad double. *)
let predicted_overhead ~lo ~hi = average_flops hi /. average_flops lo

(* Bytes of one number in the staggered representation. *)
let bytes p = 8 * limbs p
