(** Elementary functions on complex multiple double numbers, built from
    the real functions through the usual identities.  Homotopy
    continuation — the paper's motivating application — lives on complex
    data, so the path-tracking substrate needs these. *)

module Make (R : Md_sig.S) : sig
  module C : module type of Md_complex.Make (R)

  val i_times : C.t -> C.t
  (** Multiplication by the imaginary unit. *)

  val exp : C.t -> C.t
  val log : C.t -> C.t
  (** Principal branch: imaginary part in (-pi, pi]. *)

  val arg : C.t -> R.t
  val pow : C.t -> C.t -> C.t
  (** Principal power. *)

  val npow : C.t -> int -> C.t
  (** Integer power by binary exponentiation. *)

  val sin : C.t -> C.t
  val cos : C.t -> C.t
  val tan : C.t -> C.t
  val sinh : C.t -> C.t
  val cosh : C.t -> C.t
  val tanh : C.t -> C.t

  val roots_of_unity : int -> C.t array
  (** exp(2 pi i k / n) for k = 0..n-1; raises [Invalid_argument] for
      n <= 0.  The start solutions of total-degree homotopies. *)

  val nroots : C.t -> int -> C.t array
  (** All n-th roots of a complex number. *)
end
