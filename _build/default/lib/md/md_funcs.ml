(* Elementary functions for multiple double numbers.

   QDlib ships square roots "and various other useful functions" which the
   paper extends to octo double precision (§4.1); this functor provides
   the same surface for every precision: exponential, logarithms,
   trigonometric and hyperbolic functions, powers and roots, with the
   classic constants computed once per precision at instantiation.

   Algorithms are the standard ones for expansions: argument reduction to
   a tiny interval, a short Taylor series, and reconstruction by repeated
   double-angle / squaring steps, with Newton iteration inverting exp for
   the logarithm. *)

module Make (S : Md_sig.S) = struct
  let half = S.of_float 0.5

  (* ---- constants ---- *)

  (* arctan(1/k) by Taylor series; converges well for k >= 2. *)
  let arctan_inv k =
    let k2 = S.of_int (k * k) in
    let term = ref (S.div S.one (S.of_int k)) in
    let sum = ref !term in
    let n = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      term := S.div !term k2;
      let t = S.div !term (S.of_int ((2 * !n) + 1)) in
      let t = if !n land 1 = 1 then S.neg t else t in
      let sum' = S.add !sum t in
      if S.equal sum' !sum || !n > 2000 then continue_ := false
      else sum := sum';
      incr n
    done;
    !sum

  (* Machin's formula: pi/4 = 4 arctan(1/5) - arctan(1/239). *)
  let pi =
    S.mul_pwr2 (S.sub (S.mul_pwr2 (arctan_inv 5) 4.0) (arctan_inv 239)) 4.0

  let two_pi = S.mul_pwr2 pi 2.0
  let half_pi = S.mul_pwr2 pi 0.5
  let quarter_pi = S.mul_pwr2 pi 0.25

  (* ln 2 = 2 artanh(1/3) = 2 sum_k (1/3)^(2k+1) / (2k+1). *)
  let ln2 =
    let ninth = S.div S.one (S.of_int 9) in
    let term = ref (S.div S.one (S.of_int 3)) in
    let sum = ref !term in
    let n = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      term := S.mul !term ninth;
      let t = S.div !term (S.of_int ((2 * !n) + 1)) in
      let sum' = S.add !sum t in
      if S.equal sum' !sum || !n > 2000 then continue_ := false
      else sum := sum';
      incr n
    done;
    S.mul_pwr2 !sum 2.0

  (* ---- exponential and logarithms ---- *)

  (* exp x = 2^k exp(r) with r = x - k ln2, |r| <= ln2/2; the Taylor
     series runs on r/2^m and the result is squared back m times. *)
  let exp x =
    let xf = S.to_float x in
    if not (S.is_finite x) then
      if Float.is_nan xf then x
      else if xf > 0.0 then x (* +inf *)
      else S.zero
    else if xf > 700.0 then S.of_float Float.infinity
    else if xf < -700.0 then S.zero
    else if S.is_zero x then S.one
    else begin
      let k = Float.round (xf /. Float.log 2.0) in
      let r = S.sub x (S.mul_float ln2 k) in
      let m = 9 in
      let r = S.mul_pwr2 r (2.0 ** float_of_int (-m)) in
      (* p = exp(r) - 1, summed until the terms vanish. *)
      let term = ref r in
      let sum = ref r in
      let n = ref 2 in
      let continue_ = ref true in
      while !continue_ do
        term := S.div (S.mul !term r) (S.of_int !n);
        let sum' = S.add !sum !term in
        if S.equal sum' !sum || !n > 200 then continue_ := false
        else sum := sum';
        incr n
      done;
      (* Undo the scaling: (1+p) <- (1+p)^2, i.e. p <- p^2 + 2p, m times;
         keeping p = exp-1 avoids cancellation for tiny r. *)
      let p = ref !sum in
      for _ = 1 to m do
        p := S.add (S.mul !p !p) (S.mul_pwr2 !p 2.0)
      done;
      let e = S.add !p S.one in
      S.mul_pwr2 e (2.0 ** k)
    end

  (* Newton iteration on y -> y + x exp(-y) - 1 inverts the exponential;
     a double precision seed leaves ~16 correct digits, so ceil(log2 m)+1
     rounds reach full precision. *)
  let log x =
    let xf = S.to_float x in
    if S.is_zero x then S.of_float Float.neg_infinity
    else if xf < 0.0 || Float.is_nan xf then S.of_float Float.nan
    else if not (S.is_finite x) then x
    else if S.equal x S.one then S.zero
    else begin
      let steps =
        let rec bits k n = if n >= S.limbs then k else bits (k + 1) (n * 2) in
        bits 1 1
      in
      let y = ref (S.of_float (Float.log xf)) in
      for _ = 1 to steps do
        y := S.sub (S.add !y (S.mul x (exp (S.neg !y)))) S.one
      done;
      !y
    end

  let ln10 = log (S.of_int 10)
  let log10 x = S.div (log x) ln10
  let log2 x = S.div (log x) ln2
  let e = exp S.one

  (* ---- integer powers and roots ---- *)

  (* Binary exponentiation; n may be negative. *)
  let npow x n =
    if n = 0 then S.one
    else begin
      let r = ref S.one and b = ref x and k = ref (abs n) in
      while !k > 0 do
        if !k land 1 = 1 then r := S.mul !r !b;
        k := !k asr 1;
        if !k > 0 then b := S.mul !b !b
      done;
      if n < 0 then S.div S.one !r else !r
    end

  (* n-th root by Newton on y -> y (n+1 - x y^n)/n applied to 1/x^(1/n),
     avoiding divisions inside the loop. *)
  let nroot x n =
    if n <= 0 then invalid_arg "Md_funcs.nroot: order must be positive";
    if n = 1 then x
    else if n = 2 then S.sqrt x
    else if S.is_zero x then S.zero
    else if S.to_float x < 0.0 && n land 1 = 0 then S.of_float Float.nan
    else begin
      let negative = S.sign x < 0 in
      let a = S.abs x in
      let steps =
        let rec bits k m = if m >= S.limbs then k else bits (k + 1) (m * 2) in
        bits 2 1
      in
      let y =
        ref (S.of_float (Float.exp (-.Float.log (S.to_float a) /. float_of_int n)))
      in
      let fn = S.of_int n in
      for _ = 1 to steps do
        (* y <- y + y (1 - a y^n) / n *)
        let ayn = S.mul a (npow !y n) in
        y := S.add !y (S.div (S.mul !y (S.sub S.one ayn)) fn)
      done;
      let r = S.div S.one !y in
      (* One polishing step on r directly: r <- r - (r^n - a) / (n r^(n-1)). *)
      let rn = npow r n in
      let r =
        S.sub r (S.div (S.sub rn a) (S.mul fn (npow r (n - 1))))
      in
      if negative then S.neg r else r
    end

  (* General power through exp/log for positive bases; falls back to the
     exact integer path when the exponent is a small integer. *)
  let pow x y =
    let yf = S.to_float y in
    if S.equal y (S.floor y) && Float.abs yf < 1e9 then
      npow x (int_of_float yf)
    else exp (S.mul y (log x))

  (* ---- trigonometric functions ---- *)

  (* Reduce to [-pi, pi], then to a quadrant around a multiple of pi/2,
     series on t/2^m, double-angle back. *)
  let sin_cos_kernel t =
    (* |t| <= pi/4 / 2^m after scaling. *)
    let m = 6 in
    let t = S.mul_pwr2 t (2.0 ** float_of_int (-m)) in
    let t2 = S.mul t t in
    (* sin series *)
    let s = ref t and term = ref t and n = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      term :=
        S.div
          (S.neg (S.mul !term t2))
          (S.of_int ((2 * !n) * ((2 * !n) + 1)));
      let s' = S.add !s !term in
      if S.equal s' !s || !n > 200 then continue_ := false else s := s';
      incr n
    done;
    (* cos from sin: c = sqrt(1 - s^2) is ill-conditioned near s ~ 1, but
       after scaling |s| <= pi/4/64 so it is perfectly safe. *)
    let s0 = !s in
    let c0 = S.sqrt (S.sub S.one (S.mul s0 s0)) in
    (* double-angle m times: s' = 2 s c, c' = 1 - 2 s^2 (stable form). *)
    let s = ref s0 and c = ref c0 in
    for _ = 1 to m do
      let s2 = S.mul !s !s in
      let s' = S.mul_pwr2 (S.mul !s !c) 2.0 in
      let c' = S.sub S.one (S.mul_pwr2 s2 2.0) in
      s := s';
      c := c'
    done;
    (!s, !c)

  (* [reduce x] is (q, t) with x = 2 pi k + q (pi/2) + t, |t| <= pi/4,
     q in 0..3. *)
  let reduce x =
    let z = S.floor (S.add (S.div x two_pi) half) in
    let r = S.sub x (S.mul z two_pi) in
    (* r in ~[-pi, pi]; pick the nearest multiple of pi/2. *)
    let q = int_of_float (Float.round (S.to_float r /. S.to_float half_pi)) in
    let q = max (-2) (min 2 q) in
    let t = S.sub r (S.mul_float half_pi (float_of_int q)) in
    (((q mod 4) + 4) mod 4, t)

  let sin_cos x =
    if not (S.is_finite x) then (S.of_float Float.nan, S.of_float Float.nan)
    else begin
      let q, t = reduce x in
      let s, c = sin_cos_kernel t in
      match q with
      | 0 -> (s, c)
      | 1 -> (c, S.neg s)
      | 2 -> (S.neg s, S.neg c)
      | _ -> (S.neg c, s)
    end

  let sin x = fst (sin_cos x)
  let cos x = snd (sin_cos x)
  let tan x =
    let s, c = sin_cos x in
    S.div s c

  (* ---- inverse trigonometric functions ---- *)

  (* Halve the argument until it is small, Taylor, then undo:
     atan x = 2 atan (x / (1 + sqrt(1 + x^2))). *)
  let atan x =
    if S.is_zero x then S.zero
    else if not (S.is_finite x) then
      let s = if S.to_float x > 0.0 then 1.0 else -1.0 in
      S.mul_float half_pi s
    else begin
      let halvings = 5 in
      let t = ref x in
      for _ = 1 to halvings do
        let d = S.add S.one (S.sqrt (S.add S.one (S.mul !t !t))) in
        t := S.div !t d
      done;
      let t = !t in
      let t2 = S.mul t t in
      let term = ref t and sum = ref t and n = ref 1 in
      let continue_ = ref true in
      while !continue_ do
        term := S.neg (S.mul !term t2);
        let a = S.div !term (S.of_int ((2 * !n) + 1)) in
        let sum' = S.add !sum a in
        if S.equal sum' !sum || !n > 500 then continue_ := false
        else sum := sum';
        incr n
      done;
      S.mul_pwr2 !sum (2.0 ** float_of_int halvings)
    end

  let atan2 y x =
    let sx = S.sign x and sy = S.sign y in
    if sx = 0 && sy = 0 then S.zero
    else if sx = 0 then S.mul_float half_pi (if sy > 0 then 1.0 else -1.0)
    else if sy = 0 then if sx > 0 then S.zero else pi
    else begin
      let base = atan (S.div y x) in
      if sx > 0 then base
      else if sy > 0 then S.add base pi
      else S.sub base pi
    end

  let asin x =
    let one_minus = S.sub S.one (S.mul x x) in
    if S.sign one_minus < 0 then S.of_float Float.nan
    else atan2 x (S.sqrt one_minus)

  let acos x =
    let one_minus = S.sub S.one (S.mul x x) in
    if S.sign one_minus < 0 then S.of_float Float.nan
    else atan2 (S.sqrt one_minus) x

  (* ---- hyperbolic functions ---- *)

  let sinh x =
    if S.is_zero x then S.zero
    else begin
      let a = exp x in
      if Float.abs (S.to_float x) > 0.35 then
        S.mul_pwr2 (S.sub a (S.div S.one a)) 0.5
      else begin
        (* Series to avoid the cancellation of exp(x) - exp(-x). *)
        let x2 = S.mul x x in
        let term = ref x and sum = ref x and n = ref 1 in
        let continue_ = ref true in
        while !continue_ do
          term :=
            S.div (S.mul !term x2)
              (S.of_int ((2 * !n) * ((2 * !n) + 1)));
          let sum' = S.add !sum !term in
          if S.equal sum' !sum || !n > 200 then continue_ := false
          else sum := sum';
          incr n
        done;
        !sum
      end
    end

  let cosh x =
    let a = exp x in
    S.mul_pwr2 (S.add a (S.div S.one a)) 0.5

  let tanh x =
    if S.is_zero x then S.zero
    else begin
      let xf = S.to_float x in
      if Float.abs xf > 350.0 then
        if xf > 0.0 then S.one else S.neg S.one
      else begin
        let e2 = exp (S.mul_pwr2 x 2.0) in
        S.div (S.sub e2 S.one) (S.add e2 S.one)
      end
    end

  (* Inverse hyperbolics through log. *)
  let asinh x = log (S.add x (S.sqrt (S.add (S.mul x x) S.one)))
  let acosh x = log (S.add x (S.sqrt (S.sub (S.mul x x) S.one)))

  let atanh x =
    S.mul_pwr2 (log (S.div (S.add S.one x) (S.sub S.one x))) 0.5
end
