(* Hexa double arithmetic (~256 decimal digits): the generic expansion
   functor at m = 16, demonstrating that the CAMPARY-style generic layer
   keeps working beyond the paper's octo double. *)

include Expansion.Make (struct
  let limbs = 16
  let name = "hexa double"
end)
