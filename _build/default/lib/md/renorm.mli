(** Renormalization of floating-point expansions.

    A multiple double number with [m] limbs is an unevaluated sum
    [x0 + x1 + ... + x(m-1)] with the limbs sorted by decreasing
    magnitude and pairwise non-overlapping; these functions compress raw
    sequences of doubles back into that normal form, generalizing
    QDlib's renorm to any number of limbs. *)

val renormalize : ?passes:int -> m:int -> float array -> float array
(** [renormalize ~m src] compresses the limbs of [src] (roughly
    decreasing magnitude) into a fresh normalized array of [m] limbs.
    [passes] (default 1) repeats the backward distillation ladder, needed
    when the input holds many overlapping terms of similar magnitude. *)

val renormalize_into : m:int -> float array -> float array -> int -> unit
(** [renormalize_into ~m src dst off] writes the normalized limbs at
    offsets [off .. off+m-1] of [dst]. *)

val grow : float array -> float -> float
(** [grow e x] exactly adds the double [x] to the expansion [e] in place
    (most significant limb first) and returns the carry falling off the
    least significant end. *)

val sort_by_magnitude : float array -> unit
(** Sorts in place by decreasing absolute value; used to order partial
    products before distillation. *)

val merge_by_magnitude : float array -> float array -> float array
(** Merges two arrays already sorted by decreasing absolute value (as
    normalized expansions are) into a fresh decreasing array — the O(m)
    fast path of expansion addition. *)
