(** Precision descriptors and the paper's Table 1 operation-count model.

    One multiple double operation expands into a fixed number of double
    precision operations; those multipliers convert operation tallies
    into double precision flops throughout the benchmarks, exactly as the
    paper computes its gigaflops. *)

type tag = D | DD | QD | OD

val all : tag list

val limbs : tag -> int
(** 1, 2, 4 or 8 doubles per number. *)

val of_limbs : int -> tag
(** Inverse of {!limbs}; raises [Invalid_argument] otherwise. *)

val name : tag -> string
(** E.g. "quad double". *)

val label : tag -> string
(** The paper's table headers: "1d", "2d", "4d", "8d". *)

val of_label : string -> tag
(** Accepts "1d".."8d" and "d"/"dd"/"qd"/"od". *)

(** Double precision operations needed by one multiple double operation,
    split by the kind of double operation performed. *)
type op_cost = { adds : int; subs : int; muls : int; divs : int }

val cost_total : op_cost -> int

type cost_table = { add : op_cost; mul : op_cost; div : op_cost }

val costs : tag -> cost_table
(** Table 1 of the paper. *)

val add_flops : tag -> int
(** 20 / 89 / 269 for dd / qd / od (1 for plain doubles). *)

val mul_flops : tag -> int
(** 23 / 336 / 1742. *)

val div_flops : tag -> int
(** 70 / 893 / 5126. *)

val sqrt_flops : tag -> int
(** Estimated cost of the Newton square root (not tallied in Table 1). *)

val average_flops : tag -> float
(** 37.7 / 439.3 / 2379.0 — the averages the paper predicts cost overhead
    factors from. *)

val predicted_overhead : lo:tag -> hi:tag -> float
(** [predicted_overhead ~lo:DD ~hi:QD] is the paper's 11.7;
    [~lo:QD ~hi:OD] is 5.4. *)

val bytes : tag -> int
(** Bytes of one number in the staggered device representation. *)
