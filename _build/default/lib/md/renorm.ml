(* Renormalization of floating-point expansions.

   A multiple double number with [m] limbs is an unevaluated sum
   [x0 + x1 + ... + x(m-1)] with the limbs sorted by decreasing magnitude
   and pairwise non-overlapping.  The functions here compress a raw sequence
   of doubles (as produced by the arithmetic kernels) back into that
   normal form, generalizing QDlib's renorm and CAMPARY's fast
   renormalization to any number of limbs. *)

(* [renormalize ~m src] compresses the limbs of [src] (roughly decreasing
   magnitude) into a fresh normalized array of [m] limbs.

   First a backward [two_sum] ladder turns [src] into a non-overlapping
   sequence; then a forward pass commits each nonzero error term as the
   next output limb, exactly as QDlib's renorm does with its zero tests.
   With [passes > 1] the backward distillation ladder is repeated, which is
   needed when the input holds many overlapping terms of similar magnitude
   (partial products); one pass suffices for nearly normalized inputs. *)
let renormalize ?(passes = 1) ~m src =
  let n = Array.length src in
  let out = Array.make m 0.0 in
  if n = 0 then out
  else begin
    let t = Array.copy src in
    for _ = 1 to passes do
      let s = ref t.(n - 1) in
      for i = n - 2 downto 0 do
        let hi, lo = Eft.two_sum t.(i) !s in
        s := hi;
        t.(i + 1) <- lo
      done;
      t.(0) <- !s
    done;
    let k = ref 0 in
    let acc = ref t.(0) in
    (let i = ref 1 in
     while !i < n && !k < m do
       let hi, lo = Eft.quick_two_sum !acc t.(!i) in
       if lo <> 0.0 then begin
         out.(!k) <- hi;
         incr k;
         acc := lo
       end
       else acc := hi;
       incr i
     done);
    if !k < m then out.(!k) <- !acc;
    out
  end

(* [renormalize_into ~m src dst off] is [renormalize] writing the limbs at
   offsets [off], [off+1], ... of [dst]; avoids the allocation in hot code. *)
let renormalize_into ~m src dst off =
  let r = renormalize ~m src in
  Array.blit r 0 dst off m

(* [grow e x] exactly adds the double [x] to the expansion [e] (most
   significant limb first), returning the carry that falls off the least
   significant end.  This is Shewchuk's grow-expansion adapted to the
   decreasing-magnitude convention: the result remains an expansion with the
   same number of limbs, plus the returned tail. *)
let grow e x =
  let m = Array.length e in
  let q = ref x in
  for i = m - 1 downto 0 do
    let hi, lo = Eft.two_sum e.(i) !q in
    e.(i) <- hi;
    q := lo
  done;
  !q

(* [sort_by_magnitude a] sorts in place by decreasing absolute value;
   used to merge the limbs of two expansions before distillation. *)
let sort_by_magnitude a =
  Array.sort (fun x y -> compare (Float.abs y) (Float.abs x)) a

(* [merge_by_magnitude a b] merges two arrays that are each already
   sorted by decreasing absolute value (as normalized expansions are)
   into a fresh decreasing array — the O(m) fast path of expansion
   addition. *)
let merge_by_magnitude (a : float array) (b : float array) =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0.0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    if Float.abs a.(!i) >= Float.abs b.(!j) then begin
      out.(!k) <- a.(!i);
      incr i
    end
    else begin
      out.(!k) <- b.(!j);
      incr j
    end;
    incr k
  done;
  while !i < na do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < nb do
    out.(!k) <- b.(!j);
    incr j;
    incr k
  done;
  out
