lib/md/md_build.ml: Array Buffer Char Float Format Md_sig Printf Stdlib String
