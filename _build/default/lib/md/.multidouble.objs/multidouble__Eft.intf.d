lib/md/eft.mli:
