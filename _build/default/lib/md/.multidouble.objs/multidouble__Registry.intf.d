lib/md/registry.mli: Md_sig Precision
