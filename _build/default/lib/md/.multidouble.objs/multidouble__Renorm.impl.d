lib/md/renorm.ml: Array Eft Float
