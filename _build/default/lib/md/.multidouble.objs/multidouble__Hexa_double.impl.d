lib/md/hexa_double.ml: Expansion
