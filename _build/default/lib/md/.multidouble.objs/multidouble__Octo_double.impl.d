lib/md/octo_double.ml: Expansion
