lib/md/eft.ml: Float
