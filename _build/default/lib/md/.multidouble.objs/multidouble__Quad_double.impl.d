lib/md/quad_double.ml: Array Eft Float Md_build Renorm
