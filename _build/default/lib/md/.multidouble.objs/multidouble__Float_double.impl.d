lib/md/float_double.ml: Array Float Md_build
