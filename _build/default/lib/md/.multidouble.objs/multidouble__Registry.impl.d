lib/md/registry.ml: Double_double Float_double Md_sig Octo_double Precision Quad_double
