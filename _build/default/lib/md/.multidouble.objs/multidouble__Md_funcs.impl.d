lib/md/md_funcs.ml: Float Md_sig
