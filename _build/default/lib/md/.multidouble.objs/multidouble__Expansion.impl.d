lib/md/expansion.ml: Array Eft Float Md_build Md_sig Renorm
