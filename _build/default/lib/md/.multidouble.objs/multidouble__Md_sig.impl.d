lib/md/md_sig.ml: Format
