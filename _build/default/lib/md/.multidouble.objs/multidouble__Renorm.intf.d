lib/md/renorm.mli:
