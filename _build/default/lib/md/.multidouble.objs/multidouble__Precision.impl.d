lib/md/precision.ml: Printf
