lib/md/md_complex_funcs.mli: Md_complex Md_sig
