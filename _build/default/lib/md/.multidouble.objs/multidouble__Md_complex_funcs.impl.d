lib/md/md_complex_funcs.ml: Array Md_complex Md_funcs Md_sig
