lib/md/double_double.ml: Array Eft Float Md_build Renorm
