lib/md/triple_double.ml: Expansion
