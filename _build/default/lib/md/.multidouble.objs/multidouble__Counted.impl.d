lib/md/counted.ml: Md_sig Precision
