lib/md/md_funcs.mli: Md_sig
