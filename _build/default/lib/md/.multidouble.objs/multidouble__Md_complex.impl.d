lib/md/md_complex.ml: Format Md_sig Printf
