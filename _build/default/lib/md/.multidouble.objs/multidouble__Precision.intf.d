lib/md/precision.mli:
