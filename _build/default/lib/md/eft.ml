(* Error-free transformations: the double precision building blocks of all
   multiple double arithmetic (QDlib [8], CAMPARY [10]).

   Every function returns an exact decomposition: the rounded result together
   with the rounding error, both representable in double precision. *)

(* [two_sum a b] is [(s, e)] with [s = fl(a + b)] and [a + b = s + e]
   exactly, for any [a], [b] (Knuth). *)
let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let e = (a -. (s -. bb)) +. (b -. bb) in
  (s, e)

(* [quick_two_sum a b] is the branch-free variant valid when
   [|a| >= |b|] or [a = 0] (Dekker). *)
let quick_two_sum a b =
  let s = a +. b in
  let e = b -. (s -. a) in
  (s, e)

(* [two_diff a b] is [(d, e)] with [d = fl(a - b)] and [a - b = d + e]. *)
let two_diff a b =
  let d = a -. b in
  let bb = d -. a in
  let e = (a -. (d -. bb)) -. (b +. bb) in
  (d, e)

(* [two_prod a b] is [(p, e)] with [p = fl(a * b)] and [a * b = p + e],
   using the fused multiply-add. *)
let two_prod a b =
  let p = a *. b in
  let e = Float.fma a b (-.p) in
  (p, e)

(* [two_sqr a] is [two_prod a a], one multiplication cheaper. *)
let two_sqr a =
  let p = a *. a in
  let e = Float.fma a a (-.p) in
  (p, e)

(* Dekker's splitting, kept for documentation and for testing [two_prod]
   against an FMA-free implementation. Valid for |a| <= 2^996. *)
let split a =
  let t = 134217729.0 *. a in
  (* 2^27 + 1 *)
  let hi = t -. (t -. a) in
  let lo = a -. hi in
  (hi, lo)

(* FMA-free product decomposition via Dekker splitting; used only to
   cross-check [two_prod] in the test suite. *)
let two_prod_dekker a b =
  let p = a *. b in
  let ahi, alo = split a in
  let bhi, blo = split b in
  let e = ((ahi *. bhi -. p) +. (ahi *. blo) +. (alo *. bhi)) +. (alo *. blo) in
  (p, e)

(* [three_sum a b c] sums three doubles into a length-3 expansion
   [(s0, s1, s2)] with [s0 + s1 + s2 = a + b + c] exactly (QDlib). *)
let three_sum a b c =
  let t1, t2 = two_sum a b in
  let s0, t3 = two_sum c t1 in
  let s1, s2 = two_sum t2 t3 in
  (s0, s1, s2)

(* [three_sum2 a b c] is [three_sum] with the last component summed
   approximately: [(s0, s1)] with [s0 + s1 ~ a + b + c] (QDlib). *)
let three_sum2 a b c =
  let t1, t2 = two_sum a b in
  let s0, t3 = two_sum c t1 in
  let s1 = t2 +. t3 in
  (s0, s1)
