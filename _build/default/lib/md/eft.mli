(** Error-free transformations: the double precision building blocks of
    all multiple double arithmetic (QDlib, CAMPARY).

    Each function returns an exact decomposition of a floating-point
    operation: the correctly rounded result together with the rounding
    error, both representable as doubles. *)

val two_sum : float -> float -> float * float
(** [two_sum a b] is [(s, e)] with [s = fl(a + b)] and [a + b = s + e]
    exactly, for any [a], [b] (Knuth, 6 flops). *)

val quick_two_sum : float -> float -> float * float
(** [quick_two_sum a b] is [two_sum a b] in 3 flops, valid when
    [|a| >= |b|] or [a = 0] (Dekker). *)

val two_diff : float -> float -> float * float
(** [two_diff a b] is [(d, e)] with [d = fl(a - b)] and [a - b = d + e]. *)

val two_prod : float -> float -> float * float
(** [two_prod a b] is [(p, e)] with [p = fl(a * b)] and [a * b = p + e]
    exactly, using the fused multiply-add. *)

val two_sqr : float -> float * float
(** [two_sqr a] is [two_prod a a], one multiplication cheaper. *)

val split : float -> float * float
(** [split a] is Dekker's splitting of [a] into two 26-bit halves;
    valid for [|a| <= 2^996]. *)

val two_prod_dekker : float -> float -> float * float
(** FMA-free [two_prod] via {!split}; used to cross-check {!two_prod}. *)

val three_sum : float -> float -> float -> float * float * float
(** [three_sum a b c] is [(s0, s1, s2)] with
    [s0 + s1 + s2 = a + b + c] exactly and decreasing magnitudes. *)

val three_sum2 : float -> float -> float -> float * float
(** [three_sum2 a b c] is {!three_sum} with the two low components
    summed approximately. *)
