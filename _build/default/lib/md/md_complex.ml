(* Complex numbers over any multiple double precision.

   The paper's Table 5 runs the blocked Householder QR on complex double
   double data; on complex data the Hermitian transpose replaces the
   transpose and each complex operation costs roughly four times its real
   counterpart. *)

module type S = sig
  module R : Md_sig.S

  type t = { re : R.t; im : R.t }

  val zero : t
  val one : t
  val i : t
  val make : R.t -> R.t -> t
  val of_real : R.t -> t
  val of_float : float -> t
  val of_floats : float -> float -> t
  val re : t -> R.t
  val im : t -> R.t
  val conj : t -> t
  val neg : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val scale : t -> R.t -> t
  val mul_float : t -> float -> t

  (* Squared modulus, a real number. *)
  val norm2 : t -> R.t

  (* Modulus. *)
  val abs : t -> R.t

  val sqrt : t -> t
  val equal : t -> t -> bool
  val is_finite : t -> bool
  val to_string : ?digits:int -> t -> string
  val pp : Format.formatter -> t -> unit
end

module Make (R0 : Md_sig.S) : S with module R = R0 = struct
  module R = R0

  type t = { re : R.t; im : R.t }

  let make re im = { re; im }
  let zero = { re = R.zero; im = R.zero }
  let one = { re = R.one; im = R.zero }
  let i = { re = R.zero; im = R.one }
  let of_real re = { re; im = R.zero }
  let of_float x = of_real (R.of_float x)
  let of_floats x y = { re = R.of_float x; im = R.of_float y }
  let re z = z.re
  let im z = z.im
  let conj z = { z with im = R.neg z.im }
  let neg z = { re = R.neg z.re; im = R.neg z.im }
  let add a b = { re = R.add a.re b.re; im = R.add a.im b.im }
  let sub a b = { re = R.sub a.re b.re; im = R.sub a.im b.im }

  let mul a b =
    {
      re = R.sub (R.mul a.re b.re) (R.mul a.im b.im);
      im = R.add (R.mul a.re b.im) (R.mul a.im b.re);
    }

  let scale z s = { re = R.mul z.re s; im = R.mul z.im s }
  let mul_float z s = { re = R.mul_float z.re s; im = R.mul_float z.im s }
  let norm2 z = R.add (R.mul z.re z.re) (R.mul z.im z.im)
  let abs z = R.sqrt (norm2 z)

  let div a b =
    let d = norm2 b in
    let n = mul a (conj b) in
    { re = R.div n.re d; im = R.div n.im d }

  (* Principal square root via the half-angle formulas. *)
  let sqrt z =
    if R.is_zero z.re && R.is_zero z.im then zero
    else begin
      let r = abs z in
      let half = R.of_float 0.5 in
      if R.sign z.re >= 0 then begin
        (* u is computed without cancellation; recover v from u*v = im/2. *)
        let u = R.sqrt (R.mul (R.add r z.re) half) in
        let v =
          if R.is_zero z.im then R.zero else R.div (R.mul z.im half) u
        in
        { re = u; im = v }
      end
      else begin
        let v = R.sqrt (R.mul (R.sub r z.re) half) in
        let v = if R.sign z.im < 0 then R.neg v else v in
        let u =
          if R.is_zero z.im then R.zero else R.div (R.mul z.im half) v
        in
        { re = u; im = v }
      end
    end

  let equal a b = R.equal a.re b.re && R.equal a.im b.im
  let is_finite z = R.is_finite z.re && R.is_finite z.im

  let to_string ?digits z =
    Printf.sprintf "(%s, %s)" (R.to_string ?digits z.re)
      (R.to_string ?digits z.im)

  let pp fmt z = Format.pp_print_string fmt (to_string z)
end
