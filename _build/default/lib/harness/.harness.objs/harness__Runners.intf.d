lib/harness/runners.mli: Gpusim Mdlinalg Multidouble
