lib/harness/runners.ml: Blocked_qr Dompool Float Host_qr Host_tri Least_squares Lsq_core Mdlinalg Multidouble Option Printf Randmat Scalar Tiled_back_sub Vec
