(** Uniform entry points the table generators and the CLI share: run one
    experiment at a given precision (real or complex) on a given device
    and return the per-stage breakdown in a plain record.

    Tables are generated in planning mode (cost accounting without
    numeric execution); the [verify_*] functions execute the same code
    paths numerically at moderate dimensions and report residuals. *)

type run = {
  stage_ms : (string * float) list;
  kernel_ms : float;
  wall_ms : float;
  kernel_gflops : float;
  wall_gflops : float;
  launches : int;
}

val scalar_of :
  ?complex:bool -> Multidouble.Precision.tag -> (module Mdlinalg.Scalar.S)
(** The shared scalar instantiation for a precision tag. *)

val qr :
  ?complex:bool ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  run
(** Blocked Householder QR (Algorithm 2), cost accounting only. *)

val bs :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  run
(** Tiled back substitution (Algorithm 1), cost accounting only. *)

type solve_run = {
  qr_kernel_ms : float;
  qr_wall_ms : float;
  bs_kernel_ms : float;
  bs_wall_ms : float;
  qr_kernel_gflops : float;
  qr_wall_gflops : float;
  bs_kernel_gflops : float;
  bs_wall_gflops : float;
  total_kernel_gflops : float;
  total_wall_gflops : float;
}

val solve :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  solve_run
(** The least squares solver (QR then back substitution), cost
    accounting only. *)

type verification = {
  what : string;
  residual : float;  (** relative, in units of the precision's eps *)
  eps : float;
  ok : bool;
}

val verify_qr :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  verification

val verify_solve :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  verification

val verify_bs :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  verification
