(* Multiple double operation tallies for a kernel launch, converted to
   double precision flops with the Table 1 multipliers — the same
   accounting the paper performs ("for every kernel ... a small function
   accumulates the number of arithmetical operations", §4.1). *)

type ops = { adds : float; muls : float; divs : float; sqrts : float }

let zero = { adds = 0.0; muls = 0.0; divs = 0.0; sqrts = 0.0 }

let make ?(adds = 0.0) ?(muls = 0.0) ?(divs = 0.0) ?(sqrts = 0.0) () =
  { adds; muls; divs; sqrts }

let add a b =
  {
    adds = a.adds +. b.adds;
    muls = a.muls +. b.muls;
    divs = a.divs +. b.divs;
    sqrts = a.sqrts +. b.sqrts;
  }

let scale a f =
  {
    adds = a.adds *. f;
    muls = a.muls *. f;
    divs = a.divs *. f;
    sqrts = a.sqrts *. f;
  }

let total a = a.adds +. a.muls +. a.divs +. a.sqrts

(* Complex operations expand into real ones before costing: a complex
   multiplication is four real multiplications and two additions, a complex
   addition two real additions, a complex division adds the modulus work. *)
let complexify a =
  {
    adds = (2.0 *. a.adds) +. (2.0 *. a.muls) +. (3.0 *. a.divs);
    muls = (4.0 *. a.muls) +. (6.0 *. a.divs);
    divs = 2.0 *. a.divs;
    sqrts = a.sqrts;
  }

(* Double precision flops under precision [p]. *)
let flops p a =
  (a.adds *. float_of_int (Multidouble.Precision.add_flops p))
  +. (a.muls *. float_of_int (Multidouble.Precision.mul_flops p))
  +. (a.divs *. float_of_int (Multidouble.Precision.div_flops p))
  +. (a.sqrts *. float_of_int (Multidouble.Precision.sqrt_flops p))

let of_tally (t : Multidouble.Counted.tally) =
  {
    adds = float_of_int t.Multidouble.Counted.adds;
    muls = float_of_int t.Multidouble.Counted.muls;
    divs = float_of_int t.Multidouble.Counted.divs;
    sqrts = float_of_int t.Multidouble.Counted.sqrts;
  }

let pp fmt a =
  Format.fprintf fmt "{adds=%.0f muls=%.0f divs=%.0f sqrts=%.0f}" a.adds
    a.muls a.divs a.sqrts
