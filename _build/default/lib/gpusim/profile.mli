(** Per-stage accumulation of kernel times and operation tallies, used to
    print the stage-by-stage breakdowns of the paper's tables. *)

type entry = {
  mutable ms : float;
  mutable ops : Counter.ops;
  mutable launches : int;
}

type t = { table : (string, entry) Hashtbl.t; mutable order : string list }

val create : unit -> t

val record :
  ?count:int -> t -> stage:string -> ms:float -> ops:Counter.ops -> unit
(** Adds one launch (or [count] concurrent launches) to a stage. *)

val stages : t -> string list
(** In first-recorded order. *)

val stage_ms : t -> string -> float
val stage_ops : t -> string -> Counter.ops
val stage_launches : t -> string -> int
val total_ms : t -> float
val total_ops : t -> Counter.ops
val total_launches : t -> int
