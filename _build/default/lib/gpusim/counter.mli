(** Multiple double operation tallies for kernel launches, converted to
    double precision flops with the Table 1 multipliers — the accounting
    the paper performs per kernel (§4.1). *)

type ops = { adds : float; muls : float; divs : float; sqrts : float }

val zero : ops

val make :
  ?adds:float -> ?muls:float -> ?divs:float -> ?sqrts:float -> unit -> ops

val add : ops -> ops -> ops
val scale : ops -> float -> ops
val total : ops -> float

val complexify : ops -> ops
(** Expands complex operations into real ones before costing: a complex
    multiplication is 4 real multiplications and 2 additions, etc. *)

val flops : Multidouble.Precision.tag -> ops -> float
(** Double precision flops under the given precision. *)

val of_tally : Multidouble.Counted.tally -> ops
(** From the dynamic instrumentation counters. *)

val pp : Format.formatter -> ops -> unit
