(* Per-stage accumulation of kernel times and operation tallies, used to
   print the stage-by-stage breakdowns of the paper's tables. *)

type entry = {
  mutable ms : float;
  mutable ops : Counter.ops;
  mutable launches : int;
}

type t = { table : (string, entry) Hashtbl.t; mutable order : string list }

let create () = { table = Hashtbl.create 16; order = [] }

let entry t stage =
  match Hashtbl.find_opt t.table stage with
  | Some e -> e
  | None ->
    let e = { ms = 0.0; ops = Counter.zero; launches = 0 } in
    Hashtbl.add t.table stage e;
    t.order <- stage :: t.order;
    e

let record ?(count = 1) t ~stage ~ms ~ops =
  let e = entry t stage in
  e.ms <- e.ms +. ms;
  e.ops <- Counter.add e.ops ops;
  e.launches <- e.launches + count

(* Stages in first-recorded order. *)
let stages t = List.rev t.order

let stage_ms t stage =
  match Hashtbl.find_opt t.table stage with Some e -> e.ms | None -> 0.0

let stage_ops t stage =
  match Hashtbl.find_opt t.table stage with
  | Some e -> e.ops
  | None -> Counter.zero

let stage_launches t stage =
  match Hashtbl.find_opt t.table stage with Some e -> e.launches | None -> 0

let total_ms t = Hashtbl.fold (fun _ e acc -> acc +. e.ms) t.table 0.0

let total_ops t =
  Hashtbl.fold (fun _ e acc -> Counter.add acc e.ops) t.table Counter.zero

let total_launches t =
  Hashtbl.fold (fun _ e acc -> acc + e.launches) t.table 0
