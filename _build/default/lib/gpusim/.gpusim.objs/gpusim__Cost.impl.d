lib/gpusim/cost.ml: Counter Device Float Multidouble
