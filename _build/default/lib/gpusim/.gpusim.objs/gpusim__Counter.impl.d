lib/gpusim/counter.ml: Format Multidouble
