lib/gpusim/sim.ml: Cost Counter Device Dompool Float Hashtbl Multidouble Profile
