lib/gpusim/profile.ml: Counter Hashtbl List
