lib/gpusim/cost.mli: Counter Device Multidouble
