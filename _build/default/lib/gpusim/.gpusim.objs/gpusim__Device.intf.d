lib/gpusim/device.mli: Format
