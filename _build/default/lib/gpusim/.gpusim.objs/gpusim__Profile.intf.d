lib/gpusim/profile.mli: Counter Hashtbl
