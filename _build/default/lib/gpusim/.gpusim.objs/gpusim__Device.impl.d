lib/gpusim/device.ml: Format List String
