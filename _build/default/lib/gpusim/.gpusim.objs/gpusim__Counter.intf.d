lib/gpusim/counter.mli: Format Multidouble
