lib/gpusim/sim.mli: Cost Device Dompool Multidouble Profile
