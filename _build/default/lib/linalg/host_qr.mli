(** Host (single-threaded, unblocked) Householder QR: the numerically
    trusted baseline the blocked accelerated Algorithm 2 is validated
    against, and the reference least squares solver. *)

module Make (K : Scalar.S) : sig
  val householder : Vec.Make(K).t -> Vec.Make(K).t * K.R.t
  (** [householder x] is [(v, beta)] with
      [(I - beta v v^H) x = -phase(x0) ||x|| e1] and [beta = 2 / v^H v]
      (the convention of the paper's kernels); [beta = 0] when [x] is
      zero. *)

  val factor : Mat.Make(K).t -> Mat.Make(K).t * Mat.Make(K).t
  (** [factor a] is [(q, r)] with [a = q r], [q] unitary m-by-m and [r]
      upper triangular m-by-n, for m >= n (raises [Invalid_argument]
      otherwise). *)

  val least_squares : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  (** Minimizes [||b - a x||_2] through the QR factorization. *)

  val orthogonality_defect : Mat.Make(K).t -> K.R.t
  (** [||q^H q - I||_F]. *)

  val factorization_residual :
    Mat.Make(K).t -> Mat.Make(K).t -> Mat.Make(K).t -> K.R.t
  (** [|| a - q r ||_F / ||a||_F]. *)
end
