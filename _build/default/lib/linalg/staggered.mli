(** The staggered device representation of multiple double data: a
    matrix of quad doubles is stored as four matrices of doubles sorted
    by significance (and real/imaginary parts separately on complex
    data), so adjacent threads read adjacent doubles — the coalescing
    argument at the end of the paper's Algorithm 1. *)

module Make (K : Scalar.S) : sig
  type vec = { n : int; planes : float array array }
  (** [K.width] planes of [n] doubles each. *)

  type mat = { rows : int; cols : int; planes : float array array }
  (** [K.width] planes of [rows * cols] doubles, row-major. *)

  val vec_bytes : vec -> int
  val mat_bytes : mat -> int
  val of_vec : Vec.Make(K).t -> vec
  val to_vec : vec -> Vec.Make(K).t
  val of_mat : Mat.Make(K).t -> mat
  val to_mat : mat -> Mat.Make(K).t
end
