(* Dense vectors over a scalar field. *)

module Make (K : Scalar.S) = struct
  type t = K.t array

  let create n : t = Array.make n K.zero
  let init n f : t = Array.init n f
  let length (v : t) = Array.length v
  let copy (v : t) : t = Array.copy v
  let of_array (a : K.t array) : t = Array.copy a

  let random rng n : t = init n (fun _ -> K.random rng)

  let map f (v : t) : t = Array.map f v
  let neg v = map K.neg v
  let add (a : t) (b : t) : t = Array.map2 K.add a b
  let sub (a : t) (b : t) : t = Array.map2 K.sub a b
  let scale (v : t) s : t = map (fun x -> K.scale x s) v

  (* y <- y + a x *)
  let axpy ~a (x : t) (y : t) =
    for i = 0 to Array.length y - 1 do
      y.(i) <- K.add y.(i) (K.mul a x.(i))
    done

  (* Inner product conj(a) . b (the Hermitian inner product on complex
     data, reducing to the ordinary dot product on real data). *)
  let dot (a : t) (b : t) =
    let s = ref K.zero in
    for i = 0 to Array.length a - 1 do
      s := K.add !s (K.mul (K.conj a.(i)) b.(i))
    done;
    !s

  (* Squared Euclidean norm, a real number. *)
  let norm2 (a : t) =
    let s = ref K.R.zero in
    for i = 0 to Array.length a - 1 do
      s := K.R.add !s (K.norm2 a.(i))
    done;
    !s

  let norm a = K.R.sqrt (norm2 a)

  (* Largest modulus of an entry. *)
  let inf_norm (a : t) =
    let m = ref K.R.zero in
    for i = 0 to Array.length a - 1 do
      let x = K.abs a.(i) in
      if K.R.compare x !m > 0 then m := x
    done;
    !m

  let equal (a : t) (b : t) =
    Array.length a = Array.length b && Array.for_all2 K.equal a b

  let pp fmt (v : t) =
    Format.fprintf fmt "[@[";
    Array.iteri
      (fun i x ->
        if i > 0 then Format.fprintf fmt ";@ ";
        K.pp fmt x)
      v;
    Format.fprintf fmt "@]]"
end
