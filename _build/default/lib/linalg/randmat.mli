(** Random test problems, following §4.1 of the paper: general matrices
    have uniform random entries; standalone upper triangular systems take
    the U factor of an LU factorization of a random dense matrix, since
    directly random triangular matrices are almost surely exponentially
    ill-conditioned (Viswanath-Trefethen). *)

module Make (K : Scalar.S) : sig
  val vector : Dompool.Prng.t -> int -> Vec.Make(K).t
  val matrix : Dompool.Prng.t -> int -> int -> Mat.Make(K).t

  val raw_upper : Dompool.Prng.t -> int -> Mat.Make(K).t
  (** A directly random upper triangular matrix — the ill-conditioned
      counterexample the conditioning tests measure. *)

  val upper : Dompool.Prng.t -> int -> Mat.Make(K).t
  (** Well-conditioned random upper triangular matrix via LU. *)

  val rhs_for :
    Dompool.Prng.t -> Mat.Make(K).t -> Vec.Make(K).t * Vec.Make(K).t
  (** [rhs_for rng m] is [(b, x)] with [m x = b] up to working
      precision — a system with a known solution. *)
end
