(* Random test problems, following §4.1 of the paper: general matrices
   have uniform random entries; standalone upper triangular systems take
   the U factor of an LU factorization of a random dense matrix, since
   directly random triangular matrices are almost surely exponentially
   ill-conditioned [Viswanath-Trefethen]. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Lu = Lu.Make (K)

  let vector rng n = V.random rng n
  let matrix rng rows cols = M.random rng rows cols

  (* A directly random upper triangular matrix — kept as the
     ill-conditioned counterexample for the conditioning tests. *)
  let raw_upper rng n =
    M.init n n (fun i j -> if i <= j then K.random rng else K.zero)

  (* Well-conditioned random upper triangular matrix via LU. *)
  let upper rng n =
    let a = matrix rng n n in
    let lu, _ = Lu.factor a in
    Lu.upper_of lu

  (* A right-hand side with a known solution: returns (b, x) such that
     m x = b exactly up to working precision. *)
  let rhs_for rng (m : M.t) =
    let x = vector rng (M.cols m) in
    (M.matvec m x, x)
end
