(** Host (single-threaded) triangular solvers: the reference the
    accelerated Algorithm 1 is validated against, and the classic
    column-sweep baseline of the ablation benchmarks. *)

module Make (K : Scalar.S) : sig
  val back_substitute : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  (** Classic back substitution for an upper triangular system U x = b;
      the last instruction per unknown is the division by the diagonal.
      Raises [Invalid_argument] on shape mismatch. *)

  val forward_substitute : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  (** Forward substitution for a lower triangular system. *)

  val upper_inverse : Mat.Make(K).t -> Mat.Make(K).t
  (** Inverse of an upper triangular matrix; column k solves U v = e_k —
      the very computation each thread of Algorithm 1's first stage
      performs. *)

  val residual : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t -> K.R.t
  (** Normwise relative residual of U x = b. *)
end
