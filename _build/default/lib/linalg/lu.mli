(** LU factorization with partial pivoting.

    Its role in the paper (§4.1) is indirect but important: condition
    numbers of random triangular matrices grow exponentially with the
    dimension, so the standalone back substitution experiments use the
    upper triangular factor of an LU factorization of a random dense
    matrix, whose condition stays moderate. *)

module Make (K : Scalar.S) : sig
  exception Singular of int
  (** Raised with the failing elimination step when no nonzero pivot
      exists. *)

  val factor : Mat.Make(K).t -> Mat.Make(K).t * int array
  (** [factor a] is [(lu, perm)] with L unit-lower and U upper packed in
      [lu] and [perm] the row permutation: [a.(perm.(i)) = (L U).(i)].
      Raises {!Singular} and [Invalid_argument] on non-square input. *)

  val lower_of : Mat.Make(K).t -> Mat.Make(K).t
  (** The unit lower triangular factor from a packed [lu]. *)

  val upper_of : Mat.Make(K).t -> Mat.Make(K).t

  val solve : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  (** Solve [a x = b] through the factorization. *)
end
