(** Condition numbers — the quantity that decides how many limbs a
    computation needs (cf. the exponential conditioning of random
    triangular matrices behind the paper's §4.1 generation choice). *)

module Make (K : Scalar.S) : sig
  module Lu : module type of Lu.Make (K)
  (** The factorization backend; its [Singular] exception escapes the
      functions below on singular input. *)

  val one_norm : Mat.Make(K).t -> K.R.t
  (** Maximum absolute column sum. *)

  val inf_norm : Mat.Make(K).t -> K.R.t
  (** Maximum absolute row sum. *)

  val inverse : Mat.Make(K).t -> Mat.Make(K).t
  (** Explicit inverse through one LU factorization and n solves. *)

  val cond1 : Mat.Make(K).t -> K.R.t
  (** [||A||_1 ||A^-1||_1]. *)

  val cond_inf : Mat.Make(K).t -> K.R.t

  val digits_at_risk : Mat.Make(K).t -> float
  (** [log10 (cond1 a)]: decimal digits a residual-exact solve can
      lose. *)
end
