(** Cholesky factorization and the normal-equations least squares
    baseline the paper's stable Householder QR is measured against (the
    normal equations square the condition number). *)

module Make (K : Scalar.S) : sig
  exception Not_positive_definite of int
  (** Raised with the failing column when a diagonal pivot is not
      positive. *)

  val factor : Mat.Make(K).t -> Mat.Make(K).t
  (** [factor a] is lower triangular [l] with [a = l l^H]; [a] must be
      Hermitian positive definite. *)

  val solve : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  (** Solve [a x = b] for Hermitian positive definite [a]. *)

  val least_squares : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  (** The normal-equations solver [x = (A^H A)^-1 A^H b]: cheap, with an
      effective condition number of [kappa(A)^2] — the instability the
      paper's QR route avoids. *)
end
