(* Multicore host kernels: the shared-memory counterpart the paper's
   companion work runs on parallel hosts ("Parallel software to offset
   the cost of higher precision", [26]).

   The same domain pool that backs the GPU simulator parallelizes the
   host-side matrix product, matrix-vector product and the update-heavy
   loops of the Householder QR; the bench compares the measured multicore
   host throughput with the simulated accelerator. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  let pool () = Dompool.Domain_pool.get_default ()

  let matvec (m : M.t) (v : V.t) : V.t =
    let rows = M.rows m and cols = M.cols m in
    let out = V.create rows in
    Dompool.Domain_pool.parallel_for (pool ()) 0 rows (fun i ->
        let s = ref K.zero in
        for j = 0 to cols - 1 do
          s := K.add !s (K.mul (M.get m i j) v.(j))
        done;
        out.(i) <- !s);
    out

  let matmul (a : M.t) (b : M.t) : M.t =
    if M.cols a <> M.rows b then invalid_arg "Par_blas.matmul";
    let rows = M.rows a and cols = M.cols b and inner = M.cols a in
    let out = M.create rows cols in
    Dompool.Domain_pool.parallel_for (pool ()) 0 rows (fun i ->
        for j = 0 to cols - 1 do
          let s = ref K.zero in
          for k = 0 to inner - 1 do
            s := K.add !s (K.mul (M.get a i k) (M.get b k j))
          done;
          M.set out i j !s
        done);
    out

  (* Householder QR with the two rank-update loops parallelized over
     columns of R and rows of Q — the hot 95% of the host factorization. *)
  let qr_factor (a0 : M.t) =
    let m = M.rows a0 and n = M.cols a0 in
    if m < n then invalid_arg "Par_blas.qr_factor: need rows >= cols";
    let r = M.copy a0 in
    let q = M.identity m in
    let p = pool () in
    for k = 0 to min n (m - 1) - 1 do
      let len = m - k in
      let v = Array.init len (fun i -> M.get r (k + i) k) in
      let sigma = V.norm v in
      if not (K.R.is_zero sigma) then begin
        let phase = K.unit_phase v.(0) in
        v.(0) <- K.add v.(0) (K.scale phase sigma);
        let beta = K.R.div (K.R.of_int 2) (V.norm2 v) in
        (* R[k:, j] -= beta v (v^H R[k:, j]), columns in parallel *)
        Dompool.Domain_pool.parallel_for p k n (fun j ->
            let s = ref K.zero in
            for i = 0 to len - 1 do
              s := K.add !s (K.mul (K.conj v.(i)) (M.get r (k + i) j))
            done;
            let s = K.scale !s beta in
            for i = 0 to len - 1 do
              M.set r (k + i) j (K.sub (M.get r (k + i) j) (K.mul v.(i) s))
            done);
        (* Q[i, k:] -= beta (Q[i, k:] v) v^H, rows in parallel *)
        Dompool.Domain_pool.parallel_for p 0 m (fun i ->
            let s = ref K.zero in
            for j = 0 to len - 1 do
              s := K.add !s (K.mul (M.get q i (k + j)) v.(j))
            done;
            let s = K.scale !s beta in
            for j = 0 to len - 1 do
              M.set q i (k + j)
                (K.sub (M.get q i (k + j)) (K.mul s (K.conj v.(j))))
            done)
      end;
      for i = k + 1 to m - 1 do
        M.set r i k K.zero
      done
    done;
    (q, r)
end
