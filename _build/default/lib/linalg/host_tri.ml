(* Host (single-threaded) triangular solvers: the reference the
   accelerated Algorithm 1 is validated against, and the classic
   column-sweep baseline of the ablation benchmarks. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  (* Classic back substitution for an upper triangular system U x = b;
     the last instruction per unknown is the division by the diagonal. *)
  let back_substitute (u : M.t) (b : V.t) : V.t =
    let n = M.rows u in
    if n <> M.cols u || n <> Array.length b then
      invalid_arg "back_substitute: dimension mismatch";
    let x = V.create n in
    for i = n - 1 downto 0 do
      let s = ref b.(i) in
      for j = i + 1 to n - 1 do
        s := K.sub !s (K.mul (M.get u i j) x.(j))
      done;
      x.(i) <- K.div !s (M.get u i i)
    done;
    x

  (* Forward substitution for a lower triangular system L x = b. *)
  let forward_substitute (l : M.t) (b : V.t) : V.t =
    let n = M.rows l in
    let x = V.create n in
    for i = 0 to n - 1 do
      let s = ref b.(i) in
      for j = 0 to i - 1 do
        s := K.sub !s (K.mul (M.get l i j) x.(j))
      done;
      x.(i) <- K.div !s (M.get l i i)
    done;
    x

  (* Inverse of an upper triangular matrix: column k of the inverse solves
     U v = e_k — the very computation each thread of stage 1 of
     Algorithm 1 performs. *)
  let upper_inverse (u : M.t) : M.t =
    let n = M.rows u in
    let inv = M.create n n in
    for k = 0 to n - 1 do
      let e = V.init n (fun i -> if i = k then K.one else K.zero) in
      let v = back_substitute u e in
      M.set_column inv k v
    done;
    inv

  (* Residual || U x - b ||_inf / (||U||_max ||x||_inf + ||b||_inf). *)
  let residual (u : M.t) (x : V.t) (b : V.t) =
    let r = V.sub (M.matvec u x) b in
    let scale =
      K.R.add
        (K.R.mul (M.max_abs u) (V.inf_norm x))
        (V.inf_norm b)
    in
    let scale = if K.R.compare scale K.R.one < 0 then K.R.one else scale in
    K.R.div (V.inf_norm r) scale
end
