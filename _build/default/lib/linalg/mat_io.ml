(* Plain-text persistence for multiple double vectors and matrices.

   The format keeps every bit: one scalar per line as space-separated C99
   hexadecimal floats, one per plane limb (real limbs, then imaginary
   limbs for complex scalars), with a one-line header.  Files written at
   one precision can be read back at another (limbs are truncated or
   zero-padded), which is how mixed-precision pipelines exchange data. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  let magic = "mdls-matrix 1"

  let write_scalar oc x =
    let planes = K.to_planes x in
    Array.iteri
      (fun i l ->
        if i > 0 then output_char oc ' ';
        Printf.fprintf oc "%h" l)
      planes;
    output_char oc '\n'

  (* Adapts a foreign limb count to ours: truncate or zero-pad each of
     the [parts] plane groups (1 real, or 2 for complex). *)
  let adapt ~parts (foreign : float array) =
    let fw = Array.length foreign / parts in
    let w = K.width / parts in
    let out = Array.make K.width 0.0 in
    for p = 0 to parts - 1 do
      for i = 0 to min w fw - 1 do
        out.((p * w) + i) <- foreign.((p * fw) + i)
      done
    done;
    K.of_planes out

  let read_scalar ~parts line =
    let fields =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
    in
    let foreign = Array.of_list (List.map float_of_string fields) in
    if Array.length foreign mod parts <> 0 then
      failwith "Mat_io: limb count not divisible by the component count";
    adapt ~parts foreign

  let write_mat oc (m : M.t) =
    Printf.fprintf oc "%s %d %d %d %b\n" magic (M.rows m) (M.cols m)
      K.width K.is_complex;
    for i = 0 to M.rows m - 1 do
      for j = 0 to M.cols m - 1 do
        write_scalar oc (M.get m i j)
      done
    done

  let read_mat ic : M.t =
    let header = input_line ic in
    let rows, cols, complex =
      try
        Scanf.sscanf header "mdls-matrix 1 %d %d %d %B"
          (fun r c _w cx -> (r, c, cx))
      with _ -> failwith "Mat_io: bad header"
    in
    if complex && not K.is_complex then
      failwith "Mat_io: file holds complex data, scalar is real";
    let parts = if complex then 2 else 1 in
    let read () =
      let x = read_scalar ~parts (input_line ic) in
      (* a real file read into a complex scalar: parts = 1 fills re *)
      x
    in
    M.init rows cols (fun _ _ -> read ())

  let write_vec oc (v : V.t) =
    write_mat oc (M.init (Array.length v) 1 (fun i _ -> v.(i)))

  let read_vec ic : V.t =
    let m = read_mat ic in
    if M.cols m <> 1 then failwith "Mat_io: not a vector";
    M.column m 0

  let save_mat path m =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_mat oc m)

  let load_mat path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_mat ic)

  let save_vec path v =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_vec oc v)

  let load_vec path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_vec ic)
end
