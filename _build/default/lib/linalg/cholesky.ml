(* Cholesky factorization and the normal-equations least squares solver.

   The paper solves least squares through Householder QR because it is
   numerically stable ([4, Theorem 3.5]); the classic cheap alternative —
   form A^H A and Cholesky-factor it — squares the condition number and
   loses twice the digits.  This module provides that baseline so the
   difference is measurable (see the ablation bench and the tests). *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Tri = Host_tri.Make (K)

  exception Not_positive_definite of int

  (* [factor a] returns lower triangular [l] with a = l l^H; [a] must be
     Hermitian positive definite. *)
  let factor (a : M.t) =
    let n = M.rows a in
    if n <> M.cols a then invalid_arg "Cholesky.factor: square required";
    let l = M.create n n in
    for j = 0 to n - 1 do
      (* diagonal: sqrt(a_jj - sum |l_jk|^2) *)
      let s = ref (K.re (M.get a j j)) in
      for k = 0 to j - 1 do
        s := K.R.sub !s (K.norm2 (M.get l j k))
      done;
      if K.R.sign !s <= 0 then raise (Not_positive_definite j);
      let d = K.R.sqrt !s in
      M.set l j j (K.of_real d);
      let inv_d = K.R.div K.R.one d in
      for i = j + 1 to n - 1 do
        let s = ref (M.get a i j) in
        for k = 0 to j - 1 do
          s := K.sub !s (K.mul (M.get l i k) (K.conj (M.get l j k)))
        done;
        M.set l i j (K.scale !s inv_d)
      done
    done;
    l

  (* Solve a x = b for Hermitian positive definite [a]. *)
  let solve (a : M.t) (b : V.t) : V.t =
    let l = factor a in
    let y = Tri.forward_substitute l b in
    (* upper triangular system L^H x = y *)
    Tri.back_substitute (M.adjoint l) y

  (* The normal-equations least squares solver: x = (A^H A)^-1 A^H b.
     Cheap, but the effective condition number is kappa(A)^2 — the
     baseline the Householder QR of the paper is stable against. *)
  let least_squares (a : M.t) (b : V.t) : V.t =
    let at = M.adjoint a in
    let gram = M.matmul at a in
    solve gram (M.matvec at b)
end
