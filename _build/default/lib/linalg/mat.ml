(* Dense row-major matrices over a scalar field, with the reference
   (host-side) BLAS-like operations the accelerated kernels are checked
   against. *)

module Make (K : Scalar.S) = struct
  module V = Vec.Make (K)

  type t = { rows : int; cols : int; a : K.t array }

  let create rows cols = { rows; cols; a = Array.make (rows * cols) K.zero }

  let init rows cols f =
    { rows; cols; a = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

  let rows m = m.rows
  let cols m = m.cols
  let get m i j = m.a.((i * m.cols) + j)
  let set m i j x = m.a.((i * m.cols) + j) <- x
  let copy m = { m with a = Array.copy m.a }

  let identity n =
    init n n (fun i j -> if i = j then K.one else K.zero)

  let random rng rows cols = init rows cols (fun _ _ -> K.random rng)

  let transpose m = init m.cols m.rows (fun i j -> get m j i)

  (* Hermitian transpose; plain transpose on real data. *)
  let adjoint m = init m.cols m.rows (fun i j -> K.conj (get m j i))

  let map f m = { m with a = Array.map f m.a }
  let add a b = { a with a = Array.map2 K.add a.a b.a }
  let sub a b = { a with a = Array.map2 K.sub a.a b.a }
  let scale m s = map (fun x -> K.scale x s) m

  let matvec m (v : V.t) : V.t =
    Array.init m.rows (fun i ->
        let s = ref K.zero in
        for j = 0 to m.cols - 1 do
          s := K.add !s (K.mul (get m i j) v.(j))
        done;
        !s)

  (* v^H M as a vector of length cols. *)
  let vecmat (v : V.t) m : V.t =
    Array.init m.cols (fun j ->
        let s = ref K.zero in
        for i = 0 to m.rows - 1 do
          s := K.add !s (K.mul (K.conj v.(i)) (get m i j))
        done;
        !s)

  let matmul a b =
    if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
    init a.rows b.cols (fun i j ->
        let s = ref K.zero in
        for k = 0 to a.cols - 1 do
          s := K.add !s (K.mul (get a i k) (get b k j))
        done;
        !s)

  let frobenius2 m =
    let s = ref K.R.zero in
    Array.iter (fun x -> s := K.R.add !s (K.norm2 x)) m.a;
    !s

  let frobenius m = K.R.sqrt (frobenius2 m)

  let max_abs m =
    let s = ref K.R.zero in
    Array.iter
      (fun x ->
        let a = K.abs x in
        if K.R.compare a !s > 0 then s := a)
      m.a;
    !s

  let equal a b =
    a.rows = b.rows && a.cols = b.cols && Array.for_all2 K.equal a.a b.a

  (* Column j as a vector, rows i0 <= i < i1. *)
  let column ?(i0 = 0) ?i1 m j =
    let i1 = match i1 with Some i -> i | None -> m.rows in
    Array.init (i1 - i0) (fun k -> get m (i0 + k) j)

  let set_column ?(i0 = 0) m j (v : V.t) =
    Array.iteri (fun k x -> set m (i0 + k) j x) v

  (* Submatrix copy: rows [r0, r1), cols [c0, c1). *)
  let sub_matrix m ~r0 ~r1 ~c0 ~c1 =
    init (r1 - r0) (c1 - c0) (fun i j -> get m (r0 + i) (c0 + j))

  let blit ~src ~dst ~r0 ~c0 =
    for i = 0 to src.rows - 1 do
      for j = 0 to src.cols - 1 do
        set dst (r0 + i) (c0 + j) (get src i j)
      done
    done

  (* || a - b ||_F / max(1, ||a||_F), the relative distance used by the
     accuracy checks throughout the tests. *)
  let rel_distance a b =
    let d = frobenius (sub a b) in
    let n = frobenius a in
    let n = if K.R.compare n K.R.one < 0 then K.R.one else n in
    K.R.div d n

  let pp fmt m =
    Format.fprintf fmt "@[<v>";
    for i = 0 to m.rows - 1 do
      Format.fprintf fmt "[";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf fmt ", ";
        K.pp fmt (get m i j)
      done;
      Format.fprintf fmt "]@,"
    done;
    Format.fprintf fmt "@]"
end
