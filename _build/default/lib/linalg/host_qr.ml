(* Host (single-threaded, unblocked) Householder QR: the numerically
   trusted baseline against which the blocked accelerated Algorithm 2 is
   validated, and the reference least squares solver. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Tri = Host_tri.Make (K)

  (* [householder x] returns (v, beta) such that
     (I - beta v v^H) x = -phase(x0) ||x|| e1, with v(0) = 1 implied by
     normalization left OUT here: v is kept unnormalized with
     beta = 2 / (v^H v), the convention of the paper's kernels. *)
  let householder (x : V.t) =
    let sigma = V.norm x in
    if K.R.is_zero sigma then (V.copy x, K.R.zero)
    else begin
      let phase = K.unit_phase x.(0) in
      let v = V.copy x in
      v.(0) <- K.add x.(0) (K.scale phase sigma);
      let vv = V.norm2 v in
      let beta =
        if K.R.is_zero vv then K.R.zero
        else K.R.div (K.R.of_int 2) vv
      in
      (v, beta)
    end

  (* QR of an [m x n] matrix with m >= n: returns (q, r) where [q] is
     [m x m] unitary and [r] is [m x n] upper triangular, a = q r. *)
  let factor (a0 : M.t) =
    let m = M.rows a0 and n = M.cols a0 in
    if m < n then invalid_arg "Host_qr.factor: need rows >= cols";
    let r = M.copy a0 in
    let q = M.identity m in
    for k = 0 to min n (m - 1) - 1 do
      let x = M.column ~i0:k r k in
      let v, beta = householder x in
      if not (K.R.is_zero beta) then begin
        (* R[k:, k:] -= beta v (v^H R[k:, k:]) *)
        for j = k to n - 1 do
          let s = ref K.zero in
          for i = k to m - 1 do
            s := K.add !s (K.mul (K.conj v.(i - k)) (M.get r i j))
          done;
          let s = K.scale !s beta in
          for i = k to m - 1 do
            M.set r i j (K.sub (M.get r i j) (K.mul v.(i - k) s))
          done
        done;
        (* Q[:, k:] -= beta (Q v) v^H *)
        for i = 0 to m - 1 do
          let s = ref K.zero in
          for j = k to m - 1 do
            s := K.add !s (K.mul (M.get q i j) v.(j - k))
          done;
          let s = K.scale !s beta in
          for j = k to m - 1 do
            M.set q i j (K.sub (M.get q i j) (K.mul s (K.conj v.(j - k))))
          done
        done
      end;
      (* Clean the annihilated entries below the diagonal. *)
      for i = k + 1 to m - 1 do
        M.set r i k K.zero
      done
    done;
    (q, r)

  (* Least squares solution of a x = b through QR: minimizes ||b - a x||_2. *)
  let least_squares (a : M.t) (b : V.t) : V.t =
    let n = M.cols a in
    let q, r = factor a in
    let qtb = M.matvec (M.adjoint q) b in
    let rn = M.sub_matrix r ~r0:0 ~r1:n ~c0:0 ~c1:n in
    let y = Array.sub qtb 0 n in
    Tri.back_substitute rn y

  (* ||q^H q - I||_F: departure from orthogonality. *)
  let orthogonality_defect (q : M.t) =
    let m = M.rows q in
    M.frobenius (M.sub (M.matmul (M.adjoint q) q) (M.identity m))

  (* || a - q r ||_F / ||a||_F *)
  let factorization_residual (a : M.t) (q : M.t) (r : M.t) =
    M.rel_distance a (M.matmul q r)
end
