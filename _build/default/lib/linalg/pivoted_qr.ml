(* Householder QR with column pivoting (the xGEQP3 shape): a rank
   revealing factorization A P = Q R with the diagonal of R decreasing in
   modulus, and the basic least squares solution for rank-deficient
   systems.

   Column pivoting costs only the bookkeeping of the running column
   norms and buys a reliable numerical rank — the safety net a solver
   needs before trusting a triangular solve on data this ill-conditioned
   territory (Vandermonde, Hilbert) produces. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Tri = Host_tri.Make (K)

  (* [factor a] returns (q, r, perm) with a.(:, perm) = q r, q unitary
     m-by-m, r upper triangular with |r_11| >= |r_22| >= ... *)
  let factor (a0 : M.t) =
    let m = M.rows a0 and n = M.cols a0 in
    let r = M.copy a0 in
    let q = M.identity m in
    let perm = Array.init n (fun j -> j) in
    (* Running squared norms of the trailing columns. *)
    let norms = Array.init n (fun j -> V.norm2 (M.column r j)) in
    let steps = min n (m - 1) in
    for k = 0 to steps - 1 do
      (* Pivot: the trailing column with the largest remaining norm. *)
      let best = ref k in
      for j = k + 1 to n - 1 do
        if K.R.compare norms.(j) norms.(!best) > 0 then best := j
      done;
      if !best <> k then begin
        for i = 0 to m - 1 do
          let t = M.get r i k in
          M.set r i k (M.get r i !best);
          M.set r i !best t
        done;
        let t = norms.(k) in
        norms.(k) <- norms.(!best);
        norms.(!best) <- t;
        let t = perm.(k) in
        perm.(k) <- perm.(!best);
        perm.(!best) <- t
      end;
      (* Householder reflector on column k. *)
      let len = m - k in
      let v = Array.init len (fun i -> M.get r (k + i) k) in
      let sigma = V.norm v in
      if not (K.R.is_zero sigma) then begin
        let phase = K.unit_phase v.(0) in
        v.(0) <- K.add v.(0) (K.scale phase sigma);
        let beta = K.R.div (K.R.of_int 2) (V.norm2 v) in
        for j = k to n - 1 do
          let s = ref K.zero in
          for i = 0 to len - 1 do
            s := K.add !s (K.mul (K.conj v.(i)) (M.get r (k + i) j))
          done;
          let s = K.scale !s beta in
          for i = 0 to len - 1 do
            M.set r (k + i) j (K.sub (M.get r (k + i) j) (K.mul v.(i) s))
          done
        done;
        for i = 0 to m - 1 do
          let s = ref K.zero in
          for j = 0 to len - 1 do
            s := K.add !s (K.mul (M.get q i (k + j)) v.(j))
          done;
          let s = K.scale !s beta in
          for j = 0 to len - 1 do
            M.set q i (k + j)
              (K.sub (M.get q i (k + j)) (K.mul s (K.conj v.(j))))
          done
        done
      end;
      for i = k + 1 to m - 1 do
        M.set r i k K.zero
      done;
      (* Downdate the trailing column norms by the eliminated row. *)
      for j = k + 1 to n - 1 do
        norms.(j) <- K.R.sub norms.(j) (K.norm2 (M.get r k j));
        if K.R.sign norms.(j) < 0 then norms.(j) <- K.R.zero
      done
    done;
    (q, r, perm)

  (* Numerical rank read off the pivoted diagonal. *)
  let rank_of_r ?tol (r : M.t) =
    let n = min (M.rows r) (M.cols r) in
    if n = 0 then 0
    else begin
      let d0 = K.abs (M.get r 0 0) in
      if K.R.is_zero d0 then 0
      else begin
        let tol =
          match tol with
          | Some t -> t
          | None -> float_of_int (M.rows r) *. K.R.eps
        in
        let cutoff = K.R.mul_float d0 tol in
        let rec go k =
          if k >= n then k
          else if K.R.compare (K.abs (M.get r k k)) cutoff > 0 then go (k + 1)
          else k
        in
        go 0
      end
    end

  (* Basic least squares solution of a x = b for possibly rank-deficient
     [a]: only the [rank] pivoted columns carry nonzeros.  Returns
     (x, rank). *)
  let least_squares ?tol (a : M.t) (b : V.t) =
    let n = M.cols a in
    let q, r, perm = factor a in
    let rk = rank_of_r ?tol r in
    let x = V.create n in
    if rk > 0 then begin
      let qtb = M.matvec (M.adjoint q) b in
      let r11 = M.sub_matrix r ~r0:0 ~r1:rk ~c0:0 ~c1:rk in
      let y = Tri.back_substitute r11 (Array.sub qtb 0 rk) in
      Array.iteri (fun i v -> x.(perm.(i)) <- v) y
    end;
    (x, rk)
end
