(** Multicore host kernels on the domain pool: the shared-memory
    baseline of the author's companion work ("Parallel software to
    offset the cost of higher precision"). *)

module Make (K : Scalar.S) : sig
  val matvec : Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t
  val matmul : Mat.Make(K).t -> Mat.Make(K).t -> Mat.Make(K).t

  val qr_factor : Mat.Make(K).t -> Mat.Make(K).t * Mat.Make(K).t
  (** Householder QR with the two rank-update loops parallelized over
      columns of R and rows of Q. *)
end
