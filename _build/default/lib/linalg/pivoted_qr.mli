(** Householder QR with column pivoting (the xGEQP3 shape): a rank
    revealing factorization [A P = Q R] with the diagonal of R decreasing
    in modulus, and the basic least squares solution for rank-deficient
    systems. *)

module Make (K : Scalar.S) : sig
  val factor : Mat.Make(K).t -> Mat.Make(K).t * Mat.Make(K).t * int array
  (** [factor a] is [(q, r, perm)] with [a.(:, perm) = q r], [q] unitary
      and [|r_11| >= |r_22| >= ...]. *)

  val rank_of_r : ?tol:float -> Mat.Make(K).t -> int
  (** Numerical rank read off the pivoted diagonal
      (default tolerance: [rows * eps] relative to [|r_11|]). *)

  val least_squares :
    ?tol:float -> Mat.Make(K).t -> Vec.Make(K).t -> Vec.Make(K).t * int
  (** Basic least squares solution for possibly rank-deficient systems:
      only the pivoted [rank] columns carry nonzeros.  Returns the
      solution and the detected rank. *)
end
