lib/linalg/cholesky.ml: Host_tri Mat Scalar Vec
