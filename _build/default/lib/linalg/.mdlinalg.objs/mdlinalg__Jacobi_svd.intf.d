lib/linalg/jacobi_svd.mli: Mat Scalar
