lib/linalg/cond.ml: Array Float Host_tri Lu Mat Scalar Vec
