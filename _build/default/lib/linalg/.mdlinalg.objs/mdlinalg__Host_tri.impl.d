lib/linalg/host_tri.ml: Array Mat Scalar Vec
