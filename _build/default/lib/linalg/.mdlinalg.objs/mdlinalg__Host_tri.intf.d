lib/linalg/host_tri.mli: Mat Scalar Vec
