lib/linalg/staggered.ml: Array Mat Scalar Vec
