lib/linalg/randmat.ml: Lu Mat Scalar Vec
