lib/linalg/pivoted_qr.ml: Array Host_tri Mat Scalar Vec
