lib/linalg/staggered.mli: Mat Scalar Vec
