lib/linalg/cholesky.mli: Mat Scalar Vec
