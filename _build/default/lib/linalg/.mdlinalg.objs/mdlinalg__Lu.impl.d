lib/linalg/lu.ml: Array Host_tri Mat Scalar Vec
