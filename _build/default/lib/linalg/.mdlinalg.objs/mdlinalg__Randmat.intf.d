lib/linalg/randmat.mli: Dompool Mat Scalar Vec
