lib/linalg/mat_io.ml: Array Fun List Mat Printf Scalar Scanf String Vec
