lib/linalg/host_qr.ml: Array Host_tri Mat Scalar Vec
