lib/linalg/par_blas.ml: Array Dompool Mat Scalar Vec
