lib/linalg/vec.mli: Dompool Format Scalar
