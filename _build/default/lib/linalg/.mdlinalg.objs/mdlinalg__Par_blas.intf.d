lib/linalg/par_blas.mli: Mat Scalar Vec
