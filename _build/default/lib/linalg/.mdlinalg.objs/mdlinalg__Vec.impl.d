lib/linalg/vec.ml: Array Format Scalar
