lib/linalg/mat_io.mli: Mat Scalar Vec
