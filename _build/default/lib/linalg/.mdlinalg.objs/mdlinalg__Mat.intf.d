lib/linalg/mat.mli: Dompool Format Scalar Vec
