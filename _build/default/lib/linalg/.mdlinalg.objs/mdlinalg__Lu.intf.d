lib/linalg/lu.mli: Mat Scalar Vec
