lib/linalg/mat.ml: Array Format Scalar Vec
