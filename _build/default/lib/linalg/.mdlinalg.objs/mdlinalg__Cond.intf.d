lib/linalg/cond.mli: Lu Mat Scalar
