lib/linalg/jacobi_svd.ml: Array Float Mat Scalar Vec
