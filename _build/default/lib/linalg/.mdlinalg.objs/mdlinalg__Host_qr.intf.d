lib/linalg/host_qr.mli: Mat Scalar Vec
