lib/linalg/pivoted_qr.mli: Mat Scalar Vec
