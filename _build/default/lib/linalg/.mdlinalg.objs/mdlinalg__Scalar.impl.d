lib/linalg/scalar.ml: Array Dompool Double_double Float_double Format Md_complex Md_sig Multidouble Octo_double Precision Quad_double
