(** Singular value decomposition by one-sided Jacobi (Hestenes)
    rotations, real or complex, at any multiple double precision.

    One-sided Jacobi is the natural SVD for extended precision: it works
    column by column with inner products and plane rotations only,
    converges quadratically, and computes small singular values to high
    relative accuracy — what the digits-at-risk analysis of
    ill-conditioned systems needs. *)

module Make (K : Scalar.S) : sig
  val svd :
    ?max_sweeps:int ->
    Mat.Make(K).t ->
    Mat.Make(K).t * K.R.t array * Mat.Make(K).t
  (** [svd a] is [(u, sigma, v)] with [a = u diag(sigma) v^H]: [u] is
      m-by-n with orthonormal columns (m >= n required), [sigma]
      decreasing and nonnegative, [v] n-by-n unitary. *)

  val singular_values : Mat.Make(K).t -> K.R.t array

  val cond2 : Mat.Make(K).t -> K.R.t
  (** [sigma_max / sigma_min]; infinite for singular input. *)

  val rank : ?tol:float -> Mat.Make(K).t -> int
  (** Singular values above [tol * sigma_max] (default [rows * eps]). *)
end
