(* Singular value decomposition by one-sided Jacobi (Hestenes) rotations,
   real or complex, at any multiple double precision.

   One-sided Jacobi is the natural SVD for extended precision: it works
   column by column with inner products and plane rotations only (no
   bidiagonalization), converges quadratically, and computes the small
   singular values to high relative accuracy — which is exactly what the
   digits-at-risk analysis of ill-conditioned systems needs. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  (* [svd a] returns (u, sigma, v) with a = u diag(sigma) v^H, where [u]
     is m-by-n with orthonormal columns (for m >= n), [sigma] holds the
     singular values in decreasing order and [v] is n-by-n unitary. *)
  let svd ?(max_sweeps = 60) (a0 : M.t) =
    let m = M.rows a0 and n = M.cols a0 in
    if m < n then invalid_arg "Jacobi_svd.svd: need rows >= cols";
    let a = M.copy a0 in
    let v = M.identity n in
    let tol = 8.0 *. K.R.eps in
    (* One Jacobi sweep over all column pairs; returns the largest
       normalized off-diagonal inner product seen. *)
    let sweep () =
      let worst = ref 0.0 in
      for p = 0 to n - 2 do
        for q = p + 1 to n - 1 do
          (* Gram entries of the (p, q) column pair. *)
          let alpha = ref K.R.zero
          and beta = ref K.R.zero
          and g = ref K.zero in
          for i = 0 to m - 1 do
            let ap = M.get a i p and aq = M.get a i q in
            alpha := K.R.add !alpha (K.norm2 ap);
            beta := K.R.add !beta (K.norm2 aq);
            g := K.add !g (K.mul (K.conj ap) aq)
          done;
          let gm = K.abs !g in
          let scale = K.R.sqrt (K.R.mul !alpha !beta) in
          let rel =
            if K.R.is_zero scale then 0.0
            else K.R.to_float (K.R.div gm scale)
          in
          if rel > !worst then worst := rel;
          if rel > tol then begin
            (* Phase: make the inner product real and nonnegative. *)
            let u = K.unit_phase !g in
            let cu = K.conj u in
            (* Real rotation diagonalizing [[alpha, |g|], [|g|, beta]]. *)
            let two_g = K.R.mul_float gm 2.0 in
            let tau = K.R.div (K.R.sub !beta !alpha) two_g in
            let t =
              let abs_tau = K.R.abs tau in
              let denom =
                K.R.add abs_tau
                  (K.R.sqrt (K.R.add K.R.one (K.R.mul tau tau)))
              in
              let t = K.R.div K.R.one denom in
              if K.R.sign tau < 0 then K.R.neg t else t
            in
            let c =
              K.R.div K.R.one (K.R.sqrt (K.R.add K.R.one (K.R.mul t t)))
            in
            let s = K.R.mul c t in
            let rotate mat rows =
              for i = 0 to rows - 1 do
                let x = M.get mat i p in
                let y = K.mul cu (M.get mat i q) in
                M.set mat i p (K.sub (K.scale x c) (K.scale y s));
                M.set mat i q (K.add (K.scale x s) (K.scale y c))
              done
            in
            rotate a m;
            rotate v n
          end
        done
      done;
      !worst
    in
    let sweeps = ref 0 in
    let worst = ref 1.0 in
    while !sweeps < max_sweeps && !worst > tol do
      worst := sweep ();
      incr sweeps
    done;
    (* Column norms are the singular values; normalize into U. *)
    let sigma = Array.init n (fun j -> V.norm (M.column a j)) in
    let order = Array.init n (fun j -> j) in
    Array.sort (fun i j -> K.R.compare sigma.(j) sigma.(i)) order;
    let u = M.create m n in
    let vs = M.create n n in
    let sigma_sorted = Array.map (fun j -> sigma.(j)) order in
    Array.iteri
      (fun jnew jold ->
        let s = sigma.(jold) in
        for i = 0 to m - 1 do
          let x = M.get a i jold in
          M.set u i jnew
            (if K.R.is_zero s then K.zero
             else K.scale x (K.R.div K.R.one s))
        done;
        for i = 0 to n - 1 do
          M.set vs i jnew (M.get v i jold)
        done)
      order;
    (u, sigma_sorted, vs)

  let singular_values a =
    let _, s, _ = svd a in
    s

  (* The two-norm condition number sigma_max / sigma_min. *)
  let cond2 a =
    let s = singular_values a in
    let smin = s.(Array.length s - 1) in
    if K.R.is_zero smin then K.R.of_float Float.infinity
    else K.R.div s.(0) smin

  (* Numerical rank: singular values above [tol] * sigma_max
     (default: m * eps). *)
  let rank ?tol a =
    let s = singular_values a in
    if K.R.is_zero s.(0) then 0
    else begin
      let tol =
        match tol with
        | Some t -> t
        | None -> float_of_int (M.rows a) *. K.R.eps
      in
      let cutoff = K.R.mul_float s.(0) tol in
      Array.fold_left
        (fun acc x -> if K.R.compare x cutoff > 0 then acc + 1 else acc)
        0 s
    end
end
