(** Dense vectors over a scalar field (real or complex multiple
    doubles).  The representation is a plain array of scalars, exposed
    so kernels can index it directly. *)

module Make (K : Scalar.S) : sig
  type t = K.t array

  val create : int -> t
  (** Zero vector. *)

  val init : int -> (int -> K.t) -> t
  val length : t -> int
  val copy : t -> t
  val of_array : K.t array -> t
  val random : Dompool.Prng.t -> int -> t
  val map : (K.t -> K.t) -> t -> t
  val neg : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : t -> K.R.t -> t

  val axpy : a:K.t -> t -> t -> unit
  (** [axpy ~a x y] updates [y <- y + a x] in place. *)

  val dot : t -> t -> K.t
  (** Inner product [conj a . b] (Hermitian on complex data). *)

  val norm2 : t -> K.R.t
  (** Squared Euclidean norm, a real number. *)

  val norm : t -> K.R.t

  val inf_norm : t -> K.R.t
  (** Largest modulus of an entry. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
