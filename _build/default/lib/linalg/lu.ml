(* LU factorization with partial pivoting.

   Its role in the paper (§4.1) is indirect but important: condition
   numbers of random triangular matrices grow exponentially with the
   dimension [28], so the standalone back substitution tests use the
   upper triangular factor of an LU factorization of a random dense
   matrix, whose condition stays moderate. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Tri = Host_tri.Make (K)

  exception Singular of int

  (* Returns (lu, perm) with L unit-lower and U upper packed in [lu], and
     [perm] the row permutation: P a = L U. *)
  let factor (a0 : M.t) =
    let n = M.rows a0 in
    if n <> M.cols a0 then invalid_arg "Lu.factor: square matrix required";
    let lu = M.copy a0 in
    let perm = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      (* Partial pivoting on the modulus. *)
      let best = ref k and best_mag = ref (K.abs (M.get lu k k)) in
      for i = k + 1 to n - 1 do
        let m = K.abs (M.get lu i k) in
        if K.R.compare m !best_mag > 0 then begin
          best := i;
          best_mag := m
        end
      done;
      if K.R.is_zero !best_mag then raise (Singular k);
      if !best <> k then begin
        for j = 0 to n - 1 do
          let t = M.get lu k j in
          M.set lu k j (M.get lu !best j);
          M.set lu !best j t
        done;
        let t = perm.(k) in
        perm.(k) <- perm.(!best);
        perm.(!best) <- t
      end;
      let pivot = M.get lu k k in
      for i = k + 1 to n - 1 do
        let m = K.div (M.get lu i k) pivot in
        M.set lu i k m;
        for j = k + 1 to n - 1 do
          M.set lu i j (K.sub (M.get lu i j) (K.mul m (M.get lu k j)))
        done
      done
    done;
    (lu, perm)

  let lower_of lu =
    let n = M.rows lu in
    M.init n n (fun i j ->
        if i = j then K.one else if i > j then M.get lu i j else K.zero)

  let upper_of lu =
    let n = M.rows lu in
    M.init n n (fun i j -> if i <= j then M.get lu i j else K.zero)

  (* Solve a x = b via PA = LU. *)
  let solve (a : M.t) (b : V.t) : V.t =
    let lu, perm = factor a in
    let n = M.rows a in
    let pb = V.init n (fun i -> b.(perm.(i))) in
    let y = Tri.forward_substitute (lower_of lu) pb in
    Tri.back_substitute (upper_of lu) y
end
