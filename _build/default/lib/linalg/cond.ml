(* Condition numbers — the quantity that decides how many limbs a
   computation needs.  Condition numbers of random triangular matrices
   grow exponentially with the dimension (Viswanath-Trefethen, [28] in
   the paper), which is why §4.1 generates its test systems through an LU
   factorization; these helpers make that effect measurable. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Lu = Lu.Make (K)
  module Tri = Host_tri.Make (K)

  (* One-norm: the maximum absolute column sum. *)
  let one_norm (m : M.t) =
    let best = ref K.R.zero in
    for j = 0 to M.cols m - 1 do
      let s = ref K.R.zero in
      for i = 0 to M.rows m - 1 do
        s := K.R.add !s (K.abs (M.get m i j))
      done;
      if K.R.compare !s !best > 0 then best := !s
    done;
    !best

  (* Infinity-norm: the maximum absolute row sum. *)
  let inf_norm (m : M.t) =
    let best = ref K.R.zero in
    for i = 0 to M.rows m - 1 do
      let s = ref K.R.zero in
      for j = 0 to M.cols m - 1 do
        s := K.R.add !s (K.abs (M.get m i j))
      done;
      if K.R.compare !s !best > 0 then best := !s
    done;
    !best

  (* Explicit inverse through one LU factorization and n solves. *)
  let inverse (a : M.t) : M.t =
    let n = M.rows a in
    let lu, perm = Lu.factor a in
    let lower = Lu.lower_of lu and upper = Lu.upper_of lu in
    let inv = M.create n n in
    for k = 0 to n - 1 do
      let e = V.init n (fun i -> if perm.(i) = k then K.one else K.zero) in
      let col = Tri.back_substitute upper (Tri.forward_substitute lower e) in
      M.set_column inv k col
    done;
    inv

  (* kappa_1(A) = ||A||_1 ||A^-1||_1; raises [Lu.Singular] when A is. *)
  let cond1 (a : M.t) = K.R.mul (one_norm a) (one_norm (inverse a))

  (* kappa_inf. *)
  let cond_inf (a : M.t) = K.R.mul (inf_norm a) (inf_norm (inverse a))

  (* Digits of accuracy a residual-exact solve can lose: log10 kappa. *)
  let digits_at_risk (a : M.t) =
    Float.log10 (Float.max 1.0 (K.R.to_float (cond1 a)))
end
