(** Dense row-major matrices over a scalar field, with the reference
    (host-side) BLAS-like operations the accelerated kernels are checked
    against.  The representation is exposed so kernels can address
    entries directly; prefer {!get}/{!set} elsewhere. *)

module Make (K : Scalar.S) : sig
  module V : module type of Vec.Make (K)

  type t = { rows : int; cols : int; a : K.t array }

  val create : int -> int -> t
  (** Zero matrix of the given [rows] and [cols]. *)

  val init : int -> int -> (int -> int -> K.t) -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> K.t
  val set : t -> int -> int -> K.t -> unit
  val copy : t -> t
  val identity : int -> t
  val random : Dompool.Prng.t -> int -> int -> t
  val transpose : t -> t

  val adjoint : t -> t
  (** Hermitian transpose; the plain transpose on real data. *)

  val map : (K.t -> K.t) -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : t -> K.R.t -> t
  val matvec : t -> V.t -> V.t

  val vecmat : V.t -> t -> V.t
  (** [vecmat v m] is [v^H m]. *)

  val matmul : t -> t -> t
  (** Raises [Invalid_argument] on dimension mismatch. *)

  val frobenius2 : t -> K.R.t
  val frobenius : t -> K.R.t

  val max_abs : t -> K.R.t
  (** Largest modulus of an entry. *)

  val equal : t -> t -> bool

  val column : ?i0:int -> ?i1:int -> t -> int -> V.t
  (** Column [j] restricted to rows [i0 <= i < i1] (defaults: all). *)

  val set_column : ?i0:int -> t -> int -> V.t -> unit

  val sub_matrix : t -> r0:int -> r1:int -> c0:int -> c1:int -> t
  (** Copy of rows [r0, r1) and columns [c0, c1). *)

  val blit : src:t -> dst:t -> r0:int -> c0:int -> unit

  val rel_distance : t -> t -> K.R.t
  (** [||a - b||_F / max(1, ||a||_F)], the relative distance the accuracy
      checks use throughout. *)

  val pp : Format.formatter -> t -> unit
end
