(** Full-precision plain-text persistence for vectors and matrices: one
    scalar per line as C99 hexadecimal floats, one per plane limb.
    Files written at one precision read back at another (limbs truncate
    or zero-pad), and real files read into complex scalars. *)

module Make (K : Scalar.S) : sig
  val write_mat : out_channel -> Mat.Make(K).t -> unit

  val read_mat : in_channel -> Mat.Make(K).t
  (** Raises [Failure] on malformed input or when complex data is read
      into a real scalar. *)

  val write_vec : out_channel -> Vec.Make(K).t -> unit
  val read_vec : in_channel -> Vec.Make(K).t
  val save_mat : string -> Mat.Make(K).t -> unit
  val load_mat : string -> Mat.Make(K).t
  val save_vec : string -> Vec.Make(K).t -> unit
  val load_vec : string -> Vec.Make(K).t
end
