(** The classic back substitution on the device, without the tile
    inversion idea of Algorithm 1 — the ablation baseline quantifying
    what the paper's design buys (2·dim launches, a dependency chain of
    length dim, sub-warp kernels). *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type result = {
    x : Mdlinalg.Vec.Make(K).t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    launches : int;
  }

  val run :
    ?execute:bool ->
    ?threads:int ->
    device:Gpusim.Device.t ->
    u:Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    unit ->
    result

  val run_plan :
    ?threads:int -> device:Gpusim.Device.t -> dim:int -> unit -> result
end
