(* Mixed-precision iterative refinement on top of the accelerated solver.

   The classic consumer of multiple double arithmetic: factor the matrix
   once in the *working* precision on the (simulated) device, then refine
   the solution with residuals computed in a *higher* precision, gaining
   roughly the working precision's digits per sweep as long as the
   conditioning permits.  This is the pattern the paper's motivation
   points at (guaranteed accuracy along a homotopy path, [22]): most of
   the flops stay in the cheap precision, the expensive precision only
   touches vectors.

   Promotion and demotion act on the limb planes, so real and complex
   scalars both work (the two scalars must agree on realness). *)

open Mdlinalg

module Make_scalar (KL : Scalar.S) (KH : Scalar.S) = struct
  module ML = Mat.Make (KL)
  module VL = Vec.Make (KL)
  module MH = Mat.Make (KH)
  module VH = Vec.Make (KH)
  module Qr = Blocked_qr.Make (KL)
  module Tri = Host_tri.Make (KL)

  let () =
    if KL.is_complex <> KH.is_complex then
      invalid_arg "Refine: mixed real/complex precision pair"

  let parts = if KL.is_complex then 2 else 1

  (* Per-component limb copy between the two widths: zero-padding embeds
     the low precision exactly, truncation rounds the high one. *)
  let convert ~from_width ~to_width planes =
    let fw = from_width / parts and w = to_width / parts in
    let out = Array.make to_width 0.0 in
    for p = 0 to parts - 1 do
      for i = 0 to min w fw - 1 do
        out.((p * w) + i) <- planes.((p * fw) + i)
      done
    done;
    out

  let promote (x : KL.t) : KH.t =
    KH.of_planes
      (convert ~from_width:KL.width ~to_width:KH.width (KL.to_planes x))

  let demote (x : KH.t) : KL.t =
    KL.of_planes
      (convert ~from_width:KH.width ~to_width:KL.width (KH.to_planes x))

  let demote_mat (m : MH.t) : ML.t =
    ML.init (MH.rows m) (MH.cols m) (fun i j -> demote (MH.get m i j))

  type result = {
    x : VH.t;
    iterations : int;
    residual_history : float list; (* infinity norms, most recent last *)
    qr_kernel_ms : float;
  }

  (* [solve ~device ~a ~b ~tile ()] solves the square system a x = b given
     in the high precision: one blocked QR factorization in the working
     precision on the device, then refinement sweeps until the residual
     stops improving or [max_iterations] is reached. *)
  let solve ?(device = Gpusim.Device.v100) ?(max_iterations = 20) ~(a : MH.t)
      ~(b : VH.t) ~tile () =
    let n = MH.rows a in
    if n <> MH.cols a then invalid_arg "Refine.solve: square matrix required";
    let a_lo = demote_mat a in
    let qr = Qr.run ~device ~a:a_lo ~tile () in
    let q_adj = ML.adjoint qr.Qr.q in
    let rn = ML.sub_matrix qr.Qr.r ~r0:0 ~r1:n ~c0:0 ~c1:n in
    (* One working-precision solve against the cached factorization. *)
    let solve_lo (rhs : VL.t) : VL.t =
      Tri.back_substitute rn (ML.matvec q_adj rhs)
    in
    let x = ref (VH.create n) in
    let residual_norm = ref Float.infinity in
    let history = ref [] in
    let iterations = ref 0 in
    (* Converged once the residual reaches the high-precision noise floor
       of the data. *)
    let floor_ =
      4.0 *. KH.R.eps *. float_of_int n
      *. KH.R.to_float (VH.inf_norm b)
    in
    (try
       for _ = 1 to max_iterations do
         (* r = b - a x, in high precision. *)
         let r = VH.sub b (MH.matvec a !x) in
         let rn_inf = KH.R.to_float (VH.inf_norm r) in
         history := rn_inf :: !history;
         if rn_inf <= floor_ || rn_inf >= !residual_norm *. 0.5 then
           raise Exit;
         residual_norm := rn_inf;
         incr iterations;
         let dx = solve_lo (Array.map demote r) in
         x := VH.add !x (Array.map promote dx)
       done
     with Exit -> ());
    {
      x = !x;
      iterations = !iterations;
      residual_history = List.rev !history;
      qr_kernel_ms = qr.Qr.kernel_ms;
    }
end

(* The original real-precision entry point, now a thin instantiation. *)
module Make (Lo : Multidouble.Md_sig.S) (Hi : Multidouble.Md_sig.S) = struct
  module KL = Scalar.Real (Lo)
  module KH = Scalar.Real (Hi)
  include Make_scalar (KL) (KH)
end
