(* The classic back substitution, put on the device without the tile
   inversion idea of Algorithm 1 — the ablation baseline for the paper's
   design choice.

   Per unknown, one tiny kernel computes x_i = b_i / u_ii (a single
   division: the "last instruction is the division by the element on the
   diagonal" that Algorithm 1 removes) and one kernel updates the
   remaining right-hand side.  The dependency chain of length [dim] and
   the sub-warp kernels leave the device idle: comparing against
   [Tiled_back_sub] quantifies exactly what the diagonal-tile inversion
   buys. *)

open Gpusim
open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  let scalar_bytes = float_of_int (8 * K.width)

  let ops ?(adds = 0.0) ?(muls = 0.0) ?(divs = 0.0) () =
    let o = Counter.make ~adds ~muls ~divs () in
    if K.is_complex then Counter.complexify o else o

  type result = {
    x : V.t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    launches : int;
  }

  let solve_gen (sim : Sim.t) ~dim ~threads ~data =
    if data = None then sim.Sim.execute <- false;
    let u, bd =
      match data with
      | Some (u, b) when sim.Sim.execute -> (u, V.copy b)
      | _ -> (M.create 0 0, V.create 0)
    in
    let x = V.create (if sim.Sim.execute then dim else 0) in
    Sim.transfer sim
      ((float_of_int (dim * (dim + 1) / 2) +. float_of_int dim)
      *. scalar_bytes);
    for i = dim - 1 downto 0 do
      (* One-thread kernel: the division by the diagonal. *)
      let div_cost =
        Cost.launch ~blocks:1 ~threads:1
          ~cold_bytes:(3.0 *. scalar_bytes)
          (ops ~divs:1.0 ())
      in
      Sim.launch sim ~stage:"divide" ~cost:div_cost (fun _ ->
          x.(i) <- K.div bd.(i) (M.get u i i));
      (* Update b_0..b_{i-1} with column i. *)
      if i > 0 then begin
        let f = float_of_int in
        let upd_cost =
          Cost.launch
            ~blocks:((i + threads - 1) / threads)
            ~threads
            ~cold_bytes:(3.0 *. f i *. scalar_bytes)
            ~thread_bytes:(3.0 *. f i *. scalar_bytes)
            ~working_set:(f i *. f dim *. 8.0)
            ~strided:true
            (ops ~adds:(f i) ~muls:(f i) ())
        in
        Sim.launch sim ~stage:"update rhs" ~cost:upd_cost (fun blk ->
            let lo = blk * threads in
            let hi = min i (lo + threads) in
            for r = lo to hi - 1 do
              bd.(r) <- K.sub bd.(r) (K.mul (M.get u r i) x.(i))
            done)
      end
    done;
    Sim.transfer sim (float_of_int dim *. scalar_bytes);
    x

  let run ?(execute = true) ?(threads = 128) ~device ~u ~b () =
    let dim = M.rows u in
    let sim = Sim.create ~execute ~device ~prec:K.prec () in
    let x = solve_gen sim ~dim ~threads ~data:(Some (u, b)) in
    {
      x;
      kernel_ms = Sim.kernel_ms sim;
      wall_ms = Sim.wall_ms sim;
      kernel_gflops = Sim.kernel_gflops sim;
      launches = Sim.launches sim;
    }

  let run_plan ?(threads = 128) ~device ~dim () =
    let sim = Sim.create ~execute:false ~device ~prec:K.prec () in
    let x = solve_gen sim ~dim ~threads ~data:None in
    ignore x;
    {
      x = V.create 0;
      kernel_ms = Sim.kernel_ms sim;
      wall_ms = Sim.wall_ms sim;
      kernel_gflops = Sim.kernel_gflops sim;
      launches = Sim.launches sim;
    }
end
