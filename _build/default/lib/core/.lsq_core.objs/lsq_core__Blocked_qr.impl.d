lib/core/blocked_qr.ml: Array Cost Counter Gpusim List Mat Mdlinalg Profile Scalar Sim Stage Vec
