lib/core/least_squares.mli: Gpusim Mdlinalg
