lib/core/stage.mli:
