lib/core/naive_back_sub.mli: Gpusim Mdlinalg
