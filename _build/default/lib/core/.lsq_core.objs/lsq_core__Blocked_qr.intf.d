lib/core/blocked_qr.mli: Gpusim Mdlinalg
