lib/core/tiled_back_sub.mli: Gpusim Mdlinalg
