lib/core/refine.ml: Array Blocked_qr Float Gpusim Host_tri List Mat Mdlinalg Multidouble Scalar Vec
