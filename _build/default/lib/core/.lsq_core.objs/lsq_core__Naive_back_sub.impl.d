lib/core/naive_back_sub.ml: Array Cost Counter Gpusim Mat Mdlinalg Scalar Sim Vec
