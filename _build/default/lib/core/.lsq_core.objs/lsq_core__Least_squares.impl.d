lib/core/least_squares.ml: Array Blocked_qr Cost Counter Gpusim Mat Mdlinalg Profile Scalar Sim Tiled_back_sub Vec
