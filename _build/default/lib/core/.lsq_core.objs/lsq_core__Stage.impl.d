lib/core/stage.ml:
