lib/core/tiled_back_sub.ml: Array Cost Counter Gpusim List Mat Mdlinalg Profile Scalar Sim Stage Vec
