(* Telemetry smoke: runs the "fleet" sweep with the continuous-telemetry
   exporter at a fast interval and validates the whole plane end to end —
   the JSON-lines stream parses and carries ≥2 snapshots with per-device
   utilization/queue-depth gauges and latency quantiles, counters are
   monotone across snapshots, the Prometheus text exposition parses
   (known types, declared-before-use, cumulative buckets), the drift
   detector stays quiet on the default cost model and flags an
   artificially miscalibrated one, and the export overhead against a
   telemetry-off baseline lands in BENCH_obs.json.  Part of the
   @bench-smoke regression gate; exits 1 on any mismatch. *)

module Json = Harness.Json
module Obs_io = Harness.Obs_io
module S = Sched.Scheduler
module M = Obs.Metrics

let pf = Printf.printf
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let run_sweep () =
  let jobs = Sched.Sweep.jobs "fleet" in
  let t0 = Unix.gettimeofday () in
  let outcomes = S.run S.Config.default jobs in
  let wall_s = Unix.gettimeofday () -. t0 in
  if List.length outcomes <> List.length jobs then
    fail "telemetry-smoke: %d outcomes for %d jobs" (List.length outcomes)
      (List.length jobs);
  wall_s

(* Best-of-n wall clock: the overhead ratio compares identical minimum
   workloads, not scheduler noise. *)
let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    best := Float.min !best (f ())
  done;
  !best

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* ---- Prometheus text validation ---- *)

let prom_validate text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let types = Hashtbl.create 32 in
  let series = ref 0 in
  (* last cumulative bucket value per (family, instance) series *)
  let buckets : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun line ->
      if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ] ->
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail "telemetry-smoke: unknown prometheus type '%s'" kind;
          if String.length name < 5 || String.sub name 0 5 <> "mdls_" then
            fail "telemetry-smoke: family '%s' missing mdls_ prefix" name;
          if Hashtbl.mem types name then
            fail "telemetry-smoke: duplicate TYPE header for %s" name;
          Hashtbl.replace types name kind
        | _ -> fail "telemetry-smoke: malformed TYPE line '%s'" line
      end
      else begin
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some b, Some sp -> min b sp
          | Some b, None -> b
          | None, Some sp -> sp
          | None, None ->
            fail "telemetry-smoke: malformed sample line '%s'" line
        in
        let name = String.sub line 0 name_end in
        let value =
          match String.rindex_opt line ' ' with
          | Some i -> String.sub line (i + 1) (String.length line - i - 1)
          | None -> fail "telemetry-smoke: no value in '%s'" line
        in
        if float_of_string_opt value = None then
          fail "telemetry-smoke: non-numeric value '%s' in '%s'" value line;
        (* A sample must belong to a declared family: the bare name, or
           name minus a histogram/counter suffix. *)
        let family =
          let strip suffix =
            let n = String.length name and k = String.length suffix in
            if n > k && String.sub name (n - k) k = suffix then
              Some (String.sub name 0 (n - k))
            else None
          in
          let candidates =
            name
            :: List.filter_map strip [ "_bucket"; "_sum"; "_count" ]
          in
          match List.find_opt (Hashtbl.mem types) candidates with
          | Some f -> f
          | None ->
            fail "telemetry-smoke: sample '%s' has no TYPE declaration" name
        in
        (match Hashtbl.find types family with
        | "counter" ->
          let n = String.length family in
          if String.length family < 6 || String.sub family (n - 6) 6 <> "_total"
          then fail "telemetry-smoke: counter family '%s' missing _total" family;
          if
            match int_of_string_opt value with Some v -> v < 0 | None -> true
          then fail "telemetry-smoke: counter %s has value %s" family value
        | "histogram" when name = family ^ "_bucket" ->
          (* Cumulative within one labeled series. *)
          let key = String.sub line 0 (String.length line - String.length value - 1) in
          let key =
            match String.index_opt key ',' with
            | Some _ ->
              (* strip the trailing le=... label to group the series *)
              String.sub key 0 (String.rindex key ',')
            | None -> family
          in
          let v =
            match int_of_string_opt value with
            | Some v -> v
            | None -> fail "telemetry-smoke: bucket value '%s'" value
          in
          let prev = Option.value ~default:0 (Hashtbl.find_opt buckets key) in
          if v < prev then
            fail "telemetry-smoke: bucket series %s not cumulative (%d < %d)"
              key v prev;
          Hashtbl.replace buckets key v
        | _ -> ());
        incr series
      end)
    lines;
  (Hashtbl.length types, !series)

let smoke () =
  pf "\n%s\nTelemetry smoke: fleet sweep under the continuous exporter\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let jsonl = Filename.temp_file "telemetry" ".jsonl" in
  let prom = Filename.temp_file "telemetry" ".prom" in

  (* Baseline: telemetry off. *)
  M.reset (M.default ());
  Obs.Health.reset ();
  let wall_off_s = best_of 2 run_sweep in

  (* Telemetry on: buffered debug-level logging riding the stream, the
     exporter ticking fast on its own domain. *)
  M.reset (M.default ());
  Obs.Health.reset ();
  Obs.Log.set_level Obs.Log.Debug;
  Obs.Log.set_sink Obs.Log.Buffered;
  let exporter =
    Obs.Telemetry.start ~interval_ms:50.0
      ~prom:(Obs.Telemetry.File prom)
      (Obs.Telemetry.File jsonl)
  in
  let wall_on_s = best_of 2 run_sweep in
  Obs.Telemetry.stop exporter;
  Obs.Log.set_sink Obs.Log.Off;
  Obs.Log.set_level Obs.Log.Info;

  let ticks = Obs.Telemetry.ticks exporter in
  if ticks < 2 then fail "telemetry-smoke: only %d exporter ticks" ticks;

  (* The JSON-lines stream: every line parses; snapshots carry the
     per-instance gauges and per-class latency quantiles. *)
  let lines = List.map Obs_io.telemetry_line_of_string (read_lines jsonl) in
  let snapshots =
    List.filter_map
      (function Obs_io.Snapshot s -> Some s | Obs_io.Log_line _ -> None)
      lines
  in
  let log_lines = List.length lines - List.length snapshots in
  if List.length snapshots < 2 then
    fail "telemetry-smoke: %d snapshots in the stream" (List.length snapshots);
  if log_lines = 0 then
    fail "telemetry-smoke: no log records rode the stream at debug level";
  let last = List.nth snapshots (List.length snapshots - 1) in
  let has_prefix p =
    List.exists
      (fun (name, v) ->
        match v with
        | M.Gauge _ -> String.length name > String.length p
                       && String.sub name 0 (String.length p) = p
        | _ -> false)
      last.Obs_io.metrics
  in
  if not (has_prefix "fleet.util.") then
    fail "telemetry-smoke: no per-instance utilization gauges in snapshot";
  if not (has_prefix "fleet.queue_depth.") then
    fail "telemetry-smoke: no per-instance queue-depth gauges in snapshot";
  if not (has_prefix "fleet.inflight.") then
    fail "telemetry-smoke: no per-instance inflight gauges in snapshot";
  if
    not
      (List.exists
         (fun (name, v) ->
           match v with
           | M.Histogram { count; _ } ->
             count > 0
             && String.length name > 17
             && String.sub name 0 17 = "fleet.latency_ms."
           | _ -> false)
         last.Obs_io.metrics)
  then fail "telemetry-smoke: no populated fleet latency histogram";
  (* Counters are monotone tick over tick. *)
  let counter_of s name =
    match List.assoc_opt name s.Obs_io.metrics with
    | Some (M.Counter c) -> c
    | _ -> 0
  in
  List.iter
    (fun name ->
      ignore
        (List.fold_left
           (fun prev s ->
             let v = counter_of s name in
             if v < prev then
               fail "telemetry-smoke: counter %s went backwards (%d -> %d)"
                 name prev v;
             v)
           0 snapshots))
    [ "fleet.submitted"; "fleet.completed"; "fleet.attempts" ];

  (* Prometheus exposition. *)
  let prom_text =
    let ic = open_in_bin prom in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let families, samples = prom_validate prom_text in
  if families = 0 || samples = 0 then
    fail "telemetry-smoke: empty prometheus exposition";

  (* Drift verdicts: the real sweep ran fault-free on the same cost
     model that predicts it, so the detector must stay quiet; a
     miscalibrated model (measured = 2x predicted) must flag. *)
  let drift_quiet =
    List.for_all
      (fun (d : Obs.Health.stage_drift) -> not d.Obs.Health.drifted)
      last.Obs_io.drift
  in
  if not drift_quiet then
    fail "telemetry-smoke: drift detector fired on the default cost model";
  if last.Obs_io.drift = [] then
    fail "telemetry-smoke: no drift accumulators fed by the sweep";
  Obs.Health.reset ();
  Obs.Health.observe_model ~stage:"smoke" ~predicted_ms:1.0 ~measured_ms:2.0;
  let drift_flagged =
    List.exists
      (fun (d : Obs.Health.stage_drift) ->
        d.Obs.Health.stage = "smoke" && d.Obs.Health.drifted)
      (Obs.Health.drift ())
  in
  if not drift_flagged then
    fail "telemetry-smoke: miscalibrated cost model not flagged";
  Obs.Health.reset ();

  let overhead = wall_on_s /. wall_off_s in
  pf "  off %.3f s, on %.3f s: overhead %.3fx; %d ticks, %d snapshots, %d \
      log lines\n"
    wall_off_s wall_on_s overhead ticks (List.length snapshots) log_lines;
  pf "  prometheus: %d families, %d samples; drift quiet on defaults, \
      flags 2x miscalibration\n"
    families samples;
  if overhead > 1.05 then
    fail "telemetry-smoke: export overhead %.3fx exceeds the 1.05x budget"
      overhead;

  let json =
    Json.Obj
      [
        ("bench", Json.Str "obs");
        ("wall_off_s", Json.Float wall_off_s);
        ("wall_on_s", Json.Float wall_on_s);
        ("overhead_ratio", Json.Float overhead);
        ("ticks", Json.Int ticks);
        ("snapshots", Json.Int (List.length snapshots));
        ("log_lines", Json.Int log_lines);
        ("prom_families", Json.Int families);
        ("prom_samples", Json.Int samples);
        ("drift_quiet_on_defaults", Json.Bool drift_quiet);
        ("drift_flags_miscalibration", Json.Bool drift_flagged);
      ]
  in
  let path = "BENCH_obs.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Sys.remove jsonl;
  Sys.remove prom;
  pf "  [json written to %s]\n" path
