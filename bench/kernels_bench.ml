(* Host kernel micro-benchmark: the generic scalar path against the flat
   limb-planar path of [Flat_kernels], on the simulator's dominant kernel
   (the register-loading matrix product), in every flat-capable real
   precision (double, quad and octo double), with the launch geometry of
   the blocked QR (one thread block = [threads] output elements, blocks
   spread over the domain pool exactly as [Sim.launch] spreads them).

   The flat timings INCLUDE staging the operands into limb planes and
   unstaging the result, i.e. they measure what the dispatcher actually
   pays; the inner dimension amortizes that overhead.

     dune exec bench/main.exe -- kernels        # full matrix, writes
                                                # BENCH_kernels.json
     dune exec bench/main.exe -- kernels-smoke  # one dd comparison,
                                                # exits 1 on regression
*)

open Mdlinalg

let threads = 128
let inner = 128

type row = {
  prec : string;
  n : int;
  generic_ms : float;
  flat_ms : float;
}

module Bench (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module Rand = Randmat.Make (K)
  module F = Flat_kernels.Make (K)

  (* The generic launch body of [Blocked_qr.launch_matmul], verbatim. *)
  let generic_ms pool ~n (a : M.t) (b : M.t) (c : M.t) =
    let total = n * n in
    let blocks = (total + threads - 1) / threads in
    let t0 = Unix.gettimeofday () in
    Dompool.Domain_pool.parallel_for ~chunk:1 pool 0 blocks (fun blk ->
        let lo = blk * threads in
        let hi = min total (lo + threads) in
        let i = ref (lo / n) and j = ref (lo mod n) in
        for _idx = lo to hi - 1 do
          let s = ref K.zero in
          for k = 0 to inner - 1 do
            s := K.add !s (K.mul (M.get a !i k) (M.get b k !j))
          done;
          M.set c !i !j !s;
          incr j;
          if !j = n then begin
            j := 0;
            incr i
          end
        done);
    (Unix.gettimeofday () -. t0) *. 1000.0

  (* The flat dispatch path, staging included. *)
  let flat_ms pool ~n (a : M.t) (b : M.t) (c : M.t) =
    let total = n * n in
    let blocks = (total + threads - 1) / threads in
    let t0 = Unix.gettimeofday () in
    let ap = F.stage ~rows:n ~cols:inner ~get:(fun i k -> M.get a i k) in
    let bp = F.stage ~rows:inner ~cols:n ~get:(fun k j -> M.get b k j) in
    let cp = F.alloc ~rows:n ~cols:n in
    Dompool.Domain_pool.parallel_for ~chunk:1 pool 0 blocks (fun blk ->
        F.matmul_block ~threads ap bp cp blk);
    F.unstage cp ~store:(fun i j s -> M.set c i j s);
    (Unix.gettimeofday () -. t0) *. 1000.0

  let matmul ~n =
    let pool = Dompool.Domain_pool.get_default () in
    let rng = Dompool.Prng.create (4159 + n) in
    let a = Rand.matrix rng n inner and b = Rand.matrix rng inner n in
    let cg = M.create n n and cf = M.create n n in
    let g = generic_ms pool ~n a b cg in
    let f = flat_ms pool ~n a b cf in
    (* The two paths must agree limb for limb — a wrong fast kernel is
       worthless, so the benchmark checks while it times. *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if
          not
            (Array.for_all2
               (fun x y ->
                 Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
               (K.to_planes (M.get cg i j))
               (K.to_planes (M.get cf i j)))
        then begin
          Printf.eprintf "kernels bench: flat/generic mismatch at (%d,%d)\n" i
            j;
          exit 1
        end
      done
    done;
    (g, f)
end

module Bdd = Bench (Scalar.Dd)
module Bqd = Bench (Scalar.Qd)
module Bod = Bench (Scalar.Od)

let pf = Printf.printf

(* The register-tile of each precision's matmul microkernel, classified
   on the reference device (V100) from its per-tile flop and byte counts
   through [Obs.Roofline.microkernel] — the CGMA story of the paper in
   tile-sized form: double double tiles sit below the ridge point
   (memory-bound), octo double tiles far above it (compute-bound). *)
let tiles () =
  let dev = Gpusim.Device.v100 in
  List.map
    (fun (prec, (t : Flat_kernels.tile)) ->
      let s =
        Obs.Roofline.microkernel
          ~stage:(prec ^ " matmul tile")
          ~flops:t.Flat_kernels.flops ~bytes:t.Flat_kernels.bytes
          ~peak_gflops:dev.Gpusim.Device.dp_peak_gflops
          ~dram_gb_s:dev.Gpusim.Device.dram_gb_s
      in
      (prec, t, s))
    [ ("2d", Bdd.F.tile); ("4d", Bqd.F.tile); ("8d", Bod.F.tile) ]

let report_tiles ts =
  let dev = Gpusim.Device.v100 in
  pf "\nmicrokernel tiles (mr x nr x kc), roofline on %s (ridge %.1f \
      flops/byte):\n"
    dev.Gpusim.Device.name
    (Obs.Roofline.ridge ~peak_gflops:dev.Gpusim.Device.dp_peak_gflops
       ~dram_gb_s:dev.Gpusim.Device.dram_gb_s);
  List.iter
    (fun (prec, (t : Flat_kernels.tile), (s : Obs.Roofline.stage)) ->
      pf "  %-4s %d x %d x %-4d %10.0f flops %8.0f bytes %8.2f flops/byte \
          -> %s-bound\n"
        prec t.Flat_kernels.mr t.Flat_kernels.nr t.Flat_kernels.kc
        t.Flat_kernels.flops t.Flat_kernels.bytes s.Obs.Roofline.intensity
        (Obs.Roofline.bound_name s.Obs.Roofline.bound))
    ts

let header () =
  pf "\n%s\n" (String.make 100 '-');
  pf
    "Host kernel bench: generic scalar path vs flat limb-planar path \
     (matmul, inner dim %d, blocks of %d threads)\n"
    inner threads;
  pf "%s\n" (String.make 100 '-');
  pf "%-6s %6s %14s %12s %10s\n" "prec" "n" "generic ms" "flat ms" "speedup"

let report r =
  pf "%-6s %6d %14.1f %12.1f %9.2fx\n%!" r.prec r.n r.generic_ms r.flat_ms
    (r.generic_ms /. r.flat_ms)

let json_of_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"kernels\",\n";
  Buffer.add_string b "  \"kernel\": \"matmul\",\n";
  Buffer.add_string b (Printf.sprintf "  \"threads\": %d,\n" threads);
  Buffer.add_string b (Printf.sprintf "  \"inner\": %d,\n" inner);
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": %d,\n"
       (Dompool.Domain_pool.size (Dompool.Domain_pool.get_default ())));
  Buffer.add_string b "  \"tiles\": [\n";
  let ts = tiles () in
  let tlast = List.length ts - 1 in
  List.iteri
    (fun i (prec, (t : Flat_kernels.tile), (s : Obs.Roofline.stage)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"prec\": %S, \"mr\": %d, \"nr\": %d, \"kc\": %d, \
            \"flops\": %.0f, \"bytes\": %.0f, \"intensity\": %.3f, \
            \"bound\": %S}%s\n"
           prec t.Flat_kernels.mr t.Flat_kernels.nr t.Flat_kernels.kc
           t.Flat_kernels.flops t.Flat_kernels.bytes s.Obs.Roofline.intensity
           (Obs.Roofline.bound_name s.Obs.Roofline.bound)
           (if i = tlast then "" else ",")))
    ts;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"prec\": %S, \"n\": %d, \"generic_ms\": %.3f, \"flat_ms\": \
            %.3f, \"speedup\": %.3f}%s\n"
           r.prec r.n r.generic_ms r.flat_ms
           (r.generic_ms /. r.flat_ms)
           (if i = last then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Full matrix: dd and qd at n in {256, 512, 1024}, od at reduced sizes
   (a boxed octo double mul costs ~40x a quad double one — the 79-slot
   product buffer plus its magnitude sort dominate — so smaller n keeps
   the row affordable while the fixed inner dimension still amortizes
   staging the same way); emits BENCH_kernels.json in the working
   directory. *)
let run () =
  header ();
  let sizes = [ 256; 512; 1024 ] in
  let od_sizes = [ 64; 96; 128; 256 ] in
  (* Bound one group at a time: [@] gives no evaluation order, and the
     progress rows should print in the order they land in the json. *)
  let dd_rows =
    List.map
      (fun n ->
        let g, f = Bdd.matmul ~n in
        let r = { prec = "2d"; n; generic_ms = g; flat_ms = f } in
        report r;
        r)
      sizes
  in
  let qd_rows =
    List.map
      (fun n ->
        let g, f = Bqd.matmul ~n in
        let r = { prec = "4d"; n; generic_ms = g; flat_ms = f } in
        report r;
        r)
      sizes
  in
  let od_rows =
    List.map
      (fun n ->
        let g, f = Bod.matmul ~n in
        let r = { prec = "8d"; n; generic_ms = g; flat_ms = f } in
        report r;
        r)
      od_sizes
  in
  let rows = dd_rows @ qd_rows @ od_rows in
  report_tiles (tiles ());
  let path = "BENCH_kernels.json" in
  let oc = open_out path in
  output_string oc (json_of_rows rows);
  close_out oc;
  pf "  [json written to %s]\n" path

(* Smoke: one dd and one (small) od comparison, each finishing in
   seconds; fails the run (exit 1) if either flat path is not faster
   than its generic one, or if the octo double speedup falls below the
   regression floor — the specialized m = 8 engine holds well above 3x
   even at this small size, so dipping under it means the engine
   regressed to replay-level performance.  The od case doubles as a
   standing bit-identity check on the m = 8 engine ([Bench.matmul]
   verifies limb for limb while it times). *)
let od_smoke_floor = 3.0

let smoke () =
  header ();
  let gate ?floor r =
    report r;
    if r.flat_ms >= r.generic_ms then begin
      Printf.eprintf
        "kernels-smoke: %s flat path (%.1f ms) not faster than generic \
         (%.1f ms)\n"
        r.prec r.flat_ms r.generic_ms;
      exit 1
    end;
    match floor with
    | Some fl when r.generic_ms /. r.flat_ms < fl ->
        Printf.eprintf
          "kernels-smoke: %s flat speedup %.2fx below the %.1fx floor\n"
          r.prec
          (r.generic_ms /. r.flat_ms)
          fl;
        exit 1
    | _ -> ()
  in
  let g, f = Bdd.matmul ~n:192 in
  gate { prec = "2d"; n = 192; generic_ms = g; flat_ms = f };
  let g, f = Bod.matmul ~n:32 in
  gate ~floor:od_smoke_floor { prec = "8d"; n = 32; generic_ms = g; flat_ms = f }
