(* Iterative-engine smoke: gates the solver-engine seam and writes
   BENCH_iter.json.

   Three checks, one per claim of the engine abstraction:

   - Pareto: on the tall-skinny planning shape (16384 x 64, the
     tallskinny sweep's larger point) both iterative engines must beat
     the direct QR engine on simulated kernel time, at double double
     and quad double — the m >> n regime is their home turf.
   - Roofline: at double double both matrix-vector stages of the
     iterative plan must classify memory-bound (the O(1) flops-per-byte
     CGMA ratio that routes these jobs to bandwidth-rich device
     classes), while the direct engine's QR stays compute-bound at quad
     double.
   - Execution: on a small executed problem (2048 x 32, double double)
     all three engines must reach the known solution to the certified
     forward-error bound, the iterative engines must report
     convergence, and re-running an iterative engine must be
     bit-deterministic: identical iteration counts, ladders and
     solution limbs.

   Part of the @bench-smoke regression gate; exits 1 on any mismatch. *)

module P = Multidouble.Precision
module Json = Harness.Json
module Solver = Lsq_core.Solver

let pf = Printf.printf

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline m;
      exit 1)
    fmt

let device = Gpusim.Device.v100

(* ---- planning: simulated time on the tall-skinny shape ---- *)

type planned = {
  prec : P.tag;
  method_ : Solver.method_;
  kernel_ms : float;
  wall_ms : float;
  iterations : int;
}

let plan_point prec method_ ~rows ~cols ~tile =
  let (module K) = Solver.scalar_of prec in
  let module S = Solver.Make (K) in
  let r = S.plan ~method_ ~device ~rows ~cols ~tile () in
  {
    prec;
    method_;
    kernel_ms = r.S.kernel_ms;
    wall_ms = r.S.wall_ms;
    iterations =
      (match r.S.iter with Some it -> it.Solver.iterations | None -> 0);
  }

let json_of_planned ~rows ~cols p =
  Json.Obj
    [
      ("prec", Json.Str (P.label p.prec));
      ("method", Json.Str (Solver.method_name p.method_));
      ("rows", Json.Int rows);
      ("cols", Json.Int cols);
      ("kernel_ms", Json.Float p.kernel_ms);
      ("wall_ms", Json.Float p.wall_ms);
      ("iterations", Json.Int p.iterations);
    ]

(* ---- execution: agreement and determinism ---- *)

type executed = {
  e_method : Solver.method_;
  forward_err_eps : float;
  e_iterations : int;
  converged : bool;
  ladder : (P.tag * int) list;
}

let executed_runs ~rows ~cols ~tile =
  let (module K) = Solver.scalar_of P.DD in
  let module S = Solver.Make (K) in
  let module M = Mdlinalg.Mat.Make (K) in
  let module V = Mdlinalg.Vec.Make (K) in
  let module Rand = Mdlinalg.Randmat.Make (K) in
  let rng = Dompool.Prng.create 4242 in
  let a = Rand.matrix rng rows cols in
  let b, x_true = Rand.rhs_for rng a in
  let solve method_ =
    S.solve ~method_ ~device ~a:(M.copy a) ~b:(V.copy b) ~tile ()
  in
  let err_of x =
    K.R.to_float (V.norm (V.sub x x_true)) /. K.R.to_float (V.norm x_true)
  in
  let point method_ =
    let r = solve method_ in
    ( r,
      {
        e_method = method_;
        forward_err_eps = err_of r.S.x /. K.R.eps;
        e_iterations =
          (match r.S.iter with Some it -> it.Solver.iterations | None -> 0);
        converged =
          (match r.S.iter with
          | Some it -> it.Solver.converged
          | None -> true);
        ladder =
          (match r.S.iter with Some it -> it.Solver.ladder | None -> []);
      } )
  in
  let runs = List.map point Solver.all_methods in
  (* Bit-determinism: a second run of each iterative engine must match
     the first in every limb and every ladder step. *)
  List.iter
    (fun (r1, e) ->
      if Solver.is_iterative e.e_method then begin
        let r2, e2 = point e.e_method in
        if r1.S.x <> r2.S.x then
          fail "iter-smoke: %s is not bit-deterministic"
            (Solver.method_name e.e_method);
        if e.e_iterations <> e2.e_iterations || e.ladder <> e2.ladder then
          fail "iter-smoke: %s iteration counts drift between runs"
            (Solver.method_name e.e_method)
      end)
    runs;
  List.map snd runs

let json_of_executed e =
  Json.Obj
    [
      ("method", Json.Str (Solver.method_name e.e_method));
      ("forward_err_eps", Json.Float e.forward_err_eps);
      ("iterations", Json.Int e.e_iterations);
      ("converged", Json.Bool e.converged);
      ( "ladder",
        Json.Arr
          (List.map
             (fun (t, i) ->
               Json.Obj
                 [
                   ("prec", Json.Str (P.label t));
                   ("iterations", Json.Int i);
                 ])
             e.ladder) );
    ]

let smoke () =
  pf "\n%s\nIterative-engine smoke: CG/LSQR vs direct QR on tall-skinny\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let rows = 16384 and cols = 64 and tile = 64 in
  (* Pareto on simulated time, per precision. *)
  let planned =
    List.concat_map
      (fun prec ->
        List.map
          (fun m -> plan_point prec m ~rows ~cols ~tile)
          Solver.all_methods)
      [ P.DD; P.QD ]
  in
  List.iter
    (fun prec ->
      let of_m m =
        List.find (fun p -> p.prec = prec && p.method_ = m) planned
      in
      let qr = of_m Solver.Qr_direct in
      List.iter
        (fun m ->
          let p = of_m m in
          if p.kernel_ms >= qr.kernel_ms then
            fail
              "iter-smoke: %s (%s) kernel %.3f ms does not beat direct QR \
               %.3f ms on %dx%d"
              (Solver.method_name m) (P.label prec) p.kernel_ms qr.kernel_ms
              rows cols;
          pf "  %s %-5s %10.3f ms kernel (direct QR %10.3f ms, %5.1fx)\n"
            (P.label prec) (Solver.method_name m) p.kernel_ms qr.kernel_ms
            (qr.kernel_ms /. p.kernel_ms))
        [ Solver.Cg_normal; Solver.Lsqr ])
    [ P.DD; P.QD ];
  (* Roofline: at double double (the bandwidth-bound precision) the
     iterative matvec stages stream — memory-bound, the O(1)
     flops-per-byte CGMA ratio — while the Table 1 multipliers push the
     same kernels back toward compute at quad double, mirroring the
     paper's QR story.  The gate binds the dd classification; the qd
     rows ride along in the JSON. *)
  let matvec_stages =
    List.concat_map
      (fun prec ->
        let stages =
          Harness.Runners.solve_roofline ~method_:Solver.Lsqr ~rows prec
            device ~n:cols ~tile
        in
        List.filter_map
          (fun (s : Obs.Roofline.stage) ->
            if s.Obs.Roofline.stage = "A*v" || s.Obs.Roofline.stage = "A^T*v"
            then Some (prec, s)
            else None)
          stages)
      [ P.DD; P.QD ]
  in
  if List.length matvec_stages < 4 then
    fail "iter-smoke: expected both matvec stages at both precisions";
  List.iter
    (fun (prec, (s : Obs.Roofline.stage)) ->
      if prec = P.DD && s.Obs.Roofline.bound <> Obs.Roofline.Memory then
        fail "iter-smoke: %s %s classifies %s, want memory-bound"
          (P.label prec) s.Obs.Roofline.stage
          (Obs.Roofline.bound_name s.Obs.Roofline.bound);
      pf "  roofline %s %-6s %6.2f flops/byte  %s\n" (P.label prec)
        s.Obs.Roofline.stage s.Obs.Roofline.intensity
        (Obs.Roofline.bound_name s.Obs.Roofline.bound))
    matvec_stages;
  let qr_compute =
    Harness.Runners.qr_roofline P.QD device ~n:1024 ~tile:128
    |> List.exists (fun (s : Obs.Roofline.stage) ->
           s.Obs.Roofline.bound = Obs.Roofline.Compute)
  in
  if not qr_compute then
    fail "iter-smoke: quad double QR lost its compute-bound stages";
  (* Executed agreement + determinism on the small problem. *)
  let erows = 2048 and ecols = 32 and etile = 32 in
  let executed = executed_runs ~rows:erows ~cols:ecols ~tile:etile in
  List.iter
    (fun e ->
      if Float.is_nan e.forward_err_eps || e.forward_err_eps > 1e6 then
        fail "iter-smoke: %s forward error %.1f eps exceeds the bound"
          (Solver.method_name e.e_method) e.forward_err_eps;
      if not e.converged then
        fail "iter-smoke: %s did not certify convergence"
          (Solver.method_name e.e_method);
      pf "  executed %-5s %8.1f eps forward error, %d iterations%s\n"
        (Solver.method_name e.e_method) e.forward_err_eps e.e_iterations
        (if Solver.is_iterative e.e_method then ", bit-deterministic" else ""))
    executed;
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "iter");
        ("device", Json.Str device.Gpusim.Device.name);
        ( "pareto",
          Json.Arr (List.map (json_of_planned ~rows ~cols) planned) );
        ( "executed",
          Json.Obj
            [
              ("rows", Json.Int erows);
              ("cols", Json.Int ecols);
              ("runs", Json.Arr (List.map json_of_executed executed));
            ] );
        ( "roofline",
          Json.Arr
            (List.map
               (fun (prec, (s : Obs.Roofline.stage)) ->
                 Json.Obj
                   [
                     ("prec", Json.Str (P.label prec));
                     ("stage", Json.Str s.Obs.Roofline.stage);
                     ("intensity", Json.Float s.Obs.Roofline.intensity);
                     ( "bound",
                       Json.Str (Obs.Roofline.bound_name s.Obs.Roofline.bound)
                     );
                   ])
               matvec_stages) );
      ]
  in
  let oc = open_out "BENCH_iter.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  pf "  [json written to BENCH_iter.json]\n"
