(* Batch scheduler smoke: runs a small mixed batch (devices x precisions
   x kinds, one executed job, one poisoned job) on the shared domain
   pool and checks the emitted JSON lines round-trip through
   [Sched.Scheduler.outcome_of_json] / [Harness.Report.of_json].  Part
   of the @bench-smoke regression gate; exits 1 on any mismatch. *)

module P = Multidouble.Precision
module Json = Harness.Json
module Report = Harness.Report
module Job = Sched.Job
module S = Sched.Scheduler

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let smoke () =
  Printf.printf "\n%s\nBatch scheduler smoke (4 mixed jobs + 1 poisoned)\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let jobs =
    [
      Job.make ~id:"smoke-qr-v100-2d" ~kind:Job.Qr ~device:"v100" ~prec:P.DD
        ~dim:256 ~tile:32 ();
      Job.make ~id:"smoke-bs-p100-4d" ~kind:Job.Backsub ~device:"p100"
        ~prec:P.QD ~dim:512 ~tile:64 ();
      Job.make ~id:"smoke-solve-rtx-8d" ~kind:Job.Solve ~device:"rtx2080"
        ~prec:P.OD ~dim:128 ~tile:32 ();
      Job.make ~id:"smoke-qr-exec" ~kind:Job.Qr ~device:"v100" ~prec:P.DD
        ~complex:true ~dim:32 ~tile:8 ~execute:true ();
      (* Poisoned: fails more times than it may attempt, so the batch
         must degrade it to a structured error record and continue. *)
      Job.make ~id:"smoke-poisoned" ~kind:Job.Qr ~device:"v100" ~prec:P.DD
        ~dim:256 ~tile:32 ~retries:1 ~inject_failures:99 ();
    ]
  in
  let outcomes = S.run (S.Config.batch ~parallel:2 ~backoff_ms:0.0 ()) jobs in
  if List.length outcomes <> List.length jobs then
    fail "batch-smoke: %d outcomes for %d jobs" (List.length outcomes)
      (List.length jobs);
  let completed, failed =
    List.partition
      (fun o -> match o.S.status with S.Completed _ -> true | _ -> false)
      outcomes
  in
  if List.length failed <> 1 then
    fail "batch-smoke: expected exactly the poisoned job to fail, got %d"
      (List.length failed);
  (match failed with
  | [ o ] when o.S.job.Job.id = "smoke-poisoned" -> ()
  | _ -> fail "batch-smoke: the wrong job failed");
  (* The executed job must carry its residual in the report. *)
  (match
     List.find_opt (fun o -> o.S.job.Job.id = "smoke-qr-exec") completed
   with
  | Some { S.status = S.Completed r; _ } -> (
    match r.Report.residual with
    | Some v when v.Report.ok -> ()
    | Some _ -> fail "batch-smoke: executed job residual check FAILED"
    | None -> fail "batch-smoke: executed job has no residual")
  | _ -> fail "batch-smoke: executed job missing or failed");
  (* JSON-lines round trip: serialize every outcome, re-parse, compare. *)
  List.iter
    (fun o ->
      let line = Json.to_string (S.outcome_to_json o) in
      let o' = S.outcome_of_json (Json.of_string line) in
      if o' <> o then
        fail "batch-smoke: outcome for %s did not round-trip:\n  %s"
          o.S.job.Job.id line;
      match o.S.status with
      | S.Completed r ->
        if Report.of_json (Report.to_json r) <> r then
          fail "batch-smoke: report for %s did not round-trip" o.S.job.Job.id
      | S.Failed _ -> ())
    outcomes;
  Printf.printf
    "  %d jobs, %d completed, %d degraded to error records; all outcomes \
     round-tripped through the JSON schema (version %d)\n"
    (List.length outcomes) (List.length completed) (List.length failed)
    S.schema_version
