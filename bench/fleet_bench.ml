(* Fleet service smoke: drives the "fleet" sweep — a mixed stream of
   auto-placed double double (memory-bound) and octo double
   (compute-bound) jobs — through the heterogeneous default pool, checks
   the roofline placement (dd admitted to the bandwidth-rich RTX 2080
   class, od to the compute-rich V100 class) and the steal accounting,
   and writes BENCH_fleet.json: throughput, total steals, the placement
   histogram, and per-device-class latency percentiles (p50/p95/p99) off
   the fleet's metrics histograms.  Part of the @bench-smoke regression
   gate; exits 1 on any mismatch. *)

module P = Multidouble.Precision
module Json = Harness.Json
module Job = Sched.Job
module S = Sched.Scheduler
module M = Obs.Metrics

let pf = Printf.printf
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let classes = [ "c2050"; "p100"; "v100"; "rtx2080" ]
let class_of_instance id =
  match String.index_opt id '#' with
  | Some i -> String.sub id 0 i
  | None -> id

let smoke () =
  pf "\n%s\nFleet smoke: the 'fleet' sweep over the default device pool\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  M.reset (M.default ());
  let jobs = Sched.Sweep.jobs "fleet" in
  let t0 = Unix.gettimeofday () in
  let outcomes = S.run S.Config.default jobs in
  let wall_s = Unix.gettimeofday () -. t0 in
  if List.length outcomes <> List.length jobs then
    fail "fleet-smoke: %d outcomes for %d jobs" (List.length outcomes)
      (List.length jobs);
  let placements =
    List.map
      (fun o ->
        match o.S.status with
        | S.Failed f ->
          fail "fleet-smoke: job %s failed: %s" o.S.job.Job.id f.S.message
        | S.Completed _ -> (
          match o.S.placement with
          | None -> fail "fleet-smoke: job %s has no placement" o.S.job.Job.id
          | Some p -> (o, p)))
      outcomes
  in
  (* Roofline placement: every dd job of the sweep is memory-bound and
     must be admitted to the bandwidth-rich RTX 2080 class; every od job
     is compute-bound and must be admitted to the compute-rich V100. *)
  List.iter
    (fun ((o : S.outcome), (p : S.placement)) ->
      let admitted = class_of_instance p.S.admitted_to in
      let want =
        match o.S.job.Job.prec with
        | P.DD -> "rtx2080"
        | P.OD -> "v100"
        | _ -> fail "fleet-smoke: unexpected precision in the fleet sweep"
      in
      if admitted <> want then
        fail "fleet-smoke: %s (%s) admitted to %s, placement policy says %s"
          o.S.job.Job.id (P.label o.S.job.Job.prec) p.S.admitted_to want;
      (* The executed device is the class of the executing instance. *)
      if o.S.job.Job.device <> class_of_instance p.S.device_id then
        fail "fleet-smoke: %s executed on %s but records device %s"
          o.S.job.Job.id p.S.device_id o.S.job.Job.device)
    placements;
  let steals =
    List.fold_left (fun acc (_, p) -> acc + p.S.steals) 0 placements
  in
  let moved =
    List.length
      (List.filter (fun (_, p) -> p.S.device_id <> p.S.admitted_to) placements)
  in
  if steals <> moved then
    fail "fleet-smoke: %d steals recorded but %d jobs moved queues" steals
      moved;
  let admitted_histogram =
    List.map
      (fun c ->
        ( c,
          List.length
            (List.filter
               (fun (_, p) -> class_of_instance p.S.admitted_to = c)
               placements) ))
      classes
  in
  (* Per-class latency percentiles straight off the fleet's metrics
     histograms (observed by the executing instance's class). *)
  let class_rows =
    List.map
      (fun c ->
        let h =
          M.histogram ~buckets:M.latency_buckets (M.default ())
            ("fleet.latency_ms." ^ c)
        in
        let executed =
          List.length
            (List.filter
               (fun (_, p) -> class_of_instance p.S.device_id = c)
               placements)
        in
        if M.Histogram.count h <> executed then
          fail "fleet-smoke: class %s histogram has %d observations, %d jobs"
            c (M.Histogram.count h) executed;
        ( c,
          executed,
          M.Histogram.quantile h 0.5,
          M.Histogram.quantile h 0.95,
          M.Histogram.quantile h 0.99 ))
      classes
  in
  let throughput = float_of_int (List.length jobs) /. wall_s in
  pf "  %d auto-placed jobs in %.3f s (%.1f jobs/s), %d stolen\n"
    (List.length jobs) wall_s throughput steals;
  List.iter
    (fun (c, executed, p50, p95, p99) ->
      pf "  %-10s %3d executed  p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms\n" c
        executed p50 p95 p99)
    class_rows;
  let json =
    Json.Obj
      [
        ("bench", Json.Str "fleet");
        ("jobs", Json.Int (List.length jobs));
        ("wall_s", Json.Float wall_s);
        ("throughput_jobs_per_s", Json.Float throughput);
        ("steals", Json.Int steals);
        ( "placement",
          Json.Obj
            (List.map (fun (c, n) -> (c, Json.Int n)) admitted_histogram) );
        ( "classes",
          Json.Arr
            (List.map
               (fun (c, executed, p50, p95, p99) ->
                 Json.Obj
                   [
                     ("class", Json.Str c);
                     ("executed", Json.Int executed);
                     ("p50_ms", Json.Float p50);
                     ("p95_ms", Json.Float p95);
                     ("p99_ms", Json.Float p99);
                   ])
               class_rows) );
      ]
  in
  let path = "BENCH_fleet.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  pf "  [json written to %s]\n" path
