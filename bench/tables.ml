(* Regenerates every table and figure of the paper's evaluation section.

   Each printer runs the experiment through the simulator's cost model and
   prints the same rows the paper reports; the aggregate lines carry the
   paper's measured values for side-by-side comparison.  Absolute
   milliseconds need not match a physical testbed — the claims under test
   are the shapes: who wins, the overhead factors of doubling the
   precision, where teraflop performance starts, and which stages
   dominate where. *)

open Gpusim
module P = Multidouble.Precision

let pf = Printf.printf
let line = String.make 100 '-'

let title id t =
  pf "\n%s\n%s: %s\n%s\n" line id t line

let fmt_floats vs =
  String.concat " " (List.map (fun v -> Printf.sprintf "%.1f" v) vs)

let row ?paper name values =
  pf "%-24s" name;
  List.iter (fun v -> pf " %11.1f" v) values;
  (match paper with
  | Some p -> pf "   (paper: %s)" (fmt_floats p)
  | None -> ());
  pf "\n"

let header name cols =
  pf "%-24s" name;
  List.iter (fun c -> pf " %11s" c) cols;
  pf "\n"

(* Prints one paper-style table: stage rows then the four aggregate rows,
   for the list of [runs] (one per column). *)
let stage_table ?paper_kernels ?paper_wall ?paper_kflops ?paper_wflops
    ~cols (runs : Harness.Report.t list) =
  header "stage" cols;
  (match runs with
  | [] -> ()
  | first :: _ ->
    List.iteri
      (fun i (s : Harness.Report.Row.t) ->
        row s.Harness.Report.Row.stage
          (List.map
             (fun r ->
               (List.nth r.Harness.Report.stages i).Harness.Report.Row.ms)
             runs))
      first.Harness.Report.stages);
  row ?paper:paper_kernels "all kernels"
    (List.map (fun r -> r.Harness.Report.kernel_ms) runs);
  row ?paper:paper_wall "wall clock"
    (List.map (fun r -> r.Harness.Report.wall_ms) runs);
  row ?paper:paper_kflops "kernel flops"
    (List.map (fun r -> r.Harness.Report.kernel_gflops) runs);
  row ?paper:paper_wflops "wall flops"
    (List.map (fun r -> r.Harness.Report.wall_gflops) runs)

let log2 x = if x <= 0.0 then 0.0 else Float.log x /. Float.log 2.0

(* When BENCH_CSV_DIR is set, every figure also lands as a CSV file
   there, ready for external plotting. *)
let csv_write name rows =
  match Sys.getenv_opt "BENCH_CSV_DIR" with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    List.iter (fun row -> output_string oc (String.concat "," row ^ "\n")) rows;
    close_out oc;
    pf "  [csv written to %s]\n" path

let bar_chart ?csv ~title:t ~groups () =
  pf "\n%s (2-logarithms of milliseconds; one # per half unit)\n" t;
  List.iter
    (fun (group, entries) ->
      List.iter
        (fun (label, ms) ->
          let l = log2 ms in
          pf "  %-10s %-6s %6.2f %s\n" group label l
            (String.make (max 0 (int_of_float (2.0 *. l))) '#'))
        entries)
    groups;
  match csv with
  | None -> ()
  | Some name ->
    csv_write name
      ([ "group"; "label"; "kernel_ms"; "log2_ms" ]
      :: List.concat_map
           (fun (group, entries) ->
             List.map
               (fun (label, ms) ->
                 [ group; label; Printf.sprintf "%.6f" ms;
                   Printf.sprintf "%.4f" (log2 ms) ])
               entries)
           groups)

(* ------------------------------------------------------------------ *)

let table1 () =
  title "Table 1" "operation counts of multiple double arithmetic";
  pf "%-14s %6s %6s %6s %6s %8s\n" "operation" "+" "-" "*" "/" "total";
  List.iter
    (fun p ->
      let c = P.costs p in
      let pr name (o : P.op_cost) =
        pf "%-4s %-9s %6d %6d %6d %6d %8d\n" (P.label p) name o.P.adds
          o.P.subs o.P.muls o.P.divs (P.cost_total o)
      in
      pr "add" c.P.add;
      pr "mul" c.P.mul;
      pr "div" c.P.div;
      pf "%-4s %-9s average %.1f double operations per operation\n"
        (P.label p) "" (P.average_flops p))
    [ P.DD; P.QD; P.OD ];
  pf "predicted overhead dd->qd: %.1f (paper: 11.7)\n"
    (P.predicted_overhead ~lo:P.DD ~hi:P.QD);
  pf "predicted overhead qd->od: %.1f (paper: 5.4)\n"
    (P.predicted_overhead ~lo:P.QD ~hi:P.OD)

let table2 () =
  title "Table 2" "the five GPUs";
  pf "%-12s %5s %5s %10s %7s %6s  %-14s %s\n" "NVIDIA GPU" "CUDA" "#MP"
    "#cores/MP" "#cores" "GHz" "host CPU" "host GHz";
  List.iter
    (fun d ->
      pf "%-12s %5.1f %5d %10d %7d %6.2f  %-14s %.2f\n" d.Device.name
        d.Device.cuda d.Device.sm_count d.Device.cores_per_sm
        (Device.cores d) d.Device.ghz d.Device.host_cpu d.Device.host_ghz)
    Device.catalog

let table3 () =
  title "Table 3"
    "blocked Householder QR, double double, 1024x1024, 8 tiles of 128";
  let runs =
    List.map (fun d -> Harness.Runners.qr P.DD d ~n:1024 ~tile:128) Device.catalog
  in
  stage_table
    ~cols:(List.map (fun d -> d.Device.name) Device.catalog)
    ~paper_kernels:[ 8888.3; 5506.1; 712.4; 451.5; 3968.2 ]
    ~paper_wall:[ 9083.0; 5682.0; 826.0; 568.0; 4700.0 ]
    ~paper_kflops:[ 115.8; 187.0; 1445.3; 2280.4; 259.5 ]
    ~paper_wflops:[ 113.4; 181.2; 1247.2; 1812.7; 219.1 ]
    runs;
  (match runs with
  | [ c2050; _; _; v100; _ ] ->
    pf "\nC2050 over V100 kernel-time ratio: %.1f (paper: 19.6)\n"
      (c2050.Harness.Report.kernel_ms /. v100.Harness.Report.kernel_ms)
  | _ -> ())

let qr_precisions device =
  List.map (fun p -> Harness.Runners.qr p device ~n:1024 ~tile:128) [ P.D; P.DD; P.QD; P.OD ]

let table4 () =
  title "Table 4"
    "blocked Householder QR at 1d/2d/4d/8d, 1024x1024, 8 tiles of 128";
  let specs =
    [
      ( Device.rtx2080,
        [ 338.6; 3999.5; 35826.7; 160802.8 ],
        [ 562.0; 4708.0; 37087.0; 163219.0 ],
        [ 141.5; 257.4; 284.1; 299.7 ],
        [ 85.2; 218.7; 274.5; 295.3 ] );
      ( Device.p100,
        [ 256.2; 712.7; 5187.0; 20547.5 ],
        [ 311.0; 827.0; 5381.0; 20870.0 ],
        [ 180.6; 1444.6; 1962.4; 2345.4 ],
        [ 154.0; 1244.8; 1891.5; 2309.2 ] );
      ( Device.v100,
        [ 158.4; 446.8; 3167.0; 11754.6 ],
        [ 206.0; 560.0; 3356.0; 12059.0 ],
        [ 302.5; 2304.3; 3214.0; 4099.9 ],
        [ 232.8; 1837.3; 3033.0; 3996.3 ] );
    ]
  in
  let all = ref [] in
  List.iter
    (fun (d, pk, pw, pkf, pwf) ->
      pf "\n-- times on the %s --\n" d.Device.name;
      let runs = qr_precisions d in
      all := (d.Device.name, runs) :: !all;
      stage_table
        ~cols:(List.map P.label [ P.D; P.DD; P.QD; P.OD ])
        ~paper_kernels:pk ~paper_wall:pw ~paper_kflops:pkf ~paper_wflops:pwf
        runs)
    specs;
  pf "\ncost overhead factors of doubling the precision (kernel times):\n";
  List.iter
    (fun (name, runs) ->
      match runs with
      | [ _; dd; qd; od ] ->
        pf
          "  %-10s dd->qd %.1f (paper %s, predicted 11.7)   qd->od %.1f \
           (paper %s, predicted 5.4)\n"
          name
          (qd.Harness.Report.kernel_ms /. dd.Harness.Report.kernel_ms)
          (match name with
          | "RTX 2080" -> "9.0"
          | "P100" -> "7.3"
          | _ -> "7.1")
          (od.Harness.Report.kernel_ms /. qd.Harness.Report.kernel_ms)
          (match name with
          | "RTX 2080" -> "4.5"
          | "P100" -> "4.0"
          | _ -> "3.7")
      | _ -> ())
    (List.rev !all);
  List.rev !all

let figure1 table4_runs =
  title "Figure 1" "log2 kernel times of QR at 2d/4d/8d (data of Table 4)";
  bar_chart ~csv:"figure1" ~title:"QR on 1024x1024, 8 tiles of 128"
    ~groups:
      (List.map
         (fun (name, runs) ->
           match runs with
           | [ _; dd; qd; od ] ->
             ( name,
               [
                 ("2d", dd.Harness.Report.kernel_ms);
                 ("4d", qd.Harness.Report.kernel_ms);
                 ("8d", od.Harness.Report.kernel_ms);
               ] )
           | _ -> (name, []))
         table4_runs)
    ()

let table5 () =
  title "Table 5"
    "real vs complex double double QR at dimension 512 on the V100";
  let tiles = [ (16, 32); (8, 64); (4, 128); (2, 256) ] in
  let cols = List.map (fun (n, t) -> Printf.sprintf "%dx%d" n t) tiles in
  pf "\n-- on real matrices --\n";
  stage_table ~cols
    ~paper_kernels:[ 53.2; 94.0; 100.5; 161.6 ]
    ~paper_wall:[ 101.0; 170.0; 155.0; 208.0 ]
    ~paper_kflops:[ 428.4; 785.9; 1089.8; 777.3 ]
    ~paper_wflops:[ 226.6; 434.5; 707.4; 603.3 ]
    (List.map
       (fun (_, t) -> Harness.Runners.qr P.DD Device.v100 ~n:512 ~tile:t)
       tiles);
  pf "\n-- on complex matrices --\n";
  stage_table ~cols
    ~paper_kernels:[ 97.4; 227.4; 238.5; 420.8 ]
    (List.map
       (fun (_, t) -> Harness.Runners.qr ~complex:true P.DD Device.v100 ~n:512 ~tile:t)
       tiles)

let table6 () =
  title "Table 6"
    "blocked Householder QR for increasing dimension (tiles of 128), V100";
  let dims = [ 512; 1024; 1536; 2048 ] in
  let cols = List.map string_of_int dims in
  let paper =
    [
      ( P.DD,
        Some [ 100.5; 238.2; 1521.5; 26815.0 ],
        Some [ 155.0; 321.0; 1627.0; 27230.0 ],
        Some [ 1089.7; 1839.0; 2475.1; 1087.8 ] );
      ( P.QD,
        Some [ 674.3; 3136.5; 13431.2; 34372.5 ],
        Some [ 777.0; 3366.0; 13835.0; 34960.0 ],
        Some [ 1605.7; 3245.3; 2366.8; 2097.0 ] );
      ( P.OD,
        Some [ 2490.8; 12280.1; 44679.8; 107769.2 ],
        Some [ 2681.0; 12735.0; 45419.0; 108800.0 ],
        Some [ 2058.2; 3924.4; 3368.5; 3166.4 ] );
    ]
  in
  let out = ref [] in
  List.iter
    (fun (p, pk, pw, pkf) ->
      pf "\n-- %s precision --\n" (P.name p);
      let runs =
        List.map (fun n -> Harness.Runners.qr p Device.v100 ~n ~tile:128) dims
      in
      out := (p, runs) :: !out;
      stage_table ~cols ?paper_kernels:pk ?paper_wall:pw ?paper_kflops:pkf
        runs)
    paper;
  let out = List.rev !out in
  (match List.assoc_opt P.DD out with
  | Some [ _; r1024; _; r2048 ] ->
    pf
      "\ndouble double kernel time 1024 -> 2048 grows %.0fx (cubic alone \
       would be 8x; the paper observes the same sharp drop, ~113x)\n"
      (r2048.Harness.Report.kernel_ms /. r1024.Harness.Report.kernel_ms)
  | _ -> ());
  out

let figure2 table6_runs =
  title "Figure 2" "log2 kernel times of QR for increasing dimension (V100)";
  bar_chart ~csv:"figure2" ~title:"QR with tiles of 128"
    ~groups:
      (List.map
         (fun (p, runs) ->
           ( P.label p,
             List.map2
               (fun n r -> (string_of_int n, r.Harness.Report.kernel_ms))
               [ 512; 1024; 1536; 2048 ] runs ))
         table6_runs)
    ()

let table7 () =
  title "Table 7"
    "back substitution in four precisions on growing problems, V100";
  let sizes p =
    if p = P.OD then [ (64, 80); (128, 80); (128, 160) ]
    else [ (64, 80); (128, 80); (256, 80) ]
  in
  let paper =
    [
      (P.D, [ 3.0; 8.9; 41.0 ], [ 47.0; 147.0; 526.0 ], [ 14.5; 28.5; 39.9 ]);
      ( P.DD,
        [ 5.0; 17.3; 67.4 ],
        [ 82.0; 286.0; 966.0 ],
        [ 190.6; 318.7; 525.1 ] );
      ( P.QD,
        [ 31.7; 88.8; 312.7 ],
        [ 187.0; 619.0; 2268.0 ],
        [ 299.4; 614.2; 1122.3 ] );
      ( P.OD,
        [ 140.7; 316.2; 613.1 ],
        [ 465.0; 1400.0; 84448.0 ],
        [ 321.3; 820.1; 1166.7 ] );
    ]
  in
  let out = ref [] in
  List.iter
    (fun (p, pk, pw, pkf) ->
      pf "\n-- %s precision --\n" (P.name p);
      let runs =
        List.map
          (fun (n, nt) -> Harness.Runners.bs p Device.v100 ~dim:(n * nt) ~tile:n)
          (sizes p)
      in
      out := (p, runs) :: !out;
      stage_table
        ~cols:(List.map (fun (n, nt) -> Printf.sprintf "%dx%d" n nt) (sizes p))
        ~paper_kernels:pk ~paper_wall:pw ~paper_kflops:pkf runs)
    paper;
  List.rev !out

let figure3 table7_runs =
  title "Figure 3"
    "log2 back substitution kernel times at 5120/10240/20480 (V100)";
  bar_chart ~csv:"figure3" ~title:"tiled back substitution"
    ~groups:
      (List.map
         (fun (p, runs) ->
           ( P.label p,
             List.map2
               (fun d r -> (string_of_int d, r.Harness.Report.kernel_ms))
               [ 5120; 10240; 20480 ] runs ))
         table7_runs)
    ()

let table8 () =
  title "Table 8"
    "tiled back substitution, quad double, N=80 tiles of n=32..256";
  let ns = [ 32; 64; 96; 128; 160; 192; 224; 256 ] in
  let cols = List.map string_of_int ns in
  let paper =
    [
      ( Device.rtx2080,
        [ 106.8; 267.7; 524.4; 907.2; 1465.1; 2170.4; 3096.3; 4392.3 ],
        [ 17.4; 35.5; 49.6; 60.1; 67.0; 73.8; 78.6; 79.9 ] );
      ( Device.p100,
        [ 24.3; 49.6; 78.7; 119.0; 176.4; 259.8; 332.3; 431.7 ],
        [ 76.4; 191.5; 330.6; 458.3; 556.7; 616.1; 732.2; 813.1 ] );
      ( Device.v100,
        [ 19.6; 37.8; 59.2; 86.4; 145.0; 184.6; 237.1; 314.5 ],
        [ 94.9; 250.9; 439.6; 631.7; 677.4; 867.0; 1025.9; 1115.9 ] );
    ]
  in
  let out = ref [] in
  List.iter
    (fun (d, pk, pkf) ->
      pf "\n-- times on the %s --\n" d.Device.name;
      let runs =
        List.map (fun n -> Harness.Runners.bs P.QD d ~dim:(80 * n) ~tile:n) ns
      in
      out := (d.Device.name, runs) :: !out;
      stage_table ~cols ~paper_kernels:pk ~paper_kflops:pkf runs)
    paper;
  let out = List.rev !out in
  (match (List.assoc_opt "P100" out, List.assoc_opt "V100" out) with
  | Some p100, Some v100 ->
    let nth l i = (List.nth l i).Harness.Report.kernel_ms in
    pf "\nP100/V100 kernel-time ratio at n=224: %.1f (paper: 3.1)\n"
      (nth p100 6 /. nth v100 6);
    pf "P100/V100 kernel-time ratio at n=256: %.1f (paper: 2.6)\n"
      (nth p100 7 /. nth v100 7)
  | _ -> ());
  out

let figure4 table8_runs =
  title "Figure 4"
    "log2 back substitution kernel times, quad double, N=80 (three GPUs)";
  bar_chart ~csv:"figure4" ~title:"tiled back substitution, n = 32..256"
    ~groups:
      (List.map
         (fun (name, runs) ->
           ( name,
             List.map2
               (fun n r -> (string_of_int n, r.Harness.Report.kernel_ms))
               [ 32; 64; 96; 128; 160; 192; 224; 256 ]
               runs ))
         table8_runs)
    ()

let table9 () =
  title "Table 9"
    "back substitution, quad double, dimension 20480 = N x n, V100";
  let combos = [ (320, 64); (160, 128); (80, 256) ] in
  stage_table
    ~cols:(List.map (fun (nt, n) -> Printf.sprintf "%dx%d" nt n) combos)
    ~paper_kernels:[ 147.1; 175.0; 308.9 ]
    ~paper_wall:[ 2620.0; 2265.0; 2071.0 ]
    ~paper_kflops:[ 683.0; 861.1; 1136.1 ]
    ~paper_wflops:[ 38.3; 66.5; 169.5 ]
    (List.map
       (fun (_, n) -> Harness.Runners.bs P.QD Device.v100 ~dim:20480 ~tile:n)
       combos)

let table10 () =
  title "Table 10"
    "least squares solving in four precisions, 1024x1024, 8 tiles of 128";
  let precisions = [ P.D; P.DD; P.QD; P.OD ] in
  let specs =
    [
      ( Device.rtx2080,
        [ 327.4; 4082.2; 36128.9; 164626.8 ],
        [ 1.7; 20.8; 192.0; 895.1 ],
        [ 145.6; 251.0; 280.3; 291.3 ] );
      ( Device.p100,
        [ 268.9; 707.8; 5193.0; 20508.2 ],
        [ 4.0; 7.5; 40.8; 181.8 ],
        [ 175.6; 1439.9; 1945.5; 2330.1 ] );
      ( Device.v100,
        [ 157.9; 451.1; 3020.6; 11924.5 ],
        [ 2.0; 4.0; 28.0; 114.5 ],
        [ 299.6; 2262.9; 3340.0; 4004.4 ] );
    ]
  in
  List.iter
    (fun (d, pqr, pbs, pkf) ->
      pf "\n-- times on the %s --\n" d.Device.name;
      let runs =
        List.map (fun p -> Harness.Runners.solve p d ~n:1024 ~tile:128) precisions
      in
      let qr_of r = Harness.Report.part r Harness.Runners.qr_part in
      let bs_of r = Harness.Report.part r Harness.Runners.bs_part in
      header "stage" (List.map P.label precisions);
      row ~paper:pqr "QR kernel time"
        (List.map (fun r -> (qr_of r).Harness.Report.Part.kernel_ms) runs);
      row "QR wall time"
        (List.map (fun r -> (qr_of r).Harness.Report.Part.wall_ms) runs);
      row ~paper:pbs "BS kernel time"
        (List.map (fun r -> (bs_of r).Harness.Report.Part.kernel_ms) runs);
      row "BS wall time"
        (List.map (fun r -> (bs_of r).Harness.Report.Part.wall_ms) runs);
      row "QR kernel flops"
        (List.map (fun r -> (qr_of r).Harness.Report.Part.kernel_gflops) runs);
      row "QR wall flops"
        (List.map (fun r -> (qr_of r).Harness.Report.Part.wall_gflops) runs);
      row "BS kernel flops"
        (List.map (fun r -> (bs_of r).Harness.Report.Part.kernel_gflops) runs);
      row "BS wall flops"
        (List.map (fun r -> (bs_of r).Harness.Report.Part.wall_gflops) runs);
      row ~paper:pkf "total kernel flops"
        (List.map (fun r -> r.Harness.Report.kernel_gflops) runs);
      row "total wall flops"
        (List.map (fun r -> r.Harness.Report.wall_gflops) runs);
      (match runs with
      | [ _; _; qd; _ ] ->
        pf "QR/BS kernel-time ratio at 4d: %.0f (paper: ~108, i.e. closer \
            to 100 than 1000)\n"
          ((qr_of qd).Harness.Report.Part.kernel_ms
          /. (bs_of qd).Harness.Report.Part.kernel_ms)
      | _ -> ()))
    specs

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper                                          *)
(* ------------------------------------------------------------------ *)

let ablation_tiles () =
  title "Ablation A" "tile size sweep, quad double QR at 1024 on the V100";
  let tiles = [ 32; 64; 128; 256 ] in
  header "tile" (List.map string_of_int tiles);
  let runs =
    List.map (fun t -> Harness.Runners.qr P.QD Device.v100 ~n:1024 ~tile:t) tiles
  in
  row "all kernels" (List.map (fun r -> r.Harness.Report.kernel_ms) runs);
  row "wall clock" (List.map (fun r -> r.Harness.Report.wall_ms) runs);
  row "kernel flops" (List.map (fun r -> r.Harness.Report.kernel_gflops) runs);
  row "launches"
    (List.map (fun r -> float_of_int r.Harness.Report.launches) runs)

let ablation_roofline () =
  title "Ablation B" "arithmetic intensity of the register-loading product";
  pf "flops per byte of an n-length inner product, by precision:\n";
  List.iter
    (fun p ->
      let flops_pair = P.add_flops p + P.mul_flops p in
      let bytes = 2 * P.bytes p in
      pf "  %-3s %8.2f flops/byte" (P.label p)
        (float_of_int flops_pair /. float_of_int bytes);
      pf "\n")
    [ P.D; P.DD; P.QD; P.OD ];
  pf "device ridge points (flops/byte at which compute catches memory):\n";
  List.iter
    (fun d -> pf "  %-10s %8.2f\n" d.Device.name (Cost.ridge d))
    Device.catalog;
  pf
    "double stays under every ridge (memory bound); octo double clears \
     them all (compute bound) — the CGMA argument of the paper.\n"

let ablation_occupancy () =
  title "Ablation C" "occupancy model: blocks/threads vs achieved fraction";
  header "blocks" (List.map string_of_int [ 1; 8; 40; 80; 160; 640 ]);
  List.iter
    (fun threads ->
      row
        (Printf.sprintf "threads=%d" threads)
        (List.map
           (fun blocks -> Cost.occupancy Device.v100 ~blocks ~threads)
           [ 1; 8; 40; 80; 160; 640 ]))
    [ 32; 128; 256 ]

let ablation_binding () =
  title "Ablation D"
    "which roofline term binds the YWT*C kernel (first tile, V100)";
  pf "%-6s %8s %12s %12s %12s %10s\n" "prec" "dim" "compute ms" "dram ms"
    "cache ms" "binding";
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          (* The k = 0 trailing update: rows = n, inner = n,
             trail = n - 128, one thread per output element. *)
          let tile = 128 in
          let trail = n - tile in
          let sb = float_of_int (8 * P.limbs p) in
          let f = float_of_int in
          let total = n * trail in
          let ops =
            Counter.make
              ~adds:(f n *. f trail *. f n)
              ~muls:(f n *. f trail *. f n)
              ()
          in
          let l =
            Cost.launch
              ~blocks:((total + tile - 1) / tile)
              ~threads:tile ~strided:true
              ~cold_bytes:(((f n *. f n) +. (f n *. f trail) +. f total) *. sb)
              ~thread_bytes:(2.0 *. f n *. f total *. sb)
              ~working_set:(f n *. f n *. 8.0)
              ops
          in
          let c, d, ca, b = Cost.terms Device.v100 p l in
          pf "%-6s %8d %12.1f %12.1f %12.1f %10s\n" (P.label p) n c d ca
            (Cost.binding_name b))
        [ 512; 1024; 1536; 2048 ])
    [ P.DD; P.QD; P.OD ];
  pf
    "(once the trailing panel of R spills the L2, the strided re-reads \
     dominate 2d compute ~35x but 4d/8d only ~3-7x: why the double \
     double drop of Table 6 is sharp while quad/octo double merely \
     bend)\n"

let ablation_refinement () =
  title "Ablation E"
    "mixed-precision iterative refinement vs direct high precision (n=128)";
  let module R = Lsq_core.Refine.Make (Multidouble.Double_double) (Multidouble.Quad_double) in
  let module Direct = Lsq_core.Least_squares.Make (R.KH) in
  let module MH = R.MH in
  let module VH = R.VH in
  let module RandH = Mdlinalg.Randmat.Make (R.KH) in
  let rng = Dompool.Prng.create 1771 in
  let n = 128 in
  let a = RandH.matrix rng n n in
  let a =
    MH.init n n (fun i j ->
        if i = j then
          Multidouble.Quad_double.add (MH.get a i j)
            (Multidouble.Quad_double.of_int 8)
        else MH.get a i j)
  in
  let x_true = RandH.vector rng n in
  let b = MH.matvec a x_true in
  let err x =
    Multidouble.Quad_double.to_float (VH.norm (VH.sub x x_true))
    /. Multidouble.Quad_double.to_float (VH.norm x_true)
  in
  let t0 = Unix.gettimeofday () in
  let refined = R.solve ~a ~b ~tile:32 () in
  let t1 = Unix.gettimeofday () in
  let direct = Direct.solve ~device:Device.v100 ~a ~b ~tile:32 () in
  let t2 = Unix.gettimeofday () in
  pf "%-28s %16s %16s %14s\n" "method" "QR kernels (ms)" "fwd error"
    "host time (s)";
  pf "%-28s %16.3f %16.2e %14.2f\n"
    (Printf.sprintf "dd factor + %d refinements" refined.R.iterations)
    refined.R.qr_kernel_ms (err refined.R.x) (t1 -. t0);
  pf "%-28s %16.3f %16.2e %14.2f\n" "direct qd factor"
    direct.Direct.qr_kernel_ms (err direct.Direct.x) (t2 -. t1);
  pf
    "(same quad double accuracy, with the factorization flops paid in \
     double double — the modeled device time ratio matches the ~7x \
     overhead factor of Table 4)\n"

let ablation_naive_bs () =
  title "Ablation F"
    "Algorithm 1 vs classic back substitution on the device (qd, V100)";
  let module Naive = Lsq_core.Naive_back_sub.Make (Mdlinalg.Scalar.Qd) in
  let module Tiled = Lsq_core.Tiled_back_sub.Make (Mdlinalg.Scalar.Qd) in
  pf "%-8s %18s %18s %14s %14s\n" "dim" "tiled kernels ms" "naive kernels ms"
    "tiled lnch" "naive lnch";
  List.iter
    (fun dim ->
      let tiled = Tiled.run_plan ~device:Device.v100 ~dim ~tile:(dim / 80) () in
      let naive = Naive.run_plan ~device:Device.v100 ~dim () in
      pf "%-8d %18.1f %18.1f %14d %14d\n" dim tiled.Tiled.kernel_ms
        naive.Naive.kernel_ms tiled.Tiled.launches naive.Naive.launches)
    [ 2560; 5120; 10240 ];
  pf
    "(replacing the final division by a multiplication with precomputed \
     tile inverses collapses the launch count from 2 dim to N(N+1)/2+1 \
     and keeps whole blocks busy — the design choice of Algorithm 1)\n"

let ablation_host_vs_device () =
  title "Ablation G"
    "multicore host (measured) vs simulated V100 (modeled), dd QR n=192";
  let module B = Mdlinalg.Par_blas.Make (Mdlinalg.Scalar.Dd) in
  let module Rand = Mdlinalg.Randmat.Make (Mdlinalg.Scalar.Dd) in
  let rng = Dompool.Prng.create 8192 in
  let n = 192 in
  let a = Rand.matrix rng n n in
  let t0 = Unix.gettimeofday () in
  let q, r = B.qr_factor a in
  let host_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  ignore q;
  ignore r;
  let dev = Harness.Runners.qr P.DD Device.v100 ~n ~tile:32 in
  pf "%-34s %14.1f ms\n"
    (Printf.sprintf "host Householder QR (%d domains)"
       (Dompool.Domain_pool.size (Dompool.Domain_pool.get_default ())))
    host_ms;
  pf "%-34s %14.1f ms (model)\n" "simulated V100, Algorithm 2"
    dev.Harness.Report.kernel_ms;
  pf
    "(the accelerator's edge grows cubically with the dimension; at \
     1,024 the gap is the paper's 'GPU acceleration offsets the \
     overhead of multiple doubles' argument)\n"

let ablation_application () =
  title "Ablation H"
    "application: homotopy continuation, device time per precision";
  let module Build (R : Multidouble.Md_sig.S) = struct
    module S = Mdseries.Solve.Make (R)
    module Pp = Mdseries.Poly_parser.Make (S.K)

    let run () =
      let sys, _ =
        Pp.parse_system
          ~iunit:(S.K.of_floats 0.0 1.0)
          "x^2 + y^2 - 4; x y - 1"
      in
      let t0 = Unix.gettimeofday () in
      let r = S.solve sys in
      let host_s = Unix.gettimeofday () -. t0 in
      (List.length (S.distinct r.S.solutions), r.S.paths, host_s)
  end in
  pf "%-16s %10s %8s %14s\n" "precision" "solutions" "paths" "host time (s)";
  let line (name, (sols, paths, host_s)) =
    pf "%-16s %10d %8d %14.2f\n" name sols paths host_s
  in
  let module B1 = Build (Multidouble.Float_double) in
  line ("double", B1.run ());
  let module B2 = Build (Multidouble.Double_double) in
  line ("double double", B2.run ());
  let module B4 = Build (Multidouble.Quad_double) in
  line ("quad double", B4.run ());
  pf
    "(all four solutions of the conic intersection are found at every \
     precision; the residual floor scales with the working eps, cf. the \
     path_tracker example)\n"

let ablation_thin () =
  title "Ablation I"
    "full-Q solver (the paper's pipeline) vs thin xGELS-style solver";
  let module Ls = Lsq_core.Least_squares.Make (Mdlinalg.Scalar.Qd) in
  pf "%-8s %18s %18s %10s\n" "dim" "full QR (ms)" "thin QR (ms)" "saving";
  List.iter
    (fun n ->
      let full = Ls.plan ~device:Device.v100 ~rows:n ~cols:n ~tile:128 () in
      let thin =
        Ls.plan_thin ~device:Device.v100 ~rows:n ~cols:n ~tile:128 ()
      in
      pf "%-8d %18.1f %18.1f %9.1f%%\n" n full.Ls.qr_kernel_ms
        thin.Ls.qr_kernel_ms
        (100.0 *. (1.0 -. (thin.Ls.qr_kernel_ms /. full.Ls.qr_kernel_ms))))
    [ 512; 1024; 2048 ];
  pf
    "(the paper accumulates the full M-by-M Q — its Q*WY^T kernel is the \
     biggest matrix product; applying the reflectors to b instead removes \
     it when only the solution is wanted)\n"

let ablation_stability () =
  title "Ablation J"
    "why Householder QR: forward error vs the normal equations";
  let module Run (R : Multidouble.Md_sig.S) = struct
    module K = Mdlinalg.Scalar.Real (R)
    module M = Mdlinalg.Mat.Make (K)
    module V = Mdlinalg.Vec.Make (K)
    module Qr = Mdlinalg.Host_qr.Make (K)
    module Ch = Mdlinalg.Cholesky.Make (K)

    let errors () =
      (* a Vandermonde fit, condition ~1e8: the normal equations square
         it while QR does not *)
      let m = 20 and n = 12 in
      let point i = R.div (R.of_int (i + 1)) (R.of_int m) in
      let a =
        M.init m n (fun i k ->
            let rec pow acc e =
              if e = 0 then acc else pow (R.mul acc (point i)) (e - 1)
            in
            pow R.one k)
      in
      let x_true = V.init n (fun i -> R.of_int (i + 1)) in
      let b = M.matvec a x_true in
      let err x =
        R.to_float (V.norm (V.sub x x_true)) /. R.to_float (V.norm x_true)
      in
      (err (Qr.least_squares a b), err (Ch.least_squares a b))
  end in
  pf "%-16s %16s %22s\n" "precision" "QR fwd error" "normal eqns fwd error";
  let line (name, (qr, ne)) = pf "%-16s %16.1e %22.1e\n" name qr ne in
  let module R1 = Run (Multidouble.Float_double) in
  line ("double", R1.errors ());
  let module R2 = Run (Multidouble.Double_double) in
  line ("double double", R2.errors ());
  let module R4 = Run (Multidouble.Quad_double) in
  line ("quad double", R4.errors ());
  pf
    "(the normal equations square the condition number, losing roughly \
     twice the digits — the reason the paper's solver is built on the \
     numerically stable Householder QR [4, Thm 3.5])\n"
