(* Chaos smoke: the resilience-plane regression gate.

   Four phases, all seeded and deterministic, exiting 1 on any broken
   invariant and writing BENCH_chaos.json:

   1. Chaos campaign + crash/resume.  A crash+hang+brownout campaign
      (seed searched deterministically so all three kinds strike the
      8-instance pool) runs under a write-ahead journal, with the serve
      process "killed" mid-campaign: only part of the stream was
      submitted, only part of the settled outcomes reached the client,
      and the journal tail is torn.  A resumed run replays the journal
      and finishes the stream.  Gates: every job yields exactly one
      schema-valid outcome line across the union of both runs, replayed
      lines are byte-identical, migrated jobs carry their migration
      trail, and the final journal replay shows every job committed.

   2. Hedged execution.  A straggler (failure-injected job sleeping in
      retry backoff) on a two-instance pool must get a duplicate, the
      ticket must settle exactly once with the hedge flag, and the
      byte-equality check must record zero mismatches.  (In this
      simulated world stragglers are deterministic, so the duplicate
      reproduces the straggle and the original usually wins — the win
      rate is recorded, not gated.)

   3. Circuit breakers.  Poison jobs (every attempt fails) must open an
      instance breaker; after the cool-off, healthy traffic must probe
      it half-open and close it.

   4. Overhead.  The full resilience plane armed but quiet (chaos drawn
      at rate 0, hedging enabled with an unreachable floor, breakers
      on) must cost <= 1.10x the wall time of a plain fleet on the same
      batch (min of 5 runs each). *)

module P = Multidouble.Precision
module D = Gpusim.Device
module Json = Harness.Json
module Job = Sched.Job
module F = Sched.Fleet
module S = Sched.Scheduler
module Jn = Sched.Journal
module Chaos = Fault.Chaos
module M = Obs.Metrics

let pf = Printf.printf
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let counter name =
  M.Counter.value (M.counter (M.default ()) name)

let solve ?(device = "auto") ?inject_failures ?retries ~id () =
  Job.make ?inject_failures ?retries ~id ~kind:Job.Solve ~device ~prec:P.DD
    ~dim:512 ~tile:64 ()

(* ---- phase 1: chaos campaign with crash + resume ---- *)

(* The campaign must exercise all three chaos kinds on the 8-instance
   default pool; [Chaos.draw] is pure, so search seeds until one deals
   at least one crash, one hang, one brownout and leaves at least two
   instances healthy.  Deterministic: the search always lands on the
   same seed. *)
let campaign_seed () =
  let pool_size = 8 in
  let rec go seed =
    if seed > 10_000 then fail "chaos-smoke: no campaign seed found"
    else
      let cfg =
        Chaos.config ~seed ~rate:0.45 ~after_jobs:(0, 2) ()
      in
      let events =
        List.init pool_size (fun i -> Chaos.draw cfg ~instance:i)
      in
      let t = Chaos.tally_of_events events in
      let struck = t.Chaos.crashes + t.Chaos.hangs + t.Chaos.brownouts in
      if
        t.Chaos.crashes >= 1 && t.Chaos.hangs >= 1 && t.Chaos.brownouts >= 1
        && pool_size - struck >= 2
      then (cfg, t)
      else go (seed + 1)
  in
  go 0

let campaign_jobs n =
  (* Pinned round-robin across the four classes so every instance sees
     traffic (and chaos strikes find work to strand). *)
  let classes = [| "c2050"; "p100"; "v100"; "rtx2080" |] in
  List.init n (fun i ->
      solve ~device:classes.(i mod 4) ~id:(Printf.sprintf "cj-%03d" i) ())

let outcome_line (o : S.outcome) = Json.to_string (S.outcome_to_json o)

let id_of_line line =
  let o = S.outcome_of_json (Json.of_string line) in
  (o.S.job.Job.id, o)

let phase_chaos () =
  let cfg, dealt = campaign_seed () in
  pf "  campaign seed %d: %d crashes, %d hangs, %d brownouts dealt\n"
    cfg.Chaos.seed dealt.Chaos.crashes dealt.Chaos.hangs
    dealt.Chaos.brownouts;
  let journal_path = Filename.temp_file "chaos_bench" ".jsonl" in
  Sys.remove journal_path;
  let jobs = campaign_jobs 64 in
  let total = List.length jobs in
  let submitted_before_crash = 40 and emitted_before_crash = 25 in
  let config =
    {
      F.Config.default with
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 0.5;
      retain_outcomes = false;
      chaos = Some cfg;
    }
  in
  (* Run 1: the process that will "crash".  It admitted (journaled an
     intent for) the whole stream, submitted only a prefix, and the
     client saw only a prefix of the settlements. *)
  let journal = Jn.create journal_path in
  List.iter (fun j -> Jn.intent journal j) jobs;
  let lock = Mutex.create () in
  let run1_lines = ref [] and run1_settled = ref 0 in
  let on_outcome o =
    let line = outcome_line o in
    Mutex.lock lock;
    Jn.commit journal ~job_id:o.S.job.Job.id ~line;
    incr run1_settled;
    if !run1_settled <= emitted_before_crash then
      run1_lines := line :: !run1_lines;
    Mutex.unlock lock
  in
  let t0 = Unix.gettimeofday () in
  let fleet = F.create ~on_outcome config in
  List.iteri
    (fun i job ->
      if i < submitted_before_crash then ignore (F.submit_blocking fleet job))
    jobs;
  F.quiesce fleet;
  F.shutdown fleet;
  let campaign_wall_s = Unix.gettimeofday () -. t0 in
  Jn.close journal;
  let struck =
    List.filter (fun (s : F.stats) -> s.F.state <> "ok") (F.stats fleet)
  in
  if struck = [] then fail "chaos-smoke: no chaos event triggered";
  pf "  run 1: %d/%d submitted, %d settled, %d emitted before the crash\n"
    submitted_before_crash total !run1_settled emitted_before_crash;
  List.iter
    (fun (s : F.stats) -> pf "    struck: %-12s %s\n" s.F.id s.F.state)
    struck;
  if !run1_settled <> submitted_before_crash then
    fail "chaos-smoke: run 1 settled %d of %d submitted jobs" !run1_settled
      submitted_before_crash;
  (* Tear the journal tail, as a crash mid-append would. *)
  let oc =
    open_out_gen [ Open_append; Open_wronly ] 0o644 journal_path
  in
  output_string oc "{\"j\":\"commit\",\"id\":\"torn";
  close_out oc;
  (* Run 2: resume.  Replay re-emits every committed line and returns
     the jobs the crashed process admitted but never settled; the rest
     of the stream then arrives as new submissions.  No chaos this time
     — the replacement process got healthy hardware. *)
  let replayed = Jn.replay journal_path in
  if replayed.Jn.malformed <> 1 then
    fail "chaos-smoke: torn tail not counted (malformed = %d)"
      replayed.Jn.malformed;
  if List.length replayed.Jn.committed <> submitted_before_crash then
    fail "chaos-smoke: replay found %d commits, expected %d"
      (List.length replayed.Jn.committed)
      submitted_before_crash;
  if List.length replayed.Jn.pending <> total - submitted_before_crash then
    fail "chaos-smoke: replay found %d pending intents, expected %d"
      (List.length replayed.Jn.pending)
      (total - submitted_before_crash);
  let journal2 = Jn.create journal_path in
  let run2_lines = ref [] in
  let on_outcome2 o =
    let line = outcome_line o in
    Mutex.lock lock;
    Jn.commit journal2 ~job_id:o.S.job.Job.id ~line;
    run2_lines := line :: !run2_lines;
    Mutex.unlock lock
  in
  let fleet2 =
    F.create ~on_outcome:on_outcome2
      { config with F.Config.chaos = None }
  in
  List.iter (fun (_, line) -> run2_lines := line :: !run2_lines)
    replayed.Jn.committed;
  List.iter
    (fun j -> ignore (F.submit_blocking fleet2 j))
    replayed.Jn.pending;
  F.quiesce fleet2;
  F.shutdown fleet2;
  Jn.close journal2;
  (* The union of what the client saw across the crash: exactly one
     schema-valid line per job, byte-identical where both runs emitted
     the same job. *)
  let union : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let add_line where line =
    match id_of_line line with
    | exception Json.Error m ->
      fail "chaos-smoke: %s emitted an invalid outcome line: %s" where m
    | id, _ -> (
      match Hashtbl.find_opt union id with
      | None -> Hashtbl.replace union id line
      | Some prior when prior = line -> ()
      | Some _ ->
        fail "chaos-smoke: job %s emitted two different outcome lines" id)
  in
  List.iter (add_line "run 1") (List.rev !run1_lines);
  List.iter (add_line "run 2") (List.rev !run2_lines);
  if Hashtbl.length union <> total then
    fail "chaos-smoke: union has %d outcome lines for %d jobs"
      (Hashtbl.length union) total;
  List.iter
    (fun j ->
      if not (Hashtbl.mem union j.Job.id) then
        fail "chaos-smoke: job %s lost across the crash" j.Job.id)
    jobs;
  (* Recovery accounting off the union. *)
  let outcomes =
    Hashtbl.fold (fun _ line acc -> snd (id_of_line line) :: acc) union []
  in
  let migrated =
    List.filter
      (fun o ->
        match o.S.placement with
        | Some p -> p.S.migrations <> []
        | None -> false)
      outcomes
  in
  if migrated = [] then fail "chaos-smoke: no migration trail recorded";
  let quarantined =
    List.length
      (List.filter
         (fun o -> match o.S.status with S.Failed _ -> true | _ -> false)
         outcomes)
  in
  let recovery_rate =
    float_of_int (List.length outcomes - quarantined)
    /. float_of_int (List.length outcomes)
  in
  let migration_wait_ms =
    List.fold_left
      (fun acc o -> acc +. o.S.timing.S.queue_wait_ms)
      0.0 migrated
    /. float_of_int (List.length migrated)
  in
  if recovery_rate < 0.9 then
    fail "chaos-smoke: recovery rate %.2f below 0.9 (%d quarantined)"
      recovery_rate quarantined;
  (* The final journal state: every job committed, nothing pending, the
     torn line still the only malformed one. *)
  let final = Jn.replay journal_path in
  if List.length final.Jn.committed <> total then
    fail "chaos-smoke: final journal has %d commits for %d jobs"
      (List.length final.Jn.committed)
      total;
  if final.Jn.pending <> [] then
    fail "chaos-smoke: final journal still has %d pending intents"
      (List.length final.Jn.pending);
  if final.Jn.malformed <> 1 then
    fail "chaos-smoke: final journal malformed count %d, expected 1"
      final.Jn.malformed;
  (* Replay exactness: every line the first run emitted was re-emitted
     byte-identically by resume (it is committed, and commits replay
     verbatim). *)
  List.iter
    (fun line ->
      let id, _ = id_of_line line in
      match List.assoc_opt id final.Jn.committed with
      | Some line' when line' = line -> ()
      | Some _ -> fail "chaos-smoke: journal line for %s not byte-identical" id
      | None -> fail "chaos-smoke: emitted job %s missing from journal" id)
    !run1_lines;
  Sys.remove journal_path;
  pf
    "  union: %d outcomes, %d migrated, %d quarantined (recovery %.1f%%), \
     mean migrated queue wait %.1f ms\n"
    (List.length outcomes) (List.length migrated) quarantined
    (100.0 *. recovery_rate) migration_wait_ms;
  ( total,
    List.length migrated,
    quarantined,
    recovery_rate,
    migration_wait_ms,
    campaign_wall_s,
    dealt )

(* ---- phase 2: hedged execution ---- *)

let phase_hedge () =
  let launched0 = counter "fleet.hedge.launched" in
  let mismatches0 = counter "fleet.hedge.mismatches" in
  let config =
    {
      F.Config.default with
      pool = [ (None, 2) ];
      max_queue_depth = F.Config.unbounded;
      (* The straggle: one injected failure puts the job into a real
         ~60-120 ms backoff sleep, far past the hedge floor. *)
      backoff_ms = 60.0;
      retain_outcomes = true;
      hedge_ms = Some 5.0;
    }
  in
  let fleet = F.create config in
  let ticket =
    F.submit_blocking fleet
      (solve ~id:"hedge-0" ~inject_failures:1 ~retries:1 ())
  in
  let outcome = F.await fleet ticket in
  F.quiesce fleet;
  F.shutdown fleet;
  let launched = counter "fleet.hedge.launched" - launched0 in
  let wins = counter "fleet.hedge.wins" in
  let mismatches = counter "fleet.hedge.mismatches" - mismatches0 in
  if launched < 1 then fail "chaos-smoke: straggler was never hedged";
  if mismatches <> 0 then
    fail "chaos-smoke: %d hedge byte-equality mismatches" mismatches;
  (match outcome.S.status with
  | S.Completed _ -> ()
  | S.Failed f -> fail "chaos-smoke: hedged job failed: %s" f.S.message);
  (match outcome.S.placement with
  | Some p when p.S.hedged -> ()
  | _ -> fail "chaos-smoke: hedged outcome does not carry the hedge flag");
  let win_rate = float_of_int wins /. float_of_int launched in
  pf "  hedge: %d launched, %d won (the duplicate), 0 mismatches\n" launched
    wins;
  (launched, win_rate)

(* ---- phase 3: circuit breakers ---- *)

let phase_breakers () =
  let opened0 = counter "fleet.breaker.opened" in
  let closed0 = counter "fleet.breaker.closed" in
  let config =
    {
      F.Config.default with
      pool = [ (Some D.v100, 1) ];
      max_queue_depth = F.Config.unbounded;
      backoff_ms = 0.0;
      retain_outcomes = true;
      breakers = true;
    }
  in
  let fleet = F.create config in
  (* Poison: every attempt fails, no retries — consecutive failed
     settlements open the instance's breaker. *)
  let poison =
    List.init 4 (fun i ->
        solve
          ~device:"v100"
          ~id:(Printf.sprintf "poison-%d" i)
          ~inject_failures:99 ~retries:0 ())
  in
  List.iter (fun j -> ignore (F.submit_blocking fleet j)) poison;
  F.quiesce fleet;
  let opened = counter "fleet.breaker.opened" - opened0 in
  if opened < 1 then fail "chaos-smoke: poison jobs did not open the breaker";
  (match F.stats fleet with
  | [ s ] when s.F.breaker = "open" -> ()
  | s ->
    fail "chaos-smoke: breaker state after poison: %s"
      (String.concat "," (List.map (fun (s : F.stats) -> s.F.breaker) s)));
  (* Past the cool-off, healthy traffic probes the breaker half-open and
     closes it again. *)
  Unix.sleepf 0.3;
  let good = List.init 3 (fun i -> solve ~device:"v100" ~id:(Printf.sprintf "good-%d" i) ()) in
  List.iter (fun j -> ignore (F.submit_blocking fleet j)) good;
  F.quiesce fleet;
  F.shutdown fleet;
  let closed = counter "fleet.breaker.closed" - closed0 in
  if closed < 1 then
    fail "chaos-smoke: breaker did not close on the half-open probe";
  (match F.stats fleet with
  | [ s ] when s.F.breaker = "closed" -> ()
  | _ -> fail "chaos-smoke: breaker not closed after healthy traffic");
  pf "  breakers: opened %d, closed %d after cool-off probe\n" opened closed;
  (opened, closed)

(* ---- phase 4: chaos-off overhead ---- *)

let phase_overhead () =
  let jobs =
    List.init 96 (fun i -> solve ~id:(Printf.sprintf "ov-%03d" i) ())
  in
  let time config =
    let best = ref Float.infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      let outcomes = S.run config jobs in
      let dt = Unix.gettimeofday () -. t0 in
      if List.length outcomes <> List.length jobs then
        fail "chaos-smoke: overhead run lost outcomes";
      if dt < !best then best := dt
    done;
    !best
  in
  let plain =
    { F.Config.default with max_queue_depth = F.Config.unbounded }
  in
  (* The whole plane armed but quiet: chaos drawn at rate 0 (supervisor
     running, nothing struck), hedging enabled with an unreachable
     floor, breakers on. *)
  let armed =
    {
      plain with
      F.Config.chaos = Some (Chaos.config ~seed:7 ~rate:0.0 ());
      hedge_ms = Some 1.0e9;
      breakers = true;
    }
  in
  let base_s = time plain in
  let armed_s = time armed in
  let overhead = armed_s /. base_s in
  pf "  overhead: plain %.4f s, armed %.4f s -> %.3fx (budget 1.10x)\n"
    base_s armed_s overhead;
  if overhead > 1.10 then
    fail "chaos-smoke: resilience-plane overhead %.3fx exceeds 1.10x" overhead;
  overhead

let smoke () =
  pf "\n%s\nChaos smoke: device chaos, migration, hedging, breakers, journal\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  M.reset (M.default ());
  let ( total,
        migrated,
        quarantined,
        recovery_rate,
        migration_wait_ms,
        campaign_wall_s,
        dealt ) =
    phase_chaos ()
  in
  let hedges, hedge_win_rate = phase_hedge () in
  let opened, closed = phase_breakers () in
  let overhead = phase_overhead () in
  let json =
    Json.Obj
      [
        ("bench", Json.Str "chaos");
        ("jobs", Json.Int total);
        ("campaign_wall_s", Json.Float campaign_wall_s);
        ( "dealt",
          Json.Obj
            [
              ("crashes", Json.Int dealt.Chaos.crashes);
              ("hangs", Json.Int dealt.Chaos.hangs);
              ("brownouts", Json.Int dealt.Chaos.brownouts);
            ] );
        ("migrated", Json.Int migrated);
        ("quarantined", Json.Int quarantined);
        ("recovery_rate", Json.Float recovery_rate);
        ("migration_queue_wait_ms", Json.Float migration_wait_ms);
        ("journal_replay_exact", Json.Bool true);
        ("hedges_launched", Json.Int hedges);
        ("hedge_win_rate", Json.Float hedge_win_rate);
        ("breaker_opened", Json.Int opened);
        ("breaker_closed", Json.Int closed);
        ("chaos_off_overhead", Json.Float overhead);
      ]
  in
  let path = "BENCH_chaos.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  pf "  [json written to %s]\n" path
