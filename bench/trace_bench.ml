(* Trace/metrics smoke: runs a small batch with the tracer and the
   default metrics registry armed, exports both artifacts, and checks
   that the Chrome trace-event JSON and the metrics snapshot parse with
   [Harness.Json], are non-empty, and carry the mandatory event fields.
   Part of the @bench-smoke regression gate; exits 1 on any mismatch. *)

module P = Multidouble.Precision
module Json = Harness.Json
module Job = Sched.Job
module S = Sched.Scheduler

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let smoke () =
  Printf.printf "\n%s\nTrace/metrics smoke (traced 3-job batch)\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  let jobs =
    [
      Job.make ~id:"trace-qr-v100-2d" ~kind:Job.Qr ~device:"v100" ~prec:P.DD
        ~dim:256 ~tile:32 ();
      Job.make ~id:"trace-bs-v100-4d" ~kind:Job.Backsub ~device:"v100"
        ~prec:P.QD ~dim:256 ~tile:32 ();
      Job.make ~id:"trace-retry" ~kind:Job.Qr ~device:"v100" ~prec:P.DD
        ~dim:128 ~tile:32 ~retries:2 ~inject_failures:1 ();
    ]
  in
  Obs.Metrics.reset (Obs.Metrics.default ());
  Obs.Tracer.start ();
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Obs.Tracer.stop ())
      (fun () -> S.run (S.Config.batch ~parallel:2 ~backoff_ms:0.0 ()) jobs)
  in
  if List.length outcomes <> List.length jobs then
    fail "trace-smoke: %d outcomes for %d jobs" (List.length outcomes)
      (List.length jobs);
  let trace_path = Filename.temp_file "lsq_trace" ".json" in
  let metrics_path = Filename.temp_file "lsq_metrics" ".json" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove trace_path with Sys_error _ -> ());
      try Sys.remove metrics_path with Sys_error _ -> ())
    (fun () ->
      Obs.Tracer.export_file trace_path;
      let oc = open_out metrics_path in
      output_string oc
        (Json.to_string
           (Harness.Obs_io.json_of_metrics
              (Obs.Metrics.snapshot (Obs.Metrics.default ()))));
      output_char oc '\n';
      close_out oc;
      (* The trace must be valid JSON with non-empty traceEvents, and
         every event must carry the mandatory Chrome trace fields. *)
      let trace =
        try Json.of_string (read_file trace_path)
        with Json.Error m -> fail "trace-smoke: trace does not parse: %s" m
      in
      let events = Json.get_list (Json.member "traceEvents" trace) in
      if events = [] then fail "trace-smoke: traceEvents is empty";
      List.iter
        (fun e ->
          let req field =
            match Json.member field e with
            | Json.Null -> fail "trace-smoke: event missing '%s'" field
            | _ -> ()
          in
          List.iter req [ "name"; "ph"; "ts"; "pid"; "tid" ])
        events;
      let has cat =
        List.exists
          (fun e ->
            match Json.member "cat" e with
            | Json.Str c -> c = cat
            | _ -> false)
          events
      in
      List.iter
        (fun cat ->
          if not (has cat) then
            fail "trace-smoke: no '%s' events in the trace" cat)
        [ "kernel"; "sched" ];
      (* The metrics snapshot must parse, be non-empty, and count the
         batch's kernel launches. *)
      let snap =
        try Harness.Obs_io.metrics_of_json (Json.of_string (read_file metrics_path))
        with Json.Error m -> fail "trace-smoke: metrics do not parse: %s" m
      in
      if snap = [] then fail "trace-smoke: metrics snapshot is empty";
      (match List.assoc_opt "sim.launches" snap with
      | Some (Obs.Metrics.Counter n) when n > 0 -> ()
      | Some (Obs.Metrics.Counter n) ->
        fail "trace-smoke: sim.launches = %d, expected > 0" n
      | _ -> fail "trace-smoke: sim.launches counter missing");
      match List.assoc_opt "fleet.completed" snap with
      | Some (Obs.Metrics.Counter n) when n = List.length jobs -> ()
      | _ -> fail "trace-smoke: fleet.completed should equal the batch size");
  Printf.printf
    "trace-smoke: %d events traced, trace and metrics parse and validate\n"
    (Obs.Tracer.event_count ())
