(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section on the simulated devices, runs the
   numerical verification, the ablations, and the bechamel
   micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table4  # a single item
*)

let items : (string * (unit -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ( "table4+figure1",
      fun () ->
        let runs = Tables.table4 () in
        Tables.figure1 runs );
    ("table5", Tables.table5);
    ( "table6+figure2",
      fun () ->
        let runs = Tables.table6 () in
        Tables.figure2 runs );
    ( "table7+figure3",
      fun () ->
        let runs = Tables.table7 () in
        Tables.figure3 runs );
    ( "table8+figure4",
      fun () ->
        let runs = Tables.table8 () in
        Tables.figure4 runs );
    ("table9", Tables.table9);
    ("table10", Tables.table10);
    ("verify", Verify_bench.run);
    ("ablation-tiles", Tables.ablation_tiles);
    ("ablation-roofline", Tables.ablation_roofline);
    ("ablation-binding", Tables.ablation_binding);
    ("ablation-refinement", Tables.ablation_refinement);
    ("ablation-naive-bs", Tables.ablation_naive_bs);
    ("ablation-host-vs-device", Tables.ablation_host_vs_device);
    ("ablation-application", Tables.ablation_application);
    ("ablation-thin", Tables.ablation_thin);
    ("ablation-stability", Tables.ablation_stability);
    ("ablation-occupancy", Tables.ablation_occupancy);
    ("host-bechamel", Host_bench.run);
    ("kernels", Kernels_bench.run);
    ("kernels-smoke", Kernels_bench.smoke);
    ("batch-smoke", Batch_bench.smoke);
    ("trace-smoke", Trace_bench.smoke);
    ("fleet-smoke", Fleet_bench.smoke);
    ("faults", Faults_bench.run);
    ("fault-smoke", Faults_bench.smoke);
    ("telemetry-smoke", Telemetry_bench.smoke);
    ("chaos-smoke", Chaos_bench.smoke);
    ("iter-smoke", Iter_bench.smoke);
  ]

let () =
  let wanted =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> []
  in
  let selected =
    if wanted = [] then items
    else
      List.filter
        (fun (name, _) ->
          List.exists
            (fun w ->
              name = w
              || String.length w <= String.length name
                 && String.sub name 0 (String.length w) = w)
            wanted)
        items
  in
  if selected = [] then begin
    Printf.eprintf "unknown bench; available:\n";
    List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) items;
    exit 1
  end;
  Printf.printf
    "Least squares on (simulated) GPUs in multiple double precision — benchmark harness\n";
  Printf.printf
    "Reproduces the tables and figures of J. Verschelde, IPDPSW 2022 (arXiv:2110.08375).\n";
  List.iter (fun (_, f) -> f ()) selected
