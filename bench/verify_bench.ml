(* Numerical verification section of the benchmark output: executes the
   accelerated algorithms (the same code paths the tables cost) at
   moderate dimensions and reports residuals in units of each precision's
   eps, so a reader can see the kernels are numerically sound and deliver
   the advertised 32/64/128 decimal digits. *)

module P = Multidouble.Precision

let run () =
  Printf.printf
    "\n%s\nNumerical verification (executed on the simulator)\n%s\n"
    (String.make 100 '-') (String.make 100 '-');
  Printf.printf "%-48s %14s %10s\n" "experiment" "residual/eps" "status";
  let d = Gpusim.Device.v100 in
  let report (v : Harness.Report.residual) =
    Printf.printf "%-48s %14.1f %10s\n" v.Harness.Report.what
      v.Harness.Report.residual
      (if v.Harness.Report.ok then "ok" else "FAILED")
  in
  List.iter report
    [
      Harness.Runners.verify_qr P.D d ~n:64 ~tile:16;
      Harness.Runners.verify_qr P.DD d ~n:64 ~tile:16;
      Harness.Runners.verify_qr P.QD d ~n:48 ~tile:16;
      Harness.Runners.verify_qr P.OD d ~n:32 ~tile:8;
      Harness.Runners.verify_qr ~complex:true P.DD d ~n:32 ~tile:8;
      Harness.Runners.verify_qr ~complex:true P.QD d ~n:24 ~tile:8;
      Harness.Runners.verify_bs P.DD d ~dim:96 ~tile:16;
      Harness.Runners.verify_bs P.QD d ~dim:64 ~tile:16;
      Harness.Runners.verify_bs P.OD d ~dim:32 ~tile:8;
      Harness.Runners.verify_solve P.DD d ~n:48 ~tile:16;
      Harness.Runners.verify_solve P.QD d ~n:32 ~tile:8;
      Harness.Runners.verify_solve ~complex:true P.DD d ~n:24 ~tile:8;
    ]
