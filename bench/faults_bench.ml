(* Fault-injection bench: what the fault plane costs and what it
   recovers.

   Two sections, both on the V100 model:

   - overhead: the planned 1024-tile-128 solve with the fault plane
     disarmed and armed at increasing rates.  Armed plan-mode runs pay
     for relaunched kernels and retransfers, so the wall-clock ratio
     against the clean run is the price of the fault plane at that
     rate; the disarmed run must match the clean run exactly.

   - recovery: seeded campaigns of executed fault-tolerant solves
     (Runners.solve_ft) per precision, counting injections, detections,
     replays, escalations and refined runs, and the fraction of runs
     whose final forward error still passes.

     dune exec bench/main.exe -- faults       # full matrix, writes
                                              # BENCH_faults.json
     dune exec bench/main.exe -- fault-smoke  # tiny seeded campaign,
                                              # exits 1 on any miss
*)

module P = Multidouble.Precision
module R = Harness.Runners
module Report = Harness.Report
module Json = Harness.Json

let pf = Printf.printf
let device = Gpusim.Device.v100

(* ---- overhead (plan mode) ---- *)

type overhead_row = {
  o_prec : P.tag;
  o_rate : float;
  o_wall_ms : float;
  o_overhead : float;  (* vs the clean run of the same precision *)
}

let overhead_dim = 1024
let overhead_tile = 128

let overhead_rows () =
  pf "\n%s\n" (String.make 78 '-');
  pf "Fault plane overhead: planned %dx%d tile=%d solve on the %s\n"
    overhead_dim overhead_dim overhead_tile device.Gpusim.Device.name;
  pf "%s\n" (String.make 78 '-');
  pf "%-6s %10s %14s %10s\n" "prec" "rate" "wall ms" "overhead";
  List.concat_map
    (fun prec ->
      let clean = R.solve prec device ~n:overhead_dim ~tile:overhead_tile in
      let clean_ms = clean.Report.wall_ms in
      if clean.Report.faults <> None then begin
        Printf.eprintf "faults bench: clean run carries a fault record\n";
        exit 1
      end;
      List.map
        (fun rate ->
          let wall_ms =
            if rate = 0.0 then clean_ms
            else
              let fault = Fault.Plan.config ~seed:303 ~rate () in
              (R.solve ~fault prec device ~n:overhead_dim ~tile:overhead_tile)
                .Report.wall_ms
          in
          let row =
            {
              o_prec = prec;
              o_rate = rate;
              o_wall_ms = wall_ms;
              o_overhead = wall_ms /. clean_ms;
            }
          in
          pf "%-6s %10g %14.3f %9.4fx\n%!" (P.label prec) rate wall_ms
            row.o_overhead;
          row)
        [ 0.0; 1e-3; 1e-2 ])
    [ P.DD; P.QD; P.OD ]

(* ---- recovery (executed campaigns) ---- *)

type recovery_row = {
  r_prec : P.tag;
  r_runs : int;
  r_rate : float;
  r_injected : int;
  r_detected : int;
  r_replays : int;
  r_escalations : int;
  r_refined_runs : int;
  r_recovered_runs : int;
}

let recovery_dim = 32
let recovery_tile = 8

let campaign ~prec ~runs ~rate ~seed =
  List.init runs (fun i ->
      let fault = Fault.Plan.config ~seed:(seed + i) ~rate () in
      R.solve_ft ~fault prec device ~n:recovery_dim ~tile:recovery_tile)

let recovered (r : Report.t) =
  match r.Report.residual with Some v -> v.Report.ok | None -> false

let recovery_row ~prec ~runs ~rate ~seed =
  let reports = campaign ~prec ~runs ~rate ~seed in
  let tally f r = match r.Report.faults with Some x -> f x | None -> 0 in
  let sum f = List.fold_left (fun acc r -> acc + tally f r) 0 reports in
  {
    r_prec = prec;
    r_runs = runs;
    r_rate = rate;
    r_injected = sum Report.faults_injected;
    r_detected = sum (fun f -> f.Report.detected);
    r_replays =
      sum (fun f ->
          f.Report.relaunches + f.Report.retransfers + f.Report.replays);
    r_escalations = sum (fun f -> f.Report.escalations);
    r_refined_runs =
      List.length
        (List.filter
           (fun r ->
             match r.Report.faults with
             | Some f -> f.Report.refined
             | None -> false)
           reports);
    r_recovered_runs = List.length (List.filter recovered reports);
  }

let recovery_rows () =
  pf "\n%s\n" (String.make 78 '-');
  pf "Fault recovery: executed %dx%d tile=%d fault-tolerant solves\n"
    recovery_dim recovery_dim recovery_tile;
  pf "%s\n" (String.make 78 '-');
  pf "%-6s %6s %8s %9s %9s %8s %6s %8s %10s\n" "prec" "runs" "rate"
    "injected" "detected" "replays" "escal" "refined" "recovered";
  List.concat_map
    (fun prec ->
      List.map
        (fun rate ->
          let r = recovery_row ~prec ~runs:6 ~rate ~seed:500 in
          pf "%-6s %6d %8g %9d %9d %8d %6d %8d %6d/%-3d\n%!" (P.label prec)
            r.r_runs rate r.r_injected r.r_detected r.r_replays
            r.r_escalations r.r_refined_runs r.r_recovered_runs r.r_runs;
          r)
        [ 1e-3; 1e-2 ])
    [ P.DD; P.QD; P.OD ]

(* ---- JSON ---- *)

let json_of_rows overhead recovery =
  Json.Obj
    [
      ("bench", Json.Str "faults");
      ("device", Json.Str device.Gpusim.Device.name);
      ( "overhead",
        Json.Arr
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("prec", Json.Str (P.label o.o_prec));
                   ("dim", Json.Int overhead_dim);
                   ("tile", Json.Int overhead_tile);
                   ("rate", Json.Float o.o_rate);
                   ("wall_ms", Json.Float o.o_wall_ms);
                   ("overhead", Json.Float o.o_overhead);
                 ])
             overhead) );
      ( "recovery",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("prec", Json.Str (P.label r.r_prec));
                   ("dim", Json.Int recovery_dim);
                   ("tile", Json.Int recovery_tile);
                   ("rate", Json.Float r.r_rate);
                   ("runs", Json.Int r.r_runs);
                   ("injected", Json.Int r.r_injected);
                   ("detected", Json.Int r.r_detected);
                   ("replays", Json.Int r.r_replays);
                   ("escalations", Json.Int r.r_escalations);
                   ("refined_runs", Json.Int r.r_refined_runs);
                   ("recovered_runs", Json.Int r.r_recovered_runs);
                   ( "recovery_rate",
                     Json.Float
                       (float_of_int r.r_recovered_runs
                       /. float_of_int r.r_runs) );
                 ])
             recovery) );
    ]

let run () =
  let overhead = overhead_rows () in
  let recovery = recovery_rows () in
  let path = "BENCH_faults.json" in
  let oc = open_out path in
  output_string oc (Json.to_string (json_of_rows overhead recovery));
  output_char oc '\n';
  close_out oc;
  pf "  [json written to %s]\n" path

(* Smoke: a tiny fixed-seed double double campaign.  Every run must
   detect-or-recover (final forward error ok), a second pass must replay
   bit-identically, and a clean run must carry no fault record at all. *)
let smoke () =
  pf "\n%s\n" (String.make 78 '-');
  pf "Fault smoke: seeded campaign, %dx%d tile=%d double double\n"
    recovery_dim recovery_dim recovery_tile;
  pf "%s\n" (String.make 78 '-');
  let runs = 4 and rate = 1e-2 and seed = 11 in
  let pass () = campaign ~prec:P.DD ~runs ~rate ~seed in
  let first = pass () in
  List.iteri
    (fun i r ->
      let inj =
        match r.Report.faults with
        | Some f -> Report.faults_injected f
        | None -> 0
      in
      pf "  run %d (seed %d): %d injected, %s\n" i (seed + i) inj
        (if recovered r then "recovered" else "NOT RECOVERED"))
    first;
  if not (List.for_all recovered first) then begin
    Printf.eprintf "fault-smoke: a faulted run escaped recovery\n";
    exit 1
  end;
  let second = pass () in
  let same =
    List.for_all2
      (fun (a : Report.t) (b : Report.t) ->
        a.Report.faults = b.Report.faults
        && a.Report.residual = b.Report.residual)
      first second
  in
  if not same then begin
    Printf.eprintf "fault-smoke: campaign replay was not bit-identical\n";
    exit 1
  end;
  let clean = R.solve_ft P.DD device ~n:recovery_dim ~tile:recovery_tile in
  if clean.Report.faults <> None then begin
    Printf.eprintf "fault-smoke: clean run carries a fault record\n";
    exit 1
  end;
  if not (recovered clean) then begin
    Printf.eprintf "fault-smoke: clean run failed its residual check\n";
    exit 1
  end;
  pf "  replay bit-identical, clean run fault-free: ok\n%!"
