(* The scalar abstraction over which all linear algebra is written: a real
   or complex multiple double number together with its real subfield (for
   norms, Householder scalars, pivot magnitudes).

   The paper runs the same QR code on real and on complex data, with the
   transpose replaced by the Hermitian transpose (§3); the [conj] and
   [unit_phase] operations make one generic implementation cover both. *)

open Multidouble

module type S = sig
  module R : Md_sig.S

  type t

  val prec : Precision.tag
  val is_complex : bool

  (* Doubles per scalar in the staggered device representation. *)
  val width : int

  (* True when [to_planes]/[of_planes] expose the canonical limb
     representation of an uninstrumented real scalar — the flat
     limb-planar kernels ([Flat_kernels]) may then compute directly on
     staggered planes instead of going through [add]/[mul]. *)
  val flat_ok : bool

  val zero : t
  val one : t
  val of_real : R.t -> t
  val of_float : float -> t
  val re : t -> R.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t

  (* Complex conjugate; the identity on real scalars. *)
  val conj : t -> t

  val scale : t -> R.t -> t
  val mul_float : t -> float -> t

  (* Squared modulus, a real number. *)
  val norm2 : t -> R.t

  val abs : t -> R.t

  (* [unit_phase x] is x/|x| (the sign for reals), or one when x = 0;
     used to pick the stable sign of the Householder reflection. *)
  val unit_phase : t -> t

  val is_zero : t -> bool
  val equal : t -> t -> bool
  val is_finite : t -> bool

  (* Staggered layout: the limbs of the scalar, most significant first
     (real and imaginary parts kept separately for complex data).
     [of_planes] is the exact inverse of [to_planes]: limbs are adopted
     as-is, never renormalized, so a stage/unstage round-trip is
     bit-identical to keeping the boxed value. *)
  val to_planes : t -> float array

  (* [to_planes_into x dst] is [to_planes] writing into a caller-owned
     buffer of [width] doubles — the staging seams convert whole
     matrices, so the per-element allocation matters. *)
  val to_planes_into : t -> float array -> unit

  val of_planes : float array -> t

  (* Uniform random scalar with each component in [-1, 1). *)
  val random : Dompool.Prng.t -> t

  val to_string : ?digits:int -> t -> string
  val pp : Format.formatter -> t -> unit
end

module Real (Rm : Md_sig.S) : S with module R = Rm and type t = Rm.t = struct
  module R = Rm

  type t = Rm.t

  let prec = Precision.of_limbs Rm.limbs
  let is_complex = false
  let width = Rm.limbs
  let flat_ok = not Rm.instrumented
  let zero = Rm.zero
  let one = Rm.one
  let of_real x = x
  let of_float = Rm.of_float
  let re x = x
  let add = Rm.add
  let sub = Rm.sub
  let mul = Rm.mul
  let div = Rm.div
  let neg = Rm.neg
  let conj x = x
  let scale = Rm.mul
  let mul_float = Rm.mul_float
  let norm2 x = Rm.mul x x
  let abs = Rm.abs
  let unit_phase x = if Rm.sign x < 0 then Rm.neg Rm.one else Rm.one
  let is_zero = Rm.is_zero
  let equal = Rm.equal
  let is_finite = Rm.is_finite
  let to_planes = Rm.to_limbs
  let to_planes_into x dst = Rm.blit_limbs x dst 0
  let of_planes = Rm.of_limbs_exact
  let random rng = Rm.of_float (Dompool.Prng.sym_float rng)
  let to_string = Rm.to_string
  let pp = Rm.pp
end

module Complex (Rm : Md_sig.S) = struct
  module C = Md_complex.Make (Rm)
  module R = Rm

  type t = C.t

  let prec = Precision.of_limbs Rm.limbs
  let is_complex = true
  let width = 2 * Rm.limbs

  (* The flat kernels cover real multiple doubles only; complex planes
     interleave real and imaginary limbs and stay on the generic path. *)
  let flat_ok = false
  let zero = C.zero
  let one = C.one
  let of_real = C.of_real
  let of_float = C.of_float

  (* Complex-only constructor from the two components. *)
  let of_floats = C.of_floats
  let re = C.re

  (* Complex-only accessor for the imaginary part. *)
  let im = C.im
  let add = C.add
  let sub = C.sub
  let mul = C.mul
  let div = C.div
  let neg = C.neg
  let conj = C.conj
  let scale = C.scale
  let mul_float = C.mul_float
  let norm2 = C.norm2
  let abs = C.abs

  let unit_phase z =
    let m = C.abs z in
    if Rm.is_zero m then C.one else C.scale z (Rm.div Rm.one m)

  let is_zero z = Rm.is_zero (C.re z) && Rm.is_zero (C.im z)
  let equal = C.equal
  let is_finite = C.is_finite

  let to_planes z =
    Array.append (Rm.to_limbs (C.re z)) (Rm.to_limbs (C.im z))

  let to_planes_into z dst =
    Rm.blit_limbs (C.re z) dst 0;
    Rm.blit_limbs (C.im z) dst Rm.limbs

  let of_planes a =
    C.make
      (Rm.of_limbs_exact (Array.sub a 0 Rm.limbs))
      (Rm.of_limbs_exact (Array.sub a Rm.limbs Rm.limbs))

  let random rng =
    C.make
      (Rm.of_float (Dompool.Prng.sym_float rng))
      (Rm.of_float (Dompool.Prng.sym_float rng))

  let to_string = C.to_string
  let pp = C.pp
end

(* The common instantiations, named so functor applications share types. *)
module D = Real (Float_double)
module Dd = Real (Double_double)
module Qd = Real (Quad_double)
module Od = Real (Octo_double)
module Zd = Complex (Float_double)
module Zdd = Complex (Double_double)
module Zqd = Complex (Quad_double)
module Zod = Complex (Octo_double)
