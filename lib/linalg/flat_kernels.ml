(* Allocation-free limb-planar ("flat") kernels on staggered planes.

   The simulator's hot kernels — the register-loading matrix product, the
   back substitution inner products and their relatives — normally execute
   through a [Scalar.S], boxing one record per multiple double operation.
   At paper-scale dimensions the resulting allocation traffic, not the
   arithmetic, dominates host wall time.

   This module executes the same kernels directly on the staggered
   [float array] planes of [Staggered], using the unrolled double double
   and quad double primitives of [Dd_flat] and [Qd_flat].  Those mirror
   the accurate QDlib algorithms floating point operation for floating
   point operation, so the flat kernels produce results that are limb for
   limb identical to the generic path; the dispatchers in [Blocked_qr] and
   [Tiled_back_sub] exploit that to switch paths on a pure capability
   check ([available]) with no numerical consequences.

   Staging an operand into planes costs O(elements) conversions while a
   matrix product performs O(elements * inner) operations on it, so the
   staging overhead is amortized by the inner dimension; kernels that do
   O(1) work per element (the elementwise additions) are left on the
   generic path, where staging would triple their cost.

   Block-level entry points take the same [blk] argument as the generic
   [Sim.launch] bodies and write the same disjoint index ranges, so they
   are safe under [Domain_pool.parallel_for] without further locking. *)

open Multidouble

(* Global switch, for benchmarks and the equivalence tests; the
   dispatchers consult it through [available]. *)
let enabled = ref true

module Make (K : Scalar.S) = struct
  (* A staged operand: [K.width] planes of rows*cols doubles, row-major —
     the layout of [Staggered], without the [K.t] matrix behind it. *)
  type planes = { rows : int; cols : int; p : float array array }

  (* The flat primitives cover plain real double double and quad double;
     complex and instrumented scalars keep the generic path. *)
  let available () =
    !enabled && K.flat_ok && (not K.is_complex) && (K.width = 2 || K.width = 4)

  let alloc ~rows ~cols =
    { rows; cols; p = Array.init K.width (fun _ -> Array.make (rows * cols) 0.0) }

  let stage ~rows ~cols ~get =
    let t = alloc ~rows ~cols in
    for i = 0 to rows - 1 do
      let base = i * cols in
      for j = 0 to cols - 1 do
        let limbs = K.to_planes (get i j) in
        for pl = 0 to K.width - 1 do
          t.p.(pl).(base + j) <- limbs.(pl)
        done
      done
    done;
    t

  (* [of_limbs] renormalizes, but flat results come out of the same
     renormalization the generic operations end with, so unstaging is the
     identity on them (and on any normalized input). *)
  let unstage t ~store =
    let limbs = Array.make K.width 0.0 in
    for i = 0 to t.rows - 1 do
      let base = i * t.cols in
      for j = 0 to t.cols - 1 do
        for pl = 0 to K.width - 1 do
          limbs.(pl) <- t.p.(pl).(base + j)
        done;
        store i j (K.of_planes limbs)
      done
    done

  let stage_vec ~n ~get = stage ~rows:n ~cols:1 ~get:(fun i _ -> get i)
  let unstage_vec t ~store = unstage t ~store:(fun i _ s -> store i s)

  (* ---- The register-loading matrix product, one [Sim.launch] block:
     output elements [blk*threads, (blk+1)*threads), each a dot product
     of a row of [a] with a column of [b].  Identical operation sequence
     to the generic body ([s := K.add !s (K.mul aik bkj)]). ---- *)

  let matmul_block_dd ~threads (a : planes) (b : planes) (c : planes) blk =
    let total = c.rows * c.cols in
    let lo = blk * threads in
    let hi = min total (lo + threads) in
    if lo < hi then begin
      let ad = Dd_flat.duo a.p and bd = Dd_flat.duo b.p in
      let cd = Dd_flat.duo c.p in
      let acc = Dd_flat.make () in
      let inner = a.cols and cols_o = c.cols and bcols = b.cols in
      (* Running (row, col) pair instead of a division per element. *)
      let i = ref (lo / cols_o) and j = ref (lo mod cols_o) in
      for idx = lo to hi - 1 do
        Dd_flat.clear acc;
        let ai = ref (!i * inner) and bi = ref !j in
        for _k = 0 to inner - 1 do
          Dd_flat.mul_add acc ad !ai bd !bi;
          incr ai;
          bi := !bi + bcols
        done;
        Dd_flat.store acc cd idx;
        incr j;
        if !j = cols_o then begin
          j := 0;
          incr i
        end
      done
    end

  let matmul_block_qd ~threads (a : planes) (b : planes) (c : planes) blk =
    let total = c.rows * c.cols in
    let lo = blk * threads in
    let hi = min total (lo + threads) in
    if lo < hi then begin
      let aq = Qd_flat.quad a.p and bq = Qd_flat.quad b.p in
      let cq = Qd_flat.quad c.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      let inner = a.cols and cols_o = c.cols and bcols = b.cols in
      let i = ref (lo / cols_o) and j = ref (lo mod cols_o) in
      for idx = lo to hi - 1 do
        Qd_flat.clear acc;
        let ai = ref (!i * inner) and bi = ref !j in
        for _k = 0 to inner - 1 do
          Qd_flat.mul_add ctx acc aq !ai bq !bi;
          incr ai;
          bi := !bi + bcols
        done;
        Qd_flat.store acc cq idx;
        incr j;
        if !j = cols_o then begin
          j := 0;
          incr i
        end
      done
    end

  let matmul_block ~threads a b c blk =
    if K.width = 2 then matmul_block_dd ~threads a b c blk
    else matmul_block_qd ~threads a b c blk

  (* ---- Tiled back substitution, stage 2.  [vp] is the full dim-by-dim
     matrix with inverted diagonal tiles, [bdp] the evolving right-hand
     side, [xp] the solution; all three stay staged across the whole
     sweep and only [xp] is unstaged at the end. ---- *)

  (* x_i := U_i^{-1} b_i: row r of the tile at [r0] dots the inverse row
     (upper triangular, columns r..n-1) with the right-hand side tile. *)
  let bs_xi_block ~dim ~r0 ~n (vp : planes) (bdp : planes) (xp : planes) =
    if K.width = 2 then begin
      let vd = Dd_flat.duo vp.p and bd = Dd_flat.duo bdp.p in
      let xd = Dd_flat.duo xp.p in
      let acc = Dd_flat.make () in
      for r = 0 to n - 1 do
        Dd_flat.clear acc;
        let row = (r0 + r) * dim in
        for c = r to n - 1 do
          Dd_flat.mul_add acc vd (row + r0 + c) bd (r0 + c)
        done;
        Dd_flat.store acc xd (r0 + r)
      done
    end
    else begin
      let vq = Qd_flat.quad vp.p and bq = Qd_flat.quad bdp.p in
      let xq = Qd_flat.quad xp.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      for r = 0 to n - 1 do
        Qd_flat.clear acc;
        let row = (r0 + r) * dim in
        for c = r to n - 1 do
          Qd_flat.mul_add ctx acc vq (row + r0 + c) bq (r0 + c)
        done;
        Qd_flat.store acc xq (r0 + r)
      done
    end

  (* b_j := b_j - A_{j,i} x_i: block [rj] subtracts the full n-by-n tile
     product from its right-hand side tile. *)
  let bs_update_block ~dim ~r0 ~rj ~n (vp : planes) (xp : planes)
      (bdp : planes) =
    if K.width = 2 then begin
      let vd = Dd_flat.duo vp.p and xd = Dd_flat.duo xp.p in
      let bd = Dd_flat.duo bdp.p in
      let acc = Dd_flat.make () in
      for r = 0 to n - 1 do
        Dd_flat.clear acc;
        let row = (rj + r) * dim in
        for c = 0 to n - 1 do
          Dd_flat.mul_add acc vd (row + r0 + c) xd (r0 + c)
        done;
        Dd_flat.sub_from bd (rj + r) acc
      done
    end
    else begin
      let vq = Qd_flat.quad vp.p and xq = Qd_flat.quad xp.p in
      let bq = Qd_flat.quad bdp.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      for r = 0 to n - 1 do
        Qd_flat.clear acc;
        let row = (rj + r) * dim in
        for c = 0 to n - 1 do
          Qd_flat.mul_add ctx acc vq (row + r0 + c) xq (r0 + c)
        done;
        Qd_flat.sub_from ctx bq (rj + r) acc
      done
    end

  (* ---- Plane-level microkernels, used by the equivalence tests and the
     kernel benchmark (the dispatchers above are their consumers in
     kernel-shaped form). All write-backs follow the generic argument
     order: [K.add dst src], [K.sub dst src]. ---- *)

  (* out[oidx] := sum_i a[i] * b[i] over n vector elements. *)
  let dot ~n (a : planes) (b : planes) (out : planes) oidx =
    if K.width = 2 then begin
      let ad = Dd_flat.duo a.p and bd = Dd_flat.duo b.p in
      let od = Dd_flat.duo out.p in
      let acc = Dd_flat.make () in
      Dd_flat.clear acc;
      for i = 0 to n - 1 do
        Dd_flat.mul_add acc ad i bd i
      done;
      Dd_flat.store acc od oidx
    end
    else begin
      let aq = Qd_flat.quad a.p and bq = Qd_flat.quad b.p in
      let oq = Qd_flat.quad out.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      Qd_flat.clear acc;
      for i = 0 to n - 1 do
        Qd_flat.mul_add ctx acc aq i bq i
      done;
      Qd_flat.store acc oq oidx
    end

  (* y[i] := y[i] + alpha * x[i]; [alpha] is a staged single element. *)
  let axpy ~n (alpha : planes) (x : planes) (y : planes) =
    if K.width = 2 then begin
      let al = Dd_flat.duo alpha.p and xd = Dd_flat.duo x.p in
      let yd = Dd_flat.duo y.p in
      let acc = Dd_flat.make () in
      for i = 0 to n - 1 do
        Dd_flat.load acc yd i;
        Dd_flat.mul_add acc al 0 xd i;
        Dd_flat.store acc yd i
      done
    end
    else begin
      let al = Qd_flat.quad alpha.p and xq = Qd_flat.quad x.p in
      let yq = Qd_flat.quad y.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      for i = 0 to n - 1 do
        Qd_flat.load acc yq i;
        Qd_flat.mul_add ctx acc al 0 xq i;
        Qd_flat.store acc yq i
      done
    end

  (* a[i, j] := a[i, j] - x[i] * y[j], the Householder panel update. *)
  let rank1_sub (a : planes) (x : planes) (y : planes) =
    if K.width = 2 then begin
      let ad = Dd_flat.duo a.p and xd = Dd_flat.duo x.p in
      let yd = Dd_flat.duo y.p in
      let acc = Dd_flat.make () in
      for i = 0 to a.rows - 1 do
        let base = i * a.cols in
        for j = 0 to a.cols - 1 do
          Dd_flat.mul_set acc xd i yd j;
          Dd_flat.sub_from ad (base + j) acc
        done
      done
    end
    else begin
      let aq = Qd_flat.quad a.p and xq = Qd_flat.quad x.p in
      let yq = Qd_flat.quad y.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      for i = 0 to a.rows - 1 do
        let base = i * a.cols in
        for j = 0 to a.cols - 1 do
          Qd_flat.mul ctx acc xq i yq j;
          Qd_flat.sub_from ctx aq (base + j) acc
        done
      done
    end

  (* dst[i] := dst[i] + src[i], elementwise over whole planes (kept on
     the generic path in the dispatchers; here for tests and bench). *)
  let ewadd (dst : planes) (src : planes) =
    let total = dst.rows * dst.cols in
    if K.width = 2 then begin
      let dd = Dd_flat.duo dst.p and sd = Dd_flat.duo src.p in
      let acc = Dd_flat.make () in
      for i = 0 to total - 1 do
        Dd_flat.load acc dd i;
        Dd_flat.add acc sd i;
        Dd_flat.store acc dd i
      done
    end
    else begin
      let dq = Qd_flat.quad dst.p and sq = Qd_flat.quad src.p in
      let ctx = Qd_flat.make_ctx () in
      let acc = Array.make 4 0.0 in
      let tmp = Array.make 4 0.0 in
      for i = 0 to total - 1 do
        Qd_flat.load acc dq i;
        Qd_flat.load tmp sq i;
        Qd_flat.add ctx acc tmp;
        Qd_flat.store acc dq i
      done
    end
end
