(* Allocation-free limb-planar ("flat") kernels on staggered planes.

   The simulator's hot kernels — the register-loading matrix product, the
   back substitution inner products and their relatives — normally execute
   through a [Scalar.S], boxing one record per multiple double operation.
   At paper-scale dimensions the resulting allocation traffic, not the
   arithmetic, dominates host wall time.

   This module executes the same kernels directly on staggered limb
   planes ([Nd_flat.planes]: one flat [Bigarray] of float64 words per
   limb), through the limb-generic [Nd_flat.plan] record: precision
   selection happens exactly once, at functor application, when the plan
   is resolved from the limb count — every kernel below is written once
   against the record, for any supported width (double double, quad
   double, octo double, and any future Expansion precision alike).  The
   plan's engines replay the boxed operation sequences floating point
   operation for floating point operation, so the flat kernels produce
   results that are limb for limb identical to the generic path; the
   solvers exploit that to switch paths on a pure capability check
   ([available]) with no numerical consequences.

   The matrix product and the back substitution panel update run as
   register-tiled, cache-blocked microkernels.  The tile geometry comes
   from the cost model: NR = 8 output columns per micro-tile (one 64-byte
   line of each B limb plane), KC chosen so the B panel of a chunk
   (KC * NR elements * width limbs * 8 bytes, double-buffered) fits in a
   32 KiB L1 slice — 128 for double double, 64 for quad double, 32 for
   octo double.  Each of the NR lanes owns its own kernel context, so a
   lane's operation sequence is exactly the untiled per-element sequence
   (clear, ascending-k multiply-accumulate, store); spilling the partial
   accumulator to the C planes between KC chunks is a plain limb copy in
   both directions, so tiling preserves bit-identity.  What tiling buys
   is locality: the inner loop walks a row of B unit-stride across the
   lanes (the untiled loop walked B with column stride) and reuses each
   A element NR times and each B panel across every row of the block.

   Staging an operand into planes costs O(elements) conversions while a
   matrix product performs O(elements * inner) operations on it, so the
   staging overhead is amortized by the inner dimension; kernels that do
   O(1) work per element (the elementwise additions) are left on the
   generic path, where staging would triple their cost.

   Block-level entry points take the same [blk] argument as the generic
   [Sim.launch] bodies and write the same disjoint index ranges, so they
   are safe under [Domain_pool.parallel_for] without further locking. *)

open Multidouble

(* Global switch, for benchmarks and the equivalence tests; the solvers
   consult it through [available]. *)
let enabled = ref true

(* The register-tile geometry and its per-tile operation/traffic counts,
   for the roofline classification of the microkernels (computed here
   because [Obs] deliberately knows nothing about precisions). *)
type tile = {
  mr : int; (* output rows per micro-tile *)
  nr : int; (* output columns per micro-tile (lanes) *)
  kc : int; (* inner-dimension chunk per cache block *)
  flops : float; (* double precision flops of one full tile *)
  bytes : float; (* bytes moved by one full tile (A, B panels + C spill) *)
}

module Make (K : Scalar.S) = struct
  (* A staged operand: [K.width] planes of rows*cols doubles, row-major —
     the layout of [Staggered], without the [K.t] matrix behind it. *)
  type planes = { rows : int; cols : int; p : Nd_flat.planes }

  (* THE dispatch point: the kernel-ops record for this scalar's limb
     count, resolved here and nowhere else.  [None] only for widths
     without a flat engine (plain double). *)
  let plan = Nd_flat.plan ~limbs:K.width

  (* The flat plane covers every real uninstrumented multiple double
     precision with a plan; complex and instrumented scalars keep the
     generic path. *)
  let available () =
    !enabled && K.flat_ok && (not K.is_complex) && Option.is_some plan

  let the_plan () =
    match plan with
    | Some p -> p
    | None ->
        invalid_arg
          (Printf.sprintf "Flat_kernels: no flat plan for width %d" K.width)

  (* Tile geometry from the cost model (see the header comment).  One
     full tile performs mr*nr*kc fused multiply-accumulates, each one
     multiple double mul + add (Table 1 flops), and moves the A column
     strip, the B panel and the C micro-tile (in and out) once. *)
  let nr_tile = 8
  let kc_tile = max 16 (32768 / (2 * nr_tile * K.width * 8))

  let tile =
    let mr = 1 and nr = nr_tile and kc = kc_tile in
    let fma =
      Precision.add_flops K.prec + Precision.mul_flops K.prec
    in
    {
      mr;
      nr;
      kc;
      flops = float_of_int (mr * nr * kc * fma);
      bytes =
        float_of_int (((mr * kc) + (kc * nr) + (2 * mr * nr)) * K.width * 8);
    }

  let alloc ~rows ~cols =
    { rows; cols; p = Nd_flat.make_planes ~limbs:K.width (rows * cols) }

  let stage ~rows ~cols ~get =
    let t = alloc ~rows ~cols in
    let limbs = Array.make K.width 0.0 in
    for i = 0 to rows - 1 do
      let base = i * cols in
      for j = 0 to cols - 1 do
        K.to_planes_into (get i j) limbs;
        for pl = 0 to K.width - 1 do
          Nd_flat.set t.p pl (base + j) limbs.(pl)
        done
      done
    done;
    t

  (* [of_limbs] renormalizes, but flat results come out of the same
     renormalization the generic operations end with, so unstaging is the
     identity on them (and on any normalized input).  [K.of_planes]
     copies its argument, so the limb buffer is safely reused. *)
  let unstage t ~store =
    let limbs = Array.make K.width 0.0 in
    for i = 0 to t.rows - 1 do
      let base = i * t.cols in
      for j = 0 to t.cols - 1 do
        for pl = 0 to K.width - 1 do
          limbs.(pl) <- Nd_flat.get t.p pl (base + j)
        done;
        store i j (K.of_planes limbs)
      done
    done

  let stage_vec ~n ~get = stage ~rows:n ~cols:1 ~get:(fun i _ -> get i)
  let unstage_vec t ~store = unstage t ~store:(fun i _ s -> store i s)

  (* Read element [i] of a staged vector back as a boxed scalar (probe
     reads for verification; the hot paths never box). *)
  let read_el (t : planes) i =
    K.of_planes (Array.init K.width (fun pl -> Nd_flat.get t.p pl i))

  (* ---- The register-loading matrix product, one [Sim.launch] block:
     output elements [blk*threads, (blk+1)*threads), each a dot product
     of a row of [a] with a column of [b].  Identical operation sequence
     per element to the generic body ([s := K.add !s (K.mul aik bkj)]),
     executed as the tiled microkernel described in the header: KC
     chunks outermost (the B panel of a chunk stays cache resident
     across every row of the block), then rows, then NR-lane column
     tiles, each lane accumulating in its own context.  Partial sums
     spill to the C planes between chunks — an exact limb copy. ---- *)

  let matmul_block ~threads (a : planes) (b : planes) (c : planes) blk =
    let total = c.rows * c.cols in
    let lo = blk * threads in
    let hi = min total (lo + threads) in
    if lo < hi then begin
      let { Nd_flat.make_ctx; clear; load; mul_add; store; _ } = the_plan () in
      let ap = a.p and bp = b.p and cp = c.p in
      let inner = a.cols and cols_o = c.cols and bcols = b.cols in
      let ctxs = Array.init nr_tile (fun _ -> make_ctx ()) in
      if inner = 0 then begin
        (* Degenerate product: every output is the empty sum. *)
        let ctx = ctxs.(0) in
        for idx = lo to hi - 1 do
          clear ctx;
          store ctx cp idx
        done
      end
      else begin
        let row_lo = lo / cols_o and row_hi = (hi - 1) / cols_o in
        let k0 = ref 0 in
        while !k0 < inner do
          let khi = min inner (!k0 + kc_tile) in
          for i = row_lo to row_hi do
            let jstart = if i = row_lo then lo mod cols_o else 0 in
            let jstop =
              if i = row_hi then ((hi - 1) mod cols_o) + 1 else cols_o
            in
            let abase = i * inner and cbase = i * cols_o in
            let j0 = ref jstart in
            while !j0 < jstop do
              let nl = min nr_tile (jstop - !j0) in
              if !k0 = 0 then
                for l = 0 to nl - 1 do
                  clear (Array.unsafe_get ctxs l)
                done
              else
                for l = 0 to nl - 1 do
                  load (Array.unsafe_get ctxs l) cp (cbase + !j0 + l)
                done;
              for k = !k0 to khi - 1 do
                let ai = abase + k and bbase = (k * bcols) + !j0 in
                for l = 0 to nl - 1 do
                  mul_add (Array.unsafe_get ctxs l) ap ai bp (bbase + l)
                done
              done;
              for l = 0 to nl - 1 do
                store (Array.unsafe_get ctxs l) cp (cbase + !j0 + l)
              done;
              j0 := !j0 + nl
            done
          done;
          k0 := khi
        done
      end
    end

  (* The solver-facing matrix product: one entry point, both paths.  The
     caller computes the modeled device cost (identical on both paths —
     only the host execution differs) and passes the launch as a
     closure; this function decides the path.  The flat path stages both
     operands into limb planes once (O(total) conversions against
     O(total * inner) kernel operations) and runs the allocation-free
     plane kernels, limb for limb identical to the generic loop. *)
  let matmul ~execute ~threads ~rows_o ~cols_o ~inner ~geta ~getb ~store
      ~launch =
    if execute && available () then begin
      let a = stage ~rows:rows_o ~cols:inner ~get:geta in
      let b = stage ~rows:inner ~cols:cols_o ~get:getb in
      let c = alloc ~rows:rows_o ~cols:cols_o in
      launch (fun blk -> matmul_block ~threads a b c blk);
      unstage c ~store
    end
    else
      launch (fun blk ->
          let total = rows_o * cols_o in
          let lo = blk * threads in
          let hi = min total (lo + threads) in
          (* Running (row, col) pair instead of a div/mod per element. *)
          let i = ref (lo / cols_o) and j = ref (lo mod cols_o) in
          for _idx = lo to hi - 1 do
            let s = ref K.zero in
            for k = 0 to inner - 1 do
              s := K.add !s (K.mul (geta !i k) (getb k !j))
            done;
            store !i !j !s;
            incr j;
            if !j = cols_o then begin
              j := 0;
              incr i
            end
          done)

  (* ---- Tiled back substitution, stage 2.  [vp] is the full dim-by-dim
     matrix with inverted diagonal tiles, [bdp] the evolving right-hand
     side, [xp] the solution; all three stay staged across the whole
     sweep and only [xp] is unstaged at the end. ---- *)

  (* x_i := U_i^{-1} b_i: row r of the tile at [r0] dots the inverse row
     (upper triangular, columns r..n-1) with the right-hand side tile. *)
  let bs_xi_block ~dim ~r0 ~n (vp : planes) (bdp : planes) (xp : planes) =
    let { Nd_flat.make_ctx; clear; mul_add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    let v = vp.p and bd = bdp.p and x = xp.p in
    for r = 0 to n - 1 do
      clear ctx;
      let row = (r0 + r) * dim in
      for c = r to n - 1 do
        mul_add ctx v (row + r0 + c) bd (r0 + c)
      done;
      store ctx x (r0 + r)
    done

  (* b_j := b_j - A_{j,i} x_i: block [rj] subtracts the full n-by-n tile
     product from its right-hand side tile.  The panel update runs as an
     MR-laned microkernel: up to [nr_tile] rows accumulate side by side,
     each in its own context, so one read of x[r0 + c] feeds every lane
     while the lanes walk their own rows of [v] — the same x reuse the
     matrix product gets from its B panel.  Per row the sequence is
     still clear, ascending-c multiply-accumulate, subtract: identical
     to the untiled loop. *)
  let bs_update_block ~dim ~r0 ~rj ~n (vp : planes) (xp : planes)
      (bdp : planes) =
    let { Nd_flat.make_ctx; clear; mul_add; sub_from; _ } = the_plan () in
    let ctxs = Array.init nr_tile (fun _ -> make_ctx ()) in
    let v = vp.p and x = xp.p and bd = bdp.p in
    let r = ref 0 in
    while !r < n do
      let nl = min nr_tile (n - !r) in
      for l = 0 to nl - 1 do
        clear (Array.unsafe_get ctxs l)
      done;
      for c = 0 to n - 1 do
        let xi = r0 + c in
        for l = 0 to nl - 1 do
          mul_add (Array.unsafe_get ctxs l) v (((rj + !r + l) * dim) + r0 + c) x xi
        done
      done;
      for l = 0 to nl - 1 do
        sub_from (Array.unsafe_get ctxs l) bd (rj + !r + l)
      done;
      r := !r + nl
    done

  (* ---- Plane-level microkernels, used by the equivalence tests and the
     kernel benchmark (the entry points above are their consumers in
     kernel-shaped form). All write-backs follow the generic argument
     order: [K.add dst src], [K.sub dst src]. ---- *)

  (* out[oidx] := sum_i a[i] * b[i] over n vector elements. *)
  let dot ~n (a : planes) (b : planes) (out : planes) oidx =
    let { Nd_flat.make_ctx; clear; mul_add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    clear ctx;
    for i = 0 to n - 1 do
      mul_add ctx a.p i b.p i
    done;
    store ctx out.p oidx

  (* y[i] := y[i] + alpha * x[i]; [alpha] is a staged single element. *)
  let axpy ~n (alpha : planes) (x : planes) (y : planes) =
    let { Nd_flat.make_ctx; load; mul_add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    for i = 0 to n - 1 do
      load ctx y.p i;
      mul_add ctx alpha.p 0 x.p i;
      store ctx y.p i
    done

  (* ---- The iterative engines' kernels: matrix-vector products (one
     [Sim.launch] block of output rows each) and the BLAS-1 recurrences.
     Per output element the sequence is the untiled clear /
     ascending-index multiply-accumulate / store, so the flat path stays
     bit-identical to the boxed accumulator loop. ---- *)

  (* y[i] := sum_k a[i, k] * x[k] for rows [blk*threads, (blk+1)*threads). *)
  let gemv_block ~threads (a : planes) (x : planes) (y : planes) blk =
    let { Nd_flat.make_ctx; clear; mul_add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    let m = a.rows and n = a.cols in
    let lo = blk * threads in
    let hi = min m (lo + threads) in
    for i = lo to hi - 1 do
      clear ctx;
      let base = i * n in
      for k = 0 to n - 1 do
        mul_add ctx a.p (base + k) x.p k
      done;
      store ctx y.p i
    done

  (* y[j] := sum_i a[i, j] * x[i] — the transposed product walks each
     column with the row pitch, the strided access of the cost model. *)
  let gemv_t_block ~threads (a : planes) (x : planes) (y : planes) blk =
    let { Nd_flat.make_ctx; clear; mul_add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    let m = a.rows and n = a.cols in
    let lo = blk * threads in
    let hi = min n (lo + threads) in
    for j = lo to hi - 1 do
      clear ctx;
      for i = 0 to m - 1 do
        mul_add ctx a.p ((i * n) + j) x.p i
      done;
      store ctx y.p j
    done

  (* y[i] := x[i] + alpha * y[i] (the CG direction update p := r + beta p
     and LSQR's w recurrence). *)
  let xpay ~n (alpha : planes) (x : planes) (y : planes) =
    let { Nd_flat.make_ctx; mul_set; add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    for i = 0 to n - 1 do
      mul_set ctx alpha.p 0 y.p i;
      add ctx x.p i;
      store ctx y.p i
    done

  (* y[i] := alpha * x[i]; in-place ([x == y]) is safe, each element is
     read before it is stored. *)
  let scal ~n (alpha : planes) (x : planes) (y : planes) =
    let { Nd_flat.make_ctx; mul_set; store; _ } = the_plan () in
    let ctx = make_ctx () in
    for i = 0 to n - 1 do
      mul_set ctx alpha.p 0 x.p i;
      store ctx y.p i
    done

  (* a[i, j] := a[i, j] - x[i] * y[j], the Householder panel update. *)
  let rank1_sub (a : planes) (x : planes) (y : planes) =
    let { Nd_flat.make_ctx; mul_set; sub_from; _ } = the_plan () in
    let ctx = make_ctx () in
    for i = 0 to a.rows - 1 do
      let base = i * a.cols in
      for j = 0 to a.cols - 1 do
        mul_set ctx x.p i y.p j;
        sub_from ctx a.p (base + j)
      done
    done

  (* dst[i] := dst[i] + src[i], elementwise over whole planes (kept on
     the generic path in the solvers; here for tests and bench). *)
  let ewadd (dst : planes) (src : planes) =
    let { Nd_flat.make_ctx; load; add; store; _ } = the_plan () in
    let ctx = make_ctx () in
    let total = dst.rows * dst.cols in
    for i = 0 to total - 1 do
      load ctx dst.p i;
      add ctx src.p i;
      store ctx dst.p i
    done

  (* ---- The back substitution device state, both paths behind one
     type.  [Tiled_back_sub] previously matched on a flat option at
     every read, check, corruption and snapshot site; all of that now
     lives here, so the solver is written once against this module.

     The flat arm stages the matrix (with its inverted diagonal tiles),
     the right-hand side and the solution into limb planes ONCE and
     every inner-product kernel runs on them allocation free; only the
     solution is unstaged at the end.  The boxed arm works on the host
     [K.t] arrays directly.  The modeled launch costs are computed by
     the solver and shared by both arms, so device timing is path
     independent.

     The fault plane closures ([flip], [check]) are passed in by the
     solver: they come from [Fault], which this library deliberately
     does not depend on. *)
  module Bs = struct
    type repr = Flat of { vp : planes; bdp : planes; xp : planes } | Boxed

    type t = {
      dim : int;
      v : K.t array; (* row-major dim*dim, inverted diagonal tiles *)
      bd : K.t array;
      x : K.t array;
      repr : repr;
    }

    (* A saved prefix of the right-hand side, for update replays. *)
    type b_snapshot = Planes of Nd_flat.planes | Scalars of K.t array

    let create ~execute ~dim ~v ~bd ~x =
      let repr =
        if execute && available () then
          Flat
            {
              vp = stage ~rows:dim ~cols:dim ~get:(fun i j -> v.((i * dim) + j));
              bdp = stage_vec ~n:dim ~get:(fun i -> bd.(i));
              xp = alloc ~rows:dim ~cols:1;
            }
        else Boxed
      in
      { dim; v; bd; x; repr }

    (* x_i := U_i^{-1} b_i on the tile at diagonal offset [r0]; identical
       operation sequence on both arms. *)
    let xi_block t ~r0 ~n =
      match t.repr with
      | Flat { vp; bdp; xp } -> bs_xi_block ~dim:t.dim ~r0 ~n vp bdp xp
      | Boxed ->
          let dim = t.dim in
          for r = 0 to n - 1 do
            let s = ref K.zero in
            for c = r to n - 1 do
              s :=
                K.add !s
                  (K.mul t.v.(((r0 + r) * dim) + r0 + c) t.bd.(r0 + c))
            done;
            t.x.(r0 + r) <- !s
          done

    (* b_j := b_j - A_{j,i} x_i for the block at row offset [rj]. *)
    let update_block t ~r0 ~rj ~n =
      match t.repr with
      | Flat { vp; bdp; xp } -> bs_update_block ~dim:t.dim ~r0 ~rj ~n vp xp bdp
      | Boxed ->
          let dim = t.dim in
          for r = 0 to n - 1 do
            let s = ref K.zero in
            for c = 0 to n - 1 do
              s :=
                K.add !s
                  (K.mul t.v.(((rj + r) * dim) + r0 + c) t.x.(r0 + c))
            done;
            t.bd.(rj + r) <- K.sub t.bd.(rj + r) !s
          done

    (* Probe reads for the ABFT tile verdict. *)
    let x_at t i =
      match t.repr with Flat { xp; _ } -> read_el xp i | Boxed -> t.x.(i)

    let b_at t i =
      match t.repr with Flat { bdp; _ } -> read_el bdp i | Boxed -> t.bd.(i)

    (* On the flat path the raw limb expansion of x[i] must still satisfy
       the validator (the renorm invariant); the boxed representation
       renormalizes on read, so there is nothing extra to check. *)
    let x_limbs_ok t ~check i =
      match t.repr with
      | Flat { xp; _ } ->
          check (Array.init K.width (fun pl -> Nd_flat.get xp.p pl i))
      | Boxed -> true

    (* Feed every limb word of the (constant through stage 2) matrix to
       [f]: plane-major over the staged planes, element-major over the
       boxed scalars — each arm in its own storage order, so a digest
       taken before the sweep convicts any corruption of exactly the
       words the kernels read. *)
    let iter_u_limbs t f =
      match t.repr with
      | Flat { vp; _ } ->
          Array.iter
            (fun plane ->
              for i = 0 to Nd_flat.plane_dim plane - 1 do
                f (Bigarray.Array1.unsafe_get plane i)
              done)
            vp.p
      | Boxed -> Array.iter (fun s -> Array.iter f (K.to_planes s)) t.v

    (* Bit-flip corruptor over the resident device state, one element
       picked weighted by size, one limb plane, one bit ([flip]).  On the
       flat arm faults strike the staggered limb planes directly (raw
       word flips, exactly the paper's device layout); on the boxed arm
       one scalar goes through a limb flip and the renormalizing
       round-trip. *)
    let corrupt t rng ~flip =
      let dim = t.dim in
      let pick = Dompool.Prng.int rng ((dim * dim) + dim + dim) in
      let name, idx =
        if pick < dim * dim then ("U", pick)
        else if pick < (dim * dim) + dim then ("b", pick - (dim * dim))
        else ("x", pick - (dim * dim) - dim)
      in
      match t.repr with
      | Flat { vp; bdp; xp } ->
          let pl = match name with "U" -> vp | "b" -> bdp | _ -> xp in
          let p = Dompool.Prng.int rng (Array.length pl.p) in
          let bit = Dompool.Prng.int rng 64 in
          Nd_flat.set pl.p p idx (flip (Nd_flat.get pl.p p idx) bit);
          Printf.sprintf "%s[%d] plane %d bit %d (raw)" name idx p bit
      | Boxed ->
          let arr = match name with "U" -> t.v | "b" -> t.bd | _ -> t.x in
          let planes = K.to_planes arr.(idx) in
          let p = Dompool.Prng.int rng (Array.length planes) in
          let bit = Dompool.Prng.int rng 64 in
          planes.(p) <- flip planes.(p) bit;
          arr.(idx) <- K.of_planes planes;
          Printf.sprintf "%s[%d] plane %d bit %d" name idx p bit

    (* Every limb word of b below [r0] still finite? (The update replay
       verdict.) *)
    let b_finite_below t ~r0 =
      let ok = ref true in
      (match t.repr with
      | Flat { bdp; _ } ->
          for pl = 0 to K.width - 1 do
            for i = 0 to r0 - 1 do
              if not (Float.is_finite (Nd_flat.get bdp.p pl i)) then ok := false
            done
          done
      | Boxed ->
          for i = 0 to r0 - 1 do
            if not (K.is_finite t.bd.(i)) then ok := false
          done);
      !ok

    (* The update subtracts in place, so replaying it needs the
       pre-update prefix of b back first.  [Bigarray.Array1.sub] is a
       view into the live plane, so the snapshot copies it into fresh
       storage. *)
    let snapshot_b t ~upto =
      match t.repr with
      | Flat { bdp; _ } ->
          Planes
            (Array.map
               (fun pl ->
                 let saved = Nd_flat.make_plane upto in
                 Bigarray.Array1.blit (Bigarray.Array1.sub pl 0 upto) saved;
                 saved)
               bdp.p)
      | Boxed -> Scalars (Array.sub t.bd 0 upto)

    let restore_b t snap =
      match (snap, t.repr) with
      | Planes saved, Flat { bdp; _ } ->
          Array.iteri
            (fun p sp ->
              let upto = Bigarray.Array1.dim sp in
              Bigarray.Array1.blit sp (Bigarray.Array1.sub bdp.p.(p) 0 upto))
            saved
      | Scalars saved, Boxed -> Array.blit saved 0 t.bd 0 (Array.length saved)
      | _ -> invalid_arg "Flat_kernels.Bs: snapshot from a different path"

    (* Write the staged solution back into the host array (identity on
       the boxed arm, which solved in place). *)
    let unstage_x t =
      match t.repr with
      | Flat { xp; _ } -> unstage_vec xp ~store:(fun i s -> t.x.(i) <- s)
      | Boxed -> ()
  end
end
