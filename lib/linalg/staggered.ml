(* The staggered device representation of multiple double data.

   A matrix of quad doubles is NOT stored as an array of quad double
   records but as four separate matrices of doubles, sorted by
   significance; the same holds for vectors and, on complex data, for the
   real and imaginary parts (end of Algorithm 1 in the paper).  Adjacent
   threads of a block then read adjacent doubles — coalesced access
   without bank conflicts.

   The simulator's kernels compute on [K.t] values; these conversions model
   the staging of data into and out of device memory and give the byte
   counts of the transfer model its ground truth. *)

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)

  type vec = { n : int; planes : float array array } (* width x n *)

  type mat = {
    rows : int;
    cols : int;
    planes : float array array; (* width x (rows*cols), row-major *)
  }

  let vec_bytes (v : vec) = 8 * K.width * v.n
  let mat_bytes (m : mat) = 8 * K.width * m.rows * m.cols

  let of_vec (v : V.t) : vec =
    let n = Array.length v in
    let planes = Array.init K.width (fun _ -> Array.make n 0.0) in
    let limbs = Array.make K.width 0.0 in
    for i = 0 to n - 1 do
      K.to_planes_into v.(i) limbs;
      for p = 0 to K.width - 1 do
        planes.(p).(i) <- limbs.(p)
      done
    done;
    { n; planes }

  let to_vec (s : vec) : V.t =
    Array.init s.n (fun i ->
        K.of_planes (Array.init K.width (fun p -> s.planes.(p).(i))))

  let of_mat (m : M.t) : mat =
    let rows = M.rows m and cols = M.cols m in
    let n = rows * cols in
    let planes = Array.init K.width (fun _ -> Array.make n 0.0) in
    let limbs = Array.make K.width 0.0 in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        K.to_planes_into (M.get m i j) limbs;
        for p = 0 to K.width - 1 do
          planes.(p).((i * cols) + j) <- limbs.(p)
        done
      done
    done;
    { rows; cols; planes }

  let to_mat (s : mat) : M.t =
    M.init s.rows s.cols (fun i j ->
        K.of_planes
          (Array.init K.width (fun p -> s.planes.(p).((i * s.cols) + j))))
end
