(** Allocation-free limb-planar ("flat") kernels on staggered planes.

    Executes the simulator's hot kernels directly on the staggered
    [float array] planes, via the unrolled double double and quad double
    primitives of [Multidouble.Dd_flat] / [Multidouble.Qd_flat].  Those
    mirror the accurate QDlib algorithms floating point operation for
    floating point operation, so the flat kernels are limb for limb
    identical to the generic [Scalar.S] path; dispatchers switch paths
    on {!Make.available} with no numerical consequences.

    Block-level entry points take the same block index as the generic
    [Sim.launch] bodies and write disjoint index ranges, so they are
    safe under [Domain_pool.parallel_for] without further locking. *)

val enabled : bool ref
(** Global switch, for benchmarks and the equivalence tests; the
    dispatchers consult it through {!Make.available}. *)

module Make (K : Scalar.S) : sig
  type planes = { rows : int; cols : int; p : float array array }
  (** A staged operand: [K.width] planes of [rows * cols] doubles,
      row-major — the layout of [Staggered], without the [K.t] matrix
      behind it.  Concrete so the kernel loops inline. *)

  val available : unit -> bool
  (** The flat primitives cover plain real double double and quad
      double; complex and instrumented scalars keep the generic path. *)

  val alloc : rows:int -> cols:int -> planes

  val stage : rows:int -> cols:int -> get:(int -> int -> K.t) -> planes
  (** Staging costs O(elements) conversions, amortized by kernels doing
      O(elements * inner) work on the staged operand. *)

  val unstage : planes -> store:(int -> int -> K.t -> unit) -> unit
  val stage_vec : n:int -> get:(int -> K.t) -> planes
  val unstage_vec : planes -> store:(int -> K.t -> unit) -> unit

  val matmul_block : threads:int -> planes -> planes -> planes -> int -> unit
  (** The register-loading matrix product, one [Sim.launch] block:
      output elements [blk*threads, (blk+1)*threads), each a dot product
      of a row of the first operand with a column of the second. *)

  val bs_xi_block :
    dim:int -> r0:int -> n:int -> planes -> planes -> planes -> unit
  (** [bs_xi_block ~dim ~r0 ~n v bd x]: x_i := U_i^{-1} b_i on the tile
      at diagonal offset [r0] of the staged [dim]-by-[dim] matrix [v]
      with inverted diagonal tiles. *)

  val bs_update_block :
    dim:int -> r0:int -> rj:int -> n:int -> planes -> planes -> planes -> unit
  (** [bs_update_block ~dim ~r0 ~rj ~n v x bd]: b_j := b_j - A_(j,i) x_i
      for the block at row offset [rj]. *)

  val dot : n:int -> planes -> planes -> planes -> int -> unit
  (** [dot ~n a b out oidx]: out[oidx] := sum over [n] elements of
      a[i] * b[i]. *)

  val axpy : n:int -> planes -> planes -> planes -> unit
  (** [axpy ~n alpha x y]: y[i] := y[i] + alpha * x[i]; [alpha] is a
      staged single element. *)

  val rank1_sub : planes -> planes -> planes -> unit
  (** [rank1_sub a x y]: a[i, j] := a[i, j] - x[i] * y[j], the
      Householder panel update. *)

  val ewadd : planes -> planes -> unit
  (** dst[i] := dst[i] + src[i] elementwise over whole planes (kept on
      the generic path in the dispatchers; here for tests and bench). *)
end
