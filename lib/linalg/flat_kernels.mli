(** Allocation-free limb-planar ("flat") kernels on staggered planes.

    Executes the simulator's hot kernels directly on the staggered
    [float array] planes, through the limb-generic
    [Multidouble.Nd_flat.plan] record resolved once per scalar from its
    limb count — the single dispatch point.  The plan's engines replay
    the boxed operation sequences floating point operation for floating
    point operation, so the flat kernels are limb for limb identical to
    the generic [Scalar.S] path at every supported width (double double,
    quad double, octo double, and any future Expansion precision);
    consumers switch paths on {!Make.available} with no numerical
    consequences.

    Block-level entry points take the same block index as the generic
    [Sim.launch] bodies and write disjoint index ranges, so they are
    safe under [Domain_pool.parallel_for] without further locking. *)

val enabled : bool ref
(** Global switch, for benchmarks and the equivalence tests; the
    solvers consult it through {!Make.available}. *)

type tile = {
  mr : int;  (** output rows per micro-tile *)
  nr : int;  (** output columns per micro-tile (lanes) *)
  kc : int;  (** inner-dimension chunk per cache block *)
  flops : float;  (** double precision flops of one full tile *)
  bytes : float;  (** bytes moved by one full tile (A, B panels + C spill) *)
}
(** The register-tile geometry of the matrix product microkernel and its
    per-tile operation/traffic counts, for roofline classification
    (computed here because [Obs] deliberately knows nothing about
    precisions). *)

module Make (K : Scalar.S) : sig
  type planes = { rows : int; cols : int; p : Multidouble.Nd_flat.planes }
  (** A staged operand: [K.width] limb planes of [rows * cols] float64
      words, row-major — the layout of [Staggered], held in flat
      [Bigarray] storage.  Concrete so the kernel loops inline. *)

  val available : unit -> bool
  (** The flat plane covers every real uninstrumented width with an
      [Nd_flat] plan (all multiple double precisions); complex,
      instrumented and plain double scalars keep the generic path. *)

  val tile : tile
  (** The microkernel tile resolved for this scalar: NR = 8 column lanes
      (a 64-byte line of each B limb plane), KC sized so a
      double-buffered B panel fits a 32 KiB L1 slice — 128 for double
      double, 64 for quad double, 32 for octo double. *)

  val alloc : rows:int -> cols:int -> planes

  val stage : rows:int -> cols:int -> get:(int -> int -> K.t) -> planes
  (** Staging costs O(elements) conversions, amortized by kernels doing
      O(elements * inner) work on the staged operand. *)

  val unstage : planes -> store:(int -> int -> K.t -> unit) -> unit
  val stage_vec : n:int -> get:(int -> K.t) -> planes
  val unstage_vec : planes -> store:(int -> K.t -> unit) -> unit

  val matmul_block : threads:int -> planes -> planes -> planes -> int -> unit
  (** The register-loading matrix product, one [Sim.launch] block:
      output elements [blk*threads, (blk+1)*threads), each a dot product
      of a row of the first operand with a column of the second.
      Executes as the {!tile}-shaped cache-blocked microkernel; each
      lane replays the untiled per-element operation sequence exactly,
      so the result is bit-identical to the generic loop. *)

  val matmul :
    execute:bool ->
    threads:int ->
    rows_o:int ->
    cols_o:int ->
    inner:int ->
    geta:(int -> int -> K.t) ->
    getb:(int -> int -> K.t) ->
    store:(int -> int -> K.t -> unit) ->
    launch:((int -> unit) -> unit) ->
    unit
  (** The solver-facing matrix product: one entry point, both paths.
      The caller computes the modeled device cost (identical on both
      paths) and passes the launch as a closure; this function picks the
      path — staged flat kernels when [execute] and {!available}, the
      boxed accessor loop otherwise.  Results are bit-identical. *)

  val bs_xi_block :
    dim:int -> r0:int -> n:int -> planes -> planes -> planes -> unit
  (** [bs_xi_block ~dim ~r0 ~n v bd x]: x_i := U_i^{-1} b_i on the tile
      at diagonal offset [r0] of the staged [dim]-by-[dim] matrix [v]
      with inverted diagonal tiles. *)

  val bs_update_block :
    dim:int -> r0:int -> rj:int -> n:int -> planes -> planes -> planes -> unit
  (** [bs_update_block ~dim ~r0 ~rj ~n v x bd]: b_j := b_j - A_(j,i) x_i
      for the block at row offset [rj]. *)

  val dot : n:int -> planes -> planes -> planes -> int -> unit
  (** [dot ~n a b out oidx]: out[oidx] := sum over [n] elements of
      a[i] * b[i]. *)

  val axpy : n:int -> planes -> planes -> planes -> unit
  (** [axpy ~n alpha x y]: y[i] := y[i] + alpha * x[i]; [alpha] is a
      staged single element. *)

  val gemv_block : threads:int -> planes -> planes -> planes -> int -> unit
  (** [gemv_block ~threads a x y blk]: y[i] := sum_k a[i, k] * x[k] for
      the output rows of one launch block.  Per element the untiled
      clear / ascending multiply-accumulate / store sequence, so the
      flat path is bit-identical to the boxed accumulator loop. *)

  val gemv_t_block : threads:int -> planes -> planes -> planes -> int -> unit
  (** The transposed product y[j] := sum_i a[i, j] * x[i] (strided
      column walk). *)

  val xpay : n:int -> planes -> planes -> planes -> unit
  (** [xpay ~n alpha x y]: y[i] := x[i] + alpha * y[i] — the CG
      direction update; [alpha] is a staged single element. *)

  val scal : n:int -> planes -> planes -> planes -> unit
  (** [scal ~n alpha x y]: y[i] := alpha * x[i]; in-place is safe. *)

  val rank1_sub : planes -> planes -> planes -> unit
  (** [rank1_sub a x y]: a[i, j] := a[i, j] - x[i] * y[j], the
      Householder panel update. *)

  val ewadd : planes -> planes -> unit
  (** dst[i] := dst[i] + src[i] elementwise over whole planes (kept on
      the generic path in the solvers; here for tests and bench). *)

  (** The back substitution device state, both paths behind one type:
      the staged-planes arm when flat execution is on, the boxed host
      arrays otherwise.  [Tiled_back_sub] is written once against this
      module; the fault plane closures ([flip], [check]) are passed in
      by the solver so this library does not depend on [Fault]. *)
  module Bs : sig
    type t

    type b_snapshot
    (** A saved prefix of the right-hand side, for update replays. *)

    val create :
      execute:bool ->
      dim:int ->
      v:K.t array ->
      bd:K.t array ->
      x:K.t array ->
      t
    (** [create ~execute ~dim ~v ~bd ~x] captures the device state for
        one stage-2 sweep: [v] the row-major [dim*dim] matrix with
        inverted diagonal tiles, [bd] the evolving right-hand side, [x]
        the solution sink.  Stages all three into limb planes when
        [execute] and {!available}. *)

    val xi_block : t -> r0:int -> n:int -> unit
    (** x_i := U_i^{-1} b_i on the tile at diagonal offset [r0]. *)

    val update_block : t -> r0:int -> rj:int -> n:int -> unit
    (** b_j := b_j - A_(j,i) x_i for the block at row offset [rj]. *)

    val x_at : t -> int -> K.t
    val b_at : t -> int -> K.t

    val x_limbs_ok : t -> check:(float array -> bool) -> int -> bool
    (** On the flat arm, run [check] (a raw-limb validator) on the limb
        expansion of x[i]; trivially true on the boxed arm, which
        renormalizes on read. *)

    val iter_u_limbs : t -> (float -> unit) -> unit
    (** Feed every limb word of the matrix to the callback, in the arm's
        own storage order — digest fodder for ABFT checksums. *)

    val corrupt : t -> Dompool.Prng.t -> flip:(float -> int -> float) -> string
    (** Flip one [flip]-selected bit of one size-weighted element of the
        resident state: raw plane words on the flat arm, a scalar limb
        round-trip on the boxed arm.  Returns a description. *)

    val b_finite_below : t -> r0:int -> bool
    val snapshot_b : t -> upto:int -> b_snapshot
    val restore_b : t -> b_snapshot -> unit

    val unstage_x : t -> unit
    (** Write the staged solution back into the host array (identity on
        the boxed arm, which solved in place). *)
  end
end
