(* The fleet service: a long-running pool of simulated devices behind a
   submission API.

   Each pool entry is an *instance* — one worker domain owning one work
   queue.  Classed instances (several C2050s, P100s, V100s, RTX 2080s)
   give the fleet its heterogeneity: roofline-aware placement routes
   memory-bound jobs (double double — the paper's bandwidth-bound
   regime) to bandwidth-rich classes and compute-bound jobs (octo
   double) to compute-rich ones.  Generic instances (device = None) are
   plain capacity honoring whatever device each job names; the batch
   wrapper in [Scheduler] runs on an all-generic pool.

   Admission control bounds every queue: a submission finding all its
   candidate queues at [max_queue_depth] is rejected — backpressure the
   caller sees synchronously.  Idle workers steal the oldest entry from
   the deepest foreign queue, so a hot class drains across the fleet.

   The resilience plane (all opt-in through [Config]) layers on top:

   - Device chaos ([Fault.Chaos]): seeded campaigns deal each instance
     a crash (the worker domain exits), a hang (the worker stops
     draining its queue, holding its claimed job) or a brownout (every
     kernel costed [factor] times slower) after a drawn number of
     executed jobs.

   - Recovery: jobs stranded on a crashed or hung instance — queued and
     claimed-but-unstarted alike — are reclaimed and re-placed through
     the same roofline policy, never silently dropped; the hop is
     recorded in the outcome's migration trail.  A job migrated more
     than [max_migrations] times is quarantined: settled as a permanent
     failure rather than bounced forever.

   - Circuit breakers: per-instance health windows (fed through
     [Obs.Health]) open a breaker on consecutive failures or a p95
     latency excursion against the instance's class; an open instance
     is skipped by placement, admits a single probe job after a
     cool-off (half-open), and closes again when the probe succeeds.

   - Hedged execution: a job in flight longer than a p95-based delay
     gets a duplicate on another instance; the first copy to settle
     wins and the loser is discarded after a byte-equality check of the
     two reports (the kernels are deterministic, so divergence is a
     bug worth a counter).

   Locking: one mutex guards the queues, counters, instance states and
   the result table.  Jobs execute outside the lock, wrapped in
   [Dompool.Domain_pool.isolate] so kernel bodies of executing jobs run
   inline on the worker domain instead of racing on the shared pool's
   barrier.  Quarantined outcomes produced while migrating under the
   lock are emitted after it is released. *)

module D = Gpusim.Device
module Pool = Dompool.Domain_pool
module Metrics = Obs.Metrics
module R = Harness.Runners
module Chaos = Fault.Chaos

module Config = struct
  type t = {
    pool : (D.t option * int) list;
    max_queue_depth : int;
    backoff_ms : float;
    steal : bool;
    retain_outcomes : bool;
    chaos : Chaos.config option;
    max_migrations : int;
    hedge_ms : float option;
    breakers : bool;
  }

  let unbounded = max_int

  let default =
    {
      pool =
        [
          (Some D.c2050, 2);
          (Some D.p100, 2);
          (Some D.v100, 2);
          (Some D.rtx2080, 2);
        ];
      max_queue_depth = 64;
      backoff_ms = 1.0;
      steal = true;
      retain_outcomes = true;
      chaos = None;
      max_migrations = 3;
      hedge_ms = None;
      breakers = false;
    }

  let batch ?(parallel = 4) ?(backoff_ms = 1.0) () =
    {
      default with
      pool = [ (None, max 1 parallel) ];
      max_queue_depth = unbounded;
      backoff_ms;
    }

  (* "v100=2,rtx2080=1" (or "v100,p100" with implicit count 1). *)
  let pool_of_string s =
    String.split_on_char ',' s
    |> List.filter_map (fun part ->
           let part = String.trim part in
           if part = "" then None
           else
             let name, count =
               match String.index_opt part '=' with
               | None -> (part, 1)
               | Some i ->
                 let n = String.sub part 0 i in
                 let c = String.sub part (i + 1) (String.length part - i - 1) in
                 (match int_of_string_opt (String.trim c) with
                 | Some c -> (String.trim n, c)
                 | None ->
                   invalid_arg
                     (Printf.sprintf "pool spec '%s': bad count '%s'" part c))
             in
             if count <= 0 then
               invalid_arg
                 (Printf.sprintf "pool spec '%s': count must be positive" part);
             Some (Some (D.by_name name), count))

  (* Structured validation instead of runtime misbehavior: a negative
     depth would admit nothing, a negative backoff would crash the
     first retry sleep, a non-positive hedge delay would duplicate
     every job.  [backoff_ms = 0] stays legal — it is the documented
     "retry without sleeping" setting the deterministic tests use — and
     unbounded queues are requested explicitly through {!unbounded}. *)
  let validate (c : t) =
    if c.pool = [] then Error "pool must not be empty"
    else if List.exists (fun (_, count) -> count <= 0) c.pool then
      Error "pool entry with non-positive instance count"
    else if c.max_queue_depth <= 0 then
      Error
        (Printf.sprintf
           "max_queue_depth %d must be positive (use Config.unbounded for no \
            bound)"
           c.max_queue_depth)
    else if Float.is_nan c.backoff_ms || c.backoff_ms < 0.0 then
      Error (Printf.sprintf "backoff_ms %g must be non-negative" c.backoff_ms)
    else if c.max_migrations < 0 then
      Error
        (Printf.sprintf "max_migrations %d must be non-negative"
           c.max_migrations)
    else
      match c.hedge_ms with
      | Some ms when Float.is_nan ms || ms <= 0.0 ->
        Error (Printf.sprintf "hedge_ms %g must be positive" ms)
      | _ -> Ok ()
end

type reject =
  | Queue_full of { device_id : string; queue_depth : int }
  | Draining

let reject_message = function
  | Queue_full { device_id; queue_depth } ->
    Printf.sprintf "queue full: %s at depth %d" device_id queue_depth
  | Draining -> "fleet is draining"

type ticket = int

type queued = {
  q_job : Job.t;
  q_ticket : ticket;
  q_admitted_at : float;
  q_depth : int;  (* queue depth at admission *)
  q_admitted_to : int;  (* instance index *)
  q_migrations : string list;  (* instances reclaimed from, newest first *)
  q_hedge : bool;  (* duplicate copy of an in-flight ticket *)
}

(* Instance life under chaos.  [Browned] instances keep executing (just
   slower); [Hung] and [Crashed] ones are excluded from placement and
   their stranded work is migrated away. *)
type state = Healthy | Browned of float | Hung | Crashed

let state_name = function
  | Healthy -> "ok"
  | Browned _ -> "browned"
  | Hung -> "hung"
  | Crashed -> "crashed"

type breaker_state = Closed | Open | Half_open

let breaker_state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker = {
  mutable b_state : breaker_state;
  mutable b_opened_at : float;
  mutable b_failures : int;  (* consecutive failed settlements *)
  mutable b_probing : bool;  (* half-open probe currently admitted *)
}

(* The job an instance's worker is executing right now, tracked so the
   supervisor can hedge stragglers and reclaim the claimed-but-parked
   entry of a hung worker. *)
type inflight = {
  if_entry : queued;
  if_job : Job.t;  (* effective job: auto device already resolved *)
  if_started : float;
  mutable if_hedged : bool;
}

type instance = {
  id : string;
  device : D.t option;
  index : int;
  queue : queued Queue.t;
  mutable running : bool;  (* worker is executing a job right now *)
  mutable executed : int;
  mutable stolen : int;  (* jobs this worker claimed from foreign queues *)
  mutable busy_ms : float;
  mutable state : state;
  chaos_event : Chaos.event option;
  mutable reclaimed : bool;  (* hung instance already swept *)
  mutable inflight : inflight option;
  breaker : breaker;
}

(* Book-keeping for one hedged ticket: how many copies are still out,
   and the winner's status fingerprint for the byte-equality check.
   Entries are removed once every copy has settled, so a long-running
   serve loop does not grow memory. *)
type hedge_info = {
  mutable h_remaining : int;
  mutable h_first : (string * bool) option;
      (* (status fingerprint, ran browned) of the first copy to settle *)
}

type t = {
  config : Config.t;
  on_outcome : (Engine.outcome -> unit) option;
  lock : Mutex.t;
  work : Condition.t;  (* workers wait here for admissions *)
  changed : Condition.t;  (* clients wait here for claims/settlements *)
  instances : instance array;
  results : (ticket, Engine.outcome) Hashtbl.t;
  hedged : (ticket, hedge_info) Hashtbl.t;
  mutable next_ticket : int;
  mutable unsettled : int;  (* admitted but not yet settled *)
  mutable stopping : bool;
  mutable started : bool;
  mutable workers : unit Domain.t array;
  mutable supervisor : unit Domain.t option;
  order : int Atomic.t;  (* completion rank *)
  total_steals : int Atomic.t;
  mutable started_at : float;  (* for utilization *)
}

(* ---- metrics ---- *)

let m_counter name = Metrics.counter (Metrics.default ()) name
let m_gauge name = Metrics.gauge (Metrics.default ()) name

(* [Metrics.once], not [lazy]: worker domains race on the first
   settlement, and a concurrently forced lazy raises. *)
let m_submitted = Metrics.once (fun () -> m_counter "fleet.submitted")
let m_rejected = Metrics.once (fun () -> m_counter "fleet.rejected")
let m_completed = Metrics.once (fun () -> m_counter "fleet.completed")
let m_failed = Metrics.once (fun () -> m_counter "fleet.failed")
let m_attempts = Metrics.once (fun () -> m_counter "fleet.attempts")
let m_steals = Metrics.once (fun () -> m_counter "fleet.steals")
let m_hedge_launched = Metrics.once (fun () -> m_counter "fleet.hedge.launched")
let m_hedge_wins = Metrics.once (fun () -> m_counter "fleet.hedge.wins")

let m_hedge_mismatches =
  Metrics.once (fun () -> m_counter "fleet.hedge.mismatches")

let m_breaker_opened =
  Metrics.once (fun () -> m_counter "fleet.breaker.opened")

let m_breaker_half_open =
  Metrics.once (fun () -> m_counter "fleet.breaker.half_open")

let m_breaker_closed =
  Metrics.once (fun () -> m_counter "fleet.breaker.closed")

let class_slug = function Some d -> D.slug d | None -> "any"

(* Per-class latency histogram on the fine ladder: p50/p95/p99 per
   device class are read straight off the snapshot. *)
let latency_histogram inst =
  Metrics.histogram ~buckets:Metrics.latency_buckets (Metrics.default ())
    ("fleet.latency_ms." ^ class_slug inst.device)

let depth_gauge inst = m_gauge ("fleet.queue_depth." ^ inst.id)
let util_gauge inst = m_gauge ("fleet.util." ^ inst.id)

(* 1.0 while the instance's worker is executing a job — the live
   counterpart of the time-averaged [util_gauge]. *)
let inflight_gauge inst = m_gauge ("fleet.inflight." ^ inst.id)

(* ---- roofline placement ---- *)

(* Jobs are classified compute- vs memory-bound on a fixed reference
   device (the V100, the paper's flagship) so the verdict — and with it
   the placement — is deterministic and pool-independent: double double
   comes out memory-bound, octo double compute-bound, the paper's CGMA
   shape.  Memoized: a million-job stream re-plans nothing. *)
let classify_memo :
    ( Job.kind
      * Multidouble.Precision.tag
      * bool
      * int
      * int option
      * int
      * Lsq_core.Solver.method_,
      Obs.Roofline.bound )
    Hashtbl.t =
  Hashtbl.create 64

let classify_lock = Mutex.create ()

let classify_job (job : Job.t) =
  let key =
    ( job.Job.kind,
      job.Job.prec,
      job.Job.complex,
      job.Job.dim,
      job.Job.rows,
      job.Job.tile,
      job.Job.solver )
  in
  Mutex.lock classify_lock;
  let cached = Hashtbl.find_opt classify_memo key in
  Mutex.unlock classify_lock;
  match cached with
  | Some b -> b
  | None ->
    let bound =
      try
        let complex = job.Job.complex in
        let prec = job.Job.prec in
        let dim = job.Job.dim and tile = job.Job.tile in
        let stages =
          match job.Job.kind with
          | Job.Qr ->
            R.qr_roofline ~complex ?rows:job.Job.rows prec D.v100 ~n:dim ~tile
          | Job.Backsub -> R.bs_roofline ~complex prec D.v100 ~dim ~tile
          | Job.Solve ->
            (* The iterative engines classify memory-bound at every
               precision (BLAS-1/2 kernels), routing their jobs to
               bandwidth-rich classes regardless of what the direct
               plan of the same shape would say. *)
            R.solve_roofline ~complex ~method_:job.Job.solver
              ?rows:job.Job.rows prec D.v100 ~n:dim ~tile
        in
        (Obs.Roofline.total stages).Obs.Roofline.bound
      with _ ->
        (* Unplannable (invalid shape): the class hardly matters, the
           job will settle as a validation failure anyway. *)
        Obs.Roofline.Memory
    in
    Mutex.lock classify_lock;
    Hashtbl.replace classify_memo key bound;
    Mutex.unlock classify_lock;
    bound

(* Fault-free roofline stage predictions on the device a job actually
   executed with, feeding the health plane's cost-model drift detector:
   fault-free measured breakdowns reproduce these exactly, so any gap is
   either fault recovery or a miscalibrated model.  Memoized like
   [classify_memo]; [None] marks unplannable shapes. *)
let predict_memo :
    ( Job.kind
      * Multidouble.Precision.tag
      * bool
      * int
      * int option
      * int
      * Lsq_core.Solver.method_
      * string,
      (string * float) list option )
    Hashtbl.t =
  Hashtbl.create 64

let predict_lock = Mutex.create ()

let predicted_stages (job : Job.t) =
  let key =
    ( job.Job.kind,
      job.Job.prec,
      job.Job.complex,
      job.Job.dim,
      job.Job.rows,
      job.Job.tile,
      job.Job.solver,
      job.Job.device )
  in
  Mutex.lock predict_lock;
  let cached = Hashtbl.find_opt predict_memo key in
  Mutex.unlock predict_lock;
  match cached with
  | Some p -> p
  | None ->
    let predicted =
      match D.by_name job.Job.device with
      | exception Invalid_argument _ -> None
      | device -> (
        try
          let complex = job.Job.complex in
          let prec = job.Job.prec in
          let dim = job.Job.dim and tile = job.Job.tile in
          let stages =
            match job.Job.kind with
            | Job.Qr ->
              R.qr_roofline ~complex ?rows:job.Job.rows prec device ~n:dim
                ~tile
            | Job.Backsub -> R.bs_roofline ~complex prec device ~dim ~tile
            | Job.Solve ->
              R.solve_roofline ~complex ~method_:job.Job.solver
                ?rows:job.Job.rows prec device ~n:dim ~tile
          in
          Some
            (List.map
               (fun (s : Obs.Roofline.stage) -> (s.Obs.Roofline.stage, s.Obs.Roofline.ms))
               stages)
        with _ -> None)
    in
    Mutex.lock predict_lock;
    Hashtbl.replace predict_memo key predicted;
    Mutex.unlock predict_lock;
    predicted

(* Distinct device classes of the pool, in pool order. *)
let classes t =
  Array.to_list t.instances
  |> List.filter_map (fun i -> i.device)
  |> List.fold_left
       (fun acc d -> if List.exists (fun d' -> d'.D.name = d.D.name) acc then acc else d :: acc)
       []
  |> List.rev

(* Candidate instance groups for one job, most preferred group first.
   Auto jobs rank classes by the roofline verdict: memory-bound work
   prefers bandwidth-rich classes (descending bytes-per-flop),
   compute-bound work compute-rich ones (descending DP peak).  Pinned
   jobs prefer instances of their own class, then generic capacity,
   then anything (the named device is simulated wherever the job runs —
   instances are capacity, the simulation uses [job.device]). *)
let candidate_groups t (job : Job.t) =
  let instances = Array.to_list t.instances in
  let of_class d =
    List.filter
      (fun i -> match i.device with Some d' -> d'.D.name = d.D.name | None -> false)
      instances
  in
  let generic = List.filter (fun i -> i.device = None) instances in
  if Job.is_auto job then begin
    let ranked =
      let cs = classes t in
      match classify_job job with
      | Obs.Roofline.Memory ->
        List.sort
          (fun a b ->
            match compare (D.bytes_per_flop b) (D.bytes_per_flop a) with
            | 0 -> compare b.D.dram_gb_s a.D.dram_gb_s
            | c -> c)
          cs
      | Obs.Roofline.Compute ->
        List.sort
          (fun a b ->
            match compare b.D.dp_peak_gflops a.D.dp_peak_gflops with
            | 0 -> compare b.D.dram_gb_s a.D.dram_gb_s
            | c -> c)
          cs
    in
    List.map of_class ranked @ [ generic ]
  end
  else
    match D.by_name job.Job.device with
    | d ->
      let same = of_class d in
      let rest =
        List.filter (fun i -> not (List.memq i same || List.memq i generic)) instances
      in
      [ same; generic; rest ]
    | exception Invalid_argument _ ->
      (* Unknown device: any capacity will do, the job settles as a
         validation failure. *)
      [ instances ]

let queue_full t depth = depth >= t.config.max_queue_depth

(* ---- instance availability ---- *)

let alive inst =
  match inst.state with
  | Healthy | Browned _ -> true
  | Hung | Crashed -> false

(* Open breakers ripen into half-open after the cool-off; called with
   the lock held before any placement decision. *)
let breaker_cooloff_ms = 250.0

let breaker_tick t ~now =
  if t.config.breakers then
    Array.iter
      (fun inst ->
        match inst.breaker.b_state with
        | Open when now -. inst.breaker.b_opened_at >= breaker_cooloff_ms ->
          inst.breaker.b_state <- Half_open;
          inst.breaker.b_probing <- false;
          Metrics.Counter.incr (m_breaker_half_open ());
          Obs.Log.info "fleet.breaker_half_open"
            ~fields:[ ("instance", Obs.Log.Str inst.id) ]
        | _ -> ())
      t.instances

(* Placement admits an instance when it is alive and its breaker lets
   work through: closed freely, half-open for a single probe. *)
let breaker_admits t inst =
  (not t.config.breakers)
  ||
  match inst.breaker.b_state with
  | Closed -> true
  | Open -> false
  | Half_open -> not inst.breaker.b_probing

(* A job was placed onto [inst]: a half-open breaker spends its probe
   slot on it. *)
let note_placed t inst =
  if t.config.breakers && inst.breaker.b_state = Half_open then
    inst.breaker.b_probing <- true

(* Shortest queue of the most preferred group with room, among the
   instances [admit] lets through; [Error] is the preferred instance we
   would have used, for the rejection record. *)
let place_with t job ~admit =
  let groups =
    candidate_groups t job
    |> List.map (List.filter admit)
    |> List.filter (fun g -> g <> [])
  in
  let by_depth g =
    List.stable_sort (fun a b -> compare (Queue.length a.queue) (Queue.length b.queue)) g
  in
  let rec go preferred = function
    | [] -> (
      match preferred with
      | Some i -> Error (Queue_full { device_id = i.id; queue_depth = Queue.length i.queue })
      | None -> Error (Queue_full { device_id = "-"; queue_depth = 0 }))
    | g :: rest -> (
      match by_depth g with
      | [] -> go preferred rest
      | best :: _ as sorted -> (
        let preferred = if preferred = None then Some best else preferred in
        match List.find_opt (fun i -> not (queue_full t (Queue.length i.queue))) sorted with
        | Some i -> Ok i
        | None -> go preferred rest))
  in
  go None groups

(* Admission placement: prefer instances whose breaker admits work, but
   never let breakers wedge the fleet — when they exclude every live
   candidate, fall back to live instances alone (a fully-open fleet
   still beats a rejected job). *)
let place t job =
  match place_with t job ~admit:(fun i -> alive i && breaker_admits t i) with
  | Ok _ as ok -> ok
  | Error _ as e ->
    let breaker_excluded =
      t.config.breakers
      && Array.exists
           (fun i -> alive i && not (breaker_admits t i))
           t.instances
    in
    if breaker_excluded then place_with t job ~admit:alive else e

(* Re-placement for reclaimed jobs: first live group in preference
   order, shortest queue, ignoring the depth bound — a migrated job is
   never dropped for want of queue room.  [None] iff nothing is left
   alive. *)
let place_forced ?exclude t job =
  let admitted ok i =
    alive i && (match exclude with Some e -> i != e | None -> ok)
  in
  let pick admit =
    let rec first = function
      | [] -> None
      | g :: rest -> (
        match List.filter admit g with
        | [] -> first rest
        | i :: is ->
          Some
            (List.fold_left
               (fun best c ->
                 if Queue.length c.queue < Queue.length best.queue then c
                 else best)
               i is))
    in
    first (candidate_groups t job)
  in
  match pick (fun i -> admitted true i && breaker_admits t i) with
  | Some i -> Some i
  | None -> pick (admitted true)

(* ---- lifecycle ---- *)

let instance_of ?chaos ~index (device, slot) =
  {
    id = Printf.sprintf "%s#%d" (class_slug device) slot;
    device;
    index;
    queue = Queue.create ();
    running = false;
    executed = 0;
    stolen = 0;
    busy_ms = 0.0;
    state = Healthy;
    chaos_event =
      (match chaos with Some cfg -> Chaos.draw cfg ~instance:index | None -> None);
    reclaimed = false;
    inflight = None;
    breaker =
      { b_state = Closed; b_opened_at = 0.0; b_failures = 0; b_probing = false };
  }

(* The device an auto job executes on when a generic instance claims
   it: the pool's compute flagship, or the V100 on an all-generic
   pool. *)
let reference_device t =
  match classes t with
  | [] -> D.v100
  | cs ->
    List.fold_left
      (fun best d -> if d.D.dp_peak_gflops > best.D.dp_peak_gflops then d else best)
      (List.hd cs) (List.tl cs)

let effective_job t inst (job : Job.t) =
  if Job.is_auto job then
    let d = match inst.device with Some d -> d | None -> reference_device t in
    { job with Job.device = D.slug d }
  else job

let utilization t inst ~now =
  let span = now -. t.started_at in
  if span <= 0.0 then 0.0 else Float.min 1.0 (inst.busy_ms /. span)

(* ---- migration and quarantine ---- *)

(* A quarantined job still settles — as a permanent failure carrying
   its migration trail — so a campaign keeps its one-outcome-per-job
   shape.  Built with the lock held; the caller emits outside it. *)
let quarantine_outcome t entry ~trail ~message ~now =
  let outcome =
    {
      Engine.job = entry.q_job;
      index = entry.q_ticket;
      order = Atomic.fetch_and_add t.order 1;
      attempts = 0;
      elapsed_ms = Float.max 0.0 (now -. entry.q_admitted_at);
      timing =
        {
          Engine.queue_wait_ms = Float.max 0.0 (now -. entry.q_admitted_at);
          attempt_ms = [];
          backoff_ms = 0.0;
        };
      placement =
        Some
          {
            Engine.device_id = "-";
            admitted_to = t.instances.(entry.q_admitted_to).id;
            steals = 0;
            queue_depth = entry.q_depth;
            migrations = List.rev trail;
            hedged = false;
          };
      status =
        Engine.Failed { message; timed_out = false; retryable = false };
    }
  in
  Metrics.Counter.incr (m_failed ());
  Chaos.note_quarantine ~job:entry.q_job.Job.id;
  if t.config.retain_outcomes then
    Hashtbl.replace t.results entry.q_ticket outcome;
  t.unsettled <- t.unsettled - 1;
  outcome

(* Move stranded entries off a dead or hung instance.  Called with the
   lock held; returns the quarantined outcomes for the caller to emit
   (and broadcast) once the lock is released.  Queued hedge duplicates
   are simply dropped — their original is still executing somewhere and
   will settle the ticket. *)
let migrate_entries t ~from_id entries ~now =
  breaker_tick t ~now;
  let quarantined = ref [] in
  let migrated = ref 0 in
  List.iter
    (fun entry ->
      if entry.q_hedge then begin
        match Hashtbl.find_opt t.hedged entry.q_ticket with
        | Some info ->
          info.h_remaining <- info.h_remaining - 1;
          if info.h_remaining <= 0 then Hashtbl.remove t.hedged entry.q_ticket
        | None -> ()
      end
      else begin
        let trail = from_id :: entry.q_migrations in
        if List.length trail > t.config.max_migrations then
          quarantined :=
            quarantine_outcome t entry ~trail
              ~message:
                (Printf.sprintf
                   "quarantined after %d migration%s (last instance: %s)"
                   (List.length trail)
                   (if List.length trail = 1 then "" else "s")
                   from_id)
              ~now
            :: !quarantined
        else
          match place_forced t entry.q_job with
          | Some target ->
            Queue.push { entry with q_migrations = trail } target.queue;
            note_placed t target;
            incr migrated;
            Metrics.Gauge.set (depth_gauge target)
              (float_of_int (Queue.length target.queue))
          | None ->
            quarantined :=
              quarantine_outcome t entry ~trail
                ~message:
                  (Printf.sprintf
                     "lost instance %s and no live instance remains" from_id)
                ~now
              :: !quarantined
      end)
    entries;
  if !migrated > 0 then begin
    Chaos.note_migration ~instance:from_id ~jobs:!migrated;
    Condition.broadcast t.work
  end;
  List.rev !quarantined

(* Deliver settle-time side effects that must not run under the fleet
   lock: the on_outcome callback and the client broadcast. *)
let deliver t outcomes =
  (match outcomes with
  | [] -> ()
  | _ ->
    Mutex.lock t.lock;
    Condition.broadcast t.changed;
    Mutex.unlock t.lock);
  match t.on_outcome with
  | Some f -> List.iter (fun o -> try f o with _ -> ()) outcomes
  | None -> ()

(* ---- circuit breakers ---- *)

(* Settlement-driven breaker transitions, with the lock held.  The
   health windows are per-instance ([cls = inst.id], fed only when
   breakers are enabled) so the p95 excursion compares an instance
   against its own device class. *)
let breaker_note t inst ~ok ~now =
  if t.config.breakers then begin
    let b = inst.breaker in
    let open_breaker () =
      b.b_state <- Open;
      b.b_opened_at <- now;
      b.b_probing <- false;
      Metrics.Counter.incr (m_breaker_opened ());
      Obs.Log.warn "fleet.breaker_open"
        ~fields:
          [
            ("instance", Obs.Log.Str inst.id);
            ("failures", Obs.Log.Int b.b_failures);
          ]
    in
    match b.b_state with
    | Half_open ->
      b.b_probing <- false;
      if ok then begin
        b.b_state <- Closed;
        b.b_failures <- 0;
        Metrics.Counter.incr (m_breaker_closed ());
        Obs.Log.info "fleet.breaker_close"
          ~fields:[ ("instance", Obs.Log.Str inst.id) ]
      end
      else open_breaker ()
    | Closed ->
      if ok then b.b_failures <- 0 else b.b_failures <- b.b_failures + 1;
      let p95_excursion =
        match
          ( Obs.Health.status_of ~cls:inst.id,
            Obs.Health.status_of ~cls:(class_slug inst.device) )
        with
        | Some i, Some c -> (
          match (i.Obs.Health.p95_ms, c.Obs.Health.p95_ms) with
          | Some ip, Some cp ->
            i.Obs.Health.window >= 8 && cp > 0.0 && ip > 3.0 *. cp
          | _ -> false)
        | _ -> false
      in
      if b.b_failures >= 3 || p95_excursion then open_breaker ()
    | Open -> ()
  end

(* ---- execution ---- *)

(* The deterministic part of an outcome, for the hedge byte-equality
   check: the report (simulated timings included — the cost model is
   deterministic) or the failure classification.  Wall-clock fields
   (timing, order) legitimately differ between copies and stay out. *)
let status_fingerprint = function
  | Engine.Completed report ->
    Harness.Json.to_string (Harness.Report.to_json report)
  | Engine.Failed f ->
    Printf.sprintf "failed:%s:%b:%b" f.Engine.message f.Engine.timed_out
      f.Engine.retryable

(* One claimed entry, start to finish; runs outside the fleet lock. *)
let execute t inst entry ~stolen =
  let job =
    match inst.inflight with
    | Some inf -> inf.if_job
    | None -> effective_job t inst entry.q_job
  in
  let admitted_to = t.instances.(entry.q_admitted_to).id in
  if stolen then begin
    Atomic.incr t.total_steals;
    Metrics.Counter.incr (m_steals ());
    Obs.Tracer.instant ~cat:"fleet"
      ~args:
        [
          ("job", Obs.Tracer.Str job.Job.id);
          ("by", Obs.Tracer.Str inst.id);
          ("owner", Obs.Tracer.Str admitted_to);
        ]
      "steal";
    Obs.Log.info "fleet.steal"
      ~fields:
        [
          ("job", Obs.Log.Str job.Job.id);
          ("by", Obs.Log.Str inst.id);
          ("owner", Obs.Log.Str admitted_to);
        ]
  end;
  let slowdown = match inst.state with Browned f -> f | _ -> 1.0 in
  let attempts, elapsed_ms, timing, status =
    Pool.isolate (fun () ->
        let settle () =
          Engine.settle ~backoff_ms:t.config.backoff_ms
            ~queued_at:entry.q_admitted_at job
        in
        if slowdown > 1.0 then Gpusim.Sim.with_slowdown slowdown settle
        else settle ())
  in
  let now = Engine.now_ms () in
  let latency_ms = Float.max 0.0 (now -. entry.q_admitted_at) in
  let fingerprint = status_fingerprint status in
  let ran_browned = slowdown > 1.0 in
  (* Settlement: first copy of a hedged ticket wins; the loser is
     checked for byte-equality and discarded. *)
  Mutex.lock t.lock;
  inst.running <- false;
  inst.inflight <- None;
  inst.executed <- inst.executed + 1;
  if stolen then inst.stolen <- inst.stolen + 1;
  inst.busy_ms <- inst.busy_ms +. elapsed_ms;
  let verdict =
    match Hashtbl.find_opt t.hedged entry.q_ticket with
    | None -> `Winner false
    | Some info ->
      info.h_remaining <- info.h_remaining - 1;
      if info.h_remaining <= 0 then Hashtbl.remove t.hedged entry.q_ticket;
      (match info.h_first with
      | None ->
        info.h_first <- Some (fingerprint, ran_browned);
        `Winner true
      | Some (first_fp, first_browned) ->
        `Loser
          (first_fp = fingerprint, first_browned || ran_browned))
  in
  let outcome =
    match verdict with
    | `Loser _ -> None
    | `Winner hedged ->
      let outcome =
        {
          Engine.job;
          index = entry.q_ticket;
          order = Atomic.fetch_and_add t.order 1;
          attempts;
          elapsed_ms;
          timing;
          placement =
            Some
              {
                Engine.device_id = inst.id;
                admitted_to;
                steals = (if stolen then 1 else 0);
                queue_depth = entry.q_depth;
                migrations = List.rev entry.q_migrations;
                hedged;
              };
          status;
        }
      in
      if hedged && entry.q_hedge then
        Metrics.Counter.incr (m_hedge_wins ());
      if t.config.retain_outcomes then
        Hashtbl.replace t.results entry.q_ticket outcome;
      t.unsettled <- t.unsettled - 1;
      Some outcome
  in
  let ok = match status with Engine.Completed _ -> true | _ -> false in
  if outcome <> None then breaker_note t inst ~ok ~now;
  Condition.broadcast t.changed;
  Mutex.unlock t.lock;
  Metrics.Gauge.set (util_gauge inst) (utilization t inst ~now);
  Metrics.Gauge.set (inflight_gauge inst) 0.0;
  match verdict with
  | `Loser (byte_equal, any_browned) ->
    (* Duplicate outcomes of the deterministic kernels must agree to
       the byte unless a browned copy legitimately ran slower. *)
    if (not byte_equal) && not any_browned then begin
      Metrics.Counter.incr (m_hedge_mismatches ());
      Obs.Log.error "fleet.hedge_mismatch"
        ~fields:
          [
            ("job", Obs.Log.Str job.Job.id);
            ("instance", Obs.Log.Str inst.id);
          ]
    end
    else
      Obs.Log.debug "fleet.hedge_loser"
        ~fields:
          [
            ("job", Obs.Log.Str job.Job.id);
            ("instance", Obs.Log.Str inst.id);
          ]
  | `Winner _ ->
    let outcome = Option.get outcome in
    Metrics.Counter.incr ~by:attempts (m_attempts ());
    Metrics.Counter.incr
      ((match status with
       | Engine.Completed _ -> m_completed
       | Engine.Failed _ -> m_failed)
         ());
    Metrics.Histogram.observe (latency_histogram inst) latency_ms;
    let cls = class_slug inst.device in
    (match status with
    | Engine.Completed report ->
      Obs.Health.observe ~cls ~ok:true ~latency_ms;
      if t.config.breakers then
        Obs.Health.observe ~cls:inst.id ~ok:true ~latency_ms;
      Obs.Log.debug "fleet.job_completed"
        ~fields:
          [
            ("job", Obs.Log.Str job.Job.id);
            ("instance", Obs.Log.Str inst.id);
            ("attempts", Obs.Log.Int attempts);
            ("latency_ms", Obs.Log.Float latency_ms);
          ];
      (* Drift: fault-free roofline prediction vs the measured breakdown,
         stage by stage.  Stages the model does not plan (e.g. the ABFT
         checks of fault-tolerant runs) have no prediction and are
         skipped. *)
      (match predicted_stages job with
      | Some predicted ->
        List.iter
          (fun (row : Harness.Report.Row.t) ->
            match List.assoc_opt row.Harness.Report.Row.stage predicted with
            | Some predicted_ms ->
              Obs.Health.observe_model ~stage:row.Harness.Report.Row.stage
                ~predicted_ms ~measured_ms:row.Harness.Report.Row.ms
            | None -> ())
          report.Harness.Report.stages
      | None -> ())
    | Engine.Failed f ->
      Obs.Health.observe ~cls ~ok:false ~latency_ms;
      if t.config.breakers then
        Obs.Health.observe ~cls:inst.id ~ok:false ~latency_ms;
      Obs.Log.error "fleet.job_failed"
        ~fields:
          [
            ("job", Obs.Log.Str job.Job.id);
            ("instance", Obs.Log.Str inst.id);
            ("attempts", Obs.Log.Int attempts);
            ("message", Obs.Log.Str f.Engine.message);
            ("timed_out", Obs.Log.Bool f.Engine.timed_out);
          ]);
    (match t.on_outcome with
    | Some f -> ( try f outcome with _ -> ())
    | None -> ())

(* Claim the next entry for [inst]: its own queue first (FIFO), then —
   when stealing is on — the oldest entry of the deepest foreign queue
   whose owner cannot get to it (it is executing, or already at the
   fleet's shutdown with more than one entry waiting, or no longer
   alive).  An idle live owner keeps its queue: it was woken by the same
   admission broadcast and claims the entry itself, so stealing never
   beats the placement policy to a job the preferred device would have
   started at once.  Called with the lock held. *)
let claim t inst =
  if not (Queue.is_empty inst.queue) then Some (Queue.pop inst.queue, false)
  else if not t.config.steal then None
  else begin
    let stealable other =
      other != inst
      && (not (Queue.is_empty other.queue))
      && (other.running || t.stopping
        || Queue.length other.queue > 1
        || not (alive other))
    in
    let victim = ref None in
    Array.iter
      (fun other ->
        if stealable other then
          match !victim with
          | Some v when Queue.length v.queue >= Queue.length other.queue -> ()
          | _ -> victim := Some other)
      t.instances;
    match !victim with
    | Some v -> Some (Queue.pop v.queue, true)
    | None -> None
  end

(* The chaos event destined for this instance fires the first time the
   worker claims an entry after executing [after] jobs.  Called with
   the lock held. *)
let chaos_due inst =
  match (inst.state, inst.chaos_event) with
  | Healthy, Some ev when inst.executed >= ev.Chaos.after -> Some ev
  | _ -> None

let worker t index () =
  let inst = t.instances.(index) in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.lock;
    match claim t inst with
    | Some (entry, stolen) -> (
      match chaos_due inst with
      | Some { Chaos.kind = Chaos.Crash; _ } ->
        (* The domain dies with work on its hands: the claimed entry and
           everything still queued migrate, then the worker exits. *)
        inst.state <- Crashed;
        let stranded =
          entry :: List.of_seq (Queue.to_seq inst.queue)
        in
        Queue.clear inst.queue;
        let now = Engine.now_ms () in
        let quarantined = migrate_entries t ~from_id:inst.id stranded ~now in
        Metrics.Gauge.set (depth_gauge inst) 0.0;
        Mutex.unlock t.lock;
        Chaos.note_triggered Chaos.Crash ~instance:inst.id;
        deliver t quarantined;
        continue_ := false
      | Some { Chaos.kind = Chaos.Hang; _ } ->
        (* The worker freezes holding its claim; the supervisor notices
           the hung state, reclaims the queue and the held entry, and
           the park only ends at fleet shutdown. *)
        inst.state <- Hung;
        inst.running <- true;
        inst.inflight <-
          Some
            {
              if_entry = entry;
              if_job = effective_job t inst entry.q_job;
              if_started = Engine.now_ms ();
              if_hedged = true;  (* never hedge a hung hold: it migrates *)
            };
        Mutex.unlock t.lock;
        Chaos.note_triggered Chaos.Hang ~instance:inst.id;
        Mutex.lock t.lock;
        while not t.stopping do
          Condition.wait t.work t.lock
        done;
        inst.running <- false;
        Mutex.unlock t.lock;
        continue_ := false
      | due ->
        (match due with
        | Some { Chaos.kind = Chaos.Brownout; factor; _ } ->
          inst.state <- Browned factor;
          Chaos.note_triggered Chaos.Brownout ~instance:inst.id
        | _ -> ());
        inst.running <- true;
        inst.inflight <-
          Some
            {
              if_entry = entry;
              if_job = effective_job t inst entry.q_job;
              if_started = Engine.now_ms ();
              if_hedged = entry.q_hedge;  (* never hedge a hedge *)
            };
        Metrics.Gauge.set (inflight_gauge inst) 1.0;
        Metrics.Gauge.set
          (depth_gauge t.instances.(entry.q_admitted_to))
          (float_of_int (Queue.length t.instances.(entry.q_admitted_to).queue));
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        execute t inst entry ~stolen)
    | None ->
      if t.stopping then begin
        Mutex.unlock t.lock;
        continue_ := false
      end
      else begin
        Condition.wait t.work t.lock;
        Mutex.unlock t.lock
      end
  done;
  Metrics.Gauge.set (util_gauge inst) (utilization t inst ~now:(Engine.now_ms ()))

(* ---- the supervisor ----

   A light housekeeping domain, spawned only when the config enables
   chaos or hedging (an undisturbed fleet pays nothing for it).  Each
   tick it (1) reclaims the queue and held entry of hung instances, and
   (2) hedges stragglers: an in-flight job older than
   max(hedge_ms, 3 x class p95) gets a duplicate on another instance. *)
let supervisor_tick_s = 0.002

let hedge_delay_ms t inst =
  let floor_ms = Option.value t.config.hedge_ms ~default:Float.infinity in
  match Obs.Health.status_of ~cls:(class_slug inst.device) with
  | Some { Obs.Health.p95_ms = Some p95; window; _ } when window >= 8 ->
    Float.max floor_ms (3.0 *. p95)
  | _ -> floor_ms

let supervise t () =
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      let now = Engine.now_ms () in
      let quarantined = ref [] in
      Array.iter
        (fun inst ->
          if inst.state = Hung && not inst.reclaimed then begin
            inst.reclaimed <- true;
            let held =
              match inst.inflight with
              | Some inf ->
                inst.inflight <- None;
                [ inf.if_entry ]
              | None -> []
            in
            let stranded = held @ List.of_seq (Queue.to_seq inst.queue) in
            Queue.clear inst.queue;
            Metrics.Gauge.set (depth_gauge inst) 0.0;
            if stranded <> [] then
              quarantined :=
                !quarantined @ migrate_entries t ~from_id:inst.id stranded ~now
          end)
        t.instances;
      if t.config.hedge_ms <> None then
        Array.iter
          (fun inst ->
            match inst.inflight with
            | Some inf
              when (not inf.if_hedged) && alive inst
                   && now -. inf.if_started > hedge_delay_ms t inst -> (
              match place_forced ~exclude:inst t inf.if_job with
              | Some target ->
                inf.if_hedged <- true;
                Hashtbl.replace t.hedged inf.if_entry.q_ticket
                  { h_remaining = 2; h_first = None };
                Queue.push
                  { inf.if_entry with q_job = inf.if_job; q_hedge = true }
                  target.queue;
                note_placed t target;
                Metrics.Counter.incr (m_hedge_launched ());
                Metrics.Gauge.set (depth_gauge target)
                  (float_of_int (Queue.length target.queue));
                Obs.Log.info "fleet.hedge"
                  ~fields:
                    [
                      ("job", Obs.Log.Str inf.if_job.Job.id);
                      ("straggler", Obs.Log.Str inst.id);
                      ("duplicate_on", Obs.Log.Str target.id);
                    ];
                Condition.broadcast t.work
              | None -> ())
            | _ -> ())
          t.instances;
      Mutex.unlock t.lock;
      deliver t !quarantined;
      Unix.sleepf supervisor_tick_s
    end
  done

let needs_supervisor (config : Config.t) =
  config.Config.chaos <> None || config.Config.hedge_ms <> None

let start t =
  Mutex.lock t.lock;
  let spawn = (not t.started) && not t.stopping in
  if spawn then begin
    t.started <- true;
    t.started_at <- Engine.now_ms ()
  end;
  Mutex.unlock t.lock;
  if spawn then begin
    t.workers <-
      Array.init (Array.length t.instances) (fun i ->
          Domain.spawn (worker t i));
    if needs_supervisor t.config then
      t.supervisor <- Some (Domain.spawn (supervise t))
  end

let create ?on_outcome ?(autostart = true) (config : Config.t) =
  (match Config.validate config with
  | Ok () -> ()
  | Error message -> invalid_arg ("Fleet.create: " ^ message));
  let slots =
    List.concat_map
      (fun (device, count) -> List.init count (fun slot -> (device, slot)))
      config.Config.pool
  in
  let t =
    {
      config;
      on_outcome;
      lock = Mutex.create ();
      work = Condition.create ();
      changed = Condition.create ();
      instances =
        Array.of_list
          (List.mapi
             (fun index s ->
               instance_of ?chaos:config.Config.chaos ~index s)
             slots);
      results = Hashtbl.create 64;
      hedged = Hashtbl.create 8;
      next_ticket = 0;
      unsettled = 0;
      stopping = false;
      started = false;
      workers = [||];
      supervisor = None;
      order = Atomic.make 0;
      total_steals = Atomic.make 0;
      started_at = Engine.now_ms ();
    }
  in
  if autostart then start t;
  t

(* ---- submission ---- *)

let submit t (job : Job.t) =
  (* Classification plans on the cost model; do it before the lock so a
     slow first classification never stalls the admission path. *)
  if Job.is_auto job then ignore (classify_job job);
  Mutex.lock t.lock;
  breaker_tick t ~now:(Engine.now_ms ());
  let result =
    if t.stopping then Error Draining
    else
      match place t job with
      | Error r as e ->
        Metrics.Counter.incr (m_rejected ());
        Obs.Tracer.instant ~cat:"fleet"
          ~args:[ ("job", Obs.Tracer.Str job.Job.id) ]
          "reject";
        Obs.Log.warn "fleet.reject"
          ~fields:
            [
              ("job", Obs.Log.Str job.Job.id);
              ("reason", Obs.Log.Str (reject_message r));
            ];
        e
      | Ok inst ->
        let ticket = t.next_ticket in
        t.next_ticket <- ticket + 1;
        let depth = Queue.length inst.queue in
        Queue.push
          {
            q_job = job;
            q_ticket = ticket;
            q_admitted_at = Engine.now_ms ();
            q_depth = depth;
            q_admitted_to = inst.index;
            q_migrations = [];
            q_hedge = false;
          }
          inst.queue;
        note_placed t inst;
        t.unsettled <- t.unsettled + 1;
        Metrics.Counter.incr (m_submitted ());
        Metrics.Gauge.set (depth_gauge inst) (float_of_int (Queue.length inst.queue));
        Obs.Tracer.instant ~cat:"fleet"
          ~args:
            [
              ("job", Obs.Tracer.Str job.Job.id);
              ("to", Obs.Tracer.Str inst.id);
              ("depth", Obs.Tracer.Int depth);
            ]
          "admit";
        Obs.Log.debug "fleet.admit"
          ~fields:
            [
              ("job", Obs.Log.Str job.Job.id);
              ("to", Obs.Log.Str inst.id);
              ("depth", Obs.Log.Int depth);
            ];
        Condition.broadcast t.work;
        Ok ticket
  in
  Mutex.unlock t.lock;
  result

let rec submit_blocking t job =
  match submit t job with
  | Ok ticket -> ticket
  | Error Draining -> invalid_arg "Fleet.submit_blocking: fleet is draining"
  | Error (Queue_full _) ->
    (* Backpressure as blocking: wait for a claim or settlement to free
       queue space, then try again. *)
    Mutex.lock t.lock;
    if t.unsettled > 0 && not t.stopping then Condition.wait t.changed t.lock;
    Mutex.unlock t.lock;
    submit_blocking t job

let await t ticket =
  Mutex.lock t.lock;
  if ticket < 0 || ticket >= t.next_ticket then begin
    Mutex.unlock t.lock;
    invalid_arg (Printf.sprintf "Fleet.await: unknown ticket %d" ticket)
  end;
  if not t.config.retain_outcomes then begin
    Mutex.unlock t.lock;
    invalid_arg "Fleet.await: outcomes are not retained (retain_outcomes)"
  end;
  let rec wait () =
    match Hashtbl.find_opt t.results ticket with
    | Some o ->
      Mutex.unlock t.lock;
      o
    | None ->
      Condition.wait t.changed t.lock;
      wait ()
  in
  wait ()

let quiesce t =
  Mutex.lock t.lock;
  while t.unsettled > 0 do
    Condition.wait t.changed t.lock
  done;
  Mutex.unlock t.lock

let drain t =
  quiesce t;
  Mutex.lock t.lock;
  let outcomes =
    Hashtbl.fold (fun _ o acc -> o :: acc) t.results []
    |> List.sort (fun a b -> compare a.Engine.index b.Engine.index)
  in
  Mutex.unlock t.lock;
  outcomes

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Condition.broadcast t.changed;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  (match t.supervisor with
  | Some d ->
    Domain.join d;
    t.supervisor <- None
  | None -> ())

(* ---- introspection ---- *)

type stats = {
  id : string;
  device : D.t option;
  executed : int;
  stolen : int;
  queue_depth : int;
  busy_ms : float;
  utilization : float;
  state : string;
  breaker : string;
}

let stats t =
  let now = Engine.now_ms () in
  Mutex.lock t.lock;
  let s =
    Array.to_list t.instances
    |> List.map (fun (i : instance) ->
           {
             id = i.id;
             device = i.device;
             executed = i.executed;
             stolen = i.stolen;
             queue_depth = Queue.length i.queue;
             busy_ms = i.busy_ms;
             utilization = utilization t i ~now;
             state = state_name i.state;
             breaker = breaker_state_name i.breaker.b_state;
           })
  in
  Mutex.unlock t.lock;
  s

let steals t = Atomic.get t.total_steals
let size t = Array.length t.instances
let config t = t.config

let reject_to_json job r =
  match r with
  | Queue_full { device_id; queue_depth } ->
    Engine.rejection_to_json job ~message:(reject_message r) ~device_id
      ~queue_depth
  | Draining ->
    Engine.rejection_to_json job ~message:(reject_message r) ~device_id:"-"
      ~queue_depth:0
