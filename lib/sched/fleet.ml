(* The fleet service: a long-running pool of simulated devices behind a
   submission API.

   Each pool entry is an *instance* — one worker domain owning one work
   queue.  Classed instances (several C2050s, P100s, V100s, RTX 2080s)
   give the fleet its heterogeneity: roofline-aware placement routes
   memory-bound jobs (double double — the paper's bandwidth-bound
   regime) to bandwidth-rich classes and compute-bound jobs (octo
   double) to compute-rich ones.  Generic instances (device = None) are
   plain capacity honoring whatever device each job names; the batch
   wrapper in [Scheduler] runs on an all-generic pool.

   Admission control bounds every queue: a submission finding all its
   candidate queues at [max_queue_depth] is rejected — backpressure the
   caller sees synchronously.  Idle workers steal the oldest entry from
   the deepest foreign queue, so a hot class drains across the fleet.

   Locking: one mutex guards the queues, counters and the result table.
   Jobs execute outside the lock, wrapped in [Dompool.Domain_pool
   .isolate] so kernel bodies of executing jobs run inline on the
   worker domain instead of racing on the shared pool's barrier. *)

module D = Gpusim.Device
module Pool = Dompool.Domain_pool
module Metrics = Obs.Metrics
module R = Harness.Runners

module Config = struct
  type t = {
    pool : (D.t option * int) list;
    max_queue_depth : int;
    backoff_ms : float;
    steal : bool;
    retain_outcomes : bool;
  }

  let default =
    {
      pool =
        [
          (Some D.c2050, 2);
          (Some D.p100, 2);
          (Some D.v100, 2);
          (Some D.rtx2080, 2);
        ];
      max_queue_depth = 64;
      backoff_ms = 1.0;
      steal = true;
      retain_outcomes = true;
    }

  let batch ?(parallel = 4) ?(backoff_ms = 1.0) () =
    {
      default with
      pool = [ (None, max 1 parallel) ];
      max_queue_depth = 0;
      backoff_ms;
    }

  (* "v100=2,rtx2080=1" (or "v100,p100" with implicit count 1). *)
  let pool_of_string s =
    String.split_on_char ',' s
    |> List.filter_map (fun part ->
           let part = String.trim part in
           if part = "" then None
           else
             let name, count =
               match String.index_opt part '=' with
               | None -> (part, 1)
               | Some i ->
                 let n = String.sub part 0 i in
                 let c = String.sub part (i + 1) (String.length part - i - 1) in
                 (match int_of_string_opt (String.trim c) with
                 | Some c -> (String.trim n, c)
                 | None ->
                   invalid_arg
                     (Printf.sprintf "pool spec '%s': bad count '%s'" part c))
             in
             if count <= 0 then
               invalid_arg
                 (Printf.sprintf "pool spec '%s': count must be positive" part);
             Some (Some (D.by_name name), count))
end

type reject =
  | Queue_full of { device_id : string; queue_depth : int }
  | Draining

let reject_message = function
  | Queue_full { device_id; queue_depth } ->
    Printf.sprintf "queue full: %s at depth %d" device_id queue_depth
  | Draining -> "fleet is draining"

type ticket = int

type queued = {
  q_job : Job.t;
  q_ticket : ticket;
  q_admitted_at : float;
  q_depth : int;  (* queue depth at admission *)
  q_admitted_to : int;  (* instance index *)
}

type instance = {
  id : string;
  device : D.t option;
  index : int;
  queue : queued Queue.t;
  mutable running : bool;  (* worker is executing a job right now *)
  mutable executed : int;
  mutable stolen : int;  (* jobs this worker claimed from foreign queues *)
  mutable busy_ms : float;
}

type t = {
  config : Config.t;
  on_outcome : (Engine.outcome -> unit) option;
  lock : Mutex.t;
  work : Condition.t;  (* workers wait here for admissions *)
  changed : Condition.t;  (* clients wait here for claims/settlements *)
  instances : instance array;
  results : (ticket, Engine.outcome) Hashtbl.t;
  mutable next_ticket : int;
  mutable unsettled : int;  (* admitted but not yet settled *)
  mutable stopping : bool;
  mutable started : bool;
  mutable workers : unit Domain.t array;
  order : int Atomic.t;  (* completion rank *)
  total_steals : int Atomic.t;
  mutable started_at : float;  (* for utilization *)
}

(* ---- metrics ---- *)

let m_counter name = Metrics.counter (Metrics.default ()) name
let m_gauge name = Metrics.gauge (Metrics.default ()) name

(* [Metrics.once], not [lazy]: worker domains race on the first
   settlement, and a concurrently forced lazy raises. *)
let m_submitted = Metrics.once (fun () -> m_counter "fleet.submitted")
let m_rejected = Metrics.once (fun () -> m_counter "fleet.rejected")
let m_completed = Metrics.once (fun () -> m_counter "fleet.completed")
let m_failed = Metrics.once (fun () -> m_counter "fleet.failed")
let m_attempts = Metrics.once (fun () -> m_counter "fleet.attempts")
let m_steals = Metrics.once (fun () -> m_counter "fleet.steals")

let class_slug = function Some d -> D.slug d | None -> "any"

(* Per-class latency histogram on the fine ladder: p50/p95/p99 per
   device class are read straight off the snapshot. *)
let latency_histogram inst =
  Metrics.histogram ~buckets:Metrics.latency_buckets (Metrics.default ())
    ("fleet.latency_ms." ^ class_slug inst.device)

let depth_gauge inst = m_gauge ("fleet.queue_depth." ^ inst.id)
let util_gauge inst = m_gauge ("fleet.util." ^ inst.id)

(* 1.0 while the instance's worker is executing a job — the live
   counterpart of the time-averaged [util_gauge]. *)
let inflight_gauge inst = m_gauge ("fleet.inflight." ^ inst.id)

(* ---- roofline placement ---- *)

(* Jobs are classified compute- vs memory-bound on a fixed reference
   device (the V100, the paper's flagship) so the verdict — and with it
   the placement — is deterministic and pool-independent: double double
   comes out memory-bound, octo double compute-bound, the paper's CGMA
   shape.  Memoized: a million-job stream re-plans nothing. *)
let classify_memo :
    (Job.kind * Multidouble.Precision.tag * bool * int * int option * int,
     Obs.Roofline.bound)
    Hashtbl.t =
  Hashtbl.create 64

let classify_lock = Mutex.create ()

let classify_job (job : Job.t) =
  let key =
    ( job.Job.kind,
      job.Job.prec,
      job.Job.complex,
      job.Job.dim,
      job.Job.rows,
      job.Job.tile )
  in
  Mutex.lock classify_lock;
  let cached = Hashtbl.find_opt classify_memo key in
  Mutex.unlock classify_lock;
  match cached with
  | Some b -> b
  | None ->
    let bound =
      try
        let complex = job.Job.complex in
        let prec = job.Job.prec in
        let dim = job.Job.dim and tile = job.Job.tile in
        let stages =
          match job.Job.kind with
          | Job.Qr ->
            R.qr_roofline ~complex ?rows:job.Job.rows prec D.v100 ~n:dim ~tile
          | Job.Backsub -> R.bs_roofline ~complex prec D.v100 ~dim ~tile
          | Job.Solve -> R.solve_roofline ~complex prec D.v100 ~n:dim ~tile
        in
        (Obs.Roofline.total stages).Obs.Roofline.bound
      with _ ->
        (* Unplannable (invalid shape): the class hardly matters, the
           job will settle as a validation failure anyway. *)
        Obs.Roofline.Memory
    in
    Mutex.lock classify_lock;
    Hashtbl.replace classify_memo key bound;
    Mutex.unlock classify_lock;
    bound

(* Fault-free roofline stage predictions on the device a job actually
   executed with, feeding the health plane's cost-model drift detector:
   fault-free measured breakdowns reproduce these exactly, so any gap is
   either fault recovery or a miscalibrated model.  Memoized like
   [classify_memo]; [None] marks unplannable shapes. *)
let predict_memo :
    ( Job.kind * Multidouble.Precision.tag * bool * int * int option * int
      * string,
      (string * float) list option )
    Hashtbl.t =
  Hashtbl.create 64

let predict_lock = Mutex.create ()

let predicted_stages (job : Job.t) =
  let key =
    ( job.Job.kind,
      job.Job.prec,
      job.Job.complex,
      job.Job.dim,
      job.Job.rows,
      job.Job.tile,
      job.Job.device )
  in
  Mutex.lock predict_lock;
  let cached = Hashtbl.find_opt predict_memo key in
  Mutex.unlock predict_lock;
  match cached with
  | Some p -> p
  | None ->
    let predicted =
      match D.by_name job.Job.device with
      | exception Invalid_argument _ -> None
      | device -> (
        try
          let complex = job.Job.complex in
          let prec = job.Job.prec in
          let dim = job.Job.dim and tile = job.Job.tile in
          let stages =
            match job.Job.kind with
            | Job.Qr ->
              R.qr_roofline ~complex ?rows:job.Job.rows prec device ~n:dim
                ~tile
            | Job.Backsub -> R.bs_roofline ~complex prec device ~dim ~tile
            | Job.Solve -> R.solve_roofline ~complex prec device ~n:dim ~tile
          in
          Some
            (List.map
               (fun (s : Obs.Roofline.stage) -> (s.Obs.Roofline.stage, s.Obs.Roofline.ms))
               stages)
        with _ -> None)
    in
    Mutex.lock predict_lock;
    Hashtbl.replace predict_memo key predicted;
    Mutex.unlock predict_lock;
    predicted

(* Distinct device classes of the pool, in pool order. *)
let classes t =
  Array.to_list t.instances
  |> List.filter_map (fun i -> i.device)
  |> List.fold_left
       (fun acc d -> if List.exists (fun d' -> d'.D.name = d.D.name) acc then acc else d :: acc)
       []
  |> List.rev

(* Candidate instance groups for one job, most preferred group first.
   Auto jobs rank classes by the roofline verdict: memory-bound work
   prefers bandwidth-rich classes (descending bytes-per-flop),
   compute-bound work compute-rich ones (descending DP peak).  Pinned
   jobs prefer instances of their own class, then generic capacity,
   then anything (the named device is simulated wherever the job runs —
   instances are capacity, the simulation uses [job.device]). *)
let candidate_groups t (job : Job.t) =
  let instances = Array.to_list t.instances in
  let of_class d =
    List.filter
      (fun i -> match i.device with Some d' -> d'.D.name = d.D.name | None -> false)
      instances
  in
  let generic = List.filter (fun i -> i.device = None) instances in
  if Job.is_auto job then begin
    let ranked =
      let cs = classes t in
      match classify_job job with
      | Obs.Roofline.Memory ->
        List.sort
          (fun a b ->
            match compare (D.bytes_per_flop b) (D.bytes_per_flop a) with
            | 0 -> compare b.D.dram_gb_s a.D.dram_gb_s
            | c -> c)
          cs
      | Obs.Roofline.Compute ->
        List.sort
          (fun a b ->
            match compare b.D.dp_peak_gflops a.D.dp_peak_gflops with
            | 0 -> compare b.D.dram_gb_s a.D.dram_gb_s
            | c -> c)
          cs
    in
    List.map of_class ranked @ [ generic ]
  end
  else
    match D.by_name job.Job.device with
    | d ->
      let same = of_class d in
      let rest =
        List.filter (fun i -> not (List.memq i same || List.memq i generic)) instances
      in
      [ same; generic; rest ]
    | exception Invalid_argument _ ->
      (* Unknown device: any capacity will do, the job settles as a
         validation failure. *)
      [ instances ]

let queue_full t depth = t.config.max_queue_depth > 0 && depth >= t.config.max_queue_depth

(* Shortest queue of the most preferred group with room; [Error] is the
   preferred instance we would have used, for the rejection record. *)
let place t job =
  let groups = List.filter (fun g -> g <> []) (candidate_groups t job) in
  let by_depth g =
    List.stable_sort (fun a b -> compare (Queue.length a.queue) (Queue.length b.queue)) g
  in
  let rec go preferred = function
    | [] -> (
      match preferred with
      | Some i -> Error (Queue_full { device_id = i.id; queue_depth = Queue.length i.queue })
      | None -> Error (Queue_full { device_id = "-"; queue_depth = 0 }))
    | g :: rest -> (
      match by_depth g with
      | [] -> go preferred rest
      | best :: _ as sorted -> (
        let preferred = if preferred = None then Some best else preferred in
        match List.find_opt (fun i -> not (queue_full t (Queue.length i.queue))) sorted with
        | Some i -> Ok i
        | None -> go preferred rest))
  in
  go None groups

(* ---- lifecycle ---- *)

let instance_of ~index (device, slot) =
  {
    id = Printf.sprintf "%s#%d" (class_slug device) slot;
    device;
    index;
    queue = Queue.create ();
    running = false;
    executed = 0;
    stolen = 0;
    busy_ms = 0.0;
  }

(* The device an auto job executes on when a generic instance claims
   it: the pool's compute flagship, or the V100 on an all-generic
   pool. *)
let reference_device t =
  match classes t with
  | [] -> D.v100
  | cs ->
    List.fold_left
      (fun best d -> if d.D.dp_peak_gflops > best.D.dp_peak_gflops then d else best)
      (List.hd cs) (List.tl cs)

let effective_job t inst (job : Job.t) =
  if Job.is_auto job then
    let d = match inst.device with Some d -> d | None -> reference_device t in
    { job with Job.device = D.slug d }
  else job

let utilization t inst ~now =
  let span = now -. t.started_at in
  if span <= 0.0 then 0.0 else Float.min 1.0 (inst.busy_ms /. span)

(* One claimed entry, start to finish; runs outside the fleet lock. *)
let execute t inst entry ~stolen =
  let job = effective_job t inst entry.q_job in
  let admitted_to = t.instances.(entry.q_admitted_to).id in
  if stolen then begin
    Atomic.incr t.total_steals;
    Metrics.Counter.incr (m_steals ());
    Obs.Tracer.instant ~cat:"fleet"
      ~args:
        [
          ("job", Obs.Tracer.Str job.Job.id);
          ("by", Obs.Tracer.Str inst.id);
          ("owner", Obs.Tracer.Str admitted_to);
        ]
      "steal";
    Obs.Log.info "fleet.steal"
      ~fields:
        [
          ("job", Obs.Log.Str job.Job.id);
          ("by", Obs.Log.Str inst.id);
          ("owner", Obs.Log.Str admitted_to);
        ]
  end;
  let attempts, elapsed_ms, timing, status =
    Pool.isolate (fun () ->
        Engine.settle ~backoff_ms:t.config.backoff_ms
          ~queued_at:entry.q_admitted_at job)
  in
  let now = Engine.now_ms () in
  let latency_ms = Float.max 0.0 (now -. entry.q_admitted_at) in
  let outcome =
    {
      Engine.job;
      index = entry.q_ticket;
      order = Atomic.fetch_and_add t.order 1;
      attempts;
      elapsed_ms;
      timing;
      placement =
        Some
          {
            Engine.device_id = inst.id;
            admitted_to;
            steals = (if stolen then 1 else 0);
            queue_depth = entry.q_depth;
          };
      status;
    }
  in
  Metrics.Counter.incr ~by:attempts (m_attempts ());
  Metrics.Counter.incr
    ((match status with
     | Engine.Completed _ -> m_completed
     | Engine.Failed _ -> m_failed)
       ());
  Metrics.Histogram.observe (latency_histogram inst) latency_ms;
  let cls = class_slug inst.device in
  (match status with
  | Engine.Completed report ->
    Obs.Health.observe ~cls ~ok:true ~latency_ms;
    Obs.Log.debug "fleet.job_completed"
      ~fields:
        [
          ("job", Obs.Log.Str job.Job.id);
          ("instance", Obs.Log.Str inst.id);
          ("attempts", Obs.Log.Int attempts);
          ("latency_ms", Obs.Log.Float latency_ms);
        ];
    (* Drift: fault-free roofline prediction vs the measured breakdown,
       stage by stage.  Stages the model does not plan (e.g. the ABFT
       checks of fault-tolerant runs) have no prediction and are
       skipped. *)
    (match predicted_stages job with
    | Some predicted ->
      List.iter
        (fun (row : Harness.Report.Row.t) ->
          match List.assoc_opt row.Harness.Report.Row.stage predicted with
          | Some predicted_ms ->
            Obs.Health.observe_model ~stage:row.Harness.Report.Row.stage
              ~predicted_ms ~measured_ms:row.Harness.Report.Row.ms
          | None -> ())
        report.Harness.Report.stages
    | None -> ())
  | Engine.Failed f ->
    Obs.Health.observe ~cls ~ok:false ~latency_ms;
    Obs.Log.error "fleet.job_failed"
      ~fields:
        [
          ("job", Obs.Log.Str job.Job.id);
          ("instance", Obs.Log.Str inst.id);
          ("attempts", Obs.Log.Int attempts);
          ("message", Obs.Log.Str f.Engine.message);
          ("timed_out", Obs.Log.Bool f.Engine.timed_out);
        ]);
  Mutex.lock t.lock;
  inst.running <- false;
  inst.executed <- inst.executed + 1;
  if stolen then inst.stolen <- inst.stolen + 1;
  inst.busy_ms <- inst.busy_ms +. elapsed_ms;
  if t.config.retain_outcomes then Hashtbl.replace t.results entry.q_ticket outcome;
  t.unsettled <- t.unsettled - 1;
  Condition.broadcast t.changed;
  Mutex.unlock t.lock;
  Metrics.Gauge.set (util_gauge inst) (utilization t inst ~now);
  Metrics.Gauge.set (inflight_gauge inst) 0.0;
  match t.on_outcome with
  | Some f -> ( try f outcome with _ -> ())
  | None -> ()

(* Claim the next entry for [inst]: its own queue first (FIFO), then —
   when stealing is on — the oldest entry of the deepest foreign queue
   whose owner cannot get to it (it is executing, or already at the
   fleet's shutdown with more than one entry waiting).  An idle owner
   keeps its queue: it was woken by the same admission broadcast and
   claims the entry itself, so stealing never beats the placement
   policy to a job the preferred device would have started at once.
   Called with the lock held. *)
let claim t inst =
  if not (Queue.is_empty inst.queue) then Some (Queue.pop inst.queue, false)
  else if not t.config.steal then None
  else begin
    let stealable other =
      other != inst
      && (not (Queue.is_empty other.queue))
      && (other.running || t.stopping || Queue.length other.queue > 1)
    in
    let victim = ref None in
    Array.iter
      (fun other ->
        if stealable other then
          match !victim with
          | Some v when Queue.length v.queue >= Queue.length other.queue -> ()
          | _ -> victim := Some other)
      t.instances;
    match !victim with
    | Some v -> Some (Queue.pop v.queue, true)
    | None -> None
  end

let worker t index () =
  let inst = t.instances.(index) in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.lock;
    match claim t inst with
    | Some (entry, stolen) ->
      inst.running <- true;
      Metrics.Gauge.set (inflight_gauge inst) 1.0;
      Metrics.Gauge.set
        (depth_gauge t.instances.(entry.q_admitted_to))
        (float_of_int (Queue.length t.instances.(entry.q_admitted_to).queue));
      Condition.broadcast t.changed;
      Mutex.unlock t.lock;
      execute t inst entry ~stolen
    | None ->
      if t.stopping then begin
        Mutex.unlock t.lock;
        continue_ := false
      end
      else begin
        Condition.wait t.work t.lock;
        Mutex.unlock t.lock
      end
  done;
  Metrics.Gauge.set (util_gauge inst) (utilization t inst ~now:(Engine.now_ms ()))

let start t =
  Mutex.lock t.lock;
  let spawn = (not t.started) && not t.stopping in
  if spawn then begin
    t.started <- true;
    t.started_at <- Engine.now_ms ()
  end;
  Mutex.unlock t.lock;
  if spawn then
    t.workers <-
      Array.init (Array.length t.instances) (fun i ->
          Domain.spawn (worker t i))

let create ?on_outcome ?(autostart = true) (config : Config.t) =
  let slots =
    List.concat_map
      (fun (device, count) ->
        if count <= 0 then
          invalid_arg "Fleet.create: pool entry with non-positive count"
        else List.init count (fun slot -> (device, slot)))
      config.Config.pool
  in
  if slots = [] then invalid_arg "Fleet.create: empty pool";
  let t =
    {
      config;
      on_outcome;
      lock = Mutex.create ();
      work = Condition.create ();
      changed = Condition.create ();
      instances = Array.of_list (List.mapi (fun index s -> instance_of ~index s) slots);
      results = Hashtbl.create 64;
      next_ticket = 0;
      unsettled = 0;
      stopping = false;
      started = false;
      workers = [||];
      order = Atomic.make 0;
      total_steals = Atomic.make 0;
      started_at = Engine.now_ms ();
    }
  in
  if autostart then start t;
  t

(* ---- submission ---- *)

let submit t (job : Job.t) =
  (* Classification plans on the cost model; do it before the lock so a
     slow first classification never stalls the admission path. *)
  if Job.is_auto job then ignore (classify_job job);
  Mutex.lock t.lock;
  let result =
    if t.stopping then Error Draining
    else
      match place t job with
      | Error r as e ->
        Metrics.Counter.incr (m_rejected ());
        Obs.Tracer.instant ~cat:"fleet"
          ~args:[ ("job", Obs.Tracer.Str job.Job.id) ]
          "reject";
        Obs.Log.warn "fleet.reject"
          ~fields:
            [
              ("job", Obs.Log.Str job.Job.id);
              ("reason", Obs.Log.Str (reject_message r));
            ];
        e
      | Ok inst ->
        let ticket = t.next_ticket in
        t.next_ticket <- ticket + 1;
        let depth = Queue.length inst.queue in
        Queue.push
          {
            q_job = job;
            q_ticket = ticket;
            q_admitted_at = Engine.now_ms ();
            q_depth = depth;
            q_admitted_to = inst.index;
          }
          inst.queue;
        t.unsettled <- t.unsettled + 1;
        Metrics.Counter.incr (m_submitted ());
        Metrics.Gauge.set (depth_gauge inst) (float_of_int (Queue.length inst.queue));
        Obs.Tracer.instant ~cat:"fleet"
          ~args:
            [
              ("job", Obs.Tracer.Str job.Job.id);
              ("to", Obs.Tracer.Str inst.id);
              ("depth", Obs.Tracer.Int depth);
            ]
          "admit";
        Obs.Log.debug "fleet.admit"
          ~fields:
            [
              ("job", Obs.Log.Str job.Job.id);
              ("to", Obs.Log.Str inst.id);
              ("depth", Obs.Log.Int depth);
            ];
        Condition.broadcast t.work;
        Ok ticket
  in
  Mutex.unlock t.lock;
  result

let rec submit_blocking t job =
  match submit t job with
  | Ok ticket -> ticket
  | Error Draining -> invalid_arg "Fleet.submit_blocking: fleet is draining"
  | Error (Queue_full _) ->
    (* Backpressure as blocking: wait for a claim or settlement to free
       queue space, then try again. *)
    Mutex.lock t.lock;
    if t.unsettled > 0 && not t.stopping then Condition.wait t.changed t.lock;
    Mutex.unlock t.lock;
    submit_blocking t job

let await t ticket =
  Mutex.lock t.lock;
  if ticket < 0 || ticket >= t.next_ticket then begin
    Mutex.unlock t.lock;
    invalid_arg (Printf.sprintf "Fleet.await: unknown ticket %d" ticket)
  end;
  if not t.config.retain_outcomes then begin
    Mutex.unlock t.lock;
    invalid_arg "Fleet.await: outcomes are not retained (retain_outcomes)"
  end;
  let rec wait () =
    match Hashtbl.find_opt t.results ticket with
    | Some o ->
      Mutex.unlock t.lock;
      o
    | None ->
      Condition.wait t.changed t.lock;
      wait ()
  in
  wait ()

let quiesce t =
  Mutex.lock t.lock;
  while t.unsettled > 0 do
    Condition.wait t.changed t.lock
  done;
  Mutex.unlock t.lock

let drain t =
  quiesce t;
  Mutex.lock t.lock;
  let outcomes =
    Hashtbl.fold (fun _ o acc -> o :: acc) t.results []
    |> List.sort (fun a b -> compare a.Engine.index b.Engine.index)
  in
  Mutex.unlock t.lock;
  outcomes

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Condition.broadcast t.changed;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* ---- introspection ---- *)

type stats = {
  id : string;
  device : D.t option;
  executed : int;
  stolen : int;
  queue_depth : int;
  busy_ms : float;
  utilization : float;
}

let stats t =
  let now = Engine.now_ms () in
  Mutex.lock t.lock;
  let s =
    Array.to_list t.instances
    |> List.map (fun (i : instance) ->
           {
             id = i.id;
             device = i.device;
             executed = i.executed;
             stolen = i.stolen;
             queue_depth = Queue.length i.queue;
             busy_ms = i.busy_ms;
             utilization = utilization t i ~now;
           })
  in
  Mutex.unlock t.lock;
  s

let steals t = Atomic.get t.total_steals
let size t = Array.length t.instances
let config t = t.config

let reject_to_json job r =
  match r with
  | Queue_full { device_id; queue_depth } ->
    Engine.rejection_to_json job ~message:(reject_message r) ~device_id
      ~queue_depth
  | Draining ->
    Engine.rejection_to_json job ~message:(reject_message r) ~device_id:"-"
      ~queue_depth:0
