(* The per-job execution engine: one job's full lifecycle (validation,
   bounded retry with exponential backoff, cooperative timeout) settling
   into a structured outcome, plus the versioned JSON-lines outcome
   codec.  The fleet service and the batch wrapper both drive jobs
   through [settle]; neither ever sees an exception escape it. *)

module Json = Harness.Json
module Report = Harness.Report
module R = Harness.Runners

type failure = { message : string; timed_out : bool; retryable : bool }

type status = Completed of Report.t | Failed of failure

type timing = {
  queue_wait_ms : float;
  attempt_ms : float list;
  backoff_ms : float;
}

(* Where the fleet put the job: the instance that executed it, how it
   got there, how deep the admitted queue was, and — when the resilience
   plane had to move it — the trail of instances it was reclaimed from. *)
type placement = {
  device_id : string;
  admitted_to : string;
  steals : int;
  queue_depth : int;
  migrations : string list;
  hedged : bool;
}

type outcome = {
  job : Job.t;
  index : int;
  order : int;
  attempts : int;
  elapsed_ms : float;
  timing : timing;
  placement : placement option;
  status : status;
}

(* v6: solver-engine seam — jobs carry an optional solver method and
   completed reports embed the schema-4 report with its solver record;
   v5 added the resilience plane (migration trail and hedge flag in the
   placement record), v4 fleet placement, v3 the retryable
   classification, v2 per-attempt timing. *)
let schema_version = 6

exception Injected_failure

(* Only transient faults are worth another attempt: the testing hook and
   escaped injected faults from the simulator's fault plane.  Everything
   else — validation errors, bad arguments, deterministic numeric
   failures — would fail identically again, so it settles immediately
   without burning retries or backoff sleeps. *)
let classify = function
  | Injected_failure -> ("injected failure", true)
  | Fault.Plan.Injected _ as e -> (Printexc.to_string e, true)
  | e -> (Printexc.to_string e, false)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Seeded per-job jitter on the exponential backoff: a retry stampede of
   jobs knocked over together by one dying device must not hammer its
   replacement in lockstep.  The multiplier for the [attempt]-th pause is
   uniform in [1, 2), drawn from a splitmix stream keyed on (job id,
   fault seed, attempt) — so two jobs back off differently, but any one
   job replays its exact pause sequence from the job record alone. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Int64.to_int !h

let backoff_pause_ms ~backoff_ms (job : Job.t) ~attempt =
  let seed =
    fnv1a64 job.Job.id
    lxor (job.Job.fault_seed * 0x9e3779b9)
    lxor (attempt * 0x85ebca6b)
  in
  let u = Dompool.Prng.float (Dompool.Prng.create seed) in
  backoff_ms *. Float.of_int (1 lsl (attempt - 1)) *. (1.0 +. u)

(* One synchronous run of the job proper: plan (or, with [execute], plan
   plus a numeric verification whose residual lands in the report).  An
   armed fault plan is threaded into the simulators; executed solve jobs
   switch to the fault-tolerant runner, whose report already carries the
   residual, the fault tally and the refinement flag. *)
let run_job (job : Job.t) =
  let device = Gpusim.Device.by_name job.Job.device in
  let complex = job.Job.complex in
  let prec = job.Job.prec in
  let dim = job.Job.dim and tile = job.Job.tile in
  let fault = Job.fault_config job in
  let method_ = job.Job.solver in
  let rows = job.Job.rows in
  match (job.Job.execute, job.Job.kind, fault) with
  | true, Job.Solve, Some _ ->
    R.solve_ft ~complex ?fault ~method_ prec device ~n:dim ~tile
  | false, _, _ ->
    (match job.Job.kind with
    | Job.Qr -> R.qr ~complex ?rows ?fault prec device ~n:dim ~tile
    | Job.Backsub -> R.bs ~complex ?fault prec device ~dim ~tile
    | Job.Solve -> R.solve ~complex ?fault ~method_ ?rows prec device ~n:dim ~tile)
  | true, _, _ ->
    (* Plan for the cost figures, verify (under the fault plan, if any)
       for the residual; an escalation out of the verification run is a
       retryable failure for [settle]. *)
    let base =
      match job.Job.kind with
      | Job.Qr -> R.qr ~complex ?rows prec device ~n:dim ~tile
      | Job.Backsub -> R.bs ~complex prec device ~dim ~tile
      | Job.Solve -> R.solve ~complex ~method_ ?rows prec device ~n:dim ~tile
    in
    let residual =
      match job.Job.kind with
      | Job.Qr -> R.verify_qr ~complex ?fault prec device ~n:dim ~tile
      | Job.Backsub -> R.verify_bs ~complex ?fault prec device ~dim ~tile
      | Job.Solve ->
        R.verify_solve ~complex ?fault ~method_ ?rows prec device ~n:dim ~tile
    in
    { base with Report.residual = Some residual }

(* The full lifecycle of one job: validation, then up to [1 + retries]
   attempts under the cooperative wall-clock budget, with exponential
   backoff between attempts.  Never raises. *)
let settle ~backoff_ms ~queued_at (job : Job.t) =
  let started = now_ms () in
  let elapsed () = now_ms () -. started in
  let queue_wait_ms = Float.max 0.0 (started -. queued_at) in
  let attempt_times = ref [] in
  let backoff_total = ref 0.0 in
  let finish attempts status =
    let timing =
      {
        queue_wait_ms;
        attempt_ms = List.rev !attempt_times;
        backoff_ms = !backoff_total;
      }
    in
    (attempts, elapsed (), timing, status)
  in
  let timed_out_failure message =
    Obs.Tracer.instant ~cat:"sched"
      ~args:[ ("job", Obs.Tracer.Str job.Job.id) ]
      "timeout";
    Obs.Log.warn "job.timeout"
      ~fields:
        [
          ("job", Obs.Log.Str job.Job.id);
          ("message", Obs.Log.Str message);
        ];
    Failed { message; timed_out = true; retryable = false }
  in
  let deadline =
    match job.Job.timeout_ms with
    | Some ms -> started +. ms
    | None -> Float.infinity
  in
  match Job.validate job with
  | Error message ->
    finish 0 (Failed { message; timed_out = false; retryable = false })
  | Ok () when Job.is_auto job ->
    (* Never placed: the wildcard is only resolvable by a fleet. *)
    finish 0
      (Failed
         {
           message =
             Printf.sprintf
               "job '%s': device 'auto' needs fleet placement" job.Job.id;
           timed_out = false;
           retryable = false;
         })
  | Ok () ->
    let max_attempts = 1 + job.Job.retries in
    let rec go attempt =
      if now_ms () > deadline then
        finish (attempt - 1)
          (timed_out_failure
             (Printf.sprintf "timed out after %d attempt%s" (attempt - 1)
                (if attempt - 1 = 1 then "" else "s")))
      else
        let result =
          Obs.Tracer.span ~cat:"sched"
            ~args:
              [
                ("job", Obs.Tracer.Str job.Job.id);
                ("attempt", Obs.Tracer.Int attempt);
              ]
            "attempt"
            (fun () ->
              let t0 = now_ms () in
              let r =
                try
                  if attempt <= job.Job.inject_failures then
                    raise Injected_failure
                  else Ok (run_job job)
                with e -> Error (classify e)
              in
              attempt_times := (now_ms () -. t0) :: !attempt_times;
              r)
        in
        match result with
        | Ok report ->
          if now_ms () > deadline then
            finish attempt
              (timed_out_failure
                 (Printf.sprintf
                    "completed past the deadline on attempt %d (result \
                     discarded)"
                    attempt))
          else finish attempt (Completed report)
        | Error (message, retryable) ->
          if retryable && attempt < max_attempts then begin
            Obs.Log.warn "job.retry"
              ~fields:
                [
                  ("job", Obs.Log.Str job.Job.id);
                  ("attempt", Obs.Log.Int attempt);
                  ("of", Obs.Log.Int max_attempts);
                  ("error", Obs.Log.Str message);
                ];
            let pause = backoff_pause_ms ~backoff_ms job ~attempt /. 1000.0 in
            if pause > 0.0 then begin
              backoff_total := !backoff_total +. (pause *. 1000.0);
              Obs.Tracer.span ~cat:"sched"
                ~args:[ ("job", Obs.Tracer.Str job.Job.id) ]
                "backoff"
                (fun () -> Unix.sleepf pause)
            end;
            go (attempt + 1)
          end
          else
            (* Permanent failures settle on the spot: a deterministic
               error would only fail the same way again. *)
            finish attempt (Failed { message; timed_out = false; retryable })
    in
    go 1

(* ---- serialization ---- *)

let json_of_timing t =
  Json.Obj
    [
      ("queue_wait_ms", Json.Float t.queue_wait_ms);
      ( "attempt_ms",
        Json.Arr (List.map (fun ms -> Json.Float ms) t.attempt_ms) );
      ("backoff_sleep_ms", Json.Float t.backoff_ms);
    ]

let timing_of_json j =
  {
    queue_wait_ms = Json.get_float (Json.member "queue_wait_ms" j);
    attempt_ms =
      List.map Json.get_float (Json.get_list (Json.member "attempt_ms" j));
    backoff_ms = Json.get_float (Json.member "backoff_sleep_ms" j);
  }

let json_of_placement p =
  Json.Obj
    [
      ("device_id", Json.Str p.device_id);
      ("admitted_to", Json.Str p.admitted_to);
      ("steals", Json.Int p.steals);
      ("queue_depth", Json.Int p.queue_depth);
      ("migrations", Json.Arr (List.map (fun i -> Json.Str i) p.migrations));
      ("hedged", Json.Bool p.hedged);
    ]

let placement_of_json j =
  {
    device_id = Json.get_string (Json.member "device_id" j);
    admitted_to = Json.get_string (Json.member "admitted_to" j);
    steals = Json.get_int (Json.member "steals" j);
    queue_depth = Json.get_int (Json.member "queue_depth" j);
    migrations =
      List.map Json.get_string (Json.get_list (Json.member "migrations" j));
    hedged = Json.get_bool (Json.member "hedged" j);
  }

let outcome_to_json o =
  Json.Obj
    ([
       ("schema", Json.Int schema_version);
       ("index", Json.Int o.index);
       ("order", Json.Int o.order);
       ("attempts", Json.Int o.attempts);
       ("elapsed_ms", Json.Float o.elapsed_ms);
       ("timing", json_of_timing o.timing);
     ]
    @ (match o.placement with
      | Some p -> [ ("placement", json_of_placement p) ]
      | None -> [])
    @ [ ("job", Job.to_json o.job) ]
    @
    match o.status with
    | Completed report ->
      [ ("status", Json.Str "completed"); ("report", Report.to_json report) ]
    | Failed f ->
      [
        ("status", Json.Str "failed");
        ( "error",
          Json.Obj
            [
              ("message", Json.Str f.message);
              ("timed_out", Json.Bool f.timed_out);
              ("retryable", Json.Bool f.retryable);
            ] );
      ])

let outcome_of_json j =
  let v = Json.get_int (Json.member "schema" j) in
  if v <> schema_version then
    raise
      (Json.Error
         (Printf.sprintf "outcome schema %d, this build reads schema %d" v
            schema_version));
  let status =
    match Json.get_string (Json.member "status" j) with
    | "completed" -> Completed (Report.of_json (Json.member "report" j))
    | "failed" ->
      let e = Json.member "error" j in
      Failed
        {
          message = Json.get_string (Json.member "message" e);
          timed_out = Json.get_bool (Json.member "timed_out" e);
          retryable = Json.get_bool (Json.member "retryable" e);
        }
    | s -> raise (Json.Error (Printf.sprintf "unknown status '%s'" s))
  in
  {
    job = Job.of_json (Json.member "job" j);
    index = Json.get_int (Json.member "index" j);
    order = Json.get_int (Json.member "order" j);
    attempts = Json.get_int (Json.member "attempts" j);
    elapsed_ms = Json.get_float (Json.member "elapsed_ms" j);
    timing = timing_of_json (Json.member "timing" j);
    placement = Json.to_option placement_of_json (Json.member "placement" j);
    status;
  }

(* A submission the fleet's admission control refused: not an outcome
   (the job never entered a queue), but serve mode still answers with a
   schema-stamped line so a client can tell backpressure from silence. *)
let rejection_to_json (job : Job.t) ~message ~device_id ~queue_depth =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("status", Json.Str "rejected");
      ("job", Job.to_json job);
      ( "error",
        Json.Obj
          [
            ("message", Json.Str message);
            ("device_id", Json.Str device_id);
            ("queue_depth", Json.Int queue_depth);
          ] );
    ]

let write_jsonl oc outcomes =
  List.iter
    (fun o ->
      output_string oc (Json.to_string (outcome_to_json o));
      output_char oc '\n')
    outcomes

let read_jsonl ic =
  let rec go acc =
    match input_line ic with
    | line ->
      if String.trim line = "" then go acc
      else go (outcome_of_json (Json.of_string line) :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []
