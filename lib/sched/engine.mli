(** The per-job execution engine shared by the {!Fleet} service and the
    batch wrapper in {!Scheduler}: one job's full lifecycle — validation,
    bounded retry with exponential backoff, cooperative timeout —
    settling into a structured {!outcome}, plus the versioned JSON-lines
    outcome codec (schema {!schema_version}).

    {!Scheduler} re-exports every type here under its historical names;
    new code driving jobs directly should use this module. *)

type failure = {
  message : string;
  timed_out : bool;  (** the job exhausted its [timeout_ms] budget *)
  retryable : bool;
      (** how the error was classified: transient faults (the injection
          hook, escaped {!Fault.Plan.Injected} escalations) retry with
          backoff; validation errors and deterministic failures settle
          on the first attempt without burning retries *)
}

type status =
  | Completed of Harness.Report.t
  | Failed of failure

(** Where one job's wall clock went. *)
type timing = {
  queue_wait_ms : float;
      (** from admission to a worker claiming the job *)
  attempt_ms : float list;
      (** run time of each attempt, in attempt order; its length is
          [attempts] *)
  backoff_ms : float;  (** total backoff sleep between attempts *)
}

(** Where the fleet put the job. *)
type placement = {
  device_id : string;
      (** fleet instance that executed the job, e.g. ["v100#1"] *)
  admitted_to : string;
      (** instance whose queue admitted it; differs from [device_id]
          exactly when the job was stolen *)
  steals : int;  (** queue hops by work stealing (0 or 1) *)
  queue_depth : int;  (** depth of the admitted queue at admission *)
  migrations : string list;
      (** instances the job was reclaimed from (crashed, hung or
          breaker-evicted), oldest first; [[]] for an undisturbed job *)
  hedged : bool;
      (** a hedge duplicate was launched for this job; the outcome is
          whichever copy finished first *)
}

type outcome = {
  job : Job.t;
      (** the job as executed — for auto-placed jobs the [device] field
          carries the class the fleet chose *)
  index : int;  (** admission order (the fleet ticket) *)
  order : int;  (** completion rank (0 = finished first) *)
  attempts : int;  (** run attempts made; 0 when validation rejected it *)
  elapsed_ms : float;  (** wall clock across all attempts and backoffs *)
  timing : timing;
  placement : placement option;
      (** [None] for outcomes produced outside a fleet *)
  status : status;
}

val schema_version : int
(** Version stamped into (and required of) every serialized outcome:
    6 (solver-engine seam: jobs carry an optional solver method and
    completed reports embed the schema-4 report with its solver record;
    v5 added the migration trail and hedge flag in the placement
    record, v4 fleet placement, v3 the retryable classification, v2
    per-attempt timing). *)

exception Injected_failure
(** The testing hook raised by the [inject_failures] leading attempts;
    classified retryable. *)

val classify : exn -> string * bool
(** [(message, retryable)] of an attempt's exception. *)

val now_ms : unit -> float
(** The engine's wall clock (Unix epoch milliseconds). *)

val run_job : Job.t -> Harness.Report.t
(** Runs one job synchronously (no retry, timeout or failure injection):
    dispatches on the kind — solve jobs through the engine the job's
    [solver] method names — and when [job.execute] is set additionally
    executes the kernels numerically and attaches the residual record.
    A positive [fault_rate] arms the simulator fault plane
    ({!Job.fault_config}); executed solve jobs then run through
    {!Harness.Runners.solve_ft}, whose report carries the fault tally
    and refinement flag.  Raises whatever the runner raises — including
    [Fault.Plan.Injected] on an escalated fault, which {!settle}
    classifies as retryable — and [Invalid_argument] on an unresolved
    {!Job.auto_device}. *)

val backoff_pause_ms : backoff_ms:float -> Job.t -> attempt:int -> float
(** The jittered pause (in ms) {!settle} sleeps after the [attempt]-th
    failed attempt: [backoff_ms * 2^(attempt-1) * (1 + u)] with [u]
    uniform in [0, 1) drawn from a stream seeded by the job's id and
    fault seed.  Deterministic per [(job, attempt)], different across
    jobs — synchronized retries cannot stampede a recovering device. *)

val settle :
  backoff_ms:float ->
  queued_at:float ->
  Job.t ->
  int * float * timing * status
(** [settle ~backoff_ms ~queued_at job] is the full lifecycle of one
    job: [(attempts, elapsed_ms, timing, status)].  Validation failures
    (including an unplaced {!Job.auto_device}) settle with 0 attempts;
    otherwise up to [1 + retries] attempts run under the cooperative
    wall-clock budget with seeded-jitter exponential backoff
    ({!backoff_pause_ms}).  Never raises. *)

val outcome_to_json : outcome -> Harness.Json.t
val outcome_of_json : Harness.Json.t -> outcome
(** Raises [Harness.Json.Error] on malformed documents or a
    schema-version mismatch. *)

val rejection_to_json :
  Job.t ->
  message:string ->
  device_id:string ->
  queue_depth:int ->
  Harness.Json.t
(** The schema-stamped line serve mode answers for a submission the
    fleet's admission control refused ([{"status": "rejected"}]) — not
    an outcome, the job never entered a queue. *)

val write_jsonl : out_channel -> outcome list -> unit
(** One outcome object per line. *)

val read_jsonl : in_channel -> outcome list
(** Reads outcome lines until end of input, skipping blank lines. *)
