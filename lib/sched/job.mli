(** One least-squares job of a batch: which experiment, on which
    simulated device, at which precision and shape, planned (cost
    accounting only) or executed numerically.

    Jobs serialize to the same versioned JSON schema as the scheduler's
    outcome records ({!Scheduler.schema_version}); a jobs file is either
    a JSON array of job objects or one job object per line. *)

type kind = Qr | Backsub | Solve

type t = {
  id : string;  (** unique within the batch; used in the result records *)
  kind : kind;
  device : string;
      (** device name, resolved via {!Gpusim.Device.by_name}, or
          {!auto_device} to let the fleet's roofline placement pick the
          class (memory-bound work to bandwidth-rich devices,
          compute-bound to compute-rich ones) *)
  prec : Multidouble.Precision.tag;
  complex : bool;
  dim : int;
  rows : int option;
      (** QR and solve jobs: row count (default: square).  A tall solve
          runs the economy factorization — or, with an iterative
          [solver], the overdetermined system the iterative engines are
          built for. *)
  tile : int;
  solver : Lsq_core.Solver.method_;
      (** solve jobs: the engine behind the pluggable solve path —
          direct QR (the default), CG on the normal equations, or LSQR.
          Iterative engines are rejected by {!validate} on other
          kinds. *)
  execute : bool;
      (** run the kernels numerically and attach a residual (keep the
          dimension moderate); default is cost accounting only *)
  timeout_ms : float option;
      (** per-job wall-clock budget across all attempts.  The check is
          cooperative: it runs between attempts and when an attempt
          completes, so a running attempt is never interrupted — its
          result is discarded when it lands past the deadline. *)
  retries : int;  (** additional attempts allowed after a failed one *)
  inject_failures : int;
      (** testing hook: this many leading attempts fail artificially
          ("injected failure"), exercising retry and degradation paths *)
  fault_rate : float;
      (** per-launch strike probability of the simulator's fault plane;
          0 (the default) leaves the plane disarmed and the job
          bit-identical to a fault-free build *)
  fault_seed : int;  (** campaign seed; same seed + job => same faults *)
  fault_kinds : Fault.Plan.kind list;  (** armed kinds (default: all) *)
}

val make :
  ?complex:bool ->
  ?rows:int ->
  ?solver:Lsq_core.Solver.method_ ->
  ?execute:bool ->
  ?timeout_ms:float ->
  ?retries:int ->
  ?inject_failures:int ->
  ?fault_rate:float ->
  ?fault_seed:int ->
  ?fault_kinds:Fault.Plan.kind list ->
  id:string ->
  kind:kind ->
  device:string ->
  prec:Multidouble.Precision.tag ->
  dim:int ->
  tile:int ->
  unit ->
  t
(** Defaults: real data, square, direct QR engine, plan only, no
    timeout, [retries = 1], no injected failures, fault plane
    disarmed. *)

val auto_device : string
(** The placement wildcard ["auto"]: valid for submission to a fleet,
    which resolves it to a concrete device class; not runnable
    directly.  A job JSON without a ["device"] member defaults to
    it. *)

val is_auto : t -> bool
(** The job leaves device selection to the fleet. *)

val fault_config : t -> Fault.Plan.config option
(** The armed fault plan of the job ([None] when [fault_rate] is 0).
    Validate first: an out-of-range rate raises [Invalid_argument]. *)

val string_of_kind : kind -> string
val kind_of_string : string -> kind
(** Raises [Invalid_argument] on unknown kinds. *)

val validate : t -> (unit, string) result
(** Checks the job is runnable before any attempt is made: known device,
    positive dimensions, tile dividing the dimension, sane retry and
    timeout bounds (NaN timeouts rejected), fault rate inside [0, 1]
    with at least one kind armed.  A failing validation is permanent —
    the scheduler records the error without retrying. *)

val to_json : t -> Harness.Json.t
val of_json : Harness.Json.t -> t
(** Raises [Harness.Json.Error] on malformed documents.  Optional fields
    ([complex], [rows], [solver], [execute], [timeout_ms], [retries],
    [inject_failures], [fault_rate], [fault_seed], [fault_kinds]) take
    the {!make} defaults when absent; a missing [device] defaults to
    {!auto_device}. *)

val load_file : string -> t list
(** Reads a jobs file: a JSON array of job objects, or one job object
    per non-empty line (JSON lines).  Raises [Harness.Json.Error] or
    [Sys_error]. *)
