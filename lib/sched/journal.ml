(* The write-ahead outcome journal behind [serve --journal].

   Record grammar, one JSON object per line:

     {"j":"intent","id":<job id>,"job":{...}}     job admitted
     {"j":"commit","id":<job id>,"line":"..."}    outcome rendered
     {"j":"reject","id":<job id>}                 admission refused

   The commit record stores the outcome line as a JSON *string* — not a
   nested object — so resume re-emits the exact bytes the crashed
   process would have written, without trusting a re-render to be
   byte-stable across versions.  Every append is flushed before the
   caller proceeds; the emit path calls [commit] before writing the
   line to the client, which gives exactly-once emission across a
   crash: a line either reached the journal (resume re-emits it and
   skips the job) or it did not (resume reruns the job).

   The reader never raises on content: a crash can tear the final
   append mid-line, so anything unparseable is skipped and counted. *)

module Json = Harness.Json

type t = { oc : out_channel; lock : Mutex.t }

let create path =
  (* A crash can tear the final append mid-line.  Terminate the torn
     tail before appending, or the first record of the resumed process
     would glue onto it and be lost with it. *)
  let torn_tail =
    Sys.file_exists path
    &&
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let torn =
      len > 0
      &&
      (seek_in ic (len - 1);
       input_char ic <> '\n')
    in
    close_in ic;
    torn
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  if torn_tail then begin
    output_char oc '\n';
    flush oc
  end;
  { oc; lock = Mutex.create () }

let append t json =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc (Json.to_string json);
      output_char t.oc '\n';
      flush t.oc)

let intent t (job : Job.t) =
  append t
    (Json.Obj
       [
         ("j", Json.Str "intent");
         ("id", Json.Str job.Job.id);
         ("job", Job.to_json job);
       ])

let commit t ~job_id ~line =
  append t
    (Json.Obj
       [
         ("j", Json.Str "commit");
         ("id", Json.Str job_id);
         ("line", Json.Str line);
       ])

let reject t ~job_id =
  append t (Json.Obj [ ("j", Json.Str "reject"); ("id", Json.Str job_id) ])

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> close_out t.oc)

type replay = {
  committed : (string * string) list;
  pending : Job.t list;
  malformed : int;
}

type record =
  | Intent of string * Job.t
  | Commit of string * string
  | Reject of string

let record_of_line line =
  let j = Json.of_string line in
  let id = Json.get_string (Json.member "id" j) in
  match Json.get_string (Json.member "j" j) with
  | "intent" -> Intent (id, Job.of_json (Json.member "job" j))
  | "commit" -> Commit (id, Json.get_string (Json.member "line" j))
  | "reject" -> Reject id
  | k -> raise (Json.Error (Printf.sprintf "unknown journal record '%s'" k))

let replay path =
  if not (Sys.file_exists path) then
    { committed = []; pending = []; malformed = 0 }
  else begin
    let ic = open_in path in
    let intents = ref [] (* (id, job), reverse intent order *) in
    let commits = ref [] (* (id, line), reverse commit order *) in
    let settled : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let malformed = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match record_of_line line with
           | Intent (id, job) ->
               if not (List.mem_assoc id !intents) then
                 intents := (id, job) :: !intents
           | Commit (id, outcome_line) ->
               if not (Hashtbl.mem settled id) then begin
                 Hashtbl.replace settled id ();
                 commits := (id, outcome_line) :: !commits
               end
           | Reject id -> Hashtbl.replace settled id ()
           | exception (Json.Error _ | Invalid_argument _ | Failure _) ->
               (* A torn trailing append, or garbage: skip and count.
                  Lines after a tear still parse (appends are whole
                  lines), so keep reading. *)
               incr malformed
       done
     with End_of_file -> ());
    close_in ic;
    {
      committed = List.rev !commits;
      pending =
        List.rev !intents
        |> List.filter_map (fun (id, job) ->
               if Hashtbl.mem settled id then None else Some job);
      malformed = !malformed;
    }
  end
