(** Job generators that reproduce a whole table of the paper's
    evaluation section as one batch — the sweeps behind
    [lsq_cli batch --sweep NAME]. *)

val names : string list
(** The available sweeps: ["table3"] .. ["table10"], plus ["fleet"] — a
    mixed stream of {!Job.auto_device} jobs (memory-bound double double
    beside compute-bound octo double) for the fleet's roofline
    placement — and ["tallskinny"] — overdetermined m >> n solves
    through all three solver engines (direct QR, CG on the normal
    equations, LSQR) side by side. *)

val jobs : string -> Job.t list
(** The job list of a named sweep; raises [Invalid_argument] on unknown
    names.  Job ids are of the form ["table4-v100-4d"]. *)
