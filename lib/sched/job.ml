(* One least-squares job of a batch; serializes to the versioned JSON
   schema shared with the scheduler's outcome records. *)

module P = Multidouble.Precision
module Json = Harness.Json
module Solver = Lsq_core.Solver

type kind = Qr | Backsub | Solve

type t = {
  id : string;
  kind : kind;
  device : string;
  prec : P.tag;
  complex : bool;
  dim : int;
  rows : int option;
  tile : int;
  solver : Solver.method_;
  execute : bool;
  timeout_ms : float option;
  retries : int;
  inject_failures : int;
  fault_rate : float;
  fault_seed : int;
  fault_kinds : Fault.Plan.kind list;
}

(* Placement wildcard: the fleet resolves ["auto"] to a concrete device
   class with its roofline policy; outside a fleet it is not runnable. *)
let auto_device = "auto"

let is_auto t = String.lowercase_ascii (String.trim t.device) = auto_device

let make ?(complex = false) ?rows ?(solver = Solver.Qr_direct)
    ?(execute = false) ?timeout_ms ?(retries = 1) ?(inject_failures = 0)
    ?(fault_rate = 0.0) ?(fault_seed = 1)
    ?(fault_kinds = Fault.Plan.all_kinds) ~id ~kind ~device ~prec ~dim ~tile
    () =
  {
    id;
    kind;
    device;
    prec;
    complex;
    dim;
    rows;
    tile;
    solver;
    execute;
    timeout_ms;
    retries;
    inject_failures;
    fault_rate;
    fault_seed;
    fault_kinds;
  }

(* The armed fault plan of the job, or [None] for the (default)
   fault-free run — keeping the zero-rate path bit-identical to a build
   without the fault plane. *)
let fault_config t =
  if t.fault_rate > 0.0 then
    Some
      (Fault.Plan.config ~kinds:t.fault_kinds ~seed:t.fault_seed
         ~rate:t.fault_rate ())
  else None

let string_of_kind = function
  | Qr -> "qr"
  | Backsub -> "backsub"
  | Solve -> "solve"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "qr" -> Qr
  | "backsub" | "bs" -> Backsub
  | "solve" -> Solve
  | s -> invalid_arg (Printf.sprintf "unknown job kind '%s'" s)

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.id = "" then err "job has an empty id"
  else if t.dim <= 0 then err "job '%s': dimension %d <= 0" t.id t.dim
  else if t.tile <= 0 || t.dim mod t.tile <> 0 then
    err "job '%s': tile %d does not divide dimension %d" t.id t.tile t.dim
  else if
    match t.rows with Some m -> m < t.dim | None -> false
  then err "job '%s': rows < cols" t.id
  else if t.rows <> None && t.kind = Backsub then
    err "job '%s': rows only applies to qr and solve jobs" t.id
  else if Solver.is_iterative t.solver && t.kind <> Solve then
    err "job '%s': solver '%s' only applies to solve jobs" t.id
      (Solver.method_name t.solver)
  else if t.retries < 0 then err "job '%s': negative retries" t.id
  else if t.inject_failures < 0 then
    err "job '%s': negative inject_failures" t.id
  else if
    (* [not (ms > 0)] rather than [ms <= 0] so NaN is rejected too. *)
    match t.timeout_ms with Some ms -> not (ms > 0.0) | None -> false
  then err "job '%s': timeout must be a positive number" t.id
  else if Float.is_nan t.fault_rate then
    err "job '%s': fault rate must not be NaN" t.id
  else if t.fault_rate < 0.0 || t.fault_rate > 1.0 then
    err "job '%s': fault rate %g outside [0, 1]" t.id t.fault_rate
  else if t.fault_rate > 0.0 && t.fault_kinds = [] then
    err "job '%s': fault rate %g with no fault kinds armed" t.id t.fault_rate
  else if is_auto t then Ok ()
  else
    match Gpusim.Device.by_name t.device with
    | (_ : Gpusim.Device.t) -> Ok ()
    | exception Invalid_argument m -> err "job '%s': %s" t.id m

let to_json t =
  Json.Obj
    ([
       ("id", Json.Str t.id);
       ("kind", Json.Str (string_of_kind t.kind));
       ("device", Json.Str t.device);
       ("prec", Json.Str (P.label t.prec));
       ("complex", Json.Bool t.complex);
       ("dim", Json.Int t.dim);
     ]
    @ (match t.rows with Some m -> [ ("rows", Json.Int m) ] | None -> [])
    @ [ ("tile", Json.Int t.tile) ]
    (* Direct-engine jobs serialize exactly as before the engine seam. *)
    @ (if t.solver <> Solver.Qr_direct then
         [ ("solver", Json.Str (Solver.method_name t.solver)) ]
       else [])
    @ [ ("execute", Json.Bool t.execute) ]
    @ (match t.timeout_ms with
      | Some ms -> [ ("timeout_ms", Json.Float ms) ]
      | None -> [])
    @ [ ("retries", Json.Int t.retries) ]
    @ (if t.inject_failures > 0 then
         [ ("inject_failures", Json.Int t.inject_failures) ]
       else [])
    @
    (* Fault-free jobs serialize exactly as before the fault plane. *)
    if t.fault_rate > 0.0 then
      [
        ("fault_rate", Json.Float t.fault_rate);
        ("fault_seed", Json.Int t.fault_seed);
        ( "fault_kinds",
          Json.Arr
            (List.map
               (fun k -> Json.Str (Fault.Plan.kind_name k))
               t.fault_kinds) );
      ]
    else [])

let of_json j =
  let opt get key = Json.to_option get (Json.member key j) in
  let default d = function Some v -> v | None -> d in
  let prec_label = Json.get_string (Json.member "prec" j) in
  let prec =
    try P.of_label (String.lowercase_ascii prec_label)
    with Invalid_argument m -> raise (Json.Error m)
  in
  let kind =
    try kind_of_string (Json.get_string (Json.member "kind" j))
    with Invalid_argument m -> raise (Json.Error m)
  in
  {
    id = Json.get_string (Json.member "id" j);
    kind;
    device = default auto_device (opt Json.get_string "device");
    prec;
    complex = default false (opt Json.get_bool "complex");
    dim = Json.get_int (Json.member "dim" j);
    rows = opt Json.get_int "rows";
    tile = Json.get_int (Json.member "tile" j);
    solver =
      (match opt Json.get_string "solver" with
      | None -> Solver.Qr_direct
      | Some s -> (
        try Solver.method_of_string s
        with Invalid_argument m -> raise (Json.Error m)));
    execute = default false (opt Json.get_bool "execute");
    timeout_ms = opt Json.get_float "timeout_ms";
    retries = default 1 (opt Json.get_int "retries");
    inject_failures = default 0 (opt Json.get_int "inject_failures");
    fault_rate = default 0.0 (opt Json.get_float "fault_rate");
    fault_seed = default 1 (opt Json.get_int "fault_seed");
    fault_kinds =
      (match opt Json.get_list "fault_kinds" with
      | None -> Fault.Plan.all_kinds
      | Some ks ->
        List.map
          (fun k ->
            try Fault.Plan.kind_of_string (Json.get_string k)
            with Invalid_argument m -> raise (Json.Error m))
          ks);
  }

let load_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let first_nonspace =
    let rec go i =
      if i >= String.length text then None
      else
        match text.[i] with
        | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
        | c -> Some c
    in
    go 0
  in
  match first_nonspace with
  | Some '[' -> List.map of_json (Json.get_list (Json.of_string text))
  | _ ->
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else Some (of_json (Json.of_string line)))
