(* The scheduler facade: historical names for the per-job engine's
   types and a [Config]-driven entry point over the fleet service.

   The execution machinery lives in [Engine] (one job's lifecycle) and
   [Fleet] (the device pool, placement, admission control, stealing);
   this module only wires them together so existing callers keep
   compiling. *)

type failure = Engine.failure = {
  message : string;
  timed_out : bool;
  retryable : bool;
}

type status = Engine.status =
  | Completed of Harness.Report.t
  | Failed of failure

type timing = Engine.timing = {
  queue_wait_ms : float;
  attempt_ms : float list;
  backoff_ms : float;
}

type placement = Engine.placement = {
  device_id : string;
  admitted_to : string;
  steals : int;
  queue_depth : int;
  migrations : string list;
  hedged : bool;
}

type outcome = Engine.outcome = {
  job : Job.t;
  index : int;
  order : int;
  attempts : int;
  elapsed_ms : float;
  timing : timing;
  placement : placement option;
  status : status;
}

let schema_version = Engine.schema_version
let run_job = Engine.run_job

module Config = Fleet.Config

(* A batch over a fleet: submit everything (blocking on backpressure
   instead of rejecting — a batch has no client to answer), await each
   ticket, shut the fleet down.  Outcomes come back in submission
   order; [retain_outcomes] is forced on since [await] needs the
   results kept. *)
let run ?on_outcome (config : Config.t) jobs =
  if jobs = [] then []
  else begin
    let config = { config with Config.retain_outcomes = true } in
    let fleet = Fleet.create ?on_outcome config in
    let tickets = List.map (fun job -> Fleet.submit_blocking fleet job) jobs in
    let outcomes = List.map (fun t -> Fleet.await fleet t) tickets in
    Fleet.shutdown fleet;
    outcomes
  end

(* ---- serialization (engine re-exports) ---- *)

let outcome_to_json = Engine.outcome_to_json
let outcome_of_json = Engine.outcome_of_json
let write_jsonl = Engine.write_jsonl
let read_jsonl = Engine.read_jsonl
