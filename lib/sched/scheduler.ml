(* The batch scheduler: self-scheduling workers on a shared domain pool
   claim jobs from an atomic cursor; every job settles into a structured
   outcome — report or failure record — so one bad job never aborts the
   batch. *)

module Json = Harness.Json
module Report = Harness.Report
module R = Harness.Runners
module Pool = Dompool.Domain_pool

type failure = { message : string; timed_out : bool }

type status = Completed of Report.t | Failed of failure

type outcome = {
  job : Job.t;
  index : int;
  order : int;
  attempts : int;
  elapsed_ms : float;
  status : status;
}

let schema_version = 1

exception Injected_failure

let now_ms () = Unix.gettimeofday () *. 1000.0

(* One synchronous run of the job proper: plan (or, with [execute], plan
   plus a numeric verification whose residual lands in the report). *)
let run_job (job : Job.t) =
  let device = Gpusim.Device.by_name job.Job.device in
  let complex = job.Job.complex in
  let prec = job.Job.prec in
  let dim = job.Job.dim and tile = job.Job.tile in
  let base =
    match job.Job.kind with
    | Job.Qr -> R.qr ~complex ?rows:job.Job.rows prec device ~n:dim ~tile
    | Job.Backsub -> R.bs ~complex prec device ~dim ~tile
    | Job.Solve -> R.solve ~complex prec device ~n:dim ~tile
  in
  if not job.Job.execute then base
  else
    let residual =
      match job.Job.kind with
      | Job.Qr -> R.verify_qr ~complex prec device ~n:dim ~tile
      | Job.Backsub -> R.verify_bs ~complex prec device ~dim ~tile
      | Job.Solve -> R.verify_solve ~complex prec device ~n:dim ~tile
    in
    { base with Report.residual = Some residual }

(* The full lifecycle of one job: validation, then up to [1 + retries]
   attempts under the cooperative wall-clock budget, with exponential
   backoff between attempts.  Never raises. *)
let settle ~backoff_ms (job : Job.t) =
  let started = now_ms () in
  let elapsed () = now_ms () -. started in
  let deadline =
    match job.Job.timeout_ms with
    | Some ms -> started +. ms
    | None -> Float.infinity
  in
  match Job.validate job with
  | Error message ->
    (0, elapsed (), Failed { message; timed_out = false })
  | Ok () ->
    let max_attempts = 1 + job.Job.retries in
    let rec go attempt =
      if now_ms () > deadline then
        ( attempt - 1,
          elapsed (),
          Failed
            {
              message =
                Printf.sprintf "timed out after %d attempt%s" (attempt - 1)
                  (if attempt - 1 = 1 then "" else "s");
              timed_out = true;
            } )
      else
        let result =
          try
            if attempt <= job.Job.inject_failures then raise Injected_failure
            else Ok (run_job job)
          with
          | Injected_failure -> Error "injected failure"
          | e -> Error (Printexc.to_string e)
        in
        match result with
        | Ok report ->
          if now_ms () > deadline then
            ( attempt,
              elapsed (),
              Failed
                {
                  message =
                    Printf.sprintf
                      "completed past the deadline on attempt %d (result \
                       discarded)"
                      attempt;
                  timed_out = true;
                } )
          else (attempt, elapsed (), Completed report)
        | Error message ->
          if attempt < max_attempts then begin
            let pause =
              backoff_ms *. Float.of_int (1 lsl (attempt - 1)) /. 1000.0
            in
            if pause > 0.0 then Unix.sleepf pause;
            go (attempt + 1)
          end
          else (max_attempts, elapsed (), Failed { message; timed_out = false })
    in
    go 1

let run_batch ?pool ?(parallel = 4) ?(backoff_ms = 1.0) ?on_outcome jobs =
  let pool = match pool with Some p -> p | None -> Pool.get_default () in
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let completions = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n then continue_ := false
        else begin
          let attempts, elapsed_ms, status = settle ~backoff_ms jobs.(i) in
          let order = Atomic.fetch_and_add completions 1 in
          let outcome =
            { job = jobs.(i); index = i; order; attempts; elapsed_ms; status }
          in
          results.(i) <- Some outcome;
          match on_outcome with Some f -> f outcome | None -> ()
        end
      done
    in
    let workers = max 1 (min parallel n) in
    Pool.run pool (List.init workers (fun _ -> worker));
    Array.to_list results
    |> List.map (function
         | Some o -> o
         | None -> assert false (* every index was claimed and settled *))
  end

(* ---- serialization ---- *)

let outcome_to_json o =
  Json.Obj
    ([
       ("schema", Json.Int schema_version);
       ("index", Json.Int o.index);
       ("order", Json.Int o.order);
       ("attempts", Json.Int o.attempts);
       ("elapsed_ms", Json.Float o.elapsed_ms);
       ("job", Job.to_json o.job);
     ]
    @
    match o.status with
    | Completed report ->
      [ ("status", Json.Str "completed"); ("report", Report.to_json report) ]
    | Failed f ->
      [
        ("status", Json.Str "failed");
        ( "error",
          Json.Obj
            [
              ("message", Json.Str f.message);
              ("timed_out", Json.Bool f.timed_out);
            ] );
      ])

let outcome_of_json j =
  let v = Json.get_int (Json.member "schema" j) in
  if v <> schema_version then
    raise
      (Json.Error
         (Printf.sprintf "outcome schema %d, this build reads schema %d" v
            schema_version));
  let status =
    match Json.get_string (Json.member "status" j) with
    | "completed" -> Completed (Report.of_json (Json.member "report" j))
    | "failed" ->
      let e = Json.member "error" j in
      Failed
        {
          message = Json.get_string (Json.member "message" e);
          timed_out = Json.get_bool (Json.member "timed_out" e);
        }
    | s -> raise (Json.Error (Printf.sprintf "unknown status '%s'" s))
  in
  {
    job = Job.of_json (Json.member "job" j);
    index = Json.get_int (Json.member "index" j);
    order = Json.get_int (Json.member "order" j);
    attempts = Json.get_int (Json.member "attempts" j);
    elapsed_ms = Json.get_float (Json.member "elapsed_ms" j);
    status;
  }

let write_jsonl oc outcomes =
  List.iter
    (fun o ->
      output_string oc (Json.to_string (outcome_to_json o));
      output_char oc '\n')
    outcomes

let read_jsonl ic =
  let rec go acc =
    match input_line ic with
    | line ->
      if String.trim line = "" then go acc
      else go (outcome_of_json (Json.of_string line) :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []
