(** Crash-safe write-ahead outcome journal for [serve].

    The service appends two kinds of JSON-lines records as jobs flow
    through it: an {e intent} when a job is admitted (before it enters a
    fleet queue) and a {e commit} when its outcome line has been
    rendered — the commit stores the outcome line verbatim and is
    flushed to disk {e before} the line is emitted to the client.  A
    crashed service can therefore be restarted with [--resume]: committed
    lines are re-emitted byte-identically (exactly once per job id) and
    intents without a commit are resubmitted, so the union of the
    outcome lines across the crash is exactly one schema-valid line per
    submitted job.

    The reader is truncation-tolerant: a crash can tear the final
    append, so trailing partial or malformed lines are skipped and
    counted rather than raised. *)

type t

val create : string -> t
(** Opens (creating or appending to) the journal at the given path.  A
    torn final line left by a crash is newline-terminated first, so the
    resumed process's records stay parseable (the torn line itself is
    counted by {!replay} as malformed).
    @raise Sys_error when the path cannot be opened. *)

val intent : t -> Job.t -> unit
(** Records — and flushes — the admission of [job], before it is
    submitted to the fleet. *)

val commit : t -> job_id:string -> line:string -> unit
(** Records — and flushes — the final outcome [line] (the exact
    JSON-lines rendering, without the trailing newline) for [job_id].
    Callers emit the same string to the client only after this
    returns, which is what makes replay byte-identical. *)

val reject : t -> job_id:string -> unit
(** Marks an intent as settled by an admission rejection (the job never
    entered a queue and has no outcome); resume will not resubmit it. *)

val close : t -> unit

(** {1 Replay} *)

type replay = {
  committed : (string * string) list;
      (** [(job id, outcome line)] in commit order, deduplicated by id
          (first commit wins) *)
  pending : Job.t list;
      (** intents with neither commit nor rejection, in intent order,
          deduplicated by id *)
  malformed : int;  (** truncated or unparseable lines skipped *)
}

val replay : string -> replay
(** Reads the journal at the given path; a missing file replays as
    empty.  Never raises on malformed content — torn trailing writes
    are counted in [malformed]. *)
