(* Job generators reproducing the paper's tables as batches: the same
   device / precision / shape grids the table printers in bench/ sweep,
   expressed as scheduler jobs. *)

module P = Multidouble.Precision
module D = Gpusim.Device
module Solver = Lsq_core.Solver

let job ~table ?complex ?rows ?solver ~kind ~device ~prec ~dim ~tile ?suffix
    () =
  let id =
    Printf.sprintf "%s-%s-%s%s%s" table (D.slug device) (P.label prec)
      (if Option.value complex ~default:false then "z" else "")
      (match suffix with Some s -> "-" ^ s | None -> "")
  in
  Job.make ?complex ?rows ?solver ~id ~kind ~device:device.D.name ~prec ~dim
    ~tile ()

(* Table 3: blocked QR, double double, 1024, all five devices. *)
let table3 () =
  List.map
    (fun d ->
      job ~table:"table3" ~kind:Job.Qr ~device:d ~prec:P.DD ~dim:1024
        ~tile:128 ())
    D.catalog

(* Table 4: QR at 1d/2d/4d/8d on the three newest devices. *)
let table4 () =
  List.concat_map
    (fun d ->
      List.map
        (fun p ->
          job ~table:"table4" ~kind:Job.Qr ~device:d ~prec:p ~dim:1024
            ~tile:128 ())
        P.all)
    [ D.rtx2080; D.p100; D.v100 ]

(* Table 5: real vs complex dd QR at 512 on the V100, four tilings. *)
let table5 () =
  List.concat_map
    (fun complex ->
      List.map
        (fun tile ->
          job ~table:"table5" ~complex ~kind:Job.Qr ~device:D.v100 ~prec:P.DD
            ~dim:512 ~tile
            ~suffix:(Printf.sprintf "t%d" tile)
            ())
        [ 32; 64; 128; 256 ])
    [ false; true ]

(* Table 6: QR for increasing dimension on the V100. *)
let table6 () =
  List.concat_map
    (fun p ->
      List.map
        (fun dim ->
          job ~table:"table6" ~kind:Job.Qr ~device:D.v100 ~prec:p ~dim
            ~tile:128
            ~suffix:(Printf.sprintf "n%d" dim)
            ())
        [ 512; 1024; 1536; 2048 ])
    [ P.DD; P.QD; P.OD ]

(* Table 7: back substitution on growing problems, V100. *)
let table7 () =
  List.concat_map
    (fun p ->
      let sizes =
        if p = P.OD then [ (64, 80); (128, 80); (128, 160) ]
        else [ (64, 80); (128, 80); (256, 80) ]
      in
      List.map
        (fun (tile, nt) ->
          job ~table:"table7" ~kind:Job.Backsub ~device:D.v100 ~prec:p
            ~dim:(tile * nt) ~tile
            ~suffix:(Printf.sprintf "%dx%d" tile nt)
            ())
        sizes)
    P.all

(* Table 8: quad double back substitution, N = 80 tiles of n = 32..256. *)
let table8 () =
  List.concat_map
    (fun d ->
      List.map
        (fun tile ->
          job ~table:"table8" ~kind:Job.Backsub ~device:d ~prec:P.QD
            ~dim:(80 * tile) ~tile
            ~suffix:(Printf.sprintf "t%d" tile)
            ())
        [ 32; 64; 96; 128; 160; 192; 224; 256 ])
    [ D.rtx2080; D.p100; D.v100 ]

(* Table 9: dimension 20480 = N x n under three tilings, V100. *)
let table9 () =
  List.map
    (fun tile ->
      job ~table:"table9" ~kind:Job.Backsub ~device:D.v100 ~prec:P.QD
        ~dim:20480 ~tile
        ~suffix:(Printf.sprintf "t%d" tile)
        ())
    [ 64; 128; 256 ]

(* Table 10: the full solver in four precisions on three devices. *)
let table10 () =
  List.concat_map
    (fun d ->
      List.map
        (fun p ->
          job ~table:"table10" ~kind:Job.Solve ~device:d ~prec:p ~dim:1024
            ~tile:128 ())
        P.all)
    [ D.rtx2080; D.p100; D.v100 ]

(* Fleet: a mixed stream of auto-placed jobs — memory-bound double
   double beside compute-bound octo double — exercising the fleet's
   roofline placement instead of pinning devices. *)
let fleet () =
  List.concat_map
    (fun (prec, kind) ->
      List.init 4 (fun i ->
          Job.make
            ~id:
              (Printf.sprintf "fleet-%s-%s-%d" (Job.string_of_kind kind)
                 (P.label prec) i)
            ~kind ~device:Job.auto_device ~prec ~dim:1024 ~tile:128 ()))
    [
      (P.DD, Job.Qr);
      (P.DD, Job.Solve);
      (P.OD, Job.Qr);
      (P.OD, Job.Solve);
    ]

(* Tall & skinny: the iterative engines' home turf — overdetermined
   systems with m >> n, run through all three engines side by side so
   one batch yields the time-vs-accuracy comparison.  Double double (the
   bandwidth-bound precision) and quad double, on the V100. *)
let tallskinny () =
  List.concat_map
    (fun prec ->
      List.concat_map
        (fun solver ->
          List.map
            (fun (rows, cols) ->
              job ~table:"tallskinny" ~rows ~solver ~kind:Job.Solve
                ~device:D.v100 ~prec ~dim:cols ~tile:cols
                ~suffix:
                  (Printf.sprintf "%s-%dx%d" (Solver.method_name solver) rows
                     cols)
                ())
            [ (4096, 32); (16384, 64) ])
        Solver.all_methods)
    [ P.DD; P.QD ]

let sweeps =
  [
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("table8", table8);
    ("table9", table9);
    ("table10", table10);
    ("fleet", fleet);
    ("tallskinny", tallskinny);
  ]

let names = List.map fst sweeps

let jobs name =
  match List.assoc_opt (String.lowercase_ascii name) sweeps with
  | Some gen -> gen ()
  | None ->
    invalid_arg
      (Printf.sprintf "unknown sweep '%s' (available: %s)" name
         (String.concat ", " names))
