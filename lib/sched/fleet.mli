(** The fleet service: a long-running pool of simulated devices behind a
    submission API.

    A fleet owns a heterogeneous pool of {e instances} — one worker
    domain and one bounded work queue per entry, several instances per
    device class (C2050 / P100 / V100 / RTX 2080 profiles from
    {!Gpusim.Device}).  Submissions pass admission control
    synchronously: jobs naming {!Job.auto_device} are routed by the
    roofline policy (memory-bound work — double double in the paper's
    regime — to bandwidth-rich classes by descending
    {!Gpusim.Device.bytes_per_flop}; compute-bound work — octo double —
    to compute-rich classes by descending DP peak), landing on the
    shortest queue of the best class with room and spilling to the next
    class when that one is full.  A submission finding every candidate
    queue at [max_queue_depth] is {e rejected} — backpressure the
    caller observes immediately.  Idle workers steal the oldest entry
    from the deepest foreign queue.

    {2 The resilience plane}

    All of it opt-in through {!Config}; an undisturbed fleet behaves
    exactly as before.

    - {e Device chaos} ([Config.chaos]): a seeded {!Fault.Chaos}
      campaign deals each instance at most one fate — crash (the worker
      domain exits), hang (the worker stops draining its queue, holding
      its claimed job), or brownout (kernels cost
      [Chaos.config.brownout_factor] slower) — striking after a drawn
      number of executed jobs.
    - {e Recovery}: jobs stranded on a crashed or hung instance are
      reclaimed and re-placed through the same roofline policy, never
      silently dropped; each hop is recorded in the outcome's
      [placement.migrations] trail.  A job migrated more than
      [Config.max_migrations] times is {e quarantined}: settled as a
      permanent (non-retryable) failure carrying its trail.
    - {e Circuit breakers} ([Config.breakers]): per-instance health
      windows open a breaker after 3 consecutive failures or a p95
      excursion (instance p95 > 3x its class p95 over a warm window);
      an open instance is skipped by placement, admits a single probe
      after a 250 ms cool-off (half-open), and closes when the probe
      succeeds.
    - {e Hedged execution} ([Config.hedge_ms]): a job in flight longer
      than [max(hedge_ms, 3 x class p95)] gets a duplicate on another
      instance; the first copy to settle wins ([placement.hedged] is
      set), the loser is discarded after a byte-equality check of the
      two results (the kernels are deterministic — divergence counts in
      [fleet.hedge.mismatches]).

    Outcomes are {!Engine.outcome} records whose [placement] field
    carries the executing instance, the admitting instance, the steal
    count, the queue depth seen at admission, the migration trail and
    the hedge flag (outcome schema 5).  The fleet also feeds the
    default {!Obs.Metrics} registry
    ([fleet.submitted/rejected/completed/failed/steals/attempts]
    counters, [fleet.latency_ms.<class>] histograms on
    {!Obs.Metrics.latency_buckets} with per-class p50/p95/p99 in the
    snapshot, [fleet.queue_depth.<id>] and [fleet.util.<id>] gauges,
    and — from the resilience plane —
    [fleet.chaos.crashes/hangs/brownouts/migrations/quarantined],
    [fleet.hedge.launched/wins/mismatches] and
    [fleet.breaker.opened/half_open/closed] counters) and the tracer
    ([admit]/[steal]/[reject] instants).

    {!Scheduler} runs its batch mode as a thin wrapper over this
    service. *)

module Config : sig
  type t = {
    pool : (Gpusim.Device.t option * int) list;
        (** device classes and instance counts; [None] is a {e generic}
            instance — plain capacity honoring whatever device each job
            names (auto jobs execute on the pool's compute flagship) *)
    max_queue_depth : int;
        (** admission bound per queue; must be positive — pass
            {!unbounded} for no bound *)
    backoff_ms : float;  (** base retry backoff, doubling per attempt *)
    steal : bool;  (** let idle workers steal from foreign queues *)
    retain_outcomes : bool;
        (** keep settled outcomes for {!await}/{!drain}; switch off for
            long-running serve loops that stream outcomes via
            [on_outcome] and must not grow memory *)
    chaos : Fault.Chaos.config option;
        (** arm a seeded device-chaos campaign; [None] (the default)
            leaves every instance healthy *)
    max_migrations : int;
        (** reclaim hops before a job is quarantined (default 3) *)
    hedge_ms : float option;
        (** enable hedged execution with this floor (ms) on the
            straggler delay; [None] (the default) never hedges *)
    breakers : bool;
        (** drive per-instance circuit breakers from health windows
            (default off) *)
  }

  val unbounded : int
  (** Sentinel ([max_int]) for [max_queue_depth]: no admission bound. *)

  val default : t
  (** Two instances each of C2050, P100, V100 and RTX 2080, queue depth
      64, 1 ms base backoff, stealing on, outcomes retained, resilience
      plane off. *)

  val batch : ?parallel:int -> ?backoff_ms:float -> unit -> t
  (** The batch-mode pool: [parallel] (default 4, floored at 1) generic
      instances, unbounded queues.  With [parallel:1] the fleet is one
      FIFO queue — submission order is execution order. *)

  val pool_of_string : string -> (Gpusim.Device.t option * int) list
  (** Parses a pool spec like ["v100=2,rtx2080=1"] (["v100,p100"] gives
      one instance each).  Raises [Invalid_argument] on unknown devices
      or bad counts. *)

  val validate : t -> (unit, string) result
  (** Structured validation: rejects an empty pool, non-positive pool
      counts, non-positive [max_queue_depth] (use {!unbounded}),
      negative or NaN [backoff_ms] (zero stays legal: retry without
      sleeping), negative [max_migrations], and non-positive or NaN
      [hedge_ms]. *)
end

type t

type reject =
  | Queue_full of { device_id : string; queue_depth : int }
      (** every candidate queue was at [max_queue_depth]; the id and
          depth are the instance the placement would have preferred *)
  | Draining  (** the fleet is shutting down *)

val reject_message : reject -> string

type ticket = int
(** Admission handle, also the outcome's [index]: tickets number
    admissions from 0 in submission order. *)

val create : ?on_outcome:(Engine.outcome -> unit) -> ?autostart:bool -> Config.t -> t
(** Builds the fleet and (unless [autostart:false]) spawns one worker
    domain per instance, plus a light supervisor domain when the config
    enables chaos or hedging.  [on_outcome] is called from the worker
    domain that settled the job, as each job finishes (exceptions it
    raises are swallowed).  With [autostart:false] submissions queue but
    nothing executes until {!start} — useful for deterministic
    placement tests.  Raises [Invalid_argument] when
    {!Config.validate} rejects the config. *)

val start : t -> unit
(** Spawns the worker domains (idempotent). *)

val submit : t -> Job.t -> (ticket, reject) result
(** Admission control: places the job on a queue and returns its ticket
    without blocking.  Invalid jobs are admitted and settle as failed
    outcomes (so a batch keeps its one-outcome-per-job shape). *)

val submit_blocking : t -> Job.t -> ticket
(** Like {!submit}, but treats [Queue_full] as backpressure: waits for
    queue space instead of rejecting.  Raises [Invalid_argument] when
    the fleet is draining. *)

val await : t -> ticket -> Engine.outcome
(** Blocks until the ticket's job settles.  Raises [Invalid_argument]
    on a ticket the fleet never issued, or when the config does not
    retain outcomes. *)

val quiesce : t -> unit
(** Blocks until every admitted job has settled.  The workers keep
    running; only useful once {!start} has been called. *)

val drain : t -> Engine.outcome list
(** {!quiesce}, then all retained outcomes in admission order. *)

val shutdown : t -> unit
(** Stops admissions, lets the workers finish every queued job, joins
    them and the supervisor.  Idempotent; a never-started fleet just
    stops.  Parked hung workers are released; in-flight jobs of hung
    instances have already been migrated by the supervisor. *)

(** A point-in-time view of one instance. *)
type stats = {
  id : string;  (** e.g. ["v100#0"] *)
  device : Gpusim.Device.t option;
  executed : int;  (** jobs this worker settled *)
  stolen : int;  (** of those, claimed from foreign queues *)
  queue_depth : int;
  busy_ms : float;  (** wall clock spent executing (attempts + backoff) *)
  utilization : float;  (** busy fraction of the fleet's lifetime, 0..1 *)
  state : string;
      (** chaos state: ["ok"], ["browned"], ["hung"] or ["crashed"] *)
  breaker : string;  (** ["closed"], ["open"] or ["half-open"] *)
}

val stats : t -> stats list
(** One entry per instance, in pool order. *)

val steals : t -> int
(** Total jobs executed by a different instance than admitted them. *)

val size : t -> int
(** Number of instances. *)

val config : t -> Config.t

val classify_job : Job.t -> Obs.Roofline.bound
(** The placement verdict for a job's shape: compute- vs memory-bound
    on the fixed V100 reference (memoized).  Unplannable shapes
    classify as [Memory]; the job would settle as a validation failure
    anyway. *)

val reject_to_json : Job.t -> reject -> Harness.Json.t
(** The schema-stamped [{"status": "rejected"}] line serve mode emits
    for a refused submission. *)
