(** The scheduler: a {!Config}-driven entry point running batches of
    least-squares jobs over the {!Fleet} service, plus historical names
    for the {!Engine} types so existing callers keep compiling.

    Batch mode is a thin wrapper over the fleet: every job is submitted
    (blocking on backpressure instead of rejecting), awaited, and the
    fleet shut down — one structured {!outcome} per job, in submission
    order, a failing job never aborting the batch.  Outcomes carry the
    fleet placement record and serialize to the versioned JSON-lines
    schema (outcome schema {!schema_version}). *)

type failure = Engine.failure = {
  message : string;
  timed_out : bool;  (** the job exhausted its [timeout_ms] budget *)
  retryable : bool;
      (** how the error was classified: transient faults (the injection
          hook, escaped {!Fault.Plan.Injected} escalations) retry with
          backoff; validation errors and deterministic failures settle
          on the first attempt without burning retries *)
}

type status = Engine.status =
  | Completed of Harness.Report.t
  | Failed of failure

(** Where one job's wall clock went. *)
type timing = Engine.timing = {
  queue_wait_ms : float;
      (** from submission to a worker claiming the job *)
  attempt_ms : float list;
      (** run time of each attempt, in attempt order; its length is
          [attempts] *)
  backoff_ms : float;  (** total backoff sleep between attempts *)
}

(** Where the fleet put the job — see {!Engine.placement}. *)
type placement = Engine.placement = {
  device_id : string;
  admitted_to : string;
  steals : int;
  queue_depth : int;
  migrations : string list;
  hedged : bool;
}

type outcome = Engine.outcome = {
  job : Job.t;
      (** the job as executed — for auto-placed jobs the [device] field
          carries the class the fleet chose *)
  index : int;  (** position of the job in the submitted queue *)
  order : int;  (** completion rank within the batch (0 = finished first) *)
  attempts : int;  (** run attempts made; 0 when validation rejected it *)
  elapsed_ms : float;  (** wall clock across all attempts and backoffs *)
  timing : timing;
  placement : placement option;
      (** which fleet instance ran the job, where it was admitted, and
          the steal count; always set by {!run} *)
  status : status;
}

val schema_version : int
(** Version stamped into (and required of) every serialized outcome. *)

val run_job : Job.t -> Harness.Report.t
(** {!Engine.run_job}: one synchronous run, no retry or timeout. *)

module Config = Fleet.Config
(** Fleet configuration; {!Config.default} is the heterogeneous
    device-class pool, {!Config.batch} the generic batch pool. *)

val run :
  ?on_outcome:(outcome -> unit) ->
  Config.t ->
  Job.t list ->
  outcome list
(** [run config jobs] runs the batch over a fresh fleet built from
    [config]: one outcome per job, in submission order.  Backpressure
    from bounded queues blocks the submitter instead of rejecting
    (a batch has no client to answer); [retain_outcomes] is forced on.
    [on_outcome] is called as each job settles, from the worker domain
    that ran it — it must be thread-safe and must not raise.  Never
    raises on job failures. *)

val outcome_to_json : outcome -> Harness.Json.t
val outcome_of_json : Harness.Json.t -> outcome
(** Raises [Harness.Json.Error] on malformed documents or a
    schema-version mismatch. *)

val write_jsonl : out_channel -> outcome list -> unit
(** One outcome object per line. *)

val read_jsonl : in_channel -> outcome list
(** Reads outcome lines until end of input, skipping blank lines. *)
