(** The batch scheduler: runs a queue of least-squares jobs concurrently
    on a shared {!Dompool.Domain_pool}, with per-job (cooperative)
    timeout, bounded retry with exponential backoff, and graceful
    degradation — a failing job yields a structured {!failure} record in
    its {!outcome} instead of aborting the batch.

    Concurrency model: [parallel] self-scheduling workers claim jobs
    from an atomic cursor and run as tasks of the shared pool.  Each job
    builds its own simulators (per-job profile isolation — see
    {!Gpusim.Sim.breakdown}); kernel bodies of executing jobs reuse the
    same pool, where they run inline on the claiming worker.

    Outcomes serialize to a versioned JSON-lines schema (one outcome
    object per line, each stamped with [{"schema": n}]); reports inside
    a completed outcome round-trip through {!Harness.Report.of_json}. *)

type failure = {
  message : string;
  timed_out : bool;  (** the job exhausted its [timeout_ms] budget *)
  retryable : bool;
      (** how the error was classified: transient faults (the injection
          hook, escaped {!Fault.Plan.Injected} escalations) retry with
          backoff; validation errors and deterministic failures settle
          on the first attempt without burning retries *)
}

type status =
  | Completed of Harness.Report.t
  | Failed of failure

(** Where one job's wall clock went. *)
type timing = {
  queue_wait_ms : float;
      (** from batch submission to a worker claiming the job *)
  attempt_ms : float list;
      (** run time of each attempt, in attempt order; its length is
          [attempts] *)
  backoff_ms : float;  (** total backoff sleep between attempts *)
}

type outcome = {
  job : Job.t;
  index : int;  (** position of the job in the submitted queue *)
  order : int;  (** completion rank within the batch (0 = finished first) *)
  attempts : int;  (** run attempts made; 0 when validation rejected it *)
  elapsed_ms : float;  (** wall clock across all attempts and backoffs *)
  timing : timing;
  status : status;
}

val schema_version : int
(** Version stamped into (and required of) every serialized outcome. *)

val run_job : Job.t -> Harness.Report.t
(** Runs one job synchronously (no retry, timeout or failure injection):
    dispatches on the kind, and when [job.execute] is set additionally
    executes the kernels numerically and attaches the residual record.
    A positive [fault_rate] arms the simulator fault plane
    ({!Job.fault_config}); executed solve jobs then run through
    {!Harness.Runners.solve_ft}, whose report carries the fault tally
    and refinement flag.  Raises whatever the runner raises — including
    [Fault.Plan.Injected] on an escalated fault, which {!run_batch}
    classifies as retryable. *)

val run_batch :
  ?pool:Dompool.Domain_pool.t ->
  ?parallel:int ->
  ?backoff_ms:float ->
  ?on_outcome:(outcome -> unit) ->
  Job.t list ->
  outcome list
(** [run_batch jobs] returns one outcome per job, in submission order.
    [pool] defaults to the shared default pool, [parallel] (clamped to
    the batch size, default 4) is the number of concurrent job workers,
    [backoff_ms] (default 1.0) the base of the exponential backoff
    between attempts ([backoff_ms * 2^k] after the [k]-th failure).
    [on_outcome] is called as each job settles, from the worker that ran
    it — it must be thread-safe.  Never raises on job failures. *)

val outcome_to_json : outcome -> Harness.Json.t
val outcome_of_json : Harness.Json.t -> outcome
(** Raises [Harness.Json.Error] on malformed documents or a
    schema-version mismatch. *)

val write_jsonl : out_channel -> outcome list -> unit
(** One outcome object per line. *)

val read_jsonl : in_channel -> outcome list
(** Reads outcome lines until end of input, skipping blank lines. *)
