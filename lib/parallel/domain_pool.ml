(* A fixed pool of worker domains with a blocking task queue.

   The GPU simulator maps thread blocks onto these workers; the pool is
   created once and reused across kernel launches, since spawning domains
   is far more expensive than a kernel launch.

   Exceptions raised inside tasks are not swallowed: the first one (and
   its backtrace) is captured and re-raised on the submitting domain once
   the barrier at the end of [run] has been reached, so a raising kernel
   body surfaces as an error instead of silently producing garbage. *)

type task = unit -> unit

(* Set while a domain is executing a pool task: a nested [run] from
   inside a task executes inline instead of re-entering the queue (which
   would deadlock waiting for its own ancestors to finish). *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type t = {
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable pending : int;
  done_ : Condition.t;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  size : int;
  (* First exception of the current [run] batch, re-raised on the
     submitting domain after the barrier. *)
  mutable fail : (exn * Printexc.raw_backtrace) option;
}

let record_fail pool e bt =
  Mutex.lock pool.lock;
  if pool.fail = None then pool.fail <- Some (e, bt);
  Mutex.unlock pool.lock

let run_task pool task =
  let prev = Domain.DLS.get inside_task in
  Domain.DLS.set inside_task true;
  (try
     (* A span per pool task (on the executing domain's track) when the
        tracer is recording; [span] re-raises after recording, so the
        failure capture below is unchanged. *)
     if Obs.Tracer.enabled () then Obs.Tracer.span ~cat:"pool" "task" task
     else task ()
   with e -> record_fail pool e (Printexc.get_raw_backtrace ()));
  Domain.DLS.set inside_task prev

let worker_loop pool =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.nonempty pool.lock
    done;
    if pool.stop && Queue.is_empty pool.queue then begin
      Mutex.unlock pool.lock;
      continue_ := false
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      run_task pool task;
      Mutex.lock pool.lock;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.done_;
      Mutex.unlock pool.lock
    end
  done

let create n =
  let n = max 1 n in
  let pool =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      pending = 0;
      done_ = Condition.create ();
      stop = false;
      domains = [||];
      size = n;
      fail = None;
    }
  in
  pool.domains <-
    Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

(* [run pool tasks] executes the closures on the pool (the calling domain
   participates) and returns when all have completed; if any raised, the
   first exception is re-raised here with its backtrace. *)
let run pool tasks =
  match tasks with
  | [] -> ()
  | [ t ] -> t () (* direct call: exceptions propagate naturally *)
  | tasks when Domain.DLS.get inside_task ->
    (* Nested parallelism: execute inline on this domain, attempting
       every task before re-raising the first failure (the semantics of
       the queued path, minus the queue). *)
    let first = ref None in
    List.iter
      (fun t ->
        try t ()
        with e ->
          if !first = None then first := Some (e, Printexc.get_raw_backtrace ()))
      tasks;
    (match !first with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ())
  | tasks ->
    Mutex.lock pool.lock;
    pool.fail <- None;
    List.iter (fun t -> Queue.push t pool.queue) tasks;
    pool.pending <- pool.pending + List.length tasks;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    (* The caller drains the queue too, then waits for stragglers. *)
    let rec drain () =
      Mutex.lock pool.lock;
      if not (Queue.is_empty pool.queue) then begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.lock;
        run_task pool task;
        Mutex.lock pool.lock;
        pool.pending <- pool.pending - 1;
        if pool.pending = 0 then Condition.broadcast pool.done_;
        Mutex.unlock pool.lock;
        drain ()
      end
      else begin
        while pool.pending > 0 do
          Condition.wait pool.done_ pool.lock
        done;
        let failure = pool.fail in
        pool.fail <- None;
        Mutex.unlock pool.lock;
        match failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    in
    drain ()

(* [parallel_for pool ~chunk lo hi f] applies [f i] for lo <= i < hi
   across the pool.  Instead of materializing one closure per chunk
   behind the queue mutex, the range is distributed through a single
   atomic next-index counter: min(workers, chunks) self-scheduling loops
   claim chunks with [Atomic.fetch_and_add], so the hot path allocates
   nothing per chunk and never takes a lock.  If an [f i] raises, the
   remaining iterations of other chunks still run (their workers keep
   draining the counter) and the first exception is re-raised at the
   barrier; the raising worker's unclaimed share is dropped. *)
let parallel_for ?chunk pool lo hi f =
  if hi > lo then begin
    let n = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * pool.size))
    in
    if n <= chunk || pool.size = 1 || Domain.DLS.get inside_task then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let next = Atomic.make lo in
      let body () =
        let continue_ = ref true in
        while !continue_ do
          let a = Atomic.fetch_and_add next chunk in
          if a >= hi then continue_ := false
          else begin
            let b = min hi (a + chunk) in
            let work () =
              for j = a to b - 1 do
                f j
              done
            in
            (* One span per claimed chunk, on the claiming domain's
               track — this is what shows the self-scheduling pattern
               (and any imbalance) in the trace viewer. *)
            if Obs.Tracer.enabled () then
              Obs.Tracer.span ~cat:"pool"
                ~args:
                  [ ("lo", Obs.Tracer.Int a); ("hi", Obs.Tracer.Int b) ]
                "chunk" work
            else work ()
          end
        done
      in
      let chunks = (n + chunk - 1) / chunk in
      let workers = min pool.size chunks in
      run pool (List.init workers (fun _ -> body))
    end
  end

(* Marks the calling domain as a task context for the duration of [f]:
   nested [run]/[parallel_for] calls execute inline instead of entering
   the shared queue.  Long-running workers that own their domain (the
   fleet's per-device workers) wrap job execution in [isolate] so
   concurrent workers never race on the pool's barrier state ([fail],
   [pending]) — [run] is only re-entrant from inside a task. *)
let isolate f =
  let prev = Domain.DLS.get inside_task in
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task prev) f

(* A lazily created default pool sized to the machine.  Not an OCaml
   [lazy]: those are not domain-safe (a concurrent force raises
   [Undefined] in the loser), and the fleet's worker domains all reach
   for the default pool on their first job.  Double-checked creation
   under a mutex instead — exactly one pool is ever spawned. *)
let default : t option Atomic.t = Atomic.make None
let default_lock = Mutex.create ()

let get_default () =
  match Atomic.get default with
  | Some pool -> pool
  | None ->
    Mutex.lock default_lock;
    let pool =
      match Atomic.get default with
      | Some pool -> pool
      | None ->
        let pool = create (max 2 (Domain.recommended_domain_count ())) in
        Atomic.set default (Some pool);
        pool
    in
    Mutex.unlock default_lock;
    pool
