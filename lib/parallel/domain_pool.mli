(** A fixed pool of worker domains with a blocking task queue.

    The GPU simulator maps thread blocks onto these workers; create the
    pool once and reuse it — spawning domains costs far more than a
    simulated kernel launch. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] workers ([n - 1] new domains; the
    calling domain participates in {!run}). *)

val size : t -> int

val shutdown : t -> unit
(** Joins all worker domains.  The pool must not be used afterwards. *)

val run : t -> (unit -> unit) list -> unit
(** Executes the closures on the pool (the calling domain participates)
    and returns when all have completed.  Every task is attempted; if any
    raised, the first exception is re-raised on the calling domain with
    its backtrace once all tasks have finished.  Nested calls from inside
    a task execute inline on the calling domain, so parallel code may
    safely call parallel code. *)

val parallel_for : ?chunk:int -> t -> int -> int -> (int -> unit) -> unit
(** [parallel_for pool lo hi f] applies [f i] for [lo <= i < hi] across
    the pool, in chunks of [chunk] (default: range / 4·workers), claimed
    from a shared atomic counter by self-scheduling workers (no per-chunk
    closures or locking).  The first exception raised by an [f i] is
    re-raised on the calling domain after the barrier; iterations not yet
    claimed by the raising worker may be skipped. *)

val isolate : (unit -> 'a) -> 'a
(** [isolate f] runs [f] with the calling domain marked as a task
    context: any nested {!run} or {!parallel_for} executes inline on
    this domain instead of entering the shared queue.  Long-running
    workers that own their domain (e.g. the fleet's per-device workers)
    wrap job execution in [isolate], because {!run} is only re-entrant
    from inside a pool task — two foreign domains calling it
    concurrently would race on the pool's barrier state. *)

val get_default : unit -> t
(** A lazily created pool sized to the machine. *)
