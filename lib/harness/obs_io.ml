(* JSON codecs for the observability layer: metric snapshots (which ride
   inside [Report.t]) and roofline diagnostic tables (the machine-
   readable CGMA output of `lsq_cli roofline`).

   They live here rather than in [lib/obs] so the obs library keeps zero
   in-repo dependencies (the tracer exports its own trace-event JSON;
   everything else serializes through [Harness.Json]). *)

module M = Obs.Metrics
module R = Obs.Roofline

(* ---- metric snapshots ---- *)

let json_of_metric (name, value) =
  let fields =
    match value with
    | M.Counter v -> [ ("kind", Json.Str "counter"); ("value", Json.Int v) ]
    | M.Gauge v -> [ ("kind", Json.Str "gauge"); ("value", Json.Float v) ]
    | M.Histogram { bounds; counts; count; sum; p50; p95; p99 } ->
      [
        ("kind", Json.Str "histogram");
        ( "bounds",
          Json.Arr (Array.to_list (Array.map (fun b -> Json.Float b) bounds))
        );
        ( "counts",
          Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) counts)) );
        ("count", Json.Int count);
        ("sum", Json.Float sum);
      ]
      (* Quantiles of an empty distribution are undefined, not 0: the
         keys are omitted so consumers can tell "no data" from "zero
         latency". *)
      @
      if count = 0 then []
      else
        [
          ("p50", Json.Float p50);
          ("p95", Json.Float p95);
          ("p99", Json.Float p99);
        ]
  in
  Json.Obj (("name", Json.Str name) :: fields)

let metric_of_json j =
  let name = Json.(get_string (member "name" j)) in
  let value =
    match Json.(get_string (member "kind" j)) with
    | "counter" -> M.Counter Json.(get_int (member "value" j))
    | "gauge" -> M.Gauge Json.(get_float (member "value" j))
    | "histogram" ->
      let bounds =
        Array.of_list
          (List.map Json.get_float Json.(get_list (member "bounds" j)))
      in
      let counts =
        Array.of_list
          (List.map Json.get_int Json.(get_list (member "counts" j)))
      in
      (* Quantiles are recomputed from the buckets when absent, so
         snapshots written before the percentile fields still parse. *)
      let q p key =
        match Json.to_option Json.get_float (Json.member key j) with
        | Some v -> v
        | None -> Obs.Metrics.quantile ~bounds ~counts p
      in
      M.Histogram
        {
          bounds;
          counts;
          count = Json.(get_int (member "count" j));
          sum = Json.(get_float (member "sum" j));
          p50 = q 0.50 "p50";
          p95 = q 0.95 "p95";
          p99 = q 0.99 "p99";
        }
    | k -> raise (Json.Error (Printf.sprintf "unknown metric kind '%s'" k))
  in
  (name, value)

let json_of_metrics (snap : M.snapshot) =
  Json.Arr (List.map json_of_metric snap)

let metrics_of_json j : M.snapshot = List.map metric_of_json (Json.get_list j)

(* ---- roofline tables ---- *)

let json_of_stage (s : R.stage) =
  Json.Obj
    [
      ("stage", Json.Str s.R.stage);
      ("ms", Json.Float s.R.ms);
      ("launches", Json.Int s.R.launches);
      ("flops", Json.Float s.R.flops);
      ("bytes", Json.Float s.R.bytes);
      ("intensity", Json.Float s.R.intensity);
      ("gflops", Json.Float s.R.gflops);
      ("pct_peak", Json.Float s.R.pct_peak);
      ("compute_ms", Json.Float s.R.compute_ms);
      ("memory_ms", Json.Float s.R.memory_ms);
      ("bound", Json.Str (R.bound_name s.R.bound));
    ]

let stage_of_json j : R.stage =
  {
    R.stage = Json.(get_string (member "stage" j));
    ms = Json.(get_float (member "ms" j));
    launches = Json.(get_int (member "launches" j));
    flops = Json.(get_float (member "flops" j));
    bytes = Json.(get_float (member "bytes" j));
    intensity = Json.(get_float (member "intensity" j));
    gflops = Json.(get_float (member "gflops" j));
    pct_peak = Json.(get_float (member "pct_peak" j));
    compute_ms = Json.(get_float (member "compute_ms" j));
    memory_ms = Json.(get_float (member "memory_ms" j));
    bound =
      (match Json.(get_string (member "bound" j)) with
      | "compute" -> R.Compute
      | "memory" -> R.Memory
      | b -> raise (Json.Error (Printf.sprintf "unknown bound '%s'" b)));
  }

let roofline_schema_version = 1

let json_of_roofline ~label ~device ~ridge stages =
  Json.Obj
    [
      ("schema", Json.Int roofline_schema_version);
      ("label", Json.Str label);
      ("device", Json.Str device);
      ("ridge", Json.Float ridge);
      ("stages", Json.Arr (List.map json_of_stage stages));
    ]

(* ---- telemetry streams ---- *)

(* Parsing side of the JSON lines [Obs.Telemetry] and [Obs.Log] write
   (their rendering is hand-rolled in lib/obs, which cannot depend on
   this library).  `lsq_cli monitor` tails a telemetry file through
   this codec. *)

type telemetry_snapshot = {
  seq : int;
  ts_ms : float;
  metrics : M.snapshot;
  health : Obs.Health.class_status list;
  drift : Obs.Health.stage_drift list;
}

type telemetry_line =
  | Snapshot of telemetry_snapshot
  | Log_line of Obs.Log.record

let class_status_of_json j : Obs.Health.class_status =
  {
    Obs.Health.cls = Json.(get_string (member "cls" j));
    window = Json.(get_int (member "window" j));
    p95_ms = Json.(to_option get_float (member "p95_ms" j));
    slo_ms = Json.(to_option get_float (member "slo_ms" j));
    slo_ok = Json.(get_bool (member "slo_ok" j));
    total = Json.(get_int (member "total" j));
    failures = Json.(get_int (member "failures" j));
    budget = Json.(to_option get_float (member "budget" j));
    budget_used = Json.(get_float (member "budget_used" j));
    budget_ok = Json.(get_bool (member "budget_ok" j));
  }

let stage_drift_of_json j : Obs.Health.stage_drift =
  {
    Obs.Health.stage = Json.(get_string (member "stage" j));
    predicted_ms = Json.(get_float (member "predicted_ms" j));
    measured_ms = Json.(get_float (member "measured_ms" j));
    ratio = Json.(get_float (member "ratio" j));
    samples = Json.(get_int (member "samples" j));
    drifted = Json.(get_bool (member "drifted" j));
  }

let log_field_of_json = function
  | Json.Str s -> Obs.Log.Str s
  | Json.Int i -> Obs.Log.Int i
  | Json.Float f -> Obs.Log.Float f
  | Json.Bool b -> Obs.Log.Bool b
  | j ->
    raise (Json.Error (Printf.sprintf "unsupported log field %s" (Json.to_string j)))

let log_record_of_json j : Obs.Log.record =
  {
    Obs.Log.ts_ms = Json.(get_float (member "ts_ms" j));
    level = Obs.Log.level_of_string Json.(get_string (member "level" j));
    domain = Json.(get_int (member "domain" j));
    event = Json.(get_string (member "event" j));
    fields =
      (match Json.member "fields" j with
      | Json.Obj kvs -> List.map (fun (k, v) -> (k, log_field_of_json v)) kvs
      | Json.Null -> []
      | _ -> raise (Json.Error "log fields must be an object"));
  }

let telemetry_line_of_json j =
  match Json.(get_string (member "type" j)) with
  | "snapshot" ->
    Snapshot
      {
        seq = Json.(get_int (member "seq" j));
        ts_ms = Json.(get_float (member "ts_ms" j));
        metrics = metrics_of_json (Json.member "metrics" j);
        health =
          List.map class_status_of_json Json.(get_list (member "health" j));
        drift =
          List.map stage_drift_of_json Json.(get_list (member "drift" j));
      }
  | "log" -> Log_line (log_record_of_json j)
  | t -> raise (Json.Error (Printf.sprintf "unknown telemetry line type '%s'" t))

(* A tail-follower can race the writer and hand us a torn line; every
   parse failure — bad JSON, a truncated document that parses but lacks
   fields ([Invalid_argument] from the accessors), an unknown level name
   — must surface as the one [Json.Error] the caller already counts,
   never as a crash. *)
let telemetry_line_of_string line =
  try telemetry_line_of_json (Json.of_string line) with
  | Json.Error _ as e -> raise e
  | Invalid_argument m | Failure m ->
    raise (Json.Error (Printf.sprintf "malformed telemetry line: %s" m))

let roofline_of_json j =
  let v = Json.(get_int (member "schema" j)) in
  if v <> roofline_schema_version then
    raise
      (Json.Error
         (Printf.sprintf "roofline schema %d, this build reads schema %d" v
            roofline_schema_version));
  ( Json.(get_string (member "label" j)),
    Json.(get_string (member "device" j)),
    Json.(get_float (member "ridge" j)),
    List.map stage_of_json Json.(get_list (member "stages" j)) )
