(** A minimal JSON value with a printer and a parser, enough for the
    report and batch-job schemas (no external dependency is available in
    the build environment).

    Floats are printed with 17 significant digits, so every finite float
    round-trips bit for bit through {!to_string} and {!of_string};
    non-finite floats are not representable in JSON and raise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string
(** Raised by the parser and by the typed accessors. *)

val to_string : t -> string
(** Compact one-line rendering (no insignificant whitespace). *)

val of_string : string -> t
(** Parses one JSON value; raises {!Error} on malformed input or on
    trailing garbage.  Numbers with a fraction or exponent parse as
    [Float], others as [Int]. *)

(** {2 Typed accessors} — all raise {!Error} on a kind mismatch. *)

val member : string -> t -> t
(** [member key obj] is the value bound to [key], or [Null] when the key
    is absent; raises {!Error} when the value is not an object. *)

val get_string : t -> string
val get_bool : t -> bool
val get_int : t -> int

val get_float : t -> float
(** Accepts both [Float] and [Int] payloads. *)

val get_list : t -> t list

val to_option : (t -> 'a) -> t -> 'a option
(** [to_option get v] is [None] on [Null], [Some (get v)] otherwise. *)
