(* Uniform entry points the table generators, the CLI and the batch
   scheduler call: run one experiment at a given precision (real or
   complex) on a given device and return the unified [Report.t].

   Tables are generated in planning mode (cost accounting without numeric
   execution), which is what lets the paper's largest dimensions run in
   seconds; the verification section executes the same code paths
   numerically at smaller dimensions. *)

open Mdlinalg
open Lsq_core
module P = Multidouble.Precision

let scalar_of ?(complex = false) (tag : P.tag) : (module Scalar.S) =
  match (tag, complex) with
  | P.D, false -> (module Scalar.D)
  | P.DD, false -> (module Scalar.Dd)
  | P.QD, false -> (module Scalar.Qd)
  | P.OD, false -> (module Scalar.Od)
  | P.D, true -> (module Scalar.Zd)
  | P.DD, true -> (module Scalar.Zdd)
  | P.QD, true -> (module Scalar.Zqd)
  | P.OD, true -> (module Scalar.Zod)

let describe what ?(complex = false) tag device shape =
  Printf.sprintf "%s %s%s %s %s" what (P.label tag)
    (if complex then " complex" else "")
    shape device.Gpusim.Device.name

(* Blocked Householder QR (Algorithm 2), cost accounting only. *)
let qr ?complex ?rows ?fault tag device ~n ~tile =
  let (module K) = scalar_of ?complex tag in
  let module Q = Blocked_qr.Make (K) in
  let rows = Option.value rows ~default:n in
  let r = Q.run_plan ?fault ~device ~rows ~cols:n ~tile () in
  {
    Report.label =
      describe "qr" ?complex tag device
        (Printf.sprintf "%dx%d tile=%d" rows n tile);
    stages = List.map Report.Row.of_profile r.Q.stages;
    parts = [];
    kernel_ms = r.Q.kernel_ms;
    wall_ms = r.Q.wall_ms;
    kernel_gflops = r.Q.kernel_gflops;
    wall_gflops = r.Q.wall_gflops;
    launches = r.Q.launches;
    residual = None;
    metrics = None;
    faults = Option.map Report.faults_of_tally r.Q.faults;
    solver = None;
  }

(* Tiled back substitution (Algorithm 1), cost accounting only. *)
let bs ?complex ?fault tag device ~dim ~tile =
  let (module K) = scalar_of ?complex tag in
  let module B = Tiled_back_sub.Make (K) in
  let r = B.run_plan ?fault ~device ~dim ~tile () in
  {
    Report.label =
      describe "backsub" ?complex tag device
        (Printf.sprintf "dim=%d tile=%d" dim tile);
    stages = List.map Report.Row.of_profile r.B.stages;
    parts = [];
    kernel_ms = r.B.kernel_ms;
    wall_ms = r.B.wall_ms;
    kernel_gflops = r.B.kernel_gflops;
    wall_gflops = r.B.wall_gflops;
    launches = r.B.launches;
    residual = None;
    metrics = None;
    faults = Option.map Report.faults_of_tally r.B.faults;
    solver = None;
  }

let qr_part = "QR"
let bs_part = "BS"

(* The engine-qualified experiment name: the default direct engine keeps
   the historical bare names ("solve", "solve-ft"), so every pre-existing
   label is unchanged; the iterative engines tag theirs. *)
let method_what what (method_ : Solver.method_) =
  match method_ with
  | Solver.Qr_direct -> what
  | m -> Printf.sprintf "%s[%s]" what (Solver.method_name m)

(* Least squares solve behind the pluggable engine seam (cost accounting
   only): the direct QR + BS plan — the two phases appear as the "QR"
   and "BS" parts, timed apart as in Table 10 — or one modeled rung of
   an iterative engine (CG on the normal equations, LSQR), whose rung
   appears as its part and whose report carries the schema-4 solver
   record. *)
let solve ?complex ?fault ?(method_ = Solver.Qr_direct) ?rows ?iterations tag
    device ~n ~tile =
  let (module K) = scalar_of ?complex tag in
  let module S = Solver.Make (K) in
  let rows = Option.value rows ~default:n in
  let r = S.plan ~method_ ?fault ?iterations ~device ~rows ~cols:n ~tile () in
  {
    Report.label =
      describe (method_what "solve" method_) ?complex tag device
        (Printf.sprintf "%dx%d tile=%d" rows n tile);
    stages = List.map Report.Row.of_profile r.S.stages;
    parts =
      List.map
        (fun (p : S.part) ->
          {
            Report.Part.name = p.S.name;
            kernel_ms = p.S.kernel_ms;
            wall_ms = p.S.wall_ms;
            kernel_gflops = p.S.kernel_gflops;
            wall_gflops = p.S.wall_gflops;
          })
        r.S.parts;
    kernel_ms = r.S.kernel_ms;
    wall_ms = r.S.wall_ms;
    kernel_gflops = r.S.kernel_gflops;
    wall_gflops = r.S.wall_gflops;
    launches = r.S.launches;
    residual = None;
    metrics = None;
    faults = Option.map Report.faults_of_tally r.S.faults;
    solver = Option.map (Report.solver_of_iter method_) r.S.iter;
  }

(* Per-stage roofline diagnostics (the paper's CGMA analysis, §4.1):
   plan the experiment on a throw-away simulator and classify every
   stage from the accumulated cost-model terms. *)

let qr_roofline ?complex ?rows tag device ~n ~tile =
  let (module K) = scalar_of ?complex tag in
  let module Q = Blocked_qr.Make (K) in
  let rows = Option.value rows ~default:n in
  let sim = Gpusim.Sim.create ~execute:false ~device ~prec:K.prec () in
  Q.plan sim ~rows ~cols:n ~tile;
  Gpusim.Sim.roofline sim

let bs_roofline ?complex tag device ~dim ~tile =
  let (module K) = scalar_of ?complex tag in
  let module B = Tiled_back_sub.Make (K) in
  let sim = Gpusim.Sim.create ~execute:false ~device ~prec:K.prec () in
  B.plan sim ~dim ~tile;
  Gpusim.Sim.roofline sim

let solve_roofline ?complex ?(method_ = Solver.Qr_direct) ?rows tag device ~n
    ~tile =
  match method_ with
  | Solver.Qr_direct ->
      qr_roofline ?complex ?rows tag device ~n ~tile
      @ bs_roofline ?complex tag device ~dim:n ~tile
  | (Solver.Cg_normal | Solver.Lsqr) as m ->
      (* The iterative engines' stages classify from the same cost
         terms as the direct ones: the O(1) flops-per-byte BLAS-1/2
         kernels come out memory-bound at double double (routing those
         jobs to bandwidth-rich device classes) and drift compute-bound
         as the Table 1 multipliers grow. *)
      let (module K) = scalar_of ?complex tag in
      let module S = Solver.Make (K) in
      let rows = Option.value rows ~default:n in
      let r = S.plan ~method_:m ~device ~rows ~cols:n ~tile () in
      List.map
        (fun (row : Gpusim.Profile.row) ->
          Obs.Roofline.classify ~stage:row.Gpusim.Profile.stage
            ~ms:row.Gpusim.Profile.ms ~launches:row.Gpusim.Profile.launches
            ~flops:(Gpusim.Counter.flops K.prec row.Gpusim.Profile.ops)
            ~bytes:
              (row.Gpusim.Profile.cold_bytes
              +. row.Gpusim.Profile.thread_bytes)
            ~compute_ms:row.Gpusim.Profile.compute_ms
            ~memory_ms:row.Gpusim.Profile.memory_ms
            ~peak_gflops:device.Gpusim.Device.dp_peak_gflops)
        r.S.stages

(* Satellite of the engine seam: when an executed iterative run chose
   its ladder start (from [Mdlinalg.Cond]'s double-precision estimate or
   an explicit override), surface the choice as a structured log record.
   Lives here rather than in [lsq_core], which deliberately has no [Obs]
   dependency. *)
let log_ladder_start ?(complex = false) tag (s : Report.solver) =
  if Obs.Log.enabled Obs.Log.Info then
    let fields =
      [
        ("method", Obs.Log.Str (Solver.method_name s.Report.method_));
        ("target", Obs.Log.Str (P.label tag));
        ("start", Obs.Log.Str (P.label s.Report.ladder_start));
        ("iterations", Obs.Log.Int s.Report.iterations);
        ("converged", Obs.Log.Bool s.Report.converged);
        ("complex", Obs.Log.Bool complex);
      ]
      @
      match s.Report.cond_estimate with
      | Some c -> [ ("cond", Obs.Log.Float c) ]
      | None -> []
    in
    Obs.Log.info ~fields "solver.ladder_start"

(* Numerically executed verification: factor, solve and report residuals
   (forward error against a known solution, orthogonality defect and
   factorization residual), exercising the very code the tables cost. *)

let verify_qr ?complex ?fault tag device ~n ~tile =
  let (module K) = scalar_of ?complex tag in
  let module Q = Blocked_qr.Make (K) in
  let module H = Host_qr.Make (K) in
  let module Rand = Randmat.Make (K) in
  let rng = Dompool.Prng.create 4242 in
  let a = Rand.matrix rng n n in
  let r = Q.run ?fault ~device ~a ~tile () in
  let defect = K.R.to_float (H.orthogonality_defect r.Q.q) in
  let resid = K.R.to_float (H.factorization_residual a r.Q.q r.Q.r) in
  let worst = Float.max defect resid in
  {
    Report.what =
      Printf.sprintf "QR %s%s n=%d tile=%d" (P.label tag)
        (if Option.value complex ~default:false then " complex" else "")
        n tile;
    residual = worst /. K.R.eps;
    eps = K.R.eps;
    ok = worst < 1e6 *. K.R.eps;
  }

let verify_solve ?complex ?fault ?(method_ = Solver.Qr_direct) ?rows tag
    device ~n ~tile =
  let (module K) = scalar_of ?complex tag in
  let module S = Solver.Make (K) in
  let module Rand = Randmat.Make (K) in
  let module V = Vec.Make (K) in
  let rng = Dompool.Prng.create 2424 in
  let rows = Option.value rows ~default:n in
  let a = Rand.matrix rng rows n in
  let b, x_true = Rand.rhs_for rng a in
  let r = S.solve ~method_ ?fault ~device ~a ~b ~tile () in
  Option.iter
    (fun it -> log_ladder_start ?complex tag (Report.solver_of_iter method_ it))
    r.S.iter;
  let err =
    K.R.to_float (V.norm (V.sub r.S.x x_true))
    /. K.R.to_float (V.norm x_true)
  in
  let shape =
    if rows = n then Printf.sprintf "n=%d" n
    else Printf.sprintf "%dx%d" rows n
  in
  {
    Report.what =
      Printf.sprintf "%s %s%s %s tile=%d"
        (method_what "least squares" method_)
        (P.label tag)
        (if Option.value complex ~default:false then " complex" else "")
        shape tile;
    residual = err /. K.R.eps;
    eps = K.R.eps;
    ok = err < 1e10 *. K.R.eps;
  }

let verify_bs ?complex ?fault tag device ~dim ~tile =
  let (module K) = scalar_of ?complex tag in
  let module B = Tiled_back_sub.Make (K) in
  let module Rand = Randmat.Make (K) in
  let module Tri = Host_tri.Make (K) in
  let rng = Dompool.Prng.create 3434 in
  let u = Rand.upper rng dim in
  let b, _ = Rand.rhs_for rng u in
  let r = B.run ?fault ~device ~u ~b ~tile () in
  let resid = K.R.to_float (Tri.residual u r.B.x b) in
  {
    Report.what =
      Printf.sprintf "back substitution %s%s dim=%d tile=%d" (P.label tag)
        (if Option.value complex ~default:false then " complex" else "")
        dim tile;
    residual = resid /. K.R.eps;
    eps = K.R.eps;
    ok = resid < 1e6 *. K.R.eps;
  }

(* Fault-tolerant executed solve: the top rung of the recovery ladder.
   The solver-level rungs (relaunch, panel/tile replay) act underneath;
   what reaches this level is either an escalation (budgets exhausted,
   [Fault.Plan.Injected]) or a silent corruption that slipped past the
   ABFT probes and only shows in the final forward error.  Escalations
   replay the whole solve under a decorrelated seed; a bad residual
   falls back to a fault-free mixed-precision refinement pass at the
   next precision up the D -> DD -> QD -> OD ladder (a plain clean
   re-solve at the top).  Never raises: [residual.ok] carries the final
   verdict, and the report's fault record is flagged [refined] when the
   fallback ran.  A fully escalated attempt dies before its simulator
   tally can be read back, so those strikes go uncounted — the campaign
   still sees them as a [refined] report with a zero tally. *)

let next_tag = function
  | P.D -> Some P.DD
  | P.DD -> Some P.QD
  | P.QD -> Some P.OD
  | P.OD -> None

let salted (cfg : Fault.Plan.config) =
  Fault.Plan.config ~kinds:cfg.Fault.Plan.kinds
    ~max_relaunches:cfg.Fault.Plan.max_relaunches
    ~max_replays:cfg.Fault.Plan.max_replays
    ~seed:(cfg.Fault.Plan.seed + 0x5bd1e995)
    ~rate:cfg.Fault.Plan.rate ()

let solve_ft ?(complex = false) ?fault ?(method_ = Solver.Qr_direct) tag
    device ~n ~tile =
  let (module K) = scalar_of ~complex tag in
  let module S = Solver.Make (K) in
  let module M = Mat.Make (K) in
  let module V = Vec.Make (K) in
  let module Rand = Randmat.Make (K) in
  let rng = Dompool.Prng.create 6060 in
  let a = Rand.matrix rng n n in
  let b, x_true = Rand.rhs_for rng a in
  let err_of x =
    K.R.to_float (V.norm (V.sub x x_true)) /. K.R.to_float (V.norm x_true)
  in
  let clean () =
    S.solve ~method_ ~device ~a:(M.copy a) ~b:(V.copy b) ~tile ()
  in
  let rec attempt retries cfg =
    match
      S.solve ~method_ ?fault:cfg ~device ~a:(M.copy a) ~b:(V.copy b) ~tile ()
    with
    | r -> r
    | exception Fault.Plan.Injected _ when retries > 0 ->
        attempt (retries - 1) (Option.map salted cfg)
    | exception Fault.Plan.Injected _ -> clean ()
  in
  (* Fault-free refinement at the next precision up; at the top of the
     ladder a clean re-solve is all that is left. *)
  let refined_solve () =
    match next_tag tag with
    | None -> (clean ()).S.x
    | Some hi ->
        let (module KH) = scalar_of ~complex hi in
        let module Rf = Refine.Make_scalar (K) (KH) in
        let ah = Rf.MH.init n n (fun i j -> Rf.promote (M.get a i j)) in
        let bh = Array.map Rf.promote b in
        let res = Rf.solve ~device ~a:ah ~b:bh ~tile () in
        Array.map Rf.demote res.Rf.x
  in
  let threshold = 1e10 *. K.R.eps in
  let r = attempt 1 fault in
  Option.iter
    (fun it -> log_ladder_start ~complex tag (Report.solver_of_iter method_ it))
    r.S.iter;
  let first_err = err_of r.S.x in
  let refined = Float.is_nan first_err || first_err >= threshold in
  let err = if refined then err_of (refined_solve ()) else first_err in
  let faults =
    match fault with
    | None -> Option.map (Report.faults_of_tally ~refined) r.S.faults
    | Some _ ->
        Some
          (Report.faults_of_tally ~refined
             (Option.value r.S.faults ~default:Fault.Plan.zero_tally))
  in
  let shape = Printf.sprintf "%dx%d tile=%d" n n tile in
  let what = method_what "solve-ft" method_ in
  {
    Report.label = describe what ~complex tag device shape;
    stages = List.map Report.Row.of_profile r.S.stages;
    parts =
      List.map
        (fun (p : S.part) ->
          {
            Report.Part.name = p.S.name;
            kernel_ms = p.S.kernel_ms;
            wall_ms = p.S.wall_ms;
            kernel_gflops = p.S.kernel_gflops;
            wall_gflops = p.S.wall_gflops;
          })
        r.S.parts;
    kernel_ms = r.S.kernel_ms;
    wall_ms = r.S.wall_ms;
    kernel_gflops = r.S.kernel_gflops;
    wall_gflops = r.S.wall_gflops;
    launches = r.S.launches;
    residual =
      Some
        {
          Report.what = Printf.sprintf "%s %s %s" what (P.label tag) shape;
          residual = err /. K.R.eps;
          eps = K.R.eps;
          ok = (not (Float.is_nan err)) && err < threshold;
        };
    metrics = None;
    faults;
    solver = Option.map (Report.solver_of_iter method_) r.S.iter;
  }
