(** Uniform entry points the table generators, the CLI and the batch
    scheduler share: run one experiment at a given precision (real or
    complex) on a given device and return the unified {!Report.t}.

    Tables are generated in planning mode (cost accounting without
    numeric execution); the [verify_*] functions execute the same code
    paths numerically at moderate dimensions and report residuals. *)

val scalar_of :
  ?complex:bool -> Multidouble.Precision.tag -> (module Mdlinalg.Scalar.S)
(** The shared scalar instantiation for a precision tag. *)

val qr :
  ?complex:bool ->
  ?rows:int ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** Blocked Householder QR (Algorithm 2), cost accounting only.  An
    armed [?fault] plan attaches the fault tally to the report. *)

val bs :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Report.t
(** Tiled back substitution (Algorithm 1), cost accounting only. *)

val qr_part : string
(** The part name of the solver's factorization phase ("QR"). *)

val bs_part : string
(** The part name of the solver's back substitution phase ("BS"). *)

val solve :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** The least squares solver (QR then back substitution), cost
    accounting only; the two phases appear as the {!qr_part} and
    {!bs_part} parts of the report. *)

val solve_ft :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** Numerically executed fault-tolerant solve on a seeded random
    system: the top rung of the recovery ladder.  Escalations from the
    solver ([Fault.Plan.Injected]) replay the whole solve under a
    decorrelated seed; an escaped corruption caught by the final
    forward-error check triggers a fault-free mixed-precision
    refinement pass at the next precision up the D/DD/QD/OD ladder
    (flagged [refined] in the report's fault record).  Never raises;
    [residual.ok] carries the final verdict. *)

val qr_roofline :
  ?complex:bool ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the QR plan, in
    {!Lsq_core.Stage.qr_stages} order. *)

val bs_roofline :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the back substitution plan. *)

val solve_roofline :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Obs.Roofline.stage list
(** QR stages followed by back substitution stages for an n-by-n
    solve. *)

val verify_qr :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.residual

val verify_solve :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.residual

val verify_bs :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Report.residual
