(** Uniform entry points the table generators, the CLI and the batch
    scheduler share: run one experiment at a given precision (real or
    complex) on a given device and return the unified {!Report.t}.

    Tables are generated in planning mode (cost accounting without
    numeric execution); the [verify_*] functions execute the same code
    paths numerically at moderate dimensions and report residuals. *)

val scalar_of :
  ?complex:bool -> Multidouble.Precision.tag -> (module Mdlinalg.Scalar.S)
(** The shared scalar instantiation for a precision tag. *)

val qr :
  ?complex:bool ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** Blocked Householder QR (Algorithm 2), cost accounting only. *)

val bs :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Report.t
(** Tiled back substitution (Algorithm 1), cost accounting only. *)

val qr_part : string
(** The part name of the solver's factorization phase ("QR"). *)

val bs_part : string
(** The part name of the solver's back substitution phase ("BS"). *)

val solve :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** The least squares solver (QR then back substitution), cost
    accounting only; the two phases appear as the {!qr_part} and
    {!bs_part} parts of the report. *)

val qr_roofline :
  ?complex:bool ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the QR plan, in
    {!Lsq_core.Stage.qr_stages} order. *)

val bs_roofline :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the back substitution plan. *)

val solve_roofline :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Obs.Roofline.stage list
(** QR stages followed by back substitution stages for an n-by-n
    solve. *)

val verify_qr :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.residual

val verify_solve :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.residual

val verify_bs :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Report.residual
