(** Uniform entry points the table generators, the CLI and the batch
    scheduler share: run one experiment at a given precision (real or
    complex) on a given device and return the unified {!Report.t}.

    Tables are generated in planning mode (cost accounting without
    numeric execution); the [verify_*] functions execute the same code
    paths numerically at moderate dimensions and report residuals. *)

val scalar_of :
  ?complex:bool -> Multidouble.Precision.tag -> (module Mdlinalg.Scalar.S)
(** The shared scalar instantiation for a precision tag. *)

val qr :
  ?complex:bool ->
  ?rows:int ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** Blocked Householder QR (Algorithm 2), cost accounting only.  An
    armed [?fault] plan attaches the fault tally to the report. *)

val bs :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Report.t
(** Tiled back substitution (Algorithm 1), cost accounting only. *)

val qr_part : string
(** The part name of the solver's factorization phase ("QR"). *)

val bs_part : string
(** The part name of the solver's back substitution phase ("BS"). *)

val solve :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  ?method_:Lsq_core.Solver.method_ ->
  ?rows:int ->
  ?iterations:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** The least squares solve behind the pluggable engine seam, cost
    accounting only.  The default [Qr_direct] engine plans QR then back
    substitution — the two phases appear as the {!qr_part} and
    {!bs_part} parts of the report, and its output is unchanged from
    before the seam existed.  [Cg_normal] / [Lsqr] plan one modeled
    rung of [?iterations] iterative sweeps
    (default {!Lsq_core.Solver.planned_iterations}) and attach the
    schema-4 solver record.  [?rows] makes the system tall
    (default [n], i.e. square). *)

val solve_ft :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  ?method_:Lsq_core.Solver.method_ ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.t
(** Numerically executed fault-tolerant solve on a seeded random
    system with the chosen engine: the top rung of the recovery ladder.
    Escalations from the solver ([Fault.Plan.Injected]) — including the
    iterative engines' failed final certification under an armed plan —
    replay the whole solve under a decorrelated seed; an escaped
    corruption caught by the final forward-error check triggers a
    fault-free mixed-precision refinement pass at the next precision up
    the D/DD/QD/OD ladder (flagged [refined] in the report's fault
    record).  Never raises; [residual.ok] carries the final verdict. *)

val log_ladder_start :
  ?complex:bool -> Multidouble.Precision.tag -> Report.solver -> unit
(** Emit the [solver.ladder_start] structured log record for an
    executed iterative run: the engine, the target precision, the
    ladder rung the condition estimate (or explicit override) chose,
    the estimate itself when automatic, and how the run went.  Gated on
    [Obs.Log.enabled Info]; the executed runners call it themselves. *)

val qr_roofline :
  ?complex:bool ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the QR plan, in
    {!Lsq_core.Stage.qr_stages} order. *)

val bs_roofline :
  ?complex:bool ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the back substitution plan. *)

val solve_roofline :
  ?complex:bool ->
  ?method_:Lsq_core.Solver.method_ ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Obs.Roofline.stage list
(** Per-stage roofline diagnostics of the chosen engine's plan: QR
    stages followed by back substitution stages for the direct engine;
    the matvec / BLAS-1 stages — memory-bound at every precision — for
    the iterative ones. *)

val verify_qr :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.residual

val verify_solve :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  ?method_:Lsq_core.Solver.method_ ->
  ?rows:int ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  n:int ->
  tile:int ->
  Report.residual
(** Numerically executed solve with the chosen engine on a seeded
    random system ([?rows] by [n], default square) with a known
    solution, reporting the forward error in units of eps. *)

val verify_bs :
  ?complex:bool ->
  ?fault:Fault.Plan.config ->
  Multidouble.Precision.tag ->
  Gpusim.Device.t ->
  dim:int ->
  tile:int ->
  Report.residual
