(** The unified experiment report: one record for every runner (QR, back
    substitution, least squares solve), replacing the former ad-hoc
    [Runners.run] / [Runners.solve_run] pair.

    A report always carries the per-stage kernel breakdown — since
    schema 2 each stage row also records its launch count and operation
    tally — and the four aggregate figures of the paper's tables;
    composite experiments (the solver) additionally expose their phases
    as {!Part.t} values, numerically executed runs attach a
    {!residual}, and metered runs can embed an {!Obs.Metrics} snapshot.

    Reports serialize to a versioned JSON schema ({!schema_version},
    stored under the ["schema"] key) and round-trip exactly through
    {!to_json} / {!of_json}: floats are printed with 17 significant
    digits, so [of_json (to_json r) = r] structurally. *)

(** One timed phase of a composite experiment (e.g. the "QR" and "BS"
    phases of the solver, timed apart as in Table 10). *)
module Part : sig
  type t = {
    name : string;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
  }
end

(** One stage of the per-stage kernel breakdown. *)
module Row : sig
  type t = {
    stage : string;
    ms : float;  (** accumulated kernel milliseconds *)
    launches : int;
    ops : Gpusim.Counter.ops;  (** accumulated operation tallies *)
  }

  val of_profile : Gpusim.Profile.row -> t
end

(** The outcome of a numerically executed verification, in units of the
    working precision's eps. *)
type residual = {
  what : string;
  residual : float;  (** relative, in units of [eps] *)
  eps : float;
  ok : bool;
}

(** The fault story of one run under an armed [Fault.Plan]: injection,
    detection and recovery counts, plus whether the refinement fallback
    had to repair the solution.  Absent ([None]) on fault-free runs —
    their reports are byte-identical to schema-2-era output modulo the
    version stamp. *)
type faults = {
  bitflips : int;
  launch_fails : int;
  transfer_faults : int;
  detected : int;
  relaunches : int;
  retransfers : int;
  replays : int;
  escalations : int;
  refined : bool;
}

val faults_of_tally : ?refined:bool -> Fault.Plan.tally -> faults
val faults_injected : faults -> int

(** The iterative-engine story of one run (schema 4): which engine
    solved it and how the refinement ladder went — inner iteration
    totals, per-rung counts, the residual-norm trajectory at the target
    precision, the ladder's starting rung (and the double-precision
    condition estimate that picked it, when automatic), and whether the
    final certification bound held.  Absent ([None]) on direct QR runs —
    their reports are byte-identical to schema-3-era output modulo the
    version stamp. *)
type solver = {
  method_ : Lsq_core.Solver.method_;
  iterations : int;
  residual_history : float list;
  ladder : (Multidouble.Precision.tag * int) list;
  ladder_start : Multidouble.Precision.tag;
  cond_estimate : float option;
  converged : bool;
}

val solver_of_iter : Lsq_core.Solver.method_ -> Lsq_core.Solver.iter_info -> solver
(** Lift an engine's {!Lsq_core.Solver.iter_info} into the report form. *)

type t = {
  label : string;  (** what ran: experiment, precision, device, shape *)
  stages : Row.t list;  (** per-stage kernel breakdown *)
  parts : Part.t list;  (** phase breakdown; [[]] for single-phase runs *)
  kernel_ms : float;
  wall_ms : float;
  kernel_gflops : float;
  wall_gflops : float;
  launches : int;
  residual : residual option;
  metrics : Obs.Metrics.snapshot option;
      (** attached by metered runs; [None] otherwise *)
  faults : faults option;  (** attached by fault-armed runs *)
  solver : solver option;  (** attached by iterative-engine runs *)
}

val schema_version : int
(** The version stamped into (and required of) the JSON form. *)

val part : t -> string -> Part.t
(** [part t name] is the named phase; raises [Not_found]. *)

val part_opt : t -> string -> Part.t option

val stage_ms : t -> (string * float) list
(** The schema-1 view of {!field-stages}: stage names paired with their
    kernel milliseconds. *)

val to_json : t -> Json.t
val of_json : Json.t -> t
(** Raises [Json.Error] on a malformed document or a schema-version
    mismatch. *)

val to_json_string : t -> string
val of_json_string : string -> t
