(* A minimal JSON value with a printer and a parser, enough for the
   report and batch-job schemas.  Floats are printed with 17 significant
   digits so every finite float round-trips bit for bit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then fail "non-finite float %f has no JSON form" f;
  let s = Printf.sprintf "%.17g" f in
  (* Keep the number recognizably a float, so it parses back as one. *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | Arr vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing: recursive descent over the input string ---- *)

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail "expected '%c' at offset %d, found '%c'" c st.pos d
  | None -> fail "expected '%c' at offset %d, found end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "malformed literal at offset %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      (if st.pos >= String.length st.s then fail "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then fail "truncated \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail "malformed \\u escape '%s'" hex
         in
         (* Encode the code point as UTF-8 (surrogates land verbatim —
            our own output never emits them). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end
       | e -> fail "unknown escape '\\%c'" e);
      go ()
    end
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_number_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_number_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  if text = "" then fail "expected a value at offset %d" start;
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail "malformed number '%s'" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number '%s'" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value st :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          go ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail "expected ',' or ']' at offset %d" st.pos
      in
      go ();
      Arr (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let items = ref [] in
      let rec go () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        items := (key, parse_value st) :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          go ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail "expected ',' or '}' at offset %d" st.pos
      in
      go ();
      Obj (List.rev !items)
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at offset %d" st.pos;
  v

(* ---- typed accessors ---- *)

let kind = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let member key = function
  | Obj kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Null)
  | v -> fail "expected an object for member '%s', found %s" key (kind v)

let get_string = function
  | Str s -> s
  | v -> fail "expected a string, found %s" (kind v)

let get_bool = function
  | Bool b -> b
  | v -> fail "expected a bool, found %s" (kind v)

let get_int = function
  | Int i -> i
  | v -> fail "expected an int, found %s" (kind v)

let get_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> fail "expected a number, found %s" (kind v)

let get_list = function
  | Arr vs -> vs
  | v -> fail "expected an array, found %s" (kind v)

let to_option get = function Null -> None | v -> Some (get v)
