(* The unified experiment report shared by the runners, the CLI, the
   table generators and the batch scheduler; serializes to a versioned
   JSON schema that round-trips exactly (17-digit floats). *)

module Part = struct
  type t = {
    name : string;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
  }
end

module Row = struct
  type t = {
    stage : string;
    ms : float;
    launches : int;
    ops : Gpusim.Counter.ops;
  }

  let of_profile (r : Gpusim.Profile.row) =
    {
      stage = r.Gpusim.Profile.stage;
      ms = r.Gpusim.Profile.ms;
      launches = r.Gpusim.Profile.launches;
      ops = r.Gpusim.Profile.ops;
    }
end

type residual = { what : string; residual : float; eps : float; ok : bool }

(* The fault story of one run: the injection/detection/recovery tally of
   the armed plan plus whether the refinement fallback had to repair the
   solution.  Absent on fault-free runs, so their reports are unchanged. *)
type faults = {
  bitflips : int;
  launch_fails : int;
  transfer_faults : int;
  detected : int;
  relaunches : int;
  retransfers : int;
  replays : int;
  escalations : int;
  refined : bool;
}

let faults_of_tally ?(refined = false) (tl : Fault.Plan.tally) =
  {
    bitflips = tl.Fault.Plan.bitflips;
    launch_fails = tl.Fault.Plan.launch_fails;
    transfer_faults = tl.Fault.Plan.transfer_faults;
    detected = tl.Fault.Plan.detected;
    relaunches = tl.Fault.Plan.relaunches;
    retransfers = tl.Fault.Plan.retransfers;
    replays = tl.Fault.Plan.replays;
    escalations = tl.Fault.Plan.escalations;
    refined;
  }

let faults_injected f = f.bitflips + f.launch_fails + f.transfer_faults

(* The iterative-engine story of one run: which engine solved it and how
   the refinement ladder went.  Absent on direct (QR) runs, so their
   reports are unchanged modulo the version stamp. *)
type solver = {
  method_ : Lsq_core.Solver.method_;
  iterations : int;
  residual_history : float list;
  ladder : (Multidouble.Precision.tag * int) list;
  ladder_start : Multidouble.Precision.tag;
  cond_estimate : float option;
  converged : bool;
}

let solver_of_iter method_ (it : Lsq_core.Solver.iter_info) =
  {
    method_;
    iterations = it.Lsq_core.Solver.iterations;
    residual_history = it.Lsq_core.Solver.residual_history;
    ladder = it.Lsq_core.Solver.ladder;
    ladder_start = it.Lsq_core.Solver.ladder_start;
    cond_estimate = it.Lsq_core.Solver.cond_estimate;
    converged = it.Lsq_core.Solver.converged;
  }

type t = {
  label : string;
  stages : Row.t list;
  parts : Part.t list;
  kernel_ms : float;
  wall_ms : float;
  kernel_gflops : float;
  wall_gflops : float;
  launches : int;
  residual : residual option;
  metrics : Obs.Metrics.snapshot option;
  faults : faults option;
  solver : solver option;
}

(* v2: stage rows carry launches and operation tallies, and a report can
   embed a metrics snapshot.  v3: optional per-run fault tally.
   v4: optional solver record (engine method + refinement-ladder
   trajectory of the iterative engines). *)
let schema_version = 4

let part t name = List.find (fun p -> p.Part.name = name) t.parts

let part_opt t name = List.find_opt (fun p -> p.Part.name = name) t.parts

let stage_ms t = List.map (fun r -> (r.Row.stage, r.Row.ms)) t.stages

(* ---- JSON ---- *)

let json_of_part (p : Part.t) =
  Json.Obj
    [
      ("name", Json.Str p.Part.name);
      ("kernel_ms", Json.Float p.Part.kernel_ms);
      ("wall_ms", Json.Float p.Part.wall_ms);
      ("kernel_gflops", Json.Float p.Part.kernel_gflops);
      ("wall_gflops", Json.Float p.Part.wall_gflops);
    ]

let part_of_json j =
  {
    Part.name = Json.(get_string (member "name" j));
    kernel_ms = Json.(get_float (member "kernel_ms" j));
    wall_ms = Json.(get_float (member "wall_ms" j));
    kernel_gflops = Json.(get_float (member "kernel_gflops" j));
    wall_gflops = Json.(get_float (member "wall_gflops" j));
  }

let json_of_row (r : Row.t) =
  Json.Obj
    [
      ("stage", Json.Str r.Row.stage);
      ("ms", Json.Float r.Row.ms);
      ("launches", Json.Int r.Row.launches);
      ("adds", Json.Float r.Row.ops.Gpusim.Counter.adds);
      ("muls", Json.Float r.Row.ops.Gpusim.Counter.muls);
      ("divs", Json.Float r.Row.ops.Gpusim.Counter.divs);
      ("sqrts", Json.Float r.Row.ops.Gpusim.Counter.sqrts);
    ]

let row_of_json j =
  {
    Row.stage = Json.(get_string (member "stage" j));
    ms = Json.(get_float (member "ms" j));
    launches = Json.(get_int (member "launches" j));
    ops =
      {
        Gpusim.Counter.adds = Json.(get_float (member "adds" j));
        muls = Json.(get_float (member "muls" j));
        divs = Json.(get_float (member "divs" j));
        sqrts = Json.(get_float (member "sqrts" j));
      };
  }

let json_of_residual r =
  Json.Obj
    [
      ("what", Json.Str r.what);
      ("residual", Json.Float r.residual);
      ("eps", Json.Float r.eps);
      ("ok", Json.Bool r.ok);
    ]

let residual_of_json j =
  {
    what = Json.(get_string (member "what" j));
    residual = Json.(get_float (member "residual" j));
    eps = Json.(get_float (member "eps" j));
    ok = Json.(get_bool (member "ok" j));
  }

let json_of_faults f =
  Json.Obj
    [
      ("bitflips", Json.Int f.bitflips);
      ("launch_fails", Json.Int f.launch_fails);
      ("transfer_faults", Json.Int f.transfer_faults);
      ("detected", Json.Int f.detected);
      ("relaunches", Json.Int f.relaunches);
      ("retransfers", Json.Int f.retransfers);
      ("replays", Json.Int f.replays);
      ("escalations", Json.Int f.escalations);
      ("refined", Json.Bool f.refined);
    ]

let faults_of_json j =
  {
    bitflips = Json.(get_int (member "bitflips" j));
    launch_fails = Json.(get_int (member "launch_fails" j));
    transfer_faults = Json.(get_int (member "transfer_faults" j));
    detected = Json.(get_int (member "detected" j));
    relaunches = Json.(get_int (member "relaunches" j));
    retransfers = Json.(get_int (member "retransfers" j));
    replays = Json.(get_int (member "replays" j));
    escalations = Json.(get_int (member "escalations" j));
    refined = Json.(get_bool (member "refined" j));
  }

let json_of_solver s =
  Json.Obj
    [
      ("method", Json.Str (Lsq_core.Solver.method_name s.method_));
      ("iterations", Json.Int s.iterations);
      ( "residual_history",
        Json.Arr (List.map (fun r -> Json.Float r) s.residual_history) );
      ( "ladder",
        Json.Arr
          (List.map
             (fun (tag, iters) ->
               Json.Obj
                 [
                   ("prec", Json.Str (Multidouble.Precision.label tag));
                   ("iterations", Json.Int iters);
                 ])
             s.ladder) );
      ("ladder_start", Json.Str (Multidouble.Precision.label s.ladder_start));
      ( "cond_estimate",
        match s.cond_estimate with Some c -> Json.Float c | None -> Json.Null
      );
      ("converged", Json.Bool s.converged);
    ]

let solver_of_json j =
  {
    method_ =
      Lsq_core.Solver.method_of_string Json.(get_string (member "method" j));
    iterations = Json.(get_int (member "iterations" j));
    residual_history =
      List.map Json.get_float Json.(get_list (member "residual_history" j));
    ladder =
      List.map
        (fun r ->
          ( Multidouble.Precision.of_label Json.(get_string (member "prec" r)),
            Json.(get_int (member "iterations" r)) ))
        Json.(get_list (member "ladder" j));
    ladder_start =
      Multidouble.Precision.of_label
        Json.(get_string (member "ladder_start" j));
    cond_estimate = Json.to_option Json.get_float (Json.member "cond_estimate" j);
    converged = Json.(get_bool (member "converged" j));
  }

let to_json t =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("label", Json.Str t.label);
      ("stages", Json.Arr (List.map json_of_row t.stages));
      ("parts", Json.Arr (List.map json_of_part t.parts));
      ("kernel_ms", Json.Float t.kernel_ms);
      ("wall_ms", Json.Float t.wall_ms);
      ("kernel_gflops", Json.Float t.kernel_gflops);
      ("wall_gflops", Json.Float t.wall_gflops);
      ("launches", Json.Int t.launches);
      ( "residual",
        match t.residual with Some r -> json_of_residual r | None -> Json.Null
      );
      ( "metrics",
        match t.metrics with
        | Some m -> Obs_io.json_of_metrics m
        | None -> Json.Null );
      ( "faults",
        match t.faults with Some f -> json_of_faults f | None -> Json.Null );
      ( "solver",
        match t.solver with Some s -> json_of_solver s | None -> Json.Null );
    ]

let of_json j =
  let v = Json.(get_int (member "schema" j)) in
  if v <> schema_version then
    raise
      (Json.Error
         (Printf.sprintf "report schema %d, this build reads schema %d" v
            schema_version));
  {
    label = Json.(get_string (member "label" j));
    stages = List.map row_of_json Json.(get_list (member "stages" j));
    parts = List.map part_of_json Json.(get_list (member "parts" j));
    kernel_ms = Json.(get_float (member "kernel_ms" j));
    wall_ms = Json.(get_float (member "wall_ms" j));
    kernel_gflops = Json.(get_float (member "kernel_gflops" j));
    wall_gflops = Json.(get_float (member "wall_gflops" j));
    launches = Json.(get_int (member "launches" j));
    residual = Json.to_option residual_of_json (Json.member "residual" j);
    metrics = Json.to_option Obs_io.metrics_of_json (Json.member "metrics" j);
    faults = Json.to_option faults_of_json (Json.member "faults" j);
    solver = Json.to_option solver_of_json (Json.member "solver" j);
  }

let to_json_string t = Json.to_string (to_json t)
let of_json_string s = of_json (Json.of_string s)
