(** JSON codecs for the observability layer: metric snapshots (which
    ride inside {!Report.t}) and roofline diagnostic tables (the
    machine-readable CGMA output of [lsq_cli roofline]).

    Both codecs round-trip exactly (floats print with 17 significant
    digits through {!Json}); the parsers raise [Json.Error] on malformed
    documents. *)

val json_of_metrics : Obs.Metrics.snapshot -> Json.t
(** Zero-count histograms omit their [p50]/[p95]/[p99] keys — the
    quantiles of an empty distribution are undefined, and emitting [0.0]
    would be indistinguishable from a measured zero latency. *)

val metrics_of_json : Json.t -> Obs.Metrics.snapshot
(** Histogram percentile fields ([p50]/[p95]/[p99]) are recomputed from
    the bucket counts when absent (zero-count histograms, or documents
    predating the fields). *)

(** {2 Telemetry streams}

    Parsers for the JSON lines [Obs.Telemetry] writes (one
    [{"type":"snapshot",...}] object per exporter tick, with
    [{"type":"log",...}] records interleaved); [lsq_cli monitor] tails a
    telemetry file through this codec. *)

type telemetry_snapshot = {
  seq : int;
  ts_ms : float;
  metrics : Obs.Metrics.snapshot;
  health : Obs.Health.class_status list;
  drift : Obs.Health.stage_drift list;
}

type telemetry_line =
  | Snapshot of telemetry_snapshot
  | Log_line of Obs.Log.record

val telemetry_line_of_json : Json.t -> telemetry_line

val telemetry_line_of_string : string -> telemetry_line
(** Raises {!Json.Error} — and only [Json.Error] — on any malformed
    line, including truncated documents and torn tail-follow reads that
    would otherwise surface as [Invalid_argument]/[Failure] from the
    field accessors.  Callers skip-and-count on it. *)

val roofline_schema_version : int
(** Version stamped into (and required of) a serialized roofline
    table. *)

val json_of_roofline :
  label:string ->
  device:string ->
  ridge:float ->
  Obs.Roofline.stage list ->
  Json.t

val roofline_of_json :
  Json.t -> string * string * float * Obs.Roofline.stage list
(** [(label, device, ridge, stages)] of a serialized table. *)
