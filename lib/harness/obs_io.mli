(** JSON codecs for the observability layer: metric snapshots (which
    ride inside {!Report.t}) and roofline diagnostic tables (the
    machine-readable CGMA output of [lsq_cli roofline]).

    Both codecs round-trip exactly (floats print with 17 significant
    digits through {!Json}); the parsers raise [Json.Error] on malformed
    documents. *)

val json_of_metrics : Obs.Metrics.snapshot -> Json.t

val metrics_of_json : Json.t -> Obs.Metrics.snapshot
(** Histogram percentile fields ([p50]/[p95]/[p99]) are recomputed from
    the bucket counts when a document predating them omits them. *)

val roofline_schema_version : int
(** Version stamped into (and required of) a serialized roofline
    table. *)

val json_of_roofline :
  label:string ->
  device:string ->
  ridge:float ->
  Obs.Roofline.stage list ->
  Json.t

val roofline_of_json :
  Json.t -> string * string * float * Obs.Roofline.stage list
(** [(label, device, ridge, stages)] of a serialized table. *)
