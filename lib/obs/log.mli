(** Structured leveled logging for the fleet service.

    One process-wide logger with an atomic level gate and three sink
    modes.  [Off] (the default) makes every call a single atomic load;
    [Channel] writes JSON lines immediately (the [serve] stderr mode);
    [Buffered] pushes onto per-domain lock-free buffers for a drainer —
    the telemetry exporter — to collect, mirroring {!Tracer}'s
    per-domain sink discipline. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level
(** Inverse of {!level_name} (also accepts ["warning"]); raises
    [Invalid_argument] on unknown names. *)

type field = Str of string | Int of int | Float of float | Bool of bool

type record = {
  ts_ms : float;  (** epoch milliseconds *)
  level : level;
  domain : int;  (** emitting domain id *)
  event : string;
  fields : (string * field) list;
}

type sink = Off | Buffered | Channel of out_channel

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** [enabled l] is true when records at [l] pass the current gate.  Use
    it to skip expensive argument construction. *)

val set_sink : sink -> unit
(** Switching to [Buffered] starts a fresh stream: previously buffered
    records are discarded and the drop counter resets. *)

val sink : unit -> sink

val log : level -> ?fields:(string * field) list -> string -> unit
val debug : ?fields:(string * field) list -> string -> unit
val info : ?fields:(string * field) list -> string -> unit
val warn : ?fields:(string * field) list -> string -> unit
val error : ?fields:(string * field) list -> string -> unit

val drain : unit -> record list
(** Takes every buffered record (all domains), sorted by timestamp.
    Only meaningful under the [Buffered] sink. *)

val buffered : unit -> int
(** Records currently awaiting {!drain}. *)

val dropped : unit -> int
(** Records discarded because the buffer cap was reached. *)

val to_json_line : record -> string
(** One-line JSON rendering:
    [{"type":"log","ts_ms":…,"level":…,"domain":…,"event":…,"fields":{…}}]. *)
