(** The metrics registry: named counters, gauges and fixed-bucket
    histograms, safe under concurrent update from many domains.

    The registry mutex is taken only to get-or-create a metric by name;
    updates are atomics (fetch-and-add counts, a compare-and-set loop
    for the histogram sum), so concurrent hammering stays exact.
    Handles returned by {!counter}/{!gauge}/{!histogram} stay valid
    across {!reset} (which zeroes values in place).

    The JSON codec for {!snapshot} lives in [Harness.Obs_io], so a
    snapshot can ride inside a [Harness.Report] without this library
    depending on the harness. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Tallies [v] into the first bucket with [v <= bound] (the last
      bucket is unbounded) and adds it to the running sum. *)

  val count : t -> int
  val sum : t -> float
  val bounds : t -> float array
  val bucket_counts : t -> int array
  (** One count per bucket; length is [Array.length bounds + 1] (the
      trailing overflow bucket). *)
end

type t

val create : unit -> t

val default : unit -> t
(** The process-wide registry the instrumented libraries record into. *)

val default_buckets : float array
(** Millisecond-oriented bounds used when [?buckets] is omitted. *)

val counter : t -> string -> Counter.t
(** Get-or-create; raises [Invalid_argument] when the name is already
    registered as another kind (same for {!gauge} and {!histogram}). *)

val gauge : t -> string -> Gauge.t
val histogram : ?buckets:float array -> t -> string -> Histogram.t

val reset : t -> unit
(** Zeroes every registered metric in place; cached handles stay
    valid. *)

(** An immutable point-in-time copy of one metric's state. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;  (** per bucket, overflow last *)
      count : int;
      sum : float;
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot
