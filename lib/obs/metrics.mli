(** The metrics registry: named counters, gauges and fixed-bucket
    histograms, safe under concurrent update from many domains.

    The registry mutex is taken only to get-or-create a metric by name;
    updates are atomics (fetch-and-add counts, a compare-and-set loop
    for the histogram sum), so concurrent hammering stays exact.
    Handles returned by {!counter}/{!gauge}/{!histogram} stay valid
    across {!reset} (which zeroes values in place).

    The JSON codec for {!snapshot} lives in [Harness.Obs_io], so a
    snapshot can ride inside a [Harness.Report] without this library
    depending on the harness. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Tallies [v] into the first bucket with [v <= bound] (the last
      bucket is unbounded) and adds it to the running sum. *)

  val count : t -> int
  val sum : t -> float
  val bounds : t -> float array
  val bucket_counts : t -> int array
  (** One count per bucket; length is [Array.length bounds + 1] (the
      trailing overflow bucket). *)

  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) of the
      observed distribution — see the top-level {!quantile}. *)
end

type t

val create : unit -> t

val default : unit -> t
(** The process-wide registry the instrumented libraries record into. *)

val default_buckets : float array
(** Millisecond-oriented bounds used when [?buckets] is omitted. *)

val latency_buckets : float array
(** A finer 1-2.5-5 millisecond ladder (10 us .. 10 s) for latency
    histograms whose p50/p95/p99 will be read off the snapshot. *)

val quantile : bounds:float array -> counts:int array -> float -> float
(** [quantile ~bounds ~counts q] estimates the [q]-quantile of a
    bucketed distribution by linear interpolation inside the bucket
    holding the [q*count]-th observation.  Bucket counts are exact
    under concurrent {!Histogram.observe} (they are atomics), so the
    estimate is deterministic in the observations; the resolution is
    the bucket ladder.  Ranks landing in the overflow bucket clamp to
    the largest finite bound; an empty distribution estimates 0. *)

val counter : t -> string -> Counter.t
(** Get-or-create; raises [Invalid_argument] when the name is already
    registered as another kind (same for {!gauge} and {!histogram}). *)

val gauge : t -> string -> Gauge.t
val histogram : ?buckets:float array -> t -> string -> Histogram.t

val once : (unit -> 'a) -> unit -> 'a
(** Domain-safe lazy resolution for instrumentation handles: [once f]
    is a thunk that calls [f] on first use and caches the result behind
    an atomic.  Unlike an OCaml [lazy] (which raises [Undefined] under
    a concurrent force), a race at first use just resolves [f] twice —
    harmless for the idempotent get-or-create registrations above. *)

val reset : t -> unit
(** Zeroes every registered metric in place; cached handles stay
    valid. *)

(** An immutable point-in-time copy of one metric's state. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;  (** per bucket, overflow last *)
      count : int;
      sum : float;
      p50 : float;  (** median estimate — see {!quantile} *)
      p95 : float;
      p99 : float;
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot
