(* The continuous-telemetry exporter: a ticker domain that periodically
   snapshots the metrics registry, folds in the health/SLO plane and any
   buffered log records, and writes the result as

   - JSON lines (one ["snapshot"] object per tick, log records
     interleaved as ["log"] lines) — the stream `lsq_cli monitor` tails;
   - Prometheus text exposition (rewritten whole each tick when the
     target is a file, appended when it is a channel).

   Timing: the ticker sleeps in short slices so [stop] takes effect
   within ~50 ms rather than a full interval.  The first tick fires
   immediately at [start] and a final tick fires inside [stop], so even
   a workload shorter than one interval yields at least two snapshots
   with a defined end state. *)

type target = File of string | Chan of out_channel

type sink = {
  oc : out_channel;
  owned : bool;  (* opened from a [File] target: close on stop *)
  path : string option;  (* [File] target: prometheus rewrites in place *)
}

type t = {
  interval_ms : float;
  registry : Metrics.t;
  jsonl : sink;
  prom : sink option;
  stop_flag : bool Atomic.t;
  ticks : int Atomic.t;
  seq : int ref;  (* ticker-domain only *)
  mutable ticker : unit Domain.t option;
}

let open_target = function
  | File path -> { oc = open_out path; owned = true; path = Some path }
  | Chan oc -> { oc; owned = false; path = None }

let close_sink s =
  flush s.oc;
  if s.owned then close_out s.oc

(* ---- JSON lines ---- *)

(* Mirrors [Harness.Obs_io.json_of_metric]: same keys, and the same
   rule that zero-count histograms omit their quantile estimates. *)
let buf_metric b (name, value) =
  Buffer.add_char b '{';
  Jtext.key b true "name";
  Jtext.string b name;
  (match value with
  | Metrics.Counter v ->
    Jtext.key b false "kind";
    Jtext.string b "counter";
    Jtext.key b false "value";
    Jtext.int b v
  | Metrics.Gauge v ->
    Jtext.key b false "kind";
    Jtext.string b "gauge";
    Jtext.key b false "value";
    Jtext.float b v
  | Metrics.Histogram { bounds; counts; count; sum; p50; p95; p99 } ->
    Jtext.key b false "kind";
    Jtext.string b "histogram";
    Jtext.key b false "bounds";
    Buffer.add_char b '[';
    Array.iteri
      (fun i bound ->
        if i > 0 then Buffer.add_char b ',';
        Jtext.float b bound)
      bounds;
    Buffer.add_char b ']';
    Jtext.key b false "counts";
    Buffer.add_char b '[';
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        Jtext.int b c)
      counts;
    Buffer.add_char b ']';
    Jtext.key b false "count";
    Jtext.int b count;
    Jtext.key b false "sum";
    Jtext.float b sum;
    if count > 0 then begin
      Jtext.key b false "p50";
      Jtext.float b p50;
      Jtext.key b false "p95";
      Jtext.float b p95;
      Jtext.key b false "p99";
      Jtext.float b p99
    end);
  Buffer.add_char b '}'

let buf_opt_float b first k = function
  | None -> ()
  | Some v ->
    Jtext.key b first k;
    Jtext.float b v

let buf_class_status b (s : Health.class_status) =
  Buffer.add_char b '{';
  Jtext.key b true "cls";
  Jtext.string b s.cls;
  Jtext.key b false "window";
  Jtext.int b s.window;
  buf_opt_float b false "p95_ms" s.p95_ms;
  buf_opt_float b false "slo_ms" s.slo_ms;
  Jtext.key b false "slo_ok";
  Jtext.bool b s.slo_ok;
  Jtext.key b false "total";
  Jtext.int b s.total;
  Jtext.key b false "failures";
  Jtext.int b s.failures;
  buf_opt_float b false "budget" s.budget;
  Jtext.key b false "budget_used";
  Jtext.float b s.budget_used;
  Jtext.key b false "budget_ok";
  Jtext.bool b s.budget_ok;
  Buffer.add_char b '}'

let buf_stage_drift b (d : Health.stage_drift) =
  Buffer.add_char b '{';
  Jtext.key b true "stage";
  Jtext.string b d.stage;
  Jtext.key b false "predicted_ms";
  Jtext.float b d.predicted_ms;
  Jtext.key b false "measured_ms";
  Jtext.float b d.measured_ms;
  Jtext.key b false "ratio";
  Jtext.float b d.ratio;
  Jtext.key b false "samples";
  Jtext.int b d.samples;
  Jtext.key b false "drifted";
  Jtext.bool b d.drifted;
  Buffer.add_char b '}'

let buf_list b f xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f b x)
    xs;
  Buffer.add_char b ']'

let snapshot_line ~seq ~ts_ms snap health drift =
  let b = Buffer.create 4096 in
  Buffer.add_char b '{';
  Jtext.key b true "type";
  Jtext.string b "snapshot";
  Jtext.key b false "seq";
  Jtext.int b seq;
  Jtext.key b false "ts_ms";
  Jtext.float b ts_ms;
  Jtext.key b false "metrics";
  buf_list b buf_metric snap;
  Jtext.key b false "health";
  buf_list b buf_class_status health;
  Jtext.key b false "drift";
  buf_list b buf_stage_drift drift;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- Prometheus text exposition ---- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Dotted metric names map onto Prometheus families: a name with three
   or more segments keeps its first two as the family and carries the
   rest as an [instance] label, so per-instance series like
   [fleet.util.v100#0] group under one [mdls_fleet_util] family. *)
let family name =
  match String.split_on_char '.' name with
  | a :: b :: (_ :: _ as rest) -> (a ^ "_" ^ b, Some (String.concat "." rest))
  | _ -> (sanitize name, None)

let prom_label = function
  | None -> ""
  | Some inst ->
    let b = Buffer.create 24 in
    Buffer.add_string b "{instance=\"";
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      inst;
    Buffer.add_string b "\"}";
    Buffer.contents b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let prometheus_of_snapshot ?(prefix = "mdls_") (snap : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let header name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  (* Snapshots are name-sorted, so all instances of a family are
     adjacent and one TYPE header per family suffices. *)
  List.iter
    (fun (name, value) ->
      let fam, inst = family name in
      let fam = prefix ^ sanitize fam in
      let label = prom_label inst in
      match value with
      | Metrics.Counter v ->
        let fam = fam ^ "_total" in
        header fam "counter";
        Buffer.add_string b (Printf.sprintf "%s%s %d\n" fam label v)
      | Metrics.Gauge v ->
        header fam "gauge";
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" fam label (prom_float v))
      | Metrics.Histogram { bounds; counts; count; sum; _ } ->
        header fam "histogram";
        let cumulative = ref 0 in
        Array.iteri
          (fun i bound ->
            cumulative := !cumulative + counts.(i);
            let le = prom_float bound in
            let labels =
              match inst with
              | None -> Printf.sprintf "{le=\"%s\"}" le
              | Some _ ->
                let base = prom_label inst in
                String.sub base 0 (String.length base - 1)
                ^ Printf.sprintf ",le=\"%s\"}" le
            in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" fam labels !cumulative))
          bounds;
        let inf_labels =
          match inst with
          | None -> "{le=\"+Inf\"}"
          | Some _ ->
            let base = prom_label inst in
            String.sub base 0 (String.length base - 1) ^ ",le=\"+Inf\"}"
        in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" fam inf_labels count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" fam label (prom_float sum));
        Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" fam label count))
    snap;
  Buffer.contents b

(* ---- the ticker ---- *)

let write_prom t exposition =
  match t.prom with
  | None -> ()
  | Some s -> (
    match s.path with
    | Some path ->
      (* Rewrite in place so the file is always one complete scrape. *)
      let oc = open_out path in
      output_string oc exposition;
      close_out oc
    | None ->
      output_string s.oc exposition;
      flush s.oc)

let tick t =
  let ts_ms = Unix.gettimeofday () *. 1000.0 in
  let snap = Metrics.snapshot t.registry in
  let health = Health.status () in
  let drift = Health.drift () in
  (match Log.sink () with
  | Log.Buffered ->
    List.iter
      (fun r ->
        output_string t.jsonl.oc (Log.to_json_line r);
        output_char t.jsonl.oc '\n')
      (Log.drain ())
  | _ -> ());
  output_string t.jsonl.oc (snapshot_line ~seq:!(t.seq) ~ts_ms snap health drift);
  output_char t.jsonl.oc '\n';
  flush t.jsonl.oc;
  incr t.seq;
  write_prom t (prometheus_of_snapshot snap);
  Atomic.incr t.ticks

let slice_ms = 50.0

let ticker_loop t =
  tick t;
  (* The immediate tick above plus the final tick in [stop] guarantee
     at least two snapshots per run. *)
  let rec wait remaining =
    if Atomic.get t.stop_flag then false
    else if remaining <= 0.0 then true
    else begin
      let s = Float.min slice_ms remaining in
      Unix.sleepf (s /. 1000.0);
      wait (remaining -. s)
    end
  in
  let rec loop () =
    if wait t.interval_ms then begin
      tick t;
      loop ()
    end
  in
  loop ()

let start ?(interval_ms = 1000.0) ?registry ?prom jsonl =
  if not (Float.is_finite interval_ms) || interval_ms <= 0.0 then
    invalid_arg "Telemetry.start: interval_ms must be positive";
  let registry =
    match registry with Some r -> r | None -> Metrics.default ()
  in
  let t =
    {
      interval_ms;
      registry;
      jsonl = open_target jsonl;
      prom = Option.map open_target prom;
      stop_flag = Atomic.make false;
      ticks = Atomic.make 0;
      seq = ref 0;
      ticker = None;
    }
  in
  t.ticker <- Some (Domain.spawn (fun () -> ticker_loop t));
  t

let ticks t = Atomic.get t.ticks

let stop t =
  match t.ticker with
  | None -> ()
  | Some d ->
    t.ticker <- None;
    Atomic.set t.stop_flag true;
    Domain.join d;
    (* Final tick from the stopping domain: the ticker has exited, so
       the sinks are single-writer again. *)
    tick t;
    close_sink t.jsonl;
    Option.iter close_sink t.prom
