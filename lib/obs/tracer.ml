(* The event tracer: per-domain event sinks with a Chrome trace-event
   JSON exporter, so a run opens directly in Perfetto or
   chrome://tracing.

   Recording is lock-free on the hot path: each domain appends to its own
   sink (a plain list it alone writes), discovered once per domain per
   trace through a DLS slot; the registry mutex is taken only when a
   domain records its first event of a trace.  Timestamps are
   microseconds of the monotonic host clock relative to [start]; the
   simulated device clock is published as a counter track by the
   simulator (see {!Gpusim.Sim}), so both clocks appear side by side in
   the viewer.

   This module sits below every other library (its only dependency is
   [Unix] for the clock), which is what lets the domain pool, the GPU
   simulator and the scheduler all instrument themselves without a
   dependency cycle. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type event =
  | Complete of {
      name : string;
      cat : string;
      ts : float; (* microseconds since [start] *)
      dur : float;
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts : float;
      args : (string * arg) list;
    }
  | Counter of { name : string; ts : float; value : float }

(* One sink per (domain, trace generation); a domain whose sink belongs
   to an earlier [start] lazily replaces it, so stale events never leak
   into a new trace. *)
type sink = { gen : int; tid : int; mutable events : event list }

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let start_us = Atomic.make 0.0
let registry_lock = Mutex.create ()
let registry : sink list ref = ref []

let slot : sink option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enabled () = Atomic.get enabled_flag

let now_us () = (Unix.gettimeofday () *. 1e6) -. Atomic.get start_us

let start () =
  Mutex.lock registry_lock;
  registry := [];
  Atomic.incr generation;
  Atomic.set start_us (Unix.gettimeofday () *. 1e6);
  Atomic.set enabled_flag true;
  Mutex.unlock registry_lock

let stop () = Atomic.set enabled_flag false

let sink () =
  let r = Domain.DLS.get slot in
  let gen = Atomic.get generation in
  match !r with
  | Some s when s.gen = gen -> s
  | _ ->
    let s = { gen; tid = (Domain.self () :> int); events = [] } in
    Mutex.lock registry_lock;
    registry := s :: !registry;
    Mutex.unlock registry_lock;
    r := Some s;
    s

let add e =
  let s = sink () in
  s.events <- e :: s.events

let span ?(cat = "app") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_us () in
    let record () =
      let dur = Float.max 0.0 (now_us () -. t0) in
      add (Complete { name; cat; ts = t0; dur; args })
    in
    match f () with
    | v ->
      record ();
      v
    | exception e ->
      record ();
      raise e
  end

let instant ?(cat = "app") ?(args = []) name =
  if enabled () then add (Instant { name; cat; ts = now_us (); args })

let counter name value =
  if enabled () then add (Counter { name; ts = now_us (); value })

let event_count () =
  Mutex.lock registry_lock;
  let sinks = !registry in
  Mutex.unlock registry_lock;
  List.fold_left (fun acc s -> acc + List.length s.events) 0 sinks

(* ---- Chrome trace-event JSON ----

   The exporter writes its own (tiny) JSON so this library keeps zero
   in-repo dependencies; the output is plain trace-event objects that
   [Harness.Json] parses back in the tests. *)

let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_float b f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string b s;
    (* "%.17g" may print an integral float without '.' or 'e'; that is
       still valid JSON, nothing to fix. *)
    ()
  end
  else Buffer.add_string b "0"

let buf_arg b = function
  | Str s -> buf_string b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> buf_float b f
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let buf_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_string b k;
      Buffer.add_char b ':';
      buf_arg b v)
    args;
  Buffer.add_char b '}'

let buf_common b ~name ~cat ~ph ~ts ~tid =
  Buffer.add_string b "\"name\":";
  buf_string b name;
  Buffer.add_string b ",\"cat\":";
  buf_string b cat;
  Buffer.add_string b ",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"ts\":";
  buf_float b ts;
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int tid)

let buf_event b tid = function
  | Complete { name; cat; ts; dur; args } ->
    Buffer.add_char b '{';
    buf_common b ~name ~cat ~ph:"X" ~ts ~tid;
    Buffer.add_string b ",\"dur\":";
    buf_float b dur;
    Buffer.add_char b ',';
    buf_args b args;
    Buffer.add_char b '}'
  | Instant { name; cat; ts; args } ->
    Buffer.add_char b '{';
    buf_common b ~name ~cat ~ph:"i" ~ts ~tid;
    Buffer.add_string b ",\"s\":\"t\",";
    buf_args b args;
    Buffer.add_char b '}'
  | Counter { name; ts; value } ->
    Buffer.add_char b '{';
    buf_common b ~name ~cat:"counter" ~ph:"C" ~ts ~tid;
    Buffer.add_char b ',';
    buf_args b [ ("value", Float value) ];
    Buffer.add_char b '}'

let event_ts = function
  | Complete { ts; _ } | Instant { ts; _ } | Counter { ts; _ } -> ts

let export () =
  Mutex.lock registry_lock;
  let sinks = !registry in
  Mutex.unlock registry_lock;
  let all =
    List.concat_map
      (fun s -> List.rev_map (fun e -> (s.tid, e)) s.events)
      sinks
  in
  let all =
    List.stable_sort
      (fun (_, a) (_, b) -> Float.compare (event_ts a) (event_ts b))
      all
  in
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (tid, e) ->
      if i > 0 then Buffer.add_char b ',';
      buf_event b tid e)
    all;
  Buffer.add_string b "]}";
  Buffer.contents b

let export_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (export ());
      output_char oc '\n')
