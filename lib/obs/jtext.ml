(* Minimal JSON text rendering shared by the hand-rolled exporters of
   this library (the logger's JSON lines and the telemetry stream).
   [lib/obs] deliberately has zero in-repo dependencies, so it cannot
   use [Harness.Json]; the output is plain JSON that the harness codecs
   parse back. *)

let string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Non-finite floats are not representable in JSON; they render as 0,
   matching the tracer's exporter. *)
let float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else Buffer.add_string b "0"

let int b i = Buffer.add_string b (string_of_int i)
let bool b v = Buffer.add_string b (if v then "true" else "false")

let key b first k =
  if not first then Buffer.add_char b ',';
  string b k;
  Buffer.add_char b ':'
