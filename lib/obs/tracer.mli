(** The event tracer: lock-free per-domain span/instant/counter sinks
    with a Chrome trace-event JSON exporter (opens in Perfetto or
    chrome://tracing).

    Recording costs one atomic load when tracing is off; when on, each
    domain appends to a sink it alone writes (the registry mutex is
    taken only for a domain's first event of a trace).  Timestamps are
    microseconds of the host clock relative to {!start}; the simulated
    device clock is published by the simulator as a counter track.

    [export] is meant to be called after the traced work has completed
    (there is no synchronization against domains still recording). *)

(** Typed span/instant arguments, rendered into the event's ["args"]
    object. *)
type arg = Str of string | Int of int | Float of float | Bool of bool

val start : unit -> unit
(** Starts a fresh trace: drops all previously recorded events, zeroes
    the clock and enables recording. *)

val stop : unit -> unit
(** Disables recording; the events stay available to {!export}. *)

val enabled : unit -> bool
(** Cheap (one atomic load): use it to skip argument construction on hot
    paths. *)

val span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] and records a complete ("ph":"X") event
    covering its duration — also when [f] raises.  Transparent when
    tracing is off. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A point event ("ph":"i"). *)

val counter : string -> float -> unit
(** A counter-track sample ("ph":"C"), e.g. the simulated device clock. *)

val event_count : unit -> int
(** Events recorded since the last {!start}, across all domains. *)

val export : unit -> string
(** The whole trace as one Chrome trace-event JSON document:
    [{"displayTimeUnit":"ms","traceEvents":[...]}], events sorted by
    timestamp, every event carrying [name]/[cat]/[ph]/[ts]/[pid]/[tid]. *)

val export_file : string -> unit
(** {!export} into a file (with a trailing newline). *)
