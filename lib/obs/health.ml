(* Health/SLO plane over the fleet's outcome stream.

   Two signals, both cheap enough to update on every job completion:

   - Per-class rolling latency windows (a fixed ring of the most recent
     samples) checked against optional p95 SLO targets, plus failure
     counting against a per-class error budget.  Classes here are the
     fleet's outcome classes ("ok", "degraded", "failed", ...) or any
     caller-chosen partition.

   - A cost-model drift detector: callers feed (predicted, measured)
     stage times — predictions from the roofline cost model, measures
     from the simulator's breakdown — and the detector keeps per-stage
     accumulators.  When the measured/predicted ratio leaves the
     tolerance band it raises a structured [model_drift] warning through
     {!Log}, once per stage per excursion.

   Updates are guarded by one mutex: the callers are fleet workers at
   job-completion frequency, far off any hot path. *)

let window_capacity = 512

type window = {
  mutable samples : float array;
  mutable filled : int;  (* valid entries *)
  mutable next : int;  (* ring cursor *)
  mutable total : int;  (* outcomes ever observed *)
  mutable failures : int;  (* failed outcomes ever observed *)
}

type cls_state = { name : string; w : window }

type drift_state = {
  stage : string;
  mutable predicted_ms : float;
  mutable measured_ms : float;
  mutable samples : int;
  mutable warned : bool;  (* current excursion already reported *)
}

let lock = Mutex.create ()
let classes : (string, cls_state) Hashtbl.t = Hashtbl.create 8
let slos : (string, float) Hashtbl.t = Hashtbl.create 8
let budgets : (string, float) Hashtbl.t = Hashtbl.create 8
let stages : (string, drift_state) Hashtbl.t = Hashtbl.create 8
let tolerance = Atomic.make 0.25

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked (fun () ->
      Hashtbl.reset classes;
      Hashtbl.reset slos;
      Hashtbl.reset budgets;
      Hashtbl.reset stages);
  Atomic.set tolerance 0.25

let set_slo ~cls ~p95_ms =
  if not (Float.is_finite p95_ms) || p95_ms <= 0.0 then
    invalid_arg "Health.set_slo: p95_ms must be positive";
  locked (fun () -> Hashtbl.replace slos cls p95_ms)

(* [fraction] is the tolerated failed share of all outcomes, e.g. 0.05
   allows one failure in twenty. *)
let set_error_budget ~cls fraction =
  if not (Float.is_finite fraction) || fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Health.set_error_budget: fraction must be in [0,1]";
  locked (fun () -> Hashtbl.replace budgets cls fraction)

let set_drift_tolerance tol =
  if not (Float.is_finite tol) || tol <= 0.0 then
    invalid_arg "Health.set_drift_tolerance: tolerance must be positive";
  Atomic.set tolerance tol

let drift_tolerance () = Atomic.get tolerance

let cls_state name =
  match Hashtbl.find_opt classes name with
  | Some s -> s
  | None ->
    let s =
      {
        name;
        w =
          { samples = Array.make 16 0.0; filled = 0; next = 0; total = 0;
            failures = 0 };
      }
    in
    Hashtbl.replace classes name s;
    s

let observe ~cls ~ok ~latency_ms =
  locked (fun () ->
      let s = cls_state cls in
      let w = s.w in
      if
        w.filled = Array.length w.samples
        && Array.length w.samples < window_capacity
      then begin
        (* Grow towards the cap; the ring is full so it reads in order
           from [next]. *)
        let n = min window_capacity (2 * Array.length w.samples) in
        let grown = Array.make n 0.0 in
        for i = 0 to w.filled - 1 do
          grown.(i) <- w.samples.((w.next + i) mod w.filled)
        done;
        w.samples <- grown;
        w.next <- w.filled
      end;
      w.samples.(w.next) <- latency_ms;
      w.next <- (w.next + 1) mod Array.length w.samples;
      if w.filled < Array.length w.samples then w.filled <- w.filled + 1;
      w.total <- w.total + 1;
      if not ok then w.failures <- w.failures + 1)

let window_p95 w =
  if w.filled = 0 then None
  else begin
    let xs = Array.sub w.samples 0 w.filled in
    Array.sort Float.compare xs;
    (* Nearest-rank p95 over the window. *)
    let rank = int_of_float (ceil (0.95 *. float_of_int w.filled)) - 1 in
    Some xs.(max 0 (min (w.filled - 1) rank))
  end

type class_status = {
  cls : string;
  window : int;  (* samples in the rolling window *)
  p95_ms : float option;
  slo_ms : float option;
  slo_ok : bool;
  total : int;
  failures : int;
  budget : float option;
  budget_used : float;  (* fraction of the budget consumed; 0 when unset *)
  budget_ok : bool;
}

let class_status_locked s =
  let p95_ms = window_p95 s.w in
  let slo_ms = Hashtbl.find_opt slos s.name in
  let slo_ok =
    match (p95_ms, slo_ms) with
    | Some p, Some target -> p <= target
    | _ -> true
  in
  let budget = Hashtbl.find_opt budgets s.name in
  let failure_rate =
    if s.w.total = 0 then 0.0
    else float_of_int s.w.failures /. float_of_int s.w.total
  in
  let budget_used =
    match budget with
    | Some b when b > 0.0 -> failure_rate /. b
    | Some _ -> if s.w.failures > 0 then Float.infinity else 0.0
    | None -> 0.0
  in
  let budget_ok = budget = None || budget_used <= 1.0 in
  {
    cls = s.name;
    window = s.w.filled;
    p95_ms;
    slo_ms;
    slo_ok;
    total = s.w.total;
    failures = s.w.failures;
    budget;
    budget_used;
    budget_ok;
  }

let status () =
  locked (fun () ->
      Hashtbl.fold (fun _ s acc -> class_status_locked s :: acc) classes []
      |> List.sort (fun a b -> String.compare a.cls b.cls))

let status_of ~cls =
  locked (fun () ->
      Option.map class_status_locked (Hashtbl.find_opt classes cls))

(* ---- cost-model drift ---- *)

type stage_drift = {
  stage : string;
  predicted_ms : float;
  measured_ms : float;
  ratio : float;  (* measured / predicted *)
  samples : int;
  drifted : bool;
}

let stage_drift_locked tol (d : drift_state) =
  let ratio =
    if d.predicted_ms > 0.0 then d.measured_ms /. d.predicted_ms else 1.0
  in
  {
    stage = d.stage;
    predicted_ms = d.predicted_ms;
    measured_ms = d.measured_ms;
    ratio;
    samples = d.samples;
    drifted = d.samples > 0 && Float.abs (ratio -. 1.0) > tol;
  }

let observe_model ~stage ~predicted_ms ~measured_ms =
  if
    Float.is_finite predicted_ms && Float.is_finite measured_ms
    && predicted_ms >= 0.0 && measured_ms >= 0.0
  then begin
    let report =
      locked (fun () ->
          let d =
            match Hashtbl.find_opt stages stage with
            | Some d -> d
            | None ->
              let d =
                { stage; predicted_ms = 0.0; measured_ms = 0.0; samples = 0;
                  warned = false }
              in
              Hashtbl.replace stages stage d;
              d
          in
          d.predicted_ms <- d.predicted_ms +. predicted_ms;
          d.measured_ms <- d.measured_ms +. measured_ms;
          d.samples <- d.samples + 1;
          let s = stage_drift_locked (Atomic.get tolerance) d in
          if s.drifted && not d.warned then begin
            d.warned <- true;
            Some s
          end
          else begin
            if not s.drifted then d.warned <- false;
            None
          end)
    in
    (* The warning is raised outside the lock — the Channel sink writes
       synchronously. *)
    match report with
    | Some s ->
      Log.warn "model_drift"
        ~fields:
          [
            ("stage", Log.Str s.stage);
            ("predicted_ms", Log.Float s.predicted_ms);
            ("measured_ms", Log.Float s.measured_ms);
            ("ratio", Log.Float s.ratio);
            ("tolerance", Log.Float (Atomic.get tolerance));
            ("samples", Log.Int s.samples);
          ]
    | None -> ()
  end

let drift () =
  let tol = Atomic.get tolerance in
  locked (fun () ->
      Hashtbl.fold (fun _ d acc -> stage_drift_locked tol d :: acc) stages []
      |> List.sort (fun a b -> String.compare a.stage b.stage))
