(** Health/SLO plane: rolling latency windows with per-class p95 SLO
    targets and error budgets, plus a cost-model drift detector that
    compares roofline-predicted stage times against simulator-measured
    ones and raises a structured [model_drift] warning through {!Log}
    when the ratio leaves the tolerance band.

    All state is process-global (like the default {!Metrics} registry)
    and mutex-guarded; callers update it at job-completion frequency. *)

(** {1 Outcome windows} *)

val observe : cls:string -> ok:bool -> latency_ms:float -> unit
(** Records one outcome for [cls].  The latency joins a rolling window
    (most recent {!window_capacity} samples); [ok=false] consumes error
    budget. *)

val set_slo : cls:string -> p95_ms:float -> unit
(** Sets the p95 latency target for [cls].  Raises [Invalid_argument]
    unless positive and finite. *)

val set_error_budget : cls:string -> float -> unit
(** Sets the tolerated failed fraction of outcomes for [cls], in
    [\[0,1\]] — e.g. [0.05] allows one failure in twenty. *)

val window_capacity : int
(** Maximum samples retained per class window. *)

type class_status = {
  cls : string;
  window : int;  (** samples currently in the rolling window *)
  p95_ms : float option;  (** [None] when the window is empty *)
  slo_ms : float option;  (** configured target, if any *)
  slo_ok : bool;  (** true when no target is set or p95 is within it *)
  total : int;  (** outcomes observed since reset *)
  failures : int;
  budget : float option;  (** configured failed-fraction budget, if any *)
  budget_used : float;  (** fraction of the budget consumed; 0 when unset *)
  budget_ok : bool;
}

val status : unit -> class_status list
(** Per-class status, sorted by class name. *)

val status_of : cls:string -> class_status option
(** The status of one class, or [None] when it has never been observed.
    The fleet's circuit breakers read per-instance windows through this
    without paying for a full sorted status sweep. *)

(** {1 Cost-model drift} *)

val observe_model : stage:string -> predicted_ms:float -> measured_ms:float -> unit
(** Accumulates one (predicted, measured) pair for [stage].  When the
    cumulative measured/predicted ratio leaves the tolerance band this
    logs a [model_drift] warning — once per stage per excursion.
    Non-finite or negative inputs are ignored. *)

val set_drift_tolerance : float -> unit
(** Sets the allowed relative deviation of measured from predicted
    (default [0.25], i.e. ±25%).  Raises [Invalid_argument] unless
    positive and finite. *)

val drift_tolerance : unit -> float

type stage_drift = {
  stage : string;
  predicted_ms : float;  (** cumulative predicted time *)
  measured_ms : float;  (** cumulative measured time *)
  ratio : float;  (** measured / predicted; 1.0 when predicted is 0 *)
  samples : int;
  drifted : bool;  (** true when the ratio is outside the band *)
}

val drift : unit -> stage_drift list
(** Per-stage drift state, sorted by stage name. *)

val reset : unit -> unit
(** Clears windows, SLO/budget targets, and drift accumulators;
    restores the default tolerance.  Intended for tests and bench
    isolation. *)
