(** Per-stage roofline diagnostics: the paper's CGMA analysis as data.

    A stage is classified compute- vs memory-bound from the cost model's
    own time terms (the occupancy-adjusted compute term against the
    larger of the DRAM and cache terms) — the same comparison that
    decides what a launch costs — while the raw arithmetic intensity and
    the device ridge point are reported alongside for classical roofline
    plots.  [Gpusim.Sim.roofline] produces these from a simulator's
    profile; the JSON codec lives in [Harness.Obs_io]. *)

type bound = Compute | Memory

type stage = {
  stage : string;
  ms : float;  (** modeled kernel milliseconds *)
  launches : int;
  flops : float;  (** double precision flops (Table 1 multipliers) *)
  bytes : float;  (** cold + per-thread traffic *)
  intensity : float;  (** flops per byte *)
  gflops : float;  (** achieved: flops / ms *)
  pct_peak : float;  (** achieved as %% of the device's DP peak *)
  compute_ms : float;  (** cost model's compute term *)
  memory_ms : float;  (** larger of its DRAM and cache terms *)
  bound : bound;
}

val bound_name : bound -> string
(** ["compute"] or ["memory"]. *)

val ridge : peak_gflops:float -> dram_gb_s:float -> float
(** The device ridge point in flops per byte. *)

val classify :
  stage:string ->
  ms:float ->
  launches:int ->
  flops:float ->
  bytes:float ->
  compute_ms:float ->
  memory_ms:float ->
  peak_gflops:float ->
  stage

val microkernel :
  stage:string ->
  flops:float ->
  bytes:float ->
  peak_gflops:float ->
  dram_gb_s:float ->
  stage
(** Classify a register-tiled microkernel from its per-tile operation
    and traffic counts alone: compute term at the device's DP peak,
    memory term at DRAM bandwidth, modeled time the larger of the two.
    The flat kernels report their tile geometry this way. *)

val total : ?stage:string -> stage list -> stage
(** The aggregate row (default name ["all kernels"]): sums classified
    like one big stage. *)
