(* The structured leveled logger: one JSON-lines event stream for the
   fleet service and the simulator's fault paths.

   Recording follows the tracer's discipline: after the level check (one
   atomic load) a record is either written straight to a channel (the
   operator-facing mode, one mutex around the write) or pushed onto a
   per-domain buffer.  Buffers are per-domain atomics — a push only ever
   contends with the telemetry drainer, never with another worker — so
   logging from every fleet worker at once stays lock-free on the hot
   path.  [drain] hands the buffered records to whoever exports them
   (the telemetry ticker, or a flush at exit).

   A global cap bounds buffered memory: past [capacity] records the
   logger drops and counts instead of growing, so a serve loop whose
   exporter stalls cannot leak. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Debug
  | "info" -> Info
  | "warn" | "warning" -> Warn
  | "error" -> Error
  | s -> invalid_arg (Printf.sprintf "unknown log level '%s'" s)

type field = Str of string | Int of int | Float of float | Bool of bool

type record = {
  ts_ms : float;  (* epoch milliseconds *)
  level : level;
  domain : int;
  event : string;
  fields : (string * field) list;
}

type sink = Off | Buffered | Channel of out_channel

let current_level = Atomic.make Info
let current_sink = Atomic.make Off

let set_level l = Atomic.set current_level l
let level () = Atomic.get current_level
let enabled l = severity l >= severity (Atomic.get current_level)

(* ---- buffered mode ----

   One cell per (domain, sink generation), discovered through a DLS
   slot; a new [set_sink Buffered] bumps the generation so stale
   buffers never leak into a fresh stream. *)

type cell = { gen : int; buf : record list Atomic.t }

let generation = Atomic.make 0
let registry_lock = Mutex.create ()
let registry : cell list ref = ref []
let buffered_records = Atomic.make 0
let dropped_records = Atomic.make 0
let capacity = 65536

let slot : cell option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cell () =
  let r = Domain.DLS.get slot in
  let gen = Atomic.get generation in
  match !r with
  | Some c when c.gen = gen -> c
  | _ ->
    let c = { gen; buf = Atomic.make [] } in
    Mutex.lock registry_lock;
    registry := c :: !registry;
    Mutex.unlock registry_lock;
    r := Some c;
    c

let push r =
  if Atomic.get buffered_records >= capacity then Atomic.incr dropped_records
  else begin
    Atomic.incr buffered_records;
    let c = cell () in
    let rec go () =
      let old = Atomic.get c.buf in
      if not (Atomic.compare_and_set c.buf old (r :: old)) then go ()
    in
    go ()
  end

let buffered () = Atomic.get buffered_records
let dropped () = Atomic.get dropped_records

let drain () =
  Mutex.lock registry_lock;
  let cells = !registry in
  Mutex.unlock registry_lock;
  let all =
    List.concat_map (fun c -> List.rev (Atomic.exchange c.buf [])) cells
  in
  ignore (Atomic.fetch_and_add buffered_records (-List.length all));
  List.stable_sort (fun a b -> Float.compare a.ts_ms b.ts_ms) all

(* ---- rendering ---- *)

let buf_field b = function
  | Str s -> Jtext.string b s
  | Int i -> Jtext.int b i
  | Float f -> Jtext.float b f
  | Bool v -> Jtext.bool b v

(* One JSON line, matching what [Harness.Obs_io.telemetry_of_json]
   parses back: the ["type"] tag keeps log lines distinguishable inside
   a telemetry stream. *)
let to_json_line r =
  let b = Buffer.create 160 in
  Buffer.add_char b '{';
  Jtext.key b true "type";
  Jtext.string b "log";
  Jtext.key b false "ts_ms";
  Jtext.float b r.ts_ms;
  Jtext.key b false "level";
  Jtext.string b (level_name r.level);
  Jtext.key b false "domain";
  Jtext.int b r.domain;
  Jtext.key b false "event";
  Jtext.string b r.event;
  Jtext.key b false "fields";
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      Jtext.key b (i = 0) k;
      buf_field b v)
    r.fields;
  Buffer.add_string b "}}";
  Buffer.contents b

(* ---- recording ---- *)

let channel_lock = Mutex.create ()

let set_sink s =
  (match s with
  | Buffered ->
    (* Fresh stream: retire every existing buffer. *)
    Mutex.lock registry_lock;
    registry := [];
    Atomic.incr generation;
    Atomic.set buffered_records 0;
    Atomic.set dropped_records 0;
    Mutex.unlock registry_lock
  | Off | Channel _ -> ());
  Atomic.set current_sink s

let sink () = Atomic.get current_sink

let log lvl ?(fields = []) event =
  match Atomic.get current_sink with
  | Off -> ()
  | (Buffered | Channel _) as s ->
    if enabled lvl then begin
      let r =
        {
          ts_ms = Unix.gettimeofday () *. 1000.0;
          level = lvl;
          domain = (Domain.self () :> int);
          event;
          fields;
        }
      in
      match s with
      | Buffered -> push r
      | Channel oc ->
        let line = to_json_line r in
        Mutex.lock channel_lock;
        output_string oc line;
        output_char oc '\n';
        flush oc;
        Mutex.unlock channel_lock
      | Off -> ()
    end

let debug ?fields event = log Debug ?fields event
let info ?fields event = log Info ?fields event
let warn ?fields event = log Warn ?fields event
let error ?fields event = log Error ?fields event
