(* Per-stage roofline diagnostics: the CGMA analysis of the paper
   (arXiv:2110.08375 §4, continuing arXiv:1210.0800) as data.

   A stage is classified from the cost model's own time terms — the
   occupancy-adjusted compute term against the larger of the DRAM and
   cache terms — rather than from raw arithmetic intensity alone, which
   is exactly how the simulator decides what a launch costs.  The raw
   intensity (flops per byte of cold + per-thread traffic) and the
   device ridge point are still reported, so the stage can be placed on
   a classical roofline plot. *)

type bound = Compute | Memory

type stage = {
  stage : string;
  ms : float; (* modeled kernel milliseconds of the stage *)
  launches : int;
  flops : float; (* double precision flops (Table 1 multipliers) *)
  bytes : float; (* cold + per-thread traffic *)
  intensity : float; (* flops per byte *)
  gflops : float; (* achieved: flops / ms *)
  pct_peak : float; (* achieved as % of the device's DP peak *)
  compute_ms : float; (* cost model's compute term *)
  memory_ms : float; (* larger of its DRAM and cache terms *)
  bound : bound;
}

let bound_name = function Compute -> "compute" | Memory -> "memory"

let ridge ~peak_gflops ~dram_gb_s = peak_gflops /. dram_gb_s

let classify ~stage ~ms ~launches ~flops ~bytes ~compute_ms ~memory_ms
    ~peak_gflops =
  let intensity = flops /. Float.max 1.0 bytes in
  let gflops = if ms > 0.0 then flops /. (ms *. 1e6) else 0.0 in
  let pct_peak =
    if peak_gflops > 0.0 then 100.0 *. gflops /. peak_gflops else 0.0
  in
  let bound = if compute_ms >= memory_ms then Compute else Memory in
  {
    stage;
    ms;
    launches;
    flops;
    bytes;
    intensity;
    gflops;
    pct_peak;
    compute_ms;
    memory_ms;
    bound;
  }

(* Classify a register-tiled microkernel from its per-tile operation and
   traffic counts alone, with no measured launch behind it: the compute
   term is the tile's flops at the device's DP peak, the memory term its
   bytes at DRAM bandwidth, and the modeled time the larger of the two.
   The flat kernels report their tile geometry this way (the counts are
   computed in the linear algebra layer, which knows the precision;
   this library deliberately does not). *)
let microkernel ~stage ~flops ~bytes ~peak_gflops ~dram_gb_s =
  let compute_ms = flops /. (peak_gflops *. 1e6) in
  let memory_ms = bytes /. (dram_gb_s *. 1e6) in
  classify ~stage ~ms:(Float.max compute_ms memory_ms) ~launches:1 ~flops
    ~bytes ~compute_ms ~memory_ms ~peak_gflops

(* The aggregate row over a list of stages (sums classified like one
   big stage). *)
let total ?(stage = "all kernels") stages =
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 stages in
  let peak_gflops =
    (* Recover the peak any member was classified against: achieved
       gflops / (pct_peak / 100).  Falls back to 0 (pct_peak reported
       as 0) when no stage has a meaningful rate. *)
    match
      List.find_opt (fun s -> s.pct_peak > 0.0 && s.gflops > 0.0) stages
    with
    | Some s -> 100.0 *. s.gflops /. s.pct_peak
    | None -> 0.0
  in
  classify ~stage ~ms:(sum (fun s -> s.ms))
    ~launches:(List.fold_left (fun acc s -> acc + s.launches) 0 stages)
    ~flops:(sum (fun s -> s.flops))
    ~bytes:(sum (fun s -> s.bytes))
    ~compute_ms:(sum (fun s -> s.compute_ms))
    ~memory_ms:(sum (fun s -> s.memory_ms))
    ~peak_gflops
