(** Continuous telemetry: a ticker domain that periodically snapshots a
    {!Metrics} registry, folds in the {!Health} plane and any buffered
    {!Log} records, and exports JSON lines plus Prometheus text
    exposition.

    The first tick fires immediately at {!start} and a final tick fires
    inside {!stop}, so every run produces at least two snapshots. *)

type target =
  | File of string  (** opened (truncating) at start, closed at stop *)
  | Chan of out_channel  (** written through, flushed but never closed *)

type t

val start :
  ?interval_ms:float -> ?registry:Metrics.t -> ?prom:target -> target -> t
(** [start jsonl] spawns the ticker.  Each tick appends one
    [{"type":"snapshot",...}] JSON line (preceded by any drained
    [{"type":"log",...}] lines when the {!Log} sink is [Buffered]) to
    [jsonl], and — when [?prom] is given — renders the full Prometheus
    exposition there (a [File] target is rewritten in place each tick so
    it always holds one complete scrape; a [Chan] target is appended
    to).  [interval_ms] defaults to 1000; [registry] defaults to
    {!Metrics.default}.  Raises [Invalid_argument] unless the interval
    is positive and finite. *)

val stop : t -> unit
(** Signals the ticker, joins it (within ~50 ms), emits the final tick,
    and closes any [File] targets.  Idempotent. *)

val ticks : t -> int
(** Snapshots emitted so far. *)

val prometheus_of_snapshot : ?prefix:string -> Metrics.snapshot -> string
(** Renders a snapshot in Prometheus text exposition format.  Dotted
    names with three or more segments keep their first two segments as
    the metric family and carry the rest as an [instance] label (so
    [fleet.util.v100#0] becomes [mdls_fleet_util{instance="v100#0"}]);
    counters gain the [_total] suffix; histograms expand to cumulative
    [_bucket{le=...}] series plus [_sum]/[_count].  [prefix] defaults to
    ["mdls_"]. *)
