(** Minimal JSON text rendering shared by this library's hand-rolled
    exporters ({!Log} lines, the {!Telemetry} stream).  Internal —
    [Harness.Obs_io] owns the parsing side. *)

val string : Buffer.t -> string -> unit
(** Appends a quoted, escaped JSON string. *)

val float : Buffer.t -> float -> unit
(** 17-significant-digit rendering; non-finite floats render as [0]. *)

val int : Buffer.t -> int -> unit
val bool : Buffer.t -> bool -> unit

val key : Buffer.t -> bool -> string -> unit
(** [key b first k] appends [,"k":] (the comma omitted when [first]). *)
