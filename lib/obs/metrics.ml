(* The metrics registry: named counters, gauges and fixed-bucket
   histograms, safe under concurrent update from many domains.

   The registry mutex is taken only to get-or-create a metric; updates
   are atomics all the way (fetch-and-add for counts, a compare-and-set
   loop for the histogram sum), so hammering one counter from every
   domain of the pool stays exact and lock-free. *)

module Counter = struct
  type t = int Atomic.t

  let incr ?(by = 1) t = ignore (Atomic.fetch_and_add t by)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = float Atomic.t

  let set t v = Atomic.set t v
  let value t = Atomic.get t
end

module Histogram = struct
  (* [counts.(i)] tallies observations with [v <= bounds.(i)] (first
     matching bucket); [counts.(length bounds)] is the overflow bucket. *)
  type t = {
    bounds : float array;
    counts : int Atomic.t array;
    sum : float Atomic.t;
  }

  let observe t v =
    let n = Array.length t.bounds in
    let rec bucket i = if i >= n || v <= t.bounds.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add t.counts.(bucket 0) 1);
    let rec add () =
      let old = Atomic.get t.sum in
      if not (Atomic.compare_and_set t.sum old (old +. v)) then add ()
    in
    add ()

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum t = Atomic.get t.sum
  let bounds t = Array.copy t.bounds
  let bucket_counts t = Array.map Atomic.get t.counts
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

type t = { lock : Mutex.t; table : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 32 }

let default_registry = create ()
let default () = default_registry

(* Millisecond-oriented default bucket bounds. *)
let default_buckets = [| 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 |]

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

let get_or_create t name ~kind ~make ~cast =
  Mutex.lock t.lock;
  let m =
    match Hashtbl.find_opt t.table name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.add t.table name m;
      m
  in
  Mutex.unlock t.lock;
  match cast m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s is a %s, not a %s" name (kind_name m)
         kind)

let counter t name =
  get_or_create t name ~kind:"counter"
    ~make:(fun () -> Counter_m (Atomic.make 0))
    ~cast:(function Counter_m c -> Some c | _ -> None)

let gauge t name =
  get_or_create t name ~kind:"gauge"
    ~make:(fun () -> Gauge_m (Atomic.make 0.0))
    ~cast:(function Gauge_m g -> Some g | _ -> None)

let histogram ?(buckets = default_buckets) t name =
  get_or_create t name ~kind:"histogram"
    ~make:(fun () ->
      Histogram_m
        {
          Histogram.bounds = Array.copy buckets;
          counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.0;
        })
    ~cast:(function Histogram_m h -> Some h | _ -> None)

(* Zeroes every registered metric in place, keeping registrations (and
   any handles callers cached) valid. *)
let reset t =
  Mutex.lock t.lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter_m c -> Atomic.set c 0
      | Gauge_m g -> Atomic.set g 0.0
      | Histogram_m h ->
        Array.iter (fun c -> Atomic.set c 0) h.Histogram.counts;
        Atomic.set h.Histogram.sum 0.0)
    t.table;
  Mutex.unlock t.lock

(* ---- snapshots ---- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      count : int;
      sum : float;
    }

type snapshot = (string * value) list

let snapshot t =
  Mutex.lock t.lock;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [] in
  Mutex.unlock t.lock;
  entries
  |> List.map (fun (name, m) ->
         let v =
           match m with
           | Counter_m c -> Counter (Counter.value c)
           | Gauge_m g -> Gauge (Gauge.value g)
           | Histogram_m h ->
             Histogram
               {
                 bounds = Histogram.bounds h;
                 counts = Histogram.bucket_counts h;
                 count = Histogram.count h;
                 sum = Histogram.sum h;
               }
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
