(* The metrics registry: named counters, gauges and fixed-bucket
   histograms, safe under concurrent update from many domains.

   The registry mutex is taken only to get-or-create a metric; updates
   are atomics all the way (fetch-and-add for counts, a compare-and-set
   loop for the histogram sum), so hammering one counter from every
   domain of the pool stays exact and lock-free. *)

module Counter = struct
  type t = int Atomic.t

  let incr ?(by = 1) t = ignore (Atomic.fetch_and_add t by)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = float Atomic.t

  let set t v = Atomic.set t v
  let value t = Atomic.get t
end

(* Estimated q-quantile of a bucketed distribution, by linear
   interpolation inside the bucket holding the q*count-th observation
   (the classic histogram_quantile estimator).  Deterministic in the
   bucket counts, which are themselves exact under concurrent updates —
   so the estimate is reproducible, the resolution is the bucket
   ladder.  The overflow bucket has no upper edge; ranks landing there
   clamp to the largest finite bound.  An empty histogram estimates
   0. *)
let quantile ~bounds ~counts q =
  let n = Array.length bounds in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 || n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int total in
    let rec go i cum =
      if i >= n then bounds.(n - 1)
      else
        let c = counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= rank then
          let lo = if i = 0 then Float.min 0.0 bounds.(0) else bounds.(i - 1) in
          let hi = bounds.(i) in
          lo +. ((hi -. lo) *. (rank -. float_of_int cum) /. float_of_int c)
        else go (i + 1) cum'
    in
    go 0 0
  end

module Histogram = struct
  (* [counts.(i)] tallies observations with [v <= bounds.(i)] (first
     matching bucket); [counts.(length bounds)] is the overflow bucket. *)
  type t = {
    bounds : float array;
    counts : int Atomic.t array;
    sum : float Atomic.t;
  }

  let observe t v =
    let n = Array.length t.bounds in
    let rec bucket i = if i >= n || v <= t.bounds.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add t.counts.(bucket 0) 1);
    let rec add () =
      let old = Atomic.get t.sum in
      if not (Atomic.compare_and_set t.sum old (old +. v)) then add ()
    in
    add ()

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum t = Atomic.get t.sum
  let bounds t = Array.copy t.bounds
  let bucket_counts t = Array.map Atomic.get t.counts
  let quantile t q = quantile ~bounds:t.bounds ~counts:(bucket_counts t) q
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

type t = { lock : Mutex.t; table : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 32 }

let default_registry = create ()
let default () = default_registry

(* Millisecond-oriented default bucket bounds. *)
let default_buckets = [| 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 |]

(* A finer 1-2.5-5 ladder for latency percentiles: quantile estimates
   interpolate inside a bucket, so p50/p95/p99 from these bounds stay
   meaningful from sub-millisecond jobs up to multi-second ones. *)
let latency_buckets =
  [|
    0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0;
    100.0; 250.0; 500.0; 1000.0; 2500.0; 5000.0; 10000.0;
  |]

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

let get_or_create t name ~kind ~make ~cast =
  Mutex.lock t.lock;
  let m =
    match Hashtbl.find_opt t.table name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.add t.table name m;
      m
  in
  Mutex.unlock t.lock;
  match cast m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s is a %s, not a %s" name (kind_name m)
         kind)

let counter t name =
  get_or_create t name ~kind:"counter"
    ~make:(fun () -> Counter_m (Atomic.make 0))
    ~cast:(function Counter_m c -> Some c | _ -> None)

let gauge t name =
  get_or_create t name ~kind:"gauge"
    ~make:(fun () -> Gauge_m (Atomic.make 0.0))
    ~cast:(function Gauge_m g -> Some g | _ -> None)

let histogram ?(buckets = default_buckets) t name =
  get_or_create t name ~kind:"histogram"
    ~make:(fun () ->
      Histogram_m
        {
          Histogram.bounds = Array.copy buckets;
          counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.0;
        })
    ~cast:(function Histogram_m h -> Some h | _ -> None)

(* Domain-safe lazy resolution for instrumentation handles.  An OCaml
   [lazy] raises [Undefined] when two domains force it concurrently —
   which is exactly what happens when several fleet workers hit an
   instrumented code path for the first time together.  Registration is
   idempotent (the registry hands back the same metric), so a benign
   race resolving twice is harmless; after the first resolution the
   cost is one atomic read. *)
let once resolve =
  let cache = Atomic.make None in
  fun () ->
    match Atomic.get cache with
    | Some h -> h
    | None ->
      let h = resolve () in
      Atomic.set cache (Some h);
      h

(* Zeroes every registered metric in place, keeping registrations (and
   any handles callers cached) valid. *)
let reset t =
  Mutex.lock t.lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter_m c -> Atomic.set c 0
      | Gauge_m g -> Atomic.set g 0.0
      | Histogram_m h ->
        Array.iter (fun c -> Atomic.set c 0) h.Histogram.counts;
        Atomic.set h.Histogram.sum 0.0)
    t.table;
  Mutex.unlock t.lock

(* ---- snapshots ---- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      count : int;
      sum : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

type snapshot = (string * value) list

let snapshot t =
  Mutex.lock t.lock;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [] in
  Mutex.unlock t.lock;
  entries
  |> List.map (fun (name, m) ->
         let v =
           match m with
           | Counter_m c -> Counter (Counter.value c)
           | Gauge_m g -> Gauge (Gauge.value g)
           | Histogram_m h ->
             let bounds = Histogram.bounds h in
             let counts = Histogram.bucket_counts h in
             Histogram
               {
                 bounds;
                 counts;
                 count = Array.fold_left ( + ) 0 counts;
                 sum = Histogram.sum h;
                 p50 = quantile ~bounds ~counts 0.50;
                 p95 = quantile ~bounds ~counts 0.95;
                 p99 = quantile ~bounds ~counts 0.99;
               }
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
