(* The kernel timing model: a roofline with an occupancy/latency-hiding
   term, calibrated against the measurements in the paper.

   One launch is described by its grid shape, the multiple double
   operations performed (true tally, plus an optional padded tally whose
   critical path governs time when thread work is imbalanced) and its
   memory traffic:

   - [cold_bytes]: unique global memory traffic, counting data shared by
     the threads of a block once (the staggered representation makes those
     accesses coalesced, §2); served by DRAM.
   - [thread_bytes]: traffic as issued per thread, before any reuse; served
     by the L2 cache while the per-block working set fits, by DRAM beyond —
     this term is what makes double double matrix products drop sharply at
     dimension 2,048 (Table 6) while quad and octo double stay compute
     bound thanks to their higher CGMA ratios.

   kernel time = launch overhead
               + max(flops / (peak * eff * occupancy),
                     cold_bytes / DRAM bw,
                     thread_bytes / cache bw) *)

type launch = {
  blocks : int;
  threads : int; (* per block *)
  count : int; (* kernel launches this record stands for (default 1):
                  Algorithm 1 issues the i-1 right-hand-side updates of one
                  step as i-1 concurrent launches *)
  ops : Counter.ops; (* true tally over all threads *)
  padded : Counter.ops option; (* timing tally, default [ops] *)
  cold_bytes : float;
  thread_bytes : float;
  working_set : float; (* per-plane bytes of the shared input panel the
                          threads re-read (the staggered layout streams
                          each plane of doubles separately) *)
  strided : bool; (* the re-read panel is accessed with a large pitch
                     (e.g. trailing columns inside R), so once it spills
                     the L2 the accesses waste most of each DRAM
                     transaction *)
}

let launch ?(count = 1) ?padded ?(cold_bytes = 0.0) ?(thread_bytes = 0.0)
    ?(working_set = 0.0) ?(strided = false) ~blocks ~threads ops =
  { blocks; threads; count; ops; padded; cold_bytes; thread_bytes;
    working_set; strided }

(* Fraction of the double precision peak a fully occupied multiple double
   kernel sustains: the operation mix of Table 1 is dominated by dependent
   non-fused additions, which caps the issue rate well below the FMA peak.
   Calibrated on the V100/P100 octo double QR measurements (~0.5 of peak). *)
let arithmetic_efficiency = 0.55

(* Resident warps needed per SM to hide the double precision latency. *)
let warps_to_hide_latency = 8.0

(* Fraction of DRAM bandwidth that scattered (strided) re-reads sustain
   once the shared input panel spills the L2 cache. *)
let scatter_efficiency = 0.1

(* The L2 keeps serving re-reads up to a modest multiple of its capacity
   (streaming hits on the hot fraction of the panel). *)
let l2_reach = 2.5

let occupancy (d : Device.t) ~blocks ~threads =
  let threads = max 1 threads in
  let warps = float_of_int ((threads + 31) / 32) in
  (* Fraction of issue slots lost when the block is not a warp multiple. *)
  let warp_eff = float_of_int threads /. (32.0 *. warps) in
  let sm = float_of_int d.sm_count in
  (* Wave quantization: a grid of B blocks runs in ceil(B/#SM) waves, so
     80 blocks keep all 80 SMs of a V100 busy but leave 32 of the P100's
     56 SMs idle in the second wave — the paper's explanation for the
     P100/V100 gap of Table 8. *)
  let waves = Float.of_int ((blocks + d.sm_count - 1) / d.sm_count) in
  let sm_util =
    if blocks = 0 then 0.0 else float_of_int blocks /. (waves *. sm)
  in
  (* Warps resident on one SM once the grid wraps around. *)
  let blocks_per_sm =
    Float.max 1.0 (Float.of_int blocks /. sm)
    |> Float.min (float_of_int d.max_resident_warps /. warps)
  in
  let resident = warps *. blocks_per_sm in
  let hiding = Float.min 1.0 (resident /. warps_to_hide_latency) in
  sm_util *. warp_eff *. hiding

let kernel_ms (d : Device.t) (p : Multidouble.Precision.tag) (l : launch) =
  let timing_ops = match l.padded with Some o -> o | None -> l.ops in
  let flops = Counter.flops p timing_ops in
  let occ = occupancy d ~blocks:l.blocks ~threads:l.threads in
  let peak = d.dp_peak_gflops *. 1e9 *. arithmetic_efficiency in
  let compute_s = flops /. (peak *. Float.max occ 1e-6) in
  let dram_s = l.cold_bytes /. (d.dram_gb_s *. 1e9) in
  (* The register-loading kernels re-read their inputs per thread.  While
     the shared input panel stays within the cache's reach the L2 absorbs
     the re-reads; beyond it they stream from DRAM — at full bandwidth for
     compact temporaries (Y, W, YWT), but at a fraction of it for strided
     panels such as the trailing columns living inside R, whose pitch
     wastes most of each transaction.  This is what collapses the double
     double YWT*C product at dimension 2,048 (Table 6) while the higher
     CGMA ratios of quad and octo double stay compute bound, and what
     makes YWT*C dominate on the small-cache C2050 and K20C (Table 3). *)
  let cache_bw =
    if l.working_set <= l2_reach *. d.l2_mb *. 1e6 then d.l2_gb_s *. 1e9
    else if l.strided then scatter_efficiency *. d.dram_gb_s *. 1e9
    else d.dram_gb_s *. 1e9
  in
  let cache_s = l.thread_bytes /. cache_bw in
  (float_of_int l.count *. d.launch_us /. 1e3)
  +. (1e3 *. Float.max compute_s (Float.max dram_s cache_s))

(* ---- Launch builders for the iterative engines' vector kernels ----

   CG and LSQR are thin loops over a matrix-vector product and a handful
   of BLAS-1 kernels.  Their Table-1 operation tallies and memory
   traffic are fixed by the shapes alone, so the builders live here and
   the engines share one accounting.  [sb] is the byte size of one
   scalar in the staggered representation (8 * limbs, doubled again for
   complex data); [complex] expands the tallies with the usual 4-mul /
   2-add complex product expansion.

   The matrix-vector product reads every matrix element once per
   output element's dot product: cold traffic is the matrix plus both
   vectors, per-thread traffic re-reads the operands — the CGMA ratio is
   O(1) flops per element, which pins these kernels to the memory side
   of the roofline at double precision and double double (the opposite
   corner from the O(n) reuse of the blocked QR products); the higher
   Table 1 multipliers of quad and octo double buy the flops back. *)

let complexified complex o = if complex then Counter.complexify o else o

let gemv ?(trans = false) ?(complex = false) ~sb ~rows ~cols ~threads () =
  let f = float_of_int in
  (* The transposed product of a tall matrix has only [cols] outputs —
     far too few to fill a grid one-thread-per-output.  The modeled
     kernel grids over row slabs instead, each block accumulating a
     per-block partial result folded afterwards by a tree reduction;
     without this the m >> n shapes of the iterative engines serialize
     on a single block. *)
  let span = if trans then max rows cols else rows in
  let blocks = max 1 ((span + threads - 1) / threads) in
  let reduction_adds = if trans then f cols *. f blocks else 0.0 in
  let o =
    complexified complex
      (Counter.make
         ~adds:((f rows *. f cols) +. reduction_adds)
         ~muls:(f rows *. f cols) ())
  in
  launch ~blocks ~threads
    ~cold_bytes:
      ((f (rows * cols) +. f rows +. f cols +. reduction_adds) *. sb)
    ~thread_bytes:(2.0 *. f (rows * cols) *. sb)
    ~working_set:(f (rows * cols) *. 8.0)
    ~strided:trans o

let dot ?(complex = false) ~sb ~n ~threads () =
  let f = float_of_int in
  let o = complexified complex (Counter.make ~adds:(f n) ~muls:(f n) ()) in
  launch
    ~blocks:(max 1 ((n + threads - 1) / threads))
    ~threads
    ~cold_bytes:(2.0 *. f n *. sb)
    ~thread_bytes:(2.0 *. f n *. sb)
    o

let axpy ?(complex = false) ~sb ~n ~threads () =
  let f = float_of_int in
  let o = complexified complex (Counter.make ~adds:(f n) ~muls:(f n) ()) in
  launch
    ~blocks:(max 1 ((n + threads - 1) / threads))
    ~threads
    ~cold_bytes:(3.0 *. f n *. sb)
    ~thread_bytes:(2.0 *. f n *. sb)
    o

let scal ?(complex = false) ~sb ~n ~threads () =
  let f = float_of_int in
  let o = complexified complex (Counter.make ~muls:(f n) ()) in
  launch
    ~blocks:(max 1 ((n + threads - 1) / threads))
    ~threads
    ~cold_bytes:(2.0 *. f n *. sb)
    ~thread_bytes:(f n *. sb)
    o

(* Host <-> device staging time for [bytes] of data (milliseconds);
   included in wall clock but not in kernel time, like the paper's
   cudaEventElapsedTime vs wall clock distinction. *)
let transfer_ms (d : Device.t) bytes = bytes /. (d.link_gb_s *. 1e9) *. 1e3

(* Host-side cost of issuing one kernel (driver call, synchronization). *)
let host_launch_ms (d : Device.t) = d.host_launch_us /. 1e3

(* When the problem no longer fits the host RAM the wall clock explodes
   (the paper observes 84 seconds for octo double back substitution at
   dimension 20,480 on a 32 GB host). *)
let host_pressure_ms (d : Device.t) bytes =
  let ram = d.host_ram_gb *. 1e9 in
  (* The host stages several copies (input, staggered planes, pinned
     buffers); pressure starts at ~70% of the physical RAM and the excess
     swaps at a few hundred MB/s. *)
  let footprint = 3.0 *. bytes in
  let threshold = 0.7 *. ram in
  if footprint > threshold then (footprint -. threshold) /. 300e6 *. 1e3
  else 0.0

(* Which roofline term binds a launch, for the ablation bench. *)
type binding = Compute | Dram | Cache | Spill

let terms (d : Device.t) (p : Multidouble.Precision.tag) (l : launch) =
  let timing_ops = match l.padded with Some o -> o | None -> l.ops in
  let flops = Counter.flops p timing_ops in
  let occ = occupancy d ~blocks:l.blocks ~threads:l.threads in
  let peak = d.dp_peak_gflops *. 1e9 *. arithmetic_efficiency in
  let compute_s = flops /. (peak *. Float.max occ 1e-6) in
  let dram_s = l.cold_bytes /. (d.dram_gb_s *. 1e9) in
  let spilled = l.working_set > l2_reach *. d.l2_mb *. 1e6 in
  let cache_bw =
    if not spilled then d.l2_gb_s *. 1e9
    else if l.strided then scatter_efficiency *. d.dram_gb_s *. 1e9
    else d.dram_gb_s *. 1e9
  in
  let cache_s = l.thread_bytes /. cache_bw in
  let binding =
    if compute_s >= dram_s && compute_s >= cache_s then Compute
    else if dram_s >= cache_s then Dram
    else if spilled && l.strided then Spill
    else Cache
  in
  (compute_s *. 1e3, dram_s *. 1e3, cache_s *. 1e3, binding)

let binding_name = function
  | Compute -> "compute"
  | Dram -> "dram"
  | Cache -> "cache"
  | Spill -> "spill"

(* Arithmetic intensity (flops per byte) and the device ridge point,
   exposed for the roofline ablation bench. *)
let intensity p (l : launch) =
  let bytes = Float.max 1.0 (l.cold_bytes +. l.thread_bytes) in
  Counter.flops p l.ops /. bytes

let ridge (d : Device.t) = d.dp_peak_gflops /. d.dram_gb_s
