(** The five NVIDIA GPUs of the paper (Table 2), with the derived
    characteristics the cost model needs.

    The first seven fields reproduce Table 2 verbatim; the rest are
    public specifications of the same cards used by the roofline model
    (see docs/COST_MODEL.md). *)

type t = {
  name : string;
  cuda : float;  (** CUDA compute capability *)
  sm_count : int;  (** streaming multiprocessors *)
  cores_per_sm : int;
  ghz : float;  (** GPU clock rate *)
  host_cpu : string;
  host_ghz : float;
  dp_peak_gflops : float;  (** double precision peak *)
  dram_gb_s : float;  (** device memory bandwidth *)
  l2_mb : float;
  l2_gb_s : float;  (** on-chip cache bandwidth *)
  link_gb_s : float;  (** effective host <-> device staging bandwidth *)
  launch_us : float;  (** kernel launch overhead, microseconds *)
  host_launch_us : float;  (** host-side cost per launch (driver, sync) *)
  host_ram_gb : float;  (** RAM of the hosting workstation *)
  shared_kb : float;  (** shared memory per block *)
  max_resident_warps : int;  (** per SM, for latency hiding *)
}

val cores : t -> int
(** Total cores: SMs times cores per SM. *)

val bytes_per_flop : t -> float
(** DRAM bytes streamed per double precision flop at the respective
    peaks ([dram_gb_s / dp_peak_gflops]) — the fleet's
    bandwidth-richness score.  High (RTX 2080: ~0.69) means
    bandwidth-rich relative to compute, the natural home of
    memory-bound double double work; low (V100: ~0.11) means
    compute-rich, better saved for octo double jobs. *)

val slug : t -> string
(** Lower-case, space-free device name ("rtx2080"); fleet instance ids
    and metric names build on it. *)

val c2050 : t
val k20c : t
val p100 : t
val v100 : t
val rtx2080 : t

val catalog : t list
(** The five devices in the paper's order. *)

val by_name : string -> t
(** Case- and space-insensitive lookup ("v100", "RTX 2080", "rtx2080");
    raises [Invalid_argument] on unknown names. *)

val pp_row : Format.formatter -> t -> unit
(** One Table 2 row. *)
