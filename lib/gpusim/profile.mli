(** Per-stage accumulation of kernel times, operation tallies, launch
    counts, memory traffic and roofline time terms, used to print the
    stage-by-stage breakdowns of the paper's tables and to feed the
    per-stage roofline diagnostics. *)

type entry = {
  mutable ms : float;
  mutable ops : Counter.ops;
  mutable launches : int;
  mutable cold_bytes : float;
  mutable thread_bytes : float;
  mutable compute_ms : float;  (** summed compute terms of the model *)
  mutable memory_ms : float;  (** summed max(DRAM, cache) terms *)
}

(** An immutable copy of one stage's accumulated state. *)
type row = {
  stage : string;
  ms : float;
  ops : Counter.ops;
  launches : int;
  cold_bytes : float;
  thread_bytes : float;
  compute_ms : float;
  memory_ms : float;
}

type t = { table : (string, entry) Hashtbl.t; mutable order : string list }

val create : unit -> t

val record :
  ?count:int ->
  ?cold_bytes:float ->
  ?thread_bytes:float ->
  ?compute_ms:float ->
  ?memory_ms:float ->
  t ->
  stage:string ->
  ms:float ->
  ops:Counter.ops ->
  unit
(** Adds one launch (or [count] concurrent launches) to a stage. *)

val stages : t -> string list
(** In first-recorded order. *)

val row : t -> string -> row
(** The accumulated state of one stage (a zero row when the stage never
    recorded). *)

val rows : t -> row list
(** One row per stage, in first-recorded order. *)

val stage_ms : t -> string -> float
val stage_ops : t -> string -> Counter.ops
val stage_launches : t -> string -> int
val total_ms : t -> float
val total_ops : t -> Counter.ops
val total_launches : t -> int
