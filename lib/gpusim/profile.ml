(* Per-stage accumulation of kernel times, operation tallies, launch
   counts, memory traffic and roofline time terms, used to print the
   stage-by-stage breakdowns of the paper's tables and to feed the
   per-stage roofline diagnostics. *)

type entry = {
  mutable ms : float;
  mutable ops : Counter.ops;
  mutable launches : int;
  mutable cold_bytes : float;
  mutable thread_bytes : float;
  mutable compute_ms : float;
  mutable memory_ms : float;
}

type row = {
  stage : string;
  ms : float;
  ops : Counter.ops;
  launches : int;
  cold_bytes : float;
  thread_bytes : float;
  compute_ms : float;
  memory_ms : float;
}

type t = { table : (string, entry) Hashtbl.t; mutable order : string list }

let create () = { table = Hashtbl.create 16; order = [] }

let entry t stage =
  match Hashtbl.find_opt t.table stage with
  | Some e -> e
  | None ->
    let e =
      {
        ms = 0.0;
        ops = Counter.zero;
        launches = 0;
        cold_bytes = 0.0;
        thread_bytes = 0.0;
        compute_ms = 0.0;
        memory_ms = 0.0;
      }
    in
    Hashtbl.add t.table stage e;
    t.order <- stage :: t.order;
    e

let record ?(count = 1) ?(cold_bytes = 0.0) ?(thread_bytes = 0.0)
    ?(compute_ms = 0.0) ?(memory_ms = 0.0) t ~stage ~ms ~ops =
  let e = entry t stage in
  e.ms <- e.ms +. ms;
  e.ops <- Counter.add e.ops ops;
  e.launches <- e.launches + count;
  e.cold_bytes <- e.cold_bytes +. cold_bytes;
  e.thread_bytes <- e.thread_bytes +. thread_bytes;
  e.compute_ms <- e.compute_ms +. compute_ms;
  e.memory_ms <- e.memory_ms +. memory_ms

(* Stages in first-recorded order. *)
let stages t = List.rev t.order

let row t stage =
  match Hashtbl.find_opt t.table stage with
  | Some e ->
    {
      stage;
      ms = e.ms;
      ops = e.ops;
      launches = e.launches;
      cold_bytes = e.cold_bytes;
      thread_bytes = e.thread_bytes;
      compute_ms = e.compute_ms;
      memory_ms = e.memory_ms;
    }
  | None ->
    {
      stage;
      ms = 0.0;
      ops = Counter.zero;
      launches = 0;
      cold_bytes = 0.0;
      thread_bytes = 0.0;
      compute_ms = 0.0;
      memory_ms = 0.0;
    }

let rows t = List.map (row t) (stages t)

let stage_ms t stage =
  match Hashtbl.find_opt t.table stage with Some e -> e.ms | None -> 0.0

let stage_ops t stage =
  match Hashtbl.find_opt t.table stage with
  | Some e -> e.ops
  | None -> Counter.zero

let stage_launches t stage =
  match Hashtbl.find_opt t.table stage with Some e -> e.launches | None -> 0

let total_ms t =
  Hashtbl.fold (fun _ (e : entry) acc -> acc +. e.ms) t.table 0.0

let total_ops t =
  Hashtbl.fold
    (fun _ (e : entry) acc -> Counter.add acc e.ops)
    t.table Counter.zero

let total_launches t =
  Hashtbl.fold (fun _ (e : entry) acc -> acc + e.launches) t.table 0
