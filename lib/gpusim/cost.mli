(** The kernel timing model: a roofline with occupancy, latency-hiding,
    wave-quantization and cache-spill terms, calibrated against the
    measurements in the paper.

    kernel time = count · launch overhead
                + max(flops / (peak · eff · occupancy),
                      cold_bytes / DRAM bandwidth,
                      thread_bytes / cache bandwidth) *)

(** One kernel launch, as seen by the model. *)
type launch = {
  blocks : int;
  threads : int;  (** per block *)
  count : int;
      (** kernel launches this record stands for (Algorithm 1 issues the
          i-1 right-hand-side updates of one step concurrently) *)
  ops : Counter.ops;  (** true tally over all threads *)
  padded : Counter.ops option;
      (** timing tally when thread work is imbalanced; default [ops] *)
  cold_bytes : float;
      (** unique global traffic (block-shared data counted once) *)
  thread_bytes : float;
      (** traffic as issued per thread, before reuse *)
  working_set : float;
      (** per-plane bytes of the shared input panel the threads re-read
          (the staggered layout streams each plane separately) *)
  strided : bool;
      (** the re-read panel has a large pitch (e.g. trailing columns
          inside R): once it spills the L2 the accesses waste most of
          each DRAM transaction *)
}

val launch :
  ?count:int ->
  ?padded:Counter.ops ->
  ?cold_bytes:float ->
  ?thread_bytes:float ->
  ?working_set:float ->
  ?strided:bool ->
  blocks:int ->
  threads:int ->
  Counter.ops ->
  launch

(** {2 Launch builders for the iterative engines' vector kernels}

    CG and LSQR are thin loops over a matrix-vector product and a few
    BLAS-1 kernels; their Table-1 tallies and traffic are fixed by the
    shapes alone, so the builders live here and every engine shares one
    accounting.  [sb] is the byte size of one scalar in the staggered
    representation.  The matrix-vector product performs O(1) flops per
    element moved, which pins these kernels to the memory side of the
    roofline at every multiple double precision. *)

val gemv :
  ?trans:bool ->
  ?complex:bool ->
  sb:float ->
  rows:int ->
  cols:int ->
  threads:int ->
  unit ->
  launch
(** [y := A x] ([rows] outputs), or [y := A^H x] ([cols] outputs,
    strided column walk) with [trans]. *)

val dot : ?complex:bool -> sb:float -> n:int -> threads:int -> unit -> launch
val axpy : ?complex:bool -> sb:float -> n:int -> threads:int -> unit -> launch

val scal : ?complex:bool -> sb:float -> n:int -> threads:int -> unit -> launch
(** [y := alpha x]. *)

val arithmetic_efficiency : float
(** Fraction of the double precision peak a fully occupied multiple
    double kernel sustains (the Table 1 mix is dominated by dependent
    non-fused additions); calibrated on the paper's V100/P100 octo
    double measurements. *)

val warps_to_hide_latency : float
val scatter_efficiency : float
val l2_reach : float

val occupancy : Device.t -> blocks:int -> threads:int -> float
(** Achieved fraction of peak issue rate in (0, 1]: wave quantization
    across SMs, warp rounding inside blocks, resident-warp latency
    hiding. *)

val kernel_ms : Device.t -> Multidouble.Precision.tag -> launch -> float
(** Modeled milliseconds of one launch. *)

val transfer_ms : Device.t -> float -> float
(** Host <-> device staging time for that many bytes (wall clock only). *)

val host_launch_ms : Device.t -> float
(** Host-side cost of issuing one kernel. *)

val host_pressure_ms : Device.t -> float -> float
(** Swap penalty when the staged footprint exceeds the host RAM's reach
    (the paper's 84-second octo double anomaly at dimension 20,480). *)

(** Which roofline term binds a launch. *)
type binding = Compute | Dram | Cache | Spill

val terms :
  Device.t ->
  Multidouble.Precision.tag ->
  launch ->
  float * float * float * binding
(** [(compute_ms, dram_ms, cache_ms, binding)] of one launch. *)

val binding_name : binding -> string

val intensity : Multidouble.Precision.tag -> launch -> float
(** Arithmetic intensity in flops per byte. *)

val ridge : Device.t -> float
(** Device ridge point (flops/byte where compute catches memory). *)
