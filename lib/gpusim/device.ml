(* The five NVIDIA GPUs of the paper (Table 2), with the derived
   characteristics the cost model needs.

   The first seven fields reproduce Table 2 verbatim; the remaining fields
   are public specifications of the same cards (double precision peak,
   memory bandwidth, L2 size, host link) used by the roofline model. *)

type t = {
  name : string;
  cuda : float; (* CUDA compute capability *)
  sm_count : int; (* streaming multiprocessors *)
  cores_per_sm : int;
  ghz : float; (* GPU clock rate *)
  host_cpu : string;
  host_ghz : float;
  dp_peak_gflops : float; (* double precision peak *)
  dram_gb_s : float; (* device memory bandwidth *)
  l2_mb : float;
  l2_gb_s : float; (* on-chip cache bandwidth *)
  link_gb_s : float; (* effective host <-> device staging bandwidth *)
  launch_us : float; (* kernel launch overhead, microseconds *)
  host_launch_us : float; (* host-side cost per launch (driver, sync) *)
  host_ram_gb : float; (* RAM of the hosting workstation *)
  shared_kb : float; (* shared memory per block *)
  max_resident_warps : int; (* per SM, for latency hiding *)
}

let cores d = d.sm_count * d.cores_per_sm

(* DRAM bytes streamed per double precision flop at the respective
   peaks: the fleet's bandwidth-richness score.  A consumer card with
   weak FP64 pipes but a wide memory bus (RTX 2080: 0.69 B/flop) is
   bandwidth-rich relative to its compute and the natural home of
   memory-bound double double work, while a V100 (0.11 B/flop) is
   compute-rich and better saved for octo double jobs. *)
let bytes_per_flop d = d.dram_gb_s /. d.dp_peak_gflops

(* Lower-case, space-free device name ("rtx2080"): fleet instance ids
   and metric names are built from this. *)
let slug d =
  String.concat ""
    (List.filter_map
       (fun c ->
         match c with ' ' -> None | c -> Some (String.make 1 (Char.lowercase_ascii c)))
       (List.init (String.length d.name) (String.get d.name)))

(* Tesla C2050 (Fermi, 2011): DP is half of SP rate. *)
let c2050 =
  {
    name = "C2050";
    cuda = 2.0;
    sm_count = 14;
    cores_per_sm = 32;
    ghz = 1.15;
    host_cpu = "Intel X5690";
    host_ghz = 3.47;
    dp_peak_gflops = 515.0;
    dram_gb_s = 144.0;
    l2_mb = 0.75;
    l2_gb_s = 350.0;
    link_gb_s = 2.0;
    launch_us = 6.0;
    host_launch_us = 12.0;
    host_ram_gb = 24.0;
    shared_kb = 48.0;
    max_resident_warps = 48;
  }

(* Kepler K20C: DP is one third of SP rate. *)
let k20c =
  {
    name = "K20C";
    cuda = 3.5;
    sm_count = 13;
    cores_per_sm = 192;
    ghz = 0.71;
    host_cpu = "Intel E5-2670";
    host_ghz = 2.60;
    dp_peak_gflops = 1170.0;
    dram_gb_s = 208.0;
    l2_mb = 1.5;
    l2_gb_s = 500.0;
    link_gb_s = 2.5;
    launch_us = 5.0;
    host_launch_us = 10.0;
    host_ram_gb = 64.0;
    shared_kb = 48.0;
    max_resident_warps = 64;
  }

(* Pascal P100: 4.7 double precision teraflops (paper, §4.3). *)
let p100 =
  {
    name = "P100";
    cuda = 6.0;
    sm_count = 56;
    cores_per_sm = 64;
    ghz = 1.33;
    host_cpu = "Intel E5-2699";
    host_ghz = 2.20;
    dp_peak_gflops = 4700.0;
    dram_gb_s = 732.0;
    l2_mb = 4.0;
    l2_gb_s = 1800.0;
    link_gb_s = 3.0;
    launch_us = 2.5;
    host_launch_us = 8.0;
    host_ram_gb = 256.0;
    shared_kb = 64.0;
    max_resident_warps = 64;
  }

(* Volta V100: 7.9 double precision teraflops (paper, §4.3). *)
let v100 =
  {
    name = "V100";
    cuda = 7.0;
    sm_count = 80;
    cores_per_sm = 64;
    ghz = 1.91;
    host_cpu = "Intel W2123";
    host_ghz = 3.60;
    dp_peak_gflops = 7900.0;
    dram_gb_s = 900.0;
    l2_mb = 6.0;
    l2_gb_s = 2500.0;
    link_gb_s = 3.5;
    launch_us = 2.0;
    host_launch_us = 7.0;
    host_ram_gb = 32.0;
    shared_kb = 96.0;
    max_resident_warps = 64;
  }

(* GeForce RTX 2080 Max-Q in a Windows laptop: consumer Turing card with a
   1/32 double precision rate; the multiple double workload also keeps the
   non-FMA pipes busy, so the sustainable rate is a bit above the FP64-unit
   peak (the paper measures ~0.3 teraflops in octo double precision). *)
let rtx2080 =
  {
    name = "RTX 2080";
    cuda = 7.5;
    sm_count = 46;
    cores_per_sm = 64;
    ghz = 1.10;
    host_cpu = "Intel i9-9880H";
    host_ghz = 2.30;
    dp_peak_gflops = 560.0;
    dram_gb_s = 384.0;
    l2_mb = 4.0;
    l2_gb_s = 1200.0;
    link_gb_s = 1.5;
    launch_us = 4.0;
    host_launch_us = 20.0;
    host_ram_gb = 32.0;
    shared_kb = 64.0;
    max_resident_warps = 32;
  }

let catalog = [ c2050; k20c; p100; v100; rtx2080 ]

let by_name n =
  let norm s = String.lowercase_ascii (String.concat "" (String.split_on_char ' ' s)) in
  match List.find_opt (fun d -> norm d.name = norm n) catalog with
  | Some d -> d
  | None -> invalid_arg ("Device.by_name: unknown device " ^ n)

let pp_row fmt d =
  Format.fprintf fmt "%-16s %4.1f %4d %10d %7d %5.2f  %s %.2f" d.name d.cuda
    d.sm_count d.cores_per_sm (cores d) d.ghz d.host_cpu d.host_ghz
