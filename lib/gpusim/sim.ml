(* The simulated accelerator: kernel launches execute their data-parallel
   body on a domain pool (blocks in parallel, the threads of one block
   sequentially, which preserves the data-parallel semantics of the
   algorithms), while the cost model accounts the milliseconds the same
   launch takes on a given physical device.

   With [execute = false] a launch is costed without running its body, so
   the large-dimension experiments of the paper can be timed without
   executing trillions of host flops; the test suite validates the
   numerical results with execution on at smaller dimensions.

   Every launch and transfer is observable: when [Obs.Tracer] is
   recording, launches emit kernel spans (grid/block dims, stage,
   modeled ms, op tally) plus a counter track carrying the simulated
   device clock, and transfers emit instant events; the process-wide
   [Obs.Metrics] registry always tallies launches, transfers and the
   modeled kernel milliseconds. *)

type t = {
  device : Device.t;
  prec : Multidouble.Precision.tag;
  pool : Dompool.Domain_pool.t;
  mutable execute : bool;
  profile : Profile.t;
  mutable transfer_ms : float;
  mutable host_ms : float;
  mutable peak_bytes : float; (* largest resident data set, for RAM model *)
  fault : Fault.Plan.t option;
  mutable corruptor : (Dompool.Prng.t -> string) option;
}

(* Handles resolve on first use via [Metrics.once]: a plain [lazy]
   raises under the concurrent first force the fleet's worker domains
   produce. *)
let m_launches =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (Obs.Metrics.default ()) "sim.launches")

let m_transfers =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.counter (Obs.Metrics.default ()) "sim.transfers")

let m_kernel_ms =
  Obs.Metrics.once (fun () ->
      Obs.Metrics.histogram (Obs.Metrics.default ()) "sim.kernel_ms")

let create ?(execute = true) ?pool ?fault ?(fault_salt = 0) ~device ~prec () =
  let pool =
    match pool with Some p -> p | None -> Dompool.Domain_pool.get_default ()
  in
  {
    device;
    prec;
    pool;
    execute;
    profile = Profile.create ();
    transfer_ms = 0.0;
    host_ms = 0.0;
    peak_bytes = 0.0;
    fault = Option.map (fun cfg -> Fault.Plan.arm ~salt:fault_salt cfg) fault;
    corruptor = None;
  }

(* Ambient brownout slowdown: a browned-out device runs every kernel and
   transfer [factor] times slower.  Domain-local, so a fleet worker can
   wrap one job's execution without perturbing the cost model of jobs
   running concurrently on healthy instances.  Read at accounting time on
   the launching domain (kernel bodies may run on pool domains, but
   [account]/[transfer] never do). *)
let slowdown_key = Domain.DLS.new_key (fun () -> 1.0)

let ambient_slowdown () = Domain.DLS.get slowdown_key

let with_slowdown factor f =
  if Float.is_nan factor || factor < 1.0 then
    invalid_arg
      (Printf.sprintf "Gpusim.Sim.with_slowdown: factor %g must be >= 1"
         factor);
  let prev = Domain.DLS.get slowdown_key in
  Domain.DLS.set slowdown_key (prev *. factor);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slowdown_key prev) f

let fault_plan t = t.fault
let fault_tally t = Option.map Fault.Plan.snapshot t.fault
let set_corruptor t c = t.corruptor <- c

let reset t =
  Hashtbl.reset t.profile.Profile.table;
  t.profile.Profile.order <- [];
  t.transfer_ms <- 0.0;
  t.host_ms <- 0.0;
  t.peak_bytes <- 0.0

(* Cost accounting shared by [launch] and [launch_seq]: the modeled
   milliseconds plus the roofline time terms land in the profile, the
   per-launch host cost in [host_ms], and the registry tallies. *)
let account t ~stage ~(cost : Cost.launch) =
  let slow = ambient_slowdown () in
  let ms = Cost.kernel_ms t.device t.prec cost *. slow in
  let compute_ms, dram_ms, cache_ms, _ = Cost.terms t.device t.prec cost in
  Profile.record ~count:cost.Cost.count ~cold_bytes:cost.Cost.cold_bytes
    ~thread_bytes:cost.Cost.thread_bytes ~compute_ms:(compute_ms *. slow)
    ~memory_ms:(Float.max dram_ms cache_ms *. slow) t.profile ~stage ~ms
    ~ops:cost.Cost.ops;
  t.host_ms <-
    t.host_ms
    +. (float_of_int cost.Cost.count *. Cost.host_launch_ms t.device);
  Obs.Metrics.Counter.incr ~by:cost.Cost.count (m_launches ());
  Obs.Metrics.Histogram.observe (m_kernel_ms ()) ms;
  ms

(* Runs [run] under a kernel span carrying the launch's shape and cost,
   then samples the simulated device clock as a counter track (the host
   span shows when the simulator worked, the counter what the device
   clock advanced to). *)
let traced t ~stage ~(cost : Cost.launch) ~ms run =
  if not (Obs.Tracer.enabled ()) then run ()
  else begin
    let args =
      [
        ("blocks", Obs.Tracer.Int cost.Cost.blocks);
        ("threads", Obs.Tracer.Int cost.Cost.threads);
        ("count", Obs.Tracer.Int cost.Cost.count);
        ("device_ms", Obs.Tracer.Float ms);
        ("ops", Obs.Tracer.Float (Counter.total cost.Cost.ops));
      ]
    in
    Obs.Tracer.span ~cat:"kernel" ~args stage run;
    Obs.Tracer.counter "sim.device_ms" (Profile.total_ms t.profile)
  end

(* Fault envelope around one kernel launch.  Drawn once per issued
   launch from the plan's injection stream (the driver issues launches
   sequentially, so the stream — and with it the whole campaign — is
   deterministic).  A [Launch_fail] costs a relaunch (the cost model is
   charged again) up to the plan's relaunch budget, then escalates; a
   [Bitflip] lets the kernel run and then corrupts live data through the
   registered corruptor. *)
let run_faulted t plan ~stage ~cost run =
  let rec attempt relaunches =
    let can_corrupt = t.execute && t.corruptor <> None in
    match Fault.Plan.draw_launch plan ~can_corrupt with
    | None | Some Fault.Plan.Transfer_corrupt -> run ()
    | Some Fault.Plan.Launch_fail ->
        Fault.Plan.note_launch_fail plan ~stage;
        if relaunches < Fault.Plan.max_relaunches plan then begin
          ignore (account t ~stage ~cost : float);
          Fault.Plan.note_relaunch plan ~stage;
          attempt (relaunches + 1)
        end
        else begin
          Fault.Plan.note_escalation plan ~stage;
          Obs.Log.warn "sim.fault_escalation"
            ~fields:
              [
                ("fault", Obs.Log.Str "launch_fail");
                ("stage", Obs.Log.Str stage);
                ("relaunches", Obs.Log.Int relaunches);
              ];
          raise (Fault.Plan.Injected (Fault.Plan.Launch_fail, stage))
        end
    | Some Fault.Plan.Bitflip ->
        run ();
        Fault.Plan.note_bitflip plan ~stage;
        (match t.corruptor with
        | Some flip when t.execute ->
            let what = flip (Fault.Plan.aux_rng plan) in
            Fault.Plan.note_corruption plan ~stage ~what
        | _ -> ())
  in
  attempt 0

let with_faults t ~protected ~stage ~cost run =
  match t.fault with
  | Some plan when not protected -> run_faulted t plan ~stage ~cost run
  | _ -> run ()

(* [launch t ~stage ~cost body] accounts one kernel under [stage] and, when
   executing, runs [body block] for every block of the grid in parallel.
   [protected] launches (the solvers' ABFT check kernels) are exempt from
   fault injection. *)
let launch ?(protected = false) t ~stage ~cost body =
  let ms = account t ~stage ~cost in
  traced t ~stage ~cost ~ms (fun () ->
      with_faults t ~protected ~stage ~cost (fun () ->
          if t.execute then
            if cost.Cost.blocks = 1 then body 0
            else
              Dompool.Domain_pool.parallel_for ~chunk:1 t.pool 0
                cost.Cost.blocks body))

(* [launch_seq] is [launch] for bodies that must see blocks in order
   (e.g. when later blocks read results of earlier ones within one launch
   would be a race; the simulator then serializes, the cost is unchanged). *)
let launch_seq ?(protected = false) t ~stage ~cost body =
  let ms = account t ~stage ~cost in
  traced t ~stage ~cost ~ms (fun () ->
      with_faults t ~protected ~stage ~cost (fun () ->
          if t.execute then
            for b = 0 to cost.Cost.blocks - 1 do
              body b
            done))

(* Host <-> device staging of [bytes]; shows up in wall clock only.
   Transfer corruption is always caught (staged planes carry checksums
   verified at unpack), so the fault path retransfers — charging the
   transfer time again — up to the relaunch budget, then escalates. *)
let transfer t bytes =
  t.peak_bytes <- Float.max t.peak_bytes bytes;
  let ms = Cost.transfer_ms t.device bytes *. ambient_slowdown () in
  t.transfer_ms <- t.transfer_ms +. ms;
  Obs.Metrics.Counter.incr (m_transfers ());
  if Obs.Tracer.enabled () then
    Obs.Tracer.instant ~cat:"transfer"
      ~args:
        [ ("bytes", Obs.Tracer.Float bytes); ("device_ms", Obs.Tracer.Float ms) ]
      "transfer";
  match t.fault with
  | None -> ()
  | Some plan ->
      let rec settle retransfers =
        match Fault.Plan.draw_transfer plan with
        | None -> ()
        | Some _ ->
            Fault.Plan.note_transfer_fault plan;
            if retransfers < Fault.Plan.max_relaunches plan then begin
              t.transfer_ms <- t.transfer_ms +. ms;
              Fault.Plan.note_retransfer plan;
              settle (retransfers + 1)
            end
            else begin
              Fault.Plan.note_escalation plan ~stage:"transfer";
              Obs.Log.warn "sim.fault_escalation"
                ~fields:
                  [
                    ("fault", Obs.Log.Str "transfer_corrupt");
                    ("stage", Obs.Log.Str "transfer");
                    ("retransfers", Obs.Log.Int retransfers);
                  ];
              raise
                (Fault.Plan.Injected (Fault.Plan.Transfer_corrupt, "transfer"))
            end
      in
      settle 0

let kernel_ms t = Profile.total_ms t.profile

let wall_ms t =
  kernel_ms t +. t.transfer_ms +. t.host_ms
  +. Cost.host_pressure_ms t.device t.peak_bytes

let launches t = Profile.total_launches t.profile

(* The per-stage rows (ms, launches, op tallies, traffic), in
   first-recorded order.  Each simulator owns its profile, so a batch of
   concurrent jobs — one (or a few) simulators per job, all sharing one
   domain pool — reads its own breakdown without seeing a neighbour's
   launches. *)
let breakdown t = Profile.rows t.profile

(* Per-stage roofline diagnostics: flops from the Table 1 multipliers,
   bytes and time terms straight from the cost model's accounting. *)
let roofline t =
  List.map
    (fun (r : Profile.row) ->
      Obs.Roofline.classify ~stage:r.Profile.stage ~ms:r.Profile.ms
        ~launches:r.Profile.launches
        ~flops:(Counter.flops t.prec r.Profile.ops)
        ~bytes:(r.Profile.cold_bytes +. r.Profile.thread_bytes)
        ~compute_ms:r.Profile.compute_ms ~memory_ms:r.Profile.memory_ms
        ~peak_gflops:t.device.Device.dp_peak_gflops)
    (Profile.rows t.profile)

(* Gigaflops over the time spent by the kernels ("kernel flops"). *)
let kernel_gflops t =
  let ms = kernel_ms t in
  if ms <= 0.0 then 0.0
  else Counter.flops t.prec (Profile.total_ops t.profile) /. (ms *. 1e6)

(* Gigaflops over the wall clock ("wall flops"). *)
let wall_gflops t =
  let ms = wall_ms t in
  if ms <= 0.0 then 0.0
  else Counter.flops t.prec (Profile.total_ops t.profile) /. (ms *. 1e6)
