(* The simulated accelerator: kernel launches execute their data-parallel
   body on a domain pool (blocks in parallel, the threads of one block
   sequentially, which preserves the data-parallel semantics of the
   algorithms), while the cost model accounts the milliseconds the same
   launch takes on a given physical device.

   With [execute = false] a launch is costed without running its body, so
   the large-dimension experiments of the paper can be timed without
   executing trillions of host flops; the test suite validates the
   numerical results with execution on at smaller dimensions. *)

type t = {
  device : Device.t;
  prec : Multidouble.Precision.tag;
  pool : Dompool.Domain_pool.t;
  mutable execute : bool;
  profile : Profile.t;
  mutable transfer_ms : float;
  mutable host_ms : float;
  mutable peak_bytes : float; (* largest resident data set, for RAM model *)
}

let create ?(execute = true) ?pool ~device ~prec () =
  let pool =
    match pool with Some p -> p | None -> Dompool.Domain_pool.get_default ()
  in
  {
    device;
    prec;
    pool;
    execute;
    profile = Profile.create ();
    transfer_ms = 0.0;
    host_ms = 0.0;
    peak_bytes = 0.0;
  }

let reset t =
  Hashtbl.reset t.profile.Profile.table;
  t.profile.Profile.order <- [];
  t.transfer_ms <- 0.0;
  t.host_ms <- 0.0;
  t.peak_bytes <- 0.0

(* [launch t ~stage ~cost body] accounts one kernel under [stage] and, when
   executing, runs [body block] for every block of the grid in parallel. *)
let launch t ~stage ~cost body =
  let ms = Cost.kernel_ms t.device t.prec cost in
  Profile.record ~count:cost.Cost.count t.profile ~stage ~ms
    ~ops:cost.Cost.ops;
  t.host_ms <-
    t.host_ms
    +. (float_of_int cost.Cost.count *. Cost.host_launch_ms t.device);
  if t.execute then
    if cost.Cost.blocks = 1 then body 0
    else
      Dompool.Domain_pool.parallel_for ~chunk:1 t.pool 0 cost.Cost.blocks body

(* [launch_seq] is [launch] for bodies that must see blocks in order
   (e.g. when later blocks read results of earlier ones within one launch
   would be a race; the simulator then serializes, the cost is unchanged). *)
let launch_seq t ~stage ~cost body =
  let ms = Cost.kernel_ms t.device t.prec cost in
  Profile.record ~count:cost.Cost.count t.profile ~stage ~ms
    ~ops:cost.Cost.ops;
  t.host_ms <-
    t.host_ms
    +. (float_of_int cost.Cost.count *. Cost.host_launch_ms t.device);
  if t.execute then
    for b = 0 to cost.Cost.blocks - 1 do
      body b
    done

(* Host <-> device staging of [bytes]; shows up in wall clock only. *)
let transfer t bytes =
  t.peak_bytes <- Float.max t.peak_bytes bytes;
  t.transfer_ms <- t.transfer_ms +. Cost.transfer_ms t.device bytes

let kernel_ms t = Profile.total_ms t.profile

let wall_ms t =
  kernel_ms t +. t.transfer_ms +. t.host_ms
  +. Cost.host_pressure_ms t.device t.peak_bytes

let launches t = Profile.total_launches t.profile

(* The per-stage kernel milliseconds, in first-recorded order.  Each
   simulator owns its profile, so a batch of concurrent jobs — one (or a
   few) simulators per job, all sharing one domain pool — reads its own
   breakdown without seeing a neighbour's launches. *)
let breakdown t =
  List.map (fun s -> (s, Profile.stage_ms t.profile s)) (Profile.stages t.profile)

(* Gigaflops over the time spent by the kernels ("kernel flops"). *)
let kernel_gflops t =
  let ms = kernel_ms t in
  if ms <= 0.0 then 0.0
  else Counter.flops t.prec (Profile.total_ops t.profile) /. (ms *. 1e6)

(* Gigaflops over the wall clock ("wall flops"). *)
let wall_gflops t =
  let ms = wall_ms t in
  if ms <= 0.0 then 0.0
  else Counter.flops t.prec (Profile.total_ops t.profile) /. (ms *. 1e6)
