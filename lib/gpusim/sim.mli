(** The simulated accelerator.

    Kernel launches execute their data-parallel body on a domain pool
    (blocks in parallel, the threads of one block sequentially), while
    the cost model accounts the milliseconds the same launch takes on the
    chosen physical device.  With [execute = false] a launch is costed
    without running its body, so the paper's largest dimensions are timed
    without executing trillions of host flops.

    Observability: when [Obs.Tracer] is recording, every launch emits a
    kernel span (grid/block dims, stage, modeled ms, op tally) and
    samples the simulated device clock onto a counter track; transfers
    emit instant events.  The process-wide [Obs.Metrics] registry always
    tallies ["sim.launches"], ["sim.transfers"] and the ["sim.kernel_ms"]
    histogram.

    Fault injection: arming a [Fault.Plan.config] at {!create} makes the
    simulator draw one potential fault per launch and per transfer from
    the plan's seeded stream.  Launch failures cost a relaunch (the cost
    model is charged again) up to the plan's budget, then escalate by
    raising [Fault.Plan.Injected]; transfer corruption retransfers the
    same way; bit-flips run the kernel and then corrupt live data
    through the {!set_corruptor} hook, to be caught (or not) by the
    solvers' detectors.  An unarmed simulator takes none of these paths
    — zero overhead when faults are disabled. *)

type t = {
  device : Device.t;
  prec : Multidouble.Precision.tag;
  pool : Dompool.Domain_pool.t;
  mutable execute : bool;
  profile : Profile.t;
  mutable transfer_ms : float;
  mutable host_ms : float;
  mutable peak_bytes : float;
  fault : Fault.Plan.t option;
  mutable corruptor : (Dompool.Prng.t -> string) option;
}

val create :
  ?execute:bool ->
  ?pool:Dompool.Domain_pool.t ->
  ?fault:Fault.Plan.config ->
  ?fault_salt:int ->
  device:Device.t ->
  prec:Multidouble.Precision.tag ->
  unit ->
  t
(** [fault] arms fault injection on this simulator; [fault_salt]
    decorrelates the fault streams of several simulators sharing one
    campaign seed (e.g. the QR and back-substitution sims of a solve). *)

val with_slowdown : float -> (unit -> 'a) -> 'a
(** [with_slowdown factor f] runs [f] with every kernel and transfer
    costed [factor] times slower — the brownout model for a degraded
    device.  Domain-local and multiplicative under nesting; the cost is
    read at accounting time on the launching domain, so concurrent jobs
    on healthy instances are unaffected.
    @raise Invalid_argument when [factor] is NaN or < 1. *)

val ambient_slowdown : unit -> float
(** The slowdown factor currently in effect on this domain (1.0 when
    none). *)

val fault_plan : t -> Fault.Plan.t option
val fault_tally : t -> Fault.Plan.tally option

val set_corruptor : t -> (Dompool.Prng.t -> string) option -> unit
(** Registers the solver-side bit-flip hook: called after a launch the
    plan marked [Bitflip] (executing sims only), it should corrupt one
    limb of the live data and return a description for the trace. *)

val reset : t -> unit
(** Clears the profile, transfers and host-side accounting. *)

val launch :
  ?protected:bool ->
  t ->
  stage:string ->
  cost:Cost.launch ->
  (int -> unit) ->
  unit
(** [launch t ~stage ~cost body] accounts one kernel under [stage] and,
    when executing, runs [body block] for every block of the grid, blocks
    in parallel on the pool.  [protected] launches (ABFT check kernels)
    are exempt from fault injection. *)

val launch_seq :
  ?protected:bool ->
  t ->
  stage:string ->
  cost:Cost.launch ->
  (int -> unit) ->
  unit
(** [launch] with the blocks run in increasing order on the calling
    domain (for bodies whose blocks must not race); same cost. *)

val transfer : t -> float -> unit
(** Stages that many bytes between host and device (wall clock only). *)

val kernel_ms : t -> float
(** Sum of the times spent by the kernels. *)

val wall_ms : t -> float
(** Kernels + transfers + host-side per-launch costs + host RAM
    pressure. *)

val launches : t -> int

val breakdown : t -> Profile.row list
(** Per-stage rows (kernel ms, launch counts, op tallies, traffic), in
    first-recorded order.  Profiles are per-simulator state: concurrent
    jobs that each create their own simulators (even on one shared pool)
    stay isolated. *)

val roofline : t -> Obs.Roofline.stage list
(** Per-stage roofline diagnostics against this simulator's device:
    flops from the Table 1 multipliers, bytes and compute/memory time
    terms straight from the cost model's accounting. *)

val kernel_gflops : t -> float
(** Total double precision flops over the kernel time. *)

val wall_gflops : t -> float
(** Same over the wall clock. *)
