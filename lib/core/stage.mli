(** Stage labels, matching the legends of the paper's tables verbatim so
    the benchmark output lines up row by row. *)

(** {1 Algorithm 2 — blocked Householder QR (Tables 3-6)} *)

val beta_v : string
val beta_rtv : string
val update_r : string
val compute_w : string
val ywt : string
val qwyt : string
val ywtc : string
val q_plus_qwy : string
val r_plus_ywtc : string

val qr_stages : string list
(** In the paper's row order. *)

(** {1 Algorithm 1 — tiled back substitution (Tables 7-9)} *)

val invert_tiles : string
val multiply_inverses : string
val back_substitution : string

val bs_stages : string list

(** {1 Extensions} *)

val apply_qt : string
(** The thin solver's on-the-fly application of the reflectors to b. *)

val matvec : string
val matvec_t : string
val iter_dot : string
val iter_axpy : string
val iter_scale : string

val iter_stages : string list
(** The kernels of the iterative engines (CG on the normal equations,
    LSQR): matrix-vector products and the BLAS-1 recurrences. *)

val abft_check : string
(** The fault-tolerant path's ABFT verification kernels.  Not part of
    {!qr_stages}/{!bs_stages}, so fault-free breakdowns are unchanged. *)
