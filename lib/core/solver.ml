(* The solver-engine abstraction: one pluggable solve path, three
   engines.

   The paper's blocked QR + tiled back substitution ([Least_squares]) is
   engine number one — a direct O(mn^2) factorization whose multiple
   double kernels sit on the compute side of the roofline.  The two
   iterative engines — conjugate gradient on the normal equations and
   LSQR — are thin loops over a staged matrix-vector product and a
   handful of BLAS-1 kernels, O(1) flops per element moved: memory-bound
   at every precision, and the natural engine for tall-skinny
   well-conditioned systems where a full factorization is overkill.

   Mixed precision enters as an *outer* refinement ladder around the
   iterative engines, reusing [Refine]'s limb-plane promote / demote
   seams: pick a starting precision from a double precision condition
   estimate of the normal matrix (a cheap low rung when the conditioning
   permits), run the engine on the demoted residual system at each rung,
   promote the correction, and climb D -> DD -> QD -> OD until the
   target precision is reached.  Convergence is tracked as a
   residual-norm history at the target precision.

   Fault tolerance: armed engines register a bit-flip corruptor over
   their device-resident state (matrix planes and recurrence vectors),
   keep a [Fault.Checksum] digest of the staged matrix, and periodically
   verify the residual recurrence against a recomputed true residual
   through protected launches.  A detected corruption restores the last
   verified checkpoint and replays the iterations since, within the
   plan's replay budget; past it the engine escalates by raising
   [Fault.Plan.Injected], which the scheduler already classifies as
   retryable.  Unarmed runs take none of these paths. *)

open Gpusim
open Mdlinalg
module P = Multidouble.Precision

type method_ = Qr_direct | Cg_normal | Lsqr

let all_methods = [ Qr_direct; Cg_normal; Lsqr ]

let method_name = function
  | Qr_direct -> "qr"
  | Cg_normal -> "cg"
  | Lsqr -> "lsqr"

let method_names = List.map method_name all_methods

let method_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "qr" | "qr_direct" | "direct" -> Qr_direct
  | "cg" | "cgnr" | "cg_normal" -> Cg_normal
  | "lsqr" -> Lsqr
  | s ->
      invalid_arg
        (Printf.sprintf "unknown solver '%s' (expected one of: %s)" s
           (String.concat ", " method_names))

let is_iterative = function Qr_direct -> false | Cg_normal | Lsqr -> true

(* The scalar instance of a (precision, realness) pair — the dispatch
   the precision ladder climbs through. *)
let scalar_of ?(complex = false) (tag : P.tag) : (module Scalar.S) =
  match (tag, complex) with
  | P.D, false -> (module Scalar.D)
  | P.DD, false -> (module Scalar.Dd)
  | P.QD, false -> (module Scalar.Qd)
  | P.OD, false -> (module Scalar.Od)
  | P.D, true -> (module Scalar.Zd)
  | P.DD, true -> (module Scalar.Zdd)
  | P.QD, true -> (module Scalar.Zqd)
  | P.OD, true -> (module Scalar.Zod)

(* The iterative story of one solve.  [residual_history] holds true
   least-squares residual 2-norms at the *target* precision: the norm
   before each rung of the ladder plus the final one, so its length is
   one more than the rung count (planning runs leave it empty). *)
type iter_info = {
  iterations : int;  (* inner iterations summed over the ladder *)
  residual_history : float list;
  ladder : (P.tag * int) list;  (* per-rung inner iteration counts *)
  ladder_start : P.tag;
  cond_estimate : float option;  (* cond1 of the double normal matrix *)
  converged : bool;
}

(* How many inner iterations a planning run charges: CG reaches the
   exact solution in at most n steps in exact arithmetic, and well past
   that the recurrences have stopped making progress. *)
let planned_iterations ~cols = max 1 (min cols 200)

(* Verify the recurrence every few iterations: often enough that a
   replay rewinds little work, rarely enough that the protected check
   launches stay a small fraction of the iteration cost. *)
let check_every = 4

(* Consecutive iterations allowed without improving on the best norm
   seen before the recurrence is declared stagnated at its attainable
   rounding level. *)
let stall_limit = 6

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module L = Least_squares.Make (K)

  type part = {
    name : string;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
  }

  type result = {
    x : V.t;
    method_ : method_;
    parts : part list;
    stages : Profile.row list;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    launches : int;
    faults : Fault.Plan.tally option;
    iter : iter_info option;
  }

  (* ---- engine one: the existing QR + BS pipeline, rewrapped ---- *)

  let qr_part = "QR"
  let bs_part = "BS"

  let of_ls (r : L.result) =
    {
      x = r.L.x;
      method_ = Qr_direct;
      parts =
        [
          {
            name = qr_part;
            kernel_ms = r.L.qr_kernel_ms;
            wall_ms = r.L.qr_wall_ms;
            kernel_gflops = r.L.qr_kernel_gflops;
            wall_gflops = r.L.qr_wall_gflops;
          };
          {
            name = bs_part;
            kernel_ms = r.L.bs_kernel_ms;
            wall_ms = r.L.bs_wall_ms;
            kernel_gflops = r.L.bs_kernel_gflops;
            wall_gflops = r.L.bs_wall_gflops;
          };
        ];
      stages = r.L.qr_stages @ r.L.bs_stages;
      kernel_ms = r.L.qr_kernel_ms +. r.L.bs_kernel_ms;
      wall_ms = r.L.qr_wall_ms +. r.L.bs_wall_ms;
      kernel_gflops = r.L.total_kernel_gflops;
      wall_gflops = r.L.total_wall_gflops;
      launches = r.L.launches;
      faults = r.L.faults;
      iter = None;
    }

  (* ---- result assembly over the ladder's simulators ---- *)

  (* Stage rows from several rungs share labels (every rung launches
     "A*v"); merge them so the report keeps one row per kernel, in
     first-seen order. *)
  let merge_rows rows =
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Profile.row) ->
        match Hashtbl.find_opt tbl r.Profile.stage with
        | None ->
            order := r.Profile.stage :: !order;
            Hashtbl.replace tbl r.Profile.stage r
        | Some acc ->
            Hashtbl.replace tbl r.Profile.stage
              {
                acc with
                Profile.ms = acc.Profile.ms +. r.Profile.ms;
                ops = Counter.add acc.Profile.ops r.Profile.ops;
                launches = acc.Profile.launches + r.Profile.launches;
                cold_bytes = acc.Profile.cold_bytes +. r.Profile.cold_bytes;
                thread_bytes =
                  acc.Profile.thread_bytes +. r.Profile.thread_bytes;
                compute_ms = acc.Profile.compute_ms +. r.Profile.compute_ms;
                memory_ms = acc.Profile.memory_ms +. r.Profile.memory_ms;
              })
      rows;
    List.rev_map (Hashtbl.find tbl) !order

  let gflops_over flops ms = if ms > 0.0 then flops /. (ms *. 1e6) else 0.0

  let result_of_sims ~method_ ~x ~iter named_sims =
    let flops =
      List.fold_left
        (fun acc (_, sim) ->
          acc
          +. Counter.flops sim.Sim.prec (Profile.total_ops sim.Sim.profile))
        0.0 named_sims
    in
    let sum f =
      List.fold_left (fun acc (_, sim) -> acc +. f sim) 0.0 named_sims
    in
    let kernel_ms = sum Sim.kernel_ms and wall_ms = sum Sim.wall_ms in
    let faults =
      List.fold_left
        (fun acc (_, sim) ->
          match (acc, Sim.fault_tally sim) with
          | acc, None -> acc
          | None, some -> some
          | Some a, Some b -> Some (Fault.Plan.merge a b))
        None named_sims
    in
    {
      x;
      method_;
      parts =
        List.map
          (fun (name, sim) ->
            {
              name;
              kernel_ms = Sim.kernel_ms sim;
              wall_ms = Sim.wall_ms sim;
              kernel_gflops = Sim.kernel_gflops sim;
              wall_gflops = Sim.wall_gflops sim;
            })
          named_sims;
      stages =
        merge_rows
          (List.concat_map (fun (_, sim) -> Sim.breakdown sim) named_sims);
      kernel_ms;
      wall_ms;
      kernel_gflops = gflops_over flops kernel_ms;
      wall_gflops = gflops_over flops wall_ms;
      launches =
        List.fold_left
          (fun acc (_, sim) -> acc + Sim.launches sim)
          0 named_sims;
      faults;
      iter = Some iter;
    }

  (* ---- the iterative engine at one rung's precision ----

     Instantiated per ladder rung with that rung's scalar; every vector
     operation is a staged kernel launch on the rung's simulator, with
     the flat limb-plane path taken whenever the scalar supports it
     (results are bit-identical to the boxed path by [Flat_kernels]'
     replay guarantee, so the choice is invisible downstream). *)

  module Engine (KE : Scalar.S) = struct
    module ME = Mat.Make (KE)
    module FK = Flat_kernels.Make (KE)

    let sb = float_of_int (8 * KE.width)
    let cx = KE.is_complex

    (* A device-resident vector, both arms behind one record: staged
       limb planes on the flat arm ([p]), host scalars on the boxed arm
       ([h]).  Whichever arm is live is the authoritative copy. *)
    type dvec = { len : int; h : KE.t array; mutable p : FK.planes option }

    let dvec_of flat arr =
      {
        len = Array.length arr;
        h = arr;
        p =
          (if flat then
             Some (FK.stage_vec ~n:(Array.length arr) ~get:(fun i -> arr.(i)))
           else None);
      }

    let dvec_zero flat n = dvec_of flat (Array.make n KE.zero)

    let vread v =
      match v.p with
      | Some pl ->
          let out = Array.make v.len KE.zero in
          FK.unstage_vec pl ~store:(fun i s -> out.(i) <- s);
          out
      | None -> Array.copy v.h

    let vrestore v arr =
      match v.p with
      | Some _ -> v.p <- Some (FK.stage_vec ~n:v.len ~get:(fun i -> arr.(i)))
      | None -> Array.blit arr 0 v.h 0 v.len

    let vcopy flat v = dvec_of flat (vread v)

    (* The staged matrix: [ah] is the pristine host copy faults never
       touch (the restage source); the working representation is either
       staged planes or a boxed copy.  The digest convicts corruption of
       exactly the words the kernels read. *)
    type dmat = {
      rows : int;
      cols : int;
      ah : KE.t array;  (* pristine row-major copy *)
      wh : KE.t array;  (* working boxed copy (the boxed-arm operand) *)
      mutable mp : FK.planes option;
      mutable digest : Fault.Checksum.t;
    }

    let mat_digest mp wh =
      match mp with
      | Some (pl : FK.planes) ->
          Fault.Checksum.of_iter (fun f ->
              Array.iter
                (fun plane ->
                  for i = 0 to Multidouble.Nd_flat.plane_dim plane - 1 do
                    f (Bigarray.Array1.unsafe_get plane i)
                  done)
                pl.FK.p)
      | None -> Fault.Checksum.of_scalars ~to_planes:KE.to_planes wh

    let dmat_of flat (a : ME.t) =
      let rows = ME.rows a and cols = ME.cols a in
      let ah = Array.copy a.ME.a in
      let wh = Array.copy a.ME.a in
      let mp =
        if flat then
          Some (FK.stage ~rows ~cols ~get:(fun i j -> ah.((i * cols) + j)))
        else None
      in
      { rows; cols; ah; wh; mp; digest = mat_digest mp wh }

    let mat_restage dm =
      (match dm.mp with
      | Some _ ->
          dm.mp <-
            Some
              (FK.stage ~rows:dm.rows ~cols:dm.cols ~get:(fun i j ->
                   dm.ah.((i * dm.cols) + j)))
      | None -> Array.blit dm.ah 0 dm.wh 0 (Array.length dm.ah));
      dm.digest <- mat_digest dm.mp dm.wh

    (* Checksum the working matrix against its staging-time digest;
       restage from the pristine copy on mismatch. *)
    let mat_repair dm =
      if not (Fault.Checksum.matches dm.digest (mat_digest dm.mp dm.wh)) then
        mat_restage dm

    (* ---- kernels: one modeled cost, the body picks the arm.  The
       boxed bodies use the exact accumulator sequences the flat plan
       replays, so the two arms are bit-identical. ---- *)

    let gemv ?(protected = false) sim ~threads ~trans (a : dmat) x y =
      let m = a.rows and n = a.cols in
      let cost =
        Cost.gemv ~trans ~complex:cx ~sb ~rows:m ~cols:n ~threads ()
      in
      let stage =
        if protected then Stage.abft_check
        else if trans then Stage.matvec_t
        else Stage.matvec
      in
      match (a.mp, x.p, y.p) with
      | Some ap, Some xp, Some yp ->
          Sim.launch ~protected sim ~stage ~cost (fun blk ->
              if trans then FK.gemv_t_block ~threads ap xp yp blk
              else FK.gemv_block ~threads ap xp yp blk)
      | _ ->
          let wh = a.wh and xh = x.h and yh = y.h in
          Sim.launch ~protected sim ~stage ~cost (fun blk ->
              let lo = blk * threads in
              if trans then begin
                let hi = min n (lo + threads) in
                for j = lo to hi - 1 do
                  let s = ref KE.zero in
                  for i = 0 to m - 1 do
                    s := KE.add !s (KE.mul (KE.conj wh.((i * n) + j)) xh.(i))
                  done;
                  yh.(j) <- !s
                done
              end
              else begin
                let hi = min m (lo + threads) in
                for i = lo to hi - 1 do
                  let s = ref KE.zero in
                  let base = i * n in
                  for k = 0 to n - 1 do
                    s := KE.add !s (KE.mul wh.(base + k) xh.(k))
                  done;
                  yh.(i) <- !s
                done
              end)

    (* Inner product conj(a).b.  Block 0 runs the whole sequential
       reduction (a fixed order, so iteration counts are bit
       deterministic); the cost still models a grid-wide reduction. *)
    let dot sim ~threads a b =
      let n = a.len in
      let cost = Cost.dot ~complex:cx ~sb ~n ~threads () in
      match (a.p, b.p) with
      | Some ap, Some bp ->
          let out = FK.alloc ~rows:1 ~cols:1 in
          Sim.launch sim ~stage:Stage.iter_dot ~cost (fun blk ->
              if blk = 0 then FK.dot ~n ap bp out 0);
          let r = ref KE.zero in
          FK.unstage_vec out ~store:(fun _ s -> r := s);
          !r
      | _ ->
          let r = ref KE.zero in
          let ah = a.h and bh = b.h in
          Sim.launch sim ~stage:Stage.iter_dot ~cost (fun blk ->
              if blk = 0 then
                for i = 0 to n - 1 do
                  r := KE.add !r (KE.mul (KE.conj ah.(i)) bh.(i))
                done);
          !r

    let staged_alpha y alpha =
      match y.p with
      | Some _ -> Some (FK.stage_vec ~n:1 ~get:(fun _ -> alpha))
      | None -> None

    (* y := y + alpha x *)
    let axpy sim ~threads alpha x y =
      let n = y.len in
      let cost = Cost.axpy ~complex:cx ~sb ~n ~threads () in
      match (staged_alpha y alpha, x.p, y.p) with
      | Some ap, Some xp, Some yp ->
          Sim.launch sim ~stage:Stage.iter_axpy ~cost (fun blk ->
              if blk = 0 then FK.axpy ~n ap xp yp)
      | _ ->
          let xh = x.h and yh = y.h in
          Sim.launch sim ~stage:Stage.iter_axpy ~cost (fun blk ->
              if blk = 0 then
                for i = 0 to n - 1 do
                  yh.(i) <- KE.add yh.(i) (KE.mul alpha xh.(i))
                done)

    (* y := x + alpha y — the direction updates of both engines. *)
    let xpay sim ~threads alpha x y =
      let n = y.len in
      let cost = Cost.axpy ~complex:cx ~sb ~n ~threads () in
      match (staged_alpha y alpha, x.p, y.p) with
      | Some ap, Some xp, Some yp ->
          Sim.launch sim ~stage:Stage.iter_axpy ~cost (fun blk ->
              if blk = 0 then FK.xpay ~n ap xp yp)
      | _ ->
          let xh = x.h and yh = y.h in
          Sim.launch sim ~stage:Stage.iter_axpy ~cost (fun blk ->
              if blk = 0 then
                for i = 0 to n - 1 do
                  yh.(i) <- KE.add (KE.mul alpha yh.(i)) xh.(i)
                done)

    (* y := alpha x (in-place safe) *)
    let scal sim ~threads alpha x y =
      let n = y.len in
      let cost = Cost.scal ~complex:cx ~sb ~n ~threads () in
      match (staged_alpha y alpha, x.p, y.p) with
      | Some ap, Some xp, Some yp ->
          Sim.launch sim ~stage:Stage.iter_scale ~cost (fun blk ->
              if blk = 0 then FK.scal ~n ap xp yp)
      | _ ->
          let xh = x.h and yh = y.h in
          Sim.launch sim ~stage:Stage.iter_scale ~cost (fun blk ->
              if blk = 0 then
                for i = 0 to n - 1 do
                  yh.(i) <- KE.mul alpha xh.(i)
                done)

    let re_float x = KE.R.to_float (KE.re x)
    let finite x = KE.is_finite x && Float.is_finite (re_float x)

    (* ---- the ABFT harness around the recurrence loops ---- *)

    type 'snap guard = {
      plan : Fault.Plan.t option;
      stage : string;
      mutable replays_left : int;
      mutable ckpt : 'snap;
      mutable ckpt_iter : int;
    }

    let guard_of sim ~stage ~snap =
      let plan = Sim.fault_plan sim in
      {
        plan;
        stage;
        replays_left =
          (match plan with Some p -> Fault.Plan.max_replays p | None -> 0);
        ckpt = snap;
        ckpt_iter = 0;
      }

    let armed g = Option.is_some g.plan

    (* Returns [true] when the run may continue from the current state;
       [false] when the checkpoint was restored — the caller rewinds its
       iteration counter to [ckpt_iter] and replays.  Escalates with
       [Fault.Plan.Injected] once the replay budget is spent, which
       bounds the replay loop. *)
    let guard_verify g ~iter ~ok ~snap ~restore =
      match g.plan with
      | None -> true
      | Some p ->
          if ok () then begin
            g.ckpt <- snap ();
            g.ckpt_iter <- iter;
            true
          end
          else begin
            Fault.Plan.note_detected p ~stage:g.stage;
            if g.replays_left > 0 then begin
              g.replays_left <- g.replays_left - 1;
              Fault.Plan.note_replay p ~stage:g.stage;
              restore g.ckpt;
              false
            end
            else begin
              Fault.Plan.note_escalation p ~stage:g.stage;
              raise (Fault.Plan.Injected (Fault.Plan.Bitflip, g.stage))
            end
          end

    (* One size-weighted bit flip across the resident state, mirroring
       the back substitution corruptor: raw plane words on the flat arm,
       a limb round-trip on the boxed arm. *)
    let corruptor (dm : dmat) (vecs : (string * dvec) list) rng =
      let flip_planes (pl : FK.planes) name idx =
        let p = Dompool.Prng.int rng (Array.length pl.FK.p) in
        let bit = Dompool.Prng.int rng 64 in
        Multidouble.Nd_flat.set pl.FK.p p idx
          (Fault.Plan.flip_bit (Multidouble.Nd_flat.get pl.FK.p p idx) bit);
        Printf.sprintf "%s[%d] plane %d bit %d (raw)" name idx p bit
      in
      let flip_boxed arr name idx =
        let planes = KE.to_planes arr.(idx) in
        let p = Dompool.Prng.int rng (Array.length planes) in
        let bit = Dompool.Prng.int rng 64 in
        planes.(p) <- Fault.Plan.flip_bit planes.(p) bit;
        arr.(idx) <- KE.of_planes planes;
        Printf.sprintf "%s[%d] plane %d bit %d" name idx p bit
      in
      let msize = Array.length dm.ah in
      let total = List.fold_left (fun acc (_, v) -> acc + v.len) msize vecs in
      let pick = Dompool.Prng.int rng (max 1 total) in
      if pick < msize then
        match dm.mp with
        | Some pl -> flip_planes pl "A" pick
        | None -> flip_boxed dm.wh "A" pick
      else begin
        let rec find off = function
          | [] -> assert false
          | (name, v) :: rest ->
              if pick < off + v.len then (name, v, pick - off)
              else find (off + v.len) rest
        in
        let name, v, idx = find msize vecs in
        match v.p with
        | Some pl -> flip_planes pl name idx
        | None -> flip_boxed v.h name idx
      end

    let arm_corruptor sim dm vecs =
      match Sim.fault_plan sim with
      | Some _ -> Sim.set_corruptor sim (Some (corruptor dm vecs))
      | None -> ()

    let stage_operands sim dm =
      Sim.transfer sim
        ((float_of_int ((dm.rows * dm.cols) + dm.rows + dm.cols) +. 1.0)
        *. sb)

    (* ---- conjugate gradient on the normal equations A^H A x = A^H b.

       State: x, r (the normal-equations residual recurrence), p (the
       direction) over n; w = A p over m; q = A^H w over n.  The
       history records norms of the recurrence A^H (b - A x), the
       quantity CG drives to zero (the plain residual ||b - A x|| stays
       at its nonzero minimum on inconsistent systems). ---- *)
    let cg sim ~(a : ME.t) ~(b : KE.t array) ~tile ~max_iter ~rtol =
      let m = ME.rows a and n = ME.cols a in
      let threads = max 1 tile in
      let flat = sim.Sim.execute && FK.available () in
      let dm = dmat_of flat a in
      stage_operands sim dm;
      let bd = dvec_of flat (Array.copy b) in
      let x = dvec_zero flat n in
      let r = dvec_zero flat n in
      let w = dvec_zero flat m in
      let q = dvec_zero flat n in
      gemv sim ~threads ~trans:true dm bd r;
      let p = vcopy flat r in
      arm_corruptor sim dm [ ("x", x); ("r", r); ("p", p); ("w", w); ("q", q) ];
      let rho = ref (dot sim ~threads r r) in
      let rnorm0 = Float.sqrt (Float.max 0.0 (re_float !rho)) in
      let floor_ = Float.max (rtol *. rnorm0) (Float.min_float *. 16.0) in
      let rnorm = ref rnorm0 in
      let history = ref [ rnorm0 ] in
      let iter = ref 0 in
      let breakdown = ref false in
      let stall = ref 0 in
      let best = ref rnorm0 in
      let snap () =
        (vread x, vread r, vread p, !rho, !rnorm, (!stall, !best), !history)
      in
      let restore (sx, sr, sp, srho, srn, (sst, sbe), sh) =
        vrestore x sx;
        vrestore r sr;
        vrestore p sp;
        rho := srho;
        rnorm := srn;
        stall := sst;
        best := sbe;
        history := sh;
        mat_repair dm
      in
      let g = guard_of sim ~stage:"cg.recurrence" ~snap:(snap ()) in
      (* The recomputed truth: q_true = A^H (b - A x) through protected
         launches, compared elementwise against the r recurrence. *)
      let recurrence_ok () =
        mat_repair dm;
        if not (finite !rho) then false
        else begin
          let t = dvec_zero flat m in
          let qt = dvec_zero flat n in
          gemv ~protected:true sim ~threads ~trans:false dm x t;
          let th = vread t in
          let rd =
            dvec_of flat (Array.mapi (fun i bi -> KE.sub bi th.(i)) b)
          in
          gemv ~protected:true sim ~threads ~trans:true dm rd qt;
          let qh = vread qt and rh = vread r in
          let slack = Float.sqrt KE.R.eps *. Float.max 1.0 rnorm0 in
          let ok = ref true in
          Array.iteri
            (fun i qi ->
              let d = KE.R.to_float (KE.abs (KE.sub qi rh.(i))) in
              if not (Float.is_finite d && d <= slack) then ok := false)
            qh;
          !ok
        end
      in
      let verify () =
        if not (guard_verify g ~iter:!iter ~ok:recurrence_ok ~snap ~restore)
        then begin
          iter := g.ckpt_iter;
          breakdown := false
        end
      in
      let continue_ = ref true in
      while !continue_ do
        while (not !breakdown) && !iter < max_iter && !rnorm > floor_ do
          gemv sim ~threads ~trans:false dm p w;
          gemv sim ~threads ~trans:true dm w q;
          let pq = dot sim ~threads p q in
          if KE.is_zero pq || not (finite pq) then breakdown := true
          else begin
            let alpha = KE.div !rho pq in
            axpy sim ~threads alpha p x;
            axpy sim ~threads (KE.neg alpha) q r;
            let rho' = dot sim ~threads r r in
            let beta = KE.div rho' !rho in
            xpay sim ~threads beta r p;
            rho := rho';
            rnorm := Float.sqrt (Float.max 0.0 (re_float rho'));
            incr iter;
            history := !rnorm :: !history;
            (* Rounding stagnation: the recurrence has reached its
               attainable level when the norm stops making relative
               progress on the best seen (norms may oscillate while
               converging, so only a sustained failure stops the
               loop). *)
            if !rnorm < 0.99 *. !best then begin
              best := !rnorm;
              stall := 0
            end
            else incr stall;
            if !stall >= stall_limit then breakdown := true;
            if armed g && !iter mod check_every = 0 then verify ()
          end
        done;
        (* Loop exit (converged, iteration cap, breakdown, or a NaN that
           poisoned [rnorm]): verify the tail since the last checkpoint.
           A restore rewinds and re-enters; the replay budget bounds the
           number of re-entries. *)
        if armed g && (!iter > g.ckpt_iter || !breakdown) then begin
          let before = !iter and was = !breakdown in
          verify ();
          continue_ := !iter < before || was <> !breakdown
        end
        else continue_ := false
      done;
      Sim.set_corruptor sim None;
      (vread x, !iter, List.rev !history)

    (* ---- LSQR (Paige & Saunders): Golub-Kahan bidiagonalization with
       the Givens rotations on the host, every vector operation a staged
       kernel.  [phibar] is the estimate of ||b - A x|| the recurrence
       maintains — the quantity the ABFT check verifies against a
       recomputed true residual. ---- *)
    let lsqr sim ~(a : ME.t) ~(b : KE.t array) ~tile ~max_iter ~rtol =
      let m = ME.rows a and n = ME.cols a in
      let threads = max 1 tile in
      let flat = sim.Sim.execute && FK.available () in
      let dm = dmat_of flat a in
      stage_operands sim dm;
      let u = dvec_of flat (Array.copy b) in
      let v = dvec_zero flat n in
      let w = dvec_zero flat n in
      let x = dvec_zero flat n in
      let tm = dvec_zero flat m in
      let tn = dvec_zero flat n in
      arm_corruptor sim dm
        [ ("x", x); ("u", u); ("v", v); ("w", w); ("tm", tm); ("tn", tn) ];
      let vnorm vec = KE.R.sqrt (KE.re (dot sim ~threads vec vec)) in
      let inv_scale vec nrm =
        scal sim ~threads (KE.of_real (KE.R.div KE.R.one nrm)) vec vec
      in
      let rneg = KE.R.neg in
      let finite_r s = Float.is_finite (KE.R.to_float s) in
      let beta = ref (vnorm u) in
      let beta0 = KE.R.to_float !beta in
      let history = ref [ Float.max beta0 0.0 ] in
      if beta0 = 0.0 || not (Float.is_finite beta0) then begin
        Sim.set_corruptor sim None;
        (vread x, 0, List.rev !history)
      end
      else begin
        inv_scale u !beta;
        gemv sim ~threads ~trans:true dm u v;
        let alpha = ref (vnorm v) in
        if KE.R.to_float !alpha = 0.0 then begin
          Sim.set_corruptor sim None;
          (vread x, 0, List.rev !history)
        end
        else begin
          inv_scale v !alpha;
          vrestore w (vread v);
          let phibar = ref !beta in
          let rhobar = ref !alpha in
          let floor_ = Float.max (rtol *. beta0) (Float.min_float *. 16.0) in
          let resid = ref beta0 in
          let iter = ref 0 in
          let breakdown = ref false in
          let stall = ref 0 in
          let best = ref beta0 in
          let snap () =
            ( vread x,
              vread u,
              vread v,
              vread w,
              (!alpha, !phibar, !rhobar),
              (!resid, !stall, !best),
              !history )
          in
          let restore (sx, su, sv, sw, (sa, sp, sr), (srs, sst, sbe), sh) =
            vrestore x sx;
            vrestore u su;
            vrestore v sv;
            vrestore w sw;
            alpha := sa;
            phibar := sp;
            rhobar := sr;
            resid := srs;
            stall := sst;
            best := sbe;
            history := sh;
            mat_repair dm
          in
          let g = guard_of sim ~stage:"lsqr.recurrence" ~snap:(snap ()) in
          let recurrence_ok () =
            mat_repair dm;
            if not (finite_r !phibar && finite_r !alpha && finite_r !rhobar)
            then false
            else begin
              let t = dvec_zero flat m in
              gemv ~protected:true sim ~threads ~trans:false dm x t;
              let th = vread t in
              let rn = ref KE.R.zero in
              Array.iteri
                (fun i bi -> rn := KE.R.add !rn (KE.norm2 (KE.sub bi th.(i))))
                b;
              let rn = KE.R.to_float (KE.R.sqrt !rn) in
              let slack = Float.sqrt KE.R.eps *. Float.max 1.0 beta0 in
              Float.is_finite rn
              && Float.abs (rn -. Float.abs (KE.R.to_float !phibar)) <= slack
            end
          in
          let verify () =
            if
              not
                (guard_verify g ~iter:!iter ~ok:recurrence_ok ~snap ~restore)
            then begin
              iter := g.ckpt_iter;
              breakdown := false
            end
          in
          let continue_ = ref true in
          while !continue_ do
            while (not !breakdown) && !iter < max_iter && !resid > floor_ do
              (* u := A v - alpha u;  beta := ||u||;  u /= beta *)
              gemv sim ~threads ~trans:false dm v tm;
              xpay sim ~threads (KE.of_real (rneg !alpha)) tm u;
              beta := vnorm u;
              if KE.R.to_float !beta = 0.0 || not (finite_r !beta) then
                breakdown := true
              else begin
                inv_scale u !beta;
                (* v := A^H u - beta v;  alpha := ||v||;  v /= alpha *)
                gemv sim ~threads ~trans:true dm u tn;
                xpay sim ~threads (KE.of_real (rneg !beta)) tn v;
                alpha := vnorm v;
                if KE.R.to_float !alpha = 0.0 || not (finite_r !alpha) then
                  breakdown := true
                else begin
                  inv_scale v !alpha;
                  (* The Givens rotation eliminating beta from the lower
                     bidiagonal, on the host. *)
                  let rot =
                    KE.R.sqrt
                      (KE.R.add
                         (KE.R.mul !rhobar !rhobar)
                         (KE.R.mul !beta !beta))
                  in
                  let c = KE.R.div !rhobar rot in
                  let s = KE.R.div !beta rot in
                  let theta = KE.R.mul s !alpha in
                  rhobar := rneg (KE.R.mul c !alpha);
                  let phi = KE.R.mul c !phibar in
                  phibar := KE.R.mul s !phibar;
                  (* x += (phi/rho) w;  w := v - (theta/rho) w *)
                  axpy sim ~threads (KE.of_real (KE.R.div phi rot)) w x;
                  xpay sim ~threads
                    (KE.of_real (rneg (KE.R.div theta rot)))
                    v w;
                  incr iter;
                  resid := Float.abs (KE.R.to_float !phibar);
                  history := Float.max !resid 0.0 :: !history;
                  if !resid < 0.99 *. !best then begin
                    best := !resid;
                    stall := 0
                  end
                  else incr stall;
                  if !stall >= stall_limit then breakdown := true;
                  if armed g && !iter mod check_every = 0 then verify ()
                end
              end
            done;
            if armed g && (!iter > g.ckpt_iter || !breakdown) then begin
              let before = !iter and was = !breakdown in
              verify ();
              continue_ := !iter < before || was <> !breakdown
            end
            else continue_ := false
          done;
          Sim.set_corruptor sim None;
          (vread x, !iter, List.rev !history)
        end
      end
  end

  (* ---- the precision ladder around the iterative engines ---- *)

  (* Roughly sixteen decimal digits per limb word, minus a safety
     margin: the smallest precision whose digits cover the estimated
     loss [log10 cond(A^H A)] plus the margin starts the ladder. *)
  let start_margin = 6.0

  let pick_start ~digits =
    let target_limbs = P.limbs K.prec in
    let fits tag =
      P.limbs tag <= target_limbs
      && (16.0 *. float_of_int (P.limbs tag)) -. start_margin >= digits
    in
    match List.find_opt fits P.all with Some t -> t | None -> K.prec

  (* cond1 of the double-precision normal matrix: cond(A)^2, the
     conditioning CG on the normal equations actually sees (an upper
     bound on what LSQR sees).  Runs on the host in plain double — the
     cheap estimate the ladder start is allowed to be wrong about, since
     a too-low rung only costs wasted inner iterations, never
     accuracy. *)
  let estimate_cond (a : M.t) =
    let module KD = (val scalar_of ~complex:K.is_complex P.D : Scalar.S) in
    let module Rf = Refine.Make_scalar (KD) (K) in
    let module CD = Cond.Make (KD) in
    let ad = Rf.demote_mat a in
    let ata = Rf.ML.matmul (Rf.ML.adjoint ad) ad in
    match KD.R.to_float (CD.cond1 ata) with
    | c when Float.is_finite c && c > 0.0 -> c
    | _ -> Float.infinity
    | exception _ -> Float.infinity

  let rungs_from start =
    let target = P.limbs K.prec in
    List.filter
      (fun t -> P.limbs t >= P.limbs start && P.limbs t <= target)
      P.all

  let solve_iter method_ ?fault ?ladder_start ?max_iterations ~device
      ~(a : M.t) ~(b : V.t) ~tile () =
    let m = M.rows a and n = M.cols a in
    if m < n then invalid_arg "Solver: more columns than rows";
    if Array.length b <> m then invalid_arg "Solver: rhs length mismatch";
    let cond_estimate, start =
      match ladder_start with
      | Some t ->
          if P.limbs t > P.limbs K.prec then
            invalid_arg "Solver: ladder_start above the target precision";
          (None, t)
      | None ->
          if K.prec = P.D then (None, P.D)
          else
            let c = estimate_cond a in
            let digits =
              if c = Float.infinity then Float.infinity else Float.log10 c
            in
            (Some c, pick_start ~digits)
    in
    let max_iter =
      match max_iterations with Some i -> max 1 i | None -> max 8 (4 * n)
    in
    let x = V.create n in
    let history = ref [] in
    let ladder = ref [] in
    let sims = ref [] in
    let total_iters = ref 0 in
    List.iteri
      (fun idx tag ->
        let r_t = V.sub b (M.matvec a x) in
        history := K.R.to_float (V.norm r_t) :: !history;
        let module KE = (val scalar_of ~complex:K.is_complex tag : Scalar.S)
        in
        let module Rf = Refine.Make_scalar (KE) (K) in
        let module E = Engine (KE) in
        let sim =
          Sim.create ~execute:true ?fault ~fault_salt:(16 + idx) ~device
            ~prec:tag ()
        in
        let a_lo = Rf.demote_mat a in
        let b_lo = Array.map Rf.demote r_t in
        let rtol =
          let e = KE.R.eps *. float_of_int n in
          if tag = K.prec then 4.0 *. e else 16.0 *. e
        in
        let run = match method_ with Cg_normal -> E.cg | _ -> E.lsqr in
        let dx, iters, _ = run sim ~a:a_lo ~b:b_lo ~tile ~max_iter ~rtol in
        Array.iteri (fun i d -> x.(i) <- K.add x.(i) (Rf.promote d)) dx;
        let label =
          Printf.sprintf "%s@%s"
            (String.uppercase_ascii (method_name method_))
            (P.label tag)
        in
        sims := (label, sim) :: !sims;
        ladder := (tag, iters) :: !ladder;
        total_iters := !total_iters + iters)
      (rungs_from start);
    let r = V.sub b (M.matvec a x) in
    let rnorm = K.R.to_float (V.norm r) in
    history := rnorm :: !history;
    (* Least-squares convergence is the normal-equations residual
       A^H r = 0, tested against its attainable rounding level at the
       target precision: ||A^H r|| is O(eps ||A|| (||A|| ||x|| + ||b||))
       for a backward-stable x. *)
    let gnorm = K.R.to_float (V.norm (M.matvec (M.adjoint a) r)) in
    let anorm = K.R.to_float (M.frobenius a) in
    let bnorm = K.R.to_float (V.norm b) in
    let xnorm = K.R.to_float (V.norm x) in
    let converged =
      Float.is_finite rnorm
      && gnorm
         <= (256.0 *. K.R.eps *. float_of_int m *. anorm
            *. ((anorm *. xnorm) +. bnorm))
            +. Float.min_float
    in
    (* Corruption of a direction vector degrades convergence without
       ever breaking the recurrence consistency the inner checks verify
       (r still tracks the true residual — of a slower solve).  The
       final certification is the backstop: an armed run that misses it
       escalates into the caller's retry classification instead of
       returning a silently degraded solution.  Unarmed non-convergence
       is a numerical property and is reported, not raised. *)
    if (not converged) && Option.is_some fault then begin
      (match List.find_map (fun (_, sim) -> Sim.fault_plan sim) !sims with
      | Some p ->
          Fault.Plan.note_detected p ~stage:"solver.converged";
          Fault.Plan.note_escalation p ~stage:"solver.converged"
      | None -> ());
      raise (Fault.Plan.Injected (Fault.Plan.Bitflip, "solver.converged"))
    end;
    let iter =
      {
        iterations = !total_iters;
        residual_history = List.rev !history;
        ladder = List.rev !ladder;
        ladder_start = start;
        cond_estimate;
        converged;
      }
    in
    result_of_sims ~method_ ~x ~iter (List.rev !sims)

  (* ---- planning (cost accounting only, from the dimensions) ---- *)

  let plan_iter method_ ?fault ?iterations ~device ~rows ~cols ~tile () =
    let sim =
      Sim.create ~execute:false ?fault ~fault_salt:16 ~device ~prec:K.prec ()
    in
    let sb = float_of_int (8 * K.width) in
    let threads = max 1 tile in
    let cx = K.is_complex in
    Sim.transfer sim
      ((float_of_int ((rows * cols) + rows + cols) +. 1.0) *. sb);
    let iters =
      match iterations with
      | Some i -> max 1 i
      | None -> planned_iterations ~cols
    in
    let launch stage cost = Sim.launch sim ~stage ~cost (fun _ -> ()) in
    let gemv_n () =
      launch Stage.matvec (Cost.gemv ~complex:cx ~sb ~rows ~cols ~threads ())
    and gemv_t () =
      launch Stage.matvec_t
        (Cost.gemv ~trans:true ~complex:cx ~sb ~rows ~cols ~threads ())
    and dot_ n =
      launch Stage.iter_dot (Cost.dot ~complex:cx ~sb ~n ~threads ())
    and axpy_ n =
      launch Stage.iter_axpy (Cost.axpy ~complex:cx ~sb ~n ~threads ())
    and scal_ n =
      launch Stage.iter_scale (Cost.scal ~complex:cx ~sb ~n ~threads ())
    in
    (match method_ with
    | Cg_normal ->
        gemv_t ();
        dot_ cols;
        for _ = 1 to iters do
          gemv_n ();
          gemv_t ();
          dot_ cols;
          axpy_ cols;
          axpy_ cols;
          dot_ cols;
          axpy_ cols
        done
    | Lsqr ->
        dot_ rows;
        scal_ rows;
        gemv_t ();
        dot_ cols;
        scal_ cols;
        for _ = 1 to iters do
          gemv_n ();
          axpy_ rows;
          dot_ rows;
          scal_ rows;
          gemv_t ();
          axpy_ cols;
          dot_ cols;
          scal_ cols;
          axpy_ cols;
          axpy_ cols
        done
    | Qr_direct -> assert false);
    let label =
      Printf.sprintf "%s@%s"
        (String.uppercase_ascii (method_name method_))
        (P.label K.prec)
    in
    let iter =
      {
        iterations = iters;
        residual_history = [];
        ladder = [ (K.prec, iters) ];
        ladder_start = K.prec;
        cond_estimate = None;
        converged = false;
      }
    in
    result_of_sims ~method_ ~x:(V.create 0) ~iter [ (label, sim) ]

  (* ---- the pluggable solve path ---- *)

  let solve ~method_ ?(execute = true) ?fault ?ladder_start ?max_iterations
      ~device ~(a : M.t) ~(b : V.t) ~tile () =
    match method_ with
    | Qr_direct ->
        let thin = M.rows a > M.cols a in
        of_ls
          ((if thin then L.solve_thin else L.solve)
             ~execute ?fault ~device ~a ~b ~tile ())
    | Cg_normal | Lsqr ->
        if execute then
          solve_iter method_ ?fault ?ladder_start ?max_iterations ~device ~a
            ~b ~tile ()
        else
          plan_iter method_ ?fault ?iterations:max_iterations ~device
            ~rows:(M.rows a) ~cols:(M.cols a) ~tile ()

  let plan ~method_ ?fault ?iterations ~device ~rows ~cols ~tile () =
    match method_ with
    | Qr_direct ->
        of_ls
          ((if rows > cols then L.plan_thin else L.plan)
             ?fault ~device ~rows ~cols ~tile ())
    | Cg_normal | Lsqr ->
        plan_iter method_ ?fault ?iterations ~device ~rows ~cols ~tile ()
end
