(** The solver-engine abstraction: one pluggable solve path, three
    engines behind it.

    [Qr_direct] is the paper's blocked QR + tiled back substitution
    ([Least_squares]) — the compute-bound direct factorization.
    [Cg_normal] (conjugate gradient on the normal equations) and [Lsqr]
    are iterative engines: thin loops over a staged matrix-vector
    product and BLAS-1 kernels — memory-bound at double precision and
    double double, drifting compute-bound as the Table 1 multipliers
    grow — wrapped in a D -> DD -> QD -> OD refinement ladder that
    reuses [Refine]'s limb-plane promote / demote seams.  All three return the same
    {!Make.result}, so everything downstream (reports, scheduler,
    fleet placement, CLI) dispatches on the method value alone. *)

type method_ = Qr_direct | Cg_normal | Lsqr

val all_methods : method_ list

val method_name : method_ -> string
(** ["qr"], ["cg"], ["lsqr"] — the wire names used by reports, job
    files and the command line. *)

val method_names : string list

val method_of_string : string -> method_
(** Inverse of {!method_name} (also accepts a few aliases:
    ["qr_direct"], ["direct"], ["cgnr"], ["cg_normal"]).
    @raise Invalid_argument on unknown names. *)

val is_iterative : method_ -> bool

val scalar_of :
  ?complex:bool -> Multidouble.Precision.tag -> (module Mdlinalg.Scalar.S)
(** The scalar instance of a (precision, realness) pair — the dispatch
    the precision ladder climbs through. *)

type iter_info = {
  iterations : int;  (** inner iterations summed over the ladder *)
  residual_history : float list;
      (** true least-squares residual 2-norms at the target precision:
          one before each rung plus the final one (empty for planning
          runs) *)
  ladder : (Multidouble.Precision.tag * int) list;
      (** per-rung inner iteration counts, in climb order *)
  ladder_start : Multidouble.Precision.tag;
  cond_estimate : float option;
      (** cond1 of the double-precision normal matrix, when the ladder
          start was chosen automatically *)
  converged : bool;
      (** the normal-equations residual met the forward-error bound at
          the target precision (always [false] for planning runs) *)
}

val planned_iterations : cols:int -> int
(** The inner iteration count a planning run charges when none is
    given: min(n, 200) — CG reaches the exact solution in at most n
    steps in exact arithmetic. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type part = {
    name : string;  (** ["QR"] / ["BS"], or ["CG@2d"]-style rung labels *)
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
  }

  type result = {
    x : Mdlinalg.Vec.Make(K).t;
    method_ : method_;
    parts : part list;
    stages : Gpusim.Profile.row list;
        (** per-kernel rows, merged across the ladder's simulators *)
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    launches : int;
    faults : Fault.Plan.tally option;
    iter : iter_info option;  (** [None] exactly for [Qr_direct] *)
  }

  val qr_part : string
  val bs_part : string

  val of_ls : Least_squares.Make(K).result -> result
  (** Wrap a direct-solver result into the common shape. *)

  val solve :
    method_:method_ ->
    ?execute:bool ->
    ?fault:Fault.Plan.config ->
    ?ladder_start:Multidouble.Precision.tag ->
    ?max_iterations:int ->
    device:Gpusim.Device.t ->
    a:Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    unit ->
    result
  (** Minimize ||b - a x||_2 with the chosen engine.  [Qr_direct] runs
      the economy (thin) factorization when the system is tall and the
      full one when square.  The iterative engines run the refinement
      ladder from [ladder_start] (default: chosen from a double
      precision condition estimate of the normal matrix) up to [K]'s
      precision; [max_iterations] caps the inner iterations per rung
      (default 4n).  With [execute = false] the iterative engines
      delegate to {!plan} with [max_iterations] as the charged
      iteration count.
      @raise Invalid_argument when the matrix has more columns than
      rows or the right-hand side length mismatches. *)

  val plan :
    method_:method_ ->
    ?fault:Fault.Plan.config ->
    ?iterations:int ->
    device:Gpusim.Device.t ->
    rows:int ->
    cols:int ->
    tile:int ->
    unit ->
    result
  (** Cost accounting only, from the dimensions: the direct engine's
      plan, or one modeled rung of [iterations] (default
      {!planned_iterations}) iterative sweeps at [K]'s precision. *)
end
