(** Algorithm 1 of the paper: tiled accelerated back substitution.

    The upper triangular Nn-by-Nn matrix is cut into N diagonal tiles of
    size n; stage 1 inverts all diagonal tiles at once (thread k of each
    block solves U v = e_k), stage 2 alternates multiplications with the
    inverses and simultaneous right-hand-side updates.  Replacing the
    final division by a multiplication with a precomputed inverse is what
    exposes enough data parallelism; the launch count is 1 + N(N+1)/2.

    Under an armed fault plan every solved tile is ABFT-verified against
    a host recompute (plus finiteness and, on the flat path, raw-limb
    renorm-invariant checks), the constant U planes are convicted by a
    running checksum, and the in-place right-hand-side updates snapshot
    their prefix so a detected corruption replays the launch; exhausted
    budgets (or a corrupted U) escalate with [Fault.Plan.Injected]. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type result = {
    x : Mdlinalg.Vec.Make(K).t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    stages : Gpusim.Profile.row list;  (** in {!Stage.bs_stages} order *)
    launches : int;
    faults : Fault.Plan.tally option;  (** when the sim armed a plan *)
  }

  val solve :
    Gpusim.Sim.t ->
    Mdlinalg.Mat.Make(K).t ->
    Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    Mdlinalg.Vec.Make(K).t
  (** [solve sim u b ~tile] solves U x = b for upper triangular [u] on
      the simulator; [tile] must divide the dimension
      ([Invalid_argument] otherwise). *)

  val plan : Gpusim.Sim.t -> dim:int -> tile:int -> unit
  (** Cost accounting only: no data is touched or allocated. *)

  val run :
    ?execute:bool ->
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    u:Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    unit ->
    result
  (** One-call wrapper: fresh simulator, solve, collect the timings. *)

  val run_plan :
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    dim:int ->
    tile:int ->
    unit ->
    result
  (** Timing-only run from the dimensions alone ([x] is empty). *)
end
