(** Algorithm 1 of the paper: tiled accelerated back substitution.

    The upper triangular Nn-by-Nn matrix is cut into N diagonal tiles of
    size n; stage 1 inverts all diagonal tiles at once (thread k of each
    block solves U v = e_k), stage 2 alternates multiplications with the
    inverses and simultaneous right-hand-side updates.  Replacing the
    final division by a multiplication with a precomputed inverse is what
    exposes enough data parallelism; the launch count is 1 + N(N+1)/2. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type result = {
    x : Mdlinalg.Vec.Make(K).t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    stages : Gpusim.Profile.row list;  (** in {!Stage.bs_stages} order *)
    launches : int;
  }

  val solve :
    Gpusim.Sim.t ->
    Mdlinalg.Mat.Make(K).t ->
    Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    Mdlinalg.Vec.Make(K).t
  (** [solve sim u b ~tile] solves U x = b for upper triangular [u] on
      the simulator; [tile] must divide the dimension
      ([Invalid_argument] otherwise). *)

  val plan : Gpusim.Sim.t -> dim:int -> tile:int -> unit
  (** Cost accounting only: no data is touched or allocated. *)

  val run :
    ?execute:bool ->
    device:Gpusim.Device.t ->
    u:Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    unit ->
    result
  (** One-call wrapper: fresh simulator, solve, collect the timings. *)

  val run_plan :
    device:Gpusim.Device.t -> dim:int -> tile:int -> unit -> result
  (** Timing-only run from the dimensions alone ([x] is empty). *)
end
