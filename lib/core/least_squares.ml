(* The least squares solver of the paper: blocked accelerated Householder
   QR (Algorithm 2) followed by the tiled accelerated back substitution
   (Algorithm 1) on R x = Q^H b.

   The QR decomposition has cubic cost versus the quadratic cost of the
   back substitution, so at dimension 1,024 the QR dominates and the
   lower performance of the back substitution in small dimensions does
   not prevent teraflop performance of the solver (§4.9). *)

open Gpusim
open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module Qr = Blocked_qr.Make (K)
  module Bs = Tiled_back_sub.Make (K)

  let sb = float_of_int (8 * K.width)

  type result = {
    x : V.t;
    qr_kernel_ms : float;
    qr_wall_ms : float;
    bs_kernel_ms : float;
    bs_wall_ms : float;
    qr_kernel_gflops : float;
    qr_wall_gflops : float;
    bs_kernel_gflops : float;
    bs_wall_gflops : float;
    total_kernel_gflops : float;
    total_wall_gflops : float;
    qr_stages : Gpusim.Profile.row list;
    bs_stages : Gpusim.Profile.row list;
    launches : int;
    faults : Fault.Plan.tally option;
  }

  (* Q^H b on the device: one matvec kernel, accounted with the QR. *)
  let launch_qtb qr_sim ~mrows ~n ~tile body =
    let f = float_of_int in
    let o =
      let o = Counter.make ~adds:(f n *. f mrows) ~muls:(f n *. f mrows) () in
      if K.is_complex then Counter.complexify o else o
    in
    let cost =
      Cost.launch
        ~blocks:(max 1 ((n + tile - 1) / tile))
        ~threads:tile
        ~cold_bytes:((f (mrows * n) +. (2.0 *. f mrows)) *. sb)
        ~thread_bytes:(2.0 *. f (mrows * n) *. sb)
        ~working_set:(f mrows *. f n *. 8.0)
        ~strided:true o
    in
    Sim.launch qr_sim ~stage:"Q^T*b" ~cost body

  let result_of qr_sim bs_sim x =
    let total_flops =
      Counter.flops K.prec (Profile.total_ops qr_sim.Sim.profile)
      +. Counter.flops K.prec (Profile.total_ops bs_sim.Sim.profile)
    in
    let qr_k = Sim.kernel_ms qr_sim and qr_w = Sim.wall_ms qr_sim in
    let bs_k = Sim.kernel_ms bs_sim and bs_w = Sim.wall_ms bs_sim in
    {
      x;
      qr_kernel_ms = qr_k;
      qr_wall_ms = qr_w;
      bs_kernel_ms = bs_k;
      bs_wall_ms = bs_w;
      qr_kernel_gflops = Sim.kernel_gflops qr_sim;
      qr_wall_gflops = Sim.wall_gflops qr_sim;
      bs_kernel_gflops = Sim.kernel_gflops bs_sim;
      bs_wall_gflops = Sim.wall_gflops bs_sim;
      total_kernel_gflops = total_flops /. ((qr_k +. bs_k) *. 1e6);
      total_wall_gflops = total_flops /. ((qr_w +. bs_w) *. 1e6);
      qr_stages = Sim.breakdown qr_sim;
      bs_stages = Sim.breakdown bs_sim;
      launches = Sim.launches qr_sim + Sim.launches bs_sim;
      faults =
        (match (Sim.fault_tally qr_sim, Sim.fault_tally bs_sim) with
        | None, None -> None
        | qt, bt ->
            Some
              (Fault.Plan.merge
                 (Option.value ~default:Fault.Plan.zero_tally qt)
                 (Option.value ~default:Fault.Plan.zero_tally bt)));
    }

  (* [solve ~device ~a ~b ~tile] minimizes ||b - a x||_2; [a] must have at
     least as many rows as columns, and the column count must be a
     multiple of [tile]. *)
  let solve ?(execute = true) ?fault ~device ~(a : M.t) ~(b : V.t) ~tile () =
    let n = M.cols a in
    let mrows = M.rows a in
    (* The QR phase runs on its own simulator so the phases are timed
       apart, as in Table 10; distinct fault salts keep the two phases'
       fault streams independent under one campaign seed. *)
    let qr_sim = Sim.create ~execute ?fault ~fault_salt:1 ~device ~prec:K.prec () in
    let q, r = Qr.factor qr_sim a ~tile in
    let qtb = V.create n in
    launch_qtb qr_sim ~mrows ~n ~tile (fun blk ->
        let lo = blk * tile in
        let hi = min n (lo + tile) in
        for j = lo to hi - 1 do
          let s = ref K.zero in
          for i = 0 to mrows - 1 do
            s := K.add !s (K.mul (K.conj (M.get q i j)) b.(i))
          done;
          qtb.(j) <- !s
        done);
    (* Back substitution phase on R[0:n, 0:n] x = (Q^H b)[0:n]. *)
    let bs_sim = Sim.create ~execute ?fault ~fault_salt:2 ~device ~prec:K.prec () in
    let x =
      if execute then begin
        let rn = M.sub_matrix r ~r0:0 ~r1:n ~c0:0 ~c1:n in
        Bs.solve bs_sim rn qtb ~tile
      end
      else begin
        Bs.plan bs_sim ~dim:n ~tile;
        V.create 0
      end
    in
    result_of qr_sim bs_sim x

  (* The economy ("thin") solver: the reflectors are applied to b during
     the factorization and Q is never formed — the xGELS shape.  Saves
     the Q*WY^T update, the dominant kernel of the full factorization. *)
  let solve_thin ?(execute = true) ?fault ~device ~(a : M.t) ~(b : V.t) ~tile () =
    let n = M.cols a in
    let qr_sim = Sim.create ~execute ?fault ~fault_salt:1 ~device ~prec:K.prec () in
    let qtb_full = V.copy b in
    let r = Qr.factor_thin qr_sim a ~b:qtb_full ~tile in
    let bs_sim = Sim.create ~execute ?fault ~fault_salt:2 ~device ~prec:K.prec () in
    let x =
      if execute then begin
        let rn = M.sub_matrix r ~r0:0 ~r1:n ~c0:0 ~c1:n in
        Bs.solve bs_sim rn (Array.sub qtb_full 0 n) ~tile
      end
      else begin
        Bs.plan bs_sim ~dim:n ~tile;
        V.create 0
      end
    in
    result_of qr_sim bs_sim x

  let plan_thin ?fault ~device ~rows ~cols ~tile () =
    let qr_sim = Sim.create ~execute:false ?fault ~fault_salt:1 ~device ~prec:K.prec () in
    Qr.plan_thin qr_sim ~rows ~cols ~tile;
    let bs_sim = Sim.create ~execute:false ?fault ~fault_salt:2 ~device ~prec:K.prec () in
    Bs.plan bs_sim ~dim:cols ~tile;
    result_of qr_sim bs_sim (V.create 0)

  (* Cost accounting only, from the dimensions alone. *)
  let plan ?fault ~device ~rows ~cols ~tile () =
    let qr_sim = Sim.create ~execute:false ?fault ~fault_salt:1 ~device ~prec:K.prec () in
    Qr.plan qr_sim ~rows ~cols ~tile;
    launch_qtb qr_sim ~mrows:rows ~n:cols ~tile (fun _ -> ());
    let bs_sim = Sim.create ~execute:false ?fault ~fault_salt:2 ~device ~prec:K.prec () in
    Bs.plan bs_sim ~dim:cols ~tile;
    result_of qr_sim bs_sim (V.create 0)
end
