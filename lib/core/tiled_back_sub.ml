(* Algorithm 1 of the paper: tiled accelerated back substitution.

   The upper triangular Nn-by-Nn matrix U is cut into N diagonal tiles of
   size n.  Stage 1 inverts all diagonal tiles at once (N blocks of n
   threads; thread k of a block solves U v = e_k, so the columns of each
   inverse are computed independently).  Stage 2 walks the tiles from the
   last to the first: x_i := U_i^{-1} b_i by one block of n threads, then
   all remaining right-hand side tiles are updated simultaneously,
   b_j := b_j - A_{j,i} x_i, with i-1 blocks of n threads.

   Replacing the final division of the classic back substitution by a
   multiplication with a precomputed inverse is what exposes enough data
   parallelism for the GPU; the launch count is 1 + N(N+1)/2. *)

open Gpusim
open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module F = Flat_kernels.Make (K)

  let scalar_bytes = float_of_int (8 * K.width)

  let ops ?(adds = 0.0) ?(muls = 0.0) ?(divs = 0.0) ?(sqrts = 0.0) () =
    let o = Counter.make ~adds ~muls ~divs ~sqrts () in
    if K.is_complex then Counter.complexify o else o

  type result = {
    x : V.t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    stages : Profile.row list;
    launches : int;
    faults : Fault.Plan.tally option;
  }

  (* [solve_gen sim ~dim ~tile ~data] solves U x = b when [data] carries
     the actual system, or only accounts the kernel costs when it is
     [None] (planning mode, used to time dimensions too large to hold). *)
  let solve_gen (sim : Sim.t) ~dim ~tile ~data =
    if dim mod tile <> 0 then
      invalid_arg "Tiled_back_sub: dimension must be a multiple of the tile";
    if data = None then sim.Sim.execute <- false;
    let n = tile in
    let nt = dim / n in
    let fn = float_of_int n in
    (* Device state: the matrix with inverted diagonal tiles, the evolving
       right-hand side and the solution. *)
    let v, bd =
      match data with
      | Some (u, b) when sim.Sim.execute -> (M.copy u, V.copy b)
      | _ -> (M.create 0 0, V.create 0)
    in
    let x = V.create (if sim.Sim.execute then dim else 0) in
    (* Host -> device staging: U (upper half) and b. *)
    Sim.transfer sim
      ((float_of_int (dim * (dim + 1) / 2) +. float_of_int dim)
      *. scalar_bytes);

    (* Stage 1: invert all diagonal tiles; thread k of block i solves the
       upper triangular system U_i v = e_k. *)
    let invert_cost =
      (* Per block: column k costs k(k+1)/2 multiply/update pairs and k+1
         divisions; summed over the n columns. *)
      let muls_blk = (fn -. 1.0) *. fn *. (fn +. 1.0) /. 6.0 in
      let divs_blk = fn *. (fn +. 1.0) /. 2.0 in
      let per_block = ops ~adds:muls_blk ~muls:muls_blk ~divs:divs_blk () in
      let true_ops = Counter.scale per_block (float_of_int nt) in
      (* Timing is governed by the slowest thread (the last column), which
         does ~3x the average work. *)
      let crit =
        ops
          ~adds:(fn *. (fn -. 1.0) /. 2.0)
          ~muls:(fn *. (fn -. 1.0) /. 2.0)
          ~divs:fn ()
      in
      let padded = Counter.scale crit (float_of_int (nt * n)) in
      let tile_bytes = fn *. (fn +. 1.0) /. 2.0 *. scalar_bytes in
      Cost.launch ~blocks:nt ~threads:n ~padded
        ~cold_bytes:(float_of_int nt *. 2.0 *. tile_bytes)
        ~thread_bytes:
          (float_of_int nt *. fn *. fn *. (fn +. 1.0) /. 6.0 *. scalar_bytes)
        ~working_set:(2.0 *. tile_bytes) true_ops
    in
    Sim.launch sim ~stage:Stage.invert_tiles ~cost:invert_cost (fun blk ->
        let r0 = blk * n in
        let inv = M.create n n in
        (* Thread k solves U v = e_k; the solution has zeros below row k,
           so column k costs k(k+1)/2 update pairs and k+1 divisions. *)
        for k = 0 to n - 1 do
          let col = Array.make (k + 1) K.zero in
          for i = k downto 0 do
            let s = ref (if i = k then K.one else K.zero) in
            for j = i + 1 to k do
              s := K.sub !s (K.mul (M.get v (r0 + i) (r0 + j)) col.(j))
            done;
            col.(i) <- K.div !s (M.get v (r0 + i) (r0 + i))
          done;
          for i = 0 to k do
            M.set inv i k col.(i)
          done
        done;
        M.blit ~src:inv ~dst:v ~r0 ~c0:r0);

    (* Device state for stage 2, behind the one dispatch point: when
       flat execution is available, [F.Bs.create] stages the matrix
       (with the now-inverted diagonal tiles), the right-hand side and
       the solution into limb planes ONCE and every inner-product kernel
       below runs on them allocation free, with only the solution
       unstaged at the end; otherwise it works on the host arrays.  Tile
       inversion stays generic (it divides, which the flat primitives do
       not cover).  The modeled launch costs are shared by both arms, so
       device timing is unchanged. *)
    let st = F.Bs.create ~execute:sim.Sim.execute ~dim ~v:v.M.a ~bd ~x in

    let guard = Sim.fault_plan sim in
    let executing = sim.Sim.execute in
    (* Bit-flip corruptor: on the flat arm faults strike the staggered
       limb planes directly (raw word flips, exactly the paper's device
       layout); on the boxed arm one scalar goes through a limb flip
       and the renormalizing round-trip. *)
    (match guard with
    | Some _ when executing ->
        Sim.set_corruptor sim
          (Some (fun rng -> F.Bs.corrupt st rng ~flip:Fault.Plan.flip_bit))
    | _ -> ());
    (* U (inverted diagonal tiles included) is constant through stage 2:
       its checksum taken here convicts any corruption of the staged
       planes for the rest of the solve. *)
    let vchk_now () = Fault.Checksum.of_iter (F.Bs.iter_u_limbs st) in
    let vchk =
      match guard with
      | Some _ when executing -> Some (vchk_now ())
      | _ -> None
    in
    (* Read back element [i] of the staged solution (flat) or the host
       array (boxed). *)
    let x_at i = F.Bs.x_at st i in
    let bd_at i = F.Bs.b_at st i in
    (* ABFT verification of one solved tile: the device result must match
       a host recompute of U_i^{-1} b_i within a few limb-widths, every
       limb must be finite, and on the flat path the raw limb expansions
       must still satisfy the renorm invariant. *)
    let tile_ok ~r0 =
      let ok = ref true in
      for r = 0 to n - 1 do
        let s = ref K.zero in
        for c = r to n - 1 do
          s :=
            K.add !s (K.mul (M.get v (r0 + r) (r0 + c)) (bd_at (r0 + c)))
        done;
        let xi = x_at (r0 + r) in
        if not (K.is_finite xi) then ok := false
        else begin
          let diff = K.R.to_float (K.abs (K.sub xi !s)) in
          let scale = Float.max (K.R.to_float (K.abs !s)) 1.0 in
          if
            Float.is_nan diff
            || diff > 64.0 *. fn *. K.R.eps *. scale
          then ok := false
        end;
        if
          not
            (F.Bs.x_limbs_ok st (r0 + r) ~check:(fun limbs ->
                 Fault.Detect.normalized limbs))
        then ok := false
      done;
      !ok
    in
    let check_cost =
      let muls = fn *. (fn +. 1.0) /. 2.0 in
      Cost.launch ~blocks:1 ~threads:n
        ~cold_bytes:((muls +. (2.0 *. fn)) *. scalar_bytes)
        ~thread_bytes:(muls *. scalar_bytes)
        ~working_set:(muls *. scalar_bytes)
        (ops ~adds:muls ~muls ())
    in

    (* Stage 2: alternate multiplications with the inverses and updates of
       the remaining right-hand sides. *)
    for i = nt - 1 downto 0 do
      let r0 = i * n in
      (* x_i := U_i^{-1} b_i, one block of n threads (thread r computes
         row r; row 0 is the longest). *)
      let mul_cost =
        let muls = fn *. (fn +. 1.0) /. 2.0 in
        let per = ops ~adds:muls ~muls () in
        let padded = Counter.scale (ops ~adds:fn ~muls:fn ()) fn in
        Cost.launch ~blocks:1 ~threads:n ~padded
          ~cold_bytes:((muls +. (2.0 *. fn)) *. scalar_bytes)
          ~thread_bytes:(muls *. scalar_bytes)
          ~working_set:(muls *. scalar_bytes) per
      in
      let solve_tile () =
        Sim.launch sim ~stage:Stage.multiply_inverses ~cost:mul_cost (fun _ ->
            F.Bs.xi_block st ~r0 ~n)
      in
      (try solve_tile () with
      | Fault.Plan.Injected (Fault.Plan.Launch_fail, _) when guard <> None ->
          (* The failed launch never ran its body, so x is untouched:
             one stage-level replay before giving up. *)
          (match guard with
          | Some plan -> Fault.Plan.note_replay plan ~stage:"bs.tile"
          | None -> ());
          solve_tile ());
      (match guard with
      | None -> ()
      | Some plan ->
          Sim.launch ~protected:true sim ~stage:Stage.abft_check
            ~cost:check_cost (fun _ -> ());
          if executing then begin
            (* The tile solve only writes x_i, so a failed verdict can
               replay the launch in place — unless U itself no longer
               matches its checksum, which nothing below this level can
               repair. *)
            let rec settle replays =
              if not (tile_ok ~r0) then begin
                Fault.Plan.note_detected plan ~stage:"bs.tile";
                let u_intact =
                  match vchk with
                  | Some chk -> Fault.Checksum.matches chk (vchk_now ())
                  | None -> true
                in
                if (not u_intact) || replays >= Fault.Plan.max_replays plan
                then begin
                  Fault.Plan.note_escalation plan ~stage:"bs.tile";
                  raise
                    (Fault.Plan.Injected (Fault.Plan.Bitflip, "bs.tile"))
                end
                else begin
                  Fault.Plan.note_replay plan ~stage:"bs.tile";
                  solve_tile ();
                  settle (replays + 1)
                end
              end
            in
            settle 0
          end);
      (* b_j := b_j - A_{j,i} x_i for all j < i, i blocks of n threads,
         counted as i concurrent launches like the paper does. *)
      if i > 0 then begin
        let upd_cost =
          let per_block = ops ~adds:((fn *. fn) +. fn) ~muls:(fn *. fn) () in
          let true_ops = Counter.scale per_block (float_of_int i) in
          Cost.launch ~blocks:i ~threads:n ~count:i
            ~cold_bytes:
              (float_of_int i *. ((fn *. fn) +. (3.0 *. fn)) *. scalar_bytes)
            ~thread_bytes:(float_of_int i *. 2.0 *. fn *. fn *. scalar_bytes)
            ~working_set:(((fn *. fn) +. (2.0 *. fn)) *. scalar_bytes)
            true_ops
        in
        let update () =
          Sim.launch sim ~stage:Stage.back_substitution ~cost:upd_cost
            (fun j -> F.Bs.update_block st ~r0 ~rj:(j * n) ~n)
        in
        match guard with
        | None -> update ()
        | Some plan ->
            (* The update subtracts in place, so replaying it needs the
               pre-update prefix of b back first. *)
            let snap =
              if executing then Some (F.Bs.snapshot_b st ~upto:r0) else None
            in
            let restore () =
              match snap with
              | Some saved -> F.Bs.restore_b st saved
              | None -> ()
            in
            let rec settle replays =
              update ();
              if executing && not (F.Bs.b_finite_below st ~r0) then begin
                Fault.Plan.note_detected plan ~stage:"bs.update";
                if replays < Fault.Plan.max_replays plan then begin
                  restore ();
                  Fault.Plan.note_replay plan ~stage:"bs.update";
                  settle (replays + 1)
                end
                else begin
                  Fault.Plan.note_escalation plan ~stage:"bs.update";
                  raise
                    (Fault.Plan.Injected (Fault.Plan.Bitflip, "bs.update"))
                end
              end
            in
            (try settle 0 with
            | Fault.Plan.Injected (Fault.Plan.Launch_fail, _)
              when executing ->
                (* An escalated launch failure left b untouched mid-way
                   only on the failing relaunch path; restore and replay
                   once at stage level before giving up for good. *)
                restore ();
                Fault.Plan.note_replay plan ~stage:"bs.update";
                settle 0)
      end
    done;
    F.Bs.unstage_x st;
    (* Device -> host: the solution. *)
    Sim.transfer sim (float_of_int dim *. scalar_bytes);
    x

  (* [solve sim u b ~tile] solves U x = b for upper triangular [u];
     [tile] is the tile size n, which must divide the dimension. *)
  let solve (sim : Sim.t) (u : M.t) (b : V.t) ~tile =
    let dim = M.rows u in
    if dim <> M.cols u then invalid_arg "Tiled_back_sub: square U required";
    if Array.length b <> dim then
      invalid_arg "Tiled_back_sub: right-hand side length mismatch";
    solve_gen sim ~dim ~tile ~data:(Some (u, b))

  (* Cost accounting only: no data is touched or allocated. *)
  let plan (sim : Sim.t) ~dim ~tile =
    ignore (solve_gen sim ~dim ~tile ~data:None)

  let result_of_sim sim x =
    {
      x;
      kernel_ms = Sim.kernel_ms sim;
      wall_ms = Sim.wall_ms sim;
      kernel_gflops = Sim.kernel_gflops sim;
      wall_gflops = Sim.wall_gflops sim;
      stages = List.map (Profile.row sim.Sim.profile) Stage.bs_stages;
      launches = Sim.launches sim;
      faults = Sim.fault_tally sim;
    }

  let run ?(execute = true) ?fault ~device ~u ~b ~tile () =
    let sim = Sim.create ~execute ?fault ~device ~prec:K.prec () in
    let x = solve sim u b ~tile in
    result_of_sim sim x

  (* Timing-only run from the dimensions alone. *)
  let run_plan ?fault ~device ~dim ~tile () =
    let sim = Sim.create ~execute:false ?fault ~device ~prec:K.prec () in
    plan sim ~dim ~tile;
    result_of_sim sim (V.create 0)

end
