(** The least squares solver of the paper: blocked accelerated
    Householder QR (Algorithm 2) followed by the tiled accelerated back
    substitution (Algorithm 1) on R x = Q^H b, the two phases timed
    apart as in Table 10.

    An armed fault plan ([?fault]) is threaded to both phases'
    simulators under distinct salts; the merged fault tally of the two
    phases lands in [result.faults]. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type result = {
    x : Mdlinalg.Vec.Make(K).t;
    qr_kernel_ms : float;
    qr_wall_ms : float;
    bs_kernel_ms : float;
    bs_wall_ms : float;
    qr_kernel_gflops : float;
    qr_wall_gflops : float;
    bs_kernel_gflops : float;
    bs_wall_gflops : float;
    total_kernel_gflops : float;
    total_wall_gflops : float;
    qr_stages : Gpusim.Profile.row list;  (** per-stage kernel breakdown *)
    bs_stages : Gpusim.Profile.row list;
    launches : int;  (** both phases *)
    faults : Fault.Plan.tally option;  (** merged over both phases *)
  }

  val solve :
    ?execute:bool ->
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    a:Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    unit ->
    result
  (** Minimizes [||b - a x||_2]; [a] needs rows >= cols and a column
      count that is a multiple of [tile]. *)

  val solve_thin :
    ?execute:bool ->
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    a:Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    unit ->
    result
  (** The economy path: reflectors applied to [b] on the fly, Q never
      formed — saves the dominant Q*WY^T kernels when only the solution
      is wanted. *)

  val plan :
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    rows:int ->
    cols:int ->
    tile:int ->
    unit ->
    result
  (** Cost accounting only. *)

  val plan_thin :
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    rows:int ->
    cols:int ->
    tile:int ->
    unit ->
    result
end
