(* Algorithm 2 of the paper: blocked accelerated Householder QR with the
   WY representation (Bischof-Van Loan).

   For each column panel of [tile] columns:
     1. column by column, compute the Householder vector v and its
        beta = 2 / v^H v, and update the panel (kernels "beta, v",
        "beta*R^T*v", "update R");
     2. aggregate the n reflectors: P = P_0 ... P_{n-1} = I + W Y^H, where
        the columns of W follow z = -beta (v + W Y^H v) — the expected
        bottleneck in small dimensions (kernel "compute W") — and form the
        product YWT = Y * W^H (kernel "Y*W^T");
     3. update Q in two stages: QWY := Q * (YWT)^H ("Q*WY^T") and
        Q := Q + QWY ("Q + QWY");
     4. if the panel is not the last, update the trailing columns C:
        YWTC := YWT * C ("YWT*C") and R := R + YWTC ("R + YWTC").

   On complex data every transpose is the Hermitian transpose; the scalar
   abstraction makes the same code cover both (§3, last paragraph). *)

open Gpusim
open Mdlinalg

module Make (K : Scalar.S) = struct
  module M = Mat.Make (K)
  module V = Vec.Make (K)
  module F = Flat_kernels.Make (K)

  let sb = float_of_int (8 * K.width)

  let ops ?(adds = 0.0) ?(muls = 0.0) ?(divs = 0.0) ?(sqrts = 0.0) () =
    let o = Counter.make ~adds ~muls ~divs ~sqrts () in
    if K.is_complex then Counter.complexify o else o

  type result = {
    q : M.t;
    r : M.t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    stages : Profile.row list;
    launches : int;
    faults : Fault.Plan.tally option;
  }

  (* One thread per output element, the register-loading matrix product of
     the paper (no shared memory tiles; the high CGMA ratio of multiple
     double arithmetic makes direct loads competitive). *)
  let launch_matmul sim ~stage ~threads ?(strided = false) ?working_set
      ~rows_o ~cols_o ~inner ~geta ~getb ~store () =
    let total = rows_o * cols_o in
    if total > 0 && inner > 0 then begin
      let f = float_of_int in
      let blocks = (total + threads - 1) / threads in
      let o =
        ops
          ~adds:(f rows_o *. f cols_o *. f inner)
          ~muls:(f rows_o *. f cols_o *. f inner)
          ()
      in
      let ws =
        match working_set with
        | Some w -> w
        | None -> f inner *. f cols_o *. 8.0
      in
      let cost =
        Cost.launch ~blocks ~threads ~strided
          ~cold_bytes:
            (((f rows_o *. f inner) +. (f inner *. f cols_o) +. f total)
            *. sb)
          ~thread_bytes:(2.0 *. f inner *. f total *. sb)
          ~working_set:ws o
      in
      (* The modeled device cost above is the same on both paths; only
         the host execution of the kernel body differs.  [F.matmul]
         picks the path: staged allocation-free plane kernels when flat
         execution is available, the boxed accessor loop otherwise —
         limb for limb identical either way. *)
      F.matmul ~execute:sim.Sim.execute ~threads ~rows_o ~cols_o ~inner
        ~geta ~getb ~store
        ~launch:(fun body -> Sim.launch sim ~stage ~cost body)
    end

  (* Elementwise addition kernel: dst += src. *)
  let launch_add sim ~stage ~threads ~rows_o ~cols_o ~get ~add_to =
    let total = rows_o * cols_o in
    if total > 0 then begin
      let f = float_of_int in
      let blocks = (total + threads - 1) / threads in
      let cost =
        Cost.launch ~blocks ~threads
          ~cold_bytes:(3.0 *. f total *. sb)
          ~thread_bytes:(2.0 *. f total *. sb)
          ~working_set:(2.0 *. f total *. 8.0)
          (ops ~adds:(f total) ())
      in
      Sim.launch sim ~stage ~cost (fun blk ->
          let lo = blk * threads in
          let hi = min total (lo + threads) in
          (* Running (row, col) pair instead of two div/mod per element;
             one addition per element cannot amortize limb staging, so
             this kernel stays on the generic path. *)
          let i = ref (lo / cols_o) and j = ref (lo mod cols_o) in
          for _idx = lo to hi - 1 do
            add_to !i !j (get !i !j);
            incr j;
            if !j = cols_o then begin
              j := 0;
              incr i
            end
          done)
    end

  (* [factor_gen sim ~mrows ~ncols ~tile ~a] factors the matrix when [a]
     is given, or only accounts the kernel costs when it is [None]
     (planning mode, used to time dimensions too large to hold).

     With [accumulate_q = false] the Q update kernels are skipped, and
     with [rhs = Some b] the reflectors are applied to [b] on the fly
     (b := (I + Y W^H) b per tile) — the economy path of the thin least
     squares solver, which never forms the M-by-M Q. *)
  let factor_gen ?(accumulate_q = true) ?rhs (sim : Sim.t) ~mrows ~ncols
      ~tile ~a =
    if ncols mod tile <> 0 then
      invalid_arg "Blocked_qr: columns must be a multiple of the tile size";
    if mrows < ncols then invalid_arg "Blocked_qr: need rows >= cols";
    if a = None then sim.Sim.execute <- false;
    let nt = ncols / tile in
    let f = float_of_int in
    let executing = sim.Sim.execute in
    let r =
      match a with
      | Some a when executing -> M.copy a
      | _ -> M.create 0 0
    in
    let q = if executing then M.identity mrows else M.create 0 0 in
    let guard = Sim.fault_plan sim in
    (* A bit-flip corruptor over everything the current panel holds on
       the device: R, Q, the panel's Y/W and (thin path) the right-hand
       side.  One element is picked weighted by size, one limb plane,
       one bit of its word. *)
    let flip_at rng name (arr : K.t array) idx =
      let planes = K.to_planes arr.(idx) in
      let p = Dompool.Prng.int rng (Array.length planes) in
      let bit = Dompool.Prng.int rng 64 in
      planes.(p) <- Fault.Plan.flip_bit planes.(p) bit;
      arr.(idx) <- K.of_planes planes;
      Printf.sprintf "%s[%d] plane %d bit %d" name idx p bit
    in
    let corruptor ~y ~w rng =
      let targets =
        List.filter
          (fun (_, arr) -> Array.length arr > 0)
          ([ ("R", r.M.a); ("Q", q.M.a); ("Y", y.M.a); ("W", w.M.a) ]
          @ match rhs with Some b -> [ ("b", (b : K.t array)) ] | None -> [])
      in
      let total =
        List.fold_left (fun acc (_, arr) -> acc + Array.length arr) 0 targets
      in
      if total = 0 then "nothing resident"
      else
        let rec pick idx = function
          | [] -> "nothing resident"
          | (name, arr) :: rest ->
              if idx < Array.length arr then flip_at rng name arr idx
              else pick (idx - Array.length arr) rest
        in
        pick (Dompool.Prng.int rng total) targets
    in
    (* ABFT panel verification, modeled as one cheap check kernel plus —
       when executing — a random probe through the aggregated reflectors
       (I + W Y^H is unitary, so it must preserve the probe's norm) and
       finiteness sweeps over the regions the panel wrote. *)
    let abft_cost rows =
      Cost.launch
        ~blocks:(max 1 ((rows + tile - 1) / tile))
        ~threads:tile
        ~cold_bytes:(2.0 *. f rows *. f tile *. sb)
        ~thread_bytes:(2.0 *. f rows *. f tile *. sb)
        ~working_set:(f rows *. 8.0)
        (ops
           ~adds:(2.0 *. f rows *. f tile)
           ~muls:(2.0 *. f rows *. f tile)
           ())
    in
    let probe_ok plan ~rows ~y ~w =
      let rng = Fault.Plan.aux_rng plan in
      let u = V.init rows (fun _ -> K.random rng) in
      let yhu = V.create tile in
      for j = 0 to tile - 1 do
        let s = ref K.zero in
        for i = 0 to rows - 1 do
          s := K.add !s (K.mul (K.conj (M.get y i j)) u.(i))
        done;
        yhu.(j) <- !s
      done;
      let pu =
        V.init rows (fun i ->
            let s = ref u.(i) in
            for j = 0 to tile - 1 do
              s := K.add !s (K.mul (M.get w i j) yhu.(j))
            done;
            !s)
      in
      let nu = K.R.to_float (V.norm u) in
      let npu = K.R.to_float (V.norm pu) in
      Float.is_finite npu
      && Float.abs (npu -. nu)
         <= 64.0 *. f (rows * tile) *. K.R.eps *. Float.max nu 1e-300
    in
    let region_finite ~c0 =
      let ok = ref true in
      for i = c0 to mrows - 1 do
        for j = c0 to ncols - 1 do
          if not (K.is_finite (M.get r i j)) then ok := false
        done
      done;
      if accumulate_q then
        for i = 0 to mrows - 1 do
          for j = c0 to mrows - 1 do
            if not (K.is_finite (M.get q i j)) then ok := false
          done
        done;
      (match rhs with
      | Some b ->
          for i = c0 to mrows - 1 do
            if not (K.is_finite b.(i)) then ok := false
          done
      | None -> ());
      !ok
    in
    (* Host -> device: the matrix A. *)
    Sim.transfer sim (f (mrows * ncols) *. sb);
    for k = 0 to nt - 1 do
      (* The whole panel iteration — factorization, aggregation, Q and
         trailing updates, then the ABFT verdict.  Restartable: under an
         armed fault plan the caller snapshots R/Q/b, and a detected
         corruption (or an escalated launch failure inside the panel)
         restores the snapshot and replays the panel. *)
      let do_panel () =
        let c0 = k * tile in
        let c1 = c0 + tile in
        let rows = mrows - c0 in
        let y = if executing then M.create rows tile else M.create 0 0 in
        let w = if executing then M.create rows tile else M.create 0 0 in
        let betas = Array.make tile K.R.zero in
        if executing && guard <> None then
          Sim.set_corruptor sim (Some (corruptor ~y ~w));
      (* ---- Stage 1: panel factorization, column by column. ---- *)
      for l = 0 to tile - 1 do
        let c = c0 + l in
        let len = mrows - c in
        let v = V.create len in
        (* beta, v *)
        let bv_cost =
          Cost.launch
            ~blocks:(max 1 ((len + tile - 1) / tile))
            ~threads:tile
            ~cold_bytes:(3.0 *. f len *. sb)
            ~thread_bytes:(2.0 *. f len *. sb)
            ~working_set:(f len *. 8.0)
            (ops
               ~adds:((2.0 *. f len) +. 1.0)
               ~muls:((2.0 *. f len) +. 1.0)
               ~divs:1.0 ~sqrts:1.0 ())
        in
        Sim.launch sim ~stage:Stage.beta_v ~cost:bv_cost (fun blk ->
            if blk = 0 then begin
              for i = 0 to len - 1 do
                v.(i) <- M.get r (c + i) c
              done;
              let sigma = V.norm v in
              if K.R.is_zero sigma then betas.(l) <- K.R.zero
              else begin
                let phase = K.unit_phase v.(0) in
                v.(0) <- K.add v.(0) (K.scale phase sigma);
                let vv = V.norm2 v in
                betas.(l) <- K.R.div (K.R.of_int 2) vv
              end
            end);
        (* Save v into the trapezoidal Y (rows below c0, zeros above c). *)
        if sim.Sim.execute then
          for i = 0 to len - 1 do
            M.set y (c - c0 + i) l v.(i)
          done;
        (* beta*R^T*v : the row vector wrow = beta v^H R[c:, c:c1],
           a sum reduction over multiple blocks. *)
        let wrow = V.create (tile - l) in
        let rtv_cost =
          Cost.launch
            ~blocks:(max 1 (tile - l))
            ~threads:tile
            ~cold_bytes:(((f len *. f (tile - l)) +. (2.0 *. f len)) *. sb)
            ~thread_bytes:(2.0 *. f len *. f (tile - l) *. sb)
            ~working_set:(f len *. f ncols *. 8.0)
            ~strided:true
            (ops
               ~adds:(f len *. f (tile - l))
               ~muls:((f len +. 1.0) *. f (tile - l))
               ())
        in
        Sim.launch sim ~stage:Stage.beta_rtv ~cost:rtv_cost (fun blk ->
            if blk < tile - l then begin
              let j = c + blk in
              let s = ref K.zero in
              for i = 0 to len - 1 do
                s := K.add !s (K.mul (K.conj v.(i)) (M.get r (c + i) j))
              done;
              wrow.(blk) <- K.scale !s betas.(l)
            end);
        (* update R : R[c:, c:c1] -= v wrow *)
        let upd_cost =
          let total = len * (tile - l) in
          Cost.launch
            ~blocks:(max 1 ((total + tile - 1) / tile))
            ~threads:tile
            ~cold_bytes:(3.0 *. f total *. sb)
            ~thread_bytes:(3.0 *. f total *. sb)
            ~working_set:(f len *. f ncols *. 8.0)
            ~strided:true
            (ops ~adds:(f total) ~muls:(f total) ())
        in
        Sim.launch sim ~stage:Stage.update_r ~cost:upd_cost (fun blk ->
            let total = len * (tile - l) in
            let lo = blk * tile in
            let hi = min total (lo + tile) in
            let w_ = tile - l in
            for idx = lo to hi - 1 do
              let i = idx / w_ and jj = idx mod w_ in
              let j = c + jj in
              M.set r (c + i) j
                (K.sub (M.get r (c + i) j) (K.mul v.(i) wrow.(jj)))
            done)
      done;
      (* ---- Stage 2: aggregate the reflectors into W (and Y). ---- *)
      for l = 0 to tile - 1 do
        let u = V.create l in
        if l > 0 then begin
          (* u = Y[:, :l]^H v_l *)
          let u_cost =
            Cost.launch ~blocks:(max 1 l) ~threads:tile
              ~cold_bytes:(((f rows *. f l) +. f rows +. f l) *. sb)
              ~thread_bytes:(2.0 *. f rows *. f l *. sb)
              ~working_set:(f rows *. f l *. 8.0)
              (ops ~adds:(f rows *. f l) ~muls:(f rows *. f l) ())
          in
          Sim.launch sim ~stage:Stage.compute_w ~cost:u_cost (fun blk ->
              if blk < l then begin
                let s = ref K.zero in
                for i = 0 to rows - 1 do
                  s := K.add !s (K.mul (K.conj (M.get y i blk)) (M.get y i l))
                done;
                u.(blk) <- !s
              end)
        end;
        (* z = -beta (v + W[:, :l] u); W[:, l] = z *)
        let z_cost =
          Cost.launch
            ~blocks:(max 1 ((rows + tile - 1) / tile))
            ~threads:tile
            ~cold_bytes:(((f rows *. f l) +. (2.0 *. f rows)) *. sb)
            ~thread_bytes:(((2.0 *. f rows *. f l) +. f rows) *. sb)
            ~working_set:(f rows *. f l *. 8.0)
            (ops
               ~adds:(f rows *. f l)
               ~muls:((f rows *. f l) +. f rows)
               ())
        in
        Sim.launch sim ~stage:Stage.compute_w ~cost:z_cost (fun blk ->
            let lo = blk * tile in
            let hi = min rows (lo + tile) in
            let nbeta = K.R.neg betas.(l) in
            for i = lo to hi - 1 do
              let s = ref (M.get y i l) in
              for j = 0 to l - 1 do
                s := K.add !s (K.mul (M.get w i j) u.(j))
              done;
              M.set w i l (K.scale !s nbeta)
            done)
      done;
      (* ---- YWT = Y * W^H (rows x rows). ---- *)
      let ywt = if executing then M.create rows rows else M.create 0 0 in
      launch_matmul sim ~stage:Stage.ywt ~threads:tile ~rows_o:rows
        ~cols_o:rows ~inner:tile
        ~geta:(fun i k -> M.get y i k)
        ~getb:(fun k j -> K.conj (M.get w j k))
        ~store:(fun i j s -> M.set ywt i j s)
        ();
      (* ---- Update Q: QWY = Q[:, c0:] * (YWT)^H; Q += QWY. ---- *)
      if accumulate_q then begin
        let qwy = if executing then M.create mrows rows else M.create 0 0 in
        launch_matmul sim ~stage:Stage.qwyt ~threads:tile ~rows_o:mrows
          ~cols_o:rows ~inner:rows
          ~geta:(fun i k -> M.get q i (c0 + k))
          ~getb:(fun k j -> K.conj (M.get ywt j k))
          ~store:(fun i j s -> M.set qwy i j s)
          ();
        launch_add sim ~stage:Stage.q_plus_qwy ~threads:tile ~rows_o:mrows
          ~cols_o:rows
          ~get:(fun i j -> M.get qwy i j)
          ~add_to:(fun i j s ->
            M.set q i (c0 + j) (K.add (M.get q i (c0 + j)) s))
      end;
      (* ---- Apply the reflectors to the right-hand side on the fly:
         b[c0:] := b[c0:] + Y (W^H b[c0:]). ---- *)
      (match rhs with
      | None -> ()
      | Some b ->
        let u = V.create (if executing then tile else 0) in
        let f = float_of_int in
        let u_cost =
          Cost.launch ~blocks:tile ~threads:tile
            ~cold_bytes:(((f rows *. f tile) +. f rows +. f tile) *. sb)
            ~thread_bytes:(2.0 *. f rows *. f tile *. sb)
            ~working_set:(f rows *. f tile *. 8.0)
            (ops ~adds:(f rows *. f tile) ~muls:(f rows *. f tile) ())
        in
        Sim.launch sim ~stage:Stage.apply_qt ~cost:u_cost (fun blk ->
            if blk < tile then begin
              let sum = ref K.zero in
              for i = 0 to rows - 1 do
                sum := K.add !sum (K.mul (K.conj (M.get w i blk)) b.(c0 + i))
              done;
              u.(blk) <- !sum
            end);
        let y_cost =
          Cost.launch
            ~blocks:(max 1 ((rows + tile - 1) / tile))
            ~threads:tile
            ~cold_bytes:(((f rows *. f tile) +. (2.0 *. f rows)) *. sb)
            ~thread_bytes:(((2.0 *. f rows *. f tile) +. f rows) *. sb)
            ~working_set:(f rows *. f tile *. 8.0)
            (ops
               ~adds:((f rows *. f tile) +. f rows)
               ~muls:(f rows *. f tile)
               ())
        in
        Sim.launch sim ~stage:Stage.apply_qt ~cost:y_cost (fun blk ->
            let lo = blk * tile in
            let hi = min rows (lo + tile) in
            for i = lo to hi - 1 do
              let sum = ref K.zero in
              for j = 0 to tile - 1 do
                sum := K.add !sum (K.mul (M.get y i j) u.(j))
              done;
              b.(c0 + i) <- K.add b.(c0 + i) !sum
            done));
      (* ---- Update the trailing columns C = R[c0:, c1:]. ---- *)
      if k < nt - 1 then begin
        let trail = ncols - c1 in
        let ywtc = if executing then M.create rows trail else M.create 0 0 in
        (* C lives inside R: its columns are read with the full matrix
           pitch, so the re-read panel is the whole trailing plane of R. *)
        launch_matmul sim ~stage:Stage.ywtc ~threads:tile ~strided:true
          ~working_set:(f rows *. f ncols *. 8.0)
          ~rows_o:rows ~cols_o:trail ~inner:rows
          ~geta:(fun i k' -> M.get ywt i k')
          ~getb:(fun k' j -> M.get r (c0 + k') (c1 + j))
          ~store:(fun i j s -> M.set ywtc i j s)
          ();
        launch_add sim ~stage:Stage.r_plus_ywtc ~threads:tile ~rows_o:rows
          ~cols_o:trail
          ~get:(fun i j -> M.get ywtc i j)
          ~add_to:(fun i j s ->
            M.set r (c0 + i) (c1 + j) (K.add (M.get r (c0 + i) (c1 + j)) s))
      end;
      (* ---- ABFT verdict for this panel. ---- *)
      match guard with
      | None -> true
      | Some plan ->
          Sim.launch ~protected:true sim ~stage:Stage.abft_check
            ~cost:(abft_cost rows) (fun _ -> ());
          (not executing) || (probe_ok plan ~rows ~y ~w && region_finite ~c0)
      in
      (match guard with
      | None -> ignore (do_panel () : bool)
      | Some plan ->
          let rec attempt replays =
            let snap =
              if executing then
                Some (M.copy r, M.copy q, Option.map V.copy rhs)
              else None
            in
            let restore () =
              match snap with
              | None -> ()
              | Some (r0, q0, b0) ->
                  Array.blit r0.M.a 0 r.M.a 0 (Array.length r.M.a);
                  Array.blit q0.M.a 0 q.M.a 0 (Array.length q.M.a);
                  (match (b0, rhs) with
                  | Some src, Some dst ->
                      Array.blit src 0 (dst : K.t array) 0 (Array.length src)
                  | _ -> ())
            in
            let replay () =
              restore ();
              Fault.Plan.note_replay plan ~stage:"qr.panel";
              attempt (replays + 1)
            in
            match do_panel () with
            | true -> ()
            | false ->
                Fault.Plan.note_detected plan ~stage:"qr.panel";
                if replays < Fault.Plan.max_replays plan then replay ()
                else begin
                  Fault.Plan.note_escalation plan ~stage:"qr.panel";
                  raise
                    (Fault.Plan.Injected (Fault.Plan.Bitflip, "qr.panel"))
                end
            | exception Fault.Plan.Injected _
              when replays < Fault.Plan.max_replays plan ->
                replay ()
          in
          attempt 0)
    done;
    Sim.set_corruptor sim None;
    (* Clean the numerically annihilated subdiagonal of R. *)
    if sim.Sim.execute then
      for j = 0 to ncols - 1 do
        for i = j + 1 to mrows - 1 do
          M.set r i j K.zero
        done
      done;
    (* Device -> host: Q and R. *)
    Sim.transfer sim (f ((mrows * mrows) + (mrows * ncols)) *. sb);
    (q, r)

  (* [factor sim a ~tile] returns (q, r) with a = q r, q unitary M-by-M
     and r upper triangular M-by-Nn, computed tile by tile on the
     simulated device. *)
  let factor (sim : Sim.t) (a : M.t) ~tile =
    factor_gen sim ~mrows:(M.rows a) ~ncols:(M.cols a) ~tile ~a:(Some a)

  (* Economy factorization: returns R and overwrites [b] with Q^H b,
     never forming Q (the LAPACK xGELS shape). *)
  let factor_thin (sim : Sim.t) (a : M.t) ~(b : V.t) ~tile =
    let _, r =
      factor_gen ~accumulate_q:false ~rhs:b sim ~mrows:(M.rows a)
        ~ncols:(M.cols a) ~tile ~a:(Some a)
    in
    r

  let plan_thin (sim : Sim.t) ~rows ~cols ~tile =
    ignore
      (factor_gen ~accumulate_q:false ~rhs:(V.create 0) sim ~mrows:rows
         ~ncols:cols ~tile ~a:None)

  (* Cost accounting only: no data is touched or allocated. *)
  let plan (sim : Sim.t) ~rows ~cols ~tile =
    ignore (factor_gen sim ~mrows:rows ~ncols:cols ~tile ~a:None)

  let result_of_sim sim q r =
    {
      q;
      r;
      kernel_ms = Sim.kernel_ms sim;
      wall_ms = Sim.wall_ms sim;
      kernel_gflops = Sim.kernel_gflops sim;
      wall_gflops = Sim.wall_gflops sim;
      stages = List.map (Profile.row sim.Sim.profile) Stage.qr_stages;
      launches = Sim.launches sim;
      faults = Sim.fault_tally sim;
    }

  let run ?(execute = true) ?fault ~device ~a ~tile () =
    let sim = Sim.create ~execute ?fault ~device ~prec:K.prec () in
    let q, r = factor sim a ~tile in
    result_of_sim sim q r

  (* Timing-only run from the dimensions alone. *)
  let run_plan ?fault ~device ~rows ~cols ~tile () =
    let sim = Sim.create ~execute:false ?fault ~device ~prec:K.prec () in
    plan sim ~rows ~cols ~tile;
    result_of_sim sim (M.create 0 0) (M.create 0 0)
end
