(** Algorithm 2 of the paper: blocked accelerated Householder QR in the
    WY representation (Bischof-Van Loan).

    Per panel of [tile] columns: the Householder vectors and the panel
    update ("beta, v" / "beta*R^T*v" / "update R"), the aggregation into
    W and Y with the product Y*W^H ("compute W" / "Y*W^T"), the Q update
    ("Q*WY^T" / "Q + QWY") and the trailing update ("YWT*C" /
    "R + YWTC") — the stage names of the paper's tables.  On complex
    data every transpose is the Hermitian transpose.

    Under an armed fault plan (a simulator created with [?fault]) every
    panel is verified by an ABFT probe — a random vector pushed through
    I + W Y^H, which is unitary and must preserve its norm — plus
    finiteness sweeps over the regions the panel wrote; a detected
    corruption (or a launch failure that exhausted its relaunch budget)
    restores the pre-panel snapshot of R/Q/b and replays the panel, up
    to the plan's replay budget, then escalates with
    [Fault.Plan.Injected]. *)

module Make (K : Mdlinalg.Scalar.S) : sig
  type result = {
    q : Mdlinalg.Mat.Make(K).t;
    r : Mdlinalg.Mat.Make(K).t;
    kernel_ms : float;
    wall_ms : float;
    kernel_gflops : float;
    wall_gflops : float;
    stages : Gpusim.Profile.row list;  (** in {!Stage.qr_stages} order *)
    launches : int;
    faults : Fault.Plan.tally option;  (** when the sim armed a plan *)
  }

  val factor :
    Gpusim.Sim.t ->
    Mdlinalg.Mat.Make(K).t ->
    tile:int ->
    Mdlinalg.Mat.Make(K).t * Mdlinalg.Mat.Make(K).t
  (** [factor sim a ~tile] is [(q, r)] with [a = q r], [q] unitary
      M-by-M, [r] upper triangular; needs rows >= cols and the column
      count a multiple of [tile] ([Invalid_argument] otherwise). *)

  val factor_thin :
    Gpusim.Sim.t ->
    Mdlinalg.Mat.Make(K).t ->
    b:Mdlinalg.Vec.Make(K).t ->
    tile:int ->
    Mdlinalg.Mat.Make(K).t
  (** Economy factorization: returns R and overwrites [b] with Q^H b,
      never forming Q (the LAPACK xGELS shape). *)

  val plan : Gpusim.Sim.t -> rows:int -> cols:int -> tile:int -> unit
  (** Cost accounting only: no data is touched or allocated. *)

  val plan_thin : Gpusim.Sim.t -> rows:int -> cols:int -> tile:int -> unit

  val run :
    ?execute:bool ->
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    a:Mdlinalg.Mat.Make(K).t ->
    tile:int ->
    unit ->
    result

  val run_plan :
    ?fault:Fault.Plan.config ->
    device:Gpusim.Device.t ->
    rows:int ->
    cols:int ->
    tile:int ->
    unit ->
    result
end
