(* Stage labels, matching the legends of the paper's tables verbatim so
   the benchmark output lines up row by row. *)

(* Algorithm 2, blocked Householder QR (Tables 3-6). *)
let beta_v = "beta, v"
let beta_rtv = "beta*R^T*v"
let update_r = "update R"
let compute_w = "compute W"
let ywt = "Y*W^T"
let qwyt = "Q*WY^T"
let ywtc = "YWT*C"
let q_plus_qwy = "Q + QWY"
let r_plus_ywtc = "R + YWTC"

let qr_stages =
  [
    beta_v; beta_rtv; update_r; compute_w; ywt; qwyt; ywtc; q_plus_qwy;
    r_plus_ywtc;
  ]

(* Algorithm 1, tiled back substitution (Tables 7-9). *)
let invert_tiles = "invert diagonal tiles"
let multiply_inverses = "multiply with inverses"
let back_substitution = "back substitution"

let bs_stages = [ invert_tiles; multiply_inverses; back_substitution ]

(* Extension beyond the paper: the thin solver applies the reflectors to
   the right-hand side instead of accumulating Q. *)
let apply_qt = "apply Q^T to b"

(* Extension: the iterative engines (CG on the normal equations, LSQR)
   are thin loops over a matrix-vector product and a few BLAS-1
   kernels; the same labels serve both engines at every rung of the
   precision ladder. *)
let matvec = "A*v"
let matvec_t = "A^T*v"
let iter_dot = "dot"
let iter_axpy = "axpy"
let iter_scale = "scale"

let iter_stages = [ matvec; matvec_t; iter_dot; iter_axpy; iter_scale ]

(* Extension: the ABFT verification kernels of the fault-tolerant path
   (probe through the aggregated reflectors, per-tile recompute).  Kept
   out of [qr_stages]/[bs_stages] so fault-free breakdowns are unchanged;
   the cost still lands in the kernel totals. *)
let abft_check = "ABFT check"
