(* Module signatures for multiple double numbers.

   [PRE] is what a precision implementation must provide (the arithmetic
   kernels); [Md_build.Make] extends a [PRE] into the full user-facing
   signature [S] (square root, comparisons, decimal conversion, infix
   operators). *)

module type PRE = sig
  type t

  (* Number of doubles in the unevaluated sum: 1, 2, 4 or 8. *)
  val limbs : int

  (* Human-readable precision name, e.g. "quad double". *)
  val name : string

  val zero : t
  val one : t
  val of_float : float -> t

  (* Most significant limb. *)
  val to_float : t -> float

  (* [of_limbs a] renormalizes [a] (length [limbs]) into a number. *)
  val of_limbs : float array -> t

  (* [of_limbs_exact a] adopts the limbs of [a] as-is, without
     renormalizing: the exact inverse of [to_limbs] for every
     representable value.  Round-trips (limb-plane staging, serialized
     limb data) must use this — [of_limbs] can perturb limbs that the
     arithmetic itself would have left alone, breaking bit-identity
     between staged and boxed execution. *)
  val of_limbs_exact : float array -> t

  (* Fresh array of the [limbs] limbs, most significant first. *)
  val to_limbs : t -> float array

  (* [blit_limbs x dst off] writes the [limbs] limbs of [x] (most
     significant first) at offsets [off], [off+1], ... of [dst] —
     [to_limbs] without the allocation, for the limb-plane staging
     seams that convert whole matrices. *)
  val blit_limbs : t -> float array -> int -> unit

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t

  (* Mixed-precision operations with a plain double right-hand side. *)
  val add_float : t -> float -> t
  val mul_float : t -> float -> t

  (* [mul_pwr2 x p] scales exactly by [p], a power of two. *)
  val mul_pwr2 : t -> float -> t

  val floor : t -> t
  val is_finite : t -> bool
end

module type S = sig
  include PRE

  (* True when the arithmetic carries observation side effects (the
     [Counted] wrapper); the flat limb-planar kernels must then stay on
     the generic path so every operation is still seen. *)
  val instrumented : bool

  (* Unit roundoff of the format, [2^(-52 limbs)]. *)
  val eps : float

  val two : t
  val ten : t
  val limb : t -> int -> float
  val of_int : int -> t
  val sqrt : t -> t
  val sign : t -> int
  val is_zero : t -> bool
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t

  val ceil : t -> t
  val trunc : t -> t

  (* Rounds to the nearest integer, halves away from zero. *)
  val round : t -> t

  (* [ldexp x k] scales exactly by [2^k]. *)
  val ldexp : t -> int -> t

  (* [fmod a b] is [a - b * trunc (a / b)], with the sign of [a]. *)
  val fmod : t -> t -> t

  (* [pow10 n] is [10^n], exact for small [n] up to the format precision. *)
  val pow10 : int -> t

  (* Decimal scientific notation with [digits] significant digits
     (default: all the digits the format carries). *)
  val to_string : ?digits:int -> t -> string

  (* Parses decimal notation with optional sign, point and exponent.
     Raises [Invalid_argument] on malformed input. *)
  val of_string : string -> t

  val pp : Format.formatter -> t -> unit

  module Infix : sig
    val ( + ) : t -> t -> t
    val ( - ) : t -> t -> t
    val ( * ) : t -> t -> t
    val ( / ) : t -> t -> t
    val ( ~- ) : t -> t
    val ( = ) : t -> t -> bool
    val ( <> ) : t -> t -> bool
    val ( < ) : t -> t -> bool
    val ( > ) : t -> t -> bool
    val ( <= ) : t -> t -> bool
    val ( >= ) : t -> t -> bool
  end
end
