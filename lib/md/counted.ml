(* Instrumented wrapper: counts multiple double operations as they execute.

   The GPU simulator accounts flops analytically per kernel launch, exactly
   as the paper does ("a small function accumulates the number of
   arithmetical operations", §4.1).  This wrapper provides the dynamic
   ground truth the test suite compares those analytic descriptors against.
   The counters are plain shared refs: use only in single-domain code. *)

type tally = {
  mutable adds : int;
  mutable muls : int;
  mutable divs : int;
  mutable sqrts : int;
}

let fresh () = { adds = 0; muls = 0; divs = 0; sqrts = 0 }

let total t = t.adds + t.muls + t.divs + t.sqrts

(* Double precision flops of a tally under precision [p], with Table 1
   multipliers (subtractions count as additions, as in the paper). *)
let flops p t =
  (t.adds * Precision.add_flops p)
  + (t.muls * Precision.mul_flops p)
  + (t.divs * Precision.div_flops p)
  + (t.sqrts * Precision.sqrt_flops p)

module Make (B : Md_sig.S) : sig
  include Md_sig.S with type t = B.t

  val counter : tally
  val reset : unit -> unit
  val snapshot : unit -> tally
end = struct
  include B

  (* Tell the dispatchers the arithmetic is observed: the flat
     limb-planar kernels would bypass the counters. *)
  let instrumented = true
  let counter = fresh ()

  let reset () =
    counter.adds <- 0;
    counter.muls <- 0;
    counter.divs <- 0;
    counter.sqrts <- 0

  let snapshot () =
    { adds = counter.adds; muls = counter.muls; divs = counter.divs;
      sqrts = counter.sqrts }

  let add a b =
    counter.adds <- counter.adds + 1;
    B.add a b

  let sub a b =
    counter.adds <- counter.adds + 1;
    B.sub a b

  let neg = B.neg

  let mul a b =
    counter.muls <- counter.muls + 1;
    B.mul a b

  let div a b =
    counter.divs <- counter.divs + 1;
    B.div a b

  let sqrt a =
    counter.sqrts <- counter.sqrts + 1;
    B.sqrt a

  let add_float a b =
    counter.adds <- counter.adds + 1;
    B.add_float a b

  let mul_float a b =
    counter.muls <- counter.muls + 1;
    B.mul_float a b

  module Infix = struct
    let ( + ) = add
    let ( - ) = sub
    let ( * ) = mul
    let ( / ) = div
    let ( ~- ) = neg
    let ( = ) = B.equal
    let ( <> ) a b = not (B.equal a b)
    let ( < ) a b = B.compare a b < 0
    let ( > ) a b = B.compare a b > 0
    let ( <= ) a b = B.compare a b <= 0
    let ( >= ) a b = B.compare a b >= 0
  end
end
