(* Quad double arithmetic: an unevaluated sum of four doubles giving
   roughly 64 decimal digits.  The algorithms follow the accurate
   ("IEEE-style") variants of QDlib [8]; the test suite cross-checks every
   operation against the generic [Expansion] functor at m = 4. *)

module Pre = struct
  type t = { x0 : float; x1 : float; x2 : float; x3 : float }

  let limbs = 4
  let name = "quad double"
  let zero = { x0 = 0.0; x1 = 0.0; x2 = 0.0; x3 = 0.0 }
  let one = { x0 = 1.0; x1 = 0.0; x2 = 0.0; x3 = 0.0 }
  let of_float x = { zero with x0 = x }
  let to_float q = q.x0

  let of_array a =
    { x0 = a.(0); x1 = a.(1); x2 = a.(2); x3 = a.(3) }

  let of_limbs a = of_array (Renorm.renormalize ~m:4 a)
  let of_limbs_exact = of_array
  let to_limbs q = [| q.x0; q.x1; q.x2; q.x3 |]

  let blit_limbs q (dst : float array) off =
    dst.(off) <- q.x0;
    dst.(off + 1) <- q.x1;
    dst.(off + 2) <- q.x2;
    dst.(off + 3) <- q.x3

  let renorm4 c = of_array (Renorm.renormalize ~m:4 c)

  (* [quick_three_accum u v t] accumulates [t] into the two-term window
     [(u, v)]; returns the component that overflowed out of the window
     (0 when everything still fits), together with the updated window. *)
  let quick_three_accum u v t =
    let s, v' = Eft.two_sum v t in
    let s, u' = Eft.two_sum u s in
    let za = u' <> 0.0 and zb = v' <> 0.0 in
    if za && zb then (s, u', v')
    else if not zb then (0.0, s, u')
    else (0.0, s, v')

  (* Accurate addition: merge the eight limbs by decreasing magnitude,
     accumulating through a sliding two-term window (QDlib ieee_add). *)
  let add a b =
    let aa = to_limbs a and bb = to_limbs b in
    let x = [| 0.0; 0.0; 0.0; 0.0 |] in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    let next () =
      if !i >= 4 then begin
        let t = bb.(!j) in
        incr j;
        t
      end
      else if !j >= 4 || Float.abs aa.(!i) > Float.abs bb.(!j) then begin
        let t = aa.(!i) in
        incr i;
        t
      end
      else begin
        let t = bb.(!j) in
        incr j;
        t
      end
    in
    let u = ref (next ()) in
    let v = ref (next ()) in
    (let s, e = Eft.quick_two_sum !u !v in
     u := s;
     v := e);
    (try
       while !k < 4 do
         if !i >= 4 && !j >= 4 then begin
           x.(!k) <- !u;
           if !k < 3 then begin
             incr k;
             x.(!k) <- !v
           end;
           raise Exit
         end;
         let t = next () in
         let s, u', v' = quick_three_accum !u !v t in
         u := u';
         v := v';
         if s <> 0.0 then begin
           x.(!k) <- s;
           incr k
         end
       done;
       (* All four output slots filled: sweep the leftovers into the tail. *)
       let tail = ref 0.0 in
       for k = !i to 3 do
         tail := !tail +. aa.(k)
       done;
       for k = !j to 3 do
         tail := !tail +. bb.(k)
       done;
       x.(3) <- x.(3) +. !tail +. !u +. !v
     with Exit -> ());
    renorm4 x

  let neg a = { x0 = -.a.x0; x1 = -.a.x1; x2 = -.a.x2; x3 = -.a.x3 }
  let sub a b = add a (neg b)
  let abs a = if a.x0 < 0.0 then neg a else a

  (* Accurate multiplication (QDlib ieee style): all partial products of
     order < 4 with their two_prod errors, order-4 terms folded in plain
     double, then a final renormalization. *)
  let mul a b =
    let p0, q0 = Eft.two_prod a.x0 b.x0 in
    let p1, q1 = Eft.two_prod a.x0 b.x1 in
    let p2, q2 = Eft.two_prod a.x1 b.x0 in
    let p3, q3 = Eft.two_prod a.x0 b.x2 in
    let p4, q4 = Eft.two_prod a.x1 b.x1 in
    let p5, q5 = Eft.two_prod a.x2 b.x0 in
    (* Start accumulation. *)
    let p1, p2, q0 = Eft.three_sum p1 p2 q0 in
    (* Six-three sum of p2, q1, q2, p3, p4, p5. *)
    let p2, q1, q2 = Eft.three_sum p2 q1 q2 in
    let p3, p4, p5 = Eft.three_sum p3 p4 p5 in
    (* (s0, s1, s2) = (p2, q1, q2) + (p3, p4, p5). *)
    let s0, t0 = Eft.two_sum p2 p3 in
    let s1, t1 = Eft.two_sum q1 p4 in
    let s2 = q2 +. p5 in
    let s1, t0 = Eft.two_sum s1 t0 in
    let s2 = s2 +. t0 +. t1 in
    (* O(eps^3) terms. *)
    let p6, q6 = Eft.two_prod a.x0 b.x3 in
    let p7, q7 = Eft.two_prod a.x1 b.x2 in
    let p8, q8 = Eft.two_prod a.x2 b.x1 in
    let p9, q9 = Eft.two_prod a.x3 b.x0 in
    (* Nine-two sum of q0, s1, q3, q4, q5, p6, p7, p8, p9. *)
    let q0, q3 = Eft.two_sum q0 q3 in
    let q4, q5 = Eft.two_sum q4 q5 in
    let p6, p7 = Eft.two_sum p6 p7 in
    let p8, p9 = Eft.two_sum p8 p9 in
    let t0, t1 = Eft.two_sum q0 q4 in
    let t1 = t1 +. q3 +. q5 in
    let r0, r1 = Eft.two_sum p6 p8 in
    let r1 = r1 +. p7 +. p9 in
    let q3, q4 = Eft.two_sum t0 r0 in
    let q4 = q4 +. t1 +. r1 in
    let t0, t1 = Eft.two_sum q3 s1 in
    let t1 = t1 +. q4 in
    (* O(eps^4) terms. *)
    let t1 =
      t1 +. (a.x1 *. b.x3) +. (a.x2 *. b.x2) +. (a.x3 *. b.x1) +. q6 +. q7
      +. q8 +. q9 +. s2
    in
    of_array (Renorm.renormalize ~m:4 [| p0; p1; s0; t0; t1 |])

  let mul_float a b =
    let p0, q0 = Eft.two_prod a.x0 b in
    let p1, q1 = Eft.two_prod a.x1 b in
    let p2, q2 = Eft.two_prod a.x2 b in
    let p3 = a.x3 *. b in
    (* Terms listed by increasing order of magnitude decay. *)
    of_array
      (Renorm.renormalize ~passes:2 ~m:4 [| p0; p1; q0; p2; q1; p3; q2 |])

  let add_float a b =
    let buf = [| a.x0; a.x1; a.x2; a.x3; b |] in
    Renorm.sort_by_magnitude buf;
    of_array (Renorm.renormalize ~passes:2 ~m:4 buf)

  (* Accurate division: five rounds of long division against the leading
     limb, subtracting the full quad double product each time. *)
  let div a b =
    let q0 = a.x0 /. b.x0 in
    let r = sub a (mul_float b q0) in
    let q1 = r.x0 /. b.x0 in
    let r = sub r (mul_float b q1) in
    let q2 = r.x0 /. b.x0 in
    let r = sub r (mul_float b q2) in
    let q3 = r.x0 /. b.x0 in
    let r = sub r (mul_float b q3) in
    let q4 = r.x0 /. b.x0 in
    of_array (Renorm.renormalize ~m:4 [| q0; q1; q2; q3; q4 |])

  let mul_pwr2 a p =
    { x0 = a.x0 *. p; x1 = a.x1 *. p; x2 = a.x2 *. p; x3 = a.x3 *. p }

  let floor a =
    let out = [| 0.0; 0.0; 0.0; 0.0 |] in
    let src = to_limbs a in
    let rec go i =
      if i < 4 then begin
        let f = Float.floor src.(i) in
        out.(i) <- f;
        if f = src.(i) then go (i + 1)
      end
    in
    go 0;
    renorm4 out

  let is_finite a =
    Float.is_finite a.x0 && Float.is_finite a.x1 && Float.is_finite a.x2
    && Float.is_finite a.x3
end

include Md_build.Make (Pre)
