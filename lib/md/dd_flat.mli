(** Allocation-free double double arithmetic on staggered limb planes.

    The same accurate QDlib algorithms as [Double_double], unrolled to
    the exact same floating point operation sequence — results are limb
    for limb identical to the generic path — but reading operands
    straight out of the staggered [float array] planes, with every
    intermediate in an unboxed local float.

    The types stay concrete so the [@inline] bodies keep inlining across
    module boundaries: a kernel allocates one {!acc} per block and the
    per-element loop then performs no allocation at all. *)

type acc = { mutable hi : float; mutable lo : float }
(** The running accumulator: an all-float record, so both fields live
    unboxed and mutation does not allocate. *)

val make : unit -> acc
val clear : acc -> unit

type duo = { d0 : float array; d1 : float array }
(** A double double plane pair: [d0] the high limbs, [d1] the low limbs
    (the staggered device layout of [Staggered]). *)

val duo : float array array -> duo
(** View planes 0 and 1 of a staggered layout as a {!duo}. *)

val load : acc -> duo -> int -> unit
val store : acc -> duo -> int -> unit

val add_parts : acc -> float -> float -> unit
(** [add_parts t hi lo]: t := t + (hi, lo), the accurate ieee_add. *)

val sub_parts : acc -> float -> float -> unit
(** [sub_parts t hi lo]: t := t - (hi, lo), two_diff based to stay
    bit-identical with the generic path. *)

val add : acc -> duo -> int -> unit
(** [add t x i]: t := t + x[i]. *)

val mul_set : acc -> duo -> int -> duo -> int -> unit
(** [mul_set t a ia b ib]: t := a[ia] * b[ib]. *)

val mul_add : acc -> duo -> int -> duo -> int -> unit
(** [mul_add t a ia b ib]: t := t + a[ia] * b[ib], exactly
    [K.add t (K.mul a b)] of the generic path. *)

val sub_from : duo -> int -> acc -> unit
(** [sub_from x i t]: x[i] := x[i] - t, exactly [K.sub x t]. *)
