(* Plain double precision behind the common multiple double signature,
   so that every algorithm can also run at the paper's "1d" precision. *)

module Pre = struct
  type t = float

  let limbs = 1
  let name = "double"
  let zero = 0.0
  let one = 1.0
  let of_float x = x
  let to_float x = x
  let of_limbs a = (a : float array).(0)
  let of_limbs_exact = of_limbs
  let to_limbs x = [| x |]
  let blit_limbs (x : t) (dst : float array) off = dst.(off) <- x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Float.abs
  let add_float = ( +. )
  let mul_float = ( *. )
  let mul_pwr2 = ( *. )
  let floor = Float.floor
  let is_finite = Float.is_finite
end

include Md_build.Make (Pre)
