(* Generic multiple double arithmetic on [m]-limb expansions, in the style
   of the code the CAMPARY software generates for an arbitrary number of
   limbs.  [Octo_double] instantiates this functor at m = 8; the test suite
   also instantiates it at m = 2 and m = 4 to cross-check the specialized
   [Double_double] and [Quad_double] implementations limb by limb. *)

module type SIZE = sig
  val limbs : int
  val name : string
end

module Pre (Z : SIZE) = struct
  type t = float array

  let limbs = Z.limbs
  let name = Z.name
  let zero = Array.make limbs 0.0

  let one =
    let a = Array.make limbs 0.0 in
    a.(0) <- 1.0;
    a

  let of_float x =
    let a = Array.make limbs 0.0 in
    a.(0) <- x;
    a

  let to_float (x : t) = x.(0)
  let of_limbs a = Renorm.renormalize ~m:limbs a
  let of_limbs_exact (a : float array) : t = Array.copy a
  let to_limbs (x : t) = Array.copy x
  let blit_limbs (x : t) (dst : float array) off = Array.blit x 0 dst off limbs

  (* Addition merges the 2m limbs by decreasing magnitude and distills
     them back to m limbs (Priest-style certified addition).  Both
     operands are normalized, hence already magnitude-sorted: a linear
     merge replaces the sort. *)
  let add (a : t) (b : t) : t =
    Renorm.renormalize ~passes:2 ~m:limbs (Renorm.merge_by_magnitude a b)

  let neg (a : t) : t = Array.map (fun x -> -.x) a
  let sub a b = add a (neg b)
  let abs (a : t) : t = if a.(0) < 0.0 then neg a else Array.copy a

  (* Truncated product: the exact partial products a_i * b_j of order
     i + j < m (each split by two_prod into a term of order i+j and an
     error of order i+j+1), plus one guard order of plain products at
     i + j = m, distilled back to m limbs. *)
  let mul (a : t) (b : t) : t =
    let count = ref 0 in
    for i = 0 to limbs - 1 do
      for j = 0 to limbs - 1 do
        if i + j < limbs then count := !count + 2
        else if i + j = limbs then incr count
      done
    done;
    let buf = Array.make !count 0.0 in
    let k = ref 0 in
    (* Emit by increasing order so the buffer is roughly magnitude-sorted. *)
    for o = 0 to limbs - 1 do
      for i = 0 to o do
        let j = o - i in
        if j < limbs then begin
          let p, e = Eft.two_prod a.(i) b.(j) in
          buf.(!k) <- p;
          incr k;
          buf.(!k) <- e;
          incr k
        end
      done
    done;
    for i = 0 to limbs - 1 do
      let j = limbs - i in
      if j >= 0 && j < limbs then begin
        buf.(!k) <- a.(i) *. b.(j);
        incr k
      end
    done;
    Renorm.sort_by_magnitude buf;
    Renorm.renormalize ~passes:2 ~m:limbs buf

  let add_float a b =
    Renorm.renormalize ~passes:2 ~m:limbs
      (Renorm.merge_by_magnitude a [| b |])

  let mul_float (a : t) (b : float) : t =
    let buf = Array.make (2 * limbs) 0.0 in
    for i = 0 to limbs - 1 do
      let p, e = Eft.two_prod a.(i) b in
      buf.(2 * i) <- p;
      buf.((2 * i) + 1) <- e
    done;
    Renorm.sort_by_magnitude buf;
    Renorm.renormalize ~passes:2 ~m:limbs buf

  (* Long division as in QDlib: peel off one double of quotient at a time
     against the leading limb of the divisor, m + 1 terms in total. *)
  let div (a : t) (b : t) : t =
    let q = Array.make (limbs + 1) 0.0 in
    let r = ref (Array.copy a) in
    for k = 0 to limbs do
      let qk = !r.(0) /. b.(0) in
      q.(k) <- qk;
      if k < limbs then r := sub !r (mul_float b qk)
    done;
    Renorm.renormalize ~m:limbs q

  let mul_pwr2 (a : t) (p : float) : t = Array.map (fun x -> x *. p) a

  let floor (a : t) : t =
    let out = Array.make limbs 0.0 in
    let rec go i =
      if i < limbs then begin
        let f = Float.floor a.(i) in
        out.(i) <- f;
        if f = a.(i) then go (i + 1)
      end
    in
    go 0;
    Renorm.renormalize ~m:limbs out

  let is_finite (a : t) = Array.for_all Float.is_finite a
end

module Make (Z : SIZE) : Md_sig.S = Md_build.Make (Pre (Z))
