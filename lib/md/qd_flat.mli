(** Allocation-free quad double arithmetic on staggered limb planes.

    Mirrors the accurate QDlib algorithms of [Quad_double] floating
    point operation for floating point operation, so results are limb
    for limb identical to the generic path.  Values are passed as
    (planes, index); scratch state lives in a {!ctx} that a kernel
    allocates once per block and reuses for every element.

    The types stay concrete so the [@inline] bodies keep inlining across
    module boundaries. *)

type quad = {
  q0 : float array;
  q1 : float array;
  q2 : float array;
  q3 : float array;
}
(** The four significance-sorted planes of the staggered layout. *)

val quad : float array array -> quad
(** View planes 0..3 of a staggered layout as a {!quad}. *)

type ctx = {
  prod : float array;
  xx : float array;
  nb : float array;
  rt : float array;
  out : float array;
  uv : float array;
  mutable mi : int;
  mutable mj : int;
  mutable mk : int;
}
(** Per-block scratch: small float arrays (unboxed storage) and the
    merge cursors of the accurate addition. *)

val make_ctx : unit -> ctx

val clear : float array -> unit
(** Zero a 4-limb value. *)

val load : float array -> quad -> int -> unit
val store : float array -> quad -> int -> unit

val add : ctx -> float array -> float array -> unit
(** [add ctx x y]: x := x + y (both 4-limb arrays), the accurate
    ieee_add of [Quad_double.Pre.add]. *)

val sub : ctx -> float array -> float array -> unit
(** [sub ctx x y]: x := x - y, the accurate addition of the negation. *)

val mul : ctx -> float array -> quad -> int -> quad -> int -> unit
(** [mul ctx dst a ia b ib]: dst := a[ia] * b[ib], the accurate
    multiplication of [Quad_double.Pre.mul]. *)

val mul_add : ctx -> float array -> quad -> int -> quad -> int -> unit
(** [mul_add ctx acc a ia b ib]: acc := acc + a[ia] * b[ib], exactly
    [K.add acc (K.mul a b)] of the generic path. *)

val sub_from : ctx -> quad -> int -> float array -> unit
(** [sub_from ctx x i acc]: x[i] := x[i] - acc, exactly [K.sub x acc]. *)
